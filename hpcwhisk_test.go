package hpcwhisk

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/experiments"
)

// These tests exercise the public facade end to end, the way a
// downstream user would.

func TestFacadeDeployAndInvoke(t *testing.T) {
	sys := New(DefaultConfig(32, "fib"))
	cfg := DefaultTraceConfig(32, time.Hour, 5)
	cfg.MeanIdleNodes = 4
	sys.LoadTrace(cfg.Generate())
	sys.Ctrl.RegisterAction(&Action{
		Name: "f", MemoryMB: 128, Exec: FixedExec(5 * time.Millisecond), Interruptible: true,
	})
	ok := 0
	tick := sys.Sim.Every(5*time.Second, func() {
		sys.Ctrl.Invoke("f", func(inv *Invocation) {
			if inv.Status == StatusSuccess {
				ok++
			}
		})
	})
	sys.Start()
	sys.Run(time.Hour)
	tick.Stop()
	sys.Run(time.Minute)
	if ok == 0 {
		t.Fatal("no successful invocation through the facade")
	}
	if sys.Manager.Registered == 0 {
		t.Fatal("no invoker ever registered")
	}
}

func TestFacadeSweep(t *testing.T) {
	day := func(seed int64) map[string]float64 {
		cfg := FibDay(seed)
		cfg.Nodes = 128
		cfg.Horizon = time.Hour
		cfg.QPS = 0
		return experiments.RunDay(cfg).Metrics()
	}
	results := Sweep(SweepConfig{Replicas: 3, Workers: 2, BaseSeed: 9}, []SweepPoint{
		{Name: "fib-slice", Run: day},
	})
	if len(results) != 1 || results[0].Name != "fib-slice" {
		t.Fatalf("unexpected results: %+v", results)
	}
	cov, ok := results[0].Metrics["live-coverage"]
	if !ok || cov.N != 3 {
		t.Fatalf("live-coverage summary = %+v (present=%v)", cov, ok)
	}
	if cov.Mean <= 0 || cov.Mean > 1 {
		t.Errorf("implausible mean coverage %v", cov.Mean)
	}

	rep := Replicate(SweepConfig{Replicas: 3, Workers: 1, BaseSeed: 9}, day)
	if rep.Metrics["live-coverage"] != cov {
		t.Error("Replicate and single-point Sweep disagree on the same config")
	}
}

func TestFacadeTraceGeneration(t *testing.T) {
	tr := GenerateTrace(100, 2*time.Hour, 7)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Periods) == 0 {
		t.Fatal("empty trace")
	}
}

func TestFacadeJobs(t *testing.T) {
	jobs := GenerateJobs(500, 24*time.Hour, 3)
	if len(jobs) != 500 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for _, j := range jobs {
		if j.Runtime > j.Declared {
			t.Fatal("runtime above declared limit")
		}
	}
}

func TestFacadeWrapperWithLambdaFallback(t *testing.T) {
	sys := New(DefaultConfig(8, "fib"))
	sys.LoadTrace(&Trace{Nodes: 8, Horizon: time.Hour}) // starved cluster
	sys.Ctrl.RegisterAction(&Action{Name: "g", Exec: FixedExec(time.Millisecond)})
	fb := NewLambdaClient(sys, 9)
	w := NewWrapper(sys, fb)
	served := 0
	sys.Sim.Every(10*time.Second, func() {
		w.Invoke("g", func(inv *Invocation) {
			if inv.Status == StatusSuccess {
				served++
			}
		})
	})
	sys.Start()
	sys.Run(10 * time.Minute)
	if served == 0 {
		t.Fatal("wrapper served nothing despite fallback")
	}
	if fb.Calls == 0 {
		t.Fatal("fallback never used on a starved cluster")
	}
}

func TestFacadeCoverageSimulation(t *testing.T) {
	tr := GenerateTrace(200, 6*time.Hour, 11)
	res := SimulateCoverage(tr, CoverageSet{Name: "A1", Lengths: []time.Duration{
		2 * time.Minute, 4 * time.Minute, 6 * time.Minute, 8 * time.Minute,
		14 * time.Minute, 22 * time.Minute, 34 * time.Minute, 56 * time.Minute,
		90 * time.Minute,
	}})
	if res.Jobs == 0 {
		t.Fatal("no jobs packed")
	}
	total := res.ShareWarmup + res.ShareReady + res.ShareNotUsed
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %v", total)
	}
}

func TestFacadeSeBS(t *testing.T) {
	w := NewSeBSWorkload(1000, 6, 13)
	for _, fn := range []string{"bfs", "mst", "pagerank"} {
		if w.Run(fn) == 0 {
			t.Errorf("%s produced zero checksum", fn)
		}
	}
}

func TestFacadeLoadGenerator(t *testing.T) {
	sys := New(DefaultConfig(16, "fib"))
	cfg := DefaultTraceConfig(16, 30*time.Minute, 17)
	cfg.MeanIdleNodes = 4
	sys.LoadTrace(cfg.Generate())
	actions := []string{"a", "b"}
	for _, n := range actions {
		sys.Ctrl.RegisterAction(&Action{Name: n, Exec: FixedExec(time.Millisecond), Interruptible: true})
	}
	gen := NewLoadGenerator(sys, 2, actions, 30*time.Minute)
	gen.Start()
	sys.Start()
	sys.Run(30 * time.Minute)
	sys.Run(2 * time.Minute)
	rep := gen.Report()
	if rep.Issued != 3600 {
		t.Fatalf("issued = %d", rep.Issued)
	}
	if rep.InvokedShare == 0 {
		t.Fatal("nothing invoked")
	}
}

func TestFacadeWeekTraceMatchesPaper(t *testing.T) {
	tr := WeekTrace(2)
	mean := tr.IdleCount().TimeMean()
	if mean < 7 || mean > 12 {
		t.Errorf("week mean idle = %.2f, want ≈9.23", mean)
	}
}

// TestFacadeScenarioCatalog pins the acceptance criterion that
// Scenarios() enumerates every paper experiment.
func TestFacadeScenarioCatalog(t *testing.T) {
	want := []string{
		"fib-day", "var-day", // Tables II/III, Figs. 5/6
		"fig1", "fig2", "fig3", "fig7", "table1", // the analysis artifacts
		"ablation", "policy-comparison", "scientific", "endogenous", // beyond-paper
		"federated-day", // the cluster-of-clusters comparison
	}
	have := map[string]bool{}
	for _, sp := range Scenarios() {
		have[sp.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("Scenarios() lacks %q", name)
		}
	}
	names := ScenarioNames()
	if len(names) != len(Scenarios()) {
		t.Errorf("ScenarioNames has %d entries, Scenarios %d", len(names), len(Scenarios()))
	}
}

// TestFacadeRunScenario runs one scenario end to end through the
// facade and checks the three views of the Result contract.
func TestFacadeRunScenario(t *testing.T) {
	res, err := RunScenario(context.Background(), "fig3", WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics()
	if m["ready-coverage"] <= 0 || m["ready-coverage"] > 1 {
		t.Errorf("ready-coverage = %v, want in (0,1]", m["ready-coverage"])
	}
	if len(res.Table()) < 2 {
		t.Errorf("Table() has %d rows", len(res.Table()))
	}
	if _, ok := res.Unwrap().(experiments.Fig3Result); !ok {
		t.Errorf("Unwrap() = %T, want experiments.Fig3Result", res.Unwrap())
	}
}

// TestFacadeFederation drives a federation end to end through the
// facade: a uniform multi-site config, a custom registered routing
// policy, skewed traces, and the front-door counters a downstream
// user would read.
func TestFacadeFederation(t *testing.T) {
	RegisterRoutingPolicy("facade-test-home-or-any", func() RoutingPolicy {
		return homeOrAny{}
	})

	base := DefaultConfig(16, "fib")
	base.Seed = 21
	cfg := UniformFederationConfig(3, base)
	cfg.Routing = "facade-test-home-or-any"
	fed := NewFederation(cfg)

	for i := range fed.Sites {
		tr := DefaultTraceConfig(16, time.Hour, int64(30+i))
		tr.MeanIdleNodes = 4
		if i == 2 {
			fed.LoadTrace(i, &Trace{Nodes: 16, Horizon: time.Hour}) // starved site
			continue
		}
		fed.LoadTrace(i, tr.Generate())
	}
	fed.RegisterAction(&Action{
		Name: "f", MemoryMB: 128, Exec: FixedExec(5 * time.Millisecond), Interruptible: true,
	})

	ok := 0
	tick := fed.Sim.Every(5*time.Second, func() {
		fed.Invoke("f", func(inv *Invocation) {
			if inv.Status == StatusSuccess {
				ok++
			}
		})
	})
	fed.Start()
	fed.Run(time.Hour)
	tick.Stop()
	fed.Run(time.Minute)

	if ok == 0 {
		t.Fatal("no successful invocation through the federated facade")
	}
	if got := fed.Door.Issued; got != 720 {
		t.Errorf("door issued %d, want 720", got)
	}
	var perSite int
	for _, n := range fed.Door.IssuedBySite {
		perSite += n
	}
	if perSite != fed.Door.Issued {
		t.Errorf("per-site issued %d != door issued %d", perSite, fed.Door.Issued)
	}
	found := false
	for _, name := range RoutingPolicyNames() {
		if name == "facade-test-home-or-any" {
			found = true
		}
	}
	if !found {
		t.Error("custom routing policy missing from RoutingPolicyNames")
	}
	if _, err := NewRoutingPolicy("no-such-routing"); err == nil {
		t.Error("NewRoutingPolicy accepted an unknown name")
	}
}

// homeOrAny is the test's custom routing policy: home if healthy, else
// the first healthy site, else NoSite.
type homeOrAny struct{}

func (homeOrAny) Name() string { return "facade-test-home-or-any" }
func (homeOrAny) Init(int)     {}
func (homeOrAny) Pick(v RouterView, action string, home int) int {
	if v.Healthy(home) {
		return home
	}
	for i := 0; i < v.NumSites(); i++ {
		if v.Healthy(i) {
			return i
		}
	}
	return NoSite
}

// TestFacadeScenarioCancellation cancels a day mid-run through the
// facade and checks the typed error surfaces.
func TestFacadeScenarioCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunScenario(ctx, "fib-day",
		WithSeed(1), WithNodes(48), WithHorizon(2*time.Hour), WithQPS(0),
		WithProgress(func(done, total time.Duration) {
			if done >= 30*time.Minute {
				cancel()
			}
		}))
	var cut *ScenarioCancelError
	if !errors.As(err, &cut) {
		t.Fatalf("err = %v (%T), want *ScenarioCancelError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err does not unwrap to context.Canceled")
	}
}
