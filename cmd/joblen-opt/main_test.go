package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlagParity(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
	errb.Reset()
	if code := run([]string{"-nonsense"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-days", "seven"}, &out, &errb); code != 2 {
		t.Errorf("bad value: exit %d, want 2", code)
	}
}

func TestTraceErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-trace", filepath.Join(t.TempDir(), "missing.csv")}, &out, &errb); code != 1 {
		t.Errorf("missing trace: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "trace:") {
		t.Errorf("stderr %q lacks the trace error prefix", errb.String())
	}

	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-trace", bad}, &out, &errb); code != 1 {
		t.Errorf("malformed trace: exit %d, want 1", code)
	}
}

func TestSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table I simulation (skipped under -short)")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-nodes", "32", "-days", "1", "-seed", "3"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Errorf("output lacks the Table I header:\n%s", out.String())
	}
}
