// Command joblen-opt regenerates Table I: the clairvoyant coverage
// simulation that sizes the fib model's pilot job lengths (§IV-B).
//
// Usage:
//
//	joblen-opt -seed 1
//	joblen-opt -days 7 -trace week.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	nodes := flag.Int("nodes", experiments.PrometheusNodes, "cluster size")
	days := flag.Int("days", 7, "trace length in days")
	tracePath := flag.String("trace", "", "optional CSV trace to analyze instead of generating")
	flag.Parse()

	var tr *workload.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		tr, err = workload.ReadCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
	} else {
		horizon := time.Duration(*days) * 24 * time.Hour
		tr = workload.DefaultIdleProcess(*nodes, horizon, *seed).Generate()
	}

	res := experiments.RunTableI(tr)
	res.Render(os.Stdout)
}
