// Command joblen-opt regenerates Table I: the clairvoyant coverage
// simulation that sizes the fib model's pilot job lengths (§IV-B).
//
// Usage:
//
//	joblen-opt -seed 1
//	joblen-opt -days 7 -trace week.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main behind testable seams: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("joblen-opt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "random seed")
	nodes := fs.Int("nodes", experiments.PrometheusNodes, "cluster size")
	days := fs.Int("days", 7, "trace length in days")
	tracePath := fs.String("trace", "", "optional CSV trace to analyze instead of generating")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	var tr *workload.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, "trace:", err)
			return 1
		}
		tr, err = workload.ReadCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "trace:", err)
			return 1
		}
	} else {
		horizon := time.Duration(*days) * 24 * time.Hour
		tr = workload.DefaultIdleProcess(*nodes, horizon, *seed).Generate()
	}

	res := experiments.RunTableI(tr)
	res.Render(stdout)
	return 0
}
