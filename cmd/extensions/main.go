// Command extensions runs the beyond-the-paper experiments: the §VII
// future-work scientific FaaS workload, the endogenous full-scheduler
// run, and the hand-off ablation. The three names map onto scenario
// registry entries, so this is a convenience front-end for
// `hpcwhisk-sim -scenario <name>`.
//
// Usage:
//
//	extensions -exp scientific
//	extensions -exp endogenous -seed 2
//	extensions -exp ablation
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/scenario"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main behind testable seams: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("extensions", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "scientific", "experiment: scientific, endogenous, or ablation")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	switch *exp {
	case "scientific", "endogenous", "ablation":
	default:
		fmt.Fprintf(stderr, "unknown experiment %q (want scientific, endogenous, or ablation)\n", *exp)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	res, err := scenario.Run(ctx, *exp, scenario.WithSeed(*seed))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	scenario.Fprint(stdout, res)
	fmt.Fprintf(stdout, "(completed in %v)\n", time.Since(start).Round(time.Millisecond))
	return 0
}
