// Command extensions runs the beyond-the-paper experiments: the §VII
// future-work scientific FaaS workload, the endogenous full-scheduler
// run, and the hand-off ablation.
//
// Usage:
//
//	extensions -exp scientific
//	extensions -exp endogenous -seed 2
//	extensions -exp ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "scientific", "experiment: scientific, endogenous, or ablation")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	start := time.Now()
	switch *exp {
	case "scientific":
		res := experiments.RunScientific(experiments.DefaultScientificConfig(*seed))
		res.Render(os.Stdout)
	case "endogenous":
		res := experiments.RunEndogenous(experiments.DefaultEndogenousConfig(*seed))
		res.Render(os.Stdout)
	case "ablation":
		res := experiments.RunAblation(256, 4*time.Hour, *seed)
		res.Render(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("(completed in %v)\n", time.Since(start).Round(time.Millisecond))
}
