package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlagParity(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
	errb.Reset()
	if code := run([]string{"-nonsense"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-exp", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown experiment: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Errorf("stderr %q lacks the unknown-experiment error", errb.String())
	}
}
