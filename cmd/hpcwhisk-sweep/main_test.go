package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func TestBuildGridShape(t *testing.T) {
	points, err := buildGrid("fib,var,adaptive", "5,10", "64,128", 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3*2*2 {
		t.Fatalf("%d points, want 12", len(points))
	}
	want := []string{
		"fib/qps=5/nodes=64", "fib/qps=5/nodes=128", "fib/qps=10/nodes=64", "fib/qps=10/nodes=128",
		"var/qps=5/nodes=64", "var/qps=5/nodes=128", "var/qps=10/nodes=64", "var/qps=10/nodes=128",
		"adaptive/qps=5/nodes=64", "adaptive/qps=5/nodes=128", "adaptive/qps=10/nodes=64", "adaptive/qps=10/nodes=128",
	}
	for i, p := range points {
		if p.Name != want[i] {
			t.Errorf("point %d named %q, want %q", i, p.Name, want[i])
		}
	}
}

func TestBuildGridErrors(t *testing.T) {
	cases := []struct{ policies, qps, nodes string }{
		{"bogus", "10", "64"},
		{"fib", "ten", "64"},
		{"fib", "10", "many"},
	}
	for _, tc := range cases {
		if _, err := buildGrid(tc.policies, tc.qps, tc.nodes, 1); err == nil {
			t.Errorf("buildGrid(%q, %q, %q) succeeded, want error", tc.policies, tc.qps, tc.nodes)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-policy", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown policy: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown policy") {
		t.Errorf("stderr %q lacks the unknown-policy error", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-format", "xml", "-policy", "fib", "-nodes", "16", "-hours", "1", "-qps", "0", "-replicas", "1"}, &out, &errb); code != 1 {
		t.Errorf("bad format: exit %d, want 1", code)
	}
	errb.Reset()
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
}

// TestRunGolden pins the output shape of a tiny deterministic grid in
// both formats. Regenerate with `go test ./cmd/hpcwhisk-sweep -run
// TestRunGolden -update` after an intentional change.
func TestRunGolden(t *testing.T) {
	args := []string{"-policy", "fib,lease", "-qps", "0", "-nodes", "48", "-hours", "1",
		"-replicas", "2", "-seed", "7", "-workers", "2"}
	for _, format := range []string{"json", "csv"} {
		format := format
		t.Run(format, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(append(args, "-format", format), &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errb.String())
			}
			golden := filepath.Join("testdata", "tiny_grid."+format)
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output diverged from %s (%d vs %d bytes); run with -update if intentional",
					golden, out.Len(), len(want))
			}
		})
	}
}

// TestRunWorkerCountInvariant re-checks the engine's core guarantee
// through the CLI: worker count never changes the bytes.
func TestRunWorkerCountInvariant(t *testing.T) {
	render := func(workers string) []byte {
		var out, errb bytes.Buffer
		args := []string{"-policy", "adaptive", "-qps", "0", "-nodes", "48", "-hours", "1",
			"-replicas", "3", "-seed", "9", "-workers", workers, "-format", "csv"}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.Bytes()
	}
	if !bytes.Equal(render("1"), render("4")) {
		t.Error("1-worker and 4-worker sweeps rendered differently")
	}
}
