package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func TestBuildGridShape(t *testing.T) {
	points, err := buildGrid("fib,var,adaptive", "5,10", "64,128", 24, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3*2*2 {
		t.Fatalf("%d points, want 12", len(points))
	}
	want := []string{
		"fib/qps=5/nodes=64", "fib/qps=5/nodes=128", "fib/qps=10/nodes=64", "fib/qps=10/nodes=128",
		"var/qps=5/nodes=64", "var/qps=5/nodes=128", "var/qps=10/nodes=64", "var/qps=10/nodes=128",
		"adaptive/qps=5/nodes=64", "adaptive/qps=5/nodes=128", "adaptive/qps=10/nodes=64", "adaptive/qps=10/nodes=128",
	}
	for i, p := range points {
		if p.Name != want[i] {
			t.Errorf("point %d named %q, want %q", i, p.Name, want[i])
		}
	}
}

func TestBuildGridErrors(t *testing.T) {
	// Unparsable axis values fail in the builder; semantic errors
	// (unknown policy, unknown -set key) fail in SweepScenarios'
	// upfront validation — see TestRunRejectsBadFlags and
	// TestLegacyGridHonorsSetOptions.
	cases := []struct{ policies, qps, nodes string }{
		{"fib", "ten", "64"},
		{"fib", "10", "many"},
	}
	for _, tc := range cases {
		if _, err := buildGrid(tc.policies, tc.qps, tc.nodes, 1, nil); err == nil {
			t.Errorf("buildGrid(%q, %q, %q) succeeded, want error", tc.policies, tc.qps, tc.nodes)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-policy", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown policy: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown policy") {
		t.Errorf("stderr %q lacks the unknown-policy error", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-format", "xml", "-policy", "fib", "-nodes", "16", "-hours", "1", "-qps", "0", "-replicas", "1"}, &out, &errb); code != 1 {
		t.Errorf("bad format: exit %d, want 1", code)
	}
	errb.Reset()
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
}

// TestListScenarios: -list prints the sweepable catalog and exits 0.
func TestListScenarios(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list: exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"fib-day", "endogenous", "table1"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks scenario %q", name)
		}
	}
}

// TestScenarioGridNaming: explicit grid axes land in the cell names,
// unset ones stay off (so each scenario keeps its paper defaults).
func TestScenarioGridNaming(t *testing.T) {
	cells, err := buildScenarioGrid("fib-day,var-day", "5,10", "64", 24, nil,
		map[string]bool{"qps": true, "nodes": true})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fib-day/qps=5/nodes=64", "fib-day/qps=10/nodes=64",
		"var-day/qps=5/nodes=64", "var-day/qps=10/nodes=64",
	}
	if len(cells) != len(want) {
		t.Fatalf("%d cells, want %d", len(cells), len(want))
	}
	for i, c := range cells {
		if c.Name != want[i] {
			t.Errorf("cell %d named %q, want %q", i, c.Name, want[i])
		}
	}

	cells, err = buildScenarioGrid("fig2", "10", "2239", 24, nil, map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Name != "fig2" {
		t.Fatalf("default-axes grid = %+v, want one bare fig2 cell", cells)
	}
}

// TestScenarioSweepRuns: a whole scenario sweep through the CLI, with
// a -set option applied to every cell.
func TestScenarioSweepRuns(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-scenario", "fig2", "-replicas", "2", "-seed", "5",
		"-set", "jobs=500", "-format", "csv"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fig2,jobs,2,500") {
		t.Errorf("csv lacks the fig2 jobs row proving the -set option applied:\n%s", out.String())
	}

	errb.Reset()
	if code := run([]string{"-scenario", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown scenario: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown scenario") {
		t.Errorf("stderr %q lacks the unknown-scenario error", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-scenario", "fig3", "-set", "jobs=1"}, &out, &errb); code != 2 {
		t.Errorf("option unknown to one scenario: exit %d, want 2", code)
	}

	// Gridding an axis a scenario does not honor fails fast instead
	// of fanning out identical duplicate cells.
	errb.Reset()
	if code := run([]string{"-scenario", "fig2", "-qps", "5,10,20"}, &out, &errb); code != 2 {
		t.Errorf("-qps grid over qps-less scenario: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "does not use the qps axis") {
		t.Errorf("stderr %q lacks the unused-axis error", errb.String())
	}

	// -scenario and the legacy policy grid cannot combine: refusing
	// beats silently dropping the user's policy list.
	errb.Reset()
	if code := run([]string{"-scenario", "fig2", "-policy", "fib,adaptive"}, &out, &errb); code != 2 {
		t.Errorf("-scenario with -policy: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "cannot be combined") {
		t.Errorf("stderr %q lacks the conflict error", errb.String())
	}
}

// TestLegacyGridHonorsSetOptions: -set reaches the legacy policy-grid
// cells — an unknown key fails the sweep's upfront validation, and a
// known day option runs through.
func TestLegacyGridHonorsSetOptions(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-policy", "fib", "-qps", "0", "-nodes", "48", "-hours", "1",
		"-replicas", "1", "-set", "bogus=7"}, &out, &errb); code != 2 {
		t.Errorf("unknown -set key on legacy grid: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no option") {
		t.Errorf("stderr %q lacks the unknown-option error", errb.String())
	}
	errb.Reset()
	out.Reset()
	if code := run([]string{"-policy", "fib", "-qps", "0", "-nodes", "48", "-hours", "1",
		"-replicas", "1", "-set", "actions=7", "-format", "csv"}, &out, &errb); code != 0 {
		t.Errorf("known -set key on legacy grid: exit %d, stderr: %s", code, errb.String())
	}
}

// TestRunGolden pins the output shape of a tiny deterministic grid in
// both formats. Regenerate with `go test ./cmd/hpcwhisk-sweep -run
// TestRunGolden -update` after an intentional change.
func TestRunGolden(t *testing.T) {
	args := []string{"-policy", "fib,lease", "-qps", "0", "-nodes", "48", "-hours", "1",
		"-replicas", "2", "-seed", "7", "-workers", "2"}
	for _, format := range []string{"json", "csv"} {
		format := format
		t.Run(format, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(append(args, "-format", format), &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errb.String())
			}
			golden := filepath.Join("testdata", "tiny_grid."+format)
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output diverged from %s (%d vs %d bytes); run with -update if intentional",
					golden, out.Len(), len(want))
			}
		})
	}
}

// TestRunWorkerCountInvariant re-checks the engine's core guarantee
// through the CLI: worker count never changes the bytes.
func TestRunWorkerCountInvariant(t *testing.T) {
	render := func(workers string) []byte {
		var out, errb bytes.Buffer
		args := []string{"-policy", "adaptive", "-qps", "0", "-nodes", "48", "-hours", "1",
			"-replicas", "3", "-seed", "9", "-workers", workers, "-format", "csv"}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.Bytes()
	}
	if !bytes.Equal(render("1"), render("4")) {
		t.Error("1-worker and 4-worker sweeps rendered differently")
	}
}

// TestShardsFlag: -shards lands on every grid cell — the sharded sweep
// renders bit-identically to the sequential one — and invalid counts
// or cells whose scenario has no shards option fail before anything
// runs.
func TestShardsFlag(t *testing.T) {
	render := func(extra ...string) []byte {
		var out, errb bytes.Buffer
		args := append([]string{"-policy", "fib", "-qps", "0", "-nodes", "48", "-hours", "1",
			"-replicas", "2", "-seed", "9", "-format", "csv"}, extra...)
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("%v: exit %d: %s", args, code, errb.String())
		}
		return out.Bytes()
	}
	if !bytes.Equal(render(), render("-shards", "2")) {
		t.Error("sharded sweep rendered differently from the sequential one")
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-shards", "0"}, &out, &errb); code != 2 {
		t.Errorf("-shards 0: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "positive shard count") {
		t.Errorf("stderr %q lacks the shard-count error", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-scenario", "fig2", "-shards", "2", "-replicas", "1"}, &out, &errb); code != 2 {
		t.Errorf("fig2 -shards: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no option") {
		t.Errorf("stderr %q lacks the no-option error", errb.String())
	}
}
