// Command hpcwhisk-sweep runs a replicated parameter sweep of the
// 24-hour production experiment: a grid over QPS × cluster size ×
// supply mode, each cell repeated across decorrelated seeds and
// aggregated into mean / 95%-CI / quantile summaries. The paper's
// Tables II-III report single-seed point estimates; this is the
// multi-trial version, parallel across GOMAXPROCS workers and
// bit-for-bit deterministic regardless of worker count.
//
// Usage:
//
//	hpcwhisk-sweep -replicas 8 -seed 1
//	hpcwhisk-sweep -modes fib,var -qps 5,10,20 -nodes 512,2239 -hours 6 -format csv
//	hpcwhisk-sweep -replicas 32 -workers 4 -format json -out sweep.json
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	modes := flag.String("modes", "fib", "comma-separated supply modes to grid over: fib,var")
	qpsList := flag.String("qps", "10", "comma-separated QPS levels to grid over (0 disables load)")
	nodesList := flag.String("nodes", strconv.Itoa(experiments.PrometheusNodes), "comma-separated cluster sizes to grid over")
	hours := flag.Int("hours", 24, "experiment length in hours")
	replicas := flag.Int("replicas", 8, "independent seeds per grid point")
	seed := flag.Int64("seed", 1, "base seed of the decorrelated replica-seed sequence")
	workers := flag.Int("workers", 0, "concurrent replicas (0 = GOMAXPROCS); never affects results")
	format := flag.String("format", "json", "output format: json or csv")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	points, err := buildGrid(*modes, *qpsList, *nodesList, *hours)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := sweep.Config{Replicas: *replicas, Workers: *workers, BaseSeed: *seed}
	start := time.Now()
	results := sweep.Sweep(cfg, points)
	elapsed := time.Since(start).Round(time.Millisecond)

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = writeJSON(w, results)
	case "csv":
		err = writeCSV(w, results)
	default:
		err = fmt.Errorf("unknown format %q (want json or csv)", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "swept %d points × %d replicas in %v\n", len(points), *replicas, elapsed)
}

// buildGrid expands the mode × qps × nodes grid into sweep points over
// the Table II/III day experiments.
func buildGrid(modes, qpsList, nodesList string, hours int) ([]sweep.Point, error) {
	var points []sweep.Point
	for _, mode := range strings.Split(modes, ",") {
		mode = strings.TrimSpace(mode)
		var base func(int64) experiments.DayConfig
		switch mode {
		case "fib":
			base = experiments.FibDay
		case "var":
			base = experiments.VarDay
		default:
			return nil, fmt.Errorf("unknown mode %q (want fib or var)", mode)
		}
		for _, qpsStr := range strings.Split(qpsList, ",") {
			qps, err := strconv.ParseFloat(strings.TrimSpace(qpsStr), 64)
			if err != nil {
				return nil, fmt.Errorf("bad qps %q: %v", qpsStr, err)
			}
			for _, nodesStr := range strings.Split(nodesList, ",") {
				nodes, err := strconv.Atoi(strings.TrimSpace(nodesStr))
				if err != nil {
					return nil, fmt.Errorf("bad nodes %q: %v", nodesStr, err)
				}
				mode, qps, nodes := mode, qps, nodes
				points = append(points, sweep.Point{
					Name: fmt.Sprintf("%s/qps=%g/nodes=%d", mode, qps, nodes),
					Run: func(seed int64) sweep.Metrics {
						cfg := base(seed)
						cfg.QPS = qps
						cfg.Nodes = nodes
						cfg.Horizon = time.Duration(hours) * time.Hour
						return experiments.RunDay(cfg).Metrics()
					},
				})
			}
		}
	}
	return points, nil
}

func writeJSON(w io.Writer, results []sweep.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// writeCSV emits one row per (point, metric) with the full summary.
func writeCSV(w io.Writer, results []sweep.Result) error {
	cw := csv.NewWriter(w)
	header := []string{"point", "metric", "n", "mean", "std", "ci95", "min", "p25", "median", "p75", "max"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, res := range results {
		metrics := make([]string, 0, len(res.Metrics))
		for name := range res.Metrics {
			metrics = append(metrics, name)
		}
		sort.Strings(metrics)
		for _, name := range metrics {
			s := res.Metrics[name]
			row := []string{
				res.Name, name, strconv.Itoa(s.N),
				f(s.Mean), f(s.Std), f(s.CI95),
				f(s.Min), f(s.P25), f(s.Median), f(s.P75), f(s.Max),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
