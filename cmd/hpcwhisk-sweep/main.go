// Command hpcwhisk-sweep runs a replicated parameter sweep of the
// 24-hour production experiment: a grid over supply policy × QPS ×
// cluster size, each cell repeated across decorrelated seeds and
// aggregated into mean / 95%-CI / quantile summaries. The paper's
// Tables II-III report single-seed point estimates over two supply
// models; this is the multi-trial version over the whole policy
// registry, parallel across GOMAXPROCS workers and bit-for-bit
// deterministic regardless of worker count.
//
// Usage:
//
//	hpcwhisk-sweep -replicas 8 -seed 1
//	hpcwhisk-sweep -policy fib,var,adaptive,lease,hybrid -qps 5,10,20 -hours 6 -format csv
//	hpcwhisk-sweep -replicas 32 -workers 4 -format json -out sweep.json
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/sweep"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main behind testable seams: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hpcwhisk-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	policies := fs.String("policy", "", "comma-separated supply policies to grid over (registry names: "+strings.Join(policy.Names(), ",")+"); overrides -modes")
	modes := fs.String("modes", "fib", "deprecated alias of -policy (kept for old scripts)")
	qpsList := fs.String("qps", "10", "comma-separated QPS levels to grid over (0 disables load)")
	nodesList := fs.String("nodes", strconv.Itoa(experiments.PrometheusNodes), "comma-separated cluster sizes to grid over")
	hours := fs.Int("hours", 24, "experiment length in hours")
	replicas := fs.Int("replicas", 8, "independent seeds per grid point")
	seed := fs.Int64("seed", 1, "base seed of the decorrelated replica-seed sequence")
	workers := fs.Int("workers", 0, "concurrent replicas (0 = GOMAXPROCS); never affects results")
	format := fs.String("format", "json", "output format: json or csv")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	selected := *policies
	if selected == "" {
		selected = *modes
	}
	points, err := buildGrid(selected, *qpsList, *nodesList, *hours)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	cfg := sweep.Config{Replicas: *replicas, Workers: *workers, BaseSeed: *seed}
	start := time.Now()
	results := sweep.Sweep(cfg, points)
	elapsed := time.Since(start).Round(time.Millisecond)

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = writeJSON(w, results)
	case "csv":
		err = writeCSV(w, results)
	default:
		err = fmt.Errorf("unknown format %q (want json or csv)", *format)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "swept %d points × %d replicas in %v\n", len(points), *replicas, elapsed)
	return 0
}

// buildGrid expands the policy × qps × nodes grid into sweep points
// over the Table II/III day experiments. Every policy runs the fib
// day's trace calibration except "var", which keeps its own paper day.
func buildGrid(policies, qpsList, nodesList string, hours int) ([]sweep.Point, error) {
	var points []sweep.Point
	for _, name := range strings.Split(policies, ",") {
		name = strings.TrimSpace(name)
		if _, err := policy.New(name); err != nil {
			return nil, err
		}
		base := experiments.FibDay
		if name == "var" {
			base = experiments.VarDay
		}
		for _, qpsStr := range strings.Split(qpsList, ",") {
			qps, err := strconv.ParseFloat(strings.TrimSpace(qpsStr), 64)
			if err != nil {
				return nil, fmt.Errorf("bad qps %q: %v", qpsStr, err)
			}
			for _, nodesStr := range strings.Split(nodesList, ",") {
				nodes, err := strconv.Atoi(strings.TrimSpace(nodesStr))
				if err != nil {
					return nil, fmt.Errorf("bad nodes %q: %v", nodesStr, err)
				}
				name, base, qps, nodes := name, base, qps, nodes
				points = append(points, sweep.Point{
					Name: fmt.Sprintf("%s/qps=%g/nodes=%d", name, qps, nodes),
					Run: func(seed int64) sweep.Metrics {
						cfg := base(seed)
						cfg.Policy = name
						cfg.QPS = qps
						cfg.Nodes = nodes
						cfg.Horizon = time.Duration(hours) * time.Hour
						return experiments.RunDay(cfg).Metrics()
					},
				})
			}
		}
	}
	return points, nil
}

func writeJSON(w io.Writer, results []sweep.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// writeCSV emits one row per (point, metric) with the full summary.
func writeCSV(w io.Writer, results []sweep.Result) error {
	cw := csv.NewWriter(w)
	header := []string{"point", "metric", "n", "mean", "std", "ci95", "min", "p25", "median", "p75", "max"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, res := range results {
		metrics := make([]string, 0, len(res.Metrics))
		for name := range res.Metrics {
			metrics = append(metrics, name)
		}
		sort.Strings(metrics)
		for _, name := range metrics {
			s := res.Metrics[name]
			row := []string{
				res.Name, name, strconv.Itoa(s.N),
				f(s.Mean), f(s.Std), f(s.CI95),
				f(s.Min), f(s.P25), f(s.Median), f(s.P75), f(s.Max),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
