// Command hpcwhisk-sweep runs replicated parameter sweeps over the
// scenario registry: any registered scenario — every paper table and
// figure, or anything custom — fans out across decorrelated seeds and
// an option grid (QPS × cluster size × generic -set options), parallel
// across GOMAXPROCS workers and bit-for-bit deterministic regardless
// of worker count.
//
// Usage:
//
//	hpcwhisk-sweep -list
//	hpcwhisk-sweep -replicas 8 -seed 1
//	hpcwhisk-sweep -policy fib,var,adaptive,lease,hybrid -qps 5,10,20 -hours 6 -format csv
//	hpcwhisk-sweep -scenario endogenous,scientific -replicas 4 -format json
//	hpcwhisk-sweep -scenario endogenous -set utilization=0.9 -replicas 8
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main behind testable seams: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hpcwhisk-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenarios := fs.String("scenario", "", "comma-separated scenarios to grid over (see -list); empty sweeps the paper day per -policy")
	list := fs.Bool("list", false, "list the registered scenarios and exit")
	var sets scenario.SetFlag
	fs.Var(&sets, "set", "scenario-specific option as key=value, applied to every grid cell (repeatable)")
	policies := fs.String("policy", "", "comma-separated supply policies to grid over (registry names: "+strings.Join(policy.Names(), ",")+"); overrides -modes")
	modes := fs.String("modes", "fib", "deprecated alias of -policy (kept for old scripts)")
	qpsList := fs.String("qps", "10", "comma-separated QPS levels to grid over (0 disables load)")
	nodesList := fs.String("nodes", strconv.Itoa(experiments.PrometheusNodes), "comma-separated cluster sizes to grid over")
	hours := fs.Int("hours", 24, "experiment length in hours")
	replicas := fs.Int("replicas", 8, "independent seeds per grid point")
	seed := fs.Int64("seed", 1, "base seed of the decorrelated replica-seed sequence")
	workers := fs.Int("workers", 0, "concurrent replicas (0 = GOMAXPROCS); never affects results")
	shards := fs.Int("shards", 1, "site shards per replica under the pdes coordinator, applied to every cell (>1; byte-identical; workers are capped so workers × shards ≤ GOMAXPROCS)")
	format := fs.String("format", "json", "output format: json or csv")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "sweepable scenarios (-scenario <names>; axes you set grid, unset axes keep paper defaults):")
		scenario.FprintCatalog(stdout)
		return 0
	}

	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// -shards is sugar for a shards=N option on every cell; appended
	// after any -set so the dedicated flag wins when both are given.
	// SweepScenarios reads it back to cap workers × shards.
	if explicit["shards"] {
		if *shards < 1 {
			fmt.Fprintf(stderr, "-shards wants a positive shard count, got %d\n", *shards)
			return 2
		}
		sets = append(sets, fmt.Sprintf("shards=%d", *shards))
	}

	var cells []sweep.ScenarioPoint
	var err error
	if *scenarios != "" {
		// The policy grid belongs to the legacy day sweep; with
		// -scenario the policy is a uniform axis, not a grid. Refuse
		// the combination rather than silently dropping a flag.
		if explicit["policy"] || explicit["modes"] {
			fmt.Fprintln(stderr, "-scenario and -policy/-modes cannot be combined; grid policies with separate -scenario cells or a policy-comparison sweep")
			return 2
		}
		cells, err = buildScenarioGrid(*scenarios, *qpsList, *nodesList, *hours, sets, explicit)
	} else {
		selected := *policies
		if selected == "" {
			selected = *modes
		}
		cells, err = buildGrid(selected, *qpsList, *nodesList, *hours, sets)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	cfg := sweep.Config{Replicas: *replicas, Workers: *workers, BaseSeed: *seed}
	start := time.Now()
	results, runErr := sweep.SweepScenarios(cfg, cells)
	if results == nil { // validation failure: nothing ran
		fmt.Fprintln(stderr, runErr)
		return 2
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = writeJSON(w, results)
	case "csv":
		err = writeCSV(w, results)
	default:
		err = fmt.Errorf("unknown format %q (want json or csv)", *format)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "swept %d points × %d replicas in %v\n", len(cells), *replicas, elapsed)
	if runErr != nil { // replicas failed: results are partial
		fmt.Fprintln(stderr, "some replicas failed:", runErr)
		return 1
	}
	return 0
}

// buildGrid expands the legacy policy × qps × nodes grid into
// scenario-registry cells over the Table II/III day experiments.
// Every policy runs the fib day's trace calibration except "var",
// which keeps its own paper day — exactly the pre-registry behavior,
// now expressed as fib-day/var-day scenario cells. -set options apply
// to every cell (the day scenarios document actions/sleep-exec/...).
// Cells are validated by SweepScenarios before anything runs.
func buildGrid(policies, qpsList, nodesList string, hours int, sets scenario.SetFlag) ([]sweep.ScenarioPoint, error) {
	var cells []sweep.ScenarioPoint
	for _, name := range strings.Split(policies, ",") {
		name = strings.TrimSpace(name)
		day := "fib-day"
		if name == "var" {
			day = "var-day"
		}
		for _, qpsStr := range strings.Split(qpsList, ",") {
			qps, err := strconv.ParseFloat(strings.TrimSpace(qpsStr), 64)
			if err != nil {
				return nil, fmt.Errorf("bad qps %q: %v", qpsStr, err)
			}
			for _, nodesStr := range strings.Split(nodesList, ",") {
				nodes, err := strconv.Atoi(strings.TrimSpace(nodesStr))
				if err != nil {
					return nil, fmt.Errorf("bad nodes %q: %v", nodesStr, err)
				}
				opts := []scenario.Option{
					scenario.WithPolicy(name),
					scenario.WithQPS(qps),
					scenario.WithNodes(nodes),
					scenario.WithHorizon(time.Duration(hours) * time.Hour),
				}
				opts = append(opts, sets.Options()...)
				cells = append(cells, sweep.ScenarioPoint{
					Name:     fmt.Sprintf("%s/qps=%g/nodes=%d", name, qps, nodes),
					Scenario: day,
					Options:  opts,
				})
			}
		}
	}
	return cells, nil
}

// buildScenarioGrid expands scenarios × qps × nodes into cells. Grid
// axes the caller never set stay off the grid (and out of the cell
// names), so each scenario keeps its own paper defaults; setting an
// axis a scenario does not honor fails SweepScenarios' validation
// (no silent duplicate cells).
func buildScenarioGrid(scenarios, qpsList, nodesList string, hours int, sets scenario.SetFlag, explicit map[string]bool) ([]sweep.ScenarioPoint, error) {
	type axis struct {
		label string
		opt   scenario.Option
	}
	expand := func(flagName, listStr string, parse func(string) (axis, error)) ([]axis, error) {
		if !explicit[flagName] {
			return []axis{{}}, nil // unset: one cell, scenario default
		}
		var out []axis
		for _, s := range strings.Split(listStr, ",") {
			a, err := parse(strings.TrimSpace(s))
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		}
		return out, nil
	}

	qpsAxis, err := expand("qps", qpsList, func(s string) (axis, error) {
		q, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return axis{}, fmt.Errorf("bad qps %q: %v", s, err)
		}
		return axis{label: fmt.Sprintf("/qps=%g", q), opt: scenario.WithQPS(q)}, nil
	})
	if err != nil {
		return nil, err
	}
	nodesAxis, err := expand("nodes", nodesList, func(s string) (axis, error) {
		n, err := strconv.Atoi(s)
		if err != nil {
			return axis{}, fmt.Errorf("bad nodes %q: %v", s, err)
		}
		return axis{label: fmt.Sprintf("/nodes=%d", n), opt: scenario.WithNodes(n)}, nil
	})
	if err != nil {
		return nil, err
	}

	var shared []scenario.Option
	if explicit["hours"] {
		shared = append(shared, scenario.WithHorizon(time.Duration(hours)*time.Hour))
	}
	shared = append(shared, sets.Options()...)

	var cells []sweep.ScenarioPoint
	for _, name := range strings.Split(scenarios, ",") {
		name = strings.TrimSpace(name)
		for _, q := range qpsAxis {
			for _, n := range nodesAxis {
				opts := append([]scenario.Option(nil), shared...)
				if q.opt != nil {
					opts = append(opts, q.opt)
				}
				if n.opt != nil {
					opts = append(opts, n.opt)
				}
				cells = append(cells, sweep.ScenarioPoint{
					Name:     name + q.label + n.label,
					Scenario: name,
					Options:  opts,
				})
			}
		}
	}
	return cells, nil
}

func writeJSON(w io.Writer, results []sweep.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// writeCSV emits one row per (point, metric) with the full summary.
func writeCSV(w io.Writer, results []sweep.Result) error {
	cw := csv.NewWriter(w)
	header := []string{"point", "metric", "n", "mean", "std", "ci95", "min", "p25", "median", "p75", "max"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, res := range results {
		metrics := make([]string, 0, len(res.Metrics))
		for name := range res.Metrics {
			metrics = append(metrics, name)
		}
		sort.Strings(metrics)
		for _, name := range metrics {
			s := res.Metrics[name]
			row := []string{
				res.Name, name, strconv.Itoa(s.N),
				f(s.Mean), f(s.Std), f(s.CI95),
				f(s.Min), f(s.P25), f(s.Median), f(s.P75), f(s.Max),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
