// Command idle-analysis regenerates the production-workload analysis of
// §I: the idle-node and idle-period distributions of Fig. 1 and the
// HPC-job CDFs of Fig. 2, over a calibrated synthetic week.
//
// Usage:
//
//	idle-analysis -seed 1
//	idle-analysis -days 7 -trace-out week.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	nodes := flag.Int("nodes", experiments.PrometheusNodes, "cluster size")
	days := flag.Int("days", 7, "trace length in days")
	traceOut := flag.String("trace-out", "", "optional path to dump the trace as CSV")
	flag.Parse()

	horizon := time.Duration(*days) * 24 * time.Hour
	tr := workload.DefaultIdleProcess(*nodes, horizon, *seed).Generate()

	fig1 := experiments.RunFig1(tr)
	fig1.Render(os.Stdout)
	fmt.Println()
	fig2 := experiments.RunFig2(*seed)
	fig2.Render(os.Stdout)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s (%d periods)\n", *traceOut, len(tr.Periods))
	}
}
