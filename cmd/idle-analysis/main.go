// Command idle-analysis regenerates the production-workload analysis of
// §I: the idle-node and idle-period distributions of Fig. 1 and the
// HPC-job CDFs of Fig. 2, over a calibrated synthetic week.
//
// Usage:
//
//	idle-analysis -seed 1
//	idle-analysis -days 7 -trace-out week.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main behind testable seams: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("idle-analysis", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "random seed")
	nodes := fs.Int("nodes", experiments.PrometheusNodes, "cluster size")
	days := fs.Int("days", 7, "trace length in days")
	traceOut := fs.String("trace-out", "", "optional path to dump the trace as CSV")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	horizon := time.Duration(*days) * 24 * time.Hour
	tr := workload.DefaultIdleProcess(*nodes, horizon, *seed).Generate()

	fig1 := experiments.RunFig1(tr)
	fig1.Render(stdout)
	fmt.Fprintln(stdout)
	fig2 := experiments.RunFig2(*seed)
	fig2.Render(stdout)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "trace-out:", err)
			return 1
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			fmt.Fprintln(stderr, "trace-out:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\ntrace written to %s (%d periods)\n", *traceOut, len(tr.Periods))
	}
	return 0
}
