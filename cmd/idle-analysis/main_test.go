package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestFlagParity(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
	errb.Reset()
	if code := run([]string{"-nonsense"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-nodes", "many"}, &out, &errb); code != 2 {
		t.Errorf("bad value: exit %d, want 2", code)
	}
}

func TestRunAndTraceOut(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a full trace and job stream (skipped under -short)")
	}
	path := filepath.Join(t.TempDir(), "day.csv")
	var out, errb bytes.Buffer
	if code := run([]string{"-nodes", "32", "-days", "1", "-seed", "3", "-trace-out", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Fig 1a", "Fig 2", "trace written to"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q", want)
		}
	}
	// The dumped trace must read back.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := workload.ReadCSV(f)
	if err != nil {
		t.Fatalf("dumped trace does not parse: %v", err)
	}
	if tr.Nodes != 32 {
		t.Errorf("dumped trace has %d nodes, want 32", tr.Nodes)
	}
}

func TestTraceOutError(t *testing.T) {
	var out, errb bytes.Buffer
	path := filepath.Join(t.TempDir(), "no-such-dir", "day.csv")
	if code := run([]string{"-nodes", "8", "-days", "1", "-trace-out", path}, &out, &errb); code != 1 {
		t.Errorf("unwritable -trace-out: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "trace-out:") {
		t.Errorf("stderr %q lacks the trace-out error prefix", errb.String())
	}
}
