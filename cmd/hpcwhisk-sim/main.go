// Command hpcwhisk-sim runs one experiment scenario from the registry
// on the simulated cluster: any table or figure of the paper (and any
// custom-registered scenario) selected by name, configured through the
// uniform axes (-seed/-nodes/-hours/-qps/-policy) plus generic
// -set key=value scenario options.
//
// Usage:
//
//	hpcwhisk-sim -list
//	hpcwhisk-sim -mode fib -seed 1
//	hpcwhisk-sim -policy adaptive -hours 6
//	hpcwhisk-sim -scenario endogenous -set utilization=0.9
//	hpcwhisk-sim -scenario table1 -nodes 512 -timeout 30s
//
// A run is cancellable: ^C (or -timeout) stops the simulation at the
// next epoch boundary and reports where it was cut.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/loadgen"
	"repro/internal/policy"
	"repro/internal/scenario"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main behind testable seams: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hpcwhisk-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenarioName := fs.String("scenario", "", "scenario to run (see -list); empty derives the paper day from -policy/-mode")
	list := fs.Bool("list", false, "list the registered scenarios and exit")
	var sets scenario.SetFlag
	fs.Var(&sets, "set", "scenario-specific option as key=value (repeatable; see -list)")
	mode := fs.String("mode", "fib", "paper supply model: fib or var (deprecated alias of -policy)")
	policyName := fs.String("policy", "", "supply policy (registry names: "+strings.Join(policy.Names(), ",")+"); overrides -mode")
	seed := fs.Int64("seed", 1, "random seed (runs are deterministic per seed)")
	nodes := fs.Int("nodes", experiments.PrometheusNodes, "cluster size")
	hours := fs.Int("hours", 24, "experiment length in hours")
	qps := fs.Float64("qps", 10, "responsiveness load (0 disables)")
	shards := fs.Int("shards", 1, "site shards run in parallel under the pdes coordinator (>1; byte-identical to sequential)")
	timeout := fs.Duration("timeout", 0, "wall-clock limit; 0 runs to completion (^C also cancels)")
	minutes := fs.Bool("minutes", false, "print the per-minute Fig 5b/6b series (day scenarios)")
	series := fs.Bool("series", false, "print the per-minute worker-count panels (Fig 5a/6a, day scenarios)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "registered scenarios (run with -scenario <name>):")
		scenario.FprintCatalog(stdout)
		return 0
	}

	// Resolve the scenario: explicit -scenario, or the paper day the
	// selected policy historically implied (var keeps its own day).
	name := *scenarioName
	policySel := *policyName
	if policySel == "" {
		policySel = *mode
	}
	if name == "" {
		name = "fib-day"
		if policySel == "var" {
			name = "var-day"
		}
	}

	// Only explicitly set axes reach the scenario, so every scenario
	// keeps its own paper defaults under plain `-scenario <name>`.
	opts := []scenario.Option{scenario.WithSeed(*seed)}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["nodes"] {
		opts = append(opts, scenario.WithNodes(*nodes))
	}
	if explicit["hours"] {
		opts = append(opts, scenario.WithHorizon(time.Duration(*hours)*time.Hour))
	}
	if explicit["qps"] {
		opts = append(opts, scenario.WithQPS(*qps))
	}
	if explicit["policy"] || explicit["mode"] || *scenarioName == "" {
		opts = append(opts, scenario.WithPolicy(policySel))
	}
	opts = append(opts, sets.Options()...)
	// -shards is sugar for -set shards=N; appended after the sets so the
	// dedicated flag wins when both are given.
	if explicit["shards"] {
		if *shards < 1 {
			fmt.Fprintf(stderr, "-shards wants a positive shard count, got %d\n", *shards)
			return 2
		}
		opts = append(opts, scenario.WithOption("shards", strconv.Itoa(*shards)))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Profiling taps for the README's workflow: a full paper day is a
	// realistic request-path profile in a couple of wall-clock seconds.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}()
	}

	start := time.Now()
	res, err := scenario.Run(ctx, name, opts...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		var canceled *scenario.CancelError
		if errors.As(err, &canceled) {
			return 1
		}
		return 2
	}

	scenario.Fprint(stdout, res)
	fmt.Fprintf(stdout, "(simulated scenario %q in %v)\n", name, time.Since(start).Round(time.Millisecond))

	if day, ok := res.Unwrap().(experiments.DayResult); ok {
		if *series {
			fmt.Fprintln(stdout)
			day.RenderSeries(stdout)
		}
		if *minutes && day.Series != nil {
			fmt.Fprintln(stdout, "\nper-minute series (Fig 5b/6b):")
			fmt.Fprintf(stdout, "%-8s %8s %8s %8s %8s\n", "minute", "success", "failed", "lost", "503")
			for i, row := range day.Series.Rows() {
				fmt.Fprintf(stdout, "%-8d %8d %8d %8d %8d\n", i,
					row.Counts[loadgen.LabelSuccess], row.Counts[loadgen.LabelFailed],
					row.Counts[loadgen.LabelLost], row.Counts[loadgen.Label503])
			}
		}
	}
	return 0
}
