// Command hpcwhisk-sim runs a full 24-hour HPC-Whisk production
// experiment (Tables II/III, Figs. 5/6 of the paper) on the simulated
// cluster and prints the three monitoring perspectives plus the
// responsiveness report.
//
// Usage:
//
//	hpcwhisk-sim -mode fib -seed 1
//	hpcwhisk-sim -mode var -hours 24 -qps 10 -minutes
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/loadgen"
)

func main() {
	mode := flag.String("mode", "fib", "pilot supply model: fib or var")
	seed := flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
	nodes := flag.Int("nodes", experiments.PrometheusNodes, "cluster size")
	hours := flag.Int("hours", 24, "experiment length in hours")
	qps := flag.Float64("qps", 10, "responsiveness load (0 disables)")
	minutes := flag.Bool("minutes", false, "print the per-minute Fig 5b/6b series")
	series := flag.Bool("series", false, "print the per-minute worker-count panels (Fig 5a/6a)")
	flag.Parse()

	var cfg experiments.DayConfig
	switch *mode {
	case "fib":
		cfg = experiments.FibDay(*seed)
	case "var":
		cfg = experiments.VarDay(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want fib or var)\n", *mode)
		os.Exit(2)
	}
	cfg.Nodes = *nodes
	cfg.Horizon = time.Duration(*hours) * time.Hour
	cfg.QPS = *qps

	start := time.Now()
	res := experiments.RunDay(cfg)
	res.Render(os.Stdout)
	fmt.Printf("(simulated %v of cluster time in %v)\n", cfg.Horizon, time.Since(start).Round(time.Millisecond))

	if *series {
		fmt.Println()
		res.RenderSeries(os.Stdout)
	}

	if *minutes && res.Series != nil {
		fmt.Println("\nper-minute series (Fig 5b/6b):")
		fmt.Printf("%-8s %8s %8s %8s %8s\n", "minute", "success", "failed", "lost", "503")
		for i, row := range res.Series.Rows() {
			fmt.Printf("%-8d %8d %8d %8d %8d\n", i,
				row.Counts[loadgen.LabelSuccess], row.Counts[loadgen.LabelFailed],
				row.Counts[loadgen.LabelLost], row.Counts[loadgen.Label503])
		}
	}
}
