// Command hpcwhisk-sim runs a full 24-hour HPC-Whisk production
// experiment (Tables II/III, Figs. 5/6 of the paper) on the simulated
// cluster and prints the three monitoring perspectives plus the
// responsiveness report.
//
// Usage:
//
//	hpcwhisk-sim -mode fib -seed 1
//	hpcwhisk-sim -policy adaptive -hours 6
//	hpcwhisk-sim -mode var -hours 24 -qps 10 -minutes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/loadgen"
	"repro/internal/policy"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main behind testable seams: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hpcwhisk-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "fib", "paper supply model: fib or var (deprecated alias of -policy)")
	policyName := fs.String("policy", "", "supply policy (registry names: "+strings.Join(policy.Names(), ",")+"); overrides -mode")
	seed := fs.Int64("seed", 1, "random seed (runs are deterministic per seed)")
	nodes := fs.Int("nodes", experiments.PrometheusNodes, "cluster size")
	hours := fs.Int("hours", 24, "experiment length in hours")
	qps := fs.Float64("qps", 10, "responsiveness load (0 disables)")
	minutes := fs.Bool("minutes", false, "print the per-minute Fig 5b/6b series")
	series := fs.Bool("series", false, "print the per-minute worker-count panels (Fig 5a/6a)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	name := *policyName
	if name == "" {
		name = *mode
	}
	if _, err := policy.New(name); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cfg := experiments.FibDay(*seed)
	if name == "var" {
		cfg = experiments.VarDay(*seed)
	}
	cfg.Policy = name
	cfg.Nodes = *nodes
	cfg.Horizon = time.Duration(*hours) * time.Hour
	cfg.QPS = *qps

	start := time.Now()
	res := experiments.RunDay(cfg)
	res.Render(stdout)
	fmt.Fprintf(stdout, "(simulated %v of cluster time in %v)\n", cfg.Horizon, time.Since(start).Round(time.Millisecond))

	if *series {
		fmt.Fprintln(stdout)
		res.RenderSeries(stdout)
	}

	if *minutes && res.Series != nil {
		fmt.Fprintln(stdout, "\nper-minute series (Fig 5b/6b):")
		fmt.Fprintf(stdout, "%-8s %8s %8s %8s %8s\n", "minute", "success", "failed", "lost", "503")
		for i, row := range res.Series.Rows() {
			fmt.Fprintf(stdout, "%-8d %8d %8d %8d %8d\n", i,
				row.Counts[loadgen.LabelSuccess], row.Counts[loadgen.LabelFailed],
				row.Counts[loadgen.LabelLost], row.Counts[loadgen.Label503])
		}
	}
	return 0
}
