package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func TestRunRejectsUnknownPolicy(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-policy", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown policy: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown policy") {
		t.Errorf("stderr %q lacks the unknown-policy error", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-mode", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown mode: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-nonsense"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
}

// stripTiming drops the wall-clock line, the only non-deterministic
// output.
func stripTiming(b []byte) []byte {
	var out [][]byte
	for _, line := range bytes.Split(b, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("(simulated ")) {
			continue
		}
		out = append(out, line)
	}
	return bytes.Join(out, []byte("\n"))
}

// TestRunGolden pins the rendered output of a small deterministic run,
// including the per-minute series flags. Regenerate with `go test
// ./cmd/hpcwhisk-sim -run TestRunGolden -update` after an intentional
// change.
func TestRunGolden(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-policy", "hybrid", "-nodes", "48", "-hours", "1", "-qps", "2", "-seed", "7", "-minutes", "-series"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := stripTiming(out.Bytes())
	golden := filepath.Join("testdata", "hybrid_hour.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverged from %s (%d vs %d bytes); run with -update if intentional",
			golden, len(got), len(want))
	}
}

// TestModeFlagStillWorks keeps the deprecated -mode spelling alive.
func TestModeFlagStillWorks(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "var", "-nodes", "48", "-hours", "1", "-qps", "0", "-seed", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table III — var day") {
		t.Errorf("output lacks the var-day header:\n%s", out.String())
	}
}
