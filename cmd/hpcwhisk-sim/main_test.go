package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func TestRunRejectsUnknownPolicy(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-policy", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown policy: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown policy") {
		t.Errorf("stderr %q lacks the unknown-policy error", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-mode", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown mode: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-nonsense"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
}

// stripTiming drops the wall-clock line, the only non-deterministic
// output.
func stripTiming(b []byte) []byte {
	var out [][]byte
	for _, line := range bytes.Split(b, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("(simulated ")) {
			continue
		}
		out = append(out, line)
	}
	return bytes.Join(out, []byte("\n"))
}

// TestRunGolden pins the rendered output of a small deterministic run,
// including the per-minute series flags. Regenerate with `go test
// ./cmd/hpcwhisk-sim -run TestRunGolden -update` after an intentional
// change.
func TestRunGolden(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-policy", "hybrid", "-nodes", "48", "-hours", "1", "-qps", "2", "-seed", "7", "-minutes", "-series"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := stripTiming(out.Bytes())
	golden := filepath.Join("testdata", "hybrid_hour.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverged from %s (%d vs %d bytes); run with -update if intentional",
			golden, len(got), len(want))
	}
}

// TestListScenarios: -list prints the whole catalog and exits 0.
func TestListScenarios(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list: exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"fib-day", "var-day", "fig1", "fig2", "fig3", "fig7",
		"table1", "ablation", "policy-comparison", "scientific", "endogenous"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks scenario %q", name)
		}
	}
	if !strings.Contains(out.String(), "-set utilization=<float>") {
		t.Error("-list output lacks the per-scenario option docs")
	}
}

// TestGenericScenario: any registered scenario runs through the same
// flag surface with zero scenario-specific CLI code.
func TestGenericScenario(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "fig3", "-seed", "7"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Fig 3 —") {
		t.Errorf("output lacks the Fig 3 render:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `(simulated scenario "fig3"`) {
		t.Errorf("output lacks the timing line:\n%s", out.String())
	}
}

// TestSetOption: -set reaches the scenario; bad keys and values are
// rejected with exit 2 before anything runs.
func TestSetOption(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "fig2", "-set", "jobs=3000"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "3000 jobs") {
		t.Errorf("jobs option did not reach the scenario:\n%s", out.String())
	}

	cases := []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-scenario", "bogus"}, "unknown scenario"},
		{[]string{"-scenario", "fig2", "-set", "jobz=3000"}, "no option"},
		{[]string{"-scenario", "fig2", "-set", "jobs=many"}, "does not parse"},
		{[]string{"-scenario", "fig2", "-set", "noequals"}, "key=value"},
	}
	for _, tc := range cases {
		out.Reset()
		errb.Reset()
		if code := run(tc.args, &out, &errb); code != 2 {
			t.Errorf("%v: exit %d, want 2", tc.args, code)
		}
		if !strings.Contains(errb.String(), tc.wantErr) {
			t.Errorf("%v: stderr %q lacks %q", tc.args, errb.String(), tc.wantErr)
		}
	}
}

// TestModeFlagStillWorks keeps the deprecated -mode spelling alive.
func TestModeFlagStillWorks(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "var", "-nodes", "48", "-hours", "1", "-qps", "0", "-seed", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table III — var day") {
		t.Errorf("output lacks the var-day header:\n%s", out.String())
	}
}

// TestShardsFlag: -shards reaches the scenario as its shards option —
// the sharded run renders byte-identically to the sequential one — and
// invalid shard counts are rejected with exit 2 before anything runs.
func TestShardsFlag(t *testing.T) {
	render := func(extra ...string) []byte {
		var out, errb bytes.Buffer
		args := append([]string{"-policy", "fib", "-nodes", "48", "-hours", "1", "-qps", "2", "-seed", "7"}, extra...)
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("%v: exit %d, stderr: %s", args, code, errb.String())
		}
		return stripTiming(out.Bytes())
	}
	if !bytes.Equal(render(), render("-shards", "2")) {
		t.Error("-shards 2 rendered differently from the sequential run")
	}

	cases := []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-shards", "0"}, "positive shard count"},
		{[]string{"-scenario", "fig2", "-shards", "2"}, "no option"},
		{[]string{"-set", "shards=two"}, "does not parse"},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb); code != 2 {
			t.Errorf("%v: exit %d, want 2", tc.args, code)
		}
		if !strings.Contains(errb.String(), tc.wantErr) {
			t.Errorf("%v: stderr %q lacks %q", tc.args, errb.String(), tc.wantErr)
		}
	}
}
