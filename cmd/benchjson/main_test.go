package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableIIFibExperiment   	       1	3444993085 ns/op	        12.26 healthy-avg	        86.49 live-coverage-%	707151208 B/op	21433678 allocs/op
BenchmarkWarmupCalibration-8    	       1	      1513 ns/op	      16 B/op	       1 allocs/op
PASS
ok  	repro	27.175s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("env header = %q/%q/%q", doc.Goos, doc.Goarch, doc.CPU)
	}
	fib := doc.Benchmarks["BenchmarkTableIIFibExperiment"]
	if fib == nil {
		t.Fatal("fib benchmark missing")
	}
	if fib["ns/op"] != 3444993085 || fib["allocs/op"] != 21433678 || fib["B/op"] != 707151208 {
		t.Errorf("fib perf metrics = %v", fib)
	}
	if fib["healthy-avg"] != 12.26 || fib["live-coverage-%"] != 86.49 {
		t.Errorf("fib custom metrics = %v", fib)
	}
	if _, ok := doc.Benchmarks["BenchmarkWarmupCalibration"]; !ok {
		t.Error("GOMAXPROCS suffix not stripped")
	}
}

func TestGateOneSided(t *testing.T) {
	baseline := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkA":    {"ns/op": 1000, "allocs/op": 100},
		"BenchmarkGone": {"ns/op": 50},
	}}
	tracked := []string{"ns/op", "allocs/op"}

	// 3.2x faster: an improvement must never fail the gate.
	better := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 310, "allocs/op": 1},
	}}
	if regs := gate(baseline, better, tracked, 25); len(regs) != 0 {
		t.Errorf("improvement flagged as drift: %v", regs)
	}

	// Within the gate.
	within := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 1200, "allocs/op": 110},
	}}
	if regs := gate(baseline, within, tracked, 25); len(regs) != 0 {
		t.Errorf("within-gate drift flagged: %v", regs)
	}

	// A real regression fails.
	worse := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 1400, "allocs/op": 90},
	}}
	regs := gate(baseline, worse, tracked, 25)
	if len(regs) != 1 || regs[0].metric != "ns/op" {
		t.Fatalf("regression not caught: %v", regs)
	}
	if got := regs[0].String(); !strings.Contains(got, "40.0%") {
		t.Errorf("regression message = %q", got)
	}

	// Untracked custom metrics never gate.
	custom := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 1000, "allocs/op": 100, "healthy-avg": 99},
	}}
	if regs := gate(baseline, custom, tracked, 25); len(regs) != 0 {
		t.Errorf("untracked metric gated: %v", regs)
	}
}

func TestParseRejectsMalformedValue(t *testing.T) {
	_, err := parse(strings.NewReader("BenchmarkX 1 abc ns/op\n"))
	if err == nil {
		t.Error("malformed value accepted")
	}
}

func TestMissingRequired(t *testing.T) {
	doc := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkRequestPath": {"ns/op": 2500, "allocs/op": 0},
		"BenchmarkFig5b":       {"ns/op": 1, "allocs/op": 2},
	}}
	cases := []struct {
		require string
		tracked []string
		want    []string
	}{
		{"", []string{"allocs/op"}, nil},
		{"BenchmarkRequestPath", []string{"allocs/op"}, nil},
		{"BenchmarkRequestPath,BenchmarkFig5b", []string{"ns/op", "allocs/op"}, nil},
		{" BenchmarkRequestPath , BenchmarkFig5b ", []string{"allocs/op"}, nil},
		{"BenchmarkGone", []string{"allocs/op"}, []string{"BenchmarkGone"}},
		{"BenchmarkRequestPath,BenchmarkGone,BenchmarkAlsoGone", []string{"allocs/op"},
			[]string{"BenchmarkGone", "BenchmarkAlsoGone"}},
		{",,", []string{"allocs/op"}, nil},
		// A present benchmark missing a tracked metric (a -benchmem-less
		// run, or a trimmed baseline) is flagged at metric level.
		{"BenchmarkRequestPath", []string{"allocs/op", "B/op"},
			[]string{"BenchmarkRequestPath (B/op)"}},
		{"BenchmarkRequestPath", []string{" allocs/op ", ""}, nil},
	}
	for _, tc := range cases {
		got := missingRequired(doc, tc.require, tc.tracked)
		if len(got) != len(tc.want) {
			t.Errorf("missingRequired(%q, %v) = %v, want %v", tc.require, tc.tracked, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("missingRequired(%q, %v) = %v, want %v", tc.require, tc.tracked, got, tc.want)
				break
			}
		}
	}
}

func TestGateZeroBaselineIsAPromise(t *testing.T) {
	baseline := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkRequestPath": {"allocs/op": 0, "B/op": 0, "ns/op": 2500},
	}}
	clean := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkRequestPath": {"allocs/op": 0, "B/op": 0, "ns/op": 2600},
	}}
	if regs := gate(baseline, clean, []string{"allocs/op", "B/op"}, 25); len(regs) != 0 {
		t.Fatalf("zero staying zero flagged: %v", regs)
	}
	dirty := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkRequestPath": {"allocs/op": 3, "B/op": 96, "ns/op": 2600},
	}}
	regs := gate(baseline, dirty, []string{"allocs/op", "B/op"}, 25)
	if len(regs) != 2 {
		t.Fatalf("zero→nonzero must fail both tracked metrics, got %v", regs)
	}
	for _, r := range regs {
		if r.String() == "" {
			t.Error("empty regression rendering")
		}
	}
}
