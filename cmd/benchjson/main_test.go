package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableIIFibExperiment   	       1	3444993085 ns/op	        12.26 healthy-avg	        86.49 live-coverage-%	707151208 B/op	21433678 allocs/op
BenchmarkWarmupCalibration-8    	       1	      1513 ns/op	      16 B/op	       1 allocs/op
PASS
ok  	repro	27.175s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("env header = %q/%q/%q", doc.Goos, doc.Goarch, doc.CPU)
	}
	fib := doc.Benchmarks["BenchmarkTableIIFibExperiment"]
	if fib == nil {
		t.Fatal("fib benchmark missing")
	}
	if fib["ns/op"] != 3444993085 || fib["allocs/op"] != 21433678 || fib["B/op"] != 707151208 {
		t.Errorf("fib perf metrics = %v", fib)
	}
	if fib["healthy-avg"] != 12.26 || fib["live-coverage-%"] != 86.49 {
		t.Errorf("fib custom metrics = %v", fib)
	}
	if _, ok := doc.Benchmarks["BenchmarkWarmupCalibration"]; !ok {
		t.Error("GOMAXPROCS suffix not stripped")
	}
}

func TestGateOneSided(t *testing.T) {
	baseline := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkA":    {"ns/op": 1000, "allocs/op": 100},
		"BenchmarkGone": {"ns/op": 50},
	}}
	tracked := []string{"ns/op", "allocs/op"}

	// 3.2x faster: an improvement must never fail the gate.
	better := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 310, "allocs/op": 1},
	}}
	if regs := gate(baseline, better, tracked, 25); len(regs) != 0 {
		t.Errorf("improvement flagged as drift: %v", regs)
	}

	// Within the gate.
	within := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 1200, "allocs/op": 110},
	}}
	if regs := gate(baseline, within, tracked, 25); len(regs) != 0 {
		t.Errorf("within-gate drift flagged: %v", regs)
	}

	// A real regression fails.
	worse := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 1400, "allocs/op": 90},
	}}
	regs := gate(baseline, worse, tracked, 25)
	if len(regs) != 1 || regs[0].metric != "ns/op" {
		t.Fatalf("regression not caught: %v", regs)
	}
	if got := regs[0].String(); !strings.Contains(got, "40.0%") {
		t.Errorf("regression message = %q", got)
	}

	// Untracked custom metrics never gate.
	custom := Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 1000, "allocs/op": 100, "healthy-avg": 99},
	}}
	if regs := gate(baseline, custom, tracked, 25); len(regs) != 0 {
		t.Errorf("untracked metric gated: %v", regs)
	}
}

func TestParseRejectsMalformedValue(t *testing.T) {
	_, err := parse(strings.NewReader("BenchmarkX 1 abc ns/op\n"))
	if err == nil {
		t.Error("malformed value accepted")
	}
}
