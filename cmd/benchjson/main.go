// Command benchjson converts `go test -bench` output into a stable JSON
// document and gates it against a committed baseline, so CI can track
// the perf trajectory of the reproduction and fail on regressions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x -benchmem ./... | benchjson -out BENCH_ci.json
//	benchjson -in bench.txt -out BENCH_ci.json -baseline BENCH_ci.json -gate 25
//
// The gate is one-sided: a tracked metric (ns/op, B/op, allocs/op by
// default) fails the run only when it regresses — exceeds the baseline
// by more than -gate percent. Improvements never fail; committing the
// freshly emitted JSON is how the baseline is ratcheted forward.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Doc is the JSON layout: environment header lines plus one metric map
// per benchmark.
type Doc struct {
	Goos       string                        `json:"goos,omitempty"`
	Goarch     string                        `json:"goarch,omitempty"`
	CPU        string                        `json:"cpu,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// parse reads `go test -bench` output. Benchmark lines look like
//
//	BenchmarkName-8   10   123456 ns/op   12.5 custom-metric   64 B/op   2 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. The -GOMAXPROCS
// suffix is stripped so names are stable across machines.
func parse(r io.Reader) (Doc, error) {
	doc := Doc{Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // header or malformed line
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return doc, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			metrics[fields[i+1]] = v
		}
		doc.Benchmarks[name] = metrics
	}
	return doc, sc.Err()
}

// regression is one tracked metric exceeding its baseline.
type regression struct {
	bench, metric     string
	baseline, current float64
	driftPct, gatePct float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s %s regressed %.1f%% (baseline %g, current %g, gate %.0f%%)",
		r.bench, r.metric, r.driftPct, r.baseline, r.current, r.gatePct)
}

// gate compares current against baseline on the tracked metrics and
// returns every regression beyond gatePct. Benchmarks present only on
// one side are skipped (added or removed benchmarks are not drift).
func gate(baseline, current Doc, tracked []string, gatePct float64) []regression {
	var regs []regression
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			continue
		}
		for _, metric := range tracked {
			b, okB := base[metric]
			c, okC := cur[metric]
			if !okB || !okC || b < 0 {
				continue
			}
			if b == 0 {
				// A zero baseline is a promise (the zero-alloc request
				// path): any nonzero current value breaks it outright —
				// there is no percentage to ratchet against.
				if c > 0 {
					regs = append(regs, regression{
						bench: name, metric: metric,
						baseline: b, current: c,
						driftPct: math.Inf(1), gatePct: gatePct,
					})
				}
				continue
			}
			drift := 100 * (c - b) / b
			if drift > gatePct {
				regs = append(regs, regression{
					bench: name, metric: metric,
					baseline: b, current: c,
					driftPct: drift, gatePct: gatePct,
				})
			}
		}
	}
	return regs
}

// missingRequired returns the entries from the comma-separated require
// list that the document does not fully carry, in list order: the bare
// name when the benchmark is absent, or "name (metric)" when the
// benchmark is present but lacks a tracked metric (e.g. a run without
// -benchmem has no allocs/op to gate).
func missingRequired(doc Doc, require string, tracked []string) []string {
	var missing []string
	for _, name := range strings.Split(require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, ok := doc.Benchmarks[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		for _, metric := range tracked {
			metric = strings.TrimSpace(metric)
			if metric == "" {
				continue
			}
			if _, ok := m[metric]; !ok {
				missing = append(missing, name+" ("+metric+")")
			}
		}
	}
	return missing
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	baselinePath := flag.String("baseline", "", "committed baseline JSON to gate against (empty = no gate)")
	gatePct := flag.Float64("gate", 25, "fail when a tracked metric regresses by more than this percentage")
	track := flag.String("track", "ns/op,allocs/op,B/op", "comma-separated tracked metric units")
	require := flag.String("require", "", "comma-separated benchmark names that must appear in the input (a gated benchmark that silently vanishes — renamed, build-tagged out, crashed — fails the run instead of being skipped)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	doc, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	tracked := strings.Split(*track, ",")
	for i := range tracked {
		tracked[i] = strings.TrimSpace(tracked[i])
	}
	if missing := missingRequired(doc, *require, tracked); len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: required benchmarks missing from input: %s\n",
			strings.Join(missing, ", "))
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(buf)
	}

	if *baselinePath == "" {
		return
	}
	baseBuf, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var baseline Doc
	if err := json.Unmarshal(baseBuf, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad baseline %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}
	// The baseline must carry the required benchmarks too: gate()
	// skips metrics absent from the baseline, so a stale or trimmed
	// BENCH_ci.json would otherwise silently disarm the ratchet while
	// -require kept passing on the fresh output.
	if missing := missingRequired(baseline, *require, tracked); len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: required benchmarks missing from baseline %s: %s (re-ratchet the baseline)\n",
			*baselinePath, strings.Join(missing, ", "))
		os.Exit(1)
	}
	regs := gate(baseline, doc, tracked, *gatePct)
	for _, reg := range regs {
		fmt.Fprintln(os.Stderr, reg)
	}
	if len(regs) > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %.0f%% of baseline\n",
		len(doc.Benchmarks), *gatePct)
}
