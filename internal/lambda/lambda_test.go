package lambda

import (
	"math"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/whisk"
)

func TestSpeedFactor(t *testing.T) {
	cases := []struct {
		mem  int
		want float64
	}{
		{1769, 0.87},
		{2048, 0.87},  // capped at one core
		{10240, 0.87}, // still one core for single-threaded functions
		{884, 0.87 * 884.0 / 1769.0},
	}
	for _, c := range cases {
		if got := SpeedFactor(c.mem); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("SpeedFactor(%d) = %v, want %v", c.mem, got, c.want)
		}
	}
}

func TestFig7FactorIs15Percent(t *testing.T) {
	// The paper's headline: Prometheus ≈15% faster than Lambda-2048.
	slowdown := 1.0 / SpeedFactor(2048)
	if slowdown < 1.10 || slowdown > 1.20 {
		t.Errorf("Lambda slowdown = %.3f, want ≈1.15", slowdown)
	}
}

func TestPlatformName(t *testing.T) {
	p := Platform(2048)
	if p.Name != "Lambda-2048MB" {
		t.Errorf("name = %q", p.Name)
	}
	if p.SpeedFactor != SpeedFactor(2048) {
		t.Error("platform factor mismatch")
	}
}

func TestClientInvokeSucceeds(t *testing.T) {
	sim := des.New()
	c := NewClient(sim, DefaultClientConfig(), 1)
	c.RegisterAction("f", whisk.FixedExec(10*time.Millisecond))
	var got *whisk.Invocation
	c.Invoke("f", func(inv *whisk.Invocation) { got = inv })
	sim.Run()
	if got == nil {
		t.Fatal("no completion")
	}
	if got.Status != whisk.StatusSuccess {
		t.Errorf("status = %v", got.Status)
	}
	lat := got.Completed - got.Submitted
	// 10 ms / 0.87 + 30-120 ms overhead.
	if lat < 40*time.Millisecond || lat > 1200*time.Millisecond {
		t.Errorf("latency = %v", lat)
	}
	if c.Calls != 1 {
		t.Errorf("calls = %d", c.Calls)
	}
}

func TestClientDefaultExec(t *testing.T) {
	sim := des.New()
	cfg := DefaultClientConfig()
	cfg.ColdProb = 0
	c := NewClient(sim, cfg, 2)
	var got *whisk.Invocation
	c.Invoke("unregistered", func(inv *whisk.Invocation) { got = inv })
	sim.Run()
	if got == nil || got.Status != whisk.StatusSuccess {
		t.Fatalf("unregistered action failed: %+v", got)
	}
}

func TestClientColdStarts(t *testing.T) {
	sim := des.New()
	cfg := DefaultClientConfig()
	cfg.ColdProb = 1.0
	c := NewClient(sim, cfg, 3)
	var lat time.Duration
	c.Invoke("f", func(inv *whisk.Invocation) { lat = inv.Completed - inv.Submitted })
	sim.Run()
	if c.ColdCalls != 1 {
		t.Errorf("cold calls = %d", c.ColdCalls)
	}
	if lat < 250*time.Millisecond {
		t.Errorf("cold latency = %v, want ≥250ms", lat)
	}
}

func TestClientExecScaled(t *testing.T) {
	sim := des.New()
	cfg := DefaultClientConfig()
	cfg.ColdProb = 0
	cfg.FailureProb = 0
	cfg.WarmOverhead = dist.Constant{Value: 0}
	c := NewClient(sim, cfg, 4)
	c.RegisterAction("g", whisk.FixedExec(870*time.Millisecond))
	var lat time.Duration
	c.Invoke("g", func(inv *whisk.Invocation) { lat = inv.Completed - inv.Submitted })
	sim.Run()
	want := time.Duration(float64(870*time.Millisecond) / 0.87) // = 1s
	if d := lat - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("scaled latency = %v, want %v", lat, want)
	}
}
