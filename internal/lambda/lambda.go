// Package lambda models a commercial FaaS baseline (AWS Lambda) for two
// roles in the reproduction: the performance comparison of Fig. 7
// (memory-scaled CPU share, §V-D) and the fallback backend of the Alg. 1
// client wrapper (§III-E).
package lambda

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/sebs"
	"repro/internal/whisk"
)

// FullCPUMemoryMB is the memory size at which AWS Lambda grants a full
// vCPU (documented by AWS as 1,769 MB).
const FullCPUMemoryMB = 1769

// CoreEfficiency is the speed of a Lambda vCPU relative to a Prometheus
// node core, calibrated so the 2048 MB configuration runs the SeBS
// compute functions ≈15% slower than the HPC node (Fig. 7).
const CoreEfficiency = 0.87

// SpeedFactor returns the compute speed (Prometheus core = 1.0) of a
// Lambda slot with the given memory size.
func SpeedFactor(memoryMB int) float64 {
	share := float64(memoryMB) / FullCPUMemoryMB
	if share > 1 {
		share = 1
	}
	return share * CoreEfficiency
}

// Platform returns the Fig. 7 comparison platform for a memory size.
func Platform(memoryMB int) sebs.Platform {
	return sebs.Platform{
		Name:        fmt.Sprintf("Lambda-%dMB", memoryMB),
		SpeedFactor: SpeedFactor(memoryMB),
	}
}

// ClientConfig models the invocation path of the commercial service.
type ClientConfig struct {
	MemoryMB        int
	WarmOverhead    dist.Dist // request path overhead, seconds
	ColdStart       dist.Dist // extra cold-start latency, seconds
	ColdProb        float64   // probability a call hits a cold slot
	FailureProb     float64
	DefaultExecTime time.Duration // for actions without a registered model

	// Resume path (InvokeResume): the checkpoint state of a stranded
	// cluster execution is uploaded at ResumeBandwidthMBps, then the
	// process reconstructs in ResumeOverhead seconds before the
	// remaining body runs. Only drawn when a resume is invoked, so
	// deployments without checkpointing keep their draw sequence.
	ResumeBandwidthMBps dist.Dist
	ResumeOverhead      dist.Dist
}

// DefaultClientConfig returns a Lambda-like client model: sub-100 ms
// warm overhead, occasional several-hundred-ms cold starts.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		MemoryMB:        2048,
		WarmOverhead:    dist.Uniform{Lo: 0.030, Hi: 0.120},
		ColdStart:       dist.Uniform{Lo: 0.250, Hi: 0.900},
		ColdProb:        0.02,
		FailureProb:     0.001,
		DefaultExecTime: 10 * time.Millisecond,
		// Cross-site upload is slower than the cluster-internal restore
		// path: the calibrated RestoreBandwidthMBps halved (lognormal
		// median 350→175 MB/s, same spread, clamps scaled to match).
		ResumeBandwidthMBps: dist.Clamped{D: dist.Lognormal{Mu: math.Log(175), Sigma: 0.4}, Min: 40, Max: 600},
		ResumeOverhead:      dist.RestoreOverheadSeconds(),
	}
}

// Client is a core.Backend that always has capacity (the commercial
// cloud never runs out of idle HPC nodes). It executes registered
// actions under the memory-scaled speed factor.
type Client struct {
	sim    *des.Sim
	cfg    ClientConfig
	rng    *rand.Rand
	exec   map[string]whisk.ExecFunc
	nextID int64

	// Counters.
	Calls     int
	ColdCalls int
	Resumes   int // checkpointed executions continued here (InvokeResume)
}

// NewClient builds the commercial-cloud backend.
func NewClient(sim *des.Sim, cfg ClientConfig, seed int64) *Client {
	return &Client{sim: sim, cfg: cfg, rng: dist.NewRand(seed), exec: map[string]whisk.ExecFunc{}}
}

// RegisterAction attaches an execution-time model to an action name.
// Unregistered actions fall back to DefaultExecTime.
func (c *Client) RegisterAction(name string, exec whisk.ExecFunc) { c.exec[name] = exec }

// Invoke implements core.Backend: the call always succeeds (modulo the
// small failure probability) after overhead plus the speed-scaled
// execution time.
func (c *Client) Invoke(action string, done func(*whisk.Invocation)) *whisk.Invocation {
	c.Calls++
	inv := &whisk.Invocation{
		ID:        c.nextID,
		Submitted: c.sim.Now(),
		InvokerID: -1,
	}
	c.nextID++
	var execTime time.Duration
	if fn, ok := c.exec[action]; ok {
		execTime = fn(c.rng)
	} else {
		execTime = c.cfg.DefaultExecTime
	}
	execTime = time.Duration(float64(execTime) / SpeedFactor(c.cfg.MemoryMB))

	total := dist.Seconds(c.cfg.WarmOverhead, c.rng) + execTime
	if c.rng.Float64() < c.cfg.ColdProb {
		total += dist.Seconds(c.cfg.ColdStart, c.rng)
		inv.ColdStart = true
		c.ColdCalls++
	}
	status := whisk.StatusSuccess
	if c.rng.Float64() < c.cfg.FailureProb {
		status = whisk.StatusFailed
	}
	c.sim.After(total, func() {
		inv.Completed = c.sim.Now()
		inv.Status = status
		if done != nil {
			done(inv)
		}
	})
	return inv
}

// InvokeResume continues a checkpointed execution stranded on the
// cluster (core.ResumeBackend): the last checkpoint's stateMB uploads
// at the configured bandwidth, the process reconstructs, and only the
// remaining body runs — speed-scaled like every execution here. The
// resume slot is always cold (the cloud never saw this function's
// state before).
func (c *Client) InvokeResume(action string, remaining time.Duration, stateMB float64, done func(*whisk.Invocation)) *whisk.Invocation {
	c.Calls++
	c.Resumes++
	inv := &whisk.Invocation{
		ID:        c.nextID,
		Submitted: c.sim.Now(),
		InvokerID: -1,
		ColdStart: true,
		StateMB:   stateMB,
		Resumes:   1,
	}
	c.nextID++
	exec := time.Duration(float64(remaining) / SpeedFactor(c.cfg.MemoryMB))
	var transfer time.Duration
	if bw := c.cfg.ResumeBandwidthMBps.Sample(c.rng); bw > 0 && stateMB > 0 {
		transfer = time.Duration(stateMB / bw * float64(time.Second))
	}
	total := dist.Seconds(c.cfg.WarmOverhead, c.rng) +
		dist.Seconds(c.cfg.ColdStart, c.rng) +
		transfer + dist.Seconds(c.cfg.ResumeOverhead, c.rng) + exec
	c.ColdCalls++
	status := whisk.StatusSuccess
	if c.rng.Float64() < c.cfg.FailureProb {
		status = whisk.StatusFailed
	}
	c.sim.After(total, func() {
		inv.Completed = c.sim.Now()
		inv.Status = status
		if done != nil {
			done(inv)
		}
	})
	return inv
}
