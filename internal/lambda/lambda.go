// Package lambda models a commercial FaaS baseline (AWS Lambda) for two
// roles in the reproduction: the performance comparison of Fig. 7
// (memory-scaled CPU share, §V-D) and the fallback backend of the Alg. 1
// client wrapper (§III-E).
package lambda

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/sebs"
	"repro/internal/whisk"
)

// FullCPUMemoryMB is the memory size at which AWS Lambda grants a full
// vCPU (documented by AWS as 1,769 MB).
const FullCPUMemoryMB = 1769

// CoreEfficiency is the speed of a Lambda vCPU relative to a Prometheus
// node core, calibrated so the 2048 MB configuration runs the SeBS
// compute functions ≈15% slower than the HPC node (Fig. 7).
const CoreEfficiency = 0.87

// SpeedFactor returns the compute speed (Prometheus core = 1.0) of a
// Lambda slot with the given memory size.
func SpeedFactor(memoryMB int) float64 {
	share := float64(memoryMB) / FullCPUMemoryMB
	if share > 1 {
		share = 1
	}
	return share * CoreEfficiency
}

// Platform returns the Fig. 7 comparison platform for a memory size.
func Platform(memoryMB int) sebs.Platform {
	return sebs.Platform{
		Name:        fmt.Sprintf("Lambda-%dMB", memoryMB),
		SpeedFactor: SpeedFactor(memoryMB),
	}
}

// ClientConfig models the invocation path of the commercial service.
type ClientConfig struct {
	MemoryMB        int
	WarmOverhead    dist.Dist // request path overhead, seconds
	ColdStart       dist.Dist // extra cold-start latency, seconds
	ColdProb        float64   // probability a call hits a cold slot
	FailureProb     float64
	DefaultExecTime time.Duration // for actions without a registered model
}

// DefaultClientConfig returns a Lambda-like client model: sub-100 ms
// warm overhead, occasional several-hundred-ms cold starts.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		MemoryMB:        2048,
		WarmOverhead:    dist.Uniform{Lo: 0.030, Hi: 0.120},
		ColdStart:       dist.Uniform{Lo: 0.250, Hi: 0.900},
		ColdProb:        0.02,
		FailureProb:     0.001,
		DefaultExecTime: 10 * time.Millisecond,
	}
}

// Client is a core.Backend that always has capacity (the commercial
// cloud never runs out of idle HPC nodes). It executes registered
// actions under the memory-scaled speed factor.
type Client struct {
	sim    *des.Sim
	cfg    ClientConfig
	rng    *rand.Rand
	exec   map[string]whisk.ExecFunc
	nextID int64

	// Counters.
	Calls     int
	ColdCalls int
}

// NewClient builds the commercial-cloud backend.
func NewClient(sim *des.Sim, cfg ClientConfig, seed int64) *Client {
	return &Client{sim: sim, cfg: cfg, rng: dist.NewRand(seed), exec: map[string]whisk.ExecFunc{}}
}

// RegisterAction attaches an execution-time model to an action name.
// Unregistered actions fall back to DefaultExecTime.
func (c *Client) RegisterAction(name string, exec whisk.ExecFunc) { c.exec[name] = exec }

// Invoke implements core.Backend: the call always succeeds (modulo the
// small failure probability) after overhead plus the speed-scaled
// execution time.
func (c *Client) Invoke(action string, done func(*whisk.Invocation)) *whisk.Invocation {
	c.Calls++
	inv := &whisk.Invocation{
		ID:        c.nextID,
		Submitted: c.sim.Now(),
		InvokerID: -1,
	}
	c.nextID++
	var execTime time.Duration
	if fn, ok := c.exec[action]; ok {
		execTime = fn(c.rng)
	} else {
		execTime = c.cfg.DefaultExecTime
	}
	execTime = time.Duration(float64(execTime) / SpeedFactor(c.cfg.MemoryMB))

	total := dist.Seconds(c.cfg.WarmOverhead, c.rng) + execTime
	if c.rng.Float64() < c.cfg.ColdProb {
		total += dist.Seconds(c.cfg.ColdStart, c.rng)
		inv.ColdStart = true
		c.ColdCalls++
	}
	status := whisk.StatusSuccess
	if c.rng.Float64() < c.cfg.FailureProb {
		status = whisk.StatusFailed
	}
	c.sim.After(total, func() {
		inv.Completed = c.sim.Now()
		inv.Status = status
		if done != nil {
			done(inv)
		}
	})
	return inv
}
