package scenario

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiments"
)

// TestRegistryPathMatchesPreRefactorGolden closes the loop the Mode →
// policy refactor opened and this redesign extends: the fib/var
// production days run through the *scenario registry* must still
// reproduce, byte for byte, the goldens rendered by the original
// pre-refactor Mode-enum manager (the same files
// internal/experiments/golden_test.go pins for the direct RunDay
// paths).
func TestRegistryPathMatchesPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	cases := []struct{ scenario, golden string }{
		{"fib-day", "fibday_seed2.golden"},
		{"var-day", "varday_seed2.golden"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scenario, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("..", "experiments", "testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), tc.scenario, WithSeed(2))
			if err != nil {
				t.Fatal(err)
			}
			day, ok := res.Unwrap().(experiments.DayResult)
			if !ok {
				t.Fatalf("Unwrap() = %T, want experiments.DayResult", res.Unwrap())
			}
			var buf bytes.Buffer
			day.Render(&buf)
			day.RenderSeries(&buf)
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("registry path diverged from the pre-refactor golden %s (%d vs %d bytes)",
					tc.golden, buf.Len(), len(want))
			}
		})
	}
}

// TestMidDayCancellation is the acceptance test of the cancellation
// design: a day experiment canceled mid-run (here by its own progress
// callback, deterministically at the two-hour mark of a 6-hour day)
// must return a partial-result error promptly — at the very next
// simulated epoch — rather than running the day out.
func TestMidDayCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const cutAt = 2 * time.Hour
	var lastDone time.Duration
	res, err := Run(ctx, "fib-day",
		WithSeed(3),
		WithNodes(64),
		WithHorizon(6*time.Hour),
		WithQPS(0),
		WithProgress(func(done, total time.Duration) {
			lastDone = done
			if done >= cutAt {
				cancel()
			}
		}))
	if err == nil {
		t.Fatal("mid-day cancel: run completed anyway")
	}
	if res != nil {
		t.Errorf("canceled run still returned a result: %v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
	var cut *CancelError
	if !errors.As(err, &cut) {
		t.Fatalf("error %T is not a *CancelError: %v", err, err)
	}
	// The cut must land at the epoch right after the cancel fired:
	// cancellation is checked between epochs, so at most one more
	// epoch runs past the callback.
	if cut.Done < cutAt || cut.Done > cutAt+2*time.Minute {
		t.Errorf("canceled at %v, want within one epoch after %v", cut.Done, cutAt)
	}
	if cut.Done != lastDone {
		t.Errorf("CancelError.Done %v disagrees with the last progress callback %v", cut.Done, lastDone)
	}
	if cut.Scenario != "fib-day" {
		t.Errorf("CancelError.Scenario = %q", cut.Scenario)
	}
	if cut.Total != 6*time.Hour+5*time.Minute {
		t.Errorf("CancelError.Total = %v, want horizon+drain", cut.Total)
	}
}

// TestChunkedRunMatchesDirectPath: the registry's option-to-DayConfig
// mapping must land on exactly the run the direct typed-config path
// produces — checked head-to-head on a small day (the pre-refactor
// goldens pin both against the original monolithic engine).
func TestChunkedRunMatchesDirectPath(t *testing.T) {
	cfg := experiments.FibDay(5)
	cfg.Nodes = 48
	cfg.Horizon = 2 * time.Hour
	cfg.QPS = 2
	direct := experiments.RunDay(cfg)

	res, err := Run(context.Background(), "fib-day",
		WithSeed(5), WithNodes(48), WithHorizon(2*time.Hour), WithQPS(2))
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry := res.Unwrap().(experiments.DayResult)

	renderAll := func(r experiments.DayResult) []byte {
		var buf bytes.Buffer
		r.Render(&buf)
		r.RenderSeries(&buf)
		return buf.Bytes()
	}
	a, b := renderAll(direct), renderAll(viaRegistry)
	if !bytes.Equal(a, b) {
		t.Errorf("registry render diverged from direct RunDay (%d vs %d bytes)", len(b), len(a))
	}
}
