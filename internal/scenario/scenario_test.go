package scenario

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// catalogNames is the full paper catalog this package must register.
var catalogNames = []string{
	"ablation", "endogenous", "federated-day", "fib-day", "fig1", "fig2",
	"fig3", "fig7", "policy-comparison", "scientific", "table1",
	"var-day", "week-day",
}

func TestCatalogComplete(t *testing.T) {
	have := map[string]bool{}
	for _, name := range Names() {
		have[name] = true
	}
	for _, want := range catalogNames {
		if !have[want] {
			t.Errorf("catalog lacks scenario %q", want)
		}
	}
	// All() mirrors Names() in name order with populated specs.
	all := All()
	if len(all) != len(Names()) {
		t.Fatalf("All() has %d specs, Names() %d", len(all), len(Names()))
	}
	for i, sp := range all {
		if sp.Name != Names()[i] {
			t.Errorf("All()[%d] = %q, want %q", i, sp.Name, Names()[i])
		}
		if sp.Description == "" || sp.Artifact == "" || sp.Run == nil {
			t.Errorf("spec %q is incomplete: %+v", sp.Name, sp)
		}
	}
}

func TestRegisterRejectsBadSpecs(t *testing.T) {
	mustPanic := func(name string, sp Spec) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(sp)
	}
	run := func(context.Context, Config) (Result, error) { return nil, nil }
	mustPanic("empty name", Spec{Run: run})
	mustPanic("nil run", Spec{Name: "incomplete"})
	mustPanic("duplicate", Spec{Name: "fib-day", Run: run})
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("bogus"); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("Lookup(bogus) = %v, want unknown-scenario error", err)
	}
	if _, err := Run(context.Background(), "bogus"); err == nil {
		t.Error("Run(bogus) succeeded")
	}
}

func TestValidateCatchesBadOptions(t *testing.T) {
	cases := []struct {
		name    string
		scen    string
		opts    []Option
		wantErr string
	}{
		{"unknown option", "fig2", []Option{WithOption("jobz", "10")}, `no option "jobz"`},
		{"option on optionless scenario", "fig3", []Option{WithOption("jobs", "10")}, `no option`},
		{"bad int", "fig2", []Option{WithOption("jobs", "many")}, "does not parse as int"},
		{"bad bool", "scientific", []Option{WithOption("use-wrapper", "maybe")}, "does not parse as bool"},
		{"bad duration", "endogenous", []Option{WithOption("max-walltime", "4 hours")}, "does not parse as duration"},
		{"bad float", "endogenous", []Option{WithOption("utilization", "high")}, "does not parse as float"},
		{"unknown policy", "fib-day", []Option{WithPolicy("bogus")}, "unknown policy"},
		{"unused qps axis", "fig2", []Option{WithQPS(5)}, "does not use the qps axis"},
		{"unused nodes axis", "fig3", []Option{WithNodes(512)}, "does not use the nodes axis"},
		{"unused policy axis", "table1", []Option{WithPolicy("fib")}, "does not use the policy axis"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.scen, tc.opts...)
			if err == nil {
				t.Fatalf("Validate(%s) succeeded, want error containing %q", tc.scen, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q lacks %q", err, tc.wantErr)
			}
		})
	}
	if err := Validate("fig2", WithOption("jobs", "100"), WithSeed(3)); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

// TestWeekDayScenario: the week-scale scenario defaults to streaming
// collectors (reported via the metrics-bytes metric), rejects an
// unknown base day, and runs a scaled-down horizon end to end.
func TestWeekDayScenario(t *testing.T) {
	if _, err := Run(context.Background(), "week-day", WithOption("day", "mon")); err == nil ||
		!strings.Contains(err.Error(), "day=fib or day=var") {
		t.Errorf("err = %v, want bad-day error", err)
	}
	res, err := Run(context.Background(), "week-day",
		WithSeed(4), WithNodes(64), WithHorizon(time.Hour), WithQPS(2))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics()
	if m["metrics-bytes"] <= 0 {
		t.Errorf("streaming run reports metrics-bytes = %v, want > 0", m["metrics-bytes"])
	}
	if m["success-share"] <= 0 {
		t.Errorf("no successful requests: %v", m)
	}
}

// TestPolicyComparisonRejectsUnknownPolicyList: the "policies" raw
// option is a string, so newConfig cannot vet it; the scenario itself
// must turn an unknown name into an error, not a MustNew panic
// mid-sweep.
func TestPolicyComparisonRejectsUnknownPolicyList(t *testing.T) {
	_, err := Run(context.Background(), "policy-comparison",
		WithOption("policies", "fib,bogus"))
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("err = %v, want unknown-policy error", err)
	}
}

// TestScenariosRejectUnknownPolicies: every scenario with a policy
// axis resolves the name through the registry, so an unknown policy
// must error cleanly before the run starts — never a MustNew panic
// mid-sweep.
func TestScenariosRejectUnknownPolicies(t *testing.T) {
	for _, name := range []string{"scientific", "endogenous", "fib-day", "federated-day"} {
		_, err := Run(context.Background(), name, WithPolicy("bogus"))
		if err == nil || !strings.Contains(err.Error(), "unknown policy") {
			t.Errorf("%s: err = %v, want unknown-policy error", name, err)
		}
	}
}

// TestConfigPlumbing registers a capture scenario and checks the
// accessor-with-default contract: unset axes report the defaults the
// scenario passes in, set axes report the caller's values, and raw
// options parse per kind.
func TestConfigPlumbing(t *testing.T) {
	var got Config
	Register(Spec{
		Name: "test-capture", Artifact: "test", Description: "captures its config",
		Options: []OptionDoc{
			{Name: "depth", Kind: KindInt, Default: "7", Help: "test"},
			{Name: "share", Kind: KindFloat, Default: "0.5", Help: "test"},
			{Name: "fast", Kind: KindBool, Default: "false", Help: "test"},
			{Name: "grace", Kind: KindDuration, Default: "3m", Help: "test"},
			{Name: "tag", Kind: KindString, Default: "", Help: "test"},
		},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			got = cfg
			return NewResult(nil, map[string]float64{"ok": 1}, nil), nil
		},
	})

	// Defaults only.
	if _, err := Run(context.Background(), "test-capture"); err != nil {
		t.Fatal(err)
	}
	if got.Seed() != 1 {
		t.Errorf("default seed %d, want 1", got.Seed())
	}
	if got.Nodes(256) != 256 || got.Horizon(time.Hour) != time.Hour ||
		got.Policy("fib") != "fib" || got.QPS(10) != 10 {
		t.Error("unset axes do not report the scenario defaults")
	}
	if got.Int("depth", 7) != 7 || got.Float("share", 0.5) != 0.5 ||
		got.Bool("fast", false) || got.Duration("grace", 3*time.Minute) != 3*time.Minute ||
		got.String("tag", "") != "" {
		t.Error("unset raw options do not report the defaults")
	}

	// Everything set.
	_, err := Run(context.Background(), "test-capture",
		WithSeed(42), WithNodes(64), WithHorizon(2*time.Hour),
		WithPolicy("adaptive"), WithQPS(0),
		WithOption("depth", "12"), WithOption("share", "0.25"),
		WithOption("fast", "true"), WithOption("grace", "90s"),
		WithOption("tag", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed() != 42 || got.Nodes(256) != 64 || got.Horizon(time.Hour) != 2*time.Hour ||
		got.Policy("fib") != "adaptive" || got.QPS(10) != 0 {
		t.Error("set axes do not report the caller's values")
	}
	if got.Int("depth", 7) != 12 || got.Float("share", 0.5) != 0.25 ||
		!got.Bool("fast", false) || got.Duration("grace", 3*time.Minute) != 90*time.Second ||
		got.String("tag", "") != "x" {
		t.Error("set raw options do not report the caller's values")
	}

	// WithQPS(0) must count as set: 0 disables load, it is not "unset".
	if got.QPS(10) != 0 {
		t.Error("QPS(0) was treated as unset")
	}

	// A nil-Axes (custom) scenario accepts every uniform axis.
	if err := Validate("test-capture", WithNodes(64), WithQPS(5)); err != nil {
		t.Errorf("nil-Axes scenario rejected axes: %v", err)
	}

	// A Spec whose accessor kind disagrees with its OptionDoc is a
	// programming error and must fail loudly, not silently discard
	// the user's validated value.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind-mismatched accessor did not panic")
			}
		}()
		got.Int("tag", 1) // "tag" is documented KindString and holds "x"
	}()
}

// TestFig2RejectsNonPositiveJobs: an explicit jobs=0 must error, not
// silently run the full 74k-job default.
func TestFig2RejectsNonPositiveJobs(t *testing.T) {
	_, err := Run(context.Background(), "fig2", WithOption("jobs", "0"))
	if err == nil || !strings.Contains(err.Error(), "positive jobs") {
		t.Errorf("err = %v, want positive-jobs error", err)
	}
}

func TestMetricsTable(t *testing.T) {
	rows := MetricsTable(map[string]float64{"b": 2, "a": 1.5, "c": 3})
	if len(rows) != 4 {
		t.Fatalf("%d rows, want header+3", len(rows))
	}
	if rows[0][0] != "metric" || rows[1][0] != "a" || rows[2][0] != "b" || rows[3][0] != "c" {
		t.Errorf("rows not in sorted metric order: %v", rows)
	}
}

// TestResultContract checks NewResult's three views and that Table
// hands out fresh rows.
func TestResultContract(t *testing.T) {
	typed := struct{ X int }{7}
	res := NewResult(typed, map[string]float64{"x": 7}, [][]string{{"h"}, {"v"}})
	if res.Unwrap().(struct{ X int }).X != 7 {
		t.Error("Unwrap lost the typed value")
	}
	if res.Metrics()["x"] != 7 {
		t.Error("Metrics lost the value")
	}
	tab := res.Table()
	tab[0][0] = "mutated"
	if res.Table()[0][0] != "h" {
		t.Error("Table rows are shared with the caller")
	}
}

// TestPreCanceledContext: every catalog scenario must notice an
// already-canceled context and return its error without doing the
// work — the uniform-cancellation half of the Result contract.
func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range catalogNames {
		name := name
		t.Run(name, func(t *testing.T) {
			start := time.Now()
			res, err := Run(ctx, name)
			if err == nil {
				t.Fatal("run succeeded under a canceled context")
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("error %v does not unwrap to context.Canceled", err)
			}
			var cut *CancelError
			if !errors.As(err, &cut) {
				t.Errorf("error %T is not a *CancelError", err)
			}
			if res != nil {
				t.Errorf("canceled run still returned a result: %v", res)
			}
			if e := time.Since(start); e > 5*time.Second {
				t.Errorf("cancellation took %v, want prompt return", e)
			}
		})
	}
}
