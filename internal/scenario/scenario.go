// Package scenario is the experiment layer of the reproduction redesigned
// around first-class, enumerable scenarios. The paper's evaluation is a
// catalog — Figs. 1-3/5-7, Tables I-III, the hand-off ablation, the §VII
// scientific workload — and each entry here is one registered Spec with a
// stable name, a uniform Config built from functional options, a uniform
// Result contract (flat metrics, a rendered table, and the underlying
// typed value via Unwrap), and context-aware execution with cooperative
// cancellation checked at DES-epoch granularity.
//
// The package mirrors internal/policy's registry pattern one layer up:
// policies made the *supply decision* pluggable; scenarios make the
// *experiment* pluggable. A scenario registered here is automatically
// runnable from cmd/hpcwhisk-sim (-scenario), sweepable across seeds and
// grids by cmd/hpcwhisk-sweep and sweep.SweepScenarios, and listed by
// hpcwhisk.Scenarios() — no CLI or facade edits required.
package scenario

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ProgressFunc observes a scenario's advance through virtual time:
// done grows from 0 to total as the simulation runs. Callbacks fire at
// epoch boundaries (core.DefaultEpoch of virtual time), the same
// granularity at which cancellation is checked.
type ProgressFunc = func(done, total time.Duration)

// Result is the uniform contract every scenario returns. The three
// views serve the three consumers: Metrics feeds the sweep engine's
// replica aggregation, Table feeds generic rendering (CLIs, docs), and
// Unwrap hands typed-result consumers the underlying experiment value
// (e.g. experiments.DayResult) for everything scenario-specific.
type Result interface {
	// Metrics returns the flat named-scalar view aggregated across
	// sweep replicas. Names are stable public API.
	Metrics() map[string]float64

	// Table returns the result as rows, first row the header — the
	// shape the paper reports where one exists, a sorted metric table
	// otherwise. Rows are freshly allocated; callers may mutate them.
	Table() [][]string

	// Unwrap returns the underlying typed experiment result.
	Unwrap() any
}

// result is the canonical Result implementation built by NewResult.
type result struct {
	typed   any
	metrics map[string]float64
	table   [][]string
}

// NewResult bundles a typed experiment value into the Result contract.
// A nil table falls back to MetricsTable(metrics), so scenarios only
// hand-build tables where the paper has a table shape to reproduce.
func NewResult(typed any, metrics map[string]float64, table [][]string) Result {
	return result{typed: typed, metrics: metrics, table: table}
}

func (r result) Metrics() map[string]float64 { return r.metrics }
func (r result) Unwrap() any                 { return r.typed }

func (r result) Table() [][]string {
	if r.table == nil {
		return MetricsTable(r.metrics)
	}
	out := make([][]string, len(r.table))
	for i, row := range r.table {
		out[i] = append([]string(nil), row...)
	}
	return out
}

// Renderer is the optional paper-shaped rendering every experiment
// result in this repo implements.
type Renderer interface{ Render(w io.Writer) }

// Fprint renders a scenario result for humans: the typed value's
// paper-shaped Render when it has one, the aligned generic Table
// otherwise — so custom scenarios print sensibly with zero support
// code.
func Fprint(w io.Writer, res Result) {
	if r, ok := res.Unwrap().(Renderer); ok {
		r.Render(w)
		return
	}
	rows := res.Table()
	widths := map[int]int{}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(w, "  %-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
}

// FprintCatalog writes the registered catalog, one scenario per
// stanza: name, paper artifact, description, the uniform axes it
// honors, and its -set option docs. Both CLIs render -list through
// this, so the two listings cannot drift.
func FprintCatalog(w io.Writer) {
	for _, sp := range All() {
		fmt.Fprintf(w, "  %-18s %-22s %s\n", sp.Name, sp.Artifact, sp.Description)
		if sp.Axes != nil {
			axes := "seed only"
			if len(sp.Axes) > 0 {
				axes = "seed, " + strings.Join(sp.Axes, ", ")
			}
			fmt.Fprintf(w, "  %-18s   axes: %s\n", "", axes)
		}
		for _, d := range sp.Options {
			fmt.Fprintf(w, "  %-18s   -set %s=<%s> (default %s) %s\n", "", d.Name, d.Kind, d.Default, d.Help)
		}
	}
	fmt.Fprintln(w, "uniform axes: seed, nodes, horizon, qps, policy (unset axes keep each scenario's paper defaults; setting an axis a scenario does not honor is an error)")
}

// MetricsTable renders a metric map as a two-column table in sorted
// metric order — the generic Table() shape.
func MetricsTable(m map[string]float64) [][]string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := [][]string{{"metric", "value"}}
	for _, name := range names {
		rows = append(rows, []string{name, strconv.FormatFloat(m[name], 'g', 6, 64)})
	}
	return rows
}

// CancelError reports a run cut short by its context: the scenario
// returned early and any simulation state behind it is partial, so no
// Result is produced. Done/Total locate the cancellation in virtual
// time (zero when the scenario never reported progress). Unwrap yields
// the context's error, so errors.Is(err, context.Canceled) works.
type CancelError struct {
	Scenario    string
	Done, Total time.Duration
	Err         error
}

func (e *CancelError) Error() string {
	if e.Total > 0 {
		return fmt.Sprintf("scenario %q canceled at %v of %v (partial results discarded): %v",
			e.Scenario, e.Done, e.Total, e.Err)
	}
	return fmt.Sprintf("scenario %q canceled (partial results discarded): %v", e.Scenario, e.Err)
}

func (e *CancelError) Unwrap() error { return e.Err }
