package scenario

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Spec describes one registered scenario: stable name, the paper
// artifact it regenerates, one line of description, the documented
// scenario-specific options, and the run function. Specs are stateless
// — Run builds everything it needs from the Config — so one Spec value
// serves concurrent sweep replicas.
type Spec struct {
	// Name keys the registry ("fib-day", "table1", ...).
	Name string

	// Artifact names the paper artifact ("Table II / Fig. 5", ...);
	// beyond-paper scenarios say so here.
	Artifact string

	// Description is the one-line catalog entry.
	Description string

	// Options documents (and validates) the raw WithOption keys this
	// scenario understands, beyond the five uniform axes.
	Options []OptionDoc

	// Axes names the uniform axes (of "nodes", "horizon", "policy",
	// "qps"; seed is always honored) this scenario's Run actually
	// reads. Setting an axis outside this list is a validation error,
	// so a sweep can never fan out over an axis that has no effect
	// and silently produce duplicate cells. nil means all axes are
	// accepted (the permissive default for custom scenarios).
	Axes []string

	// Run executes the scenario. Implementations must honor ctx at
	// DES-epoch granularity (core.System.RunCtx does this for any
	// simulation-backed scenario) and return ctx's error on
	// cancellation; the registry wraps it into a *CancelError.
	Run func(ctx context.Context, cfg Config) (Result, error)
}

var registry = map[string]Spec{}

// Register adds a scenario to the registry, making it runnable by name
// from both CLIs, the sweep grid, and hpcwhisk.RunScenario.
// Registering a duplicate or incomplete Spec panics (a programming
// error, as in the policy registry).
func Register(sp Spec) {
	if sp.Name == "" || sp.Run == nil {
		panic("scenario: Register needs a Name and a Run function")
	}
	if _, dup := registry[sp.Name]; dup {
		panic(fmt.Sprintf("scenario: %q already registered", sp.Name))
	}
	registry[sp.Name] = sp
}

// Lookup returns the Spec registered under name.
func Lookup(name string) (Spec, error) {
	sp, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return sp, nil
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered Spec in name order.
func All() []Spec {
	out := make([]Spec, 0, len(registry))
	for _, name := range Names() {
		out = append(out, registry[name])
	}
	return out
}

// Validate resolves name and builds the config without running:
// unknown scenarios, unknown options, unparsable values and unknown
// policies are all caught here. Sweeps call this once per grid cell
// before fanning replicas out.
func Validate(name string, opts ...Option) error {
	_, err := Parallelism(name, opts...)
	return err
}

// Parallelism resolves a configured cell like Validate and additionally
// reports how many goroutines one replica of it will occupy: the value
// of its "shards" option for scenarios that document one (the sharded
// pdes runtime runs each site shard on its own goroutine), 1 for
// everything else. Sweeps use it to keep workers × shards inside their
// concurrency budget.
func Parallelism(name string, opts ...Option) (int, error) {
	sp, err := Lookup(name)
	if err != nil {
		return 0, err
	}
	cfg, err := newConfig(sp, opts)
	if err != nil {
		return 0, err
	}
	for _, d := range sp.Options {
		if d.Name == "shards" {
			if n := cfg.Int("shards", 1); n > 1 {
				return n, nil
			}
			break
		}
	}
	return 1, nil
}

// Run executes a registered scenario. Cancellation surfaces as a
// *CancelError wrapping the context's error and locating the cut in
// virtual time; every other error passes through unchanged.
func Run(ctx context.Context, name string, opts ...Option) (Result, error) {
	sp, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	cfg, err := newConfig(sp, opts)
	if err != nil {
		return nil, err
	}

	// Observe progress so a cancellation can report where it struck.
	var done, total time.Duration
	inner := cfg.progress
	cfg.progress = func(d, t time.Duration) {
		done, total = d, t
		if inner != nil {
			inner(d, t)
		}
	}

	res, err := sp.Run(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return res, &CancelError{Scenario: name, Done: done, Total: total, Err: err}
		}
		return res, err
	}
	return res, nil
}
