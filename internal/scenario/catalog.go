package scenario

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/router"
	"repro/internal/workload"
)

// The catalog: every table and figure of the paper's evaluation plus
// the beyond-paper experiments, registered as uniform scenarios. Each
// Run builds its experiment config from the paper defaults, overlays
// the uniform axes and raw options the caller set, and executes the
// ctx-aware experiment entry point.

func init() {
	Register(dayScenario("fib-day", "Table II / Fig. 5",
		"the fib production day: fixed-length pilot bags on the March 17th calibration",
		experiments.FibDay, "fib"))
	Register(dayScenario("var-day", "Table III / Fig. 6",
		"the var production day: flexible pilots on the March 21st calibration",
		experiments.VarDay, "var"))

	Register(Spec{
		Name:        "week-day",
		Artifact:    "beyond the paper",
		Description: "a production day stretched to a week: O(1)-memory streaming metrics over a 7-day horizon",
		Axes:        []string{"nodes", "horizon", "policy", "qps"},
		Options: []OptionDoc{
			{Name: "day", Kind: KindString, Default: "fib", Help: "base calibration to stretch over the week: fib or var"},
			{Name: "actions", Kind: KindInt, Default: "100", Help: "number of sleep functions under load"},
			{Name: "sleep-exec", Kind: KindDuration, Default: "10ms", Help: "in-container execution time per call"},
			{Name: "streaming", Kind: KindBool, Default: "true", Help: "O(1)-memory streaming metrics (off: buffered collectors whose memory grows with the horizon)"},
		},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			base, defPolicy := experiments.FibDay, "fib"
			switch d := cfg.String("day", "fib"); d {
			case "fib":
			case "var":
				base, defPolicy = experiments.VarDay, "var"
			default:
				return nil, fmt.Errorf("scenario: week-day wants day=fib or day=var, got %q", d)
			}
			day := base(cfg.Seed())
			day.Policy = cfg.Policy(defPolicy)
			if _, err := policy.New(day.Policy); err != nil {
				return nil, err
			}
			day.Horizon = cfg.Horizon(experiments.Week)
			day.Nodes = cfg.Nodes(day.Nodes)
			day.QPS = cfg.QPS(day.QPS)
			day.NumActions = cfg.Int("actions", day.NumActions)
			day.SleepExec = cfg.Duration("sleep-exec", day.SleepExec)
			day.Streaming = cfg.Bool("streaming", true)
			r, err := experiments.RunDayCtx(ctx, day, cfg.Progress())
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), dayTable(r)), nil
		},
	})

	Register(Spec{
		Name:        "federated-day",
		Artifact:    "beyond the paper",
		Description: "cluster-of-clusters: N sites behind the routing front door, one run per routing policy",
		Axes:        []string{"nodes", "horizon", "policy", "qps"},
		Options: []OptionDoc{
			{Name: "sites", Kind: KindInt, Default: "4", Help: "number of federated sites (alternating calm/contended days)"},
			{Name: "routing", Kind: KindString, Default: "", Help: "comma-separated routing policies to compare (default: all registered)"},
			{Name: "cloud-fallback", Kind: KindBool, Default: "false", Help: "off-load federation-wide 503s to the commercial cloud (Alg. 1)"},
			{Name: "actions", Kind: KindInt, Default: "100", Help: "number of sleep functions under load"},
			{Name: "sleep-exec", Kind: KindDuration, Default: "10ms", Help: "in-container execution time per call"},
			{Name: "streaming", Kind: KindBool, Default: "false", Help: "O(1)-memory streaming metrics (t-digest quantiles, windowed series)"},
			{Name: "shards", Kind: KindInt, Default: "1", Help: "site shards run in parallel under the pdes coordinator (>1; byte-identical to sequential, incompatible with cloud-fallback)"},
		},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			fc := experiments.DefaultFederatedConfig(cfg.Seed())
			fc.NodesPerSite = cfg.Nodes(fc.NodesPerSite)
			fc.Horizon = cfg.Horizon(fc.Horizon)
			fc.QPS = cfg.QPS(fc.QPS)
			fc.Policy = cfg.Policy(fc.Policy)
			if _, err := policy.New(fc.Policy); err != nil {
				return nil, err
			}
			fc.Sites = cfg.Int("sites", fc.Sites)
			if fc.Sites <= 0 {
				return nil, fmt.Errorf("scenario: federated-day needs at least one site, got %d", fc.Sites)
			}
			fc.NumActions = cfg.Int("actions", fc.NumActions)
			fc.SleepExec = cfg.Duration("sleep-exec", fc.SleepExec)
			fc.CloudFallback = cfg.Bool("cloud-fallback", fc.CloudFallback)
			fc.Streaming = cfg.Bool("streaming", false)
			fc.Shards = cfg.Int("shards", fc.Shards)
			if names := cfg.String("routing", ""); names != "" {
				fc.Routing = splitList(names)
				// The federation resolves these on construction, so an
				// unknown routing policy must fail here, not panic.
				for _, name := range fc.Routing {
					if _, err := router.New(name); err != nil {
						return nil, err
					}
				}
			}
			r, err := experiments.RunFederatedCtx(ctx, fc, cfg.Progress())
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), federatedTable(r)), nil
		},
	})

	Register(Spec{
		Name:        "fig1",
		Artifact:    "Fig. 1",
		Description: "idle-node and idle-period distributions of a calibrated production week",
		Axes:        []string{"nodes", "horizon"},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			tr := workload.DefaultIdleProcess(
				cfg.Nodes(experiments.PrometheusNodes),
				cfg.Horizon(experiments.Week),
				cfg.Seed()).Generate()
			r, err := experiments.RunFig1Ctx(ctx, tr)
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), nil), nil
		},
	})

	Register(Spec{
		Name:        "fig2",
		Artifact:    "Fig. 2",
		Description: "declared-walltime, runtime and slack CDFs of the calibrated HPC job stream",
		Axes:        []string{},
		Options: []OptionDoc{
			{Name: "jobs", Kind: KindInt, Default: strconv.Itoa(experiments.Fig2Jobs),
				Help: "number of jobs to generate (the monitored week had 74k)"},
		},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			jobs := cfg.Int("jobs", experiments.Fig2Jobs)
			if jobs <= 0 {
				return nil, fmt.Errorf("scenario: fig2 needs a positive jobs count, got %d", jobs)
			}
			r, err := experiments.RunFig2Ctx(ctx, cfg.Seed(), jobs)
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), nil), nil
		},
	})

	Register(Spec{
		Name:        "fig3",
		Artifact:    "Fig. 3",
		Description: "the motivating 5-node schedule: four HPC jobs with pilots filling the gaps",
		Axes:        []string{},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			r, err := experiments.RunFig3Ctx(ctx, cfg.Seed(), cfg.Progress())
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), nil), nil
		},
	})

	Register(Spec{
		Name:        "table1",
		Artifact:    "Table I",
		Description: "clairvoyant coverage of the six pilot job-length sets over a week trace",
		Axes:        []string{"nodes", "horizon"},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			tr := workload.DefaultIdleProcess(
				cfg.Nodes(experiments.PrometheusNodes),
				cfg.Horizon(experiments.Week),
				cfg.Seed()).Generate()
			r, err := experiments.RunTableICtx(ctx, tr)
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), tableITable(r)), nil
		},
	})

	Register(Spec{
		Name:        "fig7",
		Artifact:    "Fig. 7",
		Description: "SeBS bfs/mst/pagerank kernels on a Prometheus node vs the Lambda baseline",
		Axes:        []string{},
		Options: []OptionDoc{
			{Name: "vertices", Kind: KindInt, Default: "20000", Help: "graph size of the SeBS input"},
			{Name: "degree", Kind: KindInt, Default: "8", Help: "average degree of the generated graph"},
			{Name: "invocations", Kind: KindInt, Default: "30", Help: "warm invocations per function"},
		},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			r, err := experiments.RunFig7Ctx(ctx,
				cfg.Int("vertices", 20000), cfg.Int("degree", 8),
				cfg.Int("invocations", 30), cfg.Seed())
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), fig7Table(r)), nil
		},
	})

	Register(Spec{
		Name:        "ablation",
		Artifact:    "§III-C ablation",
		Description: "hand-off design points (full protocol / no interrupt / hard kill, optionally + checkpointing) on one day",
		Axes:        []string{"nodes", "horizon", "policy"},
		Options: []OptionDoc{
			{Name: "streaming", Kind: KindBool, Default: "false", Help: "O(1)-memory streaming metrics (t-digest quantiles, windowed series)"},
			{Name: "checkpoint", Kind: KindBool, Default: "false", Help: "add the handoff+interrupt+checkpoint design point"},
			{Name: "checkpoint-interval", Kind: KindDuration, Default: "100ms", Help: "checkpoint cadence of the checkpoint arm"},
		},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			a := experiments.AblationConfig{
				Nodes:              cfg.Nodes(256),
				Horizon:            cfg.Horizon(4 * time.Hour),
				Seed:               cfg.Seed(),
				Policy:             cfg.Policy(""),
				Streaming:          cfg.Bool("streaming", false),
				Checkpoint:         cfg.Bool("checkpoint", false),
				CheckpointInterval: cfg.Duration("checkpoint-interval", 0),
			}
			r, err := experiments.RunAblationCtx(ctx, a, cfg.Progress())
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), ablationTable(r)), nil
		},
	})

	Register(Spec{
		Name:        "checkpoint-frontier",
		Artifact:    "beyond the paper",
		Description: "checkpoint/restore frontier: function duration × idle-window sweep, every cell run with and without checkpointing on identical seeds",
		Axes:        []string{"nodes", "horizon", "qps"},
		Options: []OptionDoc{
			{Name: "durations", Kind: KindString, Default: "1m,3m,6m", Help: "comma-separated function body durations (the D axis)"},
			{Name: "windows", Kind: KindString, Default: "4m,8m,16m", Help: "comma-separated idle-window lengths of the periodic trace (the W axis)"},
			{Name: "gap", Kind: KindDuration, Default: "2m", Help: "full-cluster saturation between consecutive idle windows"},
			{Name: "checkpoint-interval", Kind: KindDuration, Default: "20s", Help: "checkpoint cadence of the checkpointed arm"},
		},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			fr := experiments.DefaultFrontierConfig(cfg.Seed())
			fr.Nodes = cfg.Nodes(fr.Nodes)
			fr.Horizon = cfg.Horizon(fr.Horizon)
			fr.QPS = cfg.QPS(fr.QPS)
			fr.Gap = cfg.Duration("gap", fr.Gap)
			fr.CheckpointInterval = cfg.Duration("checkpoint-interval", fr.CheckpointInterval)
			var err error
			if fr.Durations, err = durationList(cfg.String("durations", ""), fr.Durations); err != nil {
				return nil, fmt.Errorf("scenario: checkpoint-frontier durations: %w", err)
			}
			if fr.Windows, err = durationList(cfg.String("windows", ""), fr.Windows); err != nil {
				return nil, fmt.Errorf("scenario: checkpoint-frontier windows: %w", err)
			}
			r, err := experiments.RunFrontierCtx(ctx, fr, cfg.Progress())
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), frontierTable(r)), nil
		},
	})

	Register(Spec{
		Name:        "policy-comparison",
		Artifact:    "beyond the paper",
		Description: "every registered supply policy on one shared calibrated day",
		Axes:        []string{"nodes", "horizon", "qps"},
		Options: []OptionDoc{
			{Name: "policies", Kind: KindString, Default: "", Help: "comma-separated policy names (empty: all registered)"},
			{Name: "mean-idle-nodes", Kind: KindFloat, Default: "10", Help: "trace calibration: mean idle nodes"},
		},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			pc := experiments.DefaultPolicyComparisonConfig(cfg.Seed())
			pc.Nodes = cfg.Nodes(pc.Nodes)
			pc.Horizon = cfg.Horizon(pc.Horizon)
			pc.QPS = cfg.QPS(pc.QPS)
			pc.MeanIdleNodes = cfg.Float("mean-idle-nodes", pc.MeanIdleNodes)
			if names := cfg.String("policies", ""); names != "" {
				pc.Policies = splitList(names)
				// The day engine resolves these with MustNew, so an
				// unknown name must fail here, not panic mid-run.
				for _, name := range pc.Policies {
					if _, err := policy.New(name); err != nil {
						return nil, err
					}
				}
			}
			r, err := experiments.RunPolicyComparisonCtx(ctx, pc, cfg.Progress())
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), policyCmpTable(r)), nil
		},
	})

	Register(Spec{
		Name:        "scientific",
		Artifact:    "§VII future work",
		Description: "heterogeneous scientific FaaS workload with the Alg. 1 commercial fallback",
		Axes:        []string{"nodes", "horizon", "qps", "policy"},
		Options: []OptionDoc{
			{Name: "functions", Kind: KindInt, Default: "200", Help: "size of the heterogeneous function population"},
			{Name: "use-wrapper", Kind: KindBool, Default: "true", Help: "route calls through the Alg. 1 fallback"},
			{Name: "checkpoint-interval", Kind: KindDuration, Default: "0", Help: "checkpoint cadence; > 0 makes long functions interruptible and resumes timed-out progress on the cloud (0: disabled)"},
		},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			sc := experiments.DefaultScientificConfig(cfg.Seed())
			sc.Nodes = cfg.Nodes(sc.Nodes)
			sc.Horizon = cfg.Horizon(sc.Horizon)
			sc.QPS = cfg.QPS(sc.QPS)
			sc.Functions = cfg.Int("functions", sc.Functions)
			sc.UseWrapper = cfg.Bool("use-wrapper", sc.UseWrapper)
			sc.CheckpointInterval = cfg.Duration("checkpoint-interval", 0)
			sc.Policy = cfg.Policy(sc.PolicyName())
			if _, err := policy.New(sc.Policy); err != nil {
				return nil, err
			}
			r, err := experiments.RunScientificCtx(ctx, sc, cfg.Progress())
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), nil), nil
		},
	})

	Register(Spec{
		Name:        "endogenous",
		Artifact:    "beyond the paper",
		Description: "full-scheduler run: pilots harvest the idleness emerging from a real prime-job stream",
		Axes:        []string{"nodes", "horizon", "policy"},
		Options: []OptionDoc{
			{Name: "utilization", Kind: KindFloat, Default: "0.94", Help: "target prime-load share of the cluster"},
			{Name: "max-walltime", Kind: KindDuration, Default: "4h", Help: "clamp on the Fig. 2 job walltimes"},
			{Name: "max-job-nodes", Kind: KindInt, Default: "32", Help: "clamp on the Fig. 2 job widths"},
		},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			ec := experiments.DefaultEndogenousConfig(cfg.Seed())
			ec.Nodes = cfg.Nodes(ec.Nodes)
			ec.Horizon = cfg.Horizon(ec.Horizon)
			ec.Utilization = cfg.Float("utilization", ec.Utilization)
			ec.MaxWalltime = cfg.Duration("max-walltime", ec.MaxWalltime)
			ec.MaxJobNodes = cfg.Int("max-job-nodes", ec.MaxJobNodes)
			ec.Policy = cfg.Policy(ec.PolicyName())
			if _, err := policy.New(ec.Policy); err != nil {
				return nil, err
			}
			r, err := experiments.RunEndogenousCtx(ctx, ec, cfg.Progress())
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), nil), nil
		},
	})
}

// dayScenario builds the Table II/III production-day Spec shared by
// fib-day and var-day.
func dayScenario(name, artifact, desc string, base func(int64) experiments.DayConfig, defPolicy string) Spec {
	return Spec{
		Name:        name,
		Artifact:    artifact,
		Description: desc,
		Axes:        []string{"nodes", "horizon", "policy", "qps"},
		Options: []OptionDoc{
			{Name: "actions", Kind: KindInt, Default: "100", Help: "number of sleep functions under load"},
			{Name: "sleep-exec", Kind: KindDuration, Default: "10ms", Help: "in-container execution time per call"},
			{Name: "graceful-handoff", Kind: KindBool, Default: "true", Help: "enable the §III-C hand-off protocol"},
			{Name: "interrupt-running", Kind: KindBool, Default: "true", Help: "interrupt mid-execution activations on reclaim"},
			{Name: "checkpoint-interval", Kind: KindDuration, Default: "0", Help: "checkpoint cadence for executions (0: checkpointing disabled, byte-identical to the goldens)"},
			{Name: "action-timeout", Kind: KindDuration, Default: "0", Help: "client-visible action timeout override (0: the controller default, 60s)"},
			{Name: "streaming", Kind: KindBool, Default: "false", Help: "O(1)-memory streaming metrics (t-digest quantiles, windowed series)"},
			{Name: "shards", Kind: KindInt, Default: "1", Help: "run under the sharded pdes coordinator (>1; byte-identical to sequential)"},
		},
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			day := base(cfg.Seed())
			day.Policy = cfg.Policy(defPolicy)
			// The day engine resolves the name with MustNew, so an
			// unknown policy must fail here, not panic mid-run.
			if _, err := policy.New(day.Policy); err != nil {
				return nil, err
			}
			day.Nodes = cfg.Nodes(day.Nodes)
			day.Horizon = cfg.Horizon(day.Horizon)
			day.QPS = cfg.QPS(day.QPS)
			day.NumActions = cfg.Int("actions", day.NumActions)
			day.SleepExec = cfg.Duration("sleep-exec", day.SleepExec)
			day.GracefulHandoff = cfg.Bool("graceful-handoff", day.GracefulHandoff)
			day.InterruptRunning = cfg.Bool("interrupt-running", day.InterruptRunning)
			day.CheckpointInterval = cfg.Duration("checkpoint-interval", 0)
			day.ActionTimeout = cfg.Duration("action-timeout", 0)
			day.Streaming = cfg.Bool("streaming", false)
			day.Shards = cfg.Int("shards", day.Shards)
			r, err := experiments.RunDayCtx(ctx, day, cfg.Progress())
			if err != nil {
				return nil, err
			}
			return NewResult(r, r.Metrics(), dayTable(r)), nil
		},
	}
}

// durationList parses a comma-separated duration list, returning def
// when the string is empty.
func durationList(s string, def []time.Duration) ([]time.Duration, error) {
	if s == "" {
		return def, nil
	}
	var out []time.Duration
	for _, part := range splitList(s) {
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("non-positive duration %v", d)
		}
		out = append(out, d)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Table builders for the results that have a paper table shape.

func f2(x float64) string { return strconv.FormatFloat(x, 'f', 2, 64) }
func pct(x float64) string {
	return strconv.FormatFloat(100*x, 'f', 2, 64) + "%"
}

func dayTable(r experiments.DayResult) [][]string {
	s := r.SlurmLevel
	o := r.OW
	rows := [][]string{
		{"perspective", "p25", "p50", "p75", "avg", "used", "not-used"},
		{"simulation-ready", f2(r.Sim.ReadyP25), f2(r.Sim.ReadyP50), f2(r.Sim.ReadyP75),
			f2(r.Sim.ReadyAvg), pct(r.Sim.ShareReady), pct(r.Sim.ShareNotUsed)},
		{"slurm-level", f2(s.WorkerP25), f2(s.WorkerP50), f2(s.WorkerP75),
			f2(s.WorkerAvg), pct(s.ShareUsed), pct(s.ShareNotUsed)},
		{"ow-healthy", f2(o.HealthyP25), f2(o.HealthyP50), f2(o.HealthyP75),
			f2(o.HealthyAvg), "", ""},
	}
	return rows
}

func tableITable(r experiments.TableIResult) [][]string {
	rows := [][]string{{"set", "jobs", "warmup", "ready", "not-used", "avg-ready"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Set.Name, strconv.Itoa(row.Jobs),
			pct(row.ShareWarmup), pct(row.ShareReady), pct(row.ShareNotUsed),
			f2(row.ReadyAvg),
		})
	}
	return rows
}

func fig7Table(r experiments.Fig7Result) [][]string {
	rows := [][]string{{"function", "prometheus", "lambda", "lambda/prometheus"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Function,
			row.PrometheusMedian.Round(time.Microsecond).String(),
			row.LambdaMedian.Round(time.Microsecond).String(),
			strconv.FormatFloat(row.Speedup, 'f', 3, 64),
		})
	}
	return rows
}

func ablationTable(r experiments.AblationResult) [][]string {
	rows := [][]string{{"variant", "lost", "success", "handoffs", "preempted"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Variant.Name, pct(row.LostShare), pct(row.Load.SuccessShare),
			strconv.Itoa(row.Handoffs), strconv.Itoa(row.Preempted),
		})
	}
	return rows
}

func frontierTable(r experiments.FrontierResult) [][]string {
	rows := [][]string{{"duration", "window", "ckpt-success", "base-success", "resumed", "reclaimed"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Duration.String(), c.Window.String(),
			pct(c.CheckpointShare), pct(c.BaselineShare),
			strconv.Itoa(c.Work.Resumed), strconv.FormatBool(c.Reclaimed()),
		})
	}
	return rows
}

func federatedTable(r experiments.FederatedResult) [][]string {
	rows := [][]string{{"routing", "invoked", "success", "p95-ms", "spill", "no-site", "healthy-avg", "coverage"}}
	for _, run := range r.Runs {
		rows = append(rows, []string{
			run.Routing, pct(run.Load.InvokedShare), pct(run.Load.SuccessShare),
			strconv.FormatInt(run.P95.Milliseconds(), 10), pct(run.SpillShare()),
			strconv.Itoa(run.NoSitePicks), f2(run.GlobalHealthyAvg), pct(run.GlobalCoverage),
		})
	}
	return rows
}

func policyCmpTable(r experiments.PolicyComparisonResult) [][]string {
	rows := [][]string{{"policy", "coverage", "healthy-avg", "503", "lost", "handoffs", "pilots"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy, pct(row.Coverage), f2(row.HealthyAvg),
			pct(row.Share503), pct(row.LostShare),
			strconv.Itoa(row.Handoffs), strconv.Itoa(row.PilotsStarted),
		})
	}
	return rows
}
