package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/policy"
)

// Config is the uniform scenario configuration, built from functional
// options. The five shared axes (seed, nodes, horizon, supply policy,
// QPS) cover what every paper experiment varies; anything
// scenario-specific travels through the raw key=value escape hatch
// (WithOption) and is documented per scenario in Spec.Options.
//
// A scenario reads the config through the accessor-with-default
// methods: an axis the caller never set reports the scenario's own
// default, so every scenario keeps its paper calibration unless
// explicitly overridden.
type Config struct {
	seed     int64
	nodes    int
	horizon  time.Duration
	policy   string
	qps      float64
	set      map[string]bool
	raw      map[string]string
	progress ProgressFunc
}

// Option mutates a Config under construction.
type Option func(*Config)

func (c *Config) mark(axis string) {
	if c.set == nil {
		c.set = map[string]bool{}
	}
	c.set[axis] = true
}

// WithSeed sets the experiment seed (default 1). Runs are
// deterministic per seed; sweeps override the seed per replica.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.seed = seed; c.mark("seed") }
}

// WithNodes sets the cluster size.
func WithNodes(n int) Option {
	return func(c *Config) { c.nodes = n; c.mark("nodes") }
}

// WithHorizon sets the experiment length in virtual time.
func WithHorizon(d time.Duration) Option {
	return func(c *Config) { c.horizon = d; c.mark("horizon") }
}

// WithPolicy sets the pilot-supply policy by registry name.
func WithPolicy(name string) Option {
	return func(c *Config) { c.policy = name; c.mark("policy") }
}

// WithQPS sets the responsiveness-load request rate (0 disables load).
func WithQPS(qps float64) Option {
	return func(c *Config) { c.qps = qps; c.mark("qps") }
}

// WithOption sets one scenario-specific raw option; the scenario's
// Spec.Options documents the accepted names, kinds and defaults.
// Unknown names and unparsable values are rejected before the
// scenario runs.
func WithOption(name, value string) Option {
	return func(c *Config) {
		if c.raw == nil {
			c.raw = map[string]string{}
		}
		c.raw[name] = value
	}
}

// WithProgress installs a virtual-time progress callback, invoked at
// every DES epoch the scenario simulates.
func WithProgress(fn ProgressFunc) Option {
	return func(c *Config) { c.progress = fn }
}

// Seed returns the configured seed, default 1.
func (c Config) Seed() int64 {
	if c.set["seed"] {
		return c.seed
	}
	return 1
}

// Nodes returns the configured cluster size, or def when unset.
func (c Config) Nodes(def int) int {
	if c.set["nodes"] {
		return c.nodes
	}
	return def
}

// Horizon returns the configured horizon, or def when unset.
func (c Config) Horizon(def time.Duration) time.Duration {
	if c.set["horizon"] {
		return c.horizon
	}
	return def
}

// Policy returns the configured supply-policy name, or def when unset.
func (c Config) Policy(def string) string {
	if c.set["policy"] {
		return c.policy
	}
	return def
}

// QPS returns the configured load rate, or def when unset.
func (c Config) QPS(def float64) float64 {
	if c.set["qps"] {
		return c.qps
	}
	return def
}

// Progress returns the installed progress callback (nil when none).
func (c Config) Progress() ProgressFunc { return c.progress }

// Raw option accessors. Values were validated against the scenario's
// OptionDoc kinds before Run, so a present value that fails to parse
// here means the Spec documents one Kind but its Run reads another —
// a programming error in the scenario, reported by panic rather than
// silently discarding the user's validated value. A missing option
// reports the scenario default passed in.

// String returns a raw option, or def when unset.
func (c Config) String(name, def string) string {
	if v, ok := c.raw[name]; ok {
		return v
	}
	return def
}

// kindMismatch reports a Spec whose accessor disagrees with its
// OptionDoc kind.
func kindMismatch(name, value string, as Kind) string {
	return fmt.Sprintf("scenario: option %s=%q read as %s but documented as another kind — fix the Spec's OptionDoc", name, value, as)
}

// Int returns an integer raw option, or def when unset.
func (c Config) Int(name string, def int) int {
	v, ok := c.raw[name]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		panic(kindMismatch(name, v, KindInt))
	}
	return n
}

// Float returns a float raw option, or def when unset.
func (c Config) Float(name string, def float64) float64 {
	v, ok := c.raw[name]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		panic(kindMismatch(name, v, KindFloat))
	}
	return f
}

// Bool returns a boolean raw option, or def when unset.
func (c Config) Bool(name string, def bool) bool {
	v, ok := c.raw[name]
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		panic(kindMismatch(name, v, KindBool))
	}
	return b
}

// Duration returns a duration raw option (Go syntax, e.g. "90m"), or
// def when unset.
func (c Config) Duration(name string, def time.Duration) time.Duration {
	v, ok := c.raw[name]
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		panic(kindMismatch(name, v, KindDuration))
	}
	return d
}

// SetFlag collects repeatable "-set key=value" scenario options; both
// CLIs install a SetFlag as the flag.Value behind -set so the parsing
// and expansion live in one place.
type SetFlag []string

// String implements flag.Value.
func (f *SetFlag) String() string { return strings.Join(*f, ",") }

// Set implements flag.Value, accepting one key=value pair.
func (f *SetFlag) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want key=value, got %q", v)
	}
	*f = append(*f, v)
	return nil
}

// Options expands the collected pairs into WithOption options.
func (f SetFlag) Options() []Option {
	var out []Option
	for _, kv := range f {
		k, v, _ := strings.Cut(kv, "=")
		out = append(out, WithOption(k, v))
	}
	return out
}

// Kind is the declared type of a raw scenario option.
type Kind string

// Raw option kinds.
const (
	KindInt      Kind = "int"
	KindFloat    Kind = "float"
	KindBool     Kind = "bool"
	KindDuration Kind = "duration"
	KindString   Kind = "string"
)

// OptionDoc documents one scenario-specific raw option: its name, the
// kind its values must parse as, the default in force when unset, and
// one line of help. The docs double as the validation schema — a raw
// option not documented here is rejected.
type OptionDoc struct {
	Name    string
	Kind    Kind
	Default string
	Help    string
}

// parseable reports whether value parses as the documented kind.
func (d OptionDoc) parseable(value string) error {
	var err error
	switch d.Kind {
	case KindInt:
		_, err = strconv.Atoi(value)
	case KindFloat:
		_, err = strconv.ParseFloat(value, 64)
	case KindBool:
		_, err = strconv.ParseBool(value)
	case KindDuration:
		_, err = time.ParseDuration(value)
	case KindString:
	default:
		err = fmt.Errorf("unknown option kind %q", d.Kind)
	}
	if err != nil {
		return fmt.Errorf("scenario: option %s=%q does not parse as %s", d.Name, value, d.Kind)
	}
	return nil
}

// newConfig applies the options and validates the result against the
// scenario's schema: set axes must be ones the scenario declares it
// reads, raw keys must be documented, raw values must parse as their
// documented kind, and a set policy must exist in the policy registry.
func newConfig(sp Spec, opts []Option) (Config, error) {
	var c Config
	for _, opt := range opts {
		opt(&c)
	}
	if sp.Axes != nil {
		honored := map[string]bool{"seed": true}
		for _, a := range sp.Axes {
			honored[a] = true
		}
		for _, axis := range []string{"nodes", "horizon", "policy", "qps"} {
			if c.set[axis] && !honored[axis] {
				return Config{}, fmt.Errorf("scenario: %q does not use the %s axis (honors %v)",
					sp.Name, axis, sp.Axes)
			}
		}
	}
	if c.set["policy"] {
		if _, err := policy.New(c.policy); err != nil {
			return Config{}, err
		}
	}
	docs := map[string]OptionDoc{}
	for _, d := range sp.Options {
		docs[d.Name] = d
	}
	names := make([]string, 0, len(c.raw))
	for name := range c.raw {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic first error
	for _, name := range names {
		d, ok := docs[name]
		if !ok {
			return Config{}, fmt.Errorf("scenario: %q has no option %q (have %v)",
				sp.Name, name, optionNames(sp.Options))
		}
		if err := d.parseable(c.raw[name]); err != nil {
			return Config{}, err
		}
	}
	return c, nil
}

func optionNames(docs []OptionDoc) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.Name
	}
	sort.Strings(out)
	return out
}
