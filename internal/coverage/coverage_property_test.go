package coverage

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/workload"
)

// Property: for any generated trace and any Table I set, the packing is
// physically consistent — shares partition the surface, the warm-up
// share equals jobs × 20 s over the surface, and the ready-worker count
// never exceeds the trace's concurrent idle-node count.
func TestPropertyPackingConsistent(t *testing.T) {
	sets := TableISets()
	f := func(seed int64, rawNodes, rawSet uint8) bool {
		nodes := int(rawNodes%40) + 4
		cfg := workload.DefaultIdleProcess(nodes, 2*time.Hour, seed)
		cfg.MeanIdleNodes = 4
		tr := cfg.Generate()
		set := sets[int(rawSet)%len(sets)]
		r := Simulate(tr, set, DefaultConfig())

		total := r.ShareWarmup + r.ShareReady + r.ShareNotUsed
		if tr.TotalIdle() > 0 && (total < 0.999 || total > 1.001) {
			return false
		}
		wantWarm := float64(r.Jobs) * 20
		if tr.TotalIdle() > 0 {
			gotWarm := r.ShareWarmup * tr.TotalIdle().Seconds()
			if diff := gotWarm - wantWarm; diff < -1 || diff > 1 {
				return false
			}
		}
		// Ready workers can never exceed concurrently idle nodes.
		maxIdle := tr.IdleCount().Quantile(1.0)
		maxReady := r.Ready.Quantile(1.0)
		return maxReady <= maxIdle+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: adding a longer length to a set never reduces the ready
// share (greedy packing is monotone in the length menu for a fixed
// minimum slot).
func TestPropertyMoreLengthsNeverHurt(t *testing.T) {
	f := func(seed int64) bool {
		cfg := workload.DefaultIdleProcess(24, 2*time.Hour, seed)
		cfg.MeanIdleNodes = 4
		tr := cfg.Generate()
		small := Set{Name: "small", Lengths: []time.Duration{
			2 * time.Minute, 4 * time.Minute,
		}}
		big := Set{Name: "big", Lengths: []time.Duration{
			2 * time.Minute, 4 * time.Minute, 8 * time.Minute, 30 * time.Minute,
		}}
		a := Simulate(tr, small, DefaultConfig())
		b := Simulate(tr, big, DefaultConfig())
		// The bigger menu replaces strings of short jobs with fewer
		// long ones: fewer warm-ups, so ready share cannot drop.
		return b.ShareReady >= a.ShareReady-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
