package coverage

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func mins(m int) time.Duration { return time.Duration(m) * time.Minute }

func singlePeriodTrace(length time.Duration) *workload.Trace {
	return &workload.Trace{
		Nodes:   1,
		Horizon: length + time.Hour,
		Periods: []workload.IdlePeriod{{Node: 0, Start: 0, End: length, DeclaredEnd: length}},
	}
}

// The paper's worked example (§IV-B): a 21-minute idle period packed
// with set A1 gets jobs of 14 and 6 minutes; 1 minute stays unused.
func TestPaperExample21Minutes(t *testing.T) {
	tr := singlePeriodTrace(21 * time.Minute)
	a1 := TableISets()[0]
	r := Simulate(tr, a1, DefaultConfig())
	if r.Jobs != 2 {
		t.Fatalf("jobs = %d, want 2 (14m + 6m)", r.Jobs)
	}
	wantUnused := 1.0 / 21.0
	if diff := r.ShareNotUsed - wantUnused; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("unused share = %.4f, want %.4f", r.ShareNotUsed, wantUnused)
	}
	wantWarm := (2 * 20.0) / (21 * 60)
	if diff := r.ShareWarmup - wantWarm; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("warm-up share = %.4f, want %.4f", r.ShareWarmup, wantWarm)
	}
}

func TestWindowBelowMinimumUnused(t *testing.T) {
	tr := singlePeriodTrace(90 * time.Second)
	r := Simulate(tr, TableISets()[0], DefaultConfig())
	if r.Jobs != 0 {
		t.Fatalf("jobs = %d, want 0", r.Jobs)
	}
	if r.ShareNotUsed != 1 {
		t.Errorf("unused = %.3f, want 1", r.ShareNotUsed)
	}
}

func TestMaxJobCapRespected(t *testing.T) {
	tr := singlePeriodTrace(5 * time.Hour)
	cfg := DefaultConfig()
	r := Simulate(tr, Set{Name: "big", Lengths: []time.Duration{4 * time.Hour, mins(2)}}, cfg)
	// The 4-hour length exceeds the 120-minute cap, so only 2-minute
	// jobs are used: 150 of them.
	if r.Jobs != 150 {
		t.Errorf("jobs = %d, want 150", r.Jobs)
	}
}

func TestGreedyFillsEvenWindowsCompletely(t *testing.T) {
	// Every set contains 2 and 4 minutes, so any even window packs
	// fully; unused share must then be identical across sets — the
	// effect behind Table I's constant 15.44% column.
	tr := singlePeriodTrace(62 * time.Minute)
	for _, set := range TableISets() {
		r := Simulate(tr, set, DefaultConfig())
		if r.ShareNotUsed > 1e-9 {
			t.Errorf("set %s left %.4f unused in an even window", r.Set.Name, r.ShareNotUsed)
		}
	}
}

func TestSetBNeedsMoreJobsThanA1(t *testing.T) {
	// §IV-B: a 62-minute idle node gets 5 set-B jobs but only 2-3 from
	// the A sets.
	tr := singlePeriodTrace(62 * time.Minute)
	sets := TableISets()
	a1 := Simulate(tr, sets[0], DefaultConfig())
	b := Simulate(tr, sets[3], DefaultConfig())
	if b.Jobs != 5 { // 32+16+8+4+2
		t.Errorf("set B jobs = %d, want 5", b.Jobs)
	}
	if a1.Jobs >= b.Jobs {
		t.Errorf("A1 jobs = %d, want fewer than B's %d", a1.Jobs, b.Jobs)
	}
	if a1.ShareWarmup >= b.ShareWarmup {
		t.Errorf("A1 warm-up %.4f should be below B's %.4f", a1.ShareWarmup, b.ShareWarmup)
	}
}

func TestReadyWorkerSeries(t *testing.T) {
	// Two overlapping single-node periods on different nodes.
	tr := &workload.Trace{
		Nodes:   2,
		Horizon: time.Hour,
		Periods: []workload.IdlePeriod{
			{Node: 0, Start: 0, End: mins(10), DeclaredEnd: mins(10)},
			{Node: 1, Start: mins(5), End: mins(15), DeclaredEnd: mins(15)},
		},
	}
	r := Simulate(tr, Set{Name: "only10", Lengths: []time.Duration{mins(10)}}, DefaultConfig())
	if r.Jobs != 2 {
		t.Fatalf("jobs = %d, want 2", r.Jobs)
	}
	// Ready overlap ⇒ max 2 workers for ~5 minutes; zero after 15 min.
	if r.ReadyAvg <= 0 {
		t.Error("ready avg should be positive")
	}
	if r.NonAvailability < 0.7 || r.NonAvailability > 0.8 {
		// 60-min horizon, workers ready ≈ [0:20,10:00] + [5:20,15:00] →
		// zero-ready ≈ 45.7/60 ≈ 0.76.
		t.Errorf("non-availability = %.3f, want ≈0.76", r.NonAvailability)
	}
}

// TestTableIWeekTrace regenerates Table I's structure on the calibrated
// week trace: (1) unused share identical across sets; (2) warm-up share
// ordering C2 < C1 ≈ A1 < A2/A3 < B; (3) job counts ordered B > A2 >
// A1 > C2; (4) ready share ≈ 80%; (5) non-availability ≥ saturated
// share of the trace.
func TestTableIWeekTrace(t *testing.T) {
	tr := workload.DefaultIdleProcess(2239, 7*24*time.Hour, 1).Generate()
	results := SimulateAll(tr, DefaultConfig())
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Set.Name] = r
	}

	base := results[0].ShareNotUsed
	for _, r := range results {
		if d := r.ShareNotUsed - base; d < -1e-9 || d > 1e-9 {
			t.Errorf("unused share differs: %s %.4f vs A1 %.4f", r.Set.Name, r.ShareNotUsed, base)
		}
	}
	if base < 0.10 || base > 0.35 {
		t.Errorf("unused share = %.4f, want ≈0.15 (paper 15.44%%)", base)
	}

	if !(byName["B"].Jobs > byName["A2"].Jobs && byName["A2"].Jobs > byName["A1"].Jobs &&
		byName["A1"].Jobs > byName["C2"].Jobs) {
		t.Errorf("job-count ordering broken: B=%d A2=%d A1=%d C2=%d",
			byName["B"].Jobs, byName["A2"].Jobs, byName["A1"].Jobs, byName["C2"].Jobs)
	}

	if byName["B"].ShareWarmup <= byName["A1"].ShareWarmup {
		t.Errorf("warm-up: B %.4f should exceed A1 %.4f",
			byName["B"].ShareWarmup, byName["A1"].ShareWarmup)
	}
	if byName["C2"].ShareWarmup >= byName["A1"].ShareWarmup {
		t.Errorf("warm-up: C2 %.4f should be below A1 %.4f",
			byName["C2"].ShareWarmup, byName["A1"].ShareWarmup)
	}

	for _, r := range results {
		if r.ShareReady < 0.60 || r.ShareReady > 0.90 {
			t.Errorf("set %s ready share = %.4f, want ≈0.80", r.Set.Name, r.ShareReady)
		}
		if r.NonAvailability < 0.08 || r.NonAvailability > 0.30 {
			t.Errorf("set %s non-availability = %.4f, want ≈0.15", r.Set.Name, r.NonAvailability)
		}
		if r.ReadyAvg < 4 || r.ReadyAvg > 12 {
			t.Errorf("set %s ready avg = %.2f, want ≈7.4", r.Set.Name, r.ReadyAvg)
		}
	}

	best := Best(results)
	if best.Set.Name != "C2" && best.Set.Name != "C1" && best.Set.Name != "A1" {
		t.Errorf("best set = %s, paper found C2 (81.20%%) then A1/C1 (80.6%%)", best.Set.Name)
	}
}

func TestEmptySetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty set should panic")
		}
	}()
	Simulate(singlePeriodTrace(mins(10)), Set{Name: "empty"}, DefaultConfig())
}
