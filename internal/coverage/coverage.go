// Package coverage implements the a-posteriori, clairvoyant simulation
// of §IV-A/§IV-B: given an idle-availability trace, it greedily packs
// every idleness period with pilot jobs from a job-length set (longest
// first), charges the first WarmupCharge of each job as warm-up, and
// reports the Table I metrics — an upper bound on what the live system
// can achieve, used to size the fib job lengths and to calibrate the
// Simulation rows of Tables II and III.
package coverage

import (
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Config parameterizes the clairvoyant packing.
type Config struct {
	// WarmupCharge is the initial slice of each job counted as warm-up
	// (20 s in §IV-B).
	WarmupCharge time.Duration

	// MaxJob caps job lengths (the 120-minute backfill window).
	MaxJob time.Duration
}

// DefaultConfig matches §IV-B.
func DefaultConfig() Config {
	return Config{WarmupCharge: 20 * time.Second, MaxJob: 120 * time.Minute}
}

// Set is a named job-length set from Table I.
type Set struct {
	Name    string
	Lengths []time.Duration
}

// TableISets returns the six candidate sets evaluated in Table I.
func TableISets() []Set {
	evens := func(max int) []time.Duration {
		var out []time.Duration
		for m := 2; m <= max; m += 2 {
			out = append(out, time.Duration(m)*time.Minute)
		}
		return out
	}
	mins := func(ms ...int) []time.Duration {
		out := make([]time.Duration, len(ms))
		for i, m := range ms {
			out[i] = time.Duration(m) * time.Minute
		}
		return out
	}
	return []Set{
		{Name: "A1", Lengths: mins(2, 4, 6, 8, 14, 22, 34, 56, 90)},
		{Name: "A2", Lengths: mins(2, 4, 8, 12, 20, 34, 54, 88)},
		{Name: "A3", Lengths: mins(2, 4, 6, 10, 16, 26, 42, 68, 110)},
		{Name: "B", Lengths: mins(2, 4, 8, 16, 32, 64)},
		{Name: "C1", Lengths: evens(20)},
		{Name: "C2", Lengths: evens(120)},
	}
}

// Result is one row of Table I.
type Result struct {
	Set  Set
	Jobs int

	// Shares of the total idle surface by state.
	ShareWarmup  float64
	ShareReady   float64
	ShareNotUsed float64

	// Distribution of the number of simultaneously ready workers over
	// time.
	ReadyP25, ReadyP50, ReadyP75 float64
	ReadyAvg                     float64

	// NonAvailability is the share of the horizon with zero ready
	// workers.
	NonAvailability float64

	// Ready is the underlying ready-worker count series (for the
	// Simulation panel of Figs. 5a/6a).
	Ready *stats.TimeWeighted
}

// Coverage returns warm-up plus ready share (the headline "92%"/"84%"
// upper bounds quoted for the fib and var experiments).
func (r Result) Coverage() float64 { return r.ShareWarmup + r.ShareReady }

// Simulate packs the trace with the set's lengths and reduces the
// Table I metrics.
func Simulate(tr *workload.Trace, set Set, cfg Config) Result {
	if len(set.Lengths) == 0 {
		panic("coverage: empty job-length set")
	}
	lengths := append([]time.Duration(nil), set.Lengths...)
	sort.Slice(lengths, func(i, j int) bool { return lengths[i] > lengths[j] }) // longest first
	minLen := lengths[len(lengths)-1]

	res := Result{Set: set}
	var warmup, ready time.Duration

	type span struct{ start, end time.Duration }
	var readySpans []span

	for _, p := range tr.Periods {
		remaining := p.Len()
		at := p.Start
		for remaining >= minLen {
			var job time.Duration
			for _, l := range lengths {
				if l <= remaining && l <= cfg.MaxJob {
					job = l
					break
				}
			}
			if job == 0 {
				break
			}
			res.Jobs++
			w := cfg.WarmupCharge
			if w > job {
				w = job
			}
			warmup += w
			ready += job - w
			readySpans = append(readySpans, span{start: at + w, end: at + job})
			at += job
			remaining -= job
		}
	}

	total := tr.TotalIdle()
	if total > 0 {
		res.ShareWarmup = warmup.Seconds() / total.Seconds()
		res.ShareReady = ready.Seconds() / total.Seconds()
		res.ShareNotUsed = 1 - res.ShareWarmup - res.ShareReady
	}

	// Sweep the ready spans into a worker-count series over the horizon.
	type ev struct {
		at    time.Duration
		delta int
	}
	evs := make([]ev, 0, 2*len(readySpans))
	for _, s := range readySpans {
		evs = append(evs, ev{s.start, +1}, ev{s.end, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].delta < evs[j].delta
	})
	var tw stats.TimeWeighted
	tw.Observe(0, 0)
	n := 0
	for _, e := range evs {
		n += e.delta
		tw.Observe(e.at, float64(n))
	}
	tw.Finish(tr.Horizon)

	res.ReadyP25 = tw.Quantile(0.25)
	res.ReadyP50 = tw.Quantile(0.50)
	res.ReadyP75 = tw.Quantile(0.75)
	res.ReadyAvg = tw.TimeMean()
	res.NonAvailability = tw.FractionEqual(0)
	res.Ready = &tw
	return res
}

// SimulateAll evaluates every Table I set against one trace.
func SimulateAll(tr *workload.Trace, cfg Config) []Result {
	sets := TableISets()
	out := make([]Result, len(sets))
	for i, s := range sets {
		out[i] = Simulate(tr, s, cfg)
	}
	return out
}

// Best returns the result with the highest ready share (the criterion
// the paper used to pick A1 for fib).
func Best(results []Result) Result {
	best := results[0]
	for _, r := range results[1:] {
		if r.ShareReady > best.ShareReady {
			best = r
		}
	}
	return best
}
