// Package des provides a deterministic discrete-event simulation kernel.
//
// All HPC-Whisk components (the Slurm emulator, the OpenWhisk emulation,
// the message bus, workload generators and load generators) are actors on
// a single virtual clock owned by a Sim. Events scheduled for the same
// instant execute in scheduling order, so a run is reproducible
// bit-for-bit given fixed inputs and seeds.
//
// The zero value of Sim is ready to use; its clock starts at instant 0.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute instant on the virtual clock, expressed as the offset
// from the simulation epoch (instant 0). It aliases time.Duration so that
// ordinary duration arithmetic applies.
type Time = time.Duration

// Event is a scheduled callback. It is returned by Schedule and After so
// the caller can cancel it with Stop before it fires.
type Event struct {
	sim   *Sim
	when  Time
	seq   uint64
	fn    func()
	index int // position in the heap, -1 once fired or stopped
}

// When reports the instant the event is (or was) scheduled to fire.
func (e *Event) When() Time { return e.when }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// Stop cancels the event. It reports whether the event was still pending;
// stopping an already-fired or already-stopped event is a no-op.
func (e *Event) Stop() bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&e.sim.events, e.index)
	e.index = -1
	e.fn = nil
	return true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulation: a virtual clock plus a queue of
// pending events. Sim is not safe for concurrent use; the simulation
// executes in a single goroutine by design (determinism is the point).
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
}

// New returns an empty simulation with its clock at instant 0.
func New() *Sim { return &Sim{} }

// Now returns the current virtual instant.
func (s *Sim) Now() Time { return s.now }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

// Schedule queues fn to run at instant at. Scheduling in the past panics:
// a component that does so holds a stale view of the clock, which is a bug.
func (s *Sim) Schedule(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	e := &Event{sim: s, when: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After queues fn to run d from now. A negative d panics.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	return s.Schedule(s.now+d, fn)
}

// Step fires the earliest pending event, advancing the clock to its
// instant. It reports whether an event was fired.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*Event)
	s.now = e.when
	fn := e.fn
	e.fn = nil
	fn()
	return true
}

// Run fires events until the queue drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires every event scheduled at or before end, then advances the
// clock to end (even if the queue drained earlier or is still non-empty).
func (s *Sim) RunUntil(end Time) {
	if end < s.now {
		panic(fmt.Sprintf("des: run until %v before now %v", end, s.now))
	}
	for len(s.events) > 0 && s.events[0].when <= end {
		s.Step()
	}
	s.now = end
}

// RunFor advances the simulation by d, firing every event in that window.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Ticker fires a callback at a fixed interval until stopped.
type Ticker struct {
	sim      *Sim
	interval time.Duration
	fn       func()
	next     *Event
	stopped  bool
}

// Every schedules fn to run every interval, first at now+interval.
// It panics if interval is not positive.
func (s *Sim) Every(interval time.Duration, fn func()) *Ticker {
	return s.EveryFrom(s.now+interval, interval, fn)
}

// EveryFrom schedules fn to run every interval, first at instant first.
// It panics if interval is not positive.
func (s *Sim) EveryFrom(first Time, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("des: non-positive ticker interval")
	}
	t := &Ticker{sim: s, interval: interval, fn: fn}
	t.next = s.Schedule(first, t.tick)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped the ticker
		t.next = t.sim.After(t.interval, t.tick)
	}
}

// Stop cancels the ticker. Stopping twice is a no-op.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.next.Stop()
}
