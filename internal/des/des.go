// Package des provides a deterministic discrete-event simulation kernel.
//
// All HPC-Whisk components (the Slurm emulator, the OpenWhisk emulation,
// the message bus, workload generators and load generators) are actors on
// a single virtual clock owned by a Sim. Events scheduled for the same
// instant execute in scheduling order, so a run is reproducible
// bit-for-bit given fixed inputs and seeds.
//
// The kernel is the hot path of every experiment (a 24-hour production
// run dispatches tens of millions of events), so the queue is a flat
// 4-ary min-heap of value entries ordered by (instant, sequence): no
// container/heap interface boxing, no per-event heap allocation, and no
// index maintenance. Callback slots are pooled in a free list and
// recycled as events fire; Event handles are small generation-checked
// values, so Stop and Pending on a handle whose slot has been recycled
// for a later scheduling are detected and refused rather than
// corrupting the queue.
//
// The zero value of Sim is ready to use; its clock starts at instant 0.
package des

import (
	"fmt"
	"time"
)

// Time is an absolute instant on the virtual clock, expressed as the offset
// from the simulation epoch (instant 0). It aliases time.Duration so that
// ordinary duration arithmetic applies.
type Time = time.Duration

// Event is a handle to a scheduled callback, returned by Schedule and
// After so the caller can cancel it with Stop before it fires. It is a
// small value (copy freely); the zero Event is valid and refers to no
// scheduling. The handle stays safe forever: once the event fires or is
// stopped, its pooled slot may be recycled for a later scheduling, and
// the generation check makes Stop/Pending on the stale handle a no-op.
type Event struct {
	sim  *Sim
	when Time
	gen  uint32
	idx  int32
}

// node is one pooled callback slot. gen increments every time the slot
// is released (fired or stopped), so a heap entry or handle created for
// an earlier scheduling can never act on a later one. (uint32 suffices:
// a false match needs one slot to cycle exactly 2^32 times while a
// stale reference is held; whole runs schedule orders of magnitude
// fewer events.)
//
// A slot holds either a plain callback (fn) or a typed-argument pair
// (fnA, arg) from ScheduleCall; exactly one of fn/fnA is non-nil while
// the slot is live. The typed form lets hot-path callers reuse one
// long-lived func(any) (typically a cached method value) instead of
// allocating a capturing closure per event.
type node struct {
	fn  func()
	fnA func(any)
	arg any
	gen uint32
}

// entry is one queue element: 24 bytes (8+8+4+4), pointer-free, ordered
// by (when, seq) for the deterministic total order.
type entry struct {
	when Time
	seq  uint64
	gen  uint32
	idx  int32
}

// When reports the instant the event is (or was) scheduled to fire.
func (e Event) When() Time { return e.when }

// Scheduled reports whether the handle has ever referred to a
// scheduling (i.e. it is not the zero Event). Unlike Pending it stays
// true after the event fires.
func (e Event) Scheduled() bool { return e.sim != nil }

// Pending reports whether the event is still queued.
func (e Event) Pending() bool {
	return e.sim != nil && e.sim.nodes[e.idx].gen == e.gen
}

// Stop cancels the event. It reports whether the event was still pending;
// stopping an already-fired or already-stopped event is a no-op, even if
// the event's pooled slot has since been recycled for another scheduling.
func (e Event) Stop() bool {
	if e.sim == nil {
		return false
	}
	s := e.sim
	n := &s.nodes[e.idx]
	if n.gen != e.gen {
		return false
	}
	// Release the slot immediately; the heap entry becomes stale and is
	// skipped when it surfaces (the queue is index-free by design).
	n.fn, n.fnA, n.arg = nil, nil, nil
	n.gen++
	s.free = append(s.free, e.idx)
	s.npending--
	s.ndead++
	return true
}

// Sim is a discrete-event simulation: a virtual clock plus a queue of
// pending events. Sim is not safe for concurrent use; the simulation
// executes in a single goroutine by design (determinism is the point).
// Independent Sims are fully isolated, so replicas of an experiment can
// run concurrently on one Sim each (as internal/sweep does).
type Sim struct {
	now   Time
	heap  []entry
	nodes []node
	free  []int32

	// batch[batchPos:] is the in-flight same-instant dispatch batch:
	// entries already popped off the heap but not yet fired. Keeping it
	// on the Sim (with a cursor, not a local) makes re-entrant
	// Run/RunUntil/Step calls from inside a callback drain the batch
	// remainder first, preserving the (when, seq) total order.
	batch    []entry
	batchPos int

	seq      uint64
	npending int

	// ndead estimates how many stale (stopped) entries the heap still
	// carries. Canceled events release their slot immediately but leave
	// their 24-byte heap entry behind until it surfaces — under a
	// request-path workload that arms and cancels a 60-second timeout
	// per invocation, stale entries can outnumber live ones and deepen
	// every sift. When the estimate says the heap is mostly dead it is
	// compacted in place (maybeCompact); the counter is a heuristic
	// only — an event stopped while sitting in the in-flight batch
	// briefly overcounts — and every compaction resets it to exact.
	ndead int
}

// New returns an empty simulation with its clock at instant 0.
func New() *Sim { return &Sim{} }

// Now returns the current virtual instant.
func (s *Sim) Now() Time { return s.now }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.npending }

// Schedule queues fn to run at instant at. Scheduling in the past panics:
// a component that does so holds a stale view of the clock, which is a bug.
func (s *Sim) Schedule(at Time, fn func()) Event {
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	idx, n := s.acquire(at)
	n.fn = fn
	return s.enqueue(at, idx, n)
}

// After queues fn to run d from now. A negative d panics.
func (s *Sim) After(d time.Duration, fn func()) Event {
	return s.Schedule(s.now+d, fn)
}

// ScheduleCall queues fn(arg) to run at instant at. It is Schedule for
// the hot path: fn is typically a long-lived func(any) (a method value
// cached once on the caller) and arg the per-event payload, so queueing
// an event allocates nothing — no closure is created and the (fn, arg)
// pair lives in the pooled slot. Events from ScheduleCall and Schedule
// share one total (instant, sequence) order.
func (s *Sim) ScheduleCall(at Time, fn func(any), arg any) Event {
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	idx, n := s.acquire(at)
	n.fnA = fn
	n.arg = arg
	return s.enqueue(at, idx, n)
}

// AfterCall queues fn(arg) to run d from now. A negative d panics.
func (s *Sim) AfterCall(d time.Duration, fn func(any), arg any) Event {
	return s.ScheduleCall(s.now+d, fn, arg)
}

// acquire validates the instant and takes a free callback slot.
func (s *Sim) acquire(at Time) (int32, *node) {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, s.now))
	}
	var idx int32
	if k := len(s.free); k > 0 {
		idx = s.free[k-1]
		s.free = s.free[:k-1]
	} else {
		s.nodes = append(s.nodes, node{})
		idx = int32(len(s.nodes) - 1)
	}
	return idx, &s.nodes[idx]
}

// enqueue pushes the filled slot onto the heap and hands out the handle.
func (s *Sim) enqueue(at Time, idx int32, n *node) Event {
	seq := s.seq
	s.seq++
	s.push(entry{when: at, seq: seq, gen: n.gen, idx: idx})
	s.npending++
	return Event{sim: s, when: at, gen: n.gen, idx: idx}
}

// fire releases e's slot and runs its callback. The caller must have
// checked that e is live (slot generation matches) and set the clock.
func (s *Sim) fire(e entry) {
	n := &s.nodes[e.idx]
	fn, fnA, arg := n.fn, n.fnA, n.arg
	n.fn, n.fnA, n.arg = nil, nil, nil
	n.gen++
	s.free = append(s.free, e.idx)
	s.npending--
	if fnA != nil {
		fnA(arg)
		return
	}
	fn()
}

// stepBatch fires the next live entry of the in-flight same-instant
// batch, if any. Batch entries were popped at the current instant, so
// the clock is already right; entries stopped since the pop (by an
// earlier callback of the same batch) are skipped. Reports whether a
// callback ran.
func (s *Sim) stepBatch() bool {
	for s.batchPos < len(s.batch) {
		e := s.batch[s.batchPos]
		s.batchPos++
		if s.nodes[e.idx].gen == e.gen {
			s.fire(e)
			return true
		}
		s.noteDead()
	}
	return false
}

// advance consumes instant t: the caller verified the heap top is a
// live entry at t. The overwhelmingly common case — a single event at
// the instant — fires directly, bypassing the batch buffer; when
// same-instant siblings exist they are all popped into the batch first
// (one heap pop per event, no interleaved pushes) exactly as before,
// and the caller's stepBatch loop drains them. Either way the
// (when, seq) one-at-a-time order is reproduced exactly: callbacks
// scheduling at t carry later sequence numbers than everything already
// popped here.
func (s *Sim) advance(t Time) {
	e := s.pop()
	s.now = t
	if len(s.heap) == 0 || s.heap[0].when != t {
		s.fire(e)
		return
	}
	s.batch = append(s.batch[:0], e)
	s.batchPos = 0
	for len(s.heap) > 0 && s.heap[0].when == t {
		e2 := s.pop()
		if s.nodes[e2.idx].gen == e2.gen {
			s.batch = append(s.batch, e2)
		} else {
			s.noteDead()
		}
	}
}

// noteDead records that a stale entry left the queue.
func (s *Sim) noteDead() {
	if s.ndead > 0 {
		s.ndead--
	}
}

// maybeCompact rebuilds the heap without its stale entries once they
// (appear to) outnumber the live ones, so sift depth tracks the live
// event count rather than the cancellation history. Compaction is
// invisible to the simulation: the firing order is the (when, seq)
// total order, which any valid heap over the same live entries yields.
// Reports whether it compacted (the caller restarts its loop).
func (s *Sim) maybeCompact() bool {
	if s.ndead <= 64 || 2*s.ndead <= len(s.heap) {
		return false
	}
	live := s.heap[:0]
	for _, e := range s.heap {
		if s.nodes[e.idx].gen == e.gen {
			live = append(live, e)
		}
	}
	s.heap = live
	for i := (len(live) - 2) / 4; i >= 0 && len(live) > 1; i-- {
		s.siftDown(i)
	}
	s.ndead = 0
	return true
}

// Step fires the earliest pending event, advancing the clock to its
// instant. It reports whether an event was fired.
func (s *Sim) Step() bool {
	if s.stepBatch() {
		return true
	}
	for len(s.heap) > 0 {
		e := s.pop()
		if s.nodes[e.idx].gen != e.gen {
			s.noteDead()
			continue // stopped; slot already recycled
		}
		s.now = e.when
		s.fire(e)
		return true
	}
	return false
}

// Run fires events until the queue drains.
func (s *Sim) Run() {
	for {
		if s.stepBatch() {
			continue
		}
		if len(s.heap) == 0 {
			return
		}
		top := s.heap[0]
		if s.nodes[top.idx].gen != top.gen {
			s.pop()
			s.noteDead()
			continue
		}
		if s.maybeCompact() {
			continue
		}
		s.advance(top.when)
	}
}

// RunUntil fires every event scheduled at or before end, then advances the
// clock to end (even if the queue drained earlier or is still non-empty).
func (s *Sim) RunUntil(end Time) {
	if end < s.now {
		panic(fmt.Sprintf("des: run until %v before now %v", end, s.now))
	}
	for {
		// Batch entries fire at the already-set clock (≤ now ≤ end).
		if s.stepBatch() {
			continue
		}
		if len(s.heap) == 0 {
			break
		}
		top := s.heap[0]
		if s.nodes[top.idx].gen != top.gen {
			s.pop()
			s.noteDead()
			continue
		}
		if s.maybeCompact() {
			continue
		}
		if top.when > end {
			break
		}
		s.advance(top.when)
	}
	s.now = end
}

// RunFor advances the simulation by d, firing every event in that window.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// RunBefore fires every event scheduled strictly before end, then
// advances the clock to end. It is the half-open window primitive of
// the conservative parallel coordinator (internal/pdes): a plane can be
// advanced through [now, end) while events at exactly end stay pending,
// so a later RunUntil(end) — or events injected at exactly end — still
// fire in (when, seq) order. Equivalent to RunUntil(end) followed by
// re-running the events at end, except those events never fire here.
func (s *Sim) RunBefore(end Time) {
	if end < s.now {
		panic(fmt.Sprintf("des: run before %v behind now %v", end, s.now))
	}
	for {
		// Batch entries fire at the already-set clock (≤ now < end).
		if s.stepBatch() {
			continue
		}
		if len(s.heap) == 0 {
			break
		}
		top := s.heap[0]
		if s.nodes[top.idx].gen != top.gen {
			s.pop()
			s.noteDead()
			continue
		}
		if s.maybeCompact() {
			continue
		}
		if top.when >= end {
			break
		}
		s.advance(top.when)
	}
	s.now = end
}

// NextAt reports the instant of the earliest live pending event — the
// shard-horizon query of the parallel coordinator. ok is false when no
// live event is pending. The clock does not move and nothing fires.
func (s *Sim) NextAt() (at Time, ok bool) {
	for i := s.batchPos; i < len(s.batch); i++ {
		if e := s.batch[i]; s.nodes[e.idx].gen == e.gen {
			return e.when, true
		}
	}
	for len(s.heap) > 0 {
		top := s.heap[0]
		if s.nodes[top.idx].gen != top.gen {
			s.pop()
			s.noteDead()
			continue
		}
		return top.when, true
	}
	return 0, false
}

// less orders entries by (when, seq): the deterministic total order.
func less(a, b entry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// push inserts e into the 4-ary heap, sifting up with hole moves (each
// level is one entry copy, not a swap).
func (s *Sim) push(e entry) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !less(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.heap = h
}

// pop removes and returns the minimum entry, sifting the displaced last
// entry down. With 4 children per level the heap is half the depth of a
// binary heap, trading slightly wider min-of-children scans (which stay
// in one or two cache lines: entries are 24 bytes) for fewer levels.
func (s *Sim) pop() entry {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	s.heap = h[:last]
	if last > 1 {
		s.siftDown(0)
	}
	return top
}

// siftDown restores the heap property below i with hole moves (each
// level is one entry copy, not a swap). Full four-child fan-outs find
// their minimum with a pairwise tournament — two independent compare
// chains instead of one serial scan. (when, seq) keys are unique, so
// tie-break order between the variants can never matter.
func (s *Sim) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		if c+4 <= n {
			if less(h[c+1], h[m]) {
				m = c + 1
			}
			m2 := c + 2
			if less(h[c+3], h[m2]) {
				m2 = c + 3
			}
			if less(h[m2], h[m]) {
				m = m2
			}
		} else {
			for j := c + 1; j < n; j++ {
				if less(h[j], h[m]) {
					m = j
				}
			}
		}
		if !less(h[m], e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}

// Ticker fires a callback at a fixed interval until stopped.
type Ticker struct {
	sim      *Sim
	interval time.Duration
	fn       func()
	tick     func() // cached self-callback: one closure per ticker, not per tick
	next     Event
	stopped  bool
}

// Every schedules fn to run every interval, first at now+interval.
// It panics if interval is not positive.
func (s *Sim) Every(interval time.Duration, fn func()) *Ticker {
	return s.EveryFrom(s.now+interval, interval, fn)
}

// EveryFrom schedules fn to run every interval, first at instant first.
// It panics if interval is not positive.
func (s *Sim) EveryFrom(first Time, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("des: non-positive ticker interval")
	}
	t := &Ticker{sim: s, interval: interval, fn: fn}
	t.tick = t.doTick
	t.next = s.Schedule(first, t.tick)
	return t
}

func (t *Ticker) doTick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped the ticker
		t.next = t.sim.After(t.interval, t.tick)
	}
}

// Stop cancels the ticker. Stopping twice is a no-op.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.next.Stop()
}
