// Package des provides a deterministic discrete-event simulation kernel.
//
// All HPC-Whisk components (the Slurm emulator, the OpenWhisk emulation,
// the message bus, workload generators and load generators) are actors on
// a single virtual clock owned by a Sim. Events scheduled for the same
// instant execute in scheduling order, so a run is reproducible
// bit-for-bit given fixed inputs and seeds.
//
// The kernel is the hot path of every experiment (a 24-hour production
// run dispatches tens of millions of events), so the queue is a flat
// 4-ary min-heap of value entries ordered by (instant, sequence): no
// container/heap interface boxing, no per-event heap allocation, and no
// index maintenance. Callback slots are pooled in a free list and
// recycled as events fire; Event handles are small generation-checked
// values, so Stop and Pending on a handle whose slot has been recycled
// for a later scheduling are detected and refused rather than
// corrupting the queue.
//
// The zero value of Sim is ready to use; its clock starts at instant 0.
package des

import (
	"fmt"
	"time"
)

// Time is an absolute instant on the virtual clock, expressed as the offset
// from the simulation epoch (instant 0). It aliases time.Duration so that
// ordinary duration arithmetic applies.
type Time = time.Duration

// Event is a handle to a scheduled callback, returned by Schedule and
// After so the caller can cancel it with Stop before it fires. It is a
// small value (copy freely); the zero Event is valid and refers to no
// scheduling. The handle stays safe forever: once the event fires or is
// stopped, its pooled slot may be recycled for a later scheduling, and
// the generation check makes Stop/Pending on the stale handle a no-op.
type Event struct {
	sim  *Sim
	when Time
	gen  uint32
	idx  int32
}

// node is one pooled callback slot. gen increments every time the slot
// is released (fired or stopped), so a heap entry or handle created for
// an earlier scheduling can never act on a later one. (uint32 suffices:
// a false match needs one slot to cycle exactly 2^32 times while a
// stale reference is held; whole runs schedule orders of magnitude
// fewer events.)
type node struct {
	fn  func()
	gen uint32
}

// entry is one queue element: 24 bytes (8+8+4+4), pointer-free, ordered
// by (when, seq) for the deterministic total order.
type entry struct {
	when Time
	seq  uint64
	gen  uint32
	idx  int32
}

// When reports the instant the event is (or was) scheduled to fire.
func (e Event) When() Time { return e.when }

// Scheduled reports whether the handle has ever referred to a
// scheduling (i.e. it is not the zero Event). Unlike Pending it stays
// true after the event fires.
func (e Event) Scheduled() bool { return e.sim != nil }

// Pending reports whether the event is still queued.
func (e Event) Pending() bool {
	return e.sim != nil && e.sim.nodes[e.idx].gen == e.gen
}

// Stop cancels the event. It reports whether the event was still pending;
// stopping an already-fired or already-stopped event is a no-op, even if
// the event's pooled slot has since been recycled for another scheduling.
func (e Event) Stop() bool {
	if e.sim == nil {
		return false
	}
	s := e.sim
	n := &s.nodes[e.idx]
	if n.gen != e.gen {
		return false
	}
	// Release the slot immediately; the heap entry becomes stale and is
	// skipped when it surfaces (the queue is index-free by design).
	n.fn = nil
	n.gen++
	s.free = append(s.free, e.idx)
	s.npending--
	return true
}

// Sim is a discrete-event simulation: a virtual clock plus a queue of
// pending events. Sim is not safe for concurrent use; the simulation
// executes in a single goroutine by design (determinism is the point).
// Independent Sims are fully isolated, so replicas of an experiment can
// run concurrently on one Sim each (as internal/sweep does).
type Sim struct {
	now   Time
	heap  []entry
	nodes []node
	free  []int32

	// batch[batchPos:] is the in-flight same-instant dispatch batch:
	// entries already popped off the heap but not yet fired. Keeping it
	// on the Sim (with a cursor, not a local) makes re-entrant
	// Run/RunUntil/Step calls from inside a callback drain the batch
	// remainder first, preserving the (when, seq) total order.
	batch    []entry
	batchPos int

	seq      uint64
	npending int
}

// New returns an empty simulation with its clock at instant 0.
func New() *Sim { return &Sim{} }

// Now returns the current virtual instant.
func (s *Sim) Now() Time { return s.now }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.npending }

// Schedule queues fn to run at instant at. Scheduling in the past panics:
// a component that does so holds a stale view of the clock, which is a bug.
func (s *Sim) Schedule(at Time, fn func()) Event {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	var idx int32
	if k := len(s.free); k > 0 {
		idx = s.free[k-1]
		s.free = s.free[:k-1]
	} else {
		s.nodes = append(s.nodes, node{})
		idx = int32(len(s.nodes) - 1)
	}
	n := &s.nodes[idx]
	n.fn = fn
	seq := s.seq
	s.seq++
	s.push(entry{when: at, seq: seq, gen: n.gen, idx: idx})
	s.npending++
	return Event{sim: s, when: at, gen: n.gen, idx: idx}
}

// After queues fn to run d from now. A negative d panics.
func (s *Sim) After(d time.Duration, fn func()) Event {
	return s.Schedule(s.now+d, fn)
}

// fire releases e's slot and runs its callback. The caller must have
// checked that e is live (slot generation matches) and set the clock.
func (s *Sim) fire(e entry) {
	n := &s.nodes[e.idx]
	fn := n.fn
	n.fn = nil
	n.gen++
	s.free = append(s.free, e.idx)
	s.npending--
	fn()
}

// stepBatch fires the next live entry of the in-flight same-instant
// batch, if any. Batch entries were popped at the current instant, so
// the clock is already right; entries stopped since the pop (by an
// earlier callback of the same batch) are skipped. Reports whether a
// callback ran.
func (s *Sim) stepBatch() bool {
	for s.batchPos < len(s.batch) {
		e := s.batch[s.batchPos]
		s.batchPos++
		if s.nodes[e.idx].gen == e.gen {
			s.fire(e)
			return true
		}
	}
	return false
}

// startBatch pops every heap entry queued for instant t into the batch
// buffer (one heap pop per event, no interleaved pushes) and advances
// the clock to t. Events callbacks then schedule at t carry later
// sequence numbers than everything popped here, so draining the batch
// before the next heap look reproduces the one-at-a-time order exactly.
// Callers must have drained the previous batch first.
func (s *Sim) startBatch(t Time) {
	s.batch = s.batch[:0]
	s.batchPos = 0
	for len(s.heap) > 0 && s.heap[0].when == t {
		e := s.pop()
		if s.nodes[e.idx].gen == e.gen {
			s.batch = append(s.batch, e)
		}
	}
	s.now = t
}

// Step fires the earliest pending event, advancing the clock to its
// instant. It reports whether an event was fired.
func (s *Sim) Step() bool {
	if s.stepBatch() {
		return true
	}
	for len(s.heap) > 0 {
		e := s.pop()
		if s.nodes[e.idx].gen != e.gen {
			continue // stopped; slot already recycled
		}
		s.now = e.when
		s.fire(e)
		return true
	}
	return false
}

// Run fires events until the queue drains.
func (s *Sim) Run() {
	for {
		if s.stepBatch() {
			continue
		}
		if len(s.heap) == 0 {
			return
		}
		top := s.heap[0]
		if s.nodes[top.idx].gen != top.gen {
			s.pop()
			continue
		}
		s.startBatch(top.when)
	}
}

// RunUntil fires every event scheduled at or before end, then advances the
// clock to end (even if the queue drained earlier or is still non-empty).
func (s *Sim) RunUntil(end Time) {
	if end < s.now {
		panic(fmt.Sprintf("des: run until %v before now %v", end, s.now))
	}
	for {
		// Batch entries fire at the already-set clock (≤ now ≤ end).
		if s.stepBatch() {
			continue
		}
		if len(s.heap) == 0 {
			break
		}
		top := s.heap[0]
		if s.nodes[top.idx].gen != top.gen {
			s.pop()
			continue
		}
		if top.when > end {
			break
		}
		s.startBatch(top.when)
	}
	s.now = end
}

// RunFor advances the simulation by d, firing every event in that window.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// less orders entries by (when, seq): the deterministic total order.
func less(a, b entry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// push inserts e into the 4-ary heap, sifting up with hole moves (each
// level is one entry copy, not a swap).
func (s *Sim) push(e entry) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !less(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.heap = h
}

// pop removes and returns the minimum entry, sifting the displaced last
// entry down. With 4 children per level the heap is half the depth of a
// binary heap, trading slightly wider min-of-children scans (which stay
// in one or two cache lines: entries are 24 bytes) for fewer levels.
func (s *Sim) pop() entry {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	e := h[last]
	h = h[:last]
	s.heap = h
	if last > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= last {
				break
			}
			m := c
			hi := c + 4
			if hi > last {
				hi = last
			}
			for j := c + 1; j < hi; j++ {
				if less(h[j], h[m]) {
					m = j
				}
			}
			if !less(h[m], e) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = e
	}
	return top
}

// Ticker fires a callback at a fixed interval until stopped.
type Ticker struct {
	sim      *Sim
	interval time.Duration
	fn       func()
	tick     func() // cached self-callback: one closure per ticker, not per tick
	next     Event
	stopped  bool
}

// Every schedules fn to run every interval, first at now+interval.
// It panics if interval is not positive.
func (s *Sim) Every(interval time.Duration, fn func()) *Ticker {
	return s.EveryFrom(s.now+interval, interval, fn)
}

// EveryFrom schedules fn to run every interval, first at instant first.
// It panics if interval is not positive.
func (s *Sim) EveryFrom(first Time, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("des: non-positive ticker interval")
	}
	t := &Ticker{sim: s, interval: interval, fn: fn}
	t.tick = t.doTick
	t.next = s.Schedule(first, t.tick)
	return t
}

func (t *Ticker) doTick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped the ticker
		t.next = t.sim.After(t.interval, t.tick)
	}
}

// Stop cancels the ticker. Stopping twice is a no-op.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.next.Stop()
}
