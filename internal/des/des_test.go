package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdersByTime(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of scheduling order: %v", got)
		}
	}
}

func TestAfterUsesCurrentNow(t *testing.T) {
	s := New()
	var fired Time
	s.Schedule(5*time.Second, func() {
		s.After(2*time.Second, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 7*time.Second {
		t.Errorf("nested After fired at %v, want 7s", fired)
	}
}

func TestStopPreventsFiring(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(time.Second, func() { fired = true })
	if !e.Pending() {
		t.Fatal("event should be pending")
	}
	if !e.Stop() {
		t.Fatal("first Stop should report true")
	}
	if e.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Error("stopped event fired")
	}
}

func TestStopMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	events := make([]Event, 0, 5)
	for i := 0; i < 5; i++ {
		i := i
		events = append(events, s.Schedule(Time(i+1)*Time(time.Second), func() { got = append(got, i) }))
	}
	events[2].Stop()
	s.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStopAfterFiredIsNoop(t *testing.T) {
	s := New()
	e := s.Schedule(time.Second, func() {})
	s.Run()
	if e.Stop() {
		t.Error("Stop after firing should report false")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(1*time.Second, func() { fired++ })
	s.Schedule(10*time.Second, func() { fired++ })
	s.RunUntil(5 * time.Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.RunUntil(10 * time.Second)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(5*time.Second, func() { fired = true })
	s.RunUntil(5 * time.Second)
	if !fired {
		t.Error("event at the boundary instant should fire")
	}
}

func TestRunForAccumulates(t *testing.T) {
	s := New()
	s.RunFor(2 * time.Second)
	s.RunFor(3 * time.Second)
	if s.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", s.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.RunUntil(10 * time.Second)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	s.Schedule(5*time.Second, func() {})
}

func TestScheduleNilPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("nil callback should panic")
		}
	}()
	s.Schedule(time.Second, nil)
}

func TestTickerFiresAtInterval(t *testing.T) {
	s := New()
	var at []Time
	tk := s.Every(time.Minute, func() { at = append(at, s.Now()) })
	s.RunUntil(5*time.Minute + 30*time.Second)
	tk.Stop()
	if len(at) != 5 {
		t.Fatalf("ticker fired %d times, want 5", len(at))
	}
	for i, want := 0, time.Minute; i < 5; i, want = i+1, want+time.Minute {
		if at[i] != want {
			t.Errorf("tick %d at %v, want %v", i, at[i], want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := New()
	n := 0
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.RunUntil(time.Minute)
	if n != 3 {
		t.Errorf("ticker fired %d times after Stop inside callback, want 3", n)
	}
}

func TestTickerStopTwice(t *testing.T) {
	s := New()
	tk := s.Every(time.Second, func() {})
	tk.Stop()
	tk.Stop() // must not panic
}

func TestEveryFromFirstInstant(t *testing.T) {
	s := New()
	var first Time = -1
	tk := s.EveryFrom(10*time.Second, time.Minute, func() {
		if first < 0 {
			first = s.Now()
		}
	})
	s.RunUntil(2 * time.Minute)
	tk.Stop()
	if first != 10*time.Second {
		t.Errorf("first tick at %v, want 10s", first)
	}
}

func TestEventsDuringStepSeeAdvancedClock(t *testing.T) {
	s := New()
	var seen Time
	s.Schedule(42*time.Second, func() { seen = s.Now() })
	s.Run()
	if seen != 42*time.Second {
		t.Errorf("callback saw Now = %v, want 42s", seen)
	}
}

// Property: for any set of event offsets, events fire in nondecreasing time
// order and the clock never goes backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		var fired []Time
		for _, off := range offsets {
			at := Time(off) * Time(time.Millisecond)
			s.Schedule(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(offsets) {
			return false
		}
		sorted := make([]Time, len(fired))
		copy(sorted, fired)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: randomly stopping a subset of events fires exactly the others.
func TestPropertyStopSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		s := New()
		n := 1 + rng.Intn(50)
		fired := make([]bool, n)
		events := make([]Event, n)
		for i := 0; i < n; i++ {
			i := i
			events[i] = s.Schedule(Time(rng.Intn(1000))*Time(time.Millisecond), func() { fired[i] = true })
		}
		stopped := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				events[i].Stop()
				stopped[i] = true
			}
		}
		s.Run()
		for i := 0; i < n; i++ {
			if fired[i] == stopped[i] {
				t.Fatalf("trial %d: event %d fired=%v stopped=%v", trial, i, fired[i], stopped[i])
			}
		}
	}
}

// BenchmarkScheduleAndRun measures steady-state queue throughput: one
// long-lived Sim (the shape of every experiment — a 24-hour run keeps
// one Sim for tens of millions of events) scheduling and draining 1000
// events per iteration. Steady state is allocation-free: entries, the
// node pool, and the batch buffer are all reused.
func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	s := New()
	fn := func() {}
	for j := 0; j < 1000; j++ { // warm the pool so -benchtime=1x measures steady state
		s.Schedule(Time(j), fn)
	}
	s.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := s.Now()
		for j := 0; j < 1000; j++ {
			s.Schedule(base+Time(j)*Time(time.Millisecond), fn)
		}
		s.Run()
	}
}

// BenchmarkFreshSim tracks the cold-start cost: a new Sim's slab,
// heap, and free list grow from empty each iteration.
func BenchmarkFreshSim(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.Schedule(Time(j)*Time(time.Millisecond), func() {})
		}
		s.Run()
	}
}

func TestScheduleCallPassesArg(t *testing.T) {
	s := New()
	var got []any
	record := func(v any) { got = append(got, v) }
	s.ScheduleCall(2*time.Second, record, "b")
	s.ScheduleCall(time.Second, record, 1)
	s.AfterCall(3*time.Second, record, nil)
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != "b" || got[2] != nil {
		t.Errorf("got = %v, want [1 b <nil>]", got)
	}
}

func TestScheduleCallInterleavesWithSchedule(t *testing.T) {
	// Typed-arg and plain events share one (instant, sequence) order,
	// including same-instant FIFO across the two APIs.
	s := New()
	var order []int
	record := func(v any) { order = append(order, v.(int)) }
	s.Schedule(time.Second, func() { order = append(order, 0) })
	s.ScheduleCall(time.Second, record, 1)
	s.Schedule(time.Second, func() { order = append(order, 2) })
	s.ScheduleCall(time.Second, record, 3)
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want [0 1 2 3]", order)
		}
	}
}

func TestScheduleCallStopAndRecycle(t *testing.T) {
	s := New()
	fired := false
	e := s.ScheduleCall(time.Second, func(any) { fired = true }, "payload")
	if !e.Stop() {
		t.Fatal("stop on pending typed-arg event should report true")
	}
	// The released slot must be clean for the next scheduling, whether
	// it is typed or plain, and the stale handle must stay inert.
	ran := 0
	s.Schedule(time.Second, func() { ran++ })
	s.ScheduleCall(2*time.Second, func(any) { ran++ }, nil)
	if e.Stop() {
		t.Error("stop on a recycled slot should be a no-op")
	}
	s.Run()
	if fired || ran != 2 {
		t.Errorf("fired=%v ran=%d, want false 2", fired, ran)
	}
}

func TestScheduleCallNilPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("nil typed callback should panic")
		}
	}()
	s.ScheduleCall(time.Second, nil, 7)
}

func TestScheduleCallPastPanics(t *testing.T) {
	s := New()
	s.RunUntil(10 * time.Second)
	defer func() {
		if recover() == nil {
			t.Error("typed scheduling in the past should panic")
		}
	}()
	s.ScheduleCall(5*time.Second, func(any) {}, nil)
}

// BenchmarkScheduleCallAndRun is BenchmarkScheduleAndRun for the
// typed-arg hot path: steady state must stay allocation-free even
// though every event carries a distinct pointer argument.
func BenchmarkScheduleCallAndRun(b *testing.B) {
	b.ReportAllocs()
	s := New()
	fn := func(any) {}
	arg := &struct{ n int }{}
	for j := 0; j < 1000; j++ {
		s.ScheduleCall(Time(j), fn, arg)
	}
	s.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := s.Now()
		for j := 0; j < 1000; j++ {
			s.ScheduleCall(base+Time(j)*Time(time.Millisecond), fn, arg)
		}
		s.Run()
	}
}
