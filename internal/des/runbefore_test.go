package des

import (
	"testing"
	"time"
)

func TestRunBeforeExcludesEnd(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	s.Schedule(2*time.Second, func() { got = append(got, 3) })
	s.RunBefore(2 * time.Second)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("RunBefore(2s) fired %v, want [1]", got)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
	// The events at exactly end are still pending and fire in seq order.
	s.RunUntil(2 * time.Second)
	want := []int{1, 2, 3}
	if len(got) != 3 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("after RunUntil(2s): %v, want %v", got, want)
	}
}

func TestRunBeforeThenScheduleAtNow(t *testing.T) {
	s := New()
	s.RunBefore(5 * time.Second)
	fired := false
	// Scheduling at exactly the advanced clock stays legal.
	s.Schedule(5*time.Second, func() { fired = true })
	s.RunUntil(5 * time.Second)
	if !fired {
		t.Fatal("event at now did not fire")
	}
}

// TestRunBeforeMatchesRunUntil pins the windowing identity the pdes
// coordinator relies on: chopping a horizon into half-open RunBefore
// windows plus a final inclusive RunUntil fires exactly the events a
// single RunUntil fires, in the same order — including events that
// callbacks schedule into their own or later windows.
func TestRunBeforeMatchesRunUntil(t *testing.T) {
	build := func(s *Sim, log *[]Time) {
		for i := 0; i < 10; i++ {
			at := time.Duration(i*100) * time.Millisecond
			s.Schedule(at, func() {
				*log = append(*log, s.Now())
				if s.Now() < 800*time.Millisecond {
					s.After(150*time.Millisecond, func() { *log = append(*log, s.Now()) })
				}
			})
		}
	}

	var seqLog []Time
	seq := New()
	build(seq, &seqLog)
	seq.RunUntil(time.Second)

	var winLog []Time
	win := New()
	build(win, &winLog)
	for end := 250 * time.Millisecond; end <= time.Second; end += 250 * time.Millisecond {
		win.RunBefore(end)
	}
	win.RunUntil(time.Second)

	if len(seqLog) != len(winLog) {
		t.Fatalf("event counts differ: %d vs %d", len(seqLog), len(winLog))
	}
	for i := range seqLog {
		if seqLog[i] != winLog[i] {
			t.Fatalf("event %d at %v (windowed) vs %v (sequential)", i, winLog[i], seqLog[i])
		}
	}
}

func TestNextAt(t *testing.T) {
	s := New()
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt on empty sim reported an event")
	}
	ev := s.Schedule(3*time.Second, func() {})
	s.Schedule(5*time.Second, func() {})
	if at, ok := s.NextAt(); !ok || at != 3*time.Second {
		t.Fatalf("NextAt = %v,%v, want 3s,true", at, ok)
	}
	ev.Stop()
	if at, ok := s.NextAt(); !ok || at != 5*time.Second {
		t.Fatalf("NextAt after Stop = %v,%v, want 5s,true", at, ok)
	}
	s.Run()
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt after drain reported an event")
	}
}
