package des

import (
	"container/heap"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// refSim is the pre-optimization kernel (container/heap binary heap,
// one *refEvent allocation per scheduling, eager removal on Stop),
// kept verbatim as the ordering oracle: the pooled 4-ary kernel must
// fire the same events at the same instants in the same order.

type refEvent struct {
	sim   *refSim
	when  Time
	seq   uint64
	fn    func()
	index int
}

func (e *refEvent) Stop() bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&e.sim.events, e.index)
	e.index = -1
	e.fn = nil
	return true
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

type refSim struct {
	now    Time
	events refHeap
	seq    uint64
}

func (s *refSim) Schedule(at Time, fn func()) *refEvent {
	e := &refEvent{sim: s, when: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

func (s *refSim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*refEvent)
	s.now = e.when
	fn := e.fn
	e.fn = nil
	fn()
	return true
}

func (s *refSim) RunUntil(end Time) {
	for len(s.events) > 0 && s.events[0].when <= end {
		s.Step()
	}
	s.now = end
}

// kernel abstracts the two implementations so one scripted op sequence
// can drive both.
type kernel struct {
	now      func() Time
	schedule func(at Time, fn func()) (stop func() bool)
	step     func() bool
	runUntil func(end Time)
	drain    func()
}

func pooledKernel() kernel {
	s := New()
	return kernel{
		now: s.Now,
		schedule: func(at Time, fn func()) func() bool {
			e := s.Schedule(at, fn)
			return e.Stop
		},
		step:     s.Step,
		runUntil: s.RunUntil,
		drain:    s.Run,
	}
}

func referenceKernel() kernel {
	s := &refSim{}
	return kernel{
		now: func() Time { return s.now },
		schedule: func(at Time, fn func()) func() bool {
			e := s.Schedule(at, fn)
			return e.Stop
		},
		step: s.Step,
		runUntil: func(end Time) {
			s.RunUntil(end)
		},
		drain: func() {
			for s.Step() {
			}
		},
	}
}

// runScript drives k through ops pseudo-random schedule / stop / tick
// operations (from its own identically-seeded rng) and renders every
// observable — each firing as "id@instant", every Stop result, every
// Step result — into one log. Callbacks with id ≡ 0 (mod 7) schedule a
// child event from inside the dispatch, exercising reentrant
// scheduling at (and after) the current instant.
func runScript(k kernel, ops int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var log []byte
	var stops []func() bool
	nextID := 0

	var scheduleOne func(at Time)
	scheduleOne = func(at Time) {
		id := nextID
		nextID++
		spawn := id%7 == 0
		childOff := Time(1+id%911) * Time(time.Millisecond)
		stop := k.schedule(at, func() {
			log = append(log, fmt.Sprintf("%d@%d\n", id, k.now())...)
			if spawn {
				scheduleOne(k.now() + childOff)
			}
			// Re-entrant dispatch from inside a callback: a sprinkle of
			// events single-step the kernel or drain their own instant.
			if id%97 == 13 {
				log = append(log, fmt.Sprintf("rstep=%v\n", k.step())...)
			}
			if id%101 == 17 {
				k.runUntil(k.now())
			}
		})
		stops = append(stops, stop)
	}

	for i := 0; i < ops; i++ {
		switch r := rng.Intn(10); {
		case r < 6: // schedule at a random future offset
			off := Time(rng.Intn(10_000)) * Time(time.Millisecond)
			scheduleOne(k.now() + off)
		case r < 8: // stop a random handle (often already fired: stale)
			if len(stops) == 0 {
				continue
			}
			j := rng.Intn(len(stops))
			log = append(log, fmt.Sprintf("stop%d=%v\n", j, stops[j]())...)
		case r == 8: // tick: advance the clock by a window
			d := Time(rng.Intn(5_000)) * Time(time.Millisecond)
			k.runUntil(k.now() + d)
			log = append(log, fmt.Sprintf("tick->%d\n", k.now())...)
		default: // fire a single event
			log = append(log, fmt.Sprintf("step=%v\n", k.step())...)
		}
	}
	k.drain()
	return string(log)
}

// TestPropertyPooledHeapMatchesReference requires the pooled 4-ary
// kernel and the container/heap oracle to produce byte-identical logs
// over 100k random operations.
func TestPropertyPooledHeapMatchesReference(t *testing.T) {
	const ops = 100_000
	for _, seed := range []int64{1, 2, 3} {
		got := runScript(pooledKernel(), ops, seed)
		want := runScript(referenceKernel(), ops, seed)
		if got != want {
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("seed %d: logs diverge at byte %d:\npooled    ...%q\nreference ...%q",
				seed, i, clip(got, lo), clip(want, lo))
		}
	}
}

func clip(s string, lo int) string {
	hi := lo + 120
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// TestStopOnRecycledSlot covers the pooling edge case: after an event
// fires, its slot is recycled for the next scheduling, and the stale
// handle's Stop must refuse (generation mismatch) rather than cancel
// the unrelated new event.
func TestStopOnRecycledSlot(t *testing.T) {
	s := New()
	a := s.Schedule(time.Second, func() {})
	s.Run() // a fires; its slot returns to the free list

	fired := false
	b := s.Schedule(2*time.Second, func() { fired = true })
	if !b.Pending() {
		t.Fatal("b should be pending")
	}
	if a.Pending() {
		t.Error("stale handle reports Pending after its slot was recycled")
	}
	if a.Stop() {
		t.Error("Stop on a fired event's recycled slot should report false")
	}
	if !b.Pending() {
		t.Fatal("stale Stop cancelled an unrelated event sharing the slot")
	}
	s.Run()
	if !fired {
		t.Error("b never fired")
	}
	if a.When() != time.Second || b.When() != 2*time.Second {
		t.Errorf("When() lost after recycling: a=%v b=%v", a.When(), b.When())
	}
}

// TestStopStoppedThenRecycledSlot is the same hazard via the Stop path:
// a stopped event's slot is recycled immediately, and the old handle
// must stay dead.
func TestStopStoppedThenRecycledSlot(t *testing.T) {
	s := New()
	a := s.Schedule(time.Second, func() { t.Error("stopped event fired") })
	if !a.Stop() {
		t.Fatal("first Stop should report true")
	}
	fired := false
	b := s.Schedule(time.Second, func() { fired = true }) // reuses a's slot
	if a.Stop() {
		t.Error("second Stop on a stale handle should report false")
	}
	if a.Pending() {
		t.Error("stale handle reports Pending")
	}
	s.Run()
	if !fired {
		t.Error("b never fired (stale handle interfered)")
	}
	_ = b
}

// TestStopSameInstantSibling: an event stopping a same-instant sibling
// during batched dispatch must prevent the sibling from firing.
func TestStopSameInstantSibling(t *testing.T) {
	s := New()
	var b Event
	bFired := false
	s.Schedule(time.Second, func() {
		if !b.Stop() {
			t.Error("stopping a same-instant pending sibling should report true")
		}
	})
	b = s.Schedule(time.Second, func() { bFired = true })
	s.RunFor(2 * time.Second)
	if bFired {
		t.Error("stopped same-instant sibling fired anyway")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after drain, want 0", s.Pending())
	}
}

// TestTickerStopInsideCallbackWithReuse: a ticker stopped from inside
// its own callback must not re-arm, even with slot recycling churn from
// other events in flight.
func TestTickerStopInsideCallbackWithReuse(t *testing.T) {
	s := New()
	churn := 0
	s.Every(300*time.Millisecond, func() { churn++ })
	n := 0
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.RunUntil(10 * time.Second)
	if n != 3 {
		t.Errorf("ticker fired %d times after Stop inside callback, want 3", n)
	}
	if churn == 0 {
		t.Error("churn ticker never fired")
	}
}

// TestReentrantRunPreservesOrder: a callback that re-enters the event
// loop mid-batch must see its same-instant siblings fire before any
// later instant, at the right clock reading.
func TestReentrantRunPreservesOrder(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(time.Second, func() {
		order = append(order, "A")
		s.Run() // re-enter while sibling B is mid-batch
		order = append(order, "A-done")
	})
	s.Schedule(time.Second, func() {
		order = append(order, fmt.Sprintf("B@%v", s.Now()))
	})
	s.Schedule(2*time.Second, func() {
		order = append(order, fmt.Sprintf("C@%v", s.Now()))
	})
	s.Run()
	want := "A,B@1s,C@2s,A-done"
	got := strings.Join(order, ",")
	if got != want {
		t.Fatalf("re-entrant order = %s, want %s", got, want)
	}
}

// TestReentrantStepFiresSameInstantSibling: Step from inside a callback
// fires the next same-instant event, exactly as the one-at-a-time
// kernel did.
func TestReentrantStepFiresSameInstantSibling(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(time.Second, func() {
		order = append(order, 1)
		if !s.Step() {
			t.Error("re-entrant Step found nothing despite a pending sibling")
		}
		order = append(order, 3)
	})
	s.Schedule(time.Second, func() { order = append(order, 2) })
	s.RunFor(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
}

// TestPendingCountWithLazyCancellation: Sim.Pending must count live
// events only, regardless of stale entries still inside the heap.
func TestPendingCountWithLazyCancellation(t *testing.T) {
	s := New()
	var evs []Event
	for i := 0; i < 100; i++ {
		evs = append(evs, s.Schedule(Time(i+1)*Time(time.Second), func() {}))
	}
	for i := 0; i < 100; i += 2 {
		evs[i].Stop()
	}
	if got := s.Pending(); got != 50 {
		t.Fatalf("Pending = %d after stopping half, want 50", got)
	}
	fired := 0
	for s.Step() {
		fired++
	}
	if fired != 50 {
		t.Fatalf("fired %d events, want 50", fired)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", s.Pending())
	}
}
