package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/policy"
)

// PolicyComparisonConfig parameterizes the supply-policy comparison:
// every named policy runs the same calibrated day (identical trace and
// load seeds), so the rows differ only in how the pilot queue is
// stocked. This is the scenario matrix the paper never had — its §III-D
// evaluates exactly fib and var on separate production days.
type PolicyComparisonConfig struct {
	// Policies are registry names; nil means every registered policy.
	Policies []string

	Nodes   int
	Horizon time.Duration
	Seed    int64
	QPS     float64

	// Trace calibration shared by all rows.
	MeanIdleNodes     float64
	SaturatedFraction float64
}

// DefaultPolicyComparisonConfig returns a tractable afternoon-sized
// scenario over every registered policy.
func DefaultPolicyComparisonConfig(seed int64) PolicyComparisonConfig {
	return PolicyComparisonConfig{
		Policies:          policy.Names(),
		Nodes:             256,
		Horizon:           4 * time.Hour,
		Seed:              seed,
		QPS:               10,
		MeanIdleNodes:     10,
		SaturatedFraction: 0.02,
	}
}

// PolicyRow is one policy's outcome on the shared day.
type PolicyRow struct {
	Policy string

	// Utilization of the idle surface and of the harvested workers.
	Coverage   float64 // Slurm-level used share of the idle+pilot time
	HealthyAvg float64 // time-averaged healthy worker count

	// Request-path outcomes.
	Share503  float64 // share of requests rejected with no invoker
	LostShare float64 // share of invoked requests that never finished

	// Hand-off and churn accounting.
	Handoffs      int
	PilotsStarted int
	Submitted     int
	Preempted     int
}

// PolicyComparisonResult bundles the per-policy rows.
type PolicyComparisonResult struct {
	Config PolicyComparisonConfig
	Rows   []PolicyRow
}

// RunPolicyComparison executes the shared day once per policy.
func RunPolicyComparison(cfg PolicyComparisonConfig) PolicyComparisonResult {
	res, _ := RunPolicyComparisonCtx(context.Background(), cfg, nil) // never canceled
	return res
}

// RunPolicyComparisonCtx is RunPolicyComparison with cooperative
// cancellation and whole-comparison progress.
func RunPolicyComparisonCtx(ctx context.Context, cfg PolicyComparisonConfig, progress ProgressFunc) (PolicyComparisonResult, error) {
	names := cfg.Policies
	if len(names) == 0 {
		names = policy.Names()
	}
	res := PolicyComparisonResult{Config: cfg}
	perDay := cfg.Horizon + dayDrain
	total := time.Duration(len(names)) * perDay
	for i, name := range names {
		day := FibDay(cfg.Seed) // shared calibration; the policy replaces the supply model
		day.Policy = name
		day.Nodes = cfg.Nodes
		day.Horizon = cfg.Horizon
		day.QPS = cfg.QPS
		day.MeanIdleNodes = cfg.MeanIdleNodes
		day.SaturatedFraction = cfg.SaturatedFraction
		r, err := RunDayCtx(ctx, day, offsetProgress(progress, time.Duration(i)*perDay, total))
		if err != nil {
			return res, err
		}
		share503, lost := 0.0, 0.0
		if cfg.QPS > 0 { // with no load there is nothing to reject
			share503, lost = 1-r.Load.InvokedShare, r.Load.LostShare
		}
		res.Rows = append(res.Rows, PolicyRow{
			Policy:        name,
			Coverage:      r.Coverage(),
			HealthyAvg:    r.OW.HealthyAvg,
			Share503:      share503,
			LostShare:     lost,
			Handoffs:      r.Handoffs,
			PilotsStarted: r.PilotsStarted,
			Submitted:     r.Submitted,
			Preempted:     r.Preempted,
		})
	}
	return res, nil
}

// Metrics flattens the comparison for the sweep engine: one metric per
// (policy, quantity) pair, named "<policy>/<quantity>".
func (r PolicyComparisonResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		m[row.Policy+"/coverage"] = row.Coverage
		m[row.Policy+"/healthy-avg"] = row.HealthyAvg
		m[row.Policy+"/503-share"] = row.Share503
		m[row.Policy+"/lost-share"] = row.LostShare
		m[row.Policy+"/handoffs"] = float64(row.Handoffs)
		m[row.Policy+"/pilots-started"] = float64(row.PilotsStarted)
		m[row.Policy+"/submitted"] = float64(row.Submitted)
		m[row.Policy+"/preempted"] = float64(row.Preempted)
	}
	return m
}

// Render prints the comparison table.
func (r PolicyComparisonResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Policy comparison — %d nodes, %v, %.0f QPS (seed %d)\n",
		r.Config.Nodes, r.Config.Horizon, r.Config.QPS, r.Config.Seed)
	fmt.Fprintf(w, "  %-14s %9s %11s %9s %9s %9s %8s %9s %9s\n",
		"policy", "coverage", "healthy-avg", "503", "lost", "handoffs", "pilots", "submitted", "preempted")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-14s %8.2f%% %11.2f %8.2f%% %8.2f%% %9d %8d %9d %9d\n",
			row.Policy, 100*row.Coverage, row.HealthyAvg,
			100*row.Share503, 100*row.LostShare,
			row.Handoffs, row.PilotsStarted, row.Submitted, row.Preempted)
	}
}
