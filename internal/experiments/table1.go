package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/coverage"
	"repro/internal/workload"
)

// TableIResult is the full Table I: one coverage row per length set.
type TableIResult struct {
	Rows []coverage.Result
	Best coverage.Result
}

// RunTableI evaluates the six job-length sets against a week trace
// using the clairvoyant packing simulator of §IV-B.
func RunTableI(tr *workload.Trace) TableIResult {
	res, _ := RunTableICtx(context.Background(), tr) // never canceled
	return res
}

// RunTableICtx is RunTableI with cooperative cancellation checked
// between the per-set packing simulations (each is one full-trace
// clairvoyant pass, the natural epoch of this experiment).
func RunTableICtx(ctx context.Context, tr *workload.Trace) (TableIResult, error) {
	var rows []coverage.Result
	for _, set := range coverage.TableISets() {
		if err := ctx.Err(); err != nil {
			return TableIResult{Rows: rows}, err
		}
		rows = append(rows, coverage.Simulate(tr, set, coverage.DefaultConfig()))
	}
	return TableIResult{Rows: rows, Best: coverage.Best(rows)}, nil
}

// Render prints the table in the paper's column layout.
func (t TableIResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Table I — simulated coverage of idleness periods (20 s warm-up/job)")
	fmt.Fprintf(w, "  %-4s %8s %9s %8s %9s %5s %5s %5s %6s %9s\n",
		"Set", "#jobs", "warmup", "ready", "not-used", "25%", "50%", "75%", "avg", "non-avail")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "  %-4s %8d %8.2f%% %7.2f%% %8.2f%% %5.0f %5.0f %5.0f %6.2f %8.2f%%\n",
			r.Set.Name, r.Jobs,
			100*r.ShareWarmup, 100*r.ShareReady, 100*r.ShareNotUsed,
			r.ReadyP25, r.ReadyP50, r.ReadyP75, r.ReadyAvg,
			100*r.NonAvailability)
	}
	fmt.Fprintf(w, "  best ready share: set %s (%.2f%%)\n", t.Best.Set.Name, 100*t.Best.ShareReady)
}
