package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faasload"
	"repro/internal/lambda"
	"repro/internal/loadgen"
	"repro/internal/stats"
	"repro/internal/whisk"
)

// ScientificConfig parameterizes the paper's named future-work
// experiment (§VII): HPC-Whisk under a representative scientific FaaS
// workload — heterogeneous execution times calibrated to the Azure
// Functions characterization, Zipf-skewed popularity, long-running
// non-interruptible functions, and the Alg. 1 commercial fallback.
type ScientificConfig struct {
	Nodes     int
	Horizon   time.Duration
	Seed      int64
	Functions int
	QPS       float64

	// Policy names the pilot-supply policy in the policy registry.
	// Empty defaults to "fib".
	Policy string

	// UseWrapper routes calls through the Alg. 1 fallback so 503s are
	// absorbed by the commercial cloud; false measures the raw cluster.
	UseWrapper bool

	// CheckpointInterval > 0 lifts the §VII long-function cap: every
	// function — including the long-running ones that otherwise opt out
	// of mid-execution interruption — checkpoints at this cadence and
	// becomes interruptible, since a durable checkpoint makes interrupt
	// recoverable. With UseWrapper, client timeouts that left
	// checkpointed progress additionally resume on the commercial cloud
	// (Wrapper.ResumeTimeouts). 0 keeps today's behavior exactly.
	CheckpointInterval time.Duration
}

// DefaultScientificConfig returns a tractable slice of the production
// setup (the full cluster works too; this keeps bench times short).
func DefaultScientificConfig(seed int64) ScientificConfig {
	return ScientificConfig{
		Nodes:      512,
		Horizon:    6 * time.Hour,
		Seed:       seed,
		Functions:  200,
		QPS:        2,
		Policy:     "fib",
		UseWrapper: true,
	}
}

// PolicyName resolves the effective supply-policy name: the Policy
// field when set, else the paper's fib default.
func (cfg ScientificConfig) PolicyName() string {
	if cfg.Policy != "" {
		return cfg.Policy
	}
	return "fib"
}

// ClassStats summarizes outcomes for one function class.
type ClassStats struct {
	Invocations int
	Success     int
	Lost        int
	Failed      int
	N503        int
	Median      time.Duration
	P95         time.Duration
}

// SuccessShare is successes over completed invocations of the class.
func (c ClassStats) SuccessShare() float64 {
	if c.Invocations == 0 {
		return 0
	}
	return float64(c.Success) / float64(c.Invocations)
}

// ScientificResult is the outcome of the scientific-workload run.
type ScientificResult struct {
	Config  ScientificConfig
	Load    loadgen.Report
	ByClass map[faasload.Class]ClassStats

	// FallbackShare is the fraction of calls served by the commercial
	// cloud through Alg. 1.
	FallbackShare float64

	PilotsStarted int
	Handoffs      int

	// Work is the compute ledger; CloudResumes counts checkpointed
	// executions the wrapper continued on the commercial cloud.
	Work         stats.WorkCounters
	CloudResumes int
}

// RunScientific executes the experiment.
func RunScientific(cfg ScientificConfig) ScientificResult {
	res, _ := RunScientificCtx(context.Background(), cfg, nil) // never canceled
	return res
}

// RunScientificCtx is RunScientific with cooperative cancellation and
// progress.
func RunScientificCtx(ctx context.Context, cfg ScientificConfig, progress ProgressFunc) (ScientificResult, error) {
	day := FibDay(cfg.Seed)
	day.Policy = cfg.PolicyName()
	wl := faasload.DefaultSpec(cfg.Functions, cfg.Seed+1).Build()
	// The model attaches unconditionally (disabled at interval 0 — no
	// draws, no behavior change); enabling it also lifts the long-class
	// interruption opt-out, the cap checkpointing exists to remove.
	ckpt := checkpoint.WithInterval(cfg.CheckpointInterval)
	for _, f := range wl.Functions {
		f.Action.Checkpoint = ckpt
		if cfg.CheckpointInterval > 0 {
			f.Action.Interruptible = true
		}
	}

	sysCfg := core.DefaultSystemConfig(cfg.Nodes, cfg.PolicyName())
	sysCfg.Seed = cfg.Seed + 2
	// Long functions need headroom beyond the default 60 s timeout.
	sysCfg.Controller.ActionTimeout = 10 * time.Minute
	sys := core.NewSystem(sysCfg)

	trCfg := day.TraceConfig()
	trCfg.Nodes = cfg.Nodes
	trCfg.Horizon = cfg.Horizon
	// Scale the idle surface with the cluster slice (the full 2,239-node
	// day carries ≈14 idle nodes on average).
	trCfg.MeanIdleNodes = day.MeanIdleNodes * float64(cfg.Nodes) / float64(day.Nodes)
	if trCfg.MeanIdleNodes < 8 {
		// Keep enough capacity that the heterogeneous (heavy-tailed)
		// execution times do not overload a tiny slice outright.
		trCfg.MeanIdleNodes = 8
	}
	sys.LoadTrace(trCfg.Generate())

	wl.Register(sys.Ctrl)

	var backend loadgen.Backend
	var fb *lambda.Client
	if cfg.UseWrapper {
		fb = lambda.NewClient(sys.Sim, lambda.DefaultClientConfig(), cfg.Seed+3)
		for _, f := range wl.Functions {
			fb.RegisterAction(f.Action.Name, f.Action.Exec)
		}
		wr := core.NewWrapper(sys.Sim, sys.Ctrl, fb)
		wr.ResumeTimeouts = cfg.CheckpointInterval > 0
		backend = wr
	} else {
		backend = loadgen.ForController(sys.Ctrl)
	}

	// Per-class accounting wraps the backend.
	byClass := map[faasload.Class]*classAcc{
		faasload.ClassShort:  {},
		faasload.ClassMedium: {},
		faasload.ClassLong:   {},
	}
	acc := &classifyingBackend{
		inner:   backend,
		sim:     sys.Sim,
		classOf: wl.ClassOf,
		acc:     byClass,
	}

	gen := loadgen.New(sys.Sim, acc, loadgen.Config{
		QPS:      cfg.QPS,
		Actions:  wl.Names(),
		Weights:  wl.Weights(),
		Seed:     cfg.Seed + 4,
		Duration: cfg.Horizon,
	})
	gen.Start()
	sys.Start()
	const drain = 12 * time.Minute // long functions need a long tail
	total := cfg.Horizon + drain
	if err := sys.RunCtx(ctx, cfg.Horizon, 0, offsetProgress(progress, 0, total)); err != nil {
		return ScientificResult{}, err
	}
	if err := sys.RunCtx(ctx, drain, 0, offsetProgress(progress, cfg.Horizon, total)); err != nil {
		return ScientificResult{}, err
	}

	res := ScientificResult{
		Config:        cfg,
		Load:          gen.Report(),
		ByClass:       map[faasload.Class]ClassStats{},
		PilotsStarted: sys.Manager.PilotsStarted,
		Handoffs:      sys.Manager.Handoffs,
		Work:          sys.Ctrl.Work,
	}
	for class, a := range byClass {
		res.ByClass[class] = a.stats()
	}
	if w, ok := backend.(*core.Wrapper); ok {
		if calls := w.PrimaryCalls + w.FallbackCalls; calls > 0 {
			res.FallbackShare = float64(w.FallbackCalls) / float64(calls)
		}
		res.CloudResumes = w.CloudResumes
	}
	return res, nil
}

type classAcc struct {
	n, success, lost, failed, n503 int
	lat                            stats.Sample
}

func (a *classAcc) stats() ClassStats {
	out := ClassStats{
		Invocations: a.n, Success: a.success, Lost: a.lost,
		Failed: a.failed, N503: a.n503,
	}
	if a.lat.Len() > 0 {
		out.Median = time.Duration(a.lat.Median() * float64(time.Second))
		out.P95 = time.Duration(a.lat.Quantile(0.95) * float64(time.Second))
	}
	return out
}

type classifyingBackend struct {
	inner   loadgen.Backend
	sim     interface{ Now() time.Duration }
	classOf func(string) faasload.Class
	acc     map[faasload.Class]*classAcc
}

func (c *classifyingBackend) Invoke(action string, done func(*whisk.Invocation)) {
	class := c.classOf(action)
	a := c.acc[class]
	sent := c.sim.Now()
	c.inner.Invoke(action, func(inv *whisk.Invocation) {
		if a != nil {
			a.n++
			switch inv.Status {
			case whisk.StatusSuccess:
				a.success++
				a.lat.AddDuration(c.sim.Now() - sent)
			case whisk.StatusTimeout:
				a.lost++
			case whisk.StatusFailed:
				a.failed++
			case whisk.Status503:
				a.n503++
			}
		}
		if done != nil {
			done(inv)
		}
	})
}

// Render prints the per-class outcome table.
func (r ScientificResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Scientific FaaS workload (§VII future work) — %d functions, %.0f QPS, %v, %s\n",
		r.Config.Functions, r.Config.QPS, r.Config.Horizon, r.Config.PolicyName())
	fmt.Fprintf(w, "  overall: %s\n", r.Load.String())
	classes := make([]faasload.Class, 0, len(r.ByClass))
	for c := range r.ByClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		s := r.ByClass[c]
		fmt.Fprintf(w, "  %-7s n=%-6d success=%5.1f%% lost=%d failed=%d median=%v p95=%v\n",
			c, s.Invocations, 100*s.SuccessShare(), s.Lost, s.Failed,
			s.Median.Round(time.Millisecond), s.P95.Round(time.Millisecond))
	}
	if r.Config.UseWrapper {
		fmt.Fprintf(w, "  commercial fallback served %.1f%% of calls\n", 100*r.FallbackShare)
	}
	fmt.Fprintf(w, "  pilots=%d handoffs=%d\n", r.PilotsStarted, r.Handoffs)
	// Config-gated so checkpoint-free renders are unchanged.
	if r.Config.CheckpointInterval > 0 {
		fmt.Fprintf(w, "  checkpointing (%v interval): %d dumps, %d resumes (%d cloud); wasted %v, lost %v\n",
			r.Config.CheckpointInterval, r.Work.Checkpoints, r.Work.Resumed, r.CloudResumes,
			r.Work.Wasted.Round(time.Millisecond), r.Work.Lost.Round(time.Millisecond))
	}
}
