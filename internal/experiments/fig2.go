package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig2Jobs is the number of completed non-commercial jobs in the
// monitored week (§I: 74k).
const Fig2Jobs = 74000

// Fig2Result carries the three CDFs of Fig. 2 (minutes).
type Fig2Result struct {
	LimitCDF   []stats.CDFPoint
	RuntimeCDF []stats.CDFPoint
	SlackCDF   []stats.CDFPoint

	MedianLimit   time.Duration
	P5Limit       time.Duration
	MedianRuntime time.Duration
	MedianSlack   time.Duration
	Jobs          int
}

// RunFig2Ctx is RunFig2 with a cancellation check before the job-stream
// generation, and an optional job-count override (0 keeps Fig2Jobs).
func RunFig2Ctx(ctx context.Context, seed int64, jobs int) (Fig2Result, error) {
	if err := ctx.Err(); err != nil {
		return Fig2Result{}, err
	}
	if jobs <= 0 {
		jobs = Fig2Jobs
	}
	return runFig2(seed, jobs), nil
}

// RunFig2 generates the calibrated job stream and reduces its CDFs.
func RunFig2(seed int64) Fig2Result { return runFig2(seed, Fig2Jobs) }

func runFig2(seed int64, n int) Fig2Result {
	jobs := workload.DefaultJobGen(n, Week, seed).Generate()
	limits, runtimes, slacks := workload.JobCDFs(jobs)

	probes := []float64{1, 5, 10, 15, 30, 60, 120, 180, 360, 720, 1440, 2880, 4320}
	var r Fig2Result
	r.LimitCDF = limits.CDF(probes)
	r.RuntimeCDF = runtimes.CDF(probes)
	r.SlackCDF = slacks.CDF(probes)
	r.MedianLimit = time.Duration(limits.Median() * float64(time.Minute))
	r.P5Limit = time.Duration(limits.Quantile(0.05) * float64(time.Minute))
	r.MedianRuntime = time.Duration(runtimes.Median() * float64(time.Minute))
	r.MedianSlack = time.Duration(slacks.Median() * float64(time.Minute))
	r.Jobs = len(jobs)
	return r
}

// Render prints the figure in the paper's terms.
func (r Fig2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 2 — %d jobs; median limit %v (p5 %v), median runtime %v, median slack %v\n",
		r.Jobs, r.MedianLimit, r.P5Limit,
		r.MedianRuntime.Round(time.Minute), r.MedianSlack.Round(time.Minute))
	fmt.Fprintf(w, "  %-10s %-8s %-8s %-8s\n", "≤ minutes", "limit", "runtime", "slack")
	for i := range r.LimitCDF {
		fmt.Fprintf(w, "  %-10.0f %-8.3f %-8.3f %-8.3f\n",
			r.LimitCDF[i].X, r.LimitCDF[i].F, r.RuntimeCDF[i].F, r.SlackCDF[i].F)
	}
}
