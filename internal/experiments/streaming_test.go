package experiments

import (
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

// streamingDay is the scaled-down production day the streaming
// equivalence tests run twice (buffered vs streaming) on one seed.
func streamingDay(base func(int64) DayConfig, seed int64, horizon time.Duration, streaming bool) DayConfig {
	cfg := base(seed)
	cfg.Nodes = 128
	cfg.Horizon = horizon
	cfg.MeanIdleNodes = 6
	cfg.SaturatedFraction = 0.02
	cfg.QPS = 5
	cfg.NumActions = 50
	cfg.SleepExec = 100 * time.Millisecond
	cfg.Streaming = streaming
	return cfg
}

// TestStreamingDayMatchesBuffered is the golden-pinning property test
// of the streaming engine: the same day run with Streaming on must
// reproduce every counter, share and time mean of the buffered run
// exactly (the simulation is untouched — only what the accounting
// retains changes), and its digest quantiles must land within the
// documented stats.Epsilon rank error of the exact buffered sample.
func TestStreamingDayMatchesBuffered(t *testing.T) {
	days := []struct {
		name string
		base func(int64) DayConfig
	}{{"fib", FibDay}, {"var", VarDay}}
	for _, day := range days {
		day := day
		t.Run(day.name, func(t *testing.T) {
			buf := RunDay(streamingDay(day.base, 5, 2*time.Hour, false))
			str := RunDay(streamingDay(day.base, 5, 2*time.Hour, true))

			// Emulator counters: identical simulation, identical counts.
			if buf.PilotsStarted != str.PilotsStarted || buf.Submitted != str.Submitted ||
				buf.Preempted != str.Preempted || buf.Handoffs != str.Handoffs {
				t.Errorf("counters diverged: buffered (%d,%d,%d,%d) vs streaming (%d,%d,%d,%d)",
					buf.PilotsStarted, buf.Submitted, buf.Preempted, buf.Handoffs,
					str.PilotsStarted, str.Submitted, str.Preempted, str.Handoffs)
			}

			// Load report: shares are pure counter ratios, exact in both
			// modes. The median comes from the digest, so it only has to
			// be rank-close (checked below).
			if buf.Load.Issued != str.Load.Issued {
				t.Errorf("issued: %d vs %d", buf.Load.Issued, str.Load.Issued)
			}
			if buf.Load.InvokedShare != str.Load.InvokedShare ||
				buf.Load.SuccessShare != str.Load.SuccessShare ||
				buf.Load.LostShare != str.Load.LostShare ||
				buf.Load.FailedShare != str.Load.FailedShare {
				t.Errorf("shares diverged: %+v vs %+v", buf.Load, str.Load)
			}
			bufTotals, strTotals := buf.Series.Totals(), str.Series.Totals()
			if len(bufTotals) != len(strTotals) {
				t.Fatalf("outcome labels diverged: %v vs %v", bufTotals, strTotals)
			}
			for label, n := range bufTotals {
				if strTotals[label] != n {
					t.Errorf("total[%s]: %d vs %d", label, n, strTotals[label])
				}
			}

			// Slurm-level: counts and shares exact; means are the same
			// sums accumulated in the same order, so only fp-rounding
			// noise is tolerated.
			bs, ss := buf.SlurmLevel, str.SlurmLevel
			if bs.Measurements != ss.Measurements || bs.AvgSpacing != ss.AvgSpacing {
				t.Errorf("poller cadence diverged: (%d,%v) vs (%d,%v)",
					bs.Measurements, bs.AvgSpacing, ss.Measurements, ss.AvgSpacing)
			}
			if bs.ZeroAvailableStates != ss.ZeroAvailableStates ||
				bs.ZeroWorkerStates != ss.ZeroWorkerStates {
				t.Errorf("zero-state counts diverged: (%d,%d) vs (%d,%d)",
					bs.ZeroAvailableStates, bs.ZeroWorkerStates,
					ss.ZeroAvailableStates, ss.ZeroWorkerStates)
			}
			closeF := func(name string, a, b float64) {
				t.Helper()
				if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
					t.Errorf("%s: buffered %v vs streaming %v", name, a, b)
				}
			}
			closeF("share-used", bs.ShareUsed, ss.ShareUsed)
			closeF("share-not-used", bs.ShareNotUsed, ss.ShareNotUsed)
			closeF("worker-avg", bs.WorkerAvg, ss.WorkerAvg)
			closeF("available-avg", bs.AvailableAvg, ss.AvailableAvg)

			// OW-level: time means and zero-run durations are exact in
			// the streaming accumulator.
			bo, so := buf.OW, str.OW
			closeF("warmup-avg", bo.WarmupAvg, so.WarmupAvg)
			closeF("healthy-avg", bo.HealthyAvg, so.HealthyAvg)
			closeF("irresp-avg", bo.IrrespAvg, so.IrrespAvg)
			if bo.NoInvokerTotal != so.NoInvokerTotal || bo.NoInvokerLongest != so.NoInvokerLongest {
				t.Errorf("no-invoker runs diverged: (%v,%v) vs (%v,%v)",
					bo.NoInvokerTotal, bo.NoInvokerLongest, so.NoInvokerTotal, so.NoInvokerLongest)
			}
			if bo.ReadySpanAvg != so.ReadySpanAvg || bo.ReadySpanMedian != so.ReadySpanMedian {
				t.Errorf("ready spans diverged: (%v,%v) vs (%v,%v)",
					bo.ReadySpanAvg, bo.ReadySpanMedian, so.ReadySpanAvg, so.ReadySpanMedian)
			}

			// Digest quantiles: every probe must land within Epsilon rank
			// error of the exact buffered latency sample.
			sample, ok := buf.Latencies.(*stats.Sample)
			if !ok {
				t.Fatalf("buffered latencies are %T, want *stats.Sample", buf.Latencies)
			}
			dig, ok := str.Latencies.(*stats.TDigest)
			if !ok {
				t.Fatalf("streaming latencies are %T, want *stats.TDigest", str.Latencies)
			}
			if sample.Len() != dig.Len() {
				t.Fatalf("latency counts diverged: %d vs %d", sample.Len(), dig.Len())
			}
			eps := stats.Epsilon(stats.DefaultCompression)
			for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				est := dig.Quantile(p)
				hi := sample.CDFAt(est)
				lo := sample.CDFAt(math.Nextafter(est, math.Inf(-1)))
				if p < lo-eps || p > hi+eps {
					t.Errorf("q(%.2f) = %.4fs has exact rank [%.4f,%.4f], beyond ε=%.3f",
						p, est, lo, hi, eps)
				}
			}

			// Mode wiring: streaming runs expose mergeable digests and
			// skip the buffered per-minute panels; buffered runs do the
			// opposite.
			if str.Digests() == nil || str.Digests()["latency-s"] != dig {
				t.Error("streaming run exposes no latency digest")
			}
			if buf.Digests() != nil {
				t.Error("buffered run claims digests")
			}
			if str.SimReadyPerMinute != nil || str.HealthyPerMinute != nil || str.SlurmPerMinute != nil {
				t.Error("streaming run retained per-minute panels")
			}
			if buf.SimReadyPerMinute == nil || buf.HealthyPerMinute == nil || buf.SlurmPerMinute == nil {
				t.Error("buffered run lost its per-minute panels")
			}
			if str.MetricsBytes >= buf.MetricsBytes {
				t.Errorf("streaming retains %d metric bytes, buffered %d — no saving",
					str.MetricsBytes, buf.MetricsBytes)
			}
		})
	}
}

// TestWeekDayMetricsFootprintFlat is the week-day acceptance check:
// with streaming collectors, stretching the horizon from one day to a
// week must leave the retained metric footprint flat (within 1.2×),
// while buffered collectors grow roughly with the horizon.
func TestWeekDayMetricsFootprintFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day horizons (skipped under -short for the CI race gate)")
	}
	run := func(horizon time.Duration, streaming bool) DayResult {
		cfg := FibDay(11)
		cfg.Nodes = 64
		cfg.Horizon = horizon
		cfg.MeanIdleNodes = 4
		cfg.SaturatedFraction = 0.02
		cfg.QPS = 2
		cfg.NumActions = 20
		cfg.SleepExec = 50 * time.Millisecond
		cfg.Streaming = streaming
		return RunDay(cfg)
	}
	day := run(24*time.Hour, true)
	week := run(7*24*time.Hour, true)
	if day.MetricsBytes == 0 || week.MetricsBytes == 0 {
		t.Fatalf("footprint instrumentation broken: day %d, week %d bytes",
			day.MetricsBytes, week.MetricsBytes)
	}
	if limit := day.MetricsBytes * 12 / 10; week.MetricsBytes > limit {
		t.Errorf("streaming week retains %d bytes > 1.2× the 1-day %d — not O(1) in horizon",
			week.MetricsBytes, day.MetricsBytes)
	}
	bufWeek := run(7*24*time.Hour, false)
	if bufWeek.MetricsBytes < 5*week.MetricsBytes {
		t.Errorf("buffered week retains %d bytes vs streaming %d — expected ≥5× gap",
			bufWeek.MetricsBytes, week.MetricsBytes)
	}
}
