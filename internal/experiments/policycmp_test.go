package experiments

import (
	"bytes"
	"testing"
	"time"
)

func smallPolicyDay(name string, seed int64) DayConfig {
	cfg := FibDay(seed)
	cfg.Policy = name
	cfg.Nodes = 64
	cfg.Horizon = 2 * time.Hour
	cfg.MeanIdleNodes = 6
	cfg.QPS = 5
	cfg.NumActions = 20
	return cfg
}

// TestNewPoliciesDeterministic extends the bit-for-bit reproducibility
// guarantee to the three post-paper policies: same seed, same bytes.
func TestNewPoliciesDeterministic(t *testing.T) {
	for _, name := range []string{"adaptive", "lease", "hybrid"} {
		name := name
		t.Run(name, func(t *testing.T) {
			render := func() []byte {
				r := RunDay(smallPolicyDay(name, 11))
				var buf bytes.Buffer
				r.Render(&buf)
				r.RenderSeries(&buf)
				return buf.Bytes()
			}
			a, b := render(), render()
			if !bytes.Equal(a, b) {
				t.Fatalf("same-seed %s runs rendered differently (%d vs %d bytes)", name, len(a), len(b))
			}
		})
	}
}

// TestNewPoliciesHarvest sanity-checks that every new policy actually
// acquires workers and serves load on a day with idle capacity.
func TestNewPoliciesHarvest(t *testing.T) {
	for _, name := range []string{"adaptive", "lease", "hybrid"} {
		name := name
		t.Run(name, func(t *testing.T) {
			r := RunDay(smallPolicyDay(name, 12))
			if r.PilotsStarted == 0 {
				t.Error("no pilots started")
			}
			if r.Submitted == 0 {
				t.Error("nothing submitted")
			}
			if r.Load.InvokedShare == 0 {
				t.Error("no request was ever invoked")
			}
			if r.Config.PolicyName() != name {
				t.Errorf("policy name %q lost", name)
			}
		})
	}
}

func TestPolicyComparison(t *testing.T) {
	cfg := DefaultPolicyComparisonConfig(5)
	cfg.Nodes = 64
	cfg.Horizon = time.Hour
	cfg.MeanIdleNodes = 6
	cfg.QPS = 5
	res := RunPolicyComparison(cfg)
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows, want one per registered policy (5)", len(res.Rows))
	}
	m := res.Metrics()
	for _, row := range res.Rows {
		if row.Submitted == 0 {
			t.Errorf("%s: submitted nothing", row.Policy)
		}
		if _, ok := m[row.Policy+"/coverage"]; !ok {
			t.Errorf("%s: coverage metric missing", row.Policy)
		}
		if _, ok := m[row.Policy+"/503-share"]; !ok {
			t.Errorf("%s: 503 metric missing", row.Policy)
		}
		if _, ok := m[row.Policy+"/handoffs"]; !ok {
			t.Errorf("%s: handoff metric missing", row.Policy)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

// TestAblationWithPolicy runs the hand-off ablation under a non-paper
// supply policy.
func TestAblationWithPolicy(t *testing.T) {
	res := RunAblationWith(AblationConfig{Nodes: 32, Horizon: time.Hour, Seed: 3, Policy: "lease"})
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3 variants", len(res.Rows))
	}
	if res.Policy != "lease" {
		t.Errorf("policy %q lost", res.Policy)
	}
	for _, row := range res.Rows {
		if row.Load.Issued == 0 {
			t.Errorf("%s: no load issued", row.Variant.Name)
		}
	}
}
