package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRunDayMatchesPreRefactorGolden pins the SupplyPolicy refactor to
// the pre-refactor behavior: the testdata goldens were rendered by the
// original core.Mode-enum manager (before the policy interface
// existed, since removed), and the fib/var runs — default-config and
// with the registry policy named explicitly — must still reproduce
// them byte for byte. Regenerate after an intentional behavior change
// with `go run ./internal/experiments/gengolden`.
func TestRunDayMatchesPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	cases := []struct {
		name   string
		golden string
		cfg    DayConfig
	}{
		{"fib-default", "fibday_seed2.golden", FibDay(2)},
		{"var-default", "varday_seed2.golden", VarDay(2)},
		{"fib-policy", "fibday_seed2.golden", withPolicy(FibDay(2), "fib")},
		{"var-policy", "varday_seed2.golden", withPolicy(VarDay(2), "var")},
		// The sharded pdes runtime must reproduce the same goldens: a
		// 1-site federation with the site on its own plane under the
		// lookahead coordinator is byte-identical to the shared plane.
		{"fib-sharded", "fibday_seed2.golden", withShards(FibDay(2), 2)},
		{"var-sharded", "varday_seed2.golden", withShards(VarDay(2), 2)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			r := RunDay(tc.cfg)
			var buf bytes.Buffer
			r.Render(&buf)
			r.RenderSeries(&buf)
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("render diverged from the pre-refactor golden %s (%d vs %d bytes)",
					tc.golden, buf.Len(), len(want))
			}
		})
	}
}

func withPolicy(cfg DayConfig, name string) DayConfig {
	cfg.Policy = name
	return cfg
}

func withShards(cfg DayConfig, n int) DayConfig {
	cfg.Shards = n
	return cfg
}

// TestRunAblationMatchesPreRefactorGolden pins the allocation-free
// request path to the closure-based pre-refactor behavior: the golden
// was rendered before invocations, bus messages, and DES callbacks
// were pooled, and the ablation (which exercises every hand-off code
// path: drains, interrupts, and hard kills under load) must still
// reproduce it byte for byte. Regenerate after an intentional behavior
// change with `go run ./internal/experiments/gengolden`.
func TestRunAblationMatchesPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "ablation_n256_h4_seed5.golden"))
	if err != nil {
		t.Fatal(err)
	}
	r := RunAblation(256, 4*time.Hour, 5)
	var buf bytes.Buffer
	r.Render(&buf)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("ablation render diverged from the pre-refactor golden:\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}
