package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/loadgen"
	"repro/internal/stats"
)

// AblationVariant is one configuration of the hand-off machinery.
type AblationVariant struct {
	Name             string
	GracefulHandoff  bool
	InterruptRunning bool

	// CheckpointInterval > 0 layers the checkpoint/restore subsystem on
	// top of the variant (see DayConfig.CheckpointInterval).
	CheckpointInterval time.Duration
}

// AblationVariants returns the three design points DESIGN.md calls out:
// the full §III-C protocol, the protocol without mid-execution
// interruption, and the unmodified-OpenWhisk baseline where a departing
// worker is simply killed.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "handoff+interrupt", GracefulHandoff: true, InterruptRunning: true},
		{Name: "handoff-only", GracefulHandoff: true, InterruptRunning: false},
		{Name: "no-handoff", GracefulHandoff: false, InterruptRunning: false},
	}
}

// AblationRow is one variant's responsiveness outcome.
type AblationRow struct {
	Variant AblationVariant
	Load    loadgen.Report
	// LostShare duplicated for quick reading: the share of accepted
	// requests that never completed.
	LostShare float64
	Handoffs  int
	Preempted int

	// Work is the variant day's compute ledger; Work.Lost is the
	// lost-work axis the checkpoint arm is measured on.
	Work stats.WorkCounters
}

// AblationResult compares the hand-off design points.
type AblationResult struct {
	Rows    []AblationRow
	Horizon time.Duration

	// Policy is the supply policy the variants ran under ("" = fib).
	Policy string
}

// AblationConfig parameterizes the hand-off ablation; Policy names the
// pilot-supply policy every variant runs under (empty: the paper's
// fib), so the hand-off machinery can be isolated under any supply
// model.
type AblationConfig struct {
	Nodes   int
	Horizon time.Duration
	Seed    int64
	Policy  string

	// Streaming runs every variant day with O(1)-memory streaming
	// collectors (see DayConfig.Streaming). The ablation reads only
	// totals-derived shares, which are exact in both modes.
	Streaming bool

	// Checkpoint adds a fourth design point, handoff+interrupt+checkpoint:
	// the full §III-C protocol plus periodic checkpoints at
	// CheckpointInterval (DefaultAblationCheckpointInterval when zero).
	// Opt-in so the golden-pinned three-row ablation is untouched.
	Checkpoint         bool
	CheckpointInterval time.Duration
}

// DefaultAblationCheckpointInterval is the checkpoint cadence of the
// fourth ablation arm: well under the 500 ms SleepExec body, so a
// typical execution dumps several checkpoints before any interrupt.
const DefaultAblationCheckpointInterval = 100 * time.Millisecond

// RunAblation runs a smaller cluster slice (for tractable bench times)
// through each variant with identical trace and load seeds, isolating
// the hand-off machinery's effect on lost requests.
func RunAblation(nodes int, horizon time.Duration, seed int64) AblationResult {
	return RunAblationWith(AblationConfig{Nodes: nodes, Horizon: horizon, Seed: seed})
}

// RunAblationWith is RunAblation under an explicit supply policy.
func RunAblationWith(a AblationConfig) AblationResult {
	res, _ := RunAblationCtx(context.Background(), a, nil) // never canceled
	return res
}

// RunAblationCtx is RunAblationWith with cooperative cancellation and
// progress across the variants: done/total span all variant days, so a
// progress bar moves monotonically through the whole ablation.
func RunAblationCtx(ctx context.Context, a AblationConfig, progress ProgressFunc) (AblationResult, error) {
	res := AblationResult{Horizon: a.Horizon, Policy: a.Policy}
	variants := AblationVariants()
	if a.Checkpoint {
		iv := a.CheckpointInterval
		if iv <= 0 {
			iv = DefaultAblationCheckpointInterval
		}
		variants = append(variants, AblationVariant{
			Name:            "handoff+interrupt+checkpoint",
			GracefulHandoff: true, InterruptRunning: true,
			CheckpointInterval: iv,
		})
	}
	perDay := a.Horizon + dayDrain
	total := time.Duration(len(variants)) * perDay
	for i, v := range variants {
		cfg := FibDay(a.Seed)
		cfg.Policy = a.Policy
		cfg.Nodes = a.Nodes
		cfg.Horizon = a.Horizon
		cfg.MeanIdleNodes = 6
		cfg.SaturatedFraction = 0.02
		cfg.QPS = 5
		cfg.NumActions = 50
		cfg.SleepExec = 500 * time.Millisecond // long enough to sit in queues
		cfg.GracefulHandoff = v.GracefulHandoff
		cfg.InterruptRunning = v.InterruptRunning
		cfg.CheckpointInterval = v.CheckpointInterval
		cfg.Streaming = a.Streaming
		day, err := RunDayCtx(ctx, cfg, offsetProgress(progress, time.Duration(i)*perDay, total))
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:   v,
			Load:      day.Load,
			LostShare: day.Load.LostShare,
			Handoffs:  day.Handoffs,
			Preempted: day.Preempted,
			Work:      day.Work,
		})
	}
	return res, nil
}

// Render prints the comparison.
func (r AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation — hand-off design points over %v\n", r.Horizon)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-18s lost=%.2f%% success=%.2f%% handoffs=%d preempted=%d",
			row.Variant.Name, 100*row.LostShare, 100*row.Load.SuccessShare,
			row.Handoffs, row.Preempted)
		// The checkpoint arm alone carries the work ledger; the plain
		// variants keep the golden-pinned three-row layout untouched.
		if row.Variant.CheckpointInterval > 0 {
			fmt.Fprintf(w, " lost-work=%v wasted=%v dumps=%d resumes=%d",
				row.Work.Lost.Round(time.Millisecond), row.Work.Wasted.Round(time.Millisecond),
				row.Work.Checkpoints, row.Work.Resumed)
		}
		fmt.Fprintln(w)
	}
}
