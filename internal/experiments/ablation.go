package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/loadgen"
)

// AblationVariant is one configuration of the hand-off machinery.
type AblationVariant struct {
	Name             string
	GracefulHandoff  bool
	InterruptRunning bool
}

// AblationVariants returns the three design points DESIGN.md calls out:
// the full §III-C protocol, the protocol without mid-execution
// interruption, and the unmodified-OpenWhisk baseline where a departing
// worker is simply killed.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "handoff+interrupt", GracefulHandoff: true, InterruptRunning: true},
		{Name: "handoff-only", GracefulHandoff: true, InterruptRunning: false},
		{Name: "no-handoff", GracefulHandoff: false, InterruptRunning: false},
	}
}

// AblationRow is one variant's responsiveness outcome.
type AblationRow struct {
	Variant AblationVariant
	Load    loadgen.Report
	// LostShare duplicated for quick reading: the share of accepted
	// requests that never completed.
	LostShare float64
	Handoffs  int
	Preempted int
}

// AblationResult compares the hand-off design points.
type AblationResult struct {
	Rows    []AblationRow
	Horizon time.Duration

	// Policy is the supply policy the variants ran under ("" = fib).
	Policy string
}

// AblationConfig parameterizes the hand-off ablation; Policy names the
// pilot-supply policy every variant runs under (empty: the paper's
// fib), so the hand-off machinery can be isolated under any supply
// model.
type AblationConfig struct {
	Nodes   int
	Horizon time.Duration
	Seed    int64
	Policy  string

	// Streaming runs every variant day with O(1)-memory streaming
	// collectors (see DayConfig.Streaming). The ablation reads only
	// totals-derived shares, which are exact in both modes.
	Streaming bool
}

// RunAblation runs a smaller cluster slice (for tractable bench times)
// through each variant with identical trace and load seeds, isolating
// the hand-off machinery's effect on lost requests.
func RunAblation(nodes int, horizon time.Duration, seed int64) AblationResult {
	return RunAblationWith(AblationConfig{Nodes: nodes, Horizon: horizon, Seed: seed})
}

// RunAblationWith is RunAblation under an explicit supply policy.
func RunAblationWith(a AblationConfig) AblationResult {
	res, _ := RunAblationCtx(context.Background(), a, nil) // never canceled
	return res
}

// RunAblationCtx is RunAblationWith with cooperative cancellation and
// progress across the variants: done/total span all variant days, so a
// progress bar moves monotonically through the whole ablation.
func RunAblationCtx(ctx context.Context, a AblationConfig, progress ProgressFunc) (AblationResult, error) {
	res := AblationResult{Horizon: a.Horizon, Policy: a.Policy}
	variants := AblationVariants()
	perDay := a.Horizon + dayDrain
	total := time.Duration(len(variants)) * perDay
	for i, v := range variants {
		cfg := FibDay(a.Seed)
		cfg.Policy = a.Policy
		cfg.Nodes = a.Nodes
		cfg.Horizon = a.Horizon
		cfg.MeanIdleNodes = 6
		cfg.SaturatedFraction = 0.02
		cfg.QPS = 5
		cfg.NumActions = 50
		cfg.SleepExec = 500 * time.Millisecond // long enough to sit in queues
		cfg.GracefulHandoff = v.GracefulHandoff
		cfg.InterruptRunning = v.InterruptRunning
		cfg.Streaming = a.Streaming
		day, err := RunDayCtx(ctx, cfg, offsetProgress(progress, time.Duration(i)*perDay, total))
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:   v,
			Load:      day.Load,
			LostShare: day.Load.LostShare,
			Handoffs:  day.Handoffs,
			Preempted: day.Preempted,
		})
	}
	return res, nil
}

// Render prints the comparison.
func (r AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation — hand-off design points over %v\n", r.Horizon)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-18s lost=%.2f%% success=%.2f%% handoffs=%d preempted=%d\n",
			row.Variant.Name, 100*row.LostShare, 100*row.Load.SuccessShare,
			row.Handoffs, row.Preempted)
	}
}
