package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func smallDay(seed int64) DayConfig {
	cfg := FibDay(seed)
	cfg.Nodes = 128
	cfg.Horizon = 2 * time.Hour
	cfg.MeanIdleNodes = 6
	cfg.QPS = 2
	cfg.NumActions = 10
	return cfg
}

func TestDaySeriesExported(t *testing.T) {
	r := RunDay(smallDay(31))
	if len(r.SimReadyPerMinute) < 115 {
		t.Fatalf("sim series = %d minutes", len(r.SimReadyPerMinute))
	}
	if len(r.SlurmPerMinute) != 120 {
		t.Fatalf("slurm series = %d minutes", len(r.SlurmPerMinute))
	}
	if len(r.HealthyPerMinute) < 115 {
		t.Fatalf("healthy series = %d minutes", len(r.HealthyPerMinute))
	}
	// The three panels agree on scale: minute averages track each other
	// within a few workers.
	var simSum, owSum float64
	n := len(r.SimReadyPerMinute)
	if len(r.HealthyPerMinute) < n {
		n = len(r.HealthyPerMinute)
	}
	for i := 0; i < n; i++ {
		simSum += r.SimReadyPerMinute[i]
		owSum += r.HealthyPerMinute[i]
	}
	if owSum > simSum*1.3 {
		t.Errorf("OW series mass %.0f grossly exceeds sim bound %.0f", owSum, simSum)
	}
}

func TestRenderSeries(t *testing.T) {
	r := RunDay(smallDay(32))
	var buf bytes.Buffer
	r.RenderSeries(&buf)
	out := buf.String()
	if !strings.Contains(out, "Fig 5a") {
		t.Errorf("series render missing header:\n%s", out[:80])
	}
	if lines := strings.Count(out, "\n"); lines < 100 {
		t.Errorf("series render has %d lines", lines)
	}
}

func TestSlurmPerMinuteMath(t *testing.T) {
	entries := []core.SlurmLogEntry{
		{At: 10 * time.Second, Pilot: 4},
		{At: 30 * time.Second, Pilot: 6},
		{At: 90 * time.Second, Pilot: 10},
	}
	got := slurmPerMinute(entries, 2*time.Minute)
	if len(got) != 2 {
		t.Fatalf("buckets = %d", len(got))
	}
	if got[0] != 5 {
		t.Errorf("minute 0 = %v, want 5", got[0])
	}
	if got[1] != 10 {
		t.Errorf("minute 1 = %v, want 10", got[1])
	}
}

func TestTraceConfigReflectsDay(t *testing.T) {
	day := VarDay(5)
	cfg := day.TraceConfig()
	if cfg.MeanIdleNodes != day.MeanIdleNodes {
		t.Errorf("mean = %v", cfg.MeanIdleNodes)
	}
	if cfg.ContendedMean != day.ContendedMean || cfg.CalmMean != day.CalmMean {
		t.Error("regime means not forwarded")
	}
	tr := cfg.Generate()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWeekWindowDay: cutting one experiment day out of the week trace
// (as the paper did with separate working days) yields a valid day.
func TestWeekWindowDay(t *testing.T) {
	day := weekTr.Window(2*24*time.Hour, 3*24*time.Hour)
	if day.Horizon != 24*time.Hour {
		t.Fatalf("horizon = %v", day.Horizon)
	}
	if err := day.Validate(); err != nil {
		t.Fatal(err)
	}
	mean := day.IdleCount().TimeMean()
	if mean < 3 || mean > 20 {
		t.Errorf("day mean idle = %.2f, implausible", mean)
	}
}
