package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/lambda"
	"repro/internal/sebs"
	"repro/internal/stats"
)

// Fig7Row compares one SeBS function across the two platforms.
type Fig7Row struct {
	Function string

	PrometheusMedian time.Duration
	LambdaMedian     time.Duration

	// Speedup is LambdaMedian / PrometheusMedian (the paper: ≈1.15 for
	// all three functions).
	Speedup float64
}

// Fig7Result is the §V-D comparison.
type Fig7Result struct {
	Rows        []Fig7Row
	Invocations int
	MemoryMB    int
}

// RunFig7Ctx is RunFig7 behind a cancellation check (the kernels run
// real wall-clock work, but a whole benchmark completes in tens of
// milliseconds, so one up-front check suffices).
func RunFig7Ctx(ctx context.Context, graphN, graphDeg, invocations int, seed int64) (Fig7Result, error) {
	if err := ctx.Err(); err != nil {
		return Fig7Result{}, err
	}
	return RunFig7(graphN, graphDeg, invocations, seed), nil
}

// RunFig7 executes the real bfs/mst/pagerank kernels `invocations`
// times each (warm), observing them under the Prometheus-node platform
// and the Lambda memory-scaled platform.
func RunFig7(graphN, graphDeg, invocations int, seed int64) Fig7Result {
	w := sebs.NewWorkload(graphN, graphDeg, seed)
	platforms := []sebs.Platform{sebs.Prometheus(), lambda.Platform(2048)}
	ms := sebs.RunBenchmark(w, platforms, invocations, nil)

	byKey := map[string]*stats.Sample{}
	for _, m := range ms {
		key := m.Function + "/" + m.Platform
		s := byKey[key]
		if s == nil {
			s = &stats.Sample{}
			byKey[key] = s
		}
		s.AddDuration(m.Internal)
	}

	res := Fig7Result{Invocations: invocations, MemoryMB: 2048}
	for _, fn := range sebs.Functions() {
		prom := byKey[fn+"/Prometheus"]
		lam := byKey[fn+"/Lambda-2048MB"]
		row := Fig7Row{
			Function:         fn,
			PrometheusMedian: time.Duration(prom.Median() * float64(time.Second)),
			LambdaMedian:     time.Duration(lam.Median() * float64(time.Second)),
		}
		if row.PrometheusMedian > 0 {
			row.Speedup = float64(row.LambdaMedian) / float64(row.PrometheusMedian)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the comparison like Fig. 7.
func (r Fig7Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 7 — SeBS warm internal times, Prometheus node vs AWS Lambda %d MB (%d invocations)\n",
		r.MemoryMB, r.Invocations)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-9s prometheus %-12v lambda %-12v lambda/prometheus %.3f\n",
			row.Function, row.PrometheusMedian.Round(time.Microsecond),
			row.LambdaMedian.Round(time.Microsecond), row.Speedup)
	}
}
