package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/workload"
)

// EndogenousConfig parameterizes the full-scheduler experiment: instead
// of replaying an exogenous availability trace, a Fig. 2-calibrated
// prime job stream flows through the emulator's own EASY backfill, and
// the idleness the pilots harvest *emerges* from scheduling — the
// complete system of §III end to end.
type EndogenousConfig struct {
	Nodes   int
	Horizon time.Duration
	Seed    int64

	// Policy names the pilot-supply policy in the policy registry.
	// Empty defaults to "fib".
	Policy string

	// Utilization is the target prime-load share of the cluster
	// (Prometheus ran above 0.99; smaller slices need headroom for the
	// coarser job mix).
	Utilization float64

	// MaxWalltime and MaxJobNodes clamp the Fig. 2 job mix so single
	// jobs cannot swamp a small cluster slice.
	MaxWalltime time.Duration
	MaxJobNodes int
}

// DefaultEndogenousConfig returns a tractable slice.
func DefaultEndogenousConfig(seed int64) EndogenousConfig {
	return EndogenousConfig{
		Nodes:       256,
		Horizon:     12 * time.Hour,
		Seed:        seed,
		Policy:      "fib",
		Utilization: 0.94,
		MaxWalltime: 4 * time.Hour,
		MaxJobNodes: 32,
	}
}

// EndogenousResult summarizes the run.
type EndogenousResult struct {
	Config EndogenousConfig

	// PrimeUtilization is the busy share of the cluster over the
	// horizon; IdleShare and PilotShare split the remainder.
	PrimeUtilization float64
	IdleShare        float64
	PilotShare       float64

	// PilotCoverage is pilot time over the non-prime (idle ∪ pilot)
	// surface — the endogenous analogue of the paper's coverage.
	PilotCoverage float64

	// MeanWait and P95Wait summarize prime-job queue waits; the paper's
	// non-invasiveness claim is that pilots never add to them beyond
	// the 3-minute grace.
	MeanWait time.Duration
	P95Wait  time.Duration

	JobsSubmitted int
	JobsCompleted int
	PilotsStarted int
	Preempted     int
}

// PolicyName resolves the effective supply-policy name: the Policy
// field when set, else the paper's fib default.
func (cfg EndogenousConfig) PolicyName() string {
	if cfg.Policy != "" {
		return cfg.Policy
	}
	return "fib"
}

// RunEndogenous executes the experiment.
func RunEndogenous(cfg EndogenousConfig) EndogenousResult {
	res, _ := RunEndogenousCtx(context.Background(), cfg, nil) // never canceled
	return res
}

// RunEndogenousCtx is RunEndogenous with cooperative cancellation and
// progress.
func RunEndogenousCtx(ctx context.Context, cfg EndogenousConfig, progress ProgressFunc) (EndogenousResult, error) {
	sysCfg := core.DefaultSystemConfig(cfg.Nodes, cfg.PolicyName())
	sysCfg.Seed = cfg.Seed + 10
	sys := core.NewSystem(sysCfg)

	// Build the clamped Fig. 2 job mix and size the stream so the
	// offered load hits the utilization target.
	gen := workload.DefaultJobGen(1000, cfg.Horizon, cfg.Seed+11)
	gen.WalltimeSeconds = dist.Clamped{D: gen.WalltimeSeconds, Min: 300, Max: cfg.MaxWalltime.Seconds()}
	gen.NodesDist = dist.Clamped{D: gen.NodesDist, Min: 1, Max: float64(cfg.MaxJobNodes)}
	probe := gen.Generate()
	var nodeSeconds float64
	for _, j := range probe {
		nodeSeconds += float64(j.Nodes) * j.Runtime.Seconds()
	}
	perJob := nodeSeconds / float64(len(probe))
	gen.N = int(float64(cfg.Nodes) * cfg.Horizon.Seconds() * cfg.Utilization / perJob)
	jobs := gen.Generate()

	// Track busy/idle/pilot node counts from cluster transitions.
	var busyTW, idleTW, pilotTW stats.TimeWeighted
	counts := map[cluster.State]int{cluster.Idle: cfg.Nodes}
	observe := func(at time.Duration) {
		busyTW.Observe(at, float64(counts[cluster.Busy]))
		idleTW.Observe(at, float64(counts[cluster.Idle]))
		pilotTW.Observe(at, float64(counts[cluster.Pilot]))
	}
	observe(0)
	sys.Slurm.Cluster().OnChange(func(node int, from, to cluster.State, at time.Duration) {
		counts[from]--
		counts[to]++
		observe(at)
	})

	var waits stats.Sample
	completed := 0
	for _, j := range jobs {
		j := j
		sys.Sim.Schedule(j.Submit, func() {
			sys.Slurm.Submit(slurm.JobSpec{
				Name:      "prime",
				Partition: "hpc",
				Nodes:     j.Nodes,
				TimeLimit: j.Declared,
				Runtime:   j.Runtime,
				OnStart: func(sj *slurm.Job) {
					waits.AddDuration(sj.Started - sj.Submitted)
				},
				OnEnd: func(sj *slurm.Job, reason slurm.EndReason) {
					if reason == slurm.ReasonCompleted {
						completed++
					}
				},
			})
		})
	}

	sys.Start()
	if err := sys.RunCtx(ctx, cfg.Horizon, 0, progress); err != nil {
		return EndogenousResult{}, err
	}
	busyTW.Finish(cfg.Horizon)
	idleTW.Finish(cfg.Horizon)
	pilotTW.Finish(cfg.Horizon)

	n := float64(cfg.Nodes)
	res := EndogenousResult{
		Config:           cfg,
		PrimeUtilization: busyTW.TimeMean() / n,
		IdleShare:        idleTW.TimeMean() / n,
		PilotShare:       pilotTW.TimeMean() / n,
		JobsSubmitted:    len(jobs),
		JobsCompleted:    completed,
		PilotsStarted:    sys.Manager.PilotsStarted,
		Preempted:        sys.Slurm.Preempted,
	}
	if gap := res.IdleShare + res.PilotShare; gap > 0 {
		res.PilotCoverage = res.PilotShare / gap
	}
	if waits.Len() > 0 {
		res.MeanWait = time.Duration(waits.Mean() * float64(time.Second))
		res.P95Wait = time.Duration(waits.Quantile(0.95) * float64(time.Second))
	}
	return res, nil
}

// Render prints the summary.
func (r EndogenousResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Endogenous full-scheduler run — %d nodes, %v, %s pilots\n",
		r.Config.Nodes, r.Config.Horizon, r.Config.PolicyName())
	fmt.Fprintf(w, "  prime utilization %.1f%%; idle %.1f%%; pilot %.1f%%\n",
		100*r.PrimeUtilization, 100*r.IdleShare, 100*r.PilotShare)
	fmt.Fprintf(w, "  pilots covered %.1f%% of the emergent gaps\n", 100*r.PilotCoverage)
	fmt.Fprintf(w, "  prime jobs: %d submitted, %d completed; wait mean %v / p95 %v\n",
		r.JobsSubmitted, r.JobsCompleted,
		r.MeanWait.Round(time.Second), r.P95Wait.Round(time.Second))
	fmt.Fprintf(w, "  pilots started %d; preempted %d\n", r.PilotsStarted, r.Preempted)
}
