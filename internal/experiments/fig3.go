package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/slurm"
	"repro/internal/stats"
)

// Fig3Result reproduces the motivating example of Fig. 3: four HPC jobs
// on five nodes scheduled to (near-)minimal makespan, with short pilot
// jobs filling the gaps.
type Fig3Result struct {
	JobStarts map[string]time.Duration
	Makespan  time.Duration

	// AvgIdleNodes is the average number of non-prime nodes within the
	// makespan (the paper's example: 1.2).
	AvgIdleNodes float64

	// IdleSurface is the idle node-time within the makespan.
	IdleSurface time.Duration

	// ReadyCoverage is the share of that surface covered by *ready*
	// invokers (the paper: 83%); GapCoverage counts warming time too.
	ReadyCoverage float64
	GapCoverage   float64

	PilotsStarted int
}

// RunFig3 builds the example: job1 3×5min, job2 1×13min, job3 2×7min,
// job4 4×8min, with pilot lengths 2/4/6/10 minutes as in the figure.
func RunFig3(seed int64) Fig3Result {
	res, _ := RunFig3Ctx(context.Background(), seed, nil) // never canceled
	return res
}

// RunFig3Ctx is RunFig3 with cooperative cancellation and progress.
func RunFig3Ctx(ctx context.Context, seed int64, progress ProgressFunc) (Fig3Result, error) {
	scfg := core.DefaultSystemConfig(5, "fib")
	scfg.Seed = seed
	scfg.Slurm.SchedInterval = 5 * time.Second
	scfg.Slurm.PassBase = 100 * time.Millisecond
	scfg.Manager.FibLengths = core.Minutes(2, 4, 6, 10)
	scfg.Manager.FibDepth = 5
	sys := core.NewSystem(scfg)

	// Track idle and pilot node counts from cluster transitions.
	var idleTW, pilotTW stats.TimeWeighted
	idleN, pilotN := 5, 0
	idleTW.Observe(0, float64(idleN))
	pilotTW.Observe(0, 0)
	sys.Slurm.Cluster().OnChange(func(node int, from, to cluster.State, at time.Duration) {
		adjust := func(s cluster.State, d int) {
			switch s {
			case cluster.Idle:
				idleN += d
			case cluster.Pilot:
				pilotN += d
			}
		}
		adjust(from, -1)
		adjust(to, +1)
		idleTW.Observe(at, float64(idleN))
		pilotTW.Observe(at, float64(pilotN))
	})

	mins := func(m int) time.Duration { return time.Duration(m) * time.Minute }
	starts := map[string]time.Duration{}
	var res Fig3Result
	done := 0
	// The measurement window closes exactly at the makespan: capture
	// every statistic inside the last job's completion callback, before
	// the post-schedule all-idle tail pollutes the accounting.
	capture := func() {
		now := sys.Sim.Now()
		res.Makespan = now
		idleTW.Finish(now)
		pilotTW.Finish(now)
		sys.Manager.States.Finish(now)

		gapSurface := (idleTW.TimeMean() + pilotTW.TimeMean()) * now.Seconds()
		healthySurface := sys.Manager.States.Healthy.TimeMean() * now.Seconds()
		warmingSurface := sys.Manager.States.Warming.TimeMean() * now.Seconds()

		res.IdleSurface = time.Duration(gapSurface * float64(time.Second))
		res.PilotsStarted = sys.Manager.PilotsStarted
		if now > 0 {
			res.AvgIdleNodes = gapSurface / now.Seconds()
		}
		if gapSurface > 0 {
			res.ReadyCoverage = healthySurface / gapSurface
			res.GapCoverage = (healthySurface + warmingSurface) / gapSurface
		}
	}
	submit := func(name string, nodes, runMin int) {
		sys.Slurm.Submit(slurm.JobSpec{
			Name: name, Partition: "hpc", Nodes: nodes,
			TimeLimit: mins(runMin), Runtime: mins(runMin),
			OnStart: func(j *slurm.Job) { starts[name] = sys.Sim.Now() },
			OnEnd: func(j *slurm.Job, reason slurm.EndReason) {
				done++
				if done == 4 {
					capture()
				}
			},
		})
	}
	submit("job1", 3, 5)
	submit("job2", 1, 13)
	submit("job3", 2, 7)
	submit("job4", 4, 8)

	sys.Start()
	if err := sys.RunCtx(ctx, 40*time.Minute, 0, progress); err != nil {
		return Fig3Result{}, err
	}

	res.JobStarts = starts
	return res, nil
}

// Render prints the example in the paper's terms.
func (r Fig3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 3 — 4 HPC jobs on 5 nodes; makespan %v\n", r.Makespan.Round(time.Second))
	for _, name := range []string{"job1", "job2", "job3", "job4"} {
		fmt.Fprintf(w, "  %s starts at %v\n", name, r.JobStarts[name].Round(time.Second))
	}
	fmt.Fprintf(w, "  avg idle nodes %.2f (paper: 1.2); idle surface %v\n",
		r.AvgIdleNodes, r.IdleSurface.Round(time.Minute))
	fmt.Fprintf(w, "  %d pilots; ready invokers covered %.0f%% of idle slots (paper: 83%%)\n",
		r.PilotsStarted, 100*r.ReadyCoverage)
}
