package experiments

import (
	"bytes"
	"testing"
)

// TestRunDayByteIdentical guards the package doc's "reproducible
// bit-for-bit" claim at full scale: two same-seed fib-day runs must
// render byte-identical tables and per-minute series. This is what the
// dist.Split stream design buys — every component draws from its own
// forked stream, so no scheduling detail can reorder draws between
// runs.
func TestRunDayByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	render := func() []byte {
		r := RunDay(FibDay(2))
		var buf bytes.Buffer
		r.Render(&buf)
		r.RenderSeries(&buf)
		return buf.Bytes()
	}
	a := render()
	b := render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed RunDay(FibDay(2)) runs rendered differently:\nfirst %d bytes vs second %d bytes",
			len(a), len(b))
	}
}
