package experiments

import "time"

// Metrics methods flatten each experiment's result into the named-scalar
// form the sweep engine aggregates across replicas. Names are stable:
// they key the JSON/CSV output of cmd/hpcwhisk-sweep and the summaries
// in sweep.Result, so renaming one is a breaking change to saved sweeps.

// Metrics returns the headline Table II/III and Fig. 5b/6b numbers.
func (r DayResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"live-coverage":  r.Coverage(),
		"sim-bound":      r.Sim.Coverage(),
		"healthy-avg":    r.OW.HealthyAvg,
		"warmup-avg":     r.OW.WarmupAvg,
		"available-avg":  r.SlurmLevel.AvailableAvg,
		"no-invoker-min": r.OW.NoInvokerTotal.Minutes(),
		"ready-span-min": r.OW.ReadySpanAvg.Minutes(),
		"pilots-started": float64(r.PilotsStarted),
		"preempted":      float64(r.Preempted),
		"handoffs":       float64(r.Handoffs),
	}
	if r.Config.QPS > 0 {
		m["invoked-share"] = r.Load.InvokedShare
		m["success-share"] = r.Load.SuccessShare
		m["lost-share"] = r.Load.LostShare
		m["median-latency-ms"] = float64(r.Load.MedianLatency.Milliseconds())
	}
	if r.Config.Streaming {
		m["metrics-bytes"] = float64(r.MetricsBytes)
	}
	// Config-gated (not Work.Zero()-gated): goodput accrues on every
	// run, but the ledger is only a headline when checkpointing is on.
	if r.Config.CheckpointInterval > 0 {
		m["checkpoints"] = float64(r.Work.Checkpoints)
		m["resumed"] = float64(r.Work.Resumed)
		m["cloud-resumes"] = float64(r.Work.CloudResumes)
		m["goodput-share"] = r.Work.GoodputShare()
		m["wasted-s"] = r.Work.Wasted.Seconds()
		m["lost-work-s"] = r.Work.Lost.Seconds()
		m["checkpoint-s"] = r.Work.CheckpointTime.Seconds()
		m["restore-s"] = r.Work.RestoreTime.Seconds()
	}
	return m
}

// Metrics returns the §VII scientific-workload headline numbers.
func (r ScientificResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"invoked-share":  r.Load.InvokedShare,
		"success-share":  r.Load.SuccessShare,
		"fallback-share": r.FallbackShare,
		"pilots-started": float64(r.PilotsStarted),
		"handoffs":       float64(r.Handoffs),
	}
	if r.Config.CheckpointInterval > 0 {
		m["checkpoints"] = float64(r.Work.Checkpoints)
		m["resumed"] = float64(r.Work.Resumed)
		m["cloud-resumes"] = float64(r.CloudResumes)
		m["lost-work-s"] = r.Work.Lost.Seconds()
	}
	return m
}

// Metrics returns the full-scheduler headline numbers.
func (r EndogenousResult) Metrics() map[string]float64 {
	return map[string]float64{
		"prime-utilization": r.PrimeUtilization,
		"idle-share":        r.IdleShare,
		"pilot-share":       r.PilotShare,
		"pilot-coverage":    r.PilotCoverage,
		"mean-wait-s":       r.MeanWait.Seconds(),
		"p95-wait-s":        r.P95Wait.Seconds(),
		"jobs-completed":    float64(r.JobsCompleted),
		"pilots-started":    float64(r.PilotsStarted),
	}
}

// Metrics returns one lost-share metric per hand-off design point.
func (r AblationResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		m[row.Variant.Name+"-lost-share"] = row.LostShare
	}
	return m
}

// Metrics returns the §I idle-surface headline numbers of Fig. 1.
func (r Fig1Result) Metrics() map[string]float64 {
	return map[string]float64{
		"mean-idle-nodes":     r.MeanIdle,
		"median-idle-nodes":   r.MedianIdle,
		"p99-idle-nodes":      r.P99Idle,
		"median-period-min":   r.MedianPeriod.Minutes(),
		"mean-period-min":     r.MeanPeriod.Minutes(),
		"tail-over-23min":     r.TailOver23m,
		"zero-idle-share":     r.ZeroIdleShare,
		"longest-zero-idle-h": r.LongestZeroIdle.Hours(),
		"idle-surface-node-h": r.TotalIdleSurface.Hours(),
		"idle-periods":        float64(r.Periods),
	}
}

// Metrics returns the Fig. 2 job-stream headline numbers.
func (r Fig2Result) Metrics() map[string]float64 {
	return map[string]float64{
		"median-limit-min":   r.MedianLimit.Minutes(),
		"p5-limit-min":       r.P5Limit.Minutes(),
		"median-runtime-min": r.MedianRuntime.Minutes(),
		"median-slack-min":   r.MedianSlack.Minutes(),
		"jobs":               float64(r.Jobs),
	}
}

// Metrics returns the Fig. 3 motivating-example headline numbers.
func (r Fig3Result) Metrics() map[string]float64 {
	return map[string]float64{
		"makespan-min":   r.Makespan.Minutes(),
		"avg-idle-nodes": r.AvgIdleNodes,
		"ready-coverage": r.ReadyCoverage,
		"gap-coverage":   r.GapCoverage,
		"pilots-started": float64(r.PilotsStarted),
	}
}

// Metrics returns one ready-share metric per Table I length set plus
// the winning share.
func (r TableIResult) Metrics() map[string]float64 {
	m := map[string]float64{"best-ready-share": r.Best.ShareReady}
	for _, row := range r.Rows {
		m[row.Set.Name+"-ready-share"] = row.ShareReady
		m[row.Set.Name+"-warmup-share"] = row.ShareWarmup
	}
	return m
}

// Metrics returns per-function medians and speedups of Fig. 7.
func (r Fig7Result) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		m[row.Function+"-prometheus-ms"] = float64(row.PrometheusMedian) / float64(time.Millisecond)
		m[row.Function+"-lambda-ms"] = float64(row.LambdaMedian) / float64(time.Millisecond)
		m[row.Function+"-speedup"] = row.Speedup
	}
	return m
}
