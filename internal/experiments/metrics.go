package experiments

// Metrics methods flatten each experiment's result into the named-scalar
// form the sweep engine aggregates across replicas. Names are stable:
// they key the JSON/CSV output of cmd/hpcwhisk-sweep and the summaries
// in sweep.Result, so renaming one is a breaking change to saved sweeps.

// Metrics returns the headline Table II/III and Fig. 5b/6b numbers.
func (r DayResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"live-coverage":  r.Coverage(),
		"sim-bound":      r.Sim.Coverage(),
		"healthy-avg":    r.OW.HealthyAvg,
		"warmup-avg":     r.OW.WarmupAvg,
		"available-avg":  r.SlurmLevel.AvailableAvg,
		"no-invoker-min": r.OW.NoInvokerTotal.Minutes(),
		"ready-span-min": r.OW.ReadySpanAvg.Minutes(),
		"pilots-started": float64(r.PilotsStarted),
		"preempted":      float64(r.Preempted),
		"handoffs":       float64(r.Handoffs),
	}
	if r.Config.QPS > 0 {
		m["invoked-share"] = r.Load.InvokedShare
		m["success-share"] = r.Load.SuccessShare
		m["lost-share"] = r.Load.LostShare
		m["median-latency-ms"] = float64(r.Load.MedianLatency.Milliseconds())
	}
	return m
}

// Metrics returns the §VII scientific-workload headline numbers.
func (r ScientificResult) Metrics() map[string]float64 {
	return map[string]float64{
		"invoked-share":  r.Load.InvokedShare,
		"success-share":  r.Load.SuccessShare,
		"fallback-share": r.FallbackShare,
		"pilots-started": float64(r.PilotsStarted),
		"handoffs":       float64(r.Handoffs),
	}
}

// Metrics returns the full-scheduler headline numbers.
func (r EndogenousResult) Metrics() map[string]float64 {
	return map[string]float64{
		"prime-utilization": r.PrimeUtilization,
		"idle-share":        r.IdleShare,
		"pilot-share":       r.PilotShare,
		"pilot-coverage":    r.PilotCoverage,
		"mean-wait-s":       r.MeanWait.Seconds(),
		"p95-wait-s":        r.P95Wait.Seconds(),
		"jobs-completed":    float64(r.JobsCompleted),
		"pilots-started":    float64(r.PilotsStarted),
	}
}

// Metrics returns one lost-share metric per hand-off design point.
func (r AblationResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		m[row.Variant.Name+"-lost-share"] = row.LostShare
	}
	return m
}
