package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestCheckpointDisabledMatchesGoldens pins the checkpoint subsystem's
// no-op guarantee: with CheckpointInterval = 0 the (attached but
// disabled) model draws no RNG and schedules no events, so the
// fib/var days reproduce the committed goldens byte for byte —
// sequentially and under the sharded pdes coordinator.
func TestCheckpointDisabledMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	withInterval := func(cfg DayConfig, d time.Duration) DayConfig {
		cfg.CheckpointInterval = d
		return cfg
	}
	cases := []struct {
		name   string
		golden string
		cfg    DayConfig
	}{
		{"fib-disabled", "fibday_seed2.golden", withInterval(FibDay(2), 0)},
		{"var-disabled", "varday_seed2.golden", withInterval(VarDay(2), 0)},
		{"fib-disabled-sharded", "fibday_seed2.golden", withShards(withInterval(FibDay(2), 0), 2)},
		{"var-disabled-sharded", "varday_seed2.golden", withShards(withInterval(VarDay(2), 0), 2)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			r := RunDay(tc.cfg)
			var buf bytes.Buffer
			r.Render(&buf)
			r.RenderSeries(&buf)
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("render diverged from golden %s with checkpointing disabled (%d vs %d bytes)",
					tc.golden, buf.Len(), len(want))
			}
			// The ledger must show a truly idle subsystem — goodput
			// accrues regardless, but no checkpoint machinery ran.
			if r.Work.Checkpoints != 0 || r.Work.Resumed != 0 ||
				r.Work.CheckpointTime != 0 || r.Work.RestoreTime != 0 {
				t.Errorf("disabled run touched the checkpoint ledger: %+v", r.Work)
			}
			if r.Work.Goodput == 0 {
				t.Error("no goodput accounted on a loaded day")
			}
		})
	}
}

// TestCheckpointAblationGoldenUnchanged pins the default three-arm
// ablation against its committed golden with the Checkpoint knob
// explicitly off: the fourth arm is opt-in and must not perturb the
// existing rows.
func TestCheckpointAblationGoldenUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "ablation_n256_h4_seed5.golden"))
	if err != nil {
		t.Fatal(err)
	}
	r := RunAblationWith(AblationConfig{
		Nodes: 256, Horizon: 4 * time.Hour, Seed: 5, Checkpoint: false,
	})
	var buf bytes.Buffer
	r.Render(&buf)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("ablation render diverged from golden with checkpoint arm off:\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

// TestCheckpointEnabledShardedIdentity extends the shard-locality
// invariant to checkpointing itself: segment events, resume tokens,
// and the work ledger live entirely on the site's plane, so a
// checkpoint-enabled day under the pdes coordinator is byte-identical
// to the sequential run — renders and ledger both.
func TestCheckpointEnabledShardedIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	cfg := FibDay(7)
	cfg.Nodes = 64
	cfg.Horizon = 2 * time.Hour
	cfg.MeanIdleNodes = 6
	cfg.SaturatedFraction = 0.02
	cfg.QPS = 5
	cfg.NumActions = 50
	cfg.SleepExec = 500 * time.Millisecond
	cfg.CheckpointInterval = 100 * time.Millisecond

	seq := RunDay(cfg)
	cfg.Shards = 2
	shd := RunDay(cfg)

	if seq.Work != shd.Work {
		t.Errorf("work ledgers diverged:\nsequential: %+v\nsharded:    %+v", seq.Work, shd.Work)
	}
	var a, b bytes.Buffer
	seq.Render(&a)
	shd.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("checkpoint-enabled renders diverged between sequential and sharded:\n%s\nvs\n%s",
			a.Bytes(), b.Bytes())
	}
	if seq.Work.Checkpoints == 0 {
		t.Error("checkpoint-enabled day dumped no checkpoints — the identity check is vacuous")
	}
}

// TestFrontierReclaimsRegion is the tentpole's acceptance check: on a
// periodic idle surface there is a duration × window cell where
// resumed executions complete work the baseline loses outright. The
// 3-minute body against 4-minute windows (2-minute gaps) can never
// finish without checkpoints — every window interrupts it and progress
// restarts from zero — while the checkpointed arm carries progress
// across windows and completes nearly everything.
func TestFrontierReclaimsRegion(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	cfg := DefaultFrontierConfig(3)
	cfg.Durations = []time.Duration{3 * time.Minute}
	cfg.Windows = []time.Duration{4 * time.Minute}
	cfg.Horizon = time.Hour
	r := RunFrontier(cfg)

	if len(r.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(r.Cells))
	}
	c := r.Cells[0]
	if c.BaselineShare > 0.10 {
		t.Errorf("baseline completed %.1f%% of a 3m body in 4m windows — expected near-total loss",
			100*c.BaselineShare)
	}
	if c.CheckpointShare < 0.80 {
		t.Errorf("checkpointed arm completed only %.1f%%, want most requests rescued",
			100*c.CheckpointShare)
	}
	if !c.Reclaimed() || r.ReclaimedCells() != 1 {
		t.Error("the cell was not counted as reclaimed")
	}
	if c.Work.Resumed == 0 {
		t.Error("no execution ever resumed — completions did not cross windows")
	}
	if c.Work.Lost != 0 {
		t.Errorf("checkpointed arm lost %v of body time; resumes should rescue interrupted progress", c.Work.Lost)
	}
}

// TestCheckpointAblationArmLowerLostWork is the satellite acceptance
// check on the ablation: the handoff+interrupt+checkpoint arm must
// report strictly lower lost work than plain handoff+interrupt on the
// identical day — checkpoints convert interrupt losses into bounded
// per-segment waste.
func TestCheckpointAblationArmLowerLostWork(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	r := RunAblationWith(AblationConfig{
		Nodes: 64, Horizon: 2 * time.Hour, Seed: 5, Checkpoint: true,
	})
	if len(r.Rows) != 4 {
		t.Fatalf("got %d rows, want the 3 base arms + checkpoint arm", len(r.Rows))
	}
	var base, ckpt *AblationRow
	for i := range r.Rows {
		switch r.Rows[i].Variant.Name {
		case "handoff+interrupt":
			base = &r.Rows[i]
		case "handoff+interrupt+checkpoint":
			ckpt = &r.Rows[i]
		}
	}
	if base == nil || ckpt == nil {
		t.Fatal("expected variants missing from the ablation")
	}
	if base.Work.Lost == 0 {
		t.Fatal("baseline arm lost no work — the comparison is vacuous (no interrupts fired?)")
	}
	if ckpt.Work.Lost >= base.Work.Lost {
		t.Errorf("checkpoint arm lost %v, want strictly below the %v of handoff+interrupt",
			ckpt.Work.Lost, base.Work.Lost)
	}
	if ckpt.Work.Checkpoints == 0 || ckpt.Work.Resumed == 0 {
		t.Errorf("checkpoint arm never dumped/resumed: %+v", ckpt.Work)
	}
}
