package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lambda"
	"repro/internal/loadgen"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/whisk"
)

// secondsDur converts a latency sample value (seconds) to a Duration.
func secondsDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// FederatedConfig parameterizes the cluster-of-clusters experiment: N
// independent Slurm+whisk sites with heterogeneous idle surfaces on
// one simulation plane, a shared load stream through the routing front
// door, and one full run per routing policy under identical seeds —
// so rows of the comparison differ only in how requests are routed.
type FederatedConfig struct {
	// Sites is the federation size; alternating sites get the calm
	// fib-day and the contended var-day trace calibration, so the
	// router always has both comfortable and struggling clusters to
	// choose between.
	Sites int

	// NodesPerSite sizes each member cluster; the per-site idle surface
	// scales from the paper day calibrations like the scientific
	// experiment's cluster slice.
	NodesPerSite int

	// Policy names the pilot-supply policy every site runs.
	Policy string

	// Routing lists the routing policies to compare; nil or empty means
	// every registered policy (router.Names).
	Routing []string

	Horizon time.Duration
	Seed    int64

	// Load generation across the whole federation.
	QPS        float64
	NumActions int
	SleepExec  time.Duration

	// CloudFallback adds the Alg. 1 commercial-cloud wrapper in front
	// of the door, so federation-wide 503s off-load instead of failing.
	// Incompatible with Shards > 1 (the wrapper couples completions to
	// subsequent arrivals, breaking the sharded lookahead contract);
	// the combination is rejected with an error.
	CloudFallback bool

	// Shards > 1 runs each site on its own event plane under the
	// conservative pdes coordinator (core.FederationConfig.Shards).
	// Results are byte-identical to the sequential run; only wall time
	// changes.
	Shards int

	// Streaming switches every metric collector (global and per-site
	// latencies, worker-state series, Slurm loggers) to O(1)-memory
	// streaming sketches, as DayConfig.Streaming does for one site. N
	// sites multiply the buffered-metrics wall, so federations are
	// where this matters first. Simulation behavior is identical.
	Streaming bool
}

// DefaultFederatedConfig returns the 4-site × 100 QPS configuration
// the federated-day scenario and benchmark run.
func DefaultFederatedConfig(seed int64) FederatedConfig {
	return FederatedConfig{
		Sites:        4,
		NodesPerSite: 256,
		Policy:       "fib",
		Horizon:      24 * time.Hour,
		Seed:         seed,
		QPS:          100,
		NumActions:   100,
		SleepExec:    10 * time.Millisecond,
	}
}

// FederatedSiteStats is one site's slice of a federated run.
type FederatedSiteStats struct {
	// Kind names the site's trace calibration: "calm" (fib day) or
	// "contended" (var day).
	Kind string

	// Issued counts requests routed to the site; SpillsIn counts the
	// subset that spilled away from their home site.
	Issued   int
	SpillsIn int

	// N503 counts the site controller's refusals; Share503 is its share
	// of the site's completed requests.
	N503     int
	Share503 float64

	// Coverage is the site's Slurm-level used share of the harvested
	// surface; HealthyAvg the time-mean healthy invoker count.
	Coverage   float64
	HealthyAvg float64

	// Successful end-to-end latency quantiles observed at the door.
	P50, P95, P99 time.Duration

	Pilots int
}

// FederatedRun is one routing policy's full-federation run.
type FederatedRun struct {
	Routing string
	Sites   []FederatedSiteStats

	// Load is the global responsiveness report; the quantiles are over
	// all successful requests federation-wide.
	Load          loadgen.Report
	P50, P95, P99 time.Duration

	// GlobalCoverage is the node-weighted mean of per-site coverage;
	// GlobalHealthyAvg the time-mean of the merged per-site healthy
	// worker counts (stats.SumTimeWeighted).
	GlobalCoverage   float64
	GlobalHealthyAvg float64

	// Routing counters: cross-site spills, requests issued while no
	// site was healthy, and calls served by the commercial cloud.
	Spilled     int
	NoSitePicks int
	CloudCalls  int

	// Latencies is the global latency collector behind P50/P95/P99 —
	// a mergeable stats.TDigest under FederatedConfig.Streaming.
	Latencies stats.Collector

	// MetricsBytes is the retained footprint of this run's metric
	// collectors across all sites.
	MetricsBytes int
}

// SpillShare is the fraction of requests that left their home site.
func (r FederatedRun) SpillShare() float64 {
	if r.Load.Issued == 0 {
		return 0
	}
	return float64(r.Spilled) / float64(r.Load.Issued)
}

// CloudShare is the fraction of requests off-loaded to the cloud.
func (r FederatedRun) CloudShare() float64 {
	if r.Load.Issued == 0 {
		return 0
	}
	return float64(r.CloudCalls) / float64(r.Load.Issued)
}

// FederatedResult bundles the per-routing-policy runs.
type FederatedResult struct {
	Config FederatedConfig
	Runs   []FederatedRun
}

// RunFederated executes the comparison.
func RunFederated(cfg FederatedConfig) FederatedResult {
	res, _ := RunFederatedCtx(context.Background(), cfg, nil) // never canceled
	return res
}

// siteDay returns site i's calibrated day config: alternating calm
// (fib) and contended (var) days, each on its own seed.
func siteDay(i int, seed int64) DayConfig {
	if i%2 == 1 {
		return VarDay(seed)
	}
	return FibDay(seed)
}

// siteKind labels the calibration of site i.
func siteKind(i int) string {
	if i%2 == 1 {
		return "contended"
	}
	return "calm"
}

// RunFederatedCtx is RunFederated with cooperative cancellation and
// progress across all routing runs.
func RunFederatedCtx(ctx context.Context, cfg FederatedConfig, progress ProgressFunc) (FederatedResult, error) {
	routing := cfg.Routing
	if len(routing) == 0 {
		routing = router.Names()
	}
	res := FederatedResult{Config: cfg, Runs: make([]FederatedRun, 0, len(routing))}
	perRun := cfg.Horizon + dayDrain
	total := time.Duration(len(routing)) * perRun
	for i, name := range routing {
		run, err := runFederatedOnce(ctx, cfg, name,
			offsetProgress(progress, time.Duration(i)*perRun, total))
		if err != nil {
			return FederatedResult{}, err
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// runFederatedOnce runs the full federation under one routing policy.
// Everything except the routing name derives from cfg, so runs with
// different policies see identical sites, traces, and load.
func runFederatedOnce(ctx context.Context, cfg FederatedConfig, routing string, progress ProgressFunc) (FederatedRun, error) {
	// Per-site seeds come from sequential draws off one root (the
	// dist.Split discipline): site k's seed never depends on how many
	// sites follow it.
	root := dist.NewRand(cfg.Seed)
	days := make([]DayConfig, cfg.Sites)
	siteCfgs := make([]core.SiteConfig, cfg.Sites)
	for i := range siteCfgs {
		day := siteDay(i, root.Int63())
		day.Policy = cfg.Policy
		days[i] = day

		sc := core.DefaultSystemConfig(cfg.NodesPerSite, cfg.Policy)
		sc.Seed = day.Seed + 1000
		sc.StreamingStats = cfg.Streaming
		siteCfgs[i] = sc
	}

	if cfg.CloudFallback && cfg.Shards > 1 {
		return FederatedRun{}, fmt.Errorf("experiments: cloud fallback is incompatible with %d shards (the Alg. 1 wrapper couples completions to arrivals; run sequentially)", cfg.Shards)
	}
	fed := core.NewFederation(core.FederationConfig{Sites: siteCfgs, Routing: routing, Shards: cfg.Shards})
	// Per-site tail quantiles below: exact buffered samples by default,
	// O(1)-memory digests under Streaming.
	if cfg.Streaming {
		fed.Door.CollectLatenciesWith(func() stats.Collector { return stats.NewTDigest(0) })
	} else {
		fed.Door.CollectLatencies(true)
	}
	if cfg.CloudFallback {
		fed.SetFallback(lambda.NewClient(fed.Sim, lambda.DefaultClientConfig(), cfg.Seed+17))
	}

	for i, day := range days {
		// Scale the paper day's idle surface to the member-cluster size,
		// with the same floor the scientific slice uses.
		trCfg := day.TraceConfig()
		trCfg.Nodes = cfg.NodesPerSite
		trCfg.Horizon = cfg.Horizon
		trCfg.MeanIdleNodes = day.MeanIdleNodes * float64(cfg.NodesPerSite) / float64(day.Nodes)
		if trCfg.MeanIdleNodes < 8 {
			trCfg.MeanIdleNodes = 8
		}
		fed.LoadTrace(i, trCfg.Generate())
	}

	actions := loadgen.ActionNames("sleep", cfg.NumActions)
	for _, name := range actions {
		fed.RegisterAction(&whisk.Action{
			Name:          name,
			MemoryMB:      256,
			Exec:          whisk.FixedExec(cfg.SleepExec),
			Interruptible: true,
		})
	}
	gen := loadgen.New(fed.Sim, fed, loadgen.Config{
		QPS: cfg.QPS, Actions: actions, Duration: cfg.Horizon, BucketLen: time.Minute,
		Streaming: cfg.Streaming,
	})
	gen.Start()
	fed.Start()

	if err := fed.RunCtx(ctx, cfg.Horizon, 0, offsetProgress(progress, 0, cfg.Horizon+dayDrain)); err != nil {
		return FederatedRun{}, err
	}
	if err := fed.RunCtx(ctx, dayDrain, 0, offsetProgress(progress, cfg.Horizon, cfg.Horizon+dayDrain)); err != nil {
		return FederatedRun{}, err
	}

	run := FederatedRun{
		Routing:     routing,
		Load:        gen.Report(),
		Spilled:     fed.Door.Spilled,
		NoSitePicks: fed.Door.NoSitePicks,
		Latencies:   gen.Latencies,
	}
	run.MetricsBytes = gen.Series.Footprint() + gen.Latencies.Footprint()
	if gen.Latencies.Len() > 0 {
		run.P50 = secondsDur(gen.Latencies.Quantile(0.50))
		run.P95 = secondsDur(gen.Latencies.Quantile(0.95))
		run.P99 = secondsDur(gen.Latencies.Quantile(0.99))
	}
	if fed.Wrap != nil {
		run.CloudCalls = fed.Wrap.FallbackCalls
	}

	end := fed.Sim.Now()
	healthySeries := make([]stats.TimeSeries, 0, len(fed.Sites))
	var coverage float64
	for i, site := range fed.Sites {
		ow := site.Manager.OWStats(end) // finishes the state series
		slurm := site.Logger.Stats()
		s := FederatedSiteStats{
			Kind:       siteKind(i),
			Issued:     fed.Door.IssuedBySite[i],
			SpillsIn:   fed.Door.SpillsIn[i],
			N503:       site.Ctrl.N503,
			Coverage:   slurm.ShareUsed,
			HealthyAvg: ow.HealthyAvg,
			Pilots:     site.Manager.PilotsStarted,
		}
		completed := site.Ctrl.NSuccess + site.Ctrl.NFailed + site.Ctrl.NTimeout + site.Ctrl.N503
		if completed > 0 {
			s.Share503 = float64(s.N503) / float64(completed)
		}
		if lat := fed.Door.LatencyBySite[i]; lat != nil && lat.Len() > 0 {
			s.P50 = secondsDur(lat.Quantile(0.50))
			s.P95 = secondsDur(lat.Quantile(0.95))
			s.P99 = secondsDur(lat.Quantile(0.99))
		}
		if lat := fed.Door.LatencyBySite[i]; lat != nil {
			run.MetricsBytes += lat.Footprint()
		}
		run.MetricsBytes += site.Logger.Footprint() +
			site.Manager.States.Warming.Footprint() +
			site.Manager.States.Healthy.Footprint() +
			site.Manager.States.Irresp.Footprint()
		run.Sites = append(run.Sites, s)
		healthySeries = append(healthySeries, site.Manager.States.Healthy)
		coverage += slurm.ShareUsed * float64(siteCfgs[i].Nodes)
	}
	var nodes float64
	for _, sc := range siteCfgs {
		nodes += float64(sc.Nodes)
	}
	if nodes > 0 {
		run.GlobalCoverage = coverage / nodes
	}
	// Buffered runs keep the event-sweep merge (the exact pre-streaming
	// value, last-ULP included); streaming runs use the integral
	// identity Σ∫vᵢdt / span, which needs no buffered segments and is
	// mathematically the same quantity.
	if buffered := bufferedSeries(healthySeries); buffered != nil {
		run.GlobalHealthyAvg = stats.SumTimeWeighted(buffered...).TimeMean()
	} else {
		run.GlobalHealthyAvg = stats.SumTimeMeanOf(healthySeries...)
	}
	return run, nil
}

// bufferedSeries down-casts a series set to the buffered type, or nil
// if any member is a streaming series.
func bufferedSeries(series []stats.TimeSeries) []*stats.TimeWeighted {
	out := make([]*stats.TimeWeighted, len(series))
	for i, s := range series {
		tw, ok := s.(*stats.TimeWeighted)
		if !ok {
			return nil
		}
		out[i] = tw
	}
	return out
}

// Digests exposes each routing run's global latency digest for
// sweep-level merging; nil when the run was buffered (non-Streaming).
func (r FederatedResult) Digests() map[string]*stats.TDigest {
	out := map[string]*stats.TDigest{}
	for _, run := range r.Runs {
		if d, ok := run.Latencies.(*stats.TDigest); ok {
			out[run.Routing+"-latency-s"] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Metrics flattens the comparison for the sweep engine: per routing
// policy, the headline responsiveness and routing numbers.
func (r FederatedResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, run := range r.Runs {
		m[run.Routing+"-invoked-share"] = run.Load.InvokedShare
		m[run.Routing+"-success-share"] = run.Load.SuccessShare
		m[run.Routing+"-p95-latency-ms"] = float64(run.P95.Milliseconds())
		m[run.Routing+"-spill-share"] = run.SpillShare()
		m[run.Routing+"-healthy-avg"] = run.GlobalHealthyAvg
		m[run.Routing+"-coverage"] = run.GlobalCoverage
		if r.Config.CloudFallback {
			m[run.Routing+"-cloud-share"] = run.CloudShare()
		}
	}
	return m
}

// Render prints the routing-policy comparison table plus the per-site
// breakdown of each run.
func (r FederatedResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Federated day — %d sites × %d nodes, %s supply, %.0f QPS, %v\n",
		r.Config.Sites, r.Config.NodesPerSite, r.Config.Policy, r.Config.QPS, r.Config.Horizon)
	fmt.Fprintf(w, "  %-18s %8s %8s %8s %8s %8s %7s %7s %9s %6s\n",
		"routing", "invoked", "success", "p50", "p95", "p99", "spill", "no-site", "healthy", "cov")
	for _, run := range r.Runs {
		fmt.Fprintf(w, "  %-18s %7.2f%% %7.2f%% %8s %8s %8s %6.2f%% %7d %9.2f %5.1f%%\n",
			run.Routing, 100*run.Load.InvokedShare, 100*run.Load.SuccessShare,
			run.P50.Round(time.Millisecond), run.P95.Round(time.Millisecond),
			run.P99.Round(time.Millisecond), 100*run.SpillShare(), run.NoSitePicks,
			run.GlobalHealthyAvg, 100*run.GlobalCoverage)
	}
	if r.Config.CloudFallback {
		for _, run := range r.Runs {
			fmt.Fprintf(w, "  %-18s cloud off-load %.2f%%\n", run.Routing, 100*run.CloudShare())
		}
	}
	for _, run := range r.Runs {
		fmt.Fprintf(w, "  [%s] per site:\n", run.Routing)
		for i, s := range run.Sites {
			fmt.Fprintf(w, "    site %d (%-9s): issued=%-7d spills-in=%-6d 503=%5.2f%% cov=%5.1f%% healthy=%6.2f p95=%-8s pilots=%d\n",
				i, s.Kind, s.Issued, s.SpillsIn, 100*s.Share503, 100*s.Coverage,
				s.HealthyAvg, s.P95.Round(time.Millisecond), s.Pilots)
		}
	}
}
