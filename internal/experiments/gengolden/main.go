// Command gengolden regenerates the RunDay golden renders under
// internal/experiments/testdata. Run from the repo root after an
// intentional behavior change:
//
//	go run ./internal/experiments/gengolden
package main

import (
	"os"
	"time"

	"repro/internal/experiments"
)

func render(cfg experiments.DayConfig, path string) {
	r := experiments.RunDay(cfg)
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	r.Render(f)
	r.RenderSeries(f)
}

func main() {
	render(experiments.FibDay(2), "internal/experiments/testdata/fibday_seed2.golden")
	render(experiments.VarDay(2), "internal/experiments/testdata/varday_seed2.golden")
	renderAblation("internal/experiments/testdata/ablation_n256_h4_seed5.golden")
}

func renderAblation(path string) {
	r := experiments.RunAblation(256, 4*time.Hour, 5)
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	r.Render(f)
}
