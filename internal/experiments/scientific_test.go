package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/faasload"
)

func TestScientificWorkloadRun(t *testing.T) {
	r := RunScientific(DefaultScientificConfig(1))

	if r.Load.Issued != 43200 {
		t.Fatalf("issued = %d, want 2 QPS × 6 h", r.Load.Issued)
	}
	// The wrapper absorbs every 503: clients always get an answer.
	if r.Load.InvokedShare < 0.999 {
		t.Errorf("invoked share = %.4f, want ≈1.0 through Alg. 1", r.Load.InvokedShare)
	}
	if r.Load.SuccessShare < 0.90 {
		t.Errorf("success share = %.4f, want ≥0.90", r.Load.SuccessShare)
	}
	// All three classes saw traffic, short dominated by the Zipf skew
	// toward... (classes are assigned by duration, not rank, so just
	// check presence and sane latency ordering).
	short := r.ByClass[faasload.ClassShort]
	medium := r.ByClass[faasload.ClassMedium]
	long := r.ByClass[faasload.ClassLong]
	if short.Invocations == 0 || medium.Invocations == 0 || long.Invocations == 0 {
		t.Fatalf("class coverage: %d/%d/%d", short.Invocations, medium.Invocations, long.Invocations)
	}
	if !(short.Median < medium.Median && medium.Median < long.Median) {
		t.Errorf("median ordering broken: %v < %v < %v",
			short.Median, medium.Median, long.Median)
	}
	// The §III-C caveat: non-interruptible long functions lose more
	// work per invocation than interruptible short ones.
	lostRate := func(s ClassStats) float64 {
		if s.Invocations == 0 {
			return 0
		}
		return float64(s.Lost) / float64(s.Invocations)
	}
	if lostRate(long) <= lostRate(short) {
		t.Errorf("long-class loss rate %.5f should exceed short-class %.5f (non-interruptible)",
			lostRate(long), lostRate(short))
	}
	if r.FallbackShare <= 0 || r.FallbackShare > 0.5 {
		t.Errorf("fallback share = %.3f, want small but positive", r.FallbackShare)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Scientific FaaS workload") {
		t.Error("render broken")
	}
}

func TestScientificWithoutWrapper(t *testing.T) {
	cfg := DefaultScientificConfig(2)
	cfg.UseWrapper = false
	cfg.Horizon /= 3
	r := RunScientific(cfg)
	// Raw cluster: 503s now surface to the client.
	if r.Load.InvokedShare >= 1.0 {
		t.Errorf("invoked share = %.4f; without the wrapper some 503s must surface", r.Load.InvokedShare)
	}
	if r.FallbackShare != 0 {
		t.Errorf("fallback share = %.3f without a wrapper", r.FallbackShare)
	}
}

func TestScientificDeterminism(t *testing.T) {
	cfg := DefaultScientificConfig(3)
	cfg.Horizon /= 6
	a := RunScientific(cfg)
	b := RunScientific(cfg)
	if a.Load.Issued != b.Load.Issued || a.Load.SuccessShare != b.Load.SuccessShare ||
		a.PilotsStarted != b.PilotsStarted {
		t.Error("same-seed scientific runs diverged")
	}
}
