package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// The checkpoint frontier maps where checkpoint/restore changes an
// execution's fate. Idle windows bound how long a pilot lives; a
// function whose body approaches (or exceeds) the window length is
// interrupted at every window end and, without checkpoints, restarts
// from zero — it can never finish, no matter how many windows it gets.
// With periodic checkpoints the same execution carries its progress
// across windows, paying transfer + restore each hop, and completes
// after a few resumes. The experiment sweeps function duration D
// against idle-window length W over a hand-built periodic trace and
// runs every cell twice (checkpointing on and off) on identical seeds;
// the frontier is the D×W region where the checkpointed run completes
// work the baseline loses.

// FrontierConfig parameterizes the duration × window sweep.
type FrontierConfig struct {
	Seed  int64
	Nodes int

	// Durations are the function body lengths (the D axis).
	Durations []time.Duration

	// Windows are the idle-window lengths of the periodic trace (the W
	// axis); Gap is the saturation between consecutive windows.
	Windows []time.Duration
	Gap     time.Duration

	// Horizon is the per-cell run length.
	Horizon time.Duration

	// CheckpointInterval is the cadence of the checkpointed arm.
	CheckpointInterval time.Duration

	// QPS drives a thin request stream: the cells measure fate, not
	// throughput, so the load stays far from saturating the pilots.
	QPS float64
}

// DefaultFrontierConfig spans both sides of the frontier: the shortest
// duration fits every window, the longest exceeds the shortest window
// outright.
func DefaultFrontierConfig(seed int64) FrontierConfig {
	return FrontierConfig{
		Seed:               seed,
		Nodes:              16,
		Durations:          []time.Duration{time.Minute, 3 * time.Minute, 6 * time.Minute},
		Windows:            []time.Duration{4 * time.Minute, 8 * time.Minute, 16 * time.Minute},
		Gap:                2 * time.Minute,
		Horizon:            2 * time.Hour,
		CheckpointInterval: 20 * time.Second,
		QPS:                0.05,
	}
}

// FrontierCell is one (duration, window) design point, run both ways.
type FrontierCell struct {
	Duration time.Duration
	Window   time.Duration

	// BaselineShare / CheckpointShare are the success shares of the two
	// arms (fraction of invoked requests that completed).
	BaselineShare   float64
	CheckpointShare float64

	// Work is the checkpointed arm's compute ledger.
	Work stats.WorkCounters
}

// Reclaimed reports whether checkpointing completed work the baseline
// lost in this cell, by a margin that ignores sampling noise.
func (c FrontierCell) Reclaimed() bool {
	return c.CheckpointShare > c.BaselineShare+0.05
}

// FrontierResult is the full sweep.
type FrontierResult struct {
	Config FrontierConfig
	Cells  []FrontierCell
}

// ReclaimedCells counts cells where the checkpointed arm won.
func (r FrontierResult) ReclaimedCells() int {
	n := 0
	for _, c := range r.Cells {
		if c.Reclaimed() {
			n++
		}
	}
	return n
}

// periodicTrace builds the frontier's idle surface: every node cycles
// through idle windows of length w separated by gap-long saturations,
// nodes in phase — so between windows the cluster has no pilot at all
// and a resume token must wait in the fast lane for the next window.
// DeclaredEnd equals End: the scheduler's window knowledge is exact,
// isolating the duration-vs-window geometry from declaration noise.
func periodicTrace(nodes int, horizon, w, gap time.Duration) *workload.Trace {
	tr := &workload.Trace{Nodes: nodes, Horizon: horizon}
	for start := time.Duration(0); start < horizon; start += w + gap {
		end := start + w
		if end > horizon {
			end = horizon
		}
		for n := 0; n < nodes; n++ {
			tr.Periods = append(tr.Periods, workload.IdlePeriod{
				Node: n, Start: start, End: end, DeclaredEnd: end,
			})
		}
	}
	tr.Sort()
	return tr
}

// frontierDay builds one arm's day configuration for a cell.
func (c FrontierConfig) frontierDay(d, w, interval time.Duration) DayConfig {
	return DayConfig{
		Policy:  "var", // sizes pilots to the declared windows
		Nodes:   c.Nodes,
		Horizon: c.Horizon,
		Seed:    c.Seed,
		Trace:   periodicTrace(c.Nodes, c.Horizon, w, c.Gap),
		QPS:     c.QPS,
		// A handful of action names spreads requests over invokers
		// without multiplying registration work.
		NumActions:         4,
		SleepExec:          d,
		GracefulHandoff:    true,
		InterruptRunning:   true,
		CheckpointInterval: interval,
		// The client timer must never decide a cell: outcomes are pilot
		// loss vs resume, so the timeout sits beyond any resume chain.
		ActionTimeout: c.Horizon,
	}
}

// RunFrontier executes the sweep.
func RunFrontier(cfg FrontierConfig) FrontierResult {
	res, _ := RunFrontierCtx(context.Background(), cfg, nil) // never canceled
	return res
}

// RunFrontierCtx is RunFrontier with cooperative cancellation and
// monotone progress over all cells (two day runs per cell).
func RunFrontierCtx(ctx context.Context, cfg FrontierConfig, progress ProgressFunc) (FrontierResult, error) {
	res := FrontierResult{Config: cfg}
	perDay := cfg.Horizon + dayDrain
	total := time.Duration(2*len(cfg.Durations)*len(cfg.Windows)) * perDay
	off := time.Duration(0)
	for _, d := range cfg.Durations {
		for _, w := range cfg.Windows {
			base, err := RunDayCtx(ctx, cfg.frontierDay(d, w, 0), offsetProgress(progress, off, total))
			if err != nil {
				return res, err
			}
			off += perDay
			ckpt, err := RunDayCtx(ctx, cfg.frontierDay(d, w, cfg.CheckpointInterval), offsetProgress(progress, off, total))
			if err != nil {
				return res, err
			}
			off += perDay
			res.Cells = append(res.Cells, FrontierCell{
				Duration:        d,
				Window:          w,
				BaselineShare:   base.Load.SuccessShare,
				CheckpointShare: ckpt.Load.SuccessShare,
				Work:            ckpt.Work,
			})
		}
	}
	return res, nil
}

// Render prints the success-share matrix, checkpointed over baseline,
// marking reclaimed cells.
func (r FrontierResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Checkpoint frontier — success share ckpt/base (interval %v, windows + %v gaps)\n",
		r.Config.CheckpointInterval, r.Config.Gap)
	fmt.Fprintf(w, "  %-10s", "dur \\ win")
	for _, win := range r.Config.Windows {
		fmt.Fprintf(w, " %14v", win)
	}
	fmt.Fprintln(w)
	i := 0
	for _, d := range r.Config.Durations {
		fmt.Fprintf(w, "  %-10v", d)
		for range r.Config.Windows {
			c := r.Cells[i]
			mark := " "
			if c.Reclaimed() {
				mark = "*"
			}
			fmt.Fprintf(w, "  %5.1f%%/%5.1f%%%s", 100*c.CheckpointShare, 100*c.BaselineShare, mark)
			i++
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  * checkpointing reclaimed the cell (%d of %d)\n", r.ReclaimedCells(), len(r.Cells))
}

// Metrics returns per-cell success shares plus the reclaimed count.
func (r FrontierResult) Metrics() map[string]float64 {
	m := map[string]float64{"reclaimed-cells": float64(r.ReclaimedCells())}
	for _, c := range r.Cells {
		key := fmt.Sprintf("d%s-w%s", c.Duration, c.Window)
		m[key+"-ckpt-share"] = c.CheckpointShare
		m[key+"-base-share"] = c.BaselineShare
		m[key+"-resumed"] = float64(c.Work.Resumed)
	}
	return m
}
