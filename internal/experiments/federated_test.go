package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

func shortFederatedConfig(seed int64) FederatedConfig {
	cfg := DefaultFederatedConfig(seed)
	cfg.Horizon = time.Hour
	cfg.QPS = 10
	cfg.NumActions = 20
	return cfg
}

// TestFederatedRoutingComparison: one run per routing policy under
// identical seeds — the site-local simulations must be identical across
// runs (pilots, coverage, healthy time) while only the routing differs.
func TestFederatedRoutingComparison(t *testing.T) {
	cfg := shortFederatedConfig(3)
	res := RunFederated(cfg)
	if len(res.Runs) == 0 {
		t.Fatal("no routing runs")
	}
	ref := res.Runs[0]
	if len(ref.Sites) != cfg.Sites {
		t.Fatalf("run has %d site stats, want %d", len(ref.Sites), cfg.Sites)
	}
	for _, run := range res.Runs[1:] {
		for i := range run.Sites {
			if run.Sites[i].Pilots != ref.Sites[i].Pilots ||
				run.Sites[i].Coverage != ref.Sites[i].Coverage ||
				run.Sites[i].HealthyAvg != ref.Sites[i].HealthyAvg {
				t.Fatalf("site %d harvest diverged between routing %q and %q — sites must be pure functions of their config",
					i, ref.Routing, run.Routing)
			}
		}
		if run.GlobalHealthyAvg != ref.GlobalHealthyAvg {
			t.Fatalf("global healthy avg diverged between routing runs")
		}
	}
	for _, run := range res.Runs {
		if run.Load.Issued == 0 || run.Load.SuccessShare == 0 {
			t.Fatalf("routing %q served no traffic", run.Routing)
		}
		var issued int
		for _, s := range run.Sites {
			issued += s.Issued
		}
		if issued != run.Load.Issued {
			t.Fatalf("routing %q: per-site issued %d != generator issued %d",
				run.Routing, issued, run.Load.Issued)
		}
	}
	// Heterogeneous calibrations must actually alternate.
	if ref.Sites[0].Kind != "calm" || ref.Sites[1].Kind != "contended" {
		t.Fatalf("site kinds = %q, %q; want calm, contended", ref.Sites[0].Kind, ref.Sites[1].Kind)
	}
}

// TestFederatedMetricsAndRender: the sweep contract exposes one metric
// set per routing policy and the render includes the comparison table.
func TestFederatedMetricsAndRender(t *testing.T) {
	cfg := shortFederatedConfig(5)
	cfg.Routing = []string{"spill-over", "capacity-weighted"}
	res := RunFederated(cfg)
	m := res.Metrics()
	for _, r := range cfg.Routing {
		for _, k := range []string{"-success-share", "-spill-share", "-healthy-avg", "-coverage"} {
			if _, ok := m[r+k]; !ok {
				t.Errorf("metric %q missing", r+k)
			}
		}
	}
	var b strings.Builder
	res.Render(&b)
	out := b.String()
	for _, want := range []string{"routing", "spill-over", "capacity-weighted", "per site", "contended"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q", want)
		}
	}
}

// TestFederatedCancellation: a canceled context aborts the comparison
// promptly with the context's error.
func TestFederatedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := shortFederatedConfig(7)
	if _, err := RunFederatedCtx(ctx, cfg, nil); err == nil {
		t.Fatal("canceled federated run returned nil error")
	}
}
