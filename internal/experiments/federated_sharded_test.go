package experiments

import (
	"maps"
	"runtime"
	"strings"
	"testing"
	"time"
)

// renderFederated captures the full rendered comparison — every
// routing table row and per-site breakdown line — as one string, the
// byte-level fingerprint of a federated run.
func renderFederated(res FederatedResult) string {
	var sb strings.Builder
	res.Render(&sb)
	return sb.String()
}

// TestFederatedShardedMatchesSequential is the tentpole acceptance
// test: a ≥4-site federated day run under the sharded pdes
// coordinator must be byte-identical to the sequential shared-plane
// run — same rendered tables, same metrics map, same routing
// counters — with only wall-clock time differing.
func TestFederatedShardedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping federated sharded-vs-sequential comparison")
	}
	cfg := shortFederatedConfig(3)
	cfg.Routing = []string{"capacity-weighted", "latency-weighted"}

	seq := RunFederated(cfg)

	cfg.Shards = cfg.Sites
	shd := RunFederated(cfg)

	seqOut, shdOut := renderFederated(seq), renderFederated(shd)
	if seqOut != shdOut {
		t.Fatalf("sharded render diverged from sequential:\n--- sequential ---\n%s\n--- sharded ---\n%s", seqOut, shdOut)
	}

	seqM, shdM := seq.Metrics(), shd.Metrics()
	if len(seqM) != len(shdM) {
		t.Fatalf("metric sets differ: %d vs %d keys", len(seqM), len(shdM))
	}
	for k, v := range seqM {
		if got, ok := shdM[k]; !ok || got != v {
			t.Errorf("metric %s: sharded %v, sequential %v", k, got, v)
		}
	}
	for i := range seq.Runs {
		s, p := seq.Runs[i], shd.Runs[i]
		if s.Spilled != p.Spilled || s.NoSitePicks != p.NoSitePicks ||
			s.Load.Issued != p.Load.Issued || s.Load.MedianLatency != p.Load.MedianLatency ||
			!maps.Equal(s.Load.Totals, p.Load.Totals) {
			t.Errorf("[%s] routing counters diverged: seq spilled=%d nosite=%d load=%+v, sharded spilled=%d nosite=%d load=%+v",
				s.Routing, s.Spilled, s.NoSitePicks, s.Load, p.Spilled, p.NoSitePicks, p.Load)
		}
		if s.P50 != p.P50 || s.P95 != p.P95 || s.P99 != p.P99 {
			t.Errorf("[%s] latency quantiles diverged: seq %v/%v/%v, sharded %v/%v/%v",
				s.Routing, s.P50, s.P95, s.P99, p.P50, p.P95, p.P99)
		}
	}
}

// TestFederatedShardCountInvariant pins that the worker budget never
// leaks into results: 2 shards (two sites per worker) and a shard per
// site produce identical output.
func TestFederatedShardCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping shard-count invariance")
	}
	cfg := shortFederatedConfig(9)
	cfg.Horizon = 20 * time.Minute
	cfg.Routing = []string{"spill-over"}

	cfg.Shards = 2
	two := RunFederated(cfg)
	cfg.Shards = cfg.Sites
	all := RunFederated(cfg)
	if a, b := renderFederated(two), renderFederated(all); a != b {
		t.Fatalf("shards=2 output diverged from shards=%d:\n%s\n---\n%s", cfg.Sites, a, b)
	}
}

// TestFederatedShardedRace is the non-Short -race sweep of the
// sharded path: a short multi-window sharded run with more shards
// than sites and streaming collectors, so the race detector crosses
// every coordinator hand-off (inbox, outbox, barrier refresh). It
// asserts only liveness — the byte-identity tests above pin values.
func TestFederatedShardedRace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping sharded race sweep")
	}
	cfg := shortFederatedConfig(5)
	cfg.Horizon = 10 * time.Minute
	cfg.Routing = []string{"capacity-weighted"}
	cfg.Shards = runtime.GOMAXPROCS(0) + 1
	cfg.Streaming = true
	res := RunFederated(cfg)
	if len(res.Runs) != 1 || res.Runs[0].Load.Issued == 0 {
		t.Fatalf("sharded streaming run produced no load: %+v", res.Runs)
	}
}

// TestFederatedShardedCloudFallbackRejected: the Alg. 1 wrapper's
// cooldown state couples completions to later arrivals, which the
// lookahead contract cannot express; the combination must error, not
// silently run sequentially.
func TestFederatedShardedCloudFallbackRejected(t *testing.T) {
	cfg := shortFederatedConfig(7)
	cfg.Horizon = time.Minute
	cfg.CloudFallback = true
	cfg.Shards = 2
	cfg.Routing = []string{"capacity-weighted"}
	if _, err := RunFederatedCtx(t.Context(), cfg, nil); err == nil {
		t.Fatal("cloud fallback + shards did not error")
	}
}
