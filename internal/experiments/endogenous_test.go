package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestEndogenousFullScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	r := RunEndogenous(DefaultEndogenousConfig(1))

	// The prime load dominates the cluster (ramp-up and job-mix
	// granularity keep a slice below Prometheus's 99%).
	if r.PrimeUtilization < 0.55 || r.PrimeUtilization > 0.98 {
		t.Errorf("prime utilization = %.3f, want high", r.PrimeUtilization)
	}
	// Pilots harvest almost all emergent gaps: with full-scheduler
	// window knowledge, coverage exceeds the trace-driven runs.
	if r.PilotCoverage < 0.70 {
		t.Errorf("pilot coverage = %.3f, want ≥0.70", r.PilotCoverage)
	}
	// Shares are a partition of the cluster.
	total := r.PrimeUtilization + r.IdleShare + r.PilotShare
	if total < 0.99 || total > 1.01 {
		t.Errorf("shares sum to %.4f", total)
	}
	if r.JobsCompleted < r.JobsSubmitted/2 {
		t.Errorf("completed %d of %d prime jobs", r.JobsCompleted, r.JobsSubmitted)
	}
	// Non-invasiveness: prime waits stay modest — pilots are always
	// preemptible, so they never block prime starts.
	if r.MeanWait > 30*time.Minute {
		t.Errorf("mean prime wait = %v, want modest", r.MeanWait)
	}
	if r.Preempted == 0 {
		t.Error("no pilot was ever preempted by prime load?")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Endogenous") {
		t.Error("render broken")
	}
}

func TestEndogenousVarPolicy(t *testing.T) {
	cfg := DefaultEndogenousConfig(2)
	cfg.Policy = "var"
	cfg.Horizon = 4 * time.Hour
	cfg.Nodes = 128
	r := RunEndogenous(cfg)
	if r.PilotsStarted == 0 {
		t.Fatal("var pilots never started in full-scheduler mode")
	}
	if r.PilotCoverage <= 0 {
		t.Fatal("no pilot coverage")
	}
}

func TestEndogenousDeterminism(t *testing.T) {
	cfg := DefaultEndogenousConfig(3)
	cfg.Nodes = 64
	cfg.Horizon = 2 * time.Hour
	a := RunEndogenous(cfg)
	b := RunEndogenous(cfg)
	if a.PrimeUtilization != b.PrimeUtilization || a.PilotsStarted != b.PilotsStarted ||
		a.Preempted != b.Preempted {
		t.Error("same-seed endogenous runs diverged")
	}
}
