package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// weekTr is shared by the Fig 1 / Table I tests.
var weekTr = WeekTrace(1)

func TestFig1Shape(t *testing.T) {
	r := RunFig1(weekTr)
	if r.MeanIdle < 7 || r.MeanIdle > 11.5 {
		t.Errorf("mean idle = %.2f, want ≈9.23", r.MeanIdle)
	}
	if r.MedianPeriod < 80*time.Second || r.MedianPeriod > 170*time.Second {
		t.Errorf("median period = %v, want ≈2m", r.MedianPeriod)
	}
	if r.ZeroIdleShare < 0.06 || r.ZeroIdleShare > 0.16 {
		t.Errorf("zero-idle share = %.3f, want ≈0.10", r.ZeroIdleShare)
	}
	// CDFs are monotone nondecreasing.
	for i := 1; i < len(r.IdleNodesCDF); i++ {
		if r.IdleNodesCDF[i].F < r.IdleNodesCDF[i-1].F {
			t.Fatal("Fig 1a CDF not monotone")
		}
	}
	for i := 1; i < len(r.PeriodCDF); i++ {
		if r.PeriodCDF[i].F < r.PeriodCDF[i-1].F {
			t.Fatal("Fig 1b CDF not monotone")
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 1a") || !strings.Contains(buf.String(), "Fig 1c") {
		t.Error("render missing panels")
	}
}

func TestFig2Shape(t *testing.T) {
	r := RunFig2(2)
	if r.Jobs != Fig2Jobs {
		t.Errorf("jobs = %d", r.Jobs)
	}
	if r.MedianLimit != time.Hour {
		t.Errorf("median limit = %v, want 1h", r.MedianLimit)
	}
	if r.P5Limit > 15*time.Minute {
		t.Errorf("p5 limit = %v, want ≤15m", r.P5Limit)
	}
	if r.MedianRuntime >= r.MedianLimit {
		t.Errorf("median runtime %v ≥ median limit", r.MedianRuntime)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 2") {
		t.Error("render broken")
	}
}

func TestFig3Reproduction(t *testing.T) {
	r := RunFig3(3)
	if r.Makespan < 19*time.Minute || r.Makespan > 21*time.Minute {
		t.Errorf("makespan = %v, want ≈20m", r.Makespan)
	}
	if s := r.JobStarts["job1"]; s > 30*time.Second {
		t.Errorf("job1 start = %v, want ≈0", s)
	}
	if s := r.JobStarts["job3"]; s < 4*time.Minute || s > 6*time.Minute {
		t.Errorf("job3 start = %v, want ≈5m", s)
	}
	if s := r.JobStarts["job4"]; s < 11*time.Minute || s > 13*time.Minute {
		t.Errorf("job4 start = %v, want ≈12m", s)
	}
	if r.AvgIdleNodes < 0.9 || r.AvgIdleNodes > 1.7 {
		t.Errorf("avg idle nodes = %.2f, want ≈1.2-1.3", r.AvgIdleNodes)
	}
	// Paper: short invoker jobs cover 83% of the idle slots.
	if r.ReadyCoverage < 0.55 || r.ReadyCoverage > 1.0 {
		t.Errorf("ready coverage = %.2f, want ≈0.8", r.ReadyCoverage)
	}
	if r.PilotsStarted == 0 {
		t.Error("no pilots filled the gaps")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 3") {
		t.Error("render broken")
	}
}

func TestTableIRender(t *testing.T) {
	r := RunTableI(weekTr)
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, set := range []string{"A1", "A2", "A3", "B", "C1", "C2"} {
		if !strings.Contains(out, set) {
			t.Errorf("render missing set %s", set)
		}
	}
}

// TestFibDayReproduction checks Table II + Fig 5b against the paper's
// shape: live coverage ≈90% close under the simulated bound, ≈10.5
// ready workers, short no-invoker stretches, ≥95% requests invoked,
// ≈0.85s median response.
func TestFibDayReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	r := RunDay(FibDay(1))

	if c := r.Coverage(); c < 0.80 || c > 0.95 {
		t.Errorf("live coverage = %.3f, want ≈0.90", c)
	}
	if r.Sim.Coverage() < r.Coverage()-0.02 {
		t.Errorf("sim bound %.3f below live %.3f", r.Sim.Coverage(), r.Coverage())
	}
	if gap := r.Sim.Coverage() - r.Coverage(); gap > 0.06 {
		t.Errorf("fib sim-live gap = %.3f, want small (paper: 2pp)", gap)
	}
	if r.OW.HealthyAvg < 8 || r.OW.HealthyAvg > 13 {
		t.Errorf("healthy avg = %.2f, want ≈10.4", r.OW.HealthyAvg)
	}
	if r.SlurmLevel.WorkerAvg < r.OW.HealthyAvg {
		t.Errorf("Slurm-level avg %.2f below OW healthy %.2f",
			r.SlurmLevel.WorkerAvg, r.OW.HealthyAvg)
	}
	if r.OW.NoInvokerTotal > 90*time.Minute {
		t.Errorf("no-invoker total = %v, want tens of minutes", r.OW.NoInvokerTotal)
	}
	if r.OW.NoInvokerLongest > 20*time.Minute {
		t.Errorf("no-invoker longest = %v, want ≈7m", r.OW.NoInvokerLongest)
	}
	if r.Load.InvokedShare < 0.93 {
		t.Errorf("invoked share = %.4f, want ≥0.95-ish", r.Load.InvokedShare)
	}
	if r.Load.SuccessShare < 0.93 {
		t.Errorf("success share = %.4f, want ≥0.95", r.Load.SuccessShare)
	}
	if r.Load.MedianLatency < 600*time.Millisecond || r.Load.MedianLatency > 1300*time.Millisecond {
		t.Errorf("median latency = %v, want ≈865ms", r.Load.MedianLatency)
	}
	if r.Series == nil || r.Series.Buckets() < 24*60-5 {
		t.Error("per-minute series incomplete")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Table II") {
		t.Error("render broken")
	}
}

// TestVarDayReproduction checks Table III + Fig 6b: live coverage ≈68%
// with a large gap below the simulated bound (the §V-B2 scheduler
// effect), fewer workers, and ≈78% of requests invoked.
func TestVarDayReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	r := RunDay(VarDay(1))

	if c := r.Coverage(); c < 0.55 || c > 0.78 {
		t.Errorf("live coverage = %.3f, want ≈0.68", c)
	}
	if gap := r.Sim.Coverage() - r.Coverage(); gap < 0.08 {
		t.Errorf("var sim-live gap = %.3f, want large (paper: 16pp)", gap)
	}
	if r.OW.HealthyAvg < 3 || r.OW.HealthyAvg > 8 {
		t.Errorf("healthy avg = %.2f, want ≈5", r.OW.HealthyAvg)
	}
	if r.Load.InvokedShare < 0.68 || r.Load.InvokedShare > 0.90 {
		t.Errorf("invoked share = %.4f, want ≈0.78", r.Load.InvokedShare)
	}
	if r.OW.NoInvokerTotal < time.Hour {
		t.Errorf("no-invoker total = %v, want hours (paper: 218m)", r.OW.NoInvokerTotal)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("render broken")
	}
}

// TestFibBeatsVar is the paper's headline comparison: fib covers far
// more of the idle surface than var (90% vs 68%).
func TestFibBeatsVar(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	fib := RunDay(FibDay(1))
	vr := RunDay(VarDay(1))
	if fib.Coverage() < vr.Coverage()+0.10 {
		t.Errorf("fib %.3f should beat var %.3f by ≥10pp",
			fib.Coverage(), vr.Coverage())
	}
	// And fib keeps more invokers ready for clients.
	if fib.Load.InvokedShare <= vr.Load.InvokedShare {
		t.Errorf("fib invoked %.3f should exceed var %.3f",
			fib.Load.InvokedShare, vr.Load.InvokedShare)
	}
}

func TestFig7Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (skipped under -short for the CI race gate)")
	}
	r := RunFig7(20000, 8, 30, 4)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Speedup < 1.10 || row.Speedup > 1.20 {
			t.Errorf("%s lambda/prometheus = %.3f, want ≈1.15", row.Function, row.Speedup)
		}
		if row.PrometheusMedian <= 0 {
			t.Errorf("%s prometheus median = %v", row.Function, row.PrometheusMedian)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "pagerank") {
		t.Error("render broken")
	}
}

// TestAblationHandoffMatters verifies the §III-C machinery is what
// prevents lost requests: killing workers without the hand-off loses
// work, the full protocol loses (almost) none.
func TestAblationHandoffMatters(t *testing.T) {
	r := RunAblation(256, 4*time.Hour, 5)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Variant.Name] = row
	}
	full := byName["handoff+interrupt"]
	none := byName["no-handoff"]
	if none.LostShare <= full.LostShare {
		t.Errorf("no-handoff lost %.4f should exceed full hand-off %.4f",
			none.LostShare, full.LostShare)
	}
	if full.LostShare > 0.02 {
		t.Errorf("full hand-off lost %.4f, want ≈0 (paper: 95-97%% complete)", full.LostShare)
	}
	if none.Handoffs != 0 {
		t.Errorf("no-handoff variant recorded %d hand-offs", none.Handoffs)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "no-handoff") {
		t.Error("render broken")
	}
}

// TestDayDeterminism: identical seeds give identical results.
func TestDayDeterminism(t *testing.T) {
	cfg := FibDay(9)
	cfg.Nodes = 128
	cfg.Horizon = 2 * time.Hour
	cfg.MeanIdleNodes = 5
	cfg.QPS = 2
	a := RunDay(cfg)
	b := RunDay(cfg)
	if a.Coverage() != b.Coverage() || a.Load.Issued != b.Load.Issued ||
		a.PilotsStarted != b.PilotsStarted || a.Preempted != b.Preempted {
		t.Error("same-seed day runs diverged")
	}
}

func TestDayWithoutLoad(t *testing.T) {
	cfg := FibDay(7)
	cfg.Nodes = 64
	cfg.Horizon = time.Hour
	cfg.MeanIdleNodes = 4
	cfg.QPS = 0
	r := RunDay(cfg)
	if r.Load.Issued != 0 {
		t.Error("load ran despite QPS=0")
	}
	if r.PilotsStarted == 0 {
		t.Error("no pilots without load?")
	}
}

func TestPolicyMatchesSet(t *testing.T) {
	cfg := VarDay(8)
	cfg.Nodes = 64
	cfg.Horizon = time.Hour
	cfg.MeanIdleNodes = 4
	cfg.QPS = 0
	r := RunDay(cfg)
	if r.Sim.Set.Name != "C2" {
		t.Errorf("var day compared against %s, want C2", r.Sim.Set.Name)
	}
	if r.Config.PolicyName() != "var" {
		t.Error("policy lost")
	}
}
