package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/dist"
	"repro/internal/loadgen"
	"repro/internal/stats"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// DayConfig parameterizes a 24-hour production experiment (§V-A/B/C).
// The fib and var runs of the paper happened on different working days
// with visibly different idle surfaces (11.85 vs 7.38 available nodes
// on average; 0.6% vs 9.44% zero-available states), so the trace
// calibration is per-day.
type DayConfig struct {
	// Policy names the pilot-supply policy in the policy registry
	// ("fib", "var", "adaptive", "lease", "hybrid", or anything
	// registered by the embedding program). Empty defaults to "fib".
	Policy string

	Nodes   int
	Horizon time.Duration
	Seed    int64

	// Trace, when set, is used verbatim instead of the generated
	// per-day calibration — the checkpoint frontier drives hand-built
	// periodic idle windows through the same pipeline. The calibration
	// fields below are ignored then.
	Trace *workload.Trace

	// Trace calibration for the day.
	MeanIdleNodes     float64
	SaturatedFraction float64

	// Regime structure and calm-tail weight of the day. The fib day was
	// calm (long windows: invoker ready spans averaged 23 min); the var
	// day was contended (9.44%% zero-available states). With the heavy
	// Pareto tails, horizon truncation eats ~20%% of the target mean, so
	// the day targets sit above the measured averages they reproduce.
	ContendedMean time.Duration
	CalmMean      time.Duration
	CalmTailP     float64
	CalmAlpha     float64

	// LongSaturations mixes occasional 20-90 minute full-cluster
	// saturations into the day (the var day had an 85-minute stretch
	// with no invoker, §V-B2).
	LongSaturations bool

	// Load generation (§V-C): QPS over NumActions sleep functions of
	// SleepExec each. Zero QPS disables the responsiveness experiment.
	QPS        float64
	NumActions int
	SleepExec  time.Duration

	// Shards > 1 runs the day's 1-site federation with the site on its
	// own event plane under the pdes coordinator — the configuration
	// that pins the sharded runtime byte-for-byte against the day
	// goldens. Results are identical to the sequential run.
	Shards int

	// GracefulHandoff / InterruptRunning expose the §III-C machinery
	// for ablations.
	GracefulHandoff  bool
	InterruptRunning bool

	// CheckpointInterval > 0 attaches the calibrated checkpoint model
	// (internal/checkpoint) with the interval pinned to this constant
	// to every load-generated action: executions dump state each
	// interval and an interrupted execution resumes from its last
	// checkpoint on a successor pilot instead of losing all progress.
	// 0 attaches the same model disabled, which draws no RNG — the
	// golden-pinned runs are byte-identical either way.
	CheckpointInterval time.Duration

	// ActionTimeout > 0 overrides the controller's client-visible
	// timeout (default 60 s). The checkpoint frontier stretches it past
	// the function duration so pilot loss and resume — not the client
	// timer — decide each request's outcome.
	ActionTimeout time.Duration

	// Streaming switches every metric collector in the run (loadgen
	// series and latencies, worker-state series, Slurm-level logger) to
	// O(1)-memory streaming sketches, for horizons where buffering
	// per-request samples is the memory wall (the week-day scenario).
	// Counters, shares, and time means stay exact; quantiles come
	// within stats.Epsilon rank error; the per-minute figure panels
	// (SimReadyPerMinute etc.) are skipped. Simulation behavior — RNG
	// draws, event order, every counter — is identical either way. Off
	// by default so the golden-pinned artifacts keep exact collection.
	Streaming bool
}

// FibDay returns the March 17th, 2022 configuration (§V-B1).
func FibDay(seed int64) DayConfig {
	return DayConfig{
		Policy:            "fib",
		Nodes:             PrometheusNodes,
		Horizon:           24 * time.Hour,
		Seed:              seed,
		MeanIdleNodes:     14.4, // realizes ≈11.85 after truncation
		SaturatedFraction: 0.006,
		ContendedMean:     time.Hour,
		CalmMean:          4 * time.Hour,
		CalmTailP:         0.45,
		CalmAlpha:         1.65,
		QPS:               10,
		NumActions:        100,
		SleepExec:         10 * time.Millisecond,
		GracefulHandoff:   true,
		InterruptRunning:  true,
	}
}

// VarDay returns the March 21st, 2022 configuration (§V-B2).
func VarDay(seed int64) DayConfig {
	return DayConfig{
		Policy:            "var",
		Nodes:             PrometheusNodes,
		Horizon:           24 * time.Hour,
		Seed:              seed,
		MeanIdleNodes:     10.2, // realizes ≈7.4 after truncation
		SaturatedFraction: 0.0944,
		ContendedMean:     2 * time.Hour,
		CalmMean:          2 * time.Hour,
		CalmTailP:         0.38,
		CalmAlpha:         1.7,
		LongSaturations:   true,
		QPS:               10,
		NumActions:        100,
		SleepExec:         10 * time.Millisecond,
		GracefulHandoff:   true,
		InterruptRunning:  true,
	}
}

// PolicyName resolves the effective supply-policy name: the Policy
// field when set, else the paper's fib default.
func (cfg DayConfig) PolicyName() string {
	if cfg.Policy != "" {
		return cfg.Policy
	}
	return "fib"
}

// figLabel and tableLabel place the run in the paper's numbering; the
// policies beyond the paper's two get the policy name instead.
func (cfg DayConfig) figLabel() string {
	switch cfg.PolicyName() {
	case "fib":
		return "5"
	case "var":
		return "6"
	default:
		return "X:" + cfg.PolicyName()
	}
}

func (cfg DayConfig) tableLabel() string {
	switch cfg.PolicyName() {
	case "fib":
		return "II"
	case "var":
		return "III"
	default:
		return "X:" + cfg.PolicyName()
	}
}

// DayResult bundles the three perspectives of Tables II/III plus the
// Fig. 5b/6b responsiveness series.
type DayResult struct {
	Config DayConfig

	// Simulation: the clairvoyant a-posteriori upper bound on the same
	// trace (A1 lengths for fib, C2 for var).
	Sim coverage.Result

	// SlurmLevel: the 10-second poller's perspective.
	SlurmLevel core.SlurmLevelStats

	// OW: the OpenWhisk-level worker accounting.
	OW core.OWLevelStats

	// Load: the responsiveness report; Series are the per-minute
	// outcome counts of Figs. 5b/6b (a buffered MinuteSeries by
	// default; under Streaming a WindowedCounts retaining only the
	// recent tail). Latencies is the collector behind
	// Load.MedianLatency — exact Sample by default, TDigest under
	// Streaming.
	Load      loadgen.Report
	Series    stats.SeriesCollector
	Latencies stats.Collector

	// The three worker-count panels of Figs. 5a/6a, per minute:
	// clairvoyant simulation, Slurm-level poller, OpenWhisk-level.
	SimReadyPerMinute []float64
	SlurmPerMinute    []float64
	HealthyPerMinute  []float64

	// Emulator counters.
	PilotsStarted int
	Submitted     int
	Preempted     int
	Handoffs      int

	// Work is the compute-accounting ledger (goodput / wasted / lost,
	// checkpoint and restore overheads). Goodput accrues on every run;
	// the checkpoint-specific fields stay zero unless
	// CheckpointInterval > 0.
	Work stats.WorkCounters

	// MetricsBytes is the retained footprint of the run's metric
	// collectors (loadgen series + latencies, worker-state series,
	// Slurm logger) — the quantity the week-day benchmark pins flat in
	// horizon under Streaming.
	MetricsBytes int
}

// Digests exposes the run's mergeable latency sketch for sweep-level
// aggregation (sweep merges per-replica digests instead of
// concatenating samples). Nil on buffered (non-Streaming) runs.
func (r DayResult) Digests() map[string]*stats.TDigest {
	if d, ok := r.Latencies.(*stats.TDigest); ok {
		return map[string]*stats.TDigest{"latency-s": d}
	}
	return nil
}

// Coverage returns the live Slurm-level coverage (used time share).
func (r DayResult) Coverage() float64 { return r.SlurmLevel.ShareUsed }

// TraceConfig builds the day's calibrated idle-process configuration
// (shared with other experiments that reuse per-day calibrations).
func (cfg DayConfig) TraceConfig() workload.IdleProcessConfig {
	wl := workload.DefaultIdleProcess(cfg.Nodes, cfg.Horizon, cfg.Seed)
	wl.MeanIdleNodes = cfg.MeanIdleNodes
	wl.SaturatedFraction = cfg.SaturatedFraction
	if cfg.ContendedMean > 0 {
		wl.ContendedMean = cfg.ContendedMean
	}
	if cfg.CalmMean > 0 {
		wl.CalmMean = cfg.CalmMean
	}
	if cfg.CalmTailP > 0 {
		wl.CalmPeriod = dist.CalmIdlePeriodTail(cfg.CalmTailP, cfg.CalmAlpha)
	}
	if cfg.LongSaturations {
		wl.SaturationSeconds = dist.NewMixture(
			dist.Weighted{W: 0.92, D: wl.SaturationSeconds},
			dist.Weighted{W: 0.08, D: dist.Uniform{Lo: 20 * 60, Hi: 90 * 60}},
		)
	}
	return wl
}

// ProgressFunc observes an experiment's advance through virtual time.
// done counts from 0 to total; implementations must be cheap (they run
// once per simulated epoch) and must not touch the simulation.
type ProgressFunc = func(done, total time.Duration)

// offsetProgress shifts a ProgressFunc so multi-phase experiments
// (run + drain, or several sequential runs) report one monotone range.
func offsetProgress(p ProgressFunc, off, total time.Duration) ProgressFunc {
	if p == nil {
		return nil
	}
	return func(done, _ time.Duration) { p(off+done, total) }
}

// dayDrain is the post-horizon window RunDay gives in-flight work.
const dayDrain = 5 * time.Minute

// RunDay executes one full 24-hour experiment.
func RunDay(cfg DayConfig) DayResult {
	res, _ := RunDayCtx(context.Background(), cfg, nil) // never canceled
	return res
}

// RunDayCtx is RunDay with cooperative cancellation and progress: the
// simulation advances in core.DefaultEpoch chunks of virtual time,
// checking ctx between chunks. A run that completes is bit-identical
// to RunDay. On cancellation the partial simulation is abandoned and
// only the error returns.
func RunDayCtx(ctx context.Context, cfg DayConfig, progress ProgressFunc) (DayResult, error) {
	tr := cfg.Trace
	if tr == nil {
		tr = cfg.TraceConfig().Generate()
	}

	// A production day is a 1-site federation: the front door adds no
	// events, no RNG draws, and no allocations, so this path reproduces
	// the pre-federation single-cluster run byte-for-byte (pinned by the
	// day goldens).
	fed := core.NewFederation(core.FederationConfig{
		Sites:  []core.SiteConfig{systemConfig(cfg)},
		Shards: cfg.Shards,
	})
	sys := fed.Sites[0]
	sys.LoadTrace(tr)

	var gen *loadgen.Generator
	if cfg.QPS > 0 {
		actions := loadgen.ActionNames("sleep", cfg.NumActions)
		for _, name := range actions {
			sys.Ctrl.RegisterAction(&whisk.Action{
				Name:          name,
				MemoryMB:      256,
				Exec:          whisk.FixedExec(cfg.SleepExec),
				Interruptible: true,
				Checkpoint:    checkpoint.WithInterval(cfg.CheckpointInterval),
			})
		}
		gen = loadgen.New(fed.Sim, fed,
			loadgen.Config{QPS: cfg.QPS, Actions: actions, Duration: cfg.Horizon,
				BucketLen: time.Minute, Streaming: cfg.Streaming})
		gen.Start()
	}

	fed.Start()
	total := cfg.Horizon + dayDrain
	// fed.RunCtx drives the shared plane sequentially or the pdes
	// coordinator when sharded; either way it is byte-identical to the
	// pre-federation sys.RunCtx this path grew from.
	if err := fed.RunCtx(ctx, cfg.Horizon, 0, offsetProgress(progress, 0, total)); err != nil {
		return DayResult{}, err
	}
	// Let in-flight work drain past the horizon.
	if err := fed.RunCtx(ctx, dayDrain, 0, offsetProgress(progress, cfg.Horizon, total)); err != nil {
		return DayResult{}, err
	}

	set := coverage.Set{Name: "A1", Lengths: core.SetA1}
	if cfg.PolicyName() == "var" {
		set = coverage.TableISets()[5] // C2
	}

	res := DayResult{
		Config:        cfg,
		Sim:           coverage.Simulate(tr, set, coverage.DefaultConfig()),
		SlurmLevel:    sys.Logger.Stats(),
		OW:            sys.Manager.OWStats(sys.Sim.Now()),
		PilotsStarted: sys.Manager.PilotsStarted,
		Submitted:     sys.Manager.Submitted,
		Preempted:     sys.Slurm.Preempted,
		Handoffs:      sys.Manager.Handoffs,
		Work:          sys.Ctrl.Work,
	}
	if gen != nil {
		res.Load = gen.Report()
		res.Series = gen.Series
		res.Latencies = gen.Latencies
		res.MetricsBytes += gen.Series.Footprint() + gen.Latencies.Footprint()
	}
	res.MetricsBytes += sys.Logger.Footprint() +
		sys.Manager.States.Warming.Footprint() +
		sys.Manager.States.Healthy.Footprint() +
		sys.Manager.States.Irresp.Footprint()
	// The per-minute figure panels require the buffered series; a
	// streaming run deliberately doesn't retain them.
	if !cfg.Streaming {
		res.SimReadyPerMinute = res.Sim.Ready.Buckets(time.Minute)
		if healthy, ok := sys.Manager.States.Healthy.(*stats.TimeWeighted); ok {
			res.HealthyPerMinute = healthy.Buckets(time.Minute)
		}
		res.SlurmPerMinute = slurmPerMinute(sys.Logger.Entries, cfg.Horizon)
	}
	return res, nil
}

// slurmPerMinute downsamples the poller's pilot counts into per-minute
// averages (the middle panel of Figs. 5a/6a).
func slurmPerMinute(entries []core.SlurmLogEntry, horizon time.Duration) []float64 {
	n := int(horizon / time.Minute)
	if n == 0 {
		return nil
	}
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, e := range entries {
		i := int(e.At / time.Minute)
		if i >= 0 && i < n {
			sums[i] += float64(e.Pilot)
			counts[i]++
		}
	}
	out := make([]float64, n)
	for i := range out {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}

// RenderSeries prints the three worker-count panels of Figs. 5a/6a as
// aligned per-minute columns.
func (r DayResult) RenderSeries(w io.Writer) {
	fmt.Fprintf(w, "Fig %sa — workers per minute (sim / slurm / ow-healthy)\n",
		r.Config.figLabel())
	n := len(r.SimReadyPerMinute)
	if len(r.SlurmPerMinute) < n {
		n = len(r.SlurmPerMinute)
	}
	if len(r.HealthyPerMinute) < n {
		n = len(r.HealthyPerMinute)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "  %5d  %6.1f %6.1f %6.1f\n", i,
			r.SimReadyPerMinute[i], r.SlurmPerMinute[i], r.HealthyPerMinute[i])
	}
}

func systemConfig(cfg DayConfig) core.SystemConfig {
	sc := core.DefaultSystemConfig(cfg.Nodes, cfg.PolicyName())
	sc.Seed = cfg.Seed + 1000
	sc.Manager.GracefulHandoff = cfg.GracefulHandoff
	sc.Manager.InterruptRunning = cfg.InterruptRunning
	sc.StreamingStats = cfg.Streaming
	if cfg.ActionTimeout > 0 {
		sc.Controller.ActionTimeout = cfg.ActionTimeout
	}
	return sc
}

// Render prints the Table II/III layout plus the §V-C summary.
func (r DayResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Table %s — %s day (%d nodes, %v)\n",
		r.Config.tableLabel(), r.Config.PolicyName(), r.Config.Nodes, r.Config.Horizon)
	fmt.Fprintf(w, "  %-22s %5s-%s-%-5s %6s   %-9s %-9s\n",
		"perspective", "25p", "50p", "75p", "avg", "used", "not-used")
	fmt.Fprintf(w, "  Simulation  warm-up   %5.0f %3.0f %5.0f %6.2f   %8.2f%% %8.2f%%\n",
		0.0, 0.0, 0.0, r.Sim.ReadyAvg*r.Sim.ShareWarmup/maxF(r.Sim.ShareReady, 1e-9),
		100*r.Sim.ShareWarmup, 100*r.Sim.ShareNotUsed)
	fmt.Fprintf(w, "  Simulation  ready     %5.0f %3.0f %5.0f %6.2f   %8.2f%%\n",
		r.Sim.ReadyP25, r.Sim.ReadyP50, r.Sim.ReadyP75, r.Sim.ReadyAvg, 100*r.Sim.ShareReady)
	s := r.SlurmLevel
	fmt.Fprintf(w, "  Slurm-level all       %5.0f %3.0f %5.0f %6.2f   %8.2f%% %8.2f%%\n",
		s.WorkerP25, s.WorkerP50, s.WorkerP75, s.WorkerAvg, 100*s.ShareUsed, 100*s.ShareNotUsed)
	o := r.OW
	fmt.Fprintf(w, "  OW-level    warm-up   %19s %6.2f\n", "", o.WarmupAvg)
	fmt.Fprintf(w, "  OW-level    healthy   %5.0f %3.0f %5.0f %6.2f\n",
		o.HealthyP25, o.HealthyP50, o.HealthyP75, o.HealthyAvg)
	fmt.Fprintf(w, "  OW-level    irresp.   %19s %6.2f\n", "", o.IrrespAvg)
	fmt.Fprintf(w, "  available: avg %.2f / median %.0f; zero-available states %d; zero-worker states %d\n",
		s.AvailableAvg, s.AvailableMedian, s.ZeroAvailableStates, s.ZeroWorkerStates)
	fmt.Fprintf(w, "  coverage: live %.1f%% vs simulated upper bound %.1f%%\n",
		100*s.ShareUsed, 100*r.Sim.Coverage())
	fmt.Fprintf(w, "  no-invoker: total %v, longest %v; ready spans avg %v / median %v\n",
		o.NoInvokerTotal.Round(time.Minute), o.NoInvokerLongest.Round(time.Minute),
		o.ReadySpanAvg.Round(time.Minute), o.ReadySpanMedian.Round(time.Minute))
	if r.Config.QPS > 0 {
		fmt.Fprintf(w, "  responsiveness (Fig %sb): %s\n",
			r.Config.figLabel(), r.Load.String())
	}
	// Gated on configuration, not Work.Zero(): goodput accrues on every
	// run, and the golden-pinned runs never set CheckpointInterval.
	if r.Config.CheckpointInterval > 0 {
		wk := r.Work
		fmt.Fprintf(w, "  checkpointing (%v interval): %d dumps, %d resumes (%d cloud); goodput %.1f%% of body time, wasted %v, lost %v; dump %v, restore %v\n",
			r.Config.CheckpointInterval, wk.Checkpoints, wk.Resumed, wk.CloudResumes,
			100*wk.GoodputShare(), wk.Wasted.Round(time.Millisecond), wk.Lost.Round(time.Millisecond),
			wk.CheckpointTime.Round(time.Millisecond), wk.RestoreTime.Round(time.Millisecond))
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
