// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each harness returns a structured result and can
// render itself in the shape the paper reports (CDF series, table rows,
// per-minute aggregates), so `go test -bench` and the CLIs regenerate
// the full evaluation.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// PrometheusNodes is the size of the analyzed partition (§I).
const PrometheusNodes = 2239

// Week is the span of the paper's initial analysis (Feb 21-27, 2022).
const Week = 7 * 24 * time.Hour

// WeekTrace generates the calibrated stand-in for the production week.
func WeekTrace(seed int64) *workload.Trace {
	return workload.DefaultIdleProcess(PrometheusNodes, Week, seed).Generate()
}

// Fig1Result carries the three panels of Fig. 1.
type Fig1Result struct {
	// Panel (a): CDF of the number of idle nodes.
	IdleNodesCDF []stats.CDFPoint
	MeanIdle     float64
	MedianIdle   float64
	P25Idle      float64
	P99Idle      float64

	// Panel (b): CDF of idle-period lengths (minutes).
	PeriodCDF    []stats.CDFPoint
	MedianPeriod time.Duration
	P75Period    time.Duration
	MeanPeriod   time.Duration
	TailOver23m  float64

	// Panel (c): saturation and burst summary of the time series.
	ZeroIdleShare    float64
	LongestZeroIdle  time.Duration
	PeakIdleNodes    float64
	TotalIdleSurface time.Duration
	Periods          int
}

// RunFig1Ctx is RunFig1 behind a cancellation check: the analysis is a
// single in-memory pass, so ctx is consulted once up front (callers
// generate the trace — the heavy part — under their own ctx checks).
func RunFig1Ctx(ctx context.Context, tr *workload.Trace) (Fig1Result, error) {
	if err := ctx.Err(); err != nil {
		return Fig1Result{}, err
	}
	return RunFig1(tr), nil
}

// RunFig1 analyzes a week trace the way §I analyzed the production logs.
func RunFig1(tr *workload.Trace) Fig1Result {
	tw := tr.IdleCount()
	lengths := tr.PeriodLengths()
	share, longest := tr.SaturationShare()

	var r Fig1Result
	probes := []float64{0, 1, 2, 3, 5, 8, 13, 20, 30, 50, 67, 100, 150}
	for _, p := range probes {
		r.IdleNodesCDF = append(r.IdleNodesCDF, stats.CDFPoint{X: p, F: tw.FractionAtOrBelow(p)})
	}
	r.MeanIdle = tw.TimeMean()
	r.MedianIdle = tw.Quantile(0.5)
	r.P25Idle = tw.Quantile(0.25)
	r.P99Idle = tw.Quantile(0.99)

	minuteProbes := []float64{0.5, 1, 2, 3, 4, 6, 10, 15, 23, 40, 60, 120}
	for _, m := range minuteProbes {
		r.PeriodCDF = append(r.PeriodCDF, stats.CDFPoint{X: m, F: lengths.CDFAt(m * 60)})
	}
	r.MedianPeriod = time.Duration(lengths.Median() * float64(time.Second))
	r.P75Period = time.Duration(lengths.Quantile(0.75) * float64(time.Second))
	r.MeanPeriod = time.Duration(lengths.Mean() * float64(time.Second))
	r.TailOver23m = 1 - lengths.CDFAt(23*60)

	r.ZeroIdleShare = share
	r.LongestZeroIdle = longest
	r.PeakIdleNodes = tw.Quantile(1.0)
	r.TotalIdleSurface = tr.TotalIdle()
	r.Periods = lengths.Len()
	return r
}

// Render prints the figure in the paper's terms.
func (r Fig1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 1a — CDF of #idle nodes (mean %.2f, median %.0f, p25 %.0f, p99 %.0f)\n",
		r.MeanIdle, r.MedianIdle, r.P25Idle, r.P99Idle)
	for _, p := range r.IdleNodesCDF {
		fmt.Fprintf(w, "  ≤%4.0f nodes: %6.2f%%\n", p.X, 100*p.F)
	}
	fmt.Fprintf(w, "Fig 1b — CDF of idle-period lengths (median %v, p75 %v, mean %v, >23min %.1f%%)\n",
		r.MedianPeriod.Round(time.Second), r.P75Period.Round(time.Second),
		r.MeanPeriod.Round(time.Second), 100*r.TailOver23m)
	for _, p := range r.PeriodCDF {
		fmt.Fprintf(w, "  ≤%5.1f min: %6.2f%%\n", p.X, 100*p.F)
	}
	fmt.Fprintf(w, "Fig 1c — zero-idle %.2f%% of time (longest %v), peak %.0f idle nodes\n",
		100*r.ZeroIdleShare, r.LongestZeroIdle.Round(time.Minute), r.PeakIdleNodes)
	fmt.Fprintf(w, "idle surface: %.0f node-hours over %d periods\n",
		r.TotalIdleSurface.Hours(), r.Periods)
}
