package router

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/whisk"
)

// fakeSite is a synchronous Site: Invoke completes immediately with a
// configurable status and latency.
type fakeSite struct {
	healthy int
	util    float64
	queue   int
	fl      int
	drain   int

	status  whisk.Status
	latency time.Duration
	invoked int
}

func (s *fakeSite) Invoke(action string, done func(*whisk.Invocation)) {
	s.invoked++
	inv := &whisk.Invocation{
		Submitted: 0,
		Completed: s.latency,
		Status:    s.status,
	}
	if done != nil {
		done(inv)
	}
}

func (s *fakeSite) HealthyInvokers() int  { return s.healthy }
func (s *fakeSite) Utilization() float64  { return s.util }
func (s *fakeSite) QueueDepth() int       { return s.queue }
func (s *fakeSite) FastLaneDepth() int    { return s.fl }
func (s *fakeSite) DrainingInvokers() int { return s.drain }

func newFakeSites(n int) ([]*fakeSite, []Site) {
	fs := make([]*fakeSite, n)
	sites := make([]Site, n)
	for i := range fs {
		fs[i] = &fakeSite{healthy: 4, status: whisk.StatusSuccess, latency: 800 * time.Millisecond}
		sites[i] = fs[i]
	}
	return fs, sites
}

// TestFrontDoorSingleSite: with one site the front door always routes
// to it — healthy or not — so the single-cluster path is preserved
// exactly (the byte-identity precondition of the day goldens).
func TestFrontDoorSingleSite(t *testing.T) {
	fs, sites := newFakeSites(1)
	fd := NewFrontDoor(sites, MustNew("capacity-weighted"))
	for i := 0; i < 10; i++ {
		fd.Invoke("sleep-001", nil)
	}
	fs[0].healthy = 0 // killed: still must land on site 0 (as a 503)
	fs[0].status = whisk.Status503
	for i := 0; i < 10; i++ {
		fd.Invoke("sleep-001", nil)
	}
	if fs[0].invoked != 20 {
		t.Fatalf("site 0 saw %d invocations, want 20", fs[0].invoked)
	}
	if fd.Spilled != 0 {
		t.Fatalf("1-site federation spilled %d requests", fd.Spilled)
	}
	if fd.NoSitePicks != 10 {
		t.Fatalf("NoSitePicks = %d, want 10", fd.NoSitePicks)
	}
}

// TestFrontDoorSpillAccounting: a dead home site spills its traffic to
// a healthy one and the counters record it.
func TestFrontDoorSpillAccounting(t *testing.T) {
	fs, sites := newFakeSites(2)
	fd := NewFrontDoor(sites, MustNew("capacity-weighted"))
	action := "spill-test"
	home := fd.Home(action)
	other := 1 - home
	fs[home].healthy = 0
	const calls = 50
	for i := 0; i < calls; i++ {
		fd.Invoke(action, nil)
	}
	if fs[other].invoked != calls {
		t.Fatalf("healthy site saw %d calls, want %d", fs[other].invoked, calls)
	}
	if fd.Spilled != calls || fd.SpillsIn[other] != calls {
		t.Fatalf("Spilled=%d SpillsIn=%v, want %d spills into site %d",
			fd.Spilled, fd.SpillsIn, calls, other)
	}
	if fd.IssuedBySite[other] != calls || fd.IssuedBySite[home] != 0 {
		t.Fatalf("IssuedBySite = %v", fd.IssuedBySite)
	}
}

// TestFrontDoorNoSiteRotation: with every site dead, requests rotate
// deterministically across the sites (each surfaces its own 503).
func TestFrontDoorNoSiteRotation(t *testing.T) {
	fs, sites := newFakeSites(3)
	for _, s := range fs {
		s.healthy = 0
		s.status = whisk.Status503
	}
	fd := NewFrontDoor(sites, MustNew("latency-weighted"))
	for i := 0; i < 9; i++ {
		fd.Invoke("a", nil)
	}
	for i, s := range fs {
		if s.invoked != 3 {
			t.Fatalf("dead-rotation: site %d saw %d, want 3", i, s.invoked)
		}
	}
	if fd.NoSitePicks != 9 {
		t.Fatalf("NoSitePicks = %d, want 9", fd.NoSitePicks)
	}
}

// TestFrontDoorLatencySignal: completions feed the per-site EWMA and
// tail samples, and the latency-weighted policy reacts to them.
func TestFrontDoorLatencySignal(t *testing.T) {
	fs, sites := newFakeSites(2)
	fs[0].latency = 2 * time.Second
	fs[1].latency = 100 * time.Millisecond
	fd := NewFrontDoor(sites, MustNew("latency-weighted"))
	fd.CollectLatencies(true)

	// Probe both sites once (unprobed sites report 0 and win the scan).
	action := "lat-test"
	home := fd.Home(action)
	fd.Invoke(action, nil) // lands home (lat 0)
	if fd.Latency(home) == 0 {
		t.Fatal("home latency EWMA not updated after a success")
	}
	fd.Invoke(action, nil) // other site still unprobed → wins
	if fd.Latency(0) == 0 || fd.Latency(1) == 0 {
		t.Fatalf("both sites should be probed, EWMAs = %v / %v", fd.Latency(0), fd.Latency(1))
	}
	// From here on, every request must go to the fast site 1.
	before := fs[1].invoked
	for i := 0; i < 20; i++ {
		fd.Invoke(action, nil)
	}
	if fs[1].invoked != before+20 {
		t.Fatalf("fast site got %d of 20 post-probe calls", fs[1].invoked-before)
	}
	if fd.LatencyBySite[1].Len() == 0 {
		t.Fatal("per-site latency sample empty")
	}
	// Failed calls must not pollute the latency signal.
	fs[1].status = whisk.StatusFailed
	ewma := fd.Latency(1)
	fd.Invoke(action, nil)
	if fd.Latency(1) != ewma {
		t.Fatal("failed completion changed the latency EWMA")
	}
}

// TestFrontDoorCallPooling: completion contexts recycle instead of
// accumulating.
func TestFrontDoorCallPooling(t *testing.T) {
	_, sites := newFakeSites(2)
	fd := NewFrontDoor(sites, MustNew("capacity-weighted"))
	for i := 0; i < 1000; i++ {
		fd.Invoke("pool-test", func(*whisk.Invocation) {})
	}
	// Synchronous completion: after every call returned, exactly one
	// pooled context should exist.
	if len(fd.callPool) != 1 {
		t.Fatalf("callPool holds %d contexts after 1000 synchronous calls, want 1", len(fd.callPool))
	}
}

// TestFrontDoorHomeStable: the home assignment is a pure function of
// the action name.
func TestFrontDoorHomeStable(t *testing.T) {
	_, sites := newFakeSites(4)
	fd := NewFrontDoor(sites, MustNew("capacity-weighted"))
	seen := map[int]bool{}
	for _, a := range []string{"sleep-000", "sleep-001", "sleep-002", "sleep-007", "bfs", "pagerank"} {
		h := fd.Home(a)
		if h < 0 || h >= 4 {
			t.Fatalf("home %d out of range for %q", h, a)
		}
		if h2 := fd.Home(a); h2 != h {
			t.Fatalf("home not stable for %q: %d then %d", a, h, h2)
		}
		seen[h] = true
	}
	if len(seen) < 2 {
		t.Fatalf("home hash maps every action to one site: %v", seen)
	}
}

// TestSnapshotViews: with snapshots enabled every View method answers
// from the state captured at the last Refresh — mid-window site
// changes are invisible to routing until the next grid instant — and
// without snapshots the views stay live.
func TestSnapshotViews(t *testing.T) {
	fs, sites := newFakeSites(2)
	fd := NewFrontDoor(sites, MustNew("capacity-weighted"))

	// Live views before EnableSnapshots.
	fs[0].healthy = 1
	if got := fd.HealthyInvokers(0); got != 1 {
		t.Fatalf("live HealthyInvokers = %d, want 1", got)
	}
	fd.Invoke("seed-latency", nil) // one 800ms success seeds the EWMA
	if fd.Latency(fd.Home("seed-latency")) == 0 {
		t.Fatal("latency EWMA not seeded")
	}

	fd.EnableSnapshots()
	lat0 := fd.Latency(0)
	// Mutate everything the snapshot captured.
	fs[0].healthy, fs[0].util, fs[0].queue, fs[0].fl, fs[0].drain = 7, 0.5, 3, 2, 1
	for i := 0; i < 50; i++ {
		fd.Invoke("seed-latency", nil) // moves the live EWMA
	}
	if got := fd.HealthyInvokers(0); got != 1 {
		t.Errorf("snapshot HealthyInvokers = %d, want the captured 1", got)
	}
	if !fd.Healthy(0) {
		t.Error("snapshot Healthy flipped without a Refresh")
	}
	if got := fd.Utilization(0); got != 0 {
		t.Errorf("snapshot Utilization = %v, want the captured 0", got)
	}
	if got := fd.QueueDepth(0); got != 0 {
		t.Errorf("snapshot QueueDepth = %v, want the captured 0", got)
	}
	if got := fd.FastLaneDepth(0); got != 0 {
		t.Errorf("snapshot FastLaneDepth = %v, want the captured 0", got)
	}
	if got := fd.Draining(0); got != 0 {
		t.Errorf("snapshot Draining = %v, want the captured 0", got)
	}
	if got := fd.Latency(0); got != lat0 {
		t.Errorf("snapshot Latency = %v, want the captured %v", got, lat0)
	}

	fd.Refresh()
	if got := fd.HealthyInvokers(0); got != 7 {
		t.Errorf("refreshed HealthyInvokers = %d, want 7", got)
	}
	if got := fd.Utilization(0); got != 0.5 {
		t.Errorf("refreshed Utilization = %v, want 0.5", got)
	}
	if got := fd.Draining(0); got != 1 {
		t.Errorf("refreshed Draining = %v, want 1", got)
	}
}

// TestSnapshotEvery: the refresh ticker recaptures the view on the
// grid — first at now+interval — and interval ≤ 0 means
// DefaultSnapshotInterval.
func TestSnapshotEvery(t *testing.T) {
	fs, sites := newFakeSites(2)
	fd := NewFrontDoor(sites, MustNew("capacity-weighted"))
	sim := des.New()
	fd.SnapshotEvery(sim, 0)

	fs[1].healthy = 9
	sim.RunUntil(des.Time(DefaultSnapshotInterval) - 1)
	if got := fd.HealthyInvokers(1); got != 4 {
		t.Errorf("before the first grid instant: HealthyInvokers = %d, want the captured 4", got)
	}
	sim.RunUntil(des.Time(DefaultSnapshotInterval))
	if got := fd.HealthyInvokers(1); got != 9 {
		t.Errorf("after the first refresh: HealthyInvokers = %d, want 9", got)
	}
	fs[1].healthy = 2
	sim.RunUntil(des.Time(2*DefaultSnapshotInterval) - 1)
	if got := fd.HealthyInvokers(1); got != 9 {
		t.Errorf("mid second window: HealthyInvokers = %d, want 9", got)
	}
	sim.RunUntil(des.Time(2 * DefaultSnapshotInterval))
	if got := fd.HealthyInvokers(1); got != 2 {
		t.Errorf("after the second refresh: HealthyInvokers = %d, want 2", got)
	}
}
