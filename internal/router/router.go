// Package router is the global routing layer of the federated
// cluster-of-clusters deployment: N independent Slurm+whisk Sites on
// one simulation plane, fronted by a single entry point (the
// FrontDoor) that picks a site per request through a pluggable
// RoutingPolicy.
//
// The package mirrors the shape of internal/policy: RoutingPolicy is a
// small stateful interface, policies register in a name-keyed registry
// ("latency-weighted", "capacity-weighted", "spill-over",
// "fast-lane-aware", plus anything the embedding program registers),
// and experiment configs refer to them by name. Policies observe
// per-site health, utilization, and queue signals through the View
// interface and return a site index — or NoSite when no site can take
// the request, in which case the caller decides (the front door
// surfaces a 503 from a real controller so the Alg. 1 wrapper can
// off-load to the commercial cloud).
package router

import (
	"fmt"
	"sort"

	"repro/internal/whisk"
)

// NoSite is the fallback sentinel a policy returns when no registered
// site is healthy. The front door never routes to it: it surfaces the
// request to a real (unhealthy) controller so the refusal is an
// ordinary 503 on the client path.
const NoSite = -1

// Site is one federated cluster as the front door sees it: an
// invocation sink plus the health signals the routing policies
// observe. core.Site implements it by delegating to its controller.
type Site interface {
	// Invoke submits a call; done fires exactly once with the outcome.
	Invoke(action string, done func(*whisk.Invocation))

	// HealthyInvokers is the number of invokers accepting work.
	HealthyInvokers() int

	// Utilization is the busy share of healthy invoker capacity, [0,1].
	Utilization() float64

	// QueueDepth is the number of accepted-but-unstarted requests
	// (unpulled topic messages plus invoker buffers).
	QueueDepth() int

	// FastLaneDepth is the backlog of the site's §III-C priority topic.
	FastLaneDepth() int

	// DrainingInvokers is the number of invokers mid-hand-off.
	DrainingInvokers() int
}

// View is the read-only federation snapshot a policy picks from. Site
// indices are stable for the lifetime of a federation; a site with no
// healthy invoker stays registered (its pilots may come back) but must
// never be picked.
type View interface {
	// NumSites is the (fixed) number of federated sites.
	NumSites() int

	// Healthy reports whether site i has at least one healthy invoker.
	Healthy(i int) bool

	// HealthyInvokers, Utilization, QueueDepth, FastLaneDepth and
	// Draining expose site i's health signals (see Site).
	HealthyInvokers(i int) int
	Utilization(i int) float64
	QueueDepth(i int) int
	FastLaneDepth(i int) int
	Draining(i int) int

	// Latency is the front door's exponentially weighted moving average
	// of site i's recent successful end-to-end latency, in seconds; 0
	// until the site served its first success.
	Latency(i int) float64
}

// RoutingPolicy picks a site per request. Implementations must be
// deterministic pure functions of the View (no private randomness —
// the request path is pinned byte-for-byte by goldens) and must return
// either the index of a currently healthy site or NoSite; returning
// NoSite while a healthy site exists, or a drained site index, is a
// policy bug (the property tests enforce the invariant for every
// registered policy).
type RoutingPolicy interface {
	// Name returns the registry name.
	Name() string

	// Init prepares the policy for a federation of n sites. It is
	// called once, before the first Pick.
	Init(n int)

	// Pick returns the target site for one request. home is the
	// request's hash-derived home site (the symmetry anchor: policies
	// that have no better signal, and tie-breaks, should prefer it so
	// warm-container affinity is preserved).
	Pick(v View, action string, home int) int
}

// Factory builds a fresh, default-configured routing policy. Policies
// may be stateful, so every front door needs its own instance.
type Factory func() RoutingPolicy

var registry = map[string]Factory{}

// Register adds a routing policy factory under a name. Experiment
// configs and the CLI grids refer to routing policies by these names.
// Registering a duplicate or empty name panics (a programming error,
// as in the supply-policy registry).
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("router: Register needs a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("router: %q already registered", name))
	}
	registry[name] = f
}

// New builds a fresh default-configured routing policy by registry
// name.
func New(name string) (RoutingPolicy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("router: unknown routing policy %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustNew is New for callers whose name is already validated.
func MustNew(name string) RoutingPolicy {
	p, err := New(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists the registered routing-policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("latency-weighted", func() RoutingPolicy { return &latencyWeighted{} })
	Register("capacity-weighted", func() RoutingPolicy { return &capacityWeighted{} })
	Register("spill-over", func() RoutingPolicy { return &spillOver{} })
	Register("fast-lane-aware", func() RoutingPolicy { return &fastLaneAware{} })
}
