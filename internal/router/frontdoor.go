package router

import (
	"time"

	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/whisk"
)

// latencyEWMAWeight is the weight of the newest latency sample in the
// per-site moving average the latency-weighted policy reads. Small
// enough to smooth per-request jitter, large enough to track a site
// degrading within a few hundred requests.
const latencyEWMAWeight = 0.05

// DefaultSnapshotInterval is the default refresh period of the
// snapshot-consistent health view a multi-site federation routes from
// (FrontDoor.SnapshotEvery / Refresh). It is also the lookahead window
// of the sharded parallel run: between refreshes, routing decisions
// depend only on state captured at the last grid instant, so site
// shards may advance a full interval without synchronizing. The one
// microsecond offset keeps the refresh grid off the exact instants the
// simulation already populates — the minute-aligned site tickers and
// the regular load-generator arrival grid — so refresh events never
// tie with them and the sequential and sharded orders stay identical.
const DefaultSnapshotInterval = time.Second + time.Microsecond

// FrontDoor is the federation's single client entry point: every
// request is assigned a hash-derived home site, the routing policy
// picks the target from the live health view, and the call goes to
// that site's controller. The front door itself is passive plumbing —
// it schedules no simulation events, draws no randomness, and
// allocates nothing per request (the per-call context is pooled with a
// cached method-value callback, the core.Wrapper pattern) — so a
// 1-site federation's event sequence is byte-identical to the bare
// single-cluster path.
type FrontDoor struct {
	sites  []Site
	policy RoutingPolicy

	// lat is the per-site EWMA of successful end-to-end latency
	// (seconds) backing View.Latency.
	lat []float64

	// LatencyBySite collects successful end-to-end latencies per site
	// (seconds), for the per-site tail quantiles of the federated
	// experiments. Nil entries unless CollectLatencies(true) — exact
	// buffered Samples — or CollectLatenciesWith — any collector, e.g.
	// O(1)-memory stats.TDigest sketches — was called: growing samples
	// are the one measurement that would break the door's
	// allocation-free request path, so plain runs skip them (the EWMA
	// backing View.Latency is always maintained).
	LatencyBySite []stats.Collector

	// collectLatency gates LatencyBySite; see CollectLatencies.
	collectLatency bool

	// snap holds the per-site health signals captured at the last
	// Refresh; snapshotting switches the View methods from live site
	// reads to the snapshot. See EnableSnapshots.
	snap         []siteSnap
	snapshotting bool

	// callPool recycles the per-call completion context; fn is created
	// once per pooled object, never per request.
	callPool []*fdCall

	// Per-site counters: requests issued to each site, and requests
	// that landed there by spilling away from their home site.
	IssuedBySite []int
	SpillsIn     []int

	// Issued counts all requests; Spilled counts cross-site spills
	// (picked site ≠ home site); NoSitePicks counts requests issued
	// while no site was healthy (they surface a real 503, which the
	// Alg. 1 wrapper turns into a cloud off-load when configured).
	Issued      int
	Spilled     int
	NoSitePicks int
}

// siteSnap is one site's health signals as captured at a Refresh.
type siteSnap struct {
	healthyInvokers int
	utilization     float64
	queueDepth      int
	fastLaneDepth   int
	draining        int
	latency         float64
}

// EnableSnapshots switches the door's View from live per-site reads to
// the snapshot captured at the last Refresh, and captures the initial
// snapshot now. Multi-site federations route from snapshots in both
// execution modes: the refresh grid is what gives the sharded run its
// lookahead window (no routing decision between grid instants can
// observe a site mid-window), and the sequential run adopts the same
// grid (SnapshotEvery) so the two produce byte-identical event
// streams. 1-site doors keep live views — with one site every pick
// lands there regardless, and the fib/var day goldens pin that path.
func (fd *FrontDoor) EnableSnapshots() {
	if fd.snap == nil {
		fd.snap = make([]siteSnap, len(fd.sites))
	}
	fd.snapshotting = true
	fd.Refresh()
}

// Refresh recaptures the health snapshot from every site. In the
// sequential mode a plane ticker drives it (SnapshotEvery); in the
// sharded mode the pdes coordinator calls it at every grid barrier,
// when all site shards rest at exactly the refresh instant.
//
// Refresh costs O(sites), independent of cluster size: every signal a
// whisk.Controller-backed site answers here is a maintained aggregate
// (field read), not a scan over its invokers — which is what keeps
// federated routing flat from 1k to 100k nodes per site.
func (fd *FrontDoor) Refresh() {
	for i, s := range fd.sites {
		fd.snap[i] = siteSnap{
			healthyInvokers: s.HealthyInvokers(),
			utilization:     s.Utilization(),
			queueDepth:      s.QueueDepth(),
			fastLaneDepth:   s.FastLaneDepth(),
			draining:        s.DrainingInvokers(),
			latency:         fd.lat[i],
		}
	}
}

// SnapshotEvery enables snapshot views and schedules the refresh on
// the plane hosting the door: first at now+interval, then every
// interval — the exact grid instants the sharded coordinator refreshes
// at. Pass interval ≤ 0 for DefaultSnapshotInterval.
func (fd *FrontDoor) SnapshotEvery(sim *des.Sim, interval time.Duration) *des.Ticker {
	if interval <= 0 {
		interval = DefaultSnapshotInterval
	}
	fd.EnableSnapshots()
	return sim.Every(interval, fd.Refresh)
}

// fdCall is one in-flight request's completion context.
type fdCall struct {
	fd   *FrontDoor
	site int
	done func(*whisk.Invocation)
	fn   func(*whisk.Invocation)
}

// onDone records the site's observed latency and hands the outcome to
// the caller. The context returns to the pool first, so a re-entrant
// Invoke from done can reuse it.
func (c *fdCall) onDone(inv *whisk.Invocation) {
	fd, site, done := c.fd, c.site, c.done
	c.done = nil
	fd.callPool = append(fd.callPool, c)
	if inv.Status == whisk.StatusSuccess {
		l := (inv.Completed - inv.Submitted).Seconds()
		if fd.collectLatency {
			fd.LatencyBySite[site].Add(l)
		}
		if fd.lat[site] == 0 {
			fd.lat[site] = l
		} else {
			fd.lat[site] += latencyEWMAWeight * (l - fd.lat[site])
		}
	}
	if done != nil {
		done(inv)
	}
}

// NewFrontDoor wires a front door over the federated sites. The policy
// is Init-ed here; pass a fresh instance per front door.
func NewFrontDoor(sites []Site, pol RoutingPolicy) *FrontDoor {
	if len(sites) == 0 {
		panic("router: a front door needs at least one site")
	}
	fd := &FrontDoor{
		sites:         sites,
		policy:        pol,
		lat:           make([]float64, len(sites)),
		LatencyBySite: make([]stats.Collector, len(sites)),
		IssuedBySite:  make([]int, len(sites)),
		SpillsIn:      make([]int, len(sites)),
	}
	pol.Init(len(sites))
	return fd
}

// Policy exposes the active routing policy.
func (fd *FrontDoor) Policy() RoutingPolicy { return fd.policy }

// CollectLatencies turns the per-site latency samples (LatencyBySite)
// on or off, with exact buffered stats.Sample collectors. Off by
// default: the samples grow with the request count, and the plain day
// path must stay allocation-free per request.
func (fd *FrontDoor) CollectLatencies(on bool) {
	fd.collectLatency = on
	if on {
		for i := range fd.LatencyBySite {
			if fd.LatencyBySite[i] == nil {
				fd.LatencyBySite[i] = &stats.Sample{}
			}
		}
	}
}

// CollectLatenciesWith enables per-site latency collection into
// factory-built collectors — e.g. func() stats.Collector { return
// stats.NewTDigest(0) } for O(1)-memory quantile sketches on
// week-scale federated runs.
func (fd *FrontDoor) CollectLatenciesWith(factory func() stats.Collector) {
	fd.collectLatency = true
	for i := range fd.LatencyBySite {
		fd.LatencyBySite[i] = factory()
	}
}

// Home returns the action's hash-derived home site — the same
// stable-modulus symmetry the whisk controller uses for home invokers,
// so an action keeps its site (and its warm containers) for the whole
// run.
func (fd *FrontDoor) Home(action string) int {
	return int(fnv32(action)) % len(fd.sites)
}

// fnv32 is the FNV-1a hash of the action name (allocation-free).
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// getCall pops the pool or builds a new completion context.
func (fd *FrontDoor) getCall() *fdCall {
	if k := len(fd.callPool); k > 0 {
		c := fd.callPool[k-1]
		fd.callPool[k-1] = nil
		fd.callPool = fd.callPool[:k-1]
		return c
	}
	c := &fdCall{fd: fd}
	c.fn = c.onDone
	return c
}

// Invoke routes one request: policy pick from the live view, or — when
// no site is healthy — a deterministic rotation over the sites so the
// refusal surfaces as a real controller 503 (which the Alg. 1 wrapper
// can then off-load). done fires exactly once.
func (fd *FrontDoor) Invoke(action string, done func(*whisk.Invocation)) {
	home := fd.Home(action)
	pick := fd.policy.Pick(fd, action, home)
	if pick < 0 || pick >= len(fd.sites) {
		pick = fd.Issued % len(fd.sites)
		fd.NoSitePicks++
	} else if pick != home {
		fd.Spilled++
		fd.SpillsIn[pick]++
	}
	fd.Issued++
	fd.IssuedBySite[pick]++
	c := fd.getCall()
	c.site, c.done = pick, done
	fd.sites[pick].Invoke(action, c.fn)
}

// The front door implements View over its own site list, so policies
// read health signals with no intermediate snapshot allocation. With
// snapshots enabled (every multi-site federation) the methods answer
// from the grid snapshot — the signal set every routing decision in a
// window agrees on, in both execution modes; without (1-site doors,
// hand-built test doors) they read the sites live.

// NumSites implements View.
func (fd *FrontDoor) NumSites() int { return len(fd.sites) }

// Healthy implements View.
func (fd *FrontDoor) Healthy(i int) bool {
	if fd.snapshotting {
		return fd.snap[i].healthyInvokers > 0
	}
	return fd.sites[i].HealthyInvokers() > 0
}

// HealthyInvokers implements View.
func (fd *FrontDoor) HealthyInvokers(i int) int {
	if fd.snapshotting {
		return fd.snap[i].healthyInvokers
	}
	return fd.sites[i].HealthyInvokers()
}

// Utilization implements View.
func (fd *FrontDoor) Utilization(i int) float64 {
	if fd.snapshotting {
		return fd.snap[i].utilization
	}
	return fd.sites[i].Utilization()
}

// QueueDepth implements View.
func (fd *FrontDoor) QueueDepth(i int) int {
	if fd.snapshotting {
		return fd.snap[i].queueDepth
	}
	return fd.sites[i].QueueDepth()
}

// FastLaneDepth implements View.
func (fd *FrontDoor) FastLaneDepth(i int) int {
	if fd.snapshotting {
		return fd.snap[i].fastLaneDepth
	}
	return fd.sites[i].FastLaneDepth()
}

// Draining implements View.
func (fd *FrontDoor) Draining(i int) int {
	if fd.snapshotting {
		return fd.snap[i].draining
	}
	return fd.sites[i].DrainingInvokers()
}

// Latency implements View.
func (fd *FrontDoor) Latency(i int) float64 {
	if fd.snapshotting {
		return fd.snap[i].latency
	}
	return fd.lat[i]
}
