package router

import (
	"fmt"
	"math/rand"
	"testing"
)

// fakeView is a hand-driven federation snapshot for the policy
// property tests.
type fakeView struct {
	healthy []int
	util    []float64
	queue   []int
	fl      []int
	drain   []int
	lat     []float64
}

func newFakeView(n int) *fakeView {
	return &fakeView{
		healthy: make([]int, n),
		util:    make([]float64, n),
		queue:   make([]int, n),
		fl:      make([]int, n),
		drain:   make([]int, n),
		lat:     make([]float64, n),
	}
}

func (v *fakeView) NumSites() int             { return len(v.healthy) }
func (v *fakeView) Healthy(i int) bool        { return v.healthy[i] > 0 }
func (v *fakeView) HealthyInvokers(i int) int { return v.healthy[i] }
func (v *fakeView) Utilization(i int) float64 { return v.util[i] }
func (v *fakeView) QueueDepth(i int) int      { return v.queue[i] }
func (v *fakeView) FastLaneDepth(i int) int   { return v.fl[i] }
func (v *fakeView) Draining(i int) int        { return v.drain[i] }
func (v *fakeView) Latency(i int) float64     { return v.lat[i] }

func (v *fakeView) anyHealthy() bool {
	for _, h := range v.healthy {
		if h > 0 {
			return true
		}
	}
	return false
}

// TestPolicyRegistry checks the registry contract: the four built-ins
// resolve, unknown names error, and Names is sorted and complete.
func TestPolicyRegistry(t *testing.T) {
	want := []string{"capacity-weighted", "fast-lane-aware", "latency-weighted", "spill-over"}
	names := Names()
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in policy %q missing from Names() = %v", w, names)
		}
		p, err := New(w)
		if err != nil {
			t.Fatalf("New(%q): %v", w, err)
		}
		if p.Name() != w {
			t.Fatalf("New(%q).Name() = %q", w, p.Name())
		}
	}
	if _, err := New("no-such-policy"); err == nil {
		t.Fatal("New of an unknown policy must error")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

// TestPolicyInvariantUnderKillStorms is the safety property of the
// routing layer: under randomized register/kill storms, every
// registered policy always returns a currently healthy site index or
// the NoSite sentinel — never a drained/killed site, and never NoSite
// while a healthy site exists.
func TestPolicyInvariantUnderKillStorms(t *testing.T) {
	const (
		rounds   = 400
		picksPer = 25
	)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name)) * 7919))
			for n := 1; n <= 9; n += 2 { // 1, 3, 5, 7, 9 sites
				pol := MustNew(name)
				pol.Init(n)
				v := newFakeView(n)
				for r := 0; r < rounds; r++ {
					// Storm: flip a random subset of sites between
					// killed (0 healthy invokers) and revived, and
					// scramble every load signal — including the
					// degenerate all-dead federation.
					for i := range v.healthy {
						switch rng.Intn(4) {
						case 0: // kill
							v.healthy[i] = 0
							v.drain[i] = rng.Intn(3)
						case 1: // revive
							v.healthy[i] = 1 + rng.Intn(20)
						}
						v.util[i] = rng.Float64() * 1.2 // incl. >1 overload
						v.queue[i] = rng.Intn(200)
						v.fl[i] = rng.Intn(50)
						v.lat[i] = rng.Float64() * 3
						if rng.Intn(5) == 0 {
							v.lat[i] = 0 // unprobed site
						}
					}
					for p := 0; p < picksPer; p++ {
						home := rng.Intn(n)
						action := fmt.Sprintf("a-%03d", rng.Intn(50))
						got := pol.Pick(v, action, home)
						if v.anyHealthy() {
							if got < 0 || got >= n {
								t.Fatalf("%s: pick %d out of range with healthy sites (n=%d round=%d)",
									name, got, n, r)
							}
							if !v.Healthy(got) {
								t.Fatalf("%s: picked dead site %d (healthy=%v, n=%d round=%d)",
									name, got, v.healthy, n, r)
							}
						} else if got != NoSite {
							t.Fatalf("%s: pick %d with no healthy site, want NoSite (n=%d round=%d)",
								name, got, n, r)
						}
					}
				}
			}
		})
	}
}

// TestPolicySignalPreferences spot-checks that each policy follows its
// advertised signal on a clean two-site view.
func TestPolicySignalPreferences(t *testing.T) {
	v := newFakeView(2)
	v.healthy = []int{4, 4}

	// latency-weighted: site 1 is twice as fast.
	v.lat = []float64{1.0, 0.5}
	if got := MustNew("latency-weighted").Pick(v, "a", 0); got != 1 {
		t.Fatalf("latency-weighted picked %d, want the faster site 1", got)
	}
	// An unprobed site (lat 0) wins over a probed one.
	v.lat = []float64{0.4, 0}
	if got := MustNew("latency-weighted").Pick(v, "a", 0); got != 1 {
		t.Fatalf("latency-weighted picked %d, want the unprobed site 1", got)
	}

	// capacity-weighted: site 0 has more free capacity.
	v.lat = []float64{0, 0}
	v.healthy = []int{10, 10}
	v.util = []float64{0.2, 0.9}
	if got := MustNew("capacity-weighted").Pick(v, "a", 1); got != 0 {
		t.Fatalf("capacity-weighted picked %d, want the freer site 0", got)
	}

	// spill-over: stays home below the threshold, spills above it.
	v.util = []float64{0.5, 0.1}
	if got := MustNew("spill-over").Pick(v, "a", 0); got != 0 {
		t.Fatalf("spill-over left a comfortable home (got %d)", got)
	}
	v.util = []float64{0.95, 0.1}
	if got := MustNew("spill-over").Pick(v, "a", 0); got != 1 {
		t.Fatalf("spill-over stayed on a saturated home (got %d)", got)
	}
	// Everything saturated: still serves (any healthy site).
	v.util = []float64{0.95, 0.99}
	if got := MustNew("spill-over").Pick(v, "a", 0); got != 0 {
		t.Fatalf("spill-over with all sites saturated picked %d, want home 0", got)
	}

	// fast-lane-aware: avoids the site mid-reclaim-storm.
	v.util = []float64{0, 0}
	v.queue = []int{10, 10}
	v.drain = []int{2, 0}
	if got := MustNew("fast-lane-aware").Pick(v, "a", 0); got != 1 {
		t.Fatalf("fast-lane-aware picked draining site (got %d)", got)
	}
	v.drain = []int{0, 0}
	v.fl = []int{0, 40}
	if got := MustNew("fast-lane-aware").Pick(v, "a", 1); got != 0 {
		t.Fatalf("fast-lane-aware ignored the fast-lane backlog (got %d)", got)
	}
}

// TestPolicyTieBreakPrefersHome: with flat signals every policy must
// keep the request on its home site (warm-container affinity).
func TestPolicyTieBreakPrefersHome(t *testing.T) {
	v := newFakeView(4)
	for i := range v.healthy {
		v.healthy[i] = 5
		v.util[i] = 0.3
		v.lat[i] = 0.8
		v.queue[i] = 7
	}
	for _, name := range Names() {
		pol := MustNew(name)
		pol.Init(4)
		for home := 0; home < 4; home++ {
			if got := pol.Pick(v, "a", home); got != home {
				t.Fatalf("%s: flat signals, home %d, picked %d", name, home, got)
			}
		}
	}
}
