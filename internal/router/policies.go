package router

// The four built-in routing policies. All are deterministic pure
// functions of the View: no private randomness (the 1-site federation
// is pinned byte-for-byte against the single-cluster goldens) and no
// allocation on the pick path (the front door sits on the
// allocation-free request path at up to 1000 QPS).
//
// Scans start at the request's home site so equal-score ties resolve
// toward home first, then the nearest following site — the same
// forward-probe symmetry the whisk controller uses for its
// home-invoker routing. That keeps warm-container affinity when
// signals are flat and makes every policy collapse to "home unless
// dead" in a 1-site federation.

// latencyWeighted routes to the healthy site with the lowest recent
// successful end-to-end latency (EWMA). A site that has not served a
// success yet reports 0 and therefore wins the scan — new or recovered
// capacity gets probed immediately, after which its real latency takes
// over. rFaaS makes the case for this signal: at high QPS the
// per-invocation routing cost and hot-capacity placement dominate the
// tail.
type latencyWeighted struct{}

func (*latencyWeighted) Name() string { return "latency-weighted" }
func (*latencyWeighted) Init(int)     {}

func (*latencyWeighted) Pick(v View, _ string, home int) int {
	n := v.NumSites()
	best := NoSite
	var bestLat float64
	for k := 0; k < n; k++ {
		i := (home + k) % n
		if !v.Healthy(i) {
			continue
		}
		lat := v.Latency(i)
		if best == NoSite || lat < bestLat {
			best, bestLat = i, lat
		}
	}
	return best
}

// capacityWeighted routes to the healthy site with the most free
// harvested capacity: healthy invokers weighted by their idle share.
// It is the default federation policy — the direct generalization of
// the paper's "route to whoever has workers" to many clusters.
type capacityWeighted struct{}

func (*capacityWeighted) Name() string { return "capacity-weighted" }
func (*capacityWeighted) Init(int)     {}

func (*capacityWeighted) Pick(v View, _ string, home int) int {
	n := v.NumSites()
	best := NoSite
	var bestFree float64
	for k := 0; k < n; k++ {
		i := (home + k) % n
		if !v.Healthy(i) {
			continue
		}
		free := float64(v.HealthyInvokers(i)) * (1 - v.Utilization(i))
		if best == NoSite || free > bestFree {
			best, bestFree = i, free
		}
	}
	return best
}

// spillUtilization is the load threshold above which spill-over stops
// considering a site "comfortable" and probes onward.
const spillUtilization = 0.9

// spillOver keeps every request on its home site while the home is
// healthy and below the saturation threshold, and only then probes
// forward — first for a healthy unsaturated site, falling back to any
// healthy site. It maximizes locality (warm containers, per-site
// accounting) at the price of slower load spreading.
type spillOver struct{}

func (*spillOver) Name() string { return "spill-over" }
func (*spillOver) Init(int)     {}

func (*spillOver) Pick(v View, _ string, home int) int {
	n := v.NumSites()
	fallback := NoSite
	for k := 0; k < n; k++ {
		i := (home + k) % n
		if !v.Healthy(i) {
			continue
		}
		if v.Utilization(i) < spillUtilization {
			return i
		}
		if fallback == NoSite {
			fallback = i
		}
	}
	return fallback
}

// drainPenalty is how many queued requests one draining invoker
// "costs" in the fast-lane-aware score: a drain moves the invoker's
// unpulled topic onto the fast lane after the status-propagation
// delay, so a site mid-hand-off is about to grow its backlog even if
// the queues look short right now.
const drainPenalty = 8

// fastLaneAware routes to the healthy site with the smallest projected
// backlog: queued requests plus the fast-lane depth (work displaced by
// §III-C hand-offs competes for the next free slots) plus a penalty
// per draining invoker. It reacts to reclaim storms a utilization
// signal only sees after the queues have already built up.
type fastLaneAware struct{}

func (*fastLaneAware) Name() string { return "fast-lane-aware" }
func (*fastLaneAware) Init(int)     {}

func (*fastLaneAware) Pick(v View, _ string, home int) int {
	n := v.NumSites()
	best := NoSite
	bestScore := 0
	for k := 0; k < n; k++ {
		i := (home + k) % n
		if !v.Healthy(i) {
			continue
		}
		score := v.QueueDepth(i) + v.FastLaneDepth(i) + drainPenalty*v.Draining(i)
		if best == NoSite || score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}
