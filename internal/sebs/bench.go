package sebs

import (
	"fmt"
	"time"
)

// Function names of the compute-intensive SeBS subset used in §V-D.
const (
	FnBFS      = "bfs"
	FnMST      = "mst"
	FnPageRank = "pagerank"
)

// Functions lists the benchmarked function names in the paper's order.
func Functions() []string { return []string{FnBFS, FnMST, FnPageRank} }

// Workload bundles a generated input graph with runnable kernels.
type Workload struct {
	Graph *Graph
}

// NewWorkload generates the benchmark input: a graph sized so one
// invocation runs for tens of milliseconds, matching the "warm"
// per-invocation times of Fig. 7.
func NewWorkload(n, deg int, seed int64) *Workload {
	return &Workload{Graph: GenerateGraph(n, deg, seed)}
}

// Run executes one named kernel and returns a scalar checksum (so the
// compiler cannot elide the work).
func (w *Workload) Run(fn string) float64 {
	switch fn {
	case FnBFS:
		r := BFS(w.Graph, 0)
		return float64(r.Visited) + float64(r.SumDepth)
	case FnMST:
		r := MST(w.Graph)
		return r.Weight + float64(r.Edges)
	case FnPageRank:
		r := PageRank(w.Graph, 0.85, 50, 1e-8)
		return r.TopRank*1e6 + float64(r.Iterations)
	default:
		panic(fmt.Sprintf("sebs: unknown function %q", fn))
	}
}

// Platform scales measured kernel times into platform-observed times,
// standing in for the hardware difference between a Prometheus node and
// an AWS Lambda slot (§V-D): Lambda's CPU share scales with the memory
// size and its virtualized cores run slower than the HPC node's Xeons.
type Platform struct {
	Name string
	// SpeedFactor divides compute speed: observed = measured / SpeedFactor.
	SpeedFactor float64
}

// Prometheus is the HPC-node platform (reference speed).
func Prometheus() Platform { return Platform{Name: "Prometheus", SpeedFactor: 1.0} }

// Observe converts a measured kernel duration into the platform's
// observed duration.
func (p Platform) Observe(measured time.Duration) time.Duration {
	return time.Duration(float64(measured) / p.SpeedFactor)
}

// Measurement is one warm invocation's internal execution time.
type Measurement struct {
	Function string
	Platform string
	Internal time.Duration
}

// RunBenchmark performs `invocations` warm runs of each function on the
// given platforms, timing the real kernels and scaling by platform
// speed. A warm-up run per function is discarded, mirroring §V-D's
// focus on warm performance.
func RunBenchmark(w *Workload, platforms []Platform, invocations int, timer func(func()) time.Duration) []Measurement {
	if timer == nil {
		timer = WallTimer
	}
	var out []Measurement
	for _, fn := range Functions() {
		w.Run(fn) // warm-up, discarded
		for i := 0; i < invocations; i++ {
			measured := timer(func() { w.Run(fn) })
			for _, p := range platforms {
				out = append(out, Measurement{
					Function: fn,
					Platform: p.Name,
					Internal: p.Observe(measured),
				})
			}
		}
	}
	return out
}

// WallTimer times fn with the wall clock.
func WallTimer(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
