// Package sebs implements the compute-intensive functions of the SeBS
// serverless benchmark suite used in §V-D of the paper — bfs, mst, and
// pagerank — as real algorithms over generated graphs, plus the sleep
// function used by the responsiveness experiment of §V-C. Fig. 7 runs
// these exact implementations under two platform speed models.
package sebs

import (
	"math/rand"

	"repro/internal/dist"
)

// Graph is a directed graph in compressed adjacency form. For the MST
// benchmark the graph is interpreted as undirected with edge weights.
type Graph struct {
	N       int
	AdjOff  []int32 // length N+1; edges of v are Adj[AdjOff[v]:AdjOff[v+1]]
	Adj     []int32
	Weights []float64 // parallel to Adj (used by MST)
}

// Edges returns the number of directed edges.
func (g *Graph) Edges() int { return len(g.Adj) }

// Out returns the adjacency slice of v.
func (g *Graph) Out(v int32) []int32 { return g.Adj[g.AdjOff[v]:g.AdjOff[v+1]] }

// GenerateGraph builds a pseudo-random graph with n vertices and
// average out-degree deg, deterministically for a seed. Edge endpoints
// follow a preferential-bias mix (80% uniform, 20% to low ids) so the
// degree distribution is skewed like the Graph500/SeBS inputs.
func GenerateGraph(n, deg int, seed int64) *Graph {
	if n <= 0 || deg <= 0 {
		panic("sebs: graph needs positive size and degree")
	}
	r := dist.NewRand(seed)
	m := n * deg
	g := &Graph{
		N:       n,
		AdjOff:  make([]int32, n+1),
		Adj:     make([]int32, m),
		Weights: make([]float64, m),
	}
	// Draw per-vertex degrees around deg (±deg/2), then lay out edges.
	degrees := make([]int32, n)
	remaining := m
	for v := 0; v < n; v++ {
		d := deg/2 + r.Intn(deg+1)
		if d > remaining {
			d = remaining
		}
		if v == n-1 {
			d = remaining
		}
		degrees[v] = int32(d)
		remaining -= d
	}
	off := int32(0)
	for v := 0; v < n; v++ {
		g.AdjOff[v] = off
		off += degrees[v]
	}
	g.AdjOff[n] = off
	for v := 0; v < n; v++ {
		for i := g.AdjOff[v]; i < g.AdjOff[v+1]; i++ {
			var to int32
			if r.Float64() < 0.2 {
				// Preferential: low ids act as hubs.
				to = int32(r.Intn(n/16 + 1))
			} else {
				to = int32(r.Intn(n))
			}
			g.Adj[i] = to
			g.Weights[i] = r.Float64()*9.0 + 1.0
		}
	}
	return g
}

// randPerm fills a deterministic permutation (used by tests and by the
// MST edge shuffle).
func randPerm(n int, r *rand.Rand) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
