package sebs

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// line builds the path graph 0→1→2→…→n-1 with unit weights.
func line(n int) *Graph {
	g := &Graph{N: n, AdjOff: make([]int32, n+1)}
	for v := 0; v < n-1; v++ {
		g.Adj = append(g.Adj, int32(v+1))
		g.Weights = append(g.Weights, 1)
	}
	for v := 0; v <= n; v++ {
		if v < n-1 {
			g.AdjOff[v] = int32(v)
		} else {
			g.AdjOff[v] = int32(n - 1)
		}
	}
	return g
}

func TestBFSLineGraph(t *testing.T) {
	g := line(10)
	r := BFS(g, 0)
	if r.Visited != 10 {
		t.Errorf("visited = %d, want 10", r.Visited)
	}
	if r.MaxDepth != 9 {
		t.Errorf("max depth = %d, want 9", r.MaxDepth)
	}
	if r.SumDepth != 45 { // 1+2+...+9
		t.Errorf("sum depth = %d, want 45", r.SumDepth)
	}
}

func TestBFSFromMiddle(t *testing.T) {
	g := line(10)
	r := BFS(g, 5)
	if r.Visited != 5 { // 5..9 reachable
		t.Errorf("visited = %d, want 5", r.Visited)
	}
}

func TestMSTTriangle(t *testing.T) {
	// Triangle 0-1 (w=1), 1-2 (w=2), 0-2 (w=10): MST = {1,2} weight 3.
	g := &Graph{
		N:       3,
		AdjOff:  []int32{0, 2, 3, 3},
		Adj:     []int32{1, 2, 2},
		Weights: []float64{1, 10, 2},
	}
	r := MST(g)
	if r.Edges != 2 {
		t.Errorf("edges = %d, want 2", r.Edges)
	}
	if math.Abs(r.Weight-3) > 1e-12 {
		t.Errorf("weight = %v, want 3", r.Weight)
	}
}

func TestMSTDisconnected(t *testing.T) {
	// Two components: {0,1} and {2,3} → forest with 2 edges.
	g := &Graph{
		N:       4,
		AdjOff:  []int32{0, 1, 1, 2, 2},
		Adj:     []int32{1, 3},
		Weights: []float64{5, 7},
	}
	r := MST(g)
	if r.Edges != 2 || math.Abs(r.Weight-12) > 1e-12 {
		t.Errorf("forest = %d edges / %v weight, want 2 / 12", r.Edges, r.Weight)
	}
}

func TestPageRankRing(t *testing.T) {
	// Symmetric ring: stationary distribution is uniform.
	n := 16
	g := &Graph{N: n, AdjOff: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		g.AdjOff[v] = int32(v)
		g.Adj = append(g.Adj, int32((v+1)%n))
		g.Weights = append(g.Weights, 1)
	}
	g.AdjOff[n] = int32(n)
	r := PageRank(g, 0.85, 100, 1e-12)
	want := 1.0 / float64(n)
	if math.Abs(r.TopRank-want) > 1e-6 {
		t.Errorf("top rank = %v, want uniform %v", r.TopRank, want)
	}
	if r.Iterations >= 100 {
		t.Errorf("did not converge: %d iterations, delta %v", r.Iterations, r.Delta)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := GenerateGraph(2000, 8, 3)
	// Re-derive the rank vector through a single authoritative run by
	// checking the invariant indirectly: top rank must lie in (1/n, 1).
	r := PageRank(g, 0.85, 60, 1e-9)
	if r.TopRank <= 1.0/float64(g.N) || r.TopRank >= 1 {
		t.Errorf("top rank %v outside (1/n, 1)", r.TopRank)
	}
}

func TestGenerateGraphShape(t *testing.T) {
	g := GenerateGraph(1000, 10, 7)
	if g.N != 1000 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Edges() != 10000 {
		t.Errorf("edges = %d, want 10000", g.Edges())
	}
	if int(g.AdjOff[g.N]) != len(g.Adj) {
		t.Error("adjacency offsets inconsistent")
	}
	for _, to := range g.Adj {
		if to < 0 || int(to) >= g.N {
			t.Fatalf("edge target %d out of range", to)
		}
	}
	for _, w := range g.Weights {
		if w < 1 || w > 10 {
			t.Fatalf("weight %v outside [1,10]", w)
		}
	}
}

func TestGenerateGraphDeterministic(t *testing.T) {
	a := GenerateGraph(500, 6, 42)
	b := GenerateGraph(500, 6, 42)
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] || a.Weights[i] != b.Weights[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestWorkloadRunChecksums(t *testing.T) {
	w := NewWorkload(2000, 8, 1)
	for _, fn := range Functions() {
		a := w.Run(fn)
		b := w.Run(fn)
		if a != b {
			t.Errorf("%s checksum not deterministic: %v vs %v", fn, a, b)
		}
		if a == 0 {
			t.Errorf("%s checksum is zero", fn)
		}
	}
}

func TestWorkloadUnknownFunctionPanics(t *testing.T) {
	w := NewWorkload(100, 4, 1)
	defer func() {
		if recover() == nil {
			t.Error("unknown function should panic")
		}
	}()
	w.Run("nope")
}

func TestPlatformObserve(t *testing.T) {
	p := Platform{Name: "half", SpeedFactor: 0.5}
	if got := p.Observe(time.Second); got != 2*time.Second {
		t.Errorf("observe = %v, want 2s", got)
	}
	if got := Prometheus().Observe(time.Second); got != time.Second {
		t.Errorf("prometheus observe = %v, want 1s", got)
	}
}

func TestRunBenchmarkScaling(t *testing.T) {
	w := NewWorkload(500, 4, 2)
	fakeTimer := func(fn func()) time.Duration {
		fn()
		return 100 * time.Millisecond
	}
	platforms := []Platform{Prometheus(), {Name: "slow", SpeedFactor: 0.8}}
	ms := RunBenchmark(w, platforms, 3, fakeTimer)
	if len(ms) != 3*2*len(Functions()) {
		t.Fatalf("measurements = %d, want %d", len(ms), 3*2*len(Functions()))
	}
	for _, m := range ms {
		switch m.Platform {
		case "Prometheus":
			if m.Internal != 100*time.Millisecond {
				t.Errorf("prometheus internal = %v", m.Internal)
			}
		case "slow":
			if m.Internal != 125*time.Millisecond {
				t.Errorf("slow internal = %v, want 125ms", m.Internal)
			}
		}
	}
}

// Property: BFS never visits more than N vertices and MST forests have
// fewer than N edges, over random graphs.
func TestPropertyGraphInvariants(t *testing.T) {
	f := func(seed int64, rawN, rawDeg uint8) bool {
		n := int(rawN%200) + 2
		deg := int(rawDeg%8) + 1
		g := GenerateGraph(n, deg, seed)
		b := BFS(g, 0)
		if b.Visited < 1 || b.Visited > n {
			return false
		}
		m := MST(g)
		if m.Edges < 0 || m.Edges >= n {
			return false
		}
		pr := PageRank(g, 0.85, 30, 1e-7)
		return pr.TopRank > 0 && pr.TopRank <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
