package sebs

import (
	"math"
	"sort"
)

// BFSResult summarizes one breadth-first traversal.
type BFSResult struct {
	Visited  int
	MaxDepth int
	SumDepth int64
}

// BFS performs a breadth-first search from source and returns traversal
// statistics (the SeBS bfs kernel).
func BFS(g *Graph, source int32) BFSResult {
	depth := make([]int32, g.N)
	for i := range depth {
		depth[i] = -1
	}
	depth[source] = 0
	queue := make([]int32, 0, g.N)
	queue = append(queue, source)
	res := BFSResult{Visited: 1}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d := depth[v]
		for _, to := range g.Out(v) {
			if depth[to] < 0 {
				depth[to] = d + 1
				res.Visited++
				res.SumDepth += int64(d + 1)
				if int(d+1) > res.MaxDepth {
					res.MaxDepth = int(d + 1)
				}
				queue = append(queue, to)
			}
		}
	}
	return res
}

// MSTResult summarizes a minimum-spanning-forest computation.
type MSTResult struct {
	Edges  int
	Weight float64
}

// MST computes a minimum spanning forest with Kruskal's algorithm over
// the graph interpreted as undirected (the SeBS mst kernel).
func MST(g *Graph) MSTResult {
	type edge struct {
		u, v int32
		w    float64
	}
	edges := make([]edge, 0, g.Edges())
	for u := int32(0); u < int32(g.N); u++ {
		for i := g.AdjOff[u]; i < g.AdjOff[u+1]; i++ {
			v := g.Adj[i]
			if u == v {
				continue
			}
			edges = append(edges, edge{u: u, v: v, w: g.Weights[i]})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })

	parent := make([]int32, g.N)
	rank := make([]int8, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	var res MSTResult
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru == rv {
			continue
		}
		if rank[ru] < rank[rv] {
			ru, rv = rv, ru
		}
		parent[rv] = ru
		if rank[ru] == rank[rv] {
			rank[ru]++
		}
		res.Edges++
		res.Weight += e.w
		if res.Edges == g.N-1 {
			break
		}
	}
	return res
}

// PageRankResult summarizes a power-iteration PageRank run.
type PageRankResult struct {
	Iterations int
	TopRank    float64
	Delta      float64
}

// PageRank runs damped power iteration until the L1 delta falls below
// eps or maxIter is reached (the SeBS pagerank kernel).
func PageRank(g *Graph, damping float64, maxIter int, eps float64) PageRankResult {
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1.0 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	outDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		outDeg[v] = float64(g.AdjOff[v+1] - g.AdjOff[v])
	}
	var res PageRankResult
	for it := 0; it < maxIter; it++ {
		base := (1 - damping) * inv
		var dangling float64
		for v := 0; v < n; v++ {
			next[v] = base
		}
		for v := int32(0); v < int32(n); v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
				continue
			}
			share := damping * rank[v] / outDeg[v]
			for _, to := range g.Out(v) {
				next[to] += share
			}
		}
		spread := damping * dangling * inv
		delta := 0.0
		top := 0.0
		for v := 0; v < n; v++ {
			next[v] += spread
			delta += math.Abs(next[v] - rank[v])
			if next[v] > top {
				top = next[v]
			}
		}
		rank, next = next, rank
		res.Iterations = it + 1
		res.Delta = delta
		res.TopRank = top
		if delta < eps {
			break
		}
	}
	return res
}
