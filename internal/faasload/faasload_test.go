package faasload

import (
	"testing"
	"time"

	"repro/internal/dist"
)

func TestBuildShape(t *testing.T) {
	w := DefaultSpec(200, 1).Build()
	if len(w.Functions) != 200 {
		t.Fatalf("functions = %d", len(w.Functions))
	}
	names := map[string]bool{}
	for _, f := range w.Functions {
		if names[f.Action.Name] {
			t.Fatalf("duplicate name %s", f.Action.Name)
		}
		names[f.Action.Name] = true
		if f.Weight <= 0 {
			t.Fatalf("non-positive weight for %s", f.Action.Name)
		}
		if f.Action.MemoryMB < 128 || f.Action.MemoryMB > 2048 {
			t.Fatalf("memory %d out of range", f.Action.MemoryMB)
		}
	}
}

// TestAzureCalibration checks the [2] quantiles: ≈50% of functions have
// medians under 3 s, ≈90% under a minute.
func TestAzureCalibration(t *testing.T) {
	w := DefaultSpec(4000, 2).Build()
	under3, under60 := 0, 0
	for _, f := range w.Functions {
		if f.Median <= 3*time.Second {
			under3++
		}
		if f.Median <= time.Minute {
			under60++
		}
	}
	n := float64(len(w.Functions))
	if f := float64(under3) / n; f < 0.45 || f > 0.56 {
		t.Errorf("share under 3s = %.3f, want ≈0.50", f)
	}
	if f := float64(under60) / n; f < 0.85 || f > 0.95 {
		t.Errorf("share under 60s = %.3f, want ≈0.90", f)
	}
}

func TestClassification(t *testing.T) {
	cases := map[time.Duration]Class{
		time.Second:      ClassShort,
		3 * time.Second:  ClassShort,
		10 * time.Second: ClassMedium,
		time.Minute:      ClassLong,
	}
	for d, want := range cases {
		if got := Classify(d); got != want {
			t.Errorf("Classify(%v) = %v, want %v", d, got, want)
		}
	}
}

func TestLongFunctionsNotInterruptible(t *testing.T) {
	w := DefaultSpec(2000, 3).Build()
	for _, f := range w.Functions {
		if f.Class == ClassLong && f.Action.Interruptible {
			t.Fatalf("long function %s is interruptible", f.Action.Name)
		}
		if f.Class == ClassShort && !f.Action.Interruptible {
			t.Fatalf("short function %s is not interruptible", f.Action.Name)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	w := DefaultSpec(100, 4).Build()
	weights := w.Weights()
	var top10, total float64
	for i, wt := range weights {
		total += wt
		if i < 10 {
			top10 += wt
		}
	}
	if share := top10 / total; share < 0.6 {
		t.Errorf("top-10 weight share = %.3f, want heavy skew", share)
	}
	// Weights strictly decreasing with rank.
	for i := 1; i < len(weights); i++ {
		if weights[i] >= weights[i-1] {
			t.Fatal("weights not decreasing with rank")
		}
	}
}

func TestExecModelRespectsCap(t *testing.T) {
	spec := DefaultSpec(50, 5)
	spec.MaxExec = 10 * time.Second
	w := spec.Build()
	r := dist.NewRand(6)
	for _, f := range w.Functions {
		for i := 0; i < 50; i++ {
			if d := f.Action.Exec(r); d > 10*time.Second {
				t.Fatalf("%s exec %v above cap", f.Action.Name, d)
			}
		}
	}
}

func TestClassOfAndShares(t *testing.T) {
	w := DefaultSpec(500, 7).Build()
	shares := w.ClassShares()
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("class shares sum to %v", sum)
	}
	first := w.Functions[0]
	if got := w.ClassOf(first.Action.Name); got != first.Class {
		t.Errorf("ClassOf = %v, want %v", got, first.Class)
	}
	if w.ClassOf("nope") != "" {
		t.Error("unknown name should map to empty class")
	}
}

func TestDeterminism(t *testing.T) {
	a := DefaultSpec(100, 42).Build()
	b := DefaultSpec(100, 42).Build()
	for i := range a.Functions {
		if a.Functions[i].Median != b.Functions[i].Median ||
			a.Functions[i].Action.Name != b.Functions[i].Action.Name {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestNamesAligned(t *testing.T) {
	w := DefaultSpec(10, 8).Build()
	names := w.Names()
	for i, f := range w.Functions {
		if names[i] != f.Action.Name {
			t.Fatal("names misaligned")
		}
	}
}
