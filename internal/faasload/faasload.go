// Package faasload generates a realistic, heterogeneous FaaS invocation
// workload calibrated to the Azure Functions characterization the paper
// cites as its motivation ([2], Shahrad et al., USENIX ATC'20): half of
// all invocations complete within ~3 seconds, 90% within a minute, and
// function popularity is so skewed that a handful of hot functions
// dominate traffic. The paper names benchmarking HPC-Whisk under "a
// representative scientific FaaS workload" as future work (§VII); this
// package, together with experiments.RunScientific, implements it.
package faasload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dist"
	"repro/internal/whisk"
)

// Class buckets functions by their median execution time.
type Class string

// Function classes: Short completes within 3 s (the Azure median band),
// Medium within 30 s, Long above that. Long functions are registered as
// non-interruptible — §III-C warns that calls running longer than the
// grace period can fail on preemption, which RunScientific measures.
const (
	ClassShort  Class = "short"
	ClassMedium Class = "medium"
	ClassLong   Class = "long"
)

// Spec parameterizes the workload.
type Spec struct {
	Functions int
	Seed      int64

	// MedianSeconds draws each function's median execution time; the
	// default matches "50% under 3 s, 90% under 60 s".
	MedianSeconds dist.Dist

	// JitterSigma is the lognormal sigma of per-invocation variation
	// around the function's median.
	JitterSigma float64

	// MaxExec caps a single execution (the platform's function-runtime
	// ceiling).
	MaxExec time.Duration

	// ZipfS is the popularity skew exponent: weight(rank) = rank^-s.
	ZipfS float64

	// MemoryMB draws per-function memory sizes.
	MemoryMB dist.Dist
}

// DefaultSpec returns the Azure-calibrated workload over n functions.
func DefaultSpec(n int, seed int64) Spec {
	return Spec{
		Functions:     n,
		Seed:          seed,
		MedianSeconds: dist.LognormalFromQuantiles(3.0, 60.0, 0.90),
		JitterSigma:   0.25,
		MaxExec:       240 * time.Second,
		ZipfS:         1.4,
		MemoryMB: dist.NewDiscrete(
			[]float64{128, 256, 512, 1024, 2048},
			[]float64{30, 35, 20, 10, 5},
		),
	}
}

// Function is one deployed function with its popularity weight.
type Function struct {
	Action *whisk.Action
	Weight float64
	Class  Class
	Median time.Duration
}

// Workload is a generated set of functions.
type Workload struct {
	Functions []Function
}

// Build materializes the workload deterministically.
func (s Spec) Build() *Workload {
	if s.Functions <= 0 {
		panic("faasload: need at least one function")
	}
	r := dist.NewRand(s.Seed)
	w := &Workload{Functions: make([]Function, s.Functions)}
	for i := 0; i < s.Functions; i++ {
		medianSec := s.MedianSeconds.Sample(r)
		maxSec := s.MaxExec.Seconds()
		if medianSec > maxSec {
			medianSec = maxSec
		}
		median := time.Duration(medianSec * float64(time.Second))
		class := Classify(median)
		exec := execModel(medianSec, s.JitterSigma, maxSec)
		fn := Function{
			Action: &whisk.Action{
				Name:     fmt.Sprintf("fn-%s-%03d", class, i),
				MemoryMB: int(s.MemoryMB.Sample(r)),
				Exec:     exec,
				// Long-running functions opt out of mid-execution
				// interruption (§III-C's non-atomic side-effect caveat).
				Interruptible: class != ClassLong,
			},
			Weight: math.Pow(float64(i+1), -s.ZipfS),
			Class:  class,
			Median: median,
		}
		w.Functions[i] = fn
	}
	return w
}

// Classify buckets a median execution time.
func Classify(median time.Duration) Class {
	switch {
	case median <= 3*time.Second:
		return ClassShort
	case median <= 30*time.Second:
		return ClassMedium
	default:
		return ClassLong
	}
}

func execModel(medianSec, sigma, maxSec float64) whisk.ExecFunc {
	ln := dist.Lognormal{Mu: math.Log(medianSec), Sigma: sigma}
	capped := dist.Clamped{D: ln, Min: 0.001, Max: maxSec}
	return whisk.DistExec(capped)
}

// Register deploys every function on a controller.
func (w *Workload) Register(ctrl *whisk.Controller) {
	for _, f := range w.Functions {
		ctrl.RegisterAction(f.Action)
	}
}

// Names returns the action names in declaration order.
func (w *Workload) Names() []string {
	out := make([]string, len(w.Functions))
	for i, f := range w.Functions {
		out[i] = f.Action.Name
	}
	return out
}

// Weights returns the popularity weights aligned with Names.
func (w *Workload) Weights() []float64 {
	out := make([]float64, len(w.Functions))
	for i, f := range w.Functions {
		out[i] = f.Weight
	}
	return out
}

// ClassOf maps an action name back to its class ("" if unknown).
func (w *Workload) ClassOf(name string) Class {
	for _, f := range w.Functions {
		if f.Action.Name == name {
			return f.Class
		}
	}
	return ""
}

// ClassShares returns the share of functions per class.
func (w *Workload) ClassShares() map[Class]float64 {
	counts := map[Class]int{}
	for _, f := range w.Functions {
		counts[f.Class]++
	}
	out := map[Class]float64{}
	for c, n := range counts {
		out[c] = float64(n) / float64(len(w.Functions))
	}
	return out
}
