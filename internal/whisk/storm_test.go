package whisk

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/dist"
)

// stormLog runs a randomized register/drain/kill/invoke storm through
// the request path and returns the completion log: one line per
// finished invocation with every client-observable field. The storm
// mixes interruptible and atomic actions, graceful drains (with and
// without mid-execution interruption), hard kills, and random clock
// advances, so every pooling-sensitive path — publish, timeout,
// fast-lane requeue, reject-under-pressure, rot-after-kill — gets
// exercised.
func stormLog(t *testing.T, pooled bool, seed int64) []string {
	t.Helper()
	sim := des.New()
	b := bus.New(sim, nil, seed+1)
	cfg := DefaultControllerConfig()
	cfg.PoolInvocations = pooled
	// Short enough that the Uniform(0.01, 2.0)s executions regularly
	// outlive the client timeout, so the storm reaches the
	// timeout-while-executing states (and their drain/kill interrupts),
	// not just clean completions.
	cfg.ActionTimeout = 1500 * time.Millisecond
	c := NewController(sim, b, cfg, seed+2)

	actions := make([]string, 8)
	for i := range actions {
		actions[i] = fmt.Sprintf("storm-%d", i)
		c.RegisterAction(&Action{
			Name:          actions[i],
			MemoryMB:      256,
			Exec:          DistExec(dist.Uniform{Lo: 0.01, Hi: 2.0}),
			Interruptible: i%2 == 0,
		})
	}

	var log []string
	c.OnComplete = func(inv *Invocation) {
		log = append(log, fmt.Sprintf("%d %s %v sub=%v rt=%v ex=%v cp=%v rq=%d inv=%d cold=%v",
			inv.ID, inv.Action.Name, inv.Status, inv.Submitted, inv.Routed,
			inv.Executed, inv.Completed, inv.Requeues, inv.InvokerID, inv.ColdStart))
	}

	rng := dist.NewRand(seed + 3)
	icfg := DefaultInvokerConfig()
	icfg.BufferLimit = 8 // small enough that pressure rejects happen
	icfg.PullBatch = 4
	var invokers []*Invoker
	alive := func() []*Invoker {
		out := invokers[:0:0]
		for _, w := range invokers {
			if w.State() == InvokerHealthy {
				out = append(out, w)
			}
		}
		return out
	}

	for op := 0; op < 2500; op++ {
		switch rng.Intn(12) {
		case 0: // register a fresh invoker
			w := NewInvoker(icfg, rng.Int63())
			c.Register(w)
			invokers = append(invokers, w)
		case 1: // graceful drain of a random healthy invoker
			if up := alive(); len(up) > 0 {
				up[rng.Intn(len(up))].Sigterm(rng.Intn(2) == 0, nil)
			}
		case 2: // hard kill with work on board
			if up := alive(); len(up) > 0 {
				up[rng.Intn(len(up))].Kill()
			}
		case 3: // let virtual time pass
			sim.RunFor(time.Duration(rng.Intn(5000)) * time.Millisecond)
		default: // invoke (the storm is mostly traffic)
			c.Invoke(actions[rng.Intn(len(actions))], nil)
			sim.RunFor(time.Duration(rng.Intn(200)) * time.Millisecond)
		}
	}
	// Drain: past the action timeout so even rotting messages resolve.
	sim.RunFor(cfg.ActionTimeout + 5*time.Minute)

	if pooled && len(c.invPool) == 0 {
		t.Fatal("pooled storm never recycled an invocation — the comparison would be vacuous")
	}
	if c.Total != c.NSuccess+c.NFailed+c.NTimeout+c.N503 {
		t.Fatalf("storm leaked invocations: total=%d completed=%d",
			c.Total, c.NSuccess+c.NFailed+c.NTimeout+c.N503)
	}
	return log
}

// TestStormPooledMatchesUnpooledEventLog is the property test pinning
// the pooled request path to the allocating one: the same seeded storm
// replayed with pooling off (every invocation and message heap-fresh,
// the pre-refactor lifetime discipline) and with pooling on must
// produce identical completion logs, line for line. Any refcount slip —
// an invocation recycled while a queued message, a pending hop, or an
// executing invoker still referenced it — would surface as a diverging
// or panicking pooled run.
func TestStormPooledMatchesUnpooledEventLog(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plain := stormLog(t, false, seed)
			pooled := stormLog(t, true, seed)
			if len(plain) == 0 {
				t.Fatal("storm produced no completions")
			}
			if len(plain) != len(pooled) {
				t.Fatalf("completion counts diverged: %d unpooled vs %d pooled", len(plain), len(pooled))
			}
			for i := range plain {
				if plain[i] != pooled[i] {
					t.Fatalf("event %d diverged:\nunpooled: %s\npooled:   %s", i, plain[i], pooled[i])
				}
			}
		})
	}
}
