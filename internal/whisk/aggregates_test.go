package whisk

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/dist"
)

// checkAggregates cross-checks every maintained controller aggregate
// against the from-scratch scan oracle.
func checkAggregates(t *testing.T, c *Controller, op int) {
	t.Helper()
	healthy, draining, capacity, busy, backlog := c.recomputeAggregates()
	if c.nHealthy != healthy || c.nDraining != draining || c.healthyCap != capacity ||
		c.busyHealthy != busy || c.backlog != backlog {
		t.Fatalf("op %d: aggregates diverged from scan:\nlive: healthy=%d draining=%d cap=%d busy=%d backlog=%d\nscan: healthy=%d draining=%d cap=%d busy=%d backlog=%d",
			op, c.nHealthy, c.nDraining, c.healthyCap, c.busyHealthy, c.backlog,
			healthy, draining, capacity, busy, backlog)
	}
}

// checkIdleHeap verifies an invoker's idle min-heap invariants against
// the dense pool list: membership (exactly the sets with idle > 0,
// each knowing its index), the heap order, and — the property eviction
// relies on — root == the scan oracle's victim.
func checkIdleHeap(t *testing.T, w *Invoker, op int) {
	t.Helper()
	idleSets := 0
	for _, cs := range w.poolList {
		if cs.idle > 0 {
			idleSets++
			if cs.heapIdx < 0 || cs.heapIdx >= len(w.idleHeap) || w.idleHeap[cs.heapIdx] != cs {
				t.Fatalf("op %d: idle set %q not correctly in heap (heapIdx=%d)", op, cs.name, cs.heapIdx)
			}
		} else if cs.heapIdx != -1 {
			t.Fatalf("op %d: non-idle set %q still in heap (heapIdx=%d)", op, cs.name, cs.heapIdx)
		}
	}
	if idleSets != len(w.idleHeap) {
		t.Fatalf("op %d: heap has %d members, pool has %d idle sets", op, len(w.idleHeap), idleSets)
	}
	for i := 1; i < len(w.idleHeap); i++ {
		if idleLess(w.idleHeap[i], w.idleHeap[(i-1)/2]) {
			t.Fatalf("op %d: heap order violated at index %d", op, i)
		}
	}
	want := w.recomputeEvictionVictim()
	if len(w.idleHeap) == 0 {
		if want != nil {
			t.Fatalf("op %d: empty heap but oracle found victim %q", op, want.name)
		}
		return
	}
	if w.idleHeap[0] != want {
		t.Fatalf("op %d: heap victim %q != scan victim %q", op, w.idleHeap[0].name, want.name)
	}
}

// TestAggregateStormMatchesRecompute is the equivalence property test
// of the O(1) control-plane telemetry: after every operation of a
// randomized register/drain/kill/invoke storm, the incrementally
// maintained aggregates (HealthyCount, Utilization's numerator and
// denominator, DrainingCount, QueueDepth) must equal the from-scratch
// slot scans they replaced, and every invoker's eviction min-heap must
// agree with the dense-scan LRU oracle. Any future transition that
// forgets a counter update fails here loudly.
func TestAggregateStormMatchesRecompute(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sim := des.New()
			b := bus.New(sim, nil, seed+1)
			cfg := DefaultControllerConfig()
			cfg.ActionTimeout = 1500 * time.Millisecond
			c := NewController(sim, b, cfg, seed+2)

			actions := make([]string, 8)
			for i := range actions {
				actions[i] = fmt.Sprintf("agg-%d", i)
				c.RegisterAction(&Action{
					Name:          actions[i],
					MemoryMB:      256,
					Exec:          DistExec(dist.Uniform{Lo: 0.01, Hi: 2.0}),
					Interruptible: i%2 == 0,
				})
			}

			rng := dist.NewRand(seed + 3)
			icfg := DefaultInvokerConfig()
			icfg.BufferLimit = 8 // small enough that pressure rejects happen
			icfg.PullBatch = 4
			icfg.PoolLimit = 3 // far below the action count: evictions every few warm misses
			var invokers []*Invoker
			alive := func() []*Invoker {
				out := invokers[:0:0]
				for _, w := range invokers {
					if w.State() == InvokerHealthy {
						out = append(out, w)
					}
				}
				return out
			}

			for op := 0; op < 2500; op++ {
				switch rng.Intn(12) {
				case 0: // register a fresh invoker
					w := NewInvoker(icfg, rng.Int63())
					c.Register(w)
					invokers = append(invokers, w)
				case 1: // graceful drain of a random healthy invoker
					if up := alive(); len(up) > 0 {
						up[rng.Intn(len(up))].Sigterm(rng.Intn(2) == 0, nil)
					}
				case 2: // hard kill with work on board
					if up := alive(); len(up) > 0 {
						up[rng.Intn(len(up))].Kill()
					}
				case 3: // let virtual time pass
					sim.RunFor(time.Duration(rng.Intn(5000)) * time.Millisecond)
				default: // invoke (the storm is mostly traffic)
					c.Invoke(actions[rng.Intn(len(actions))], nil)
					sim.RunFor(time.Duration(rng.Intn(200)) * time.Millisecond)
				}
				checkAggregates(t, c, op)
				for _, w := range invokers {
					checkIdleHeap(t, w, op)
				}
			}
			// Drain past the action timeout so rotting messages resolve,
			// and check the quiesced end state once more.
			sim.RunFor(cfg.ActionTimeout + 5*time.Minute)
			checkAggregates(t, c, -1)
			var cold, warm int
			for _, w := range invokers {
				checkIdleHeap(t, w, -1)
				cold += w.ColdStarts
				warm += w.WarmStarts
			}
			if cold == 0 || warm == 0 {
				t.Fatalf("storm never exercised the container pool (cold=%d warm=%d) — the heap checks would be vacuous", cold, warm)
			}
		})
	}
}
