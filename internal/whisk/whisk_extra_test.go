package whisk

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/des"
)

// TestLRUEvictionUnderManyActions: with more actions than pool slots,
// idle containers of cold actions get evicted and re-cold-started.
func TestLRUEvictionUnderManyActions(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	c := NewController(sim, b, DefaultControllerConfig(), 2)
	cfg := DefaultInvokerConfig()
	cfg.PoolLimit = 4
	cfg.Capacity = 4
	w := NewInvoker(cfg, 7)
	c.Register(w)
	for i := 0; i < 12; i++ {
		c.RegisterAction(sleepAction(fmt.Sprintf("lru%d", i)))
	}
	// Two rounds over 12 actions with a 4-container pool: every call
	// cold starts.
	for round := 0; round < 2; round++ {
		for i := 0; i < 12; i++ {
			c.Invoke(fmt.Sprintf("lru%d", i), nil)
			sim.RunFor(5 * time.Second)
		}
	}
	sim.RunFor(time.Minute)
	if w.WarmStarts > 2 {
		t.Errorf("warm starts = %d with a thrashing pool, want ≈0", w.WarmStarts)
	}
	if w.ColdStarts < 20 {
		t.Errorf("cold starts = %d, want ≈24", w.ColdStarts)
	}
	if w.containers > cfg.PoolLimit {
		t.Errorf("containers = %d above pool limit %d", w.containers, cfg.PoolLimit)
	}
}

// TestWarmReuseKeepsPoolStable: a single hot action stays warm.
func TestWarmReuseKeepsPoolStable(t *testing.T) {
	sim, c, ws := newSystem(1)
	c.RegisterAction(sleepAction("hot"))
	for i := 0; i < 20; i++ {
		c.Invoke("hot", nil)
		sim.RunFor(5 * time.Second)
	}
	sim.RunFor(time.Minute)
	w := ws[0]
	if w.ColdStarts != 1 {
		t.Errorf("cold starts = %d, want exactly 1", w.ColdStarts)
	}
	if w.WarmStarts != 19 {
		t.Errorf("warm starts = %d, want 19", w.WarmStarts)
	}
}

// TestDrainingInvokerStopsPolling: after SIGTERM, fast-lane messages
// stay for the survivors.
func TestDrainingInvokerStopsPolling(t *testing.T) {
	sim, c, ws := newSystem(2)
	c.RegisterAction(&Action{Name: "d", Exec: FixedExec(30 * time.Second), Interruptible: false})
	// Occupy the non-owner so we know who should pull the fast lane.
	owner := c.pickInvoker(c.Action("d"))
	other := ws[0]
	if owner == ws[0] {
		other = ws[1]
	}
	_ = other
	c.Invoke("d", nil)
	sim.RunFor(2 * time.Second)
	owner.Sigterm(false, nil)
	// The running non-interruptible call keeps the owner draining.
	if owner.State() != InvokerDraining {
		t.Fatalf("owner state = %v", owner.State())
	}
	// Messages pushed to the fast lane are pulled by the survivor, not
	// the draining owner.
	var got *Invocation
	c.Invoke("d", func(inv *Invocation) { got = inv })
	sim.RunUntil(sim.Now() + 2*time.Minute)
	if got == nil || got.Status != StatusSuccess {
		t.Fatalf("second call lost: %+v", got)
	}
	if got.InvokerID == owner.Slot() {
		t.Error("draining invoker executed new work")
	}
}

// TestRequeueCountsHops: interrupted work records its fast-lane hops.
func TestRequeueCountsHops(t *testing.T) {
	sim, c, ws := newSystem(2)
	c.RegisterAction(&Action{Name: "hop", Exec: FixedExec(20 * time.Second), Interruptible: true})
	var got *Invocation
	c.Invoke("hop", func(inv *Invocation) { got = inv })
	sim.RunFor(3 * time.Second)
	owner := c.pickInvoker(c.Action("hop"))
	owner.Sigterm(true, nil)
	sim.RunFor(2 * time.Second)
	// Interrupt the second executor too.
	for _, w := range ws {
		if w.State() == InvokerHealthy && w.Running() > 0 {
			w.Sigterm(true, nil)
		}
	}
	// No healthy invoker remains; register a fresh one to finish.
	c.Register(NewInvoker(DefaultInvokerConfig(), 99))
	sim.RunUntil(sim.Now() + 3*time.Minute)
	if got == nil {
		t.Fatal("invocation never completed")
	}
	if got.Status != StatusSuccess {
		t.Fatalf("status = %v", got.Status)
	}
	if got.Requeues < 2 {
		t.Errorf("requeues = %d, want ≥2 hops", got.Requeues)
	}
}

// TestControllerCountersConsistent after mixed outcomes.
func TestControllerCountersConsistent(t *testing.T) {
	sim, c, ws := newSystem(1)
	c.RegisterAction(sleepAction("k"))
	total := 40
	for i := 0; i < total; i++ {
		c.Invoke("k", nil)
		sim.RunFor(time.Second)
	}
	sim.Schedule(sim.Now()+time.Second, func() { ws[0].Kill() })
	for i := 0; i < total; i++ {
		c.Invoke("k", nil)
		sim.RunFor(time.Second)
	}
	sim.RunUntil(sim.Now() + 3*time.Minute)
	sum := c.NSuccess + c.NFailed + c.NTimeout + c.N503
	if sum != 2*total {
		t.Errorf("counter sum = %d, want %d", sum, 2*total)
	}
	if c.N503 == 0 {
		t.Error("expected 503s after the only invoker died")
	}
}

// TestInvocationLatencyFields: timestamps are ordered.
func TestInvocationLatencyFields(t *testing.T) {
	sim, c, _ := newSystem(1)
	c.RegisterAction(sleepAction("ts"))
	var got *Invocation
	c.Invoke("ts", func(inv *Invocation) { got = inv })
	sim.RunUntil(time.Minute)
	if got == nil {
		t.Fatal("no completion")
	}
	if !(got.Submitted <= got.Routed && got.Routed <= got.Completed) {
		t.Errorf("timestamps out of order: %v / %v / %v",
			got.Submitted, got.Routed, got.Completed)
	}
	if got.Latency() <= 0 {
		t.Error("non-positive latency")
	}
}

// TestStatusStrings covers the Stringers.
func TestStatusStrings(t *testing.T) {
	want := map[fmt.Stringer]string{
		StatusPending:   "pending",
		StatusSuccess:   "success",
		StatusFailed:    "failed",
		StatusTimeout:   "timeout",
		Status503:       "503",
		InvokerHealthy:  "healthy",
		InvokerDraining: "draining",
		InvokerGone:     "gone",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%v.String() = %q, want %q", v, v.String(), s)
		}
	}
	if Status(99).String() != "unknown" || InvokerState(99).String() != "unknown" {
		t.Error("unknown values should render as unknown")
	}
}

// TestDoubleSigtermIsNoop: a second SIGTERM does not restart the drain.
func TestDoubleSigtermIsNoop(t *testing.T) {
	sim, c, ws := newSystem(1)
	c.RegisterAction(sleepAction("x"))
	drains := 0
	ws[0].Sigterm(false, func() { drains++ })
	ws[0].Sigterm(false, func() { drains++ })
	sim.RunUntil(time.Minute)
	if drains != 1 {
		t.Errorf("drain callbacks = %d, want 1", drains)
	}
}

// TestDuplicateActionPanics.
func TestDuplicateActionPanics(t *testing.T) {
	_, c, _ := newSystem(1)
	c.RegisterAction(sleepAction("dup"))
	defer func() {
		if recover() == nil {
			t.Error("duplicate action should panic")
		}
	}()
	c.RegisterAction(sleepAction("dup"))
}

// TestUnknownActionPanics.
func TestUnknownActionPanics(t *testing.T) {
	_, c, _ := newSystem(1)
	defer func() {
		if recover() == nil {
			t.Error("unknown action should panic")
		}
	}()
	c.Invoke("ghost", nil)
}

// TestOverflowSpillsToOtherInvoker: when the home invoker saturates,
// the controller load-balances to a less-loaded one (§II).
func TestOverflowSpillsToOtherInvoker(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	c := NewController(sim, b, DefaultControllerConfig(), 2)
	cfg := DefaultInvokerConfig()
	cfg.Capacity = 1
	cfg.BufferLimit = 6
	w0 := NewInvoker(cfg, 7)
	w1 := NewInvoker(cfg, 8)
	c.Register(w0)
	c.Register(w1)
	c.RegisterAction(&Action{Name: "spill", Exec: FixedExec(30 * time.Second), Interruptible: true})
	seen := map[int]bool{}
	for i := 0; i < 12; i++ {
		c.Invoke("spill", func(inv *Invocation) {
			if inv.Status == StatusSuccess {
				seen[inv.InvokerID] = true
			}
		})
		sim.RunFor(500 * time.Millisecond)
	}
	sim.RunUntil(sim.Now() + 10*time.Minute)
	if len(seen) != 2 {
		t.Errorf("successes landed on %d invokers, want spill to both", len(seen))
	}
}
