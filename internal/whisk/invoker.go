package whisk

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bus"
	"repro/internal/checkpoint"
	"repro/internal/des"
	"repro/internal/dist"
)

// InvokerState is the controller-visible status of a worker, reported
// continuously by the extended status messages of §III-C.
type InvokerState uint8

// Worker states: Healthy accepts and executes work; Draining received
// SIGTERM and hands off its queue; Gone deregistered (or was killed).
const (
	InvokerHealthy InvokerState = iota
	InvokerDraining
	InvokerGone
)

// String implements fmt.Stringer.
func (s InvokerState) String() string {
	switch s {
	case InvokerHealthy:
		return "healthy"
	case InvokerDraining:
		return "draining"
	case InvokerGone:
		return "gone"
	default:
		return "unknown"
	}
}

// InvokerConfig models one OpenWhisk invoker on a cluster node.
type InvokerConfig struct {
	// Capacity is the maximum number of concurrently running container
	// processes (the limit whose saturation caused failed invocations
	// in §V-C).
	Capacity int

	// PoolLimit caps total containers (warm idle + running); creating
	// past it evicts the least-recently-used idle container.
	PoolLimit int

	// PollInterval is the topic-pull period; the fast lane is always
	// pulled before the invoker's own topic (§III-C).
	PollInterval time.Duration

	// PullBatch bounds messages taken per poll.
	PullBatch int

	// BufferLimit bounds the internal buffer; arrivals beyond it fail
	// immediately (container-limit pressure).
	BufferLimit int

	ColdStartSeconds dist.Dist // container creation (≈0.5 s, §II)
	WarmStartSeconds dist.Dist // dispatch into a warm container

	// FailureProb is the base probability an execution errors.
	FailureProb float64
}

// DefaultInvokerConfig returns a Prometheus-node-like invoker model
// (24-core node hosting up to 16 concurrent function containers).
func DefaultInvokerConfig() InvokerConfig {
	return InvokerConfig{
		Capacity:         16,
		PoolLimit:        48,
		PollInterval:     100 * time.Millisecond,
		PullBatch:        16,
		BufferLimit:      128,
		ColdStartSeconds: dist.Uniform{Lo: 0.35, Hi: 0.70},
		WarmStartSeconds: dist.Uniform{Lo: 0.005, Hi: 0.025},
		FailureProb:      0.01,
	}
}

// Invoker executes invocations on one node. It pulls the global fast
// lane before its own topic, keeps per-action warm containers, and
// implements the hand-off protocol when its pilot job gets SIGTERM.
//
// The dispatch/execute loop is allocation-free in steady state: polls
// pull straight into the reusable buffer (bus.PullAppend), consumed
// messages recycle to the bus pool, execution completion is a typed-arg
// des event on a cached method value, and the start latencies draw
// through cached samplers.
type Invoker struct {
	cfg InvokerConfig
	rng *rand.Rand

	cold, warm dist.Sampler // container start latencies over rng

	execDoneFn func(any) // cached method value for execution completion
	ckptDoneFn func(any) // cached method value for checkpoint-segment boundaries

	// ckptRng is the checkpoint subsystem's private stream, forked off
	// rng lazily by checkpointRng the first time a checkpointed
	// execution dispatches — so deployments without checkpointing draw
	// the exact sequence they always did.
	ckptRng *rand.Rand

	ctrl    *Controller
	slot    int
	topic   *bus.Topic
	state   InvokerState
	slotted bool // occupies a controller slot; gates all aggregate updates

	buffer  []*bus.Message
	running []*Invocation // insertion order (determinism matters)

	rejectBuf []*bus.Message  // scratch for the over-pressure drop path
	oneMsg    [1]*bus.Message // scratch for single-message requeues

	pool       map[string]*containerSet
	poolList   []*containerSet // dense view of pool (sets are never removed; the eviction oracle scans it)
	idleHeap   []*containerSet // min-heap over sets with idle > 0, keyed (lastUsed, name)
	containers int             // total containers (idle + busy)

	ticker *des.Ticker

	onDrained func()

	// Counters.
	Executed    int
	Failed      int
	ColdStarts  int
	WarmStarts  int
	Rejected    int
	Requeued    int
	Checkpoints int // completed checkpoint dumps
	Resumed     int // executions restored from a checkpoint here
}

type containerSet struct {
	name     string
	idle     int
	busy     int
	lastUsed des.Time
	heapIdx  int // position in the invoker's idle min-heap; -1 when idle == 0
}

// NewInvoker builds an invoker; it is inert until registered with a
// controller.
func NewInvoker(cfg InvokerConfig, seed int64) *Invoker {
	if cfg.Capacity <= 0 {
		panic("whisk: invoker needs capacity")
	}
	w := &Invoker{
		cfg:   cfg,
		rng:   dist.NewRand(seed),
		slot:  -1,
		state: InvokerGone,
		pool:  map[string]*containerSet{},
	}
	w.cold = dist.NewSampler(cfg.ColdStartSeconds, w.rng)
	w.warm = dist.NewSampler(cfg.WarmStartSeconds, w.rng)
	w.execDoneFn = w.execDone
	w.ckptDoneFn = w.ckptDone
	return w
}

// attach is called by Controller.Register. The controller's population
// aggregates pick the invoker up here, and the topic watcher arms so
// deliveries flow into the backlog aggregate (including any messages
// already rotting on the topic from a previous occupant of the slot,
// exactly as the slot scan re-counted them).
func (w *Invoker) attach(c *Controller, slot int) {
	w.ctrl = c
	w.slot = slot
	w.state = InvokerHealthy
	w.slotted = true
	c.noteStateChange(w, InvokerGone, InvokerHealthy)
	w.topic = c.b.Topic(fmt.Sprintf("invoker%d", slot))
	w.topic.Watch(&c.backlog)
	w.topic.OnDelivery(w.poll)
	w.ticker = c.sim.Every(w.cfg.PollInterval, w.poll)
}

// Slot returns the controller slot id (-1 if unregistered).
func (w *Invoker) Slot() int { return w.slot }

// State returns the worker status.
func (w *Invoker) State() InvokerState { return w.state }

// TopicName returns the invoker's private topic name.
func (w *Invoker) TopicName() string { return w.topic.Name() }

// Running returns the number of in-flight executions.
func (w *Invoker) Running() int { return len(w.running) }

// Buffered returns the number of pulled-but-not-started messages.
func (w *Invoker) Buffered() int { return len(w.buffer) }

// poll pulls the fast lane first, then the invoker's own topic, and
// dispatches as capacity allows (§III-C).
func (w *Invoker) poll() {
	if w.state != InvokerHealthy {
		return
	}
	// Idle-tick fast path: nothing queued anywhere, nothing buffered —
	// the common case for most of the ~10 polls/s each invoker performs
	// all day. Pulling, the pressure check, and dispatch would all
	// no-op.
	if len(w.buffer) == 0 && w.ctrl.fastLane.Len() == 0 && w.topic.Len() == 0 {
		return
	}
	room := w.cfg.BufferLimit - len(w.buffer)
	batch := w.cfg.PullBatch
	if batch > room {
		batch = room
	}
	if batch > 0 {
		before := len(w.buffer)
		w.buffer = w.ctrl.fastLane.PullAppend(w.buffer, batch)
		if got := len(w.buffer) - before; got < batch {
			w.buffer = w.topic.PullAppend(w.buffer, batch-got)
		}
		// Own-topic pulls canceled out by the topic watcher; fast-lane
		// pulls are a net backlog increase, as in the scan.
		w.ctrl.noteBuffer(w, len(w.buffer)-before)
	}
	// Container-limit pressure: drop what cannot even be buffered.
	if room <= 0 {
		w.rejectBuf = w.topic.PullAppend(w.rejectBuf[:0], w.cfg.PullBatch)
		for i, m := range w.rejectBuf {
			inv := m.Payload.(*Invocation)
			w.ctrl.b.Recycle(m)
			w.rejectBuf[i] = nil
			w.Rejected++
			w.ctrl.finishFromInvoker(inv, false)
			w.ctrl.release(inv) // the dropped message's reference
		}
		w.rejectBuf = w.rejectBuf[:0]
	}
	w.dispatch()
}

func (w *Invoker) dispatch() {
	for len(w.buffer) > 0 && len(w.running) < w.cfg.Capacity {
		m := w.buffer[0]
		copy(w.buffer, w.buffer[1:])
		w.buffer[len(w.buffer)-1] = nil
		w.buffer = w.buffer[:len(w.buffer)-1]
		w.ctrl.noteBuffer(w, -1)
		inv := m.Payload.(*Invocation)
		w.ctrl.b.Recycle(m)
		if inv.Status != StatusPending {
			// Already timed out at the controller; dropping the message
			// reference may recycle the invocation.
			w.ctrl.release(inv)
			continue
		}
		// The message's reference transfers to the running list.
		w.execute(inv)
	}
}

func (w *Invoker) execute(inv *Invocation) {
	sim := w.ctrl.sim
	inv.invoker = w
	inv.InvokerID = w.slot
	w.running = append(w.running, inv)
	w.ctrl.noteRunning(w, 1)

	start := w.acquireContainer(inv)
	inv.ColdStart = inv.ColdStart || start.cold

	if m := inv.Action.Checkpoint; m.Enabled() && inv.Action.Interruptible {
		w.executeCheckpointed(inv, m, start)
		return
	}
	body := inv.Action.Exec(w.rng)
	total := start.delay + body
	inv.execStartAt = sim.Now() + start.delay // execution body begins after startup
	w.ctrl.retain(inv)                        // the completion event
	inv.execEv = sim.AfterCall(total, w.execDoneFn, inv)
}

// checkpointRng lazily forks the checkpoint subsystem's private stream
// off the invoker's main stream. The fork consumes exactly one parent
// draw and happens only when a checkpointed execution first
// dispatches, so configurations without checkpointing keep their draw
// sequence — and the committed goldens — byte-identical.
func (w *Invoker) checkpointRng() *rand.Rand {
	if w.ckptRng == nil {
		w.ckptRng = dist.Split(w.rng)
	}
	return w.ckptRng
}

// executeCheckpointed runs one attempt of a checkpointed execution as
// a chain of segment events: each segment is min(interval, remaining)
// of body work, followed by a dump pause at ckptDone until the body
// completes. A resume (Progress > 0) first pays the state-transfer +
// restore cost for the last checkpoint.
func (w *Invoker) executeCheckpointed(inv *Invocation, m *checkpoint.Model, start containerStart) {
	sim := w.ctrl.sim
	rng := w.checkpointRng()
	if inv.bodyTotal == 0 {
		// First attempt: draw the body once (off the main stream, like
		// every execution) and remember it — a resume continues this
		// body instead of redrawing it.
		inv.bodyTotal = inv.Action.Exec(w.rng)
	}
	pre := start.delay
	if inv.Progress > 0 {
		restore := m.RestoreTime(inv.StateMB, rng)
		pre += restore
		inv.Resumes++
		w.Resumed++
		w.ctrl.Work.Resumed++
		w.ctrl.Work.RestoreTime += restore
	}
	remaining := inv.bodyTotal - inv.Progress
	seg := m.NextInterval(rng)
	if seg > remaining {
		seg = remaining
	}
	inv.segWork = seg
	inv.execStartAt = sim.Now() + pre
	inv.segStartAt = inv.execStartAt
	w.ctrl.retain(inv) // the in-flight segment event
	inv.execEv = sim.AfterCall(pre+seg, w.ckptDoneFn, inv)
}

// ckptDone fires at every segment boundary of a checkpointed
// execution: either the body is complete (mirroring execDone), or a
// checkpoint is dumped and the next segment is scheduled — the
// boundary event's reference carries over to the next segment, so the
// refcount discipline matches a plain execution's single completion
// event.
func (w *Invoker) ckptDone(v any) {
	inv := v.(*Invocation)
	inv.Progress += inv.segWork
	if inv.Progress >= inv.bodyTotal {
		w.ctrl.Work.Goodput += inv.bodyTotal
		inv.Executed = inv.execStartAt
		w.removeRunning(inv)
		w.ctrl.release(inv) // the running list's reference
		w.releaseContainer(inv.Action)
		ok := w.rng.Float64() >= w.cfg.FailureProb
		if ok {
			w.Executed++
		} else {
			w.Failed++
		}
		w.ctrl.finishFromInvoker(inv, ok)
		w.ctrl.release(inv) // the segment event's reference
		if w.state == InvokerHealthy {
			w.dispatch()
		} else {
			w.maybeDrained()
		}
		return
	}
	m := inv.Action.Checkpoint
	rng := w.checkpointRng()
	cost := m.CostTime(rng)
	inv.StateMB = m.StateSizeMB(rng)
	w.Checkpoints++
	w.ctrl.Work.Checkpoints++
	w.ctrl.Work.CheckpointTime += cost
	remaining := inv.bodyTotal - inv.Progress
	seg := m.NextInterval(rng)
	if seg > remaining {
		seg = remaining
	}
	inv.segWork = seg
	inv.segStartAt = w.ctrl.sim.Now() + cost
	inv.execEv = w.ctrl.sim.AfterCall(cost+seg, w.ckptDoneFn, inv)
}

// execDone is the typed-arg completion callback of every
// non-checkpointed execution.
func (w *Invoker) execDone(v any) {
	inv := v.(*Invocation)
	w.ctrl.Work.Goodput += w.ctrl.sim.Now() - inv.execStartAt
	inv.Executed = inv.execStartAt
	w.removeRunning(inv)
	w.ctrl.release(inv) // the running list's reference
	w.releaseContainer(inv.Action)
	ok := w.rng.Float64() >= w.cfg.FailureProb
	if ok {
		w.Executed++
	} else {
		w.Failed++
	}
	w.ctrl.finishFromInvoker(inv, ok)
	w.ctrl.release(inv) // this event's reference
	if w.state == InvokerHealthy {
		w.dispatch()
	} else {
		w.maybeDrained()
	}
}

type containerStart struct {
	cold  bool
	delay time.Duration
}

// acquireContainer finds or creates a container for the action,
// maintaining the idle min-heap: a set whose last idle container is
// taken leaves the heap; one staying warm sifts down for its fresher
// lastUsed key.
func (w *Invoker) acquireContainer(inv *Invocation) containerStart {
	now := w.ctrl.sim.Now()
	cs := w.pool[inv.Action.Name]
	if cs == nil {
		cs = &containerSet{name: inv.Action.Name, heapIdx: -1}
		w.pool[inv.Action.Name] = cs
		w.poolList = append(w.poolList, cs)
	}
	cs.lastUsed = now
	if cs.idle > 0 {
		cs.idle--
		cs.busy++
		if cs.idle == 0 {
			w.idleHeapRemove(cs)
		} else {
			// The key only grew (sim time is monotone), so the heap
			// property can break downward only.
			w.idleHeapDown(cs.heapIdx)
		}
		w.WarmStarts++
		return containerStart{cold: false, delay: w.warm.Seconds()}
	}
	// Need a new container; evict an idle one if the pool is full.
	if w.containers >= w.cfg.PoolLimit {
		w.evictLRUIdle()
	}
	w.containers++
	cs.busy++
	w.ColdStarts++
	return containerStart{cold: true, delay: w.cold.Seconds()}
}

func (w *Invoker) releaseContainer(a *Action) {
	cs := w.pool[a.Name]
	if cs == nil || cs.busy == 0 {
		return
	}
	cs.busy--
	cs.idle++
	if cs.idle == 1 {
		w.idleHeapPush(cs)
	}
}

// evictLRUIdle drops the least-recently-used idle container: the root
// of the idle min-heap, whose (lastUsed, name) key is a strict total
// order (names are unique), so the root is exactly the minimum the
// poolList scan used to find — recomputeEvictionVictim pins the
// equivalence in tests. O(log sets) instead of O(sets).
func (w *Invoker) evictLRUIdle() {
	if len(w.idleHeap) == 0 {
		return
	}
	victim := w.idleHeap[0]
	victim.idle--
	if victim.idle == 0 {
		w.idleHeapRemove(victim)
	}
	w.containers--
}

// recomputeEvictionVictim is the eviction oracle: the pre-heap dense
// scan over poolList, returning the idle set with the minimum
// (lastUsed, name) key, or nil if none is idle. Tests compare it
// against the heap root; it is not called on any hot path.
func (w *Invoker) recomputeEvictionVictim() *containerSet {
	var victim *containerSet
	for _, cs := range w.poolList {
		if cs.idle == 0 {
			continue
		}
		if victim == nil || idleLess(cs, victim) {
			victim = cs
		}
	}
	return victim
}

// idleLess is the eviction order: least recently used first, name as
// the deterministic tiebreak.
func idleLess(a, b *containerSet) bool {
	return a.lastUsed < b.lastUsed || (a.lastUsed == b.lastUsed && a.name < b.name)
}

func (w *Invoker) idleHeapPush(cs *containerSet) {
	cs.heapIdx = len(w.idleHeap)
	w.idleHeap = append(w.idleHeap, cs)
	w.idleHeapUp(cs.heapIdx)
}

func (w *Invoker) idleHeapRemove(cs *containerSet) {
	i := cs.heapIdx
	last := len(w.idleHeap) - 1
	w.idleHeap[i] = w.idleHeap[last]
	w.idleHeap[i].heapIdx = i
	w.idleHeap[last] = nil
	w.idleHeap = w.idleHeap[:last]
	cs.heapIdx = -1
	if i < last {
		if !w.idleHeapDown(i) {
			w.idleHeapUp(i)
		}
	}
}

func (w *Invoker) idleHeapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !idleLess(w.idleHeap[i], w.idleHeap[parent]) {
			return
		}
		w.idleHeapSwap(i, parent)
		i = parent
	}
}

func (w *Invoker) idleHeapDown(i int) bool {
	moved := false
	n := len(w.idleHeap)
	for {
		kid := 2*i + 1
		if kid >= n {
			return moved
		}
		if r := kid + 1; r < n && idleLess(w.idleHeap[r], w.idleHeap[kid]) {
			kid = r
		}
		if !idleLess(w.idleHeap[kid], w.idleHeap[i]) {
			return moved
		}
		w.idleHeapSwap(i, kid)
		i = kid
		moved = true
	}
}

func (w *Invoker) idleHeapSwap(i, j int) {
	h := w.idleHeap
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (w *Invoker) removeRunning(inv *Invocation) {
	for i, r := range w.running {
		if r == inv {
			w.running = append(w.running[:i], w.running[i+1:]...)
			w.ctrl.noteRunning(w, -1)
			return
		}
	}
}

// Sigterm runs the hand-off protocol of §III-C: stop accepting work,
// notify the controller (which moves unpulled topic messages to the
// fast lane), flush the internal buffer to the fast lane, optionally
// interrupt running executions of interrupt-safe actions, and call
// onDrained once nothing local remains.
func (w *Invoker) Sigterm(interruptRunning bool, onDrained func()) {
	if w.state != InvokerHealthy {
		return
	}
	w.state = InvokerDraining
	// Aggregate bookkeeping happens while w.running is still intact: the
	// Healthy→Draining transition removes this invoker's in-flight
	// executions from the busy aggregate, exactly as the scan stopped
	// counting them.
	w.ctrl.noteStateChange(w, InvokerHealthy, InvokerDraining)
	w.onDrained = onDrained
	w.ticker.Stop()
	w.ctrl.SetDraining(w)

	// Flush the unexecuted buffer to the fast lane (which the backlog
	// aggregate does not cover — FastLaneDepth is its own signal).
	if len(w.buffer) > 0 {
		w.Requeued += len(w.buffer)
		for _, m := range w.buffer {
			m.Payload.(*Invocation).Requeues++
		}
		w.ctrl.noteBuffer(w, -len(w.buffer))
		w.ctrl.requeueFastLane(w.buffer)
		w.buffer = nil
	}

	if interruptRunning {
		snapshot := append([]*Invocation(nil), w.running...)
		for _, inv := range snapshot {
			if !inv.Action.Interruptible {
				continue
			}
			if inv.execEv.Stop() {
				w.ctrl.release(inv) // the canceled completion event
			}
			w.accountInterrupt(inv)
			w.removeRunning(inv)
			w.releaseContainer(inv.Action)
			inv.Requeues++
			inv.invoker = nil
			w.Requeued++
			// Retain for the new fast-lane message BEFORE dropping the
			// running list's reference: an interruptible execution whose
			// client timeout already completed holds no other reference,
			// and releasing first would recycle the object mid-loop. The
			// dead message still travels the fast lane exactly as it
			// always did (occupying pull quota until dispatch skips it),
			// and its consumer's release recycles the invocation then.
			// For a checkpointed execution the requeued invocation IS the
			// resume token — Progress/StateMB ride along, and the next
			// invoker's execute restores from the last checkpoint.
			w.ctrl.retain(inv)
			w.ctrl.release(inv) // the running list's reference
			w.oneMsg[0] = w.ctrl.b.Wrap(inv)
			w.ctrl.requeueFastLane(w.oneMsg[:1])
			w.oneMsg[0] = nil
		}
	}
	w.maybeDrained()
}

// accountInterrupt books the execution-body time an interrupt throws
// away. A checkpointed execution loses only the work since its last
// checkpoint (Wasted — the rest survives in the resume token); an
// execution without checkpoints loses all elapsed progress (Lost —
// the requeued attempt restarts from scratch). Pure accounting: no
// draws, no events, so golden-pinned runs are unaffected.
func (w *Invoker) accountInterrupt(inv *Invocation) {
	now := w.ctrl.sim.Now()
	if inv.Action.Checkpoint.Enabled() {
		done := now - inv.segStartAt
		if done < 0 {
			done = 0 // still in start-up, restore, or a dump pause
		}
		if done > inv.segWork {
			done = inv.segWork
		}
		w.ctrl.Work.Wasted += done
		return
	}
	done := now - inv.execStartAt
	if done < 0 {
		done = 0
	}
	w.ctrl.Work.Lost += done
}

// accountKill books the execution-body time a hard kill destroys:
// everything, checkpointed or not — nothing is handed off. (A
// checkpointed invocation keeps its Progress, so a client-side
// wrapper may still resume it on the cloud fallback after the
// timeout; the pilot-side ledger writes the on-cluster work off.)
func (w *Invoker) accountKill(inv *Invocation) {
	now := w.ctrl.sim.Now()
	lost := inv.Progress
	var done time.Duration
	if inv.Action.Checkpoint.Enabled() && inv.Action.Interruptible {
		done = now - inv.segStartAt
		if done > inv.segWork {
			done = inv.segWork
		}
	} else {
		done = now - inv.execStartAt
	}
	if done > 0 {
		lost += done
	}
	w.ctrl.Work.Lost += lost
}

func (w *Invoker) maybeDrained() {
	if w.state == InvokerDraining && len(w.running) == 0 && len(w.buffer) == 0 {
		w.deregister()
	}
}

// deregister completes the hand-off: the worker leaves the slot list.
func (w *Invoker) deregister() {
	if w.state == InvokerGone {
		return
	}
	w.ctrl.noteStateChange(w, w.state, InvokerGone)
	w.state = InvokerGone
	w.ctrl.Deregister(w)
	if w.onDrained != nil {
		fn := w.onDrained
		w.onDrained = nil
		fn()
	}
}

// Kill models SIGKILL with work still on board (no graceful hand-off,
// e.g. the ablation without the HPC-Whisk modifications): buffered and
// running invocations are lost and surface as controller timeouts.
func (w *Invoker) Kill() {
	if w.state == InvokerGone {
		return
	}
	// Booked before running/buffer are torn down: a kill from Healthy
	// drops len(running) executions out of the busy aggregate in one
	// step.
	w.ctrl.noteStateChange(w, w.state, InvokerGone)
	if w.ticker != nil {
		w.ticker.Stop()
	}
	for _, inv := range w.running {
		if inv.execEv.Stop() {
			w.ctrl.release(inv) // the canceled completion event
		}
		w.accountKill(inv)
		w.ctrl.release(inv) // the running list's reference
	}
	w.running = nil
	w.ctrl.noteBuffer(w, -len(w.buffer))
	for _, m := range w.buffer {
		inv := m.Payload.(*Invocation)
		w.ctrl.b.Recycle(m)
		w.ctrl.release(inv) // the dropped message's reference
	}
	w.buffer = nil
	w.state = InvokerGone
	// A killed worker cannot hand anything off: its topic messages rot
	// until the controller-side timeouts fire, exactly the unmodified-
	// OpenWhisk failure mode described in §II.
	w.ctrl.DeregisterLossy(w)
	if w.onDrained != nil {
		fn := w.onDrained
		w.onDrained = nil
		fn()
	}
}
