package whisk

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/dist"
)

// InvokerState is the controller-visible status of a worker, reported
// continuously by the extended status messages of §III-C.
type InvokerState uint8

// Worker states: Healthy accepts and executes work; Draining received
// SIGTERM and hands off its queue; Gone deregistered (or was killed).
const (
	InvokerHealthy InvokerState = iota
	InvokerDraining
	InvokerGone
)

// String implements fmt.Stringer.
func (s InvokerState) String() string {
	switch s {
	case InvokerHealthy:
		return "healthy"
	case InvokerDraining:
		return "draining"
	case InvokerGone:
		return "gone"
	default:
		return "unknown"
	}
}

// InvokerConfig models one OpenWhisk invoker on a cluster node.
type InvokerConfig struct {
	// Capacity is the maximum number of concurrently running container
	// processes (the limit whose saturation caused failed invocations
	// in §V-C).
	Capacity int

	// PoolLimit caps total containers (warm idle + running); creating
	// past it evicts the least-recently-used idle container.
	PoolLimit int

	// PollInterval is the topic-pull period; the fast lane is always
	// pulled before the invoker's own topic (§III-C).
	PollInterval time.Duration

	// PullBatch bounds messages taken per poll.
	PullBatch int

	// BufferLimit bounds the internal buffer; arrivals beyond it fail
	// immediately (container-limit pressure).
	BufferLimit int

	ColdStartSeconds dist.Dist // container creation (≈0.5 s, §II)
	WarmStartSeconds dist.Dist // dispatch into a warm container

	// FailureProb is the base probability an execution errors.
	FailureProb float64
}

// DefaultInvokerConfig returns a Prometheus-node-like invoker model
// (24-core node hosting up to 16 concurrent function containers).
func DefaultInvokerConfig() InvokerConfig {
	return InvokerConfig{
		Capacity:         16,
		PoolLimit:        48,
		PollInterval:     100 * time.Millisecond,
		PullBatch:        16,
		BufferLimit:      128,
		ColdStartSeconds: dist.Uniform{Lo: 0.35, Hi: 0.70},
		WarmStartSeconds: dist.Uniform{Lo: 0.005, Hi: 0.025},
		FailureProb:      0.01,
	}
}

// Invoker executes invocations on one node. It pulls the global fast
// lane before its own topic, keeps per-action warm containers, and
// implements the hand-off protocol when its pilot job gets SIGTERM.
type Invoker struct {
	cfg InvokerConfig
	rng *rand.Rand

	ctrl  *Controller
	slot  int
	topic *bus.Topic
	state InvokerState

	buffer  []*bus.Message
	running []*Invocation // insertion order (determinism matters)

	pool       map[string]*containerSet
	containers int // total containers (idle + busy)

	ticker *des.Ticker

	onDrained func()

	// Counters.
	Executed   int
	Failed     int
	ColdStarts int
	WarmStarts int
	Rejected   int
	Requeued   int
}

type containerSet struct {
	idle     int
	busy     int
	lastUsed des.Time
}

// NewInvoker builds an invoker; it is inert until registered with a
// controller.
func NewInvoker(cfg InvokerConfig, seed int64) *Invoker {
	if cfg.Capacity <= 0 {
		panic("whisk: invoker needs capacity")
	}
	return &Invoker{
		cfg:   cfg,
		rng:   dist.NewRand(seed),
		slot:  -1,
		state: InvokerGone,
		pool:  map[string]*containerSet{},
	}
}

// attach is called by Controller.Register.
func (w *Invoker) attach(c *Controller, slot int) {
	w.ctrl = c
	w.slot = slot
	w.state = InvokerHealthy
	w.topic = c.b.Topic(fmt.Sprintf("invoker%d", slot))
	w.topic.OnDelivery(w.poll)
	w.ticker = c.sim.Every(w.cfg.PollInterval, w.poll)
}

// Slot returns the controller slot id (-1 if unregistered).
func (w *Invoker) Slot() int { return w.slot }

// State returns the worker status.
func (w *Invoker) State() InvokerState { return w.state }

// TopicName returns the invoker's private topic name.
func (w *Invoker) TopicName() string { return w.topic.Name() }

// Running returns the number of in-flight executions.
func (w *Invoker) Running() int { return len(w.running) }

// Buffered returns the number of pulled-but-not-started messages.
func (w *Invoker) Buffered() int { return len(w.buffer) }

// poll pulls the fast lane first, then the invoker's own topic, and
// dispatches as capacity allows (§III-C).
func (w *Invoker) poll() {
	if w.state != InvokerHealthy {
		return
	}
	room := w.cfg.BufferLimit - len(w.buffer)
	batch := w.cfg.PullBatch
	if batch > room {
		batch = room
	}
	if batch > 0 {
		msgs := w.ctrl.fastLane.Pull(batch)
		if len(msgs) < batch {
			msgs = append(msgs, w.topic.Pull(batch-len(msgs))...)
		}
		w.buffer = append(w.buffer, msgs...)
	}
	// Container-limit pressure: drop what cannot even be buffered.
	if room <= 0 {
		for _, m := range w.topic.Pull(w.cfg.PullBatch) {
			inv := m.Payload.(*Invocation)
			w.Rejected++
			w.ctrl.finishFromInvoker(inv, false)
		}
	}
	w.dispatch()
}

func (w *Invoker) dispatch() {
	for len(w.buffer) > 0 && len(w.running) < w.cfg.Capacity {
		m := w.buffer[0]
		copy(w.buffer, w.buffer[1:])
		w.buffer[len(w.buffer)-1] = nil
		w.buffer = w.buffer[:len(w.buffer)-1]
		inv := m.Payload.(*Invocation)
		if inv.Status != StatusPending {
			continue // already timed out at the controller
		}
		w.execute(inv)
	}
}

func (w *Invoker) execute(inv *Invocation) {
	sim := w.ctrl.sim
	inv.invoker = w
	inv.InvokerID = w.slot
	w.running = append(w.running, inv)

	start := w.acquireContainer(inv)
	inv.ColdStart = inv.ColdStart || start.cold

	body := inv.Action.Exec(w.rng)
	total := start.delay + body
	inv.execEv = sim.After(total, func() {
		inv.Executed = sim.Now() - body // execution body began after startup
		w.removeRunning(inv)
		w.releaseContainer(inv.Action)
		ok := w.rng.Float64() >= w.cfg.FailureProb
		if ok {
			w.Executed++
		} else {
			w.Failed++
		}
		w.ctrl.finishFromInvoker(inv, ok)
		if w.state == InvokerHealthy {
			w.dispatch()
		} else {
			w.maybeDrained()
		}
	})
}

type containerStart struct {
	cold  bool
	delay time.Duration
}

// acquireContainer finds or creates a container for the action.
func (w *Invoker) acquireContainer(inv *Invocation) containerStart {
	now := w.ctrl.sim.Now()
	cs := w.pool[inv.Action.Name]
	if cs == nil {
		cs = &containerSet{}
		w.pool[inv.Action.Name] = cs
	}
	cs.lastUsed = now
	if cs.idle > 0 {
		cs.idle--
		cs.busy++
		w.WarmStarts++
		return containerStart{cold: false, delay: dist.Seconds(w.cfg.WarmStartSeconds, w.rng)}
	}
	// Need a new container; evict an idle one if the pool is full.
	if w.containers >= w.cfg.PoolLimit {
		w.evictLRUIdle()
	}
	w.containers++
	cs.busy++
	w.ColdStarts++
	return containerStart{cold: true, delay: dist.Seconds(w.cfg.ColdStartSeconds, w.rng)}
}

func (w *Invoker) releaseContainer(a *Action) {
	cs := w.pool[a.Name]
	if cs == nil || cs.busy == 0 {
		return
	}
	cs.busy--
	cs.idle++
}

func (w *Invoker) evictLRUIdle() {
	var victim *containerSet
	var victimName string
	for name, cs := range w.pool {
		if cs.idle == 0 {
			continue
		}
		if victim == nil || cs.lastUsed < victim.lastUsed ||
			(cs.lastUsed == victim.lastUsed && name < victimName) {
			victim = cs
			victimName = name
		}
	}
	if victim != nil {
		victim.idle--
		w.containers--
	}
}

func (w *Invoker) removeRunning(inv *Invocation) {
	for i, r := range w.running {
		if r == inv {
			w.running = append(w.running[:i], w.running[i+1:]...)
			return
		}
	}
}

// Sigterm runs the hand-off protocol of §III-C: stop accepting work,
// notify the controller (which moves unpulled topic messages to the
// fast lane), flush the internal buffer to the fast lane, optionally
// interrupt running executions of interrupt-safe actions, and call
// onDrained once nothing local remains.
func (w *Invoker) Sigterm(interruptRunning bool, onDrained func()) {
	if w.state != InvokerHealthy {
		return
	}
	w.state = InvokerDraining
	w.onDrained = onDrained
	w.ticker.Stop()
	w.ctrl.SetDraining(w)

	// Flush the unexecuted buffer to the fast lane.
	if len(w.buffer) > 0 {
		w.Requeued += len(w.buffer)
		for _, m := range w.buffer {
			m.Payload.(*Invocation).Requeues++
		}
		w.ctrl.requeueFastLane(w.buffer)
		w.buffer = nil
	}

	if interruptRunning {
		snapshot := append([]*Invocation(nil), w.running...)
		for _, inv := range snapshot {
			if !inv.Action.Interruptible {
				continue
			}
			inv.execEv.Stop()
			w.removeRunning(inv)
			w.releaseContainer(inv.Action)
			inv.Requeues++
			inv.invoker = nil
			w.Requeued++
			m := &bus.Message{Payload: inv, TopicName: w.ctrl.fastLane.Name()}
			w.ctrl.requeueFastLane([]*bus.Message{m})
		}
	}
	w.maybeDrained()
}

func (w *Invoker) maybeDrained() {
	if w.state == InvokerDraining && len(w.running) == 0 && len(w.buffer) == 0 {
		w.deregister()
	}
}

// deregister completes the hand-off: the worker leaves the slot list.
func (w *Invoker) deregister() {
	if w.state == InvokerGone {
		return
	}
	w.state = InvokerGone
	w.ctrl.Deregister(w)
	if w.onDrained != nil {
		fn := w.onDrained
		w.onDrained = nil
		fn()
	}
}

// Kill models SIGKILL with work still on board (no graceful hand-off,
// e.g. the ablation without the HPC-Whisk modifications): buffered and
// running invocations are lost and surface as controller timeouts.
func (w *Invoker) Kill() {
	if w.state == InvokerGone {
		return
	}
	if w.ticker != nil {
		w.ticker.Stop()
	}
	for _, inv := range w.running {
		inv.execEv.Stop()
	}
	w.running = nil
	w.buffer = nil
	w.state = InvokerGone
	// A killed worker cannot hand anything off: its topic messages rot
	// until the controller-side timeouts fire, exactly the unmodified-
	// OpenWhisk failure mode described in §II.
	w.ctrl.DeregisterLossy(w)
	if w.onDrained != nil {
		fn := w.onDrained
		w.onDrained = nil
		fn()
	}
}
