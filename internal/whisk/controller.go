package whisk

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/stats"
)

// ControllerConfig models the request path of the OpenWhisk controller.
// The latency components are calibrated so that a 10 ms sleep function
// completes in ≈0.8-0.9 s end to end, matching §V-C (median 865 ms) and
// the SeBS observation the paper cites for short functions.
type ControllerConfig struct {
	IngressSeconds  dist.Dist     // client → controller (one way)
	EgressSeconds   dist.Dist     // controller → client (one way)
	ProcessSeconds  dist.Dist     // routing decision
	OverheadSeconds dist.Dist     // activation bookkeeping (dominates)
	ResultSeconds   dist.Dist     // invoker → controller result hop
	StatusLatency   time.Duration // worker status propagation delay
	ActionTimeout   time.Duration // client-visible timeout

	// FastLaneName is the global priority topic of §III-C.
	FastLaneName string

	// PoolInvocations recycles completed Invocation objects through a
	// controller-side free list, making the request path allocation-free
	// in steady state (a paper day invokes 864k times). With pooling on,
	// the *Invocation passed to done/OnComplete is only valid for the
	// duration of the callback: the controller may hand the object to a
	// later invocation once every reference (pending hops, queued
	// messages, the executing invoker) has been released. Callers that
	// retain invocation pointers across further traffic must leave
	// pooling off (the default here; core.DefaultSystemConfig turns it
	// on for the wired deployment, whose clients never retain).
	PoolInvocations bool
}

// DefaultControllerConfig returns the calibrated request-path model.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		IngressSeconds:  dist.Uniform{Lo: 0.010, Hi: 0.040},
		EgressSeconds:   dist.Uniform{Lo: 0.010, Hi: 0.040},
		ProcessSeconds:  dist.Uniform{Lo: 0.002, Hi: 0.008},
		OverheadSeconds: dist.Lognormal{Mu: math.Log(0.62), Sigma: 0.30},
		ResultSeconds:   dist.Uniform{Lo: 0.010, Hi: 0.030},
		StatusLatency:   500 * time.Millisecond,
		ActionTimeout:   60 * time.Second,
		FastLaneName:    "fastlane",
	}
}

// Controller is the (modified) OpenWhisk controller: it routes
// invocations to the home invoker derived from the action-name hash,
// maintains the dynamic list of registered HPC-Whisk invokers, returns
// 503 when none is healthy, and participates in the fast-lane hand-off.
//
// The request path ingress→route→publish→timeout→result→egress is
// allocation-free per invocation: every hop is a typed-arg des event
// (des.AfterCall) whose callback is a method value cached once at
// construction and whose argument is the invocation itself, and the
// per-hop latencies draw through cached dist.Samplers. Invocation
// lifetime is reference-counted (pending hops + queued messages + the
// executing invoker); when pooling is enabled the last release recycles
// the object.
type Controller struct {
	sim *des.Sim
	b   *bus.Bus
	cfg ControllerConfig
	rng *rand.Rand

	// Cached per-hop latency samplers, all over rng (draw order on the
	// shared stream is part of the pinned deterministic behavior).
	ingress, egress, process, overhead, result dist.Sampler

	// Cached request-path callbacks: one method value each, not one
	// closure per hop per invocation.
	routeFn, publishFn, timeoutFn, resultFn, egressFn, drainFn func(any)

	actions map[string]*Action

	// slots is the dynamic invoker list: index = slot id, nil = free.
	// Trailing nils are compacted away on deregistration so a day of
	// register/deregister churn doesn't leave HealthyCount, Utilization,
	// and slot scans walking an ever-growing mostly-nil array. slotSpan
	// is the high-water slot count and never shrinks: it is the modulus
	// of the action-hash home-invoker mapping, and keeping it stable
	// preserves each action's home assignment (and warm-container
	// affinity) across churn instead of reshuffling every action
	// whenever the tail empties. (It also pins the routing sequence the
	// simulation goldens were recorded under.)
	slots    []*Invoker
	slotSpan int

	// O(1) control-plane aggregates. Every routing decision, router
	// snapshot, and supply-policy tick reads these signals, so they are
	// maintained incrementally at the state transitions that change them
	// instead of recomputed by per-call scans over the slot array —
	// values identical to the scans (recomputeAggregates is the test
	// oracle; the aggregate storm test cross-checks every transition).
	//
	//   nHealthy    — invokers in state InvokerHealthy
	//                 (attach, Sigterm, Kill)
	//   nDraining   — invokers in state InvokerDraining
	//                 (Sigterm, deregister, Kill)
	//   healthyCap  — Σ cfg.Capacity over healthy invokers
	//                 (same transitions as nHealthy)
	//   busyHealthy — Σ len(running) over healthy invokers
	//                 (execute, removeRunning, and the healthy-state
	//                 transitions, which add/remove the whole list)
	//   backlog     — Σ topic.Len() + Σ len(buffer) over slotted
	//                 invokers (topic deltas via bus.Topic.Watch,
	//                 armed in attach and disarmed in clearSlot;
	//                 buffer deltas via noteBuffer in poll, dispatch,
	//                 Sigterm, and Kill)
	nHealthy    int
	nDraining   int
	healthyCap  int
	busyHealthy int
	backlog     int

	fastLane *bus.Topic

	nextInvID int64
	invPool   []*Invocation

	// OnComplete observes every finished invocation (for load
	// generators and experiment accounting).
	OnComplete func(*Invocation)

	// Counters.
	Total     int
	N503      int
	NSuccess  int
	NFailed   int
	NTimeout  int
	Registers int
	Removes   int
	MovedToFL int

	// Work is the checkpoint subsystem's compute-accounting ledger,
	// written by this controller's invokers (goodput on completion,
	// wasted/lost on interrupts and kills, checkpoint and restore
	// overheads as they are paid). Site-local by construction — no
	// cross-site writes — so sharded pdes runs need no synchronization
	// and stay byte-identical.
	Work stats.WorkCounters
}

// NewController builds a controller over the given bus.
func NewController(sim *des.Sim, b *bus.Bus, cfg ControllerConfig, seed int64) *Controller {
	c := &Controller{
		sim:     sim,
		b:       b,
		cfg:     cfg,
		rng:     dist.NewRand(seed),
		actions: map[string]*Action{},
	}
	c.ingress = dist.NewSampler(cfg.IngressSeconds, c.rng)
	c.egress = dist.NewSampler(cfg.EgressSeconds, c.rng)
	c.process = dist.NewSampler(cfg.ProcessSeconds, c.rng)
	c.overhead = dist.NewSampler(cfg.OverheadSeconds, c.rng)
	c.result = dist.NewSampler(cfg.ResultSeconds, c.rng)
	c.routeFn = c.routeCb
	c.publishFn = c.publishCb
	c.timeoutFn = c.timeoutCb
	c.resultFn = c.resultCb
	c.egressFn = c.egressCb
	c.drainFn = c.drainCb
	c.fastLane = b.Topic(cfg.FastLaneName)
	return c
}

// Sim exposes the simulation handle.
func (c *Controller) Sim() *des.Sim { return c.sim }

// Bus exposes the message bus.
func (c *Controller) Bus() *bus.Bus { return c.b }

// FastLane exposes the global priority topic.
func (c *Controller) FastLane() *bus.Topic { return c.fastLane }

// RegisterAction deploys a function. The action-name hash that derives
// the home invoker is memoized here, once per deployment, so the
// per-request pickInvoker never rehashes the name.
func (c *Controller) RegisterAction(a *Action) {
	if _, dup := c.actions[a.Name]; dup {
		panic(fmt.Sprintf("whisk: action %q already registered", a.Name))
	}
	a.nameHash = a.hash()
	c.actions[a.Name] = a
}

// Action returns a deployed function by name.
func (c *Controller) Action(name string) *Action { return c.actions[name] }

// HealthyCount returns the number of invokers accepting work. O(1):
// a maintained aggregate, not a slot scan.
func (c *Controller) HealthyCount() int { return c.nHealthy }

// Utilization returns the busy share of healthy invoker capacity:
// in-flight executions over total concurrency slots, in [0, 1]. It is
// 0 with no healthy invoker. Supply policies use it as their
// harvested-pool load signal. O(1): the numerator and denominator are
// maintained aggregates, divided exactly as the scan divided them.
func (c *Controller) Utilization() float64 {
	if c.healthyCap == 0 {
		return 0
	}
	return float64(c.busyHealthy) / float64(c.healthyCap)
}

// DrainingCount returns the number of invokers mid-hand-off (§III-C):
// still registered, no longer routed to. Routing layers read it as an
// early reclaim-storm signal. O(1).
func (c *Controller) DrainingCount() int { return c.nDraining }

// QueueDepth returns the accepted-but-unstarted backlog: unpulled
// topic messages plus invoker-side buffers across the live invokers.
// Together with FastLaneDepth it is the queue-pressure signal the
// federation routing policies observe. O(1): topic lengths flow in
// through bus.Topic.Watch and buffer lengths through noteBuffer.
func (c *Controller) QueueDepth() int { return c.backlog }

// noteBuffer applies an invoker-buffer length delta to the backlog
// aggregate. Every mutation of an attached invoker's buffer reports
// here; watched topics report their own deltas through the bus. The
// delta only lands while w holds a slot — the scan never saw an
// unslotted invoker's buffer.
func (c *Controller) noteBuffer(w *Invoker, delta int) {
	if w.slotted {
		c.backlog += delta
	}
}

// noteStateChange maintains the invoker-population aggregates across
// one state transition of a slotted invoker (transitions of an invoker
// already pulled from the slot list are invisible, as they were to the
// scan). The caller invokes it at the transition point, with w.running
// still reflecting the pre-transition list for transitions out of
// Healthy (the whole in-flight list enters or leaves the busy
// aggregate with its invoker).
func (c *Controller) noteStateChange(w *Invoker, from, to InvokerState) {
	if !w.slotted {
		return
	}
	switch from {
	case InvokerHealthy:
		c.nHealthy--
		c.healthyCap -= w.cfg.Capacity
		c.busyHealthy -= len(w.running)
	case InvokerDraining:
		c.nDraining--
	}
	switch to {
	case InvokerHealthy:
		c.nHealthy++
		c.healthyCap += w.cfg.Capacity
		c.busyHealthy += len(w.running)
	case InvokerDraining:
		c.nDraining++
	}
}

// noteRunning applies an in-flight execution delta for invoker w. Only
// healthy invokers feed the busy aggregate (the scan skipped draining
// ones), so the delta is dropped unless w is currently Healthy — a
// draining invoker's stragglers were already subtracted wholesale by
// its Healthy→Draining transition.
func (c *Controller) noteRunning(w *Invoker, delta int) {
	if w.slotted && w.state == InvokerHealthy {
		c.busyHealthy += delta
	}
}

// recomputeAggregates rebuilds every maintained control-plane aggregate
// by full scan — the pre-O(1) implementations, kept as the equivalence
// oracle. Tests (the aggregate storm cross-check, and any future
// transition audit) compare its results against the live fields; it is
// not called on any hot path.
func (c *Controller) recomputeAggregates() (healthy, draining, capacity, busy, backlog int) {
	for _, inv := range c.slots {
		if inv == nil {
			continue
		}
		switch inv.state {
		case InvokerHealthy:
			healthy++
			capacity += inv.cfg.Capacity
			busy += len(inv.running)
		case InvokerDraining:
			draining++
		}
		backlog += inv.topic.Len() + inv.Buffered()
	}
	return healthy, draining, capacity, busy, backlog
}

// FastLaneDepth returns the backlog of the global priority topic —
// work displaced by hand-offs that will compete for the next free
// execution slots.
func (c *Controller) FastLaneDepth() int { return c.fastLane.Len() }

// retain adds one reference to the invocation: a pending request-path
// hop, a queued bus message, or the executing invoker's running list.
func (c *Controller) retain(inv *Invocation) { inv.refs++ }

// release drops one reference. The last release returns the object to
// the pool (when pooling is on); retain/release imbalances panic loudly
// because a miscount would hand a live invocation to a new request.
func (c *Controller) release(inv *Invocation) {
	inv.refs--
	if inv.refs > 0 {
		return
	}
	if inv.refs < 0 || inv.pooled {
		panic("whisk: invocation reference underflow")
	}
	if c.cfg.PoolInvocations {
		*inv = Invocation{gen: inv.gen + 1, pooled: true}
		c.invPool = append(c.invPool, inv)
	}
}

// getInvocation pops the free list or allocates.
func (c *Controller) getInvocation() *Invocation {
	if k := len(c.invPool); k > 0 {
		inv := c.invPool[k-1]
		c.invPool[k-1] = nil
		c.invPool = c.invPool[:k-1]
		inv.pooled = false
		return inv
	}
	return &Invocation{}
}

// Invoke submits a call to the named action; done fires exactly once
// with the final status. It returns the tracked invocation (valid only
// until it completes when pooling is enabled — see PoolInvocations).
func (c *Controller) Invoke(name string, done func(*Invocation)) *Invocation {
	a, ok := c.actions[name]
	if !ok {
		panic(fmt.Sprintf("whisk: unknown action %q", name))
	}
	inv := c.getInvocation()
	inv.ID = c.nextInvID
	inv.Action = a
	inv.Submitted = c.sim.Now()
	inv.InvokerID = -1
	inv.done = done
	c.nextInvID++
	c.Total++
	ingress := c.ingress.Seconds() + c.process.Seconds()
	c.retain(inv)
	c.sim.AfterCall(ingress, c.routeFn, inv)
	return inv
}

// routeCb is the ingress hop's typed-arg callback.
func (c *Controller) routeCb(v any) {
	inv := v.(*Invocation)
	c.route(inv)
	c.release(inv)
}

// route picks the home invoker (hash + forward probing over the slot
// array, as OpenWhisk does) or completes with 503 if none is healthy.
func (c *Controller) route(inv *Invocation) {
	inv.Routed = c.sim.Now()
	target := c.pickInvoker(inv.Action)
	if target == nil {
		c.complete(inv, Status503)
		return
	}
	// Activation bookkeeping (the dominant fixed cost of the request
	// path), then the message lands on the invoker's topic.
	overhead := c.overhead.Seconds()
	inv.routeTarget = target
	c.retain(inv)
	c.sim.AfterCall(overhead, c.publishFn, inv)
}

// publishCb lands the invocation on the routed invoker's topic and
// arms the client-visible timeout. The topic was captured at routing
// time, so publishing costs no name lookup (and still reaches the
// topic if the invoker deregistered in between, exactly as the
// name-based publish did: topics outlive their invokers).
func (c *Controller) publishCb(v any) {
	inv := v.(*Invocation)
	target := inv.routeTarget
	inv.routeTarget = nil
	c.retain(inv) // the queued message's reference
	c.b.PublishTo(target.topic, inv)
	c.armTimeout(inv)
	c.release(inv)
}

// pickInvoker routes to the action's home invoker (hash + forward
// probing). If the home invoker is saturated (its buffer has less than
// half its limit free), the probe continues to a less-loaded healthy
// invoker — the load-balancing role of §II — and falls back to the
// home invoker when every candidate is saturated. The probe runs over
// the stable slotSpan (see the field comment); virtual slots past the
// compacted array are skipped for free.
func (c *Controller) pickInvoker(a *Action) *Invoker {
	n := c.slotSpan
	if n == 0 {
		return nil
	}
	start := int(a.nameHash) % n
	live := len(c.slots)
	var home *Invoker
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if idx >= live {
			continue
		}
		inv := c.slots[idx]
		if inv == nil || inv.state != InvokerHealthy {
			continue
		}
		if home == nil {
			home = inv
		}
		if inv.Buffered() < inv.cfg.BufferLimit/2 {
			return inv
		}
	}
	return home
}

func (c *Controller) armTimeout(inv *Invocation) {
	c.retain(inv)
	inv.timeoutEv = c.sim.AfterCall(c.cfg.ActionTimeout, c.timeoutFn, inv)
}

// timeoutCb fires when the client-visible timeout expires first.
func (c *Controller) timeoutCb(v any) {
	inv := v.(*Invocation)
	c.complete(inv, StatusTimeout)
	c.release(inv)
}

// finishFromInvoker is called by invokers on execution completion; the
// result travels back through the result hop before the client sees it.
func (c *Controller) finishFromInvoker(inv *Invocation, ok bool) {
	d := c.result.Seconds()
	inv.execOK = ok
	c.retain(inv)
	c.sim.AfterCall(d, c.resultFn, inv)
}

// resultCb is the invoker→controller result hop.
func (c *Controller) resultCb(v any) {
	inv := v.(*Invocation)
	if inv.execOK {
		c.complete(inv, StatusSuccess)
	} else {
		c.complete(inv, StatusFailed)
	}
	c.release(inv)
}

// complete finalizes an invocation exactly once.
func (c *Controller) complete(inv *Invocation, status Status) {
	if inv.Status != StatusPending {
		return
	}
	if inv.timeoutEv.Stop() {
		c.release(inv) // the canceled timeout event's reference
	}
	inv.Status = status
	egress := c.egress.Seconds()
	c.retain(inv)
	c.sim.AfterCall(egress, c.egressFn, inv)
}

// egressCb delivers the outcome to the client and drops the last
// controller-side reference.
func (c *Controller) egressCb(v any) {
	inv := v.(*Invocation)
	inv.Completed = c.sim.Now()
	switch inv.Status {
	case Status503:
		c.N503++
	case StatusSuccess:
		c.NSuccess++
	case StatusFailed:
		c.NFailed++
	case StatusTimeout:
		c.NTimeout++
	}
	if c.OnComplete != nil {
		c.OnComplete(inv)
	}
	if inv.done != nil {
		inv.done(inv)
	}
	c.release(inv)
}

// Register adds an invoker to the dynamic slot list (lowest free slot,
// as the HPC-Whisk controller maintains a dense dynamic invoker list)
// and returns its slot id. The invoker starts polling immediately.
func (c *Controller) Register(inv *Invoker) int {
	slot := -1
	for i, s := range c.slots {
		if s == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(c.slots)
		c.slots = append(c.slots, nil)
	}
	c.slots[slot] = inv
	if slot+1 > c.slotSpan {
		c.slotSpan = slot + 1
	}
	inv.attach(c, slot)
	c.Registers++
	return slot
}

// SetDraining marks an invoker as leaving: the controller stops routing
// to it and, after the status-propagation latency, moves the unpulled
// messages from its topic to the fast lane (§III-C: "the controller
// moves all the unpulled requests from the worker's Kafka topic to the
// fast lane topic").
func (c *Controller) SetDraining(inv *Invoker) {
	c.sim.AfterCall(c.cfg.StatusLatency, c.drainFn, inv)
}

// drainCb is the delayed controller-side hand-off of SetDraining.
func (c *Controller) drainCb(v any) {
	inv := v.(*Invoker)
	c.MovedToFL += inv.topic.MoveAll(c.fastLane)
}

// clearSlot frees the invoker's slot, stopping at the first match, and
// compacts trailing free slots so churn doesn't grow the array without
// bound. (slotSpan deliberately keeps the high-water mark — see the
// field comment.) This is the single point an invoker leaves the slot
// list, so every aggregate retires here: the topic watcher disarms
// (messages rotting on the departed topic stop counting, exactly as
// the slot scan stopped seeing them), and an invoker removed while
// still live — Deregister called directly, bypassing the drain state
// machine — takes its population, busy, and buffer contributions with
// it.
func (c *Controller) clearSlot(inv *Invoker) {
	c.noteStateChange(inv, inv.state, InvokerGone)
	c.noteBuffer(inv, -len(inv.buffer))
	inv.topic.Unwatch()
	inv.slotted = false
	for i, s := range c.slots {
		if s == inv {
			c.slots[i] = nil
			break
		}
	}
	n := len(c.slots)
	for n > 0 && c.slots[n-1] == nil {
		n--
	}
	c.slots = c.slots[:n]
}

// Deregister removes an invoker from the slot list. Any stragglers left
// on its topic move to the fast lane first.
func (c *Controller) Deregister(inv *Invoker) {
	c.MovedToFL += inv.topic.MoveAll(c.fastLane)
	c.clearSlot(inv)
	c.Removes++
}

// DeregisterLossy removes an invoker without rescuing its topic: the
// unmodified-OpenWhisk behavior where a vanished worker's requests are
// never processed and time out (§II). Used by Invoker.Kill for the
// no-hand-off ablation.
func (c *Controller) DeregisterLossy(inv *Invoker) {
	c.clearSlot(inv)
	c.Removes++
}

// requeueFastLane is used by invokers handing off buffered or
// interrupted work.
func (c *Controller) requeueFastLane(msgs []*bus.Message) {
	c.fastLane.Requeue(msgs)
	c.MovedToFL += len(msgs)
}
