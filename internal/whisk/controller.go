package whisk

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/dist"
)

// ControllerConfig models the request path of the OpenWhisk controller.
// The latency components are calibrated so that a 10 ms sleep function
// completes in ≈0.8-0.9 s end to end, matching §V-C (median 865 ms) and
// the SeBS observation the paper cites for short functions.
type ControllerConfig struct {
	IngressSeconds  dist.Dist     // client → controller (one way)
	EgressSeconds   dist.Dist     // controller → client (one way)
	ProcessSeconds  dist.Dist     // routing decision
	OverheadSeconds dist.Dist     // activation bookkeeping (dominates)
	ResultSeconds   dist.Dist     // invoker → controller result hop
	StatusLatency   time.Duration // worker status propagation delay
	ActionTimeout   time.Duration // client-visible timeout

	// FastLaneName is the global priority topic of §III-C.
	FastLaneName string
}

// DefaultControllerConfig returns the calibrated request-path model.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		IngressSeconds:  dist.Uniform{Lo: 0.010, Hi: 0.040},
		EgressSeconds:   dist.Uniform{Lo: 0.010, Hi: 0.040},
		ProcessSeconds:  dist.Uniform{Lo: 0.002, Hi: 0.008},
		OverheadSeconds: dist.Lognormal{Mu: math.Log(0.62), Sigma: 0.30},
		ResultSeconds:   dist.Uniform{Lo: 0.010, Hi: 0.030},
		StatusLatency:   500 * time.Millisecond,
		ActionTimeout:   60 * time.Second,
		FastLaneName:    "fastlane",
	}
}

// Controller is the (modified) OpenWhisk controller: it routes
// invocations to the home invoker derived from the action-name hash,
// maintains the dynamic list of registered HPC-Whisk invokers, returns
// 503 when none is healthy, and participates in the fast-lane hand-off.
type Controller struct {
	sim *des.Sim
	b   *bus.Bus
	cfg ControllerConfig
	rng *rand.Rand

	actions  map[string]*Action
	slots    []*Invoker // nil entries are free slots
	fastLane *bus.Topic

	nextInvID int64

	// OnComplete observes every finished invocation (for load
	// generators and experiment accounting).
	OnComplete func(*Invocation)

	// Counters.
	Total     int
	N503      int
	NSuccess  int
	NFailed   int
	NTimeout  int
	Registers int
	Removes   int
	MovedToFL int
}

// NewController builds a controller over the given bus.
func NewController(sim *des.Sim, b *bus.Bus, cfg ControllerConfig, seed int64) *Controller {
	c := &Controller{
		sim:     sim,
		b:       b,
		cfg:     cfg,
		rng:     dist.NewRand(seed),
		actions: map[string]*Action{},
	}
	c.fastLane = b.Topic(cfg.FastLaneName)
	return c
}

// Sim exposes the simulation handle.
func (c *Controller) Sim() *des.Sim { return c.sim }

// Bus exposes the message bus.
func (c *Controller) Bus() *bus.Bus { return c.b }

// FastLane exposes the global priority topic.
func (c *Controller) FastLane() *bus.Topic { return c.fastLane }

// RegisterAction deploys a function.
func (c *Controller) RegisterAction(a *Action) {
	if _, dup := c.actions[a.Name]; dup {
		panic(fmt.Sprintf("whisk: action %q already registered", a.Name))
	}
	c.actions[a.Name] = a
}

// Action returns a deployed function by name.
func (c *Controller) Action(name string) *Action { return c.actions[name] }

// HealthyCount returns the number of invokers accepting work.
func (c *Controller) HealthyCount() int {
	n := 0
	for _, inv := range c.slots {
		if inv != nil && inv.state == InvokerHealthy {
			n++
		}
	}
	return n
}

// Utilization returns the busy share of healthy invoker capacity:
// in-flight executions over total concurrency slots, in [0, 1]. It is
// 0 with no healthy invoker. Supply policies use it as their
// harvested-pool load signal.
func (c *Controller) Utilization() float64 {
	capacity, busy := 0, 0
	for _, inv := range c.slots {
		if inv != nil && inv.state == InvokerHealthy {
			capacity += inv.cfg.Capacity
			busy += len(inv.running)
		}
	}
	if capacity == 0 {
		return 0
	}
	return float64(busy) / float64(capacity)
}

// Invoke submits a call to the named action; done fires exactly once
// with the final status. It returns the tracked invocation.
func (c *Controller) Invoke(name string, done func(*Invocation)) *Invocation {
	a, ok := c.actions[name]
	if !ok {
		panic(fmt.Sprintf("whisk: unknown action %q", name))
	}
	inv := &Invocation{
		ID:        c.nextInvID,
		Action:    a,
		Submitted: c.sim.Now(),
		InvokerID: -1,
		done:      done,
	}
	c.nextInvID++
	c.Total++
	ingress := dist.Seconds(c.cfg.IngressSeconds, c.rng) + dist.Seconds(c.cfg.ProcessSeconds, c.rng)
	c.sim.After(ingress, func() { c.route(inv) })
	return inv
}

// route picks the home invoker (hash + forward probing over the slot
// array, as OpenWhisk does) or completes with 503 if none is healthy.
func (c *Controller) route(inv *Invocation) {
	inv.Routed = c.sim.Now()
	target := c.pickInvoker(inv.Action)
	if target == nil {
		c.complete(inv, Status503)
		return
	}
	// Activation bookkeeping (the dominant fixed cost of the request
	// path), then the message lands on the invoker's topic.
	overhead := dist.Seconds(c.cfg.OverheadSeconds, c.rng)
	c.sim.After(overhead, func() {
		c.b.Publish(target.TopicName(), inv)
		c.armTimeout(inv)
	})
}

// pickInvoker routes to the action's home invoker (hash + forward
// probing over the slot array). If the home invoker is saturated (its
// buffer has less than half its limit free), the probe continues to a
// less-loaded healthy invoker — the load-balancing role of §II — and
// falls back to the home invoker when every candidate is saturated.
func (c *Controller) pickInvoker(a *Action) *Invoker {
	n := len(c.slots)
	if n == 0 {
		return nil
	}
	start := int(a.hash()) % n
	var home *Invoker
	for i := 0; i < n; i++ {
		inv := c.slots[(start+i)%n]
		if inv == nil || inv.state != InvokerHealthy {
			continue
		}
		if home == nil {
			home = inv
		}
		if inv.Buffered() < inv.cfg.BufferLimit/2 {
			return inv
		}
	}
	return home
}

func (c *Controller) armTimeout(inv *Invocation) {
	inv.timeoutEv = c.sim.After(c.cfg.ActionTimeout, func() {
		c.complete(inv, StatusTimeout)
	})
}

// finishFromInvoker is called by invokers on execution completion; the
// result travels back through the result hop before the client sees it.
func (c *Controller) finishFromInvoker(inv *Invocation, ok bool) {
	d := dist.Seconds(c.cfg.ResultSeconds, c.rng)
	c.sim.After(d, func() {
		if ok {
			c.complete(inv, StatusSuccess)
		} else {
			c.complete(inv, StatusFailed)
		}
	})
}

// complete finalizes an invocation exactly once.
func (c *Controller) complete(inv *Invocation, status Status) {
	if inv.Status != StatusPending {
		return
	}
	inv.timeoutEv.Stop()
	inv.Status = status
	egress := dist.Seconds(c.cfg.EgressSeconds, c.rng)
	c.sim.After(egress, func() {
		inv.Completed = c.sim.Now()
		switch status {
		case Status503:
			c.N503++
		case StatusSuccess:
			c.NSuccess++
		case StatusFailed:
			c.NFailed++
		case StatusTimeout:
			c.NTimeout++
		}
		if c.OnComplete != nil {
			c.OnComplete(inv)
		}
		if inv.done != nil {
			inv.done(inv)
		}
	})
}

// Register adds an invoker to the dynamic slot list (lowest free slot,
// as the HPC-Whisk controller maintains a dense dynamic invoker list)
// and returns its slot id. The invoker starts polling immediately.
func (c *Controller) Register(inv *Invoker) int {
	slot := -1
	for i, s := range c.slots {
		if s == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(c.slots)
		c.slots = append(c.slots, nil)
	}
	c.slots[slot] = inv
	inv.attach(c, slot)
	c.Registers++
	return slot
}

// SetDraining marks an invoker as leaving: the controller stops routing
// to it and, after the status-propagation latency, moves the unpulled
// messages from its topic to the fast lane (§III-C: "the controller
// moves all the unpulled requests from the worker's Kafka topic to the
// fast lane topic").
func (c *Controller) SetDraining(inv *Invoker) {
	c.sim.After(c.cfg.StatusLatency, func() {
		c.MovedToFL += inv.topic.MoveAll(c.fastLane)
	})
}

// Deregister removes an invoker from the slot list. Any stragglers left
// on its topic move to the fast lane first.
func (c *Controller) Deregister(inv *Invoker) {
	c.MovedToFL += inv.topic.MoveAll(c.fastLane)
	for i, s := range c.slots {
		if s == inv {
			c.slots[i] = nil
		}
	}
	c.Removes++
}

// DeregisterLossy removes an invoker without rescuing its topic: the
// unmodified-OpenWhisk behavior where a vanished worker's requests are
// never processed and time out (§II). Used by Invoker.Kill for the
// no-hand-off ablation.
func (c *Controller) DeregisterLossy(inv *Invoker) {
	for i, s := range c.slots {
		if s == inv {
			c.slots[i] = nil
		}
	}
	c.Removes++
}

// requeueFastLane is used by invokers handing off buffered or
// interrupted work.
func (c *Controller) requeueFastLane(msgs []*bus.Message) {
	c.fastLane.Requeue(msgs)
	c.MovedToFL += len(msgs)
}
