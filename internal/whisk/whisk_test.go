package whisk

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/dist"
)

func newSystem(invokers int) (*des.Sim, *Controller, []*Invoker) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	c := NewController(sim, b, DefaultControllerConfig(), 2)
	ws := make([]*Invoker, invokers)
	for i := range ws {
		ws[i] = NewInvoker(DefaultInvokerConfig(), int64(100+i))
		c.Register(ws[i])
	}
	return sim, c, ws
}

func sleepAction(name string) *Action {
	return &Action{Name: name, MemoryMB: 256, Exec: FixedExec(10 * time.Millisecond), Interruptible: true}
}

func TestInvokeSuccess(t *testing.T) {
	sim, c, _ := newSystem(2)
	c.RegisterAction(sleepAction("f"))
	var got *Invocation
	c.Invoke("f", func(inv *Invocation) { got = inv })
	sim.RunUntil(10 * time.Second)
	if got == nil {
		t.Fatal("invocation never completed")
	}
	if got.Status != StatusSuccess && got.Status != StatusFailed {
		t.Fatalf("status = %v", got.Status)
	}
	if got.Status == StatusSuccess {
		lat := got.Latency()
		if lat < 300*time.Millisecond || lat > 3*time.Second {
			t.Errorf("latency = %v, want sub-3s with cold start", lat)
		}
		if !got.ColdStart {
			t.Error("first call should cold start")
		}
	}
}

func TestWarmCallsFaster(t *testing.T) {
	sim, c, _ := newSystem(1)
	cfg := DefaultInvokerConfig()
	_ = cfg
	c.RegisterAction(sleepAction("f"))
	var cold, warm *Invocation
	c.Invoke("f", func(inv *Invocation) { cold = inv })
	sim.RunUntil(5 * time.Second)
	c.Invoke("f", func(inv *Invocation) { warm = inv })
	sim.RunUntil(10 * time.Second)
	if cold == nil || warm == nil {
		t.Fatal("invocations incomplete")
	}
	if warm.ColdStart {
		t.Error("second call should reuse the warm container")
	}
	if warm.Latency() >= cold.Latency() {
		t.Errorf("warm latency %v not below cold %v", warm.Latency(), cold.Latency())
	}
}

func Test503WhenNoInvokers(t *testing.T) {
	sim, c, _ := newSystem(0)
	c.RegisterAction(sleepAction("f"))
	var got *Invocation
	c.Invoke("f", func(inv *Invocation) { got = inv })
	sim.RunUntil(time.Second)
	if got == nil || got.Status != Status503 {
		t.Fatalf("got %+v, want 503", got)
	}
	if c.N503 != 1 {
		t.Errorf("N503 = %d", c.N503)
	}
	// 503 must be fast (§III-E: immediately returned).
	if got.Latency() > 200*time.Millisecond {
		t.Errorf("503 latency = %v, want fast", got.Latency())
	}
}

func TestHashRoutingStable(t *testing.T) {
	sim, c, _ := newSystem(4)
	c.RegisterAction(sleepAction("stable-f"))
	invokersSeen := map[int]bool{}
	for i := 0; i < 10; i++ {
		c.Invoke("stable-f", func(inv *Invocation) { invokersSeen[inv.InvokerID] = true })
		sim.RunUntil(sim.Now() + 5*time.Second)
	}
	if len(invokersSeen) != 1 {
		t.Errorf("one action routed to %d invokers, want 1 (hash affinity)", len(invokersSeen))
	}
}

func TestManyActionsSpread(t *testing.T) {
	sim, c, _ := newSystem(8)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("f%d", i)
		c.RegisterAction(sleepAction(name))
		c.Invoke(name, func(inv *Invocation) { seen[inv.InvokerID] = true })
	}
	sim.RunUntil(30 * time.Second)
	if len(seen) < 6 {
		t.Errorf("100 actions hit only %d of 8 invokers", len(seen))
	}
}

func TestSigtermHandoffNoLoss(t *testing.T) {
	sim, c, ws := newSystem(2)
	// Long action so work is in flight during the hand-off.
	c.RegisterAction(&Action{Name: "slow", Exec: FixedExec(5 * time.Second), Interruptible: true})
	done := 0
	statuses := map[Status]int{}
	for i := 0; i < 12; i++ {
		c.Invoke("slow", func(inv *Invocation) {
			done++
			statuses[inv.Status]++
		})
	}
	sim.RunUntil(2 * time.Second)
	// SIGTERM the invoker that owns "slow".
	target := ws[0]
	if c.pickInvoker(c.Action("slow")) == ws[1] {
		target = ws[1]
	}
	drained := false
	target.Sigterm(true, func() { drained = true })
	sim.RunUntil(5 * time.Minute)
	if !drained {
		t.Fatal("invoker never drained")
	}
	if done != 12 {
		t.Fatalf("completed %d of 12", done)
	}
	if statuses[StatusTimeout] > 0 {
		t.Errorf("hand-off lost work: %v", statuses)
	}
	if statuses[StatusSuccess]+statuses[StatusFailed] != 12 {
		t.Errorf("statuses = %v", statuses)
	}
	if target.State() != InvokerGone {
		t.Errorf("state = %v, want gone", target.State())
	}
}

func TestSigtermMovesBufferToFastLane(t *testing.T) {
	sim, c, ws := newSystem(1)
	c.RegisterAction(&Action{Name: "slow2", Exec: FixedExec(20 * time.Second), Interruptible: false})
	for i := 0; i < 40; i++ { // way beyond capacity 16
		c.Invoke("slow2", nil)
	}
	sim.RunUntil(3 * time.Second)
	w := ws[0]
	if w.Buffered() == 0 {
		t.Fatal("expected buffered work before hand-off")
	}
	w.Sigterm(false, nil)
	sim.RunUntil(4 * time.Second)
	if c.FastLane().Len() == 0 {
		t.Error("fast lane empty after hand-off")
	}
	if w.Buffered() != 0 {
		t.Error("buffer not flushed")
	}
}

func TestNonInterruptibleRunsToCompletion(t *testing.T) {
	sim, c, ws := newSystem(1)
	c.RegisterAction(&Action{Name: "atomic", Exec: FixedExec(10 * time.Second), Interruptible: false})
	var got *Invocation
	c.Invoke("atomic", func(inv *Invocation) { got = inv })
	sim.RunUntil(2 * time.Second)
	drainedAt := des.Time(0)
	ws[0].Sigterm(true, func() { drainedAt = sim.Now() })
	sim.RunUntil(time.Minute)
	if got == nil || got.Status != StatusSuccess {
		t.Fatalf("non-interruptible lost: %+v", got)
	}
	if got.Requeues != 0 {
		t.Errorf("requeues = %d, want 0", got.Requeues)
	}
	if drainedAt < 10*time.Second {
		t.Errorf("drained at %v, before the running call finished", drainedAt)
	}
}

func TestInterruptibleRequeuedElsewhere(t *testing.T) {
	sim, c, ws := newSystem(2)
	c.RegisterAction(&Action{Name: "longjob", Exec: FixedExec(8 * time.Second), Interruptible: true})
	var got *Invocation
	c.Invoke("longjob", func(inv *Invocation) { got = inv })
	sim.RunUntil(3 * time.Second)
	owner := ws[0]
	other := ws[1]
	if c.pickInvoker(c.Action("longjob")) == ws[1] {
		owner, other = ws[1], ws[0]
	}
	owner.Sigterm(true, nil)
	sim.RunUntil(2 * time.Minute)
	if got == nil || got.Status != StatusSuccess {
		t.Fatalf("interrupted call lost: %+v", got)
	}
	if got.Requeues != 1 {
		t.Errorf("requeues = %d, want 1", got.Requeues)
	}
	if got.InvokerID != other.Slot() {
		t.Errorf("finished on invoker %d, want the surviving %d", got.InvokerID, other.Slot())
	}
}

func TestKillLosesWork(t *testing.T) {
	sim, c, ws := newSystem(1)
	c.RegisterAction(&Action{Name: "doomed", Exec: FixedExec(30 * time.Second), Interruptible: true})
	statuses := map[Status]int{}
	for i := 0; i < 5; i++ {
		c.Invoke("doomed", func(inv *Invocation) { statuses[inv.Status]++ })
	}
	sim.RunUntil(2 * time.Second)
	ws[0].Kill()
	sim.RunUntil(5 * time.Minute)
	if statuses[StatusTimeout] == 0 {
		t.Errorf("kill without hand-off should lose work: %v", statuses)
	}
	if statuses[StatusSuccess] > 0 {
		t.Errorf("killed invoker produced successes: %v", statuses)
	}
}

func TestDrainingNotRoutedTo(t *testing.T) {
	sim, c, ws := newSystem(2)
	c.RegisterAction(sleepAction("g"))
	owner := c.pickInvoker(c.Action("g"))
	owner.Sigterm(false, nil)
	var got *Invocation
	c.Invoke("g", func(inv *Invocation) { got = inv })
	sim.RunUntil(time.Minute)
	if got == nil || got.Status != StatusSuccess {
		t.Fatalf("invocation failed after drain: %+v", got)
	}
	surviving := ws[0]
	if owner == ws[0] {
		surviving = ws[1]
	}
	if got.InvokerID != surviving.Slot() {
		t.Errorf("routed to %d, want surviving invoker %d", got.InvokerID, surviving.Slot())
	}
}

func TestReRegistrationReusesSlot(t *testing.T) {
	sim, c, ws := newSystem(3)
	ws[1].Sigterm(false, nil)
	sim.RunUntil(10 * time.Second)
	w := NewInvoker(DefaultInvokerConfig(), 999)
	slot := c.Register(w)
	if slot != 1 {
		t.Errorf("new invoker got slot %d, want reclaimed slot 1", slot)
	}
	if c.HealthyCount() != 3 {
		t.Errorf("healthy = %d, want 3", c.HealthyCount())
	}
}

func TestBufferOverflowRejects(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	c := NewController(sim, b, DefaultControllerConfig(), 2)
	cfg := DefaultInvokerConfig()
	cfg.Capacity = 1
	cfg.BufferLimit = 4
	cfg.PullBatch = 8
	w := NewInvoker(cfg, 7)
	c.Register(w)
	c.RegisterAction(&Action{Name: "h", Exec: FixedExec(30 * time.Second), Interruptible: true})
	statuses := map[Status]int{}
	for i := 0; i < 30; i++ {
		c.Invoke("h", func(inv *Invocation) { statuses[inv.Status]++ })
	}
	sim.RunUntil(90 * time.Second)
	if w.Rejected == 0 {
		t.Error("no rejections despite buffer overflow")
	}
	if statuses[StatusFailed] == 0 {
		t.Errorf("overflow should fail requests: %v", statuses)
	}
}

func TestEveryInvocationCompletesOnce(t *testing.T) {
	sim, c, ws := newSystem(3)
	for i := 0; i < 10; i++ {
		c.RegisterAction(&Action{
			Name:          fmt.Sprintf("p%d", i),
			Exec:          DistExec(dist.Uniform{Lo: 0.01, Hi: 2.0}),
			Interruptible: i%2 == 0,
		})
	}
	completions := map[int64]int{}
	total := 0
	tick := sim.Every(200*time.Millisecond, func() {
		name := fmt.Sprintf("p%d", total%10)
		c.Invoke(name, func(inv *Invocation) { completions[inv.ID]++ })
		total++
	})
	// Churn: terminate and replace invokers during the run.
	sim.Schedule(10*time.Second, func() { ws[0].Sigterm(true, nil) })
	sim.Schedule(20*time.Second, func() { ws[1].Kill() })
	sim.Schedule(30*time.Second, func() {
		c.Register(NewInvoker(DefaultInvokerConfig(), 555))
	})
	sim.RunUntil(45 * time.Second)
	tick.Stop()
	sim.RunUntil(sim.Now() + 3*time.Minute)
	if total == 0 {
		t.Fatal("no invocations issued")
	}
	if len(completions) != total {
		t.Fatalf("completed %d of %d", len(completions), total)
	}
	for id, n := range completions {
		if n != 1 {
			t.Fatalf("invocation %d completed %d times", id, n)
		}
	}
	if c.NSuccess+c.NFailed+c.NTimeout+c.N503 != total {
		t.Errorf("counter sum %d != total %d",
			c.NSuccess+c.NFailed+c.NTimeout+c.N503, total)
	}
}

func TestMedianLatencyCalibration(t *testing.T) {
	// §V-C: a 10 ms function should see a median response ≈0.8-0.9 s.
	sim, c, _ := newSystem(4)
	for i := 0; i < 20; i++ {
		c.RegisterAction(sleepAction(fmt.Sprintf("s%d", i)))
	}
	var lat []time.Duration
	n := 0
	tick := sim.Every(100*time.Millisecond, func() {
		c.Invoke(fmt.Sprintf("s%d", n%20), func(inv *Invocation) {
			if inv.Status == StatusSuccess && !inv.ColdStart {
				lat = append(lat, inv.Latency())
			}
		})
		n++
	})
	sim.RunUntil(2 * time.Minute)
	tick.Stop()
	sim.RunUntil(sim.Now() + time.Minute)
	if len(lat) < 200 {
		t.Fatalf("only %d warm successes", len(lat))
	}
	// Median of warm calls.
	med := medianDur(lat)
	if med < 500*time.Millisecond || med > 1300*time.Millisecond {
		t.Errorf("warm median latency = %v, want ≈0.8-0.9s", med)
	}
}

func medianDur(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
