// Package whisk emulates the OpenWhisk FaaS middleware with the
// HPC-Whisk modifications of §III: a controller that routes invocations
// to invokers by action-name hash, per-invoker Kafka topics, a container
// pool with cold/warm starts on each invoker — plus the paper's
// extensions: dynamic invoker (de)registration, continuous worker status
// reporting, and the global fast-lane topic used to hand off the queue
// of a terminating invoker.
package whisk

import (
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/des"
	"repro/internal/dist"
)

// ExecFunc models the in-container execution time of one invocation.
type ExecFunc func(r *rand.Rand) time.Duration

// FixedExec returns an ExecFunc with a constant duration.
func FixedExec(d time.Duration) ExecFunc {
	return func(*rand.Rand) time.Duration { return d }
}

// DistExec returns an ExecFunc drawing seconds from a distribution.
func DistExec(d dist.Dist) ExecFunc {
	return func(r *rand.Rand) time.Duration { return dist.Seconds(d, r) }
}

// Action is a deployed function.
type Action struct {
	Name     string
	MemoryMB int
	Exec     ExecFunc

	// Interruptible marks the function safe to interrupt mid-execution
	// and re-queue through the fast lane during an invoker hand-off
	// (§III-C lets clients opt out for functions with non-atomic
	// external side effects).
	Interruptible bool

	// Checkpoint attaches a checkpoint/restore model: executions of an
	// interruptible action periodically dump their state, and an
	// interrupted execution re-queues as a resume token that continues
	// from the last checkpoint on another invoker (or the cloud
	// fallback) instead of restarting. nil — or a model whose Enabled
	// is false — leaves the execution path exactly as it was.
	Checkpoint *checkpoint.Model

	// nameHash memoizes hash() at RegisterAction time: the home-invoker
	// derivation reads it on every route, and the value never changes
	// for a deployed action (Name is fixed at registration).
	nameHash uint32
}

func (a *Action) hash() uint32 {
	h := fnv.New32a()
	h.Write([]byte(a.Name))
	return h.Sum32()
}

// Status classifies the outcome of an invocation.
type Status uint8

// Invocation outcomes. StatusPending is in flight; Status503 means the
// controller had no healthy invoker (§III-E); StatusSuccess completed;
// StatusFailed errored during execution (e.g. container-limit pressure);
// StatusTimeout never returned within the action timeout (lost requests
// surface here, as in the paper's "not finished" class).
const (
	StatusPending Status = iota
	StatusSuccess
	StatusFailed
	StatusTimeout
	Status503
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusSuccess:
		return "success"
	case StatusFailed:
		return "failed"
	case StatusTimeout:
		return "timeout"
	case Status503:
		return "503"
	default:
		return "unknown"
	}
}

// Invocation is one function call from submission to completion.
//
// Invocations may be pooled by their controller (see
// ControllerConfig.PoolInvocations): lifetime is tracked by a reference
// count covering pending request-path hops, queued bus messages, and
// the executing invoker, and the last release recycles the object for
// a later request. With pooling enabled, a pointer retained past the
// done/OnComplete callback goes stale once traffic continues;
// Generation detects such reuse.
type Invocation struct {
	ID     int64
	Action *Action

	Submitted des.Time // client sent the request
	Routed    des.Time // controller picked an invoker (or 503'd)
	Executed  des.Time // execution started on a node
	Completed des.Time // client received the outcome

	Status    Status
	ColdStart bool
	Requeues  int // fast-lane hops before execution
	InvokerID int // slot of the executing invoker, -1 if none

	// Resume-token state of the checkpoint subsystem. Progress is the
	// execution-body time durably checkpointed so far; StateMB is the
	// serialized size of the last checkpoint (what a resume transfers);
	// Resumes counts restore-and-continue attempts. All three stay zero
	// on actions without an enabled checkpoint model.
	Progress time.Duration
	StateMB  float64
	Resumes  int

	done      func(*Invocation)
	timeoutEv des.Event
	execEv    des.Event // completion event while executing (for interrupts)
	invoker   *Invoker

	// Allocation-free request-path state. routeTarget carries the routing
	// decision to the publish hop; execOK carries the execution outcome
	// through the result hop; execStartAt is stamped into Executed when
	// (and only when) the execution completes, matching the pre-pooling
	// semantics where an interrupted attempt left no trace.
	routeTarget *Invoker
	execOK      bool
	execStartAt des.Time

	// Checkpointed-execution state. bodyTotal is the execution-body
	// duration drawn once on the first attempt (a resume continues the
	// same body instead of redrawing); segWork is the work scheduled in
	// the in-flight segment; segStartAt is when that segment's body
	// work began (after start-up, restore, or dump pause).
	bodyTotal  time.Duration
	segWork    time.Duration
	segStartAt des.Time

	refs   int32  // live references; 0 = recyclable
	gen    uint32 // increments on every recycle
	pooled bool   // sitting in the controller free list
}

// Generation reports how many times the invocation's slot has been
// recycled, letting holders of a retained pointer detect reuse under
// pooling.
func (inv *Invocation) Generation() uint32 { return inv.gen }

// Remaining returns the execution-body time still owed beyond the last
// checkpoint, or 0 when no checkpointed attempt has started. The
// Alg. 1 wrapper uses it to resume a stranded execution on the cloud
// fallback.
func (inv *Invocation) Remaining() time.Duration {
	if inv.bodyTotal <= inv.Progress {
		return 0
	}
	return inv.bodyTotal - inv.Progress
}

// Latency returns the client-observed response time.
func (inv *Invocation) Latency() time.Duration { return inv.Completed - inv.Submitted }
