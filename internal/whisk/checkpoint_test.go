package whisk

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/checkpoint"
	"repro/internal/des"
	"repro/internal/dist"
)

// constModel builds a checkpoint model with every distribution pinned
// to a constant, so segment boundaries land at predictable times.
func constModel(interval, cost time.Duration, stateMB, bwMBps, overheadSec float64) *checkpoint.Model {
	return &checkpoint.Model{
		Interval:        dist.Constant{Value: interval.Seconds()},
		Cost:            dist.Constant{Value: cost.Seconds()},
		StateMB:         dist.Constant{Value: stateMB},
		BandwidthMBps:   dist.Constant{Value: bwMBps},
		RestoreOverhead: dist.Constant{Value: overheadSec},
	}
}

// TestCheckpointedExecutionCompletes pins the segment chain of an
// undisturbed checkpointed execution: a 3.5 s body with a 1 s interval
// dumps exactly 3 checkpoints (at 1 s, 2 s, 3 s of body work — the
// final boundary completes instead of dumping), pays the dump pause
// each time, and books the full body as goodput.
func TestCheckpointedExecutionCompletes(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	c := NewController(sim, b, DefaultControllerConfig(), 2)
	c.RegisterAction(&Action{
		Name: "f", MemoryMB: 256,
		Exec:          FixedExec(3500 * time.Millisecond),
		Interruptible: true,
		Checkpoint:    constModel(time.Second, 100*time.Millisecond, 64, 1000, 0.5),
	})
	w := NewInvoker(DefaultInvokerConfig(), 3)
	c.Register(w)

	status := StatusPending
	c.Invoke("f", func(inv *Invocation) { status = inv.Status })
	sim.RunFor(time.Minute)

	if status != StatusSuccess {
		t.Fatalf("status = %v, want success", status)
	}
	if w.Checkpoints != 3 || c.Work.Checkpoints != 3 {
		t.Errorf("checkpoints = %d/%d, want 3/3", w.Checkpoints, c.Work.Checkpoints)
	}
	if c.Work.CheckpointTime != 300*time.Millisecond {
		t.Errorf("checkpoint time = %v, want 300ms", c.Work.CheckpointTime)
	}
	if c.Work.Goodput != 3500*time.Millisecond {
		t.Errorf("goodput = %v, want 3.5s", c.Work.Goodput)
	}
	if c.Work.Resumed != 0 || c.Work.Wasted != 0 || c.Work.Lost != 0 {
		t.Errorf("undisturbed run accounted resume/waste/loss: %+v", c.Work)
	}
}

// TestSigtermResumesFromLastCheckpoint is the end-to-end resume path:
// an interrupted checkpointed execution re-queues through the fast
// lane as a resume token, a successor invoker pays the restore cost,
// continues from the last checkpoint, and the ledger balances — full
// body as goodput, only the torn segment wasted, nothing lost.
func TestSigtermResumesFromLastCheckpoint(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	c := NewController(sim, b, DefaultControllerConfig(), 2)
	c.RegisterAction(&Action{
		Name: "f", MemoryMB: 256,
		Exec:          FixedExec(10 * time.Second),
		Interruptible: true,
		Checkpoint:    constModel(time.Second, 100*time.Millisecond, 128, 1000, 0.5),
	})
	w := NewInvoker(DefaultInvokerConfig(), 3)
	c.Register(w)

	var resumes int
	status := StatusPending
	c.Invoke("f", func(inv *Invocation) {
		status = inv.Status
		resumes = inv.Resumes
	})
	sim.RunFor(3500 * time.Millisecond) // a few checkpoints in, mid-segment
	w.Sigterm(true, nil)
	if got := c.fastLane.Len(); got != 1 {
		t.Fatalf("fast lane holds %d messages, want the resume token", got)
	}
	if c.Work.Wasted <= 0 || c.Work.Wasted >= time.Second {
		t.Fatalf("wasted = %v, want a partial segment in (0, 1s)", c.Work.Wasted)
	}

	w2 := NewInvoker(DefaultInvokerConfig(), 4)
	c.Register(w2)
	sim.RunFor(time.Minute)

	if status != StatusSuccess {
		t.Fatalf("status = %v, want success", status)
	}
	if resumes != 1 {
		t.Errorf("resumes = %d, want 1", resumes)
	}
	if w2.Resumed != 1 || c.Work.Resumed != 1 {
		t.Errorf("resumed = %d/%d, want 1/1", w2.Resumed, c.Work.Resumed)
	}
	// Restore pays at least transfer (128 MB / 1000 MB/s) + 0.5 s overhead.
	if c.Work.RestoreTime < 628*time.Millisecond {
		t.Errorf("restore time = %v, want ≥ 628ms", c.Work.RestoreTime)
	}
	if c.Work.Goodput != 10*time.Second {
		t.Errorf("goodput = %v, want the full 10s body", c.Work.Goodput)
	}
	if c.Work.Lost != 0 {
		t.Errorf("lost = %v, want 0 — the resume rescued everything", c.Work.Lost)
	}
}

// TestKillLosesProgress: a hard kill destroys checkpointed progress on
// the pilot side — the full elapsed body work lands in Lost.
func TestKillLosesProgress(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	c := NewController(sim, b, DefaultControllerConfig(), 2)
	c.RegisterAction(&Action{
		Name: "f", MemoryMB: 256,
		Exec:          FixedExec(10 * time.Second),
		Interruptible: true,
		Checkpoint:    constModel(time.Second, 100*time.Millisecond, 128, 1000, 0.5),
	})
	w := NewInvoker(DefaultInvokerConfig(), 3)
	c.Register(w)

	c.Invoke("f", nil)
	sim.RunFor(3500 * time.Millisecond)
	w.Kill()
	if c.Work.Lost <= 0 {
		t.Errorf("lost = %v, want the killed progress", c.Work.Lost)
	}
	if c.Work.Goodput != 0 {
		t.Errorf("goodput = %v, want 0", c.Work.Goodput)
	}
}

// TestInterruptDuringCheckpointDefersRecycle extends
// TestInterruptOfTimedOutExecution to the checkpoint subsystem: the
// client timeout expires while a checkpointed execution has a segment
// event in flight, then the pilot gets SIGTERM. The interrupt must not
// recycle the pooled invocation — the fast-lane resume token still
// references it — and recycling happens only after the successor's
// dispatch drops that last reference.
func TestInterruptDuringCheckpointDefersRecycle(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	cfg := DefaultControllerConfig()
	cfg.PoolInvocations = true
	cfg.ActionTimeout = 2 * time.Second
	c := NewController(sim, b, cfg, 2)
	c.RegisterAction(&Action{
		Name: "slow", MemoryMB: 256,
		Exec:          FixedExec(30 * time.Second),
		Interruptible: true,
		Checkpoint:    constModel(time.Second, 100*time.Millisecond, 64, 1000, 0.5),
	})
	w := NewInvoker(DefaultInvokerConfig(), 3)
	c.Register(w)

	timedOut := false
	c.Invoke("slow", func(inv *Invocation) { timedOut = inv.Status == StatusTimeout })
	sim.RunFor(10 * time.Second) // past the timeout, several checkpoints in
	if !timedOut {
		t.Fatal("invocation should have timed out")
	}
	if w.Checkpoints == 0 {
		t.Fatal("no checkpoint event ever fired; the test rig is wrong")
	}
	w.Sigterm(true, nil) // segment event in flight — must not recycle mid-loop
	if got := c.fastLane.Len(); got != 1 {
		t.Fatalf("fast lane holds %d messages, want the resume token", got)
	}
	if len(c.invPool) != 0 {
		t.Fatal("invocation recycled while its resume token sits in the fast lane")
	}
	// The successor drains the fast lane; dispatch skips the completed
	// invocation and the token's reference — the last one — recycles it.
	c.Register(NewInvoker(DefaultInvokerConfig(), 4))
	sim.RunFor(time.Minute)
	if c.fastLane.Len() != 0 {
		t.Error("fast lane not drained")
	}
	if len(c.invPool) != 1 {
		t.Errorf("pool size = %d after drain, want 1", len(c.invPool))
	}
}

// TestRecycleResetsResumeToken: a recycled invocation must not leak
// checkpoint state (Progress/StateMB/Resumes) into its next life —
// stale progress would make a fresh invocation start mid-body.
func TestRecycleResetsResumeToken(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	cfg := DefaultControllerConfig()
	cfg.PoolInvocations = true
	c := NewController(sim, b, cfg, 2)
	c.RegisterAction(&Action{
		Name: "f", MemoryMB: 256,
		Exec:          FixedExec(3 * time.Second),
		Interruptible: true,
		Checkpoint:    constModel(time.Second, 50*time.Millisecond, 64, 1000, 0.2),
	})
	w := NewInvoker(DefaultInvokerConfig(), 3)
	c.Register(w)

	c.Invoke("f", nil)
	sim.RunFor(time.Minute)
	if len(c.invPool) != 1 {
		t.Fatalf("pool size = %d, want 1", len(c.invPool))
	}
	fresh := c.Invoke("f", nil)
	if fresh.Progress != 0 || fresh.StateMB != 0 || fresh.Resumes != 0 {
		t.Errorf("recycled invocation leaked resume state: progress=%v state=%.1fMB resumes=%d",
			fresh.Progress, fresh.StateMB, fresh.Resumes)
	}
	if fresh.bodyTotal != 0 || fresh.segWork != 0 {
		t.Errorf("recycled invocation leaked segment state: body=%v seg=%v",
			fresh.bodyTotal, fresh.segWork)
	}
	sim.RunFor(time.Minute)
}
