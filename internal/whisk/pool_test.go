package whisk

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/des"
)

// pooledRig builds a pooled controller with one registered invoker and
// a 10 ms sleep action.
func pooledRig(t *testing.T) (*des.Sim, *Controller, *Invoker) {
	t.Helper()
	sim := des.New()
	b := bus.New(sim, nil, 1)
	cfg := DefaultControllerConfig()
	cfg.PoolInvocations = true
	c := NewController(sim, b, cfg, 2)
	c.RegisterAction(&Action{Name: "f", MemoryMB: 256, Exec: FixedExec(10 * time.Millisecond), Interruptible: true})
	w := NewInvoker(DefaultInvokerConfig(), 3)
	c.Register(w)
	return sim, c, w
}

// TestStaleInvocationHandleAfterRecycle pins the pooling contract: a
// pointer retained past the done callback goes stale once traffic
// continues — the same object is handed to a later invocation with a
// bumped generation — so holders must copy fields inside the callback
// (as every in-repo client does) or detect reuse via Generation.
func TestStaleInvocationHandleAfterRecycle(t *testing.T) {
	sim, c, _ := pooledRig(t)

	var stale *Invocation
	var staleGen uint32
	var firstID int64
	c.Invoke("f", func(inv *Invocation) {
		stale = inv
		staleGen = inv.Generation()
		firstID = inv.ID
	})
	sim.RunFor(time.Minute)
	if stale == nil {
		t.Fatal("first invocation never completed")
	}
	if len(c.invPool) != 1 {
		t.Fatalf("pool size = %d after completion, want 1", len(c.invPool))
	}

	fresh := c.Invoke("f", nil)
	if fresh != stale {
		t.Fatalf("second invocation did not reuse the pooled object (%p vs %p)", fresh, stale)
	}
	if fresh.Generation() != staleGen+1 {
		t.Errorf("generation = %d, want %d", fresh.Generation(), staleGen+1)
	}
	if fresh.ID == firstID {
		t.Error("recycled invocation kept the old ID")
	}
	if fresh.Status != StatusPending || fresh.Completed != 0 || fresh.Requeues != 0 {
		t.Errorf("recycled invocation not reset: %+v", fresh)
	}
	sim.RunFor(time.Minute)
}

// TestTimeoutDuringExecutionDefersRecycle: when the client-visible
// timeout fires while the invoker is still executing, the done callback
// runs immediately but the object must stay out of the pool until the
// execution (and its result hop) release their references — otherwise
// the invoker would finish into a recycled object.
func TestTimeoutDuringExecutionDefersRecycle(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	cfg := DefaultControllerConfig()
	cfg.PoolInvocations = true
	cfg.ActionTimeout = 2 * time.Second // expire mid-execution
	c := NewController(sim, b, cfg, 2)
	c.RegisterAction(&Action{Name: "slow", MemoryMB: 256, Exec: FixedExec(30 * time.Second)})
	w := NewInvoker(DefaultInvokerConfig(), 3)
	c.Register(w)

	timedOut := false
	c.Invoke("slow", func(inv *Invocation) {
		timedOut = inv.Status == StatusTimeout
	})
	sim.RunFor(10 * time.Second) // past the timeout, mid-execution
	if !timedOut {
		t.Fatal("invocation should have timed out")
	}
	if len(c.invPool) != 0 {
		t.Fatal("invocation recycled while the invoker still executes it")
	}
	if w.Running() != 1 {
		t.Fatalf("running = %d, want 1", w.Running())
	}
	sim.RunFor(time.Minute) // execution drains, last reference drops
	if len(c.invPool) != 1 {
		t.Errorf("pool size = %d after execution drained, want 1", len(c.invPool))
	}
}

// TestKillRecyclesBufferedMessagesButNotRottingOnes: a hard kill drops
// the invoker's buffered messages (their invocations later surface as
// timeouts and recycle), while messages still rotting on the dead
// topic keep their invocations out of the pool — recycling them would
// hand a referenced object to a new request.
func TestKillRecyclesRotInvocationsOnlyAfterTimeout(t *testing.T) {
	sim, c, w := pooledRig(t)
	for i := 0; i < 10; i++ {
		c.Invoke("f", nil)
	}
	sim.RunFor(900 * time.Millisecond) // routed/published; some buffered, some queued
	w.Kill()
	sim.RunFor(30 * time.Second)
	if got := c.NSuccess + c.NFailed + c.NTimeout + c.N503; got == 10 {
		t.Skip("everything completed before the kill; nothing rots")
	}
	if len(c.invPool) == 10 {
		t.Fatal("rotting invocations recycled before their timeouts resolved")
	}
	sim.RunFor(2 * time.Minute) // past the action timeout
	if got := c.NSuccess + c.NFailed + c.NTimeout + c.N503; got != 10 {
		t.Fatalf("completions = %d, want 10", got)
	}
}

// TestDeregisterCompactsTrailingSlots is the regression test for the
// unbounded slot-array growth: a day of register/deregister churn must
// not leave HealthyCount and Utilization scanning a mostly-nil array.
// The hash modulus (slotSpan) deliberately keeps the high-water mark so
// home-invoker routing stays stable — see the field comment.
func TestDeregisterCompactsTrailingSlots(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	c := NewController(sim, b, DefaultControllerConfig(), 2)

	mk := func() *Invoker { return NewInvoker(DefaultInvokerConfig(), 7) }
	var ws []*Invoker
	for i := 0; i < 8; i++ {
		w := mk()
		if got := c.Register(w); got != i {
			t.Fatalf("register %d got slot %d", i, got)
		}
		ws = append(ws, w)
	}
	// Deregister the tail: the array must shrink with it.
	for i := 7; i >= 3; i-- {
		c.Deregister(ws[i])
		if len(c.slots) != i {
			t.Fatalf("after deregistering slot %d: len(slots) = %d, want %d", i, len(c.slots), i)
		}
	}
	if c.slotSpan != 8 {
		t.Errorf("slotSpan = %d, want the high-water 8", c.slotSpan)
	}
	// A hole in the middle stays until the tail reaches it…
	c.Deregister(ws[1])
	if len(c.slots) != 3 {
		t.Errorf("mid-hole deregister should not shrink: len = %d, want 3", len(c.slots))
	}
	// …and the freed middle slot is reused before the array grows.
	w := mk()
	if got := c.Register(w); got != 1 {
		t.Errorf("register into hole got slot %d, want 1", got)
	}
	// Clearing everything empties the array entirely.
	c.Deregister(ws[0])
	c.Deregister(ws[2])
	c.Deregister(w)
	if len(c.slots) != 0 {
		t.Errorf("len(slots) = %d after full churn, want 0", len(c.slots))
	}
	if c.HealthyCount() != 0 {
		t.Errorf("healthy = %d, want 0", c.HealthyCount())
	}
	// Routing still works over the compacted array: a fresh register
	// reuses slot 0 and receives traffic.
	c.RegisterAction(&Action{Name: "g", MemoryMB: 128, Exec: FixedExec(time.Millisecond)})
	w2 := mk()
	if got := c.Register(w2); got != 0 {
		t.Fatalf("post-churn register got slot %d, want 0", got)
	}
	doneStatus := StatusPending
	c.Invoke("g", func(inv *Invocation) { doneStatus = inv.Status })
	sim.RunFor(time.Minute)
	if doneStatus != StatusSuccess {
		t.Errorf("post-churn invocation status = %v, want success", doneStatus)
	}
}

// TestPooledRequestPathSteadyStateAllocs pins the tentpole: once pools
// are warm, a full invoke→route→publish→pull→execute→result→egress
// round trip performs (near) zero heap allocations.
func TestPooledRequestPathSteadyStateAllocs(t *testing.T) {
	sim, c, _ := pooledRig(t)
	run := func() {
		c.Invoke("f", nil)
		sim.RunFor(5 * time.Second)
	}
	for i := 0; i < 3; i++ {
		run() // warm invocation, message, and des pools
	}
	allocs := testing.AllocsPerRun(200, run)
	// The des heap and slot pool may still grow once while settling;
	// anything above a stray object per run means a pool is bypassed.
	if allocs > 1 {
		t.Errorf("steady-state request path allocates %.2f objects/op, want ≤1", allocs)
	}
}

func TestUnpooledControllerNeverRecycles(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	c := NewController(sim, b, DefaultControllerConfig(), 2) // pooling off
	c.RegisterAction(&Action{Name: "f", MemoryMB: 256, Exec: FixedExec(time.Millisecond)})
	w := NewInvoker(DefaultInvokerConfig(), 3)
	c.Register(w)
	first := c.Invoke("f", nil)
	sim.RunFor(time.Minute)
	second := c.Invoke("f", nil)
	sim.RunFor(time.Minute)
	if first == second {
		t.Error("unpooled controller reused an invocation object")
	}
	if len(c.invPool) != 0 {
		t.Errorf("unpooled controller filled its pool: %d", len(c.invPool))
	}
	// Retained handles stay valid forever without pooling.
	if first.Status != StatusSuccess || first.Generation() != 0 {
		t.Errorf("retained unpooled invocation mutated: %+v", first)
	}
}

// TestInterruptOfTimedOutExecution is the regression test for the
// Sigterm interrupt loop recycling a completed invocation mid-loop: an
// interruptible execution that outlived the client timeout holds only
// the exec-event and running-list references, so the interrupt must
// retain for the fast-lane message before dropping them — otherwise
// the object recycles under the loop's feet (nil Action dereference)
// and, worse, a pooled object would be requeued while sitting in the
// free list.
func TestInterruptOfTimedOutExecution(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		sim := des.New()
		b := bus.New(sim, nil, 1)
		cfg := DefaultControllerConfig()
		cfg.PoolInvocations = pooled
		cfg.ActionTimeout = 2 * time.Second
		c := NewController(sim, b, cfg, 2)
		c.RegisterAction(&Action{Name: "slow", MemoryMB: 256, Exec: FixedExec(30 * time.Second), Interruptible: true})
		w := NewInvoker(DefaultInvokerConfig(), 3)
		c.Register(w)

		timedOut := false
		c.Invoke("slow", func(inv *Invocation) { timedOut = inv.Status == StatusTimeout })
		sim.RunFor(10 * time.Second) // past the timeout, mid-execution
		if !timedOut {
			t.Fatalf("pooled=%v: invocation should have timed out", pooled)
		}
		w.Sigterm(true, nil) // must not panic nor recycle mid-loop
		if got := c.fastLane.Len(); got != 1 {
			t.Fatalf("pooled=%v: fast lane holds %d messages, want the interrupted one", pooled, got)
		}
		if pooled && len(c.invPool) != 0 {
			t.Fatalf("pooled=%v: invocation recycled while its message sits in the fast lane", pooled)
		}
		// A successor invoker drains the fast lane; dispatch skips the
		// completed invocation and the last reference recycles it.
		c.Register(NewInvoker(DefaultInvokerConfig(), 4))
		sim.RunFor(time.Minute)
		if c.fastLane.Len() != 0 {
			t.Errorf("pooled=%v: fast lane not drained", pooled)
		}
		if pooled && len(c.invPool) != 1 {
			t.Errorf("pooled=%v: pool size = %d after drain, want 1", pooled, len(c.invPool))
		}
	}
}
