package pdes

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/whisk"
)

// echoSink is a synthetic site: every invocation completes successfully
// on the shard's own plane after a fixed service delay.
type echoSink struct {
	sim   *des.Sim
	delay time.Duration
}

func (s *echoSink) Invoke(action string, done func(*whisk.Invocation)) {
	inv := &whisk.Invocation{Submitted: s.sim.Now(), Status: whisk.StatusSuccess}
	s.sim.After(s.delay, func() {
		inv.Completed = s.sim.Now()
		done(inv)
	})
}

// harness wires a front plane, n echo shards and a delivery log.
type harness struct {
	front  *des.Sim
	coord  *Coordinator
	shards []*Shard
	log    []string
}

func newHarness(n, workers int, lookahead, delay time.Duration) *harness {
	h := &harness{front: des.New()}
	h.coord = New(h.front, lookahead, workers)
	for i := 0; i < n; i++ {
		sim := des.New()
		h.shards = append(h.shards, h.coord.AddShard(sim, &echoSink{sim: sim, delay: delay}))
	}
	return h
}

// invokeAt schedules a front-plane dispatch to shard si at instant at,
// logging the completion with the front clock it was delivered at.
func (h *harness) invokeAt(at des.Time, si int) {
	h.front.Schedule(at, func() {
		h.shards[si].Invoke("a", func(inv *whisk.Invocation) {
			h.log = append(h.log, fmt.Sprintf("done shard=%d sub=%v comp=%v front=%v",
				si, inv.Submitted, inv.Completed, h.front.Now()))
		})
	})
}

// TestCoordinatorDeliversInMergedOrder: completions come back in
// (timestamp, shard index) order with correct site-local timestamps,
// and each callback runs with the front clock at its window barrier,
// never before the completion instant and never a full window after.
func TestCoordinatorDeliversInMergedOrder(t *testing.T) {
	const la = time.Second
	h := newHarness(3, 0, la, 30*time.Millisecond)
	// Two dispatches at the same instant to different shards (tie on
	// the completion timestamp → shard-index order), plus staggered
	// ones crossing window boundaries.
	h.invokeAt(100*time.Millisecond, 2)
	h.invokeAt(100*time.Millisecond, 1)
	h.invokeAt(990*time.Millisecond, 0) // completes at 1.02s, next window
	h.invokeAt(1500*time.Millisecond, 2)
	h.coord.RunUntil(des.Time(3 * time.Second))

	want := []string{
		"done shard=1 sub=100ms comp=130ms front=1s",
		"done shard=2 sub=100ms comp=130ms front=1s",
		"done shard=0 sub=990ms comp=1.02s front=2s",
		"done shard=2 sub=1.5s comp=1.53s front=2s",
	}
	if len(h.log) != len(want) {
		t.Fatalf("delivered %d completions, want %d: %v", len(h.log), len(want), h.log)
	}
	for i := range want {
		if h.log[i] != want[i] {
			t.Errorf("delivery %d:\n  got  %s\n  want %s", i, h.log[i], want[i])
		}
	}
	if h.coord.Now() != des.Time(3*time.Second) {
		t.Errorf("coordinator rests at %v, want 3s", h.coord.Now())
	}
}

// TestCoordinatorBarrierOrder: OnBarrier fires once per grid instant,
// after the completions strictly inside the window and before a
// completion landing exactly on the grid instant — the slot the
// snapshot refresh occupies in the sequential (when, seq) order.
func TestCoordinatorBarrierOrder(t *testing.T) {
	const la = time.Second
	h := newHarness(2, 0, la, 30*time.Millisecond)
	h.coord.OnBarrier = func() {
		h.log = append(h.log, fmt.Sprintf("barrier front=%v", h.front.Now()))
	}
	h.invokeAt(900*time.Millisecond, 0)  // completes 0.93s, before the 1s barrier
	h.invokeAt(970*time.Millisecond, 1)  // completes exactly at the 1s barrier
	h.invokeAt(1970*time.Millisecond, 0) // completes exactly at the 2s barrier
	h.coord.RunUntil(des.Time(2500 * time.Millisecond))

	want := []string{
		"done shard=0 sub=900ms comp=930ms front=1s",
		"barrier front=1s",
		"done shard=1 sub=970ms comp=1s front=1s",
		"barrier front=2s",
		"done shard=0 sub=1.97s comp=2s front=2s",
		// 2.5s is not a grid instant: no barrier callback there.
	}
	if len(h.log) != len(want) {
		t.Fatalf("log has %d entries, want %d: %v", len(h.log), len(want), h.log)
	}
	for i := range want {
		if h.log[i] != want[i] {
			t.Errorf("entry %d:\n  got  %s\n  want %s", i, h.log[i], want[i])
		}
	}
}

// TestCoordinatorEndInclusive: RunUntil covers the end instant
// inclusively on every plane — the window des.Sim.RunUntil covers on
// the shared plane — and in-flight work survives into the next call.
func TestCoordinatorEndInclusive(t *testing.T) {
	h := newHarness(1, 0, time.Second, 30*time.Millisecond)
	h.invokeAt(des.Time(2*time.Second), 0) // dispatched at exactly end
	h.coord.RunUntil(des.Time(2 * time.Second))
	if len(h.log) != 0 {
		t.Fatalf("completion delivered before its instant: %v", h.log)
	}
	h.coord.RunUntil(des.Time(3 * time.Second))
	want := "done shard=0 sub=2s comp=2.03s front=3s"
	if len(h.log) != 1 || h.log[0] != want {
		t.Fatalf("got %v, want [%s]", h.log, want)
	}
}

// TestCoordinatorWorkerInvariance: the worker count never changes the
// delivery log, only which goroutine runs a shard.
func TestCoordinatorWorkerInvariance(t *testing.T) {
	replay := func(workers int) []string {
		h := newHarness(5, workers, time.Second, 70*time.Millisecond)
		at := des.Time(10 * time.Millisecond)
		for i := 0; i < 200; i++ {
			h.invokeAt(at, i%5)
			at += des.Time(i%13) * des.Time(17*time.Millisecond)
		}
		h.coord.RunUntil(at + des.Time(time.Second))
		return h.log
	}
	base := replay(1)
	if len(base) != 200 {
		t.Fatalf("delivered %d completions, want 200", len(base))
	}
	for _, w := range []int{2, 5, 16} {
		got := replay(w)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d completions vs %d", w, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d delivery %d: %s vs %s", w, i, got[i], base[i])
			}
		}
	}
}

// TestCoordinatorPanics pins the misuse guards.
func TestCoordinatorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("non-positive lookahead", func() { New(des.New(), 0, 0) })
	mustPanic("backwards RunUntil", func() {
		c := New(des.New(), time.Second, 0)
		c.RunUntil(des.Time(time.Second))
		c.RunUntil(des.Time(time.Millisecond))
	})
}
