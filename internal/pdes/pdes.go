// Package pdes runs one federated simulation across CPU cores with a
// conservative lookahead coordinator, byte-identically to the
// sequential shared-plane run.
//
// # Topology
//
// The federation is a star: N site shards, each a complete Slurm+whisk
// deployment on its own des.Sim plane, around a front plane hosting
// everything cluster-external (the load generator and the routing
// front door's bookkeeping). Sites never talk to each other; every
// cross-site interaction is a router hop through the front door —
// an invocation dispatched to a site, or its completion coming back —
// so those hops are the only cross-shard messages.
//
// # Lookahead contract
//
// The router's health view is snapshot-consistent (router.FrontDoor
// snapshots): between refreshes on a fixed grid (the snapshot
// interval Δ), no routing decision reads live site state. A front-
// plane event in the window (b, b+Δ) therefore depends only on the
// snapshot captured at b plus front-plane state — and a site's events
// in that window depend only on its own past plus the invocations the
// front plane addressed to it. Δ is the guaranteed lookahead: the
// coordinator alternates a sequential front phase (advancing the front
// plane through one window, queueing each dispatched invocation as a
// timestamped inter-shard message) with a parallel site phase (every
// shard drains its inbox in time order and advances to the window
// end, queueing completions as timestamped messages back).
//
// # Determinism
//
// Each plane preserves its own (when, seq) total order, so per-shard
// behaviour is byte-identical to the same site on the shared plane
// (site purity: disjoint state, per-site RNG streams). Cross-shard
// deliveries are merged across shards by (timestamp, shard index,
// shard-local order) at every window barrier — and a completion
// landing exactly on a grid instant is delivered after the snapshot
// refresh, which in the sequential run fires first at that instant
// (the refresh ticker's sequence number is a full interval older).
// The grid's one-microsecond offset (router.DefaultSnapshotInterval)
// keeps barriers off the instants the simulation already populates,
// so refresh order never depends on heap tie-breaks. Completion
// callbacks run with the front clock at the window barrier, not the
// completion timestamp; the wired clients (the load generator, the
// front door's latency bookkeeping) are pure recorders reading the
// invocation's own timestamps, which is what makes late delivery
// invisible. A client that schedules follow-up events from a
// completion callback would observe the barrier clock and must not be
// wired to a sharded run (the Alg. 1 cloud-fallback wrapper is the
// one such client; core.NewFederation rejects the combination).
//
// # Memory
//
// Inter-shard messages carry whisk.Invocation values by copy: site-
// side invocation objects are pooled and recycled the moment their
// completion callback returns, so a pointer must never cross the
// shard boundary. Inboxes, outboxes, and per-shard call contexts are
// reused across windows — shards never share free lists, and the
// steady-state request path stays allocation-free like the sequential
// one.
package pdes

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/whisk"
)

// Sink is a shard's invocation target: the site controller's entry
// point (core.Site satisfies it).
type Sink interface {
	Invoke(action string, done func(*whisk.Invocation))
}

// invokeMsg is one front→site inter-shard message: an invocation
// dispatched by the router at front-plane instant at.
type invokeMsg struct {
	at     des.Time
	action string
	done   func(*whisk.Invocation)
}

// doneMsg is one site→front inter-shard message: a completed
// invocation, copied by value because the site-side object is pooled.
type doneMsg struct {
	at   des.Time
	inv  whisk.Invocation
	done func(*whisk.Invocation)
}

// xcall bridges one injected invocation's completion from the site
// plane to the shard outbox. Pooled per shard: a shard's free list is
// touched only by its own goroutine.
type xcall struct {
	sh   *Shard
	done func(*whisk.Invocation)
	fn   func(*whisk.Invocation) // cached method value, one per pooled object
}

// onDone runs on the shard goroutine at the site-local completion
// instant: it snapshots the invocation by value into the outbox and
// recycles the call context.
func (x *xcall) onDone(inv *whisk.Invocation) {
	sh, done := x.sh, x.done
	x.done = nil
	sh.calls = append(sh.calls, x)
	sh.outbox = append(sh.outbox, doneMsg{at: sh.sim.Now(), inv: *inv, done: done})
}

// Shard is one site plane under the coordinator.
type Shard struct {
	coord *Coordinator
	sim   *des.Sim
	sink  Sink

	inbox  []invokeMsg
	outbox []doneMsg
	calls  []*xcall

	// delivered indexes the merge cursor into outbox at barriers.
	delivered int
}

// Invoke queues an invocation for this shard, timestamped at the
// front plane's current instant. Call it only from the front phase
// (router dispatch); the shard injects it at exactly that instant
// during its next parallel phase.
func (sh *Shard) Invoke(action string, done func(*whisk.Invocation)) {
	sh.inbox = append(sh.inbox, invokeMsg{at: sh.coord.front.Now(), action: action, done: done})
}

// getCall pops the shard-local pool or builds a new call context.
func (sh *Shard) getCall() *xcall {
	if k := len(sh.calls); k > 0 {
		x := sh.calls[k-1]
		sh.calls[k-1] = nil
		sh.calls = sh.calls[:k-1]
		return x
	}
	x := &xcall{sh: sh}
	x.fn = x.onDone
	return x
}

// runTo advances the shard to the window end: inbox messages are
// injected in time order (site events at an injection instant fire
// first — on the shared plane they carry older sequence numbers than
// the arrival), then the plane runs through the window end inclusive,
// collecting completions into the outbox.
func (sh *Shard) runTo(end des.Time) {
	for i := range sh.inbox {
		m := &sh.inbox[i]
		sh.sim.RunUntil(m.at)
		x := sh.getCall()
		x.done = m.done
		sh.sink.Invoke(m.action, x.fn)
		m.done = nil
	}
	sh.inbox = sh.inbox[:0]
	sh.sim.RunUntil(end)
}

// Coordinator advances a front plane and N site shards in lockstep
// windows of one lookahead interval. See the package comment for the
// synchronization and determinism contract.
type Coordinator struct {
	front     *des.Sim
	shards    []*Shard
	lookahead des.Time
	workers   int
	now       des.Time

	// OnBarrier, when non-nil, runs at every grid barrier after the
	// strictly-earlier cross-shard deliveries — the slot the snapshot
	// refresh occupies in the sequential (when, seq) order. Wire the
	// front door's Refresh here.
	OnBarrier func()
}

// New builds a coordinator over the front plane. lookahead must equal
// the front door's snapshot interval (≤ 0 means
// router.DefaultSnapshotInterval's value is NOT assumed — pass it
// explicitly); workers bounds the goroutines running site shards
// (≤ 0 or > #shards means one per shard). The worker count never
// affects results, only wall time.
func New(front *des.Sim, lookahead time.Duration, workers int) *Coordinator {
	if lookahead <= 0 {
		panic("pdes: non-positive lookahead")
	}
	return &Coordinator{front: front, lookahead: des.Time(lookahead), workers: workers}
}

// AddShard registers a site plane and its invocation sink. Shards are
// merged in registration order at delivery barriers.
func (c *Coordinator) AddShard(sim *des.Sim, sink Sink) *Shard {
	sh := &Shard{coord: c, sim: sim, sink: sink}
	c.shards = append(c.shards, sh)
	return sh
}

// Now reports the global synchronized instant: every plane has fired
// all events before it (and all planes rest exactly at it between
// Run calls).
func (c *Coordinator) Now() des.Time { return c.now }

// RunFor advances the whole federation by d; see RunUntil.
func (c *Coordinator) RunFor(d time.Duration) { c.RunUntil(c.now + d) }

// RunUntil advances every plane through end inclusive — the exact
// window des.Sim.RunUntil covers on the shared plane — alternating
// sequential front phases with parallel site phases per lookahead
// window, delivering cross-shard completions in merged timestamp
// order at every barrier.
func (c *Coordinator) RunUntil(end des.Time) {
	if end < c.now {
		panic(fmt.Sprintf("pdes: run until %v before now %v", end, c.now))
	}
	if end == c.now {
		return
	}
	w := c.workers
	if w <= 0 || w > len(c.shards) {
		w = len(c.shards)
	}
	jobs := make([]chan des.Time, w)
	acks := make(chan struct{}, w)
	for i := range jobs {
		ch := make(chan des.Time, 1)
		jobs[i] = ch
		go func(worker int) {
			for to := range ch {
				for si := worker; si < len(c.shards); si += w {
					c.shards[si].runTo(to)
				}
				acks <- struct{}{}
			}
		}(i)
	}
	defer func() {
		for _, ch := range jobs {
			close(ch)
		}
	}()

	for c.now < end {
		// Next grid barrier strictly after now, clipped to end.
		barrier := (c.now/c.lookahead + 1) * c.lookahead
		to := barrier
		if end < to {
			to = end
		}
		// Front phase: events in [now, to) — routing reads the frozen
		// snapshot, dispatches land in shard inboxes.
		c.front.RunBefore(to)
		// Parallel site phase through the window end inclusive.
		for _, ch := range jobs {
			ch <- to
		}
		for range jobs {
			<-acks
		}
		// Barrier: completions strictly before the grid instant, then
		// the refresh, then completions at exactly the grid instant —
		// the sequential order (the refresh ticker was scheduled a full
		// interval earlier, so its sequence number precedes any event
		// scheduled inside the window).
		c.deliver(to)
		if to == barrier && c.OnBarrier != nil {
			c.OnBarrier()
		}
		c.deliverRest()
		c.now = to
	}

	// Events at exactly end on the front plane (RunBefore excluded
	// them): they fire after every site event at end — on the shared
	// plane the site-side events at a shared instant carry the older
	// sequence numbers — and their dispatches inject at end.
	c.front.RunUntil(end)
	for _, sh := range c.shards {
		sh.runTo(end)
	}
	c.deliver(end + 1)
	c.deliverRest()
}

// deliver merges shard outboxes across shards by (timestamp, shard
// index, shard-local order) and runs the completion callbacks of
// every message with at < before. Shard-local order is already time-
// sorted (plane clocks are monotone).
func (c *Coordinator) deliver(before des.Time) {
	for {
		best, bestAt := -1, des.Time(0)
		for si, sh := range c.shards {
			if sh.delivered < len(sh.outbox) {
				if at := sh.outbox[sh.delivered].at; best < 0 || at < bestAt {
					best, bestAt = si, at
				}
			}
		}
		if best < 0 || bestAt >= before {
			return
		}
		sh := c.shards[best]
		m := &sh.outbox[sh.delivered]
		sh.delivered++
		if m.done != nil {
			m.done(&m.inv)
		}
		m.done = nil
	}
}

// deliverRest drains the remaining outbox messages (those at exactly
// the barrier instant) and resets the outboxes for the next window.
func (c *Coordinator) deliverRest() {
	c.deliver(1<<63 - 1)
	for _, sh := range c.shards {
		sh.outbox = sh.outbox[:0]
		sh.delivered = 0
	}
}
