package bus

import (
	"testing"
	"time"

	"repro/internal/dist"
)

// TestDeliverIntoDeletedTopicReattaches is the regression test for the
// mid-flight deletion bug: before the topic pointer was captured at
// publish time, the delivery closure re-resolved the topic by name and
// silently resurrected it with zeroed counters and no delivery
// callback. Now the captured topic itself is re-registered, so its
// counter history and OnDelivery hook survive the delete/deliver race.
func TestDeliverIntoDeletedTopicReattaches(t *testing.T) {
	sim, b := newBus()
	wakes := 0
	topic := b.Topic("t")
	topic.OnDelivery(func() { wakes++ })
	b.Publish("t", 1)
	sim.Run()
	topic.Pull(1)
	before := topic.Delivered

	b.Publish("t", 2) // in flight…
	topic.Delete()    // …when the topic goes away
	sim.Run()

	if got := b.Topic("t"); got != topic {
		t.Fatalf("delivery resurrected a different topic object (counters zeroed): %p vs %p", got, topic)
	}
	if topic.Delivered != before+1 {
		t.Errorf("delivered = %d, want %d (counter history preserved)", topic.Delivered, before+1)
	}
	if wakes != 2 {
		t.Errorf("delivery callbacks = %d, want 2 (OnDelivery hook preserved)", wakes)
	}
	if topic.Len() != 1 {
		t.Errorf("queue len = %d, want 1", topic.Len())
	}
}

// TestDeliverPrefersCurrentTopicAfterRecreate: if the name was
// re-registered between Delete and the in-flight delivery, the message
// lands on the topic currently owning the name, not the deleted one.
func TestDeliverPrefersCurrentTopicAfterRecreate(t *testing.T) {
	sim, b := newBus()
	old := b.Topic("t")
	m := b.Publish("t", "late") // in flight…
	old.Delete()
	fresh := b.Topic("t") // …name deliberately recreated…
	sim.Run()             // …before the delivery fires

	if fresh == old {
		t.Fatal("recreated topic should be a fresh object")
	}
	if old.Len() != 0 || fresh.Len() != 1 {
		t.Fatalf("queue lens old=%d fresh=%d, want 0/1", old.Len(), fresh.Len())
	}
	if m.topic != fresh || m.TopicName != "t" {
		t.Errorf("message rebound to %v/%q, want the current topic", m.topic, m.TopicName)
	}
}

func TestPublishToSkipsLookup(t *testing.T) {
	sim, b := newBus()
	topic := b.Topic("direct")
	m := b.PublishTo(topic, 42)
	if m.TopicName != "direct" || m.topic != topic {
		t.Fatalf("publish-to bookkeeping: %q / %p", m.TopicName, m.topic)
	}
	sim.Run()
	if topic.Len() != 1 || b.Published != 1 {
		t.Errorf("len=%d published=%d, want 1/1", topic.Len(), b.Published)
	}
}

func TestRecycleReusesAndBumpsGeneration(t *testing.T) {
	sim, b := newBus()
	b.Publish("t", "first")
	sim.Run()
	m := b.Topic("t").Pull(1)[0]
	gen := m.Generation()
	b.Recycle(m)

	// The next publish must reuse the pooled object with a bumped
	// generation and fully reset fields.
	m2 := b.Publish("t", "second")
	if m2 != m {
		t.Fatalf("publish did not reuse the recycled message (%p vs %p)", m2, m)
	}
	if m2.Generation() != gen+1 {
		t.Errorf("generation = %d, want %d", m2.Generation(), gen+1)
	}
	if m2.Moves != 0 || m2.Delivered != 0 || m2.Payload != "second" {
		t.Errorf("recycled message not reset: %+v", m2)
	}
	sim.Run()
	got := b.Topic("t").Pull(1)
	if len(got) != 1 || got[0].Payload != "second" {
		t.Fatalf("pull after recycle = %v", got)
	}
}

// TestPullOfRecycledMessage covers the stale-handle shape from the
// invoker's perspective: a consumer that held a *Message across a
// recycle observes the reuse through Generation rather than pulling a
// phantom copy — the queue never yields the same slot twice without an
// intervening publish.
func TestPullOfRecycledMessage(t *testing.T) {
	sim, b := newBus()
	b.Publish("t", "a")
	sim.Run()
	stale := b.Topic("t").Pull(1)[0]
	b.Recycle(stale)

	if got := b.Topic("t").Pull(1); got != nil {
		t.Fatalf("empty topic yielded %v after recycle", got)
	}
	reused := b.Publish("t", "b")
	sim.Run()
	got := b.Topic("t").Pull(1)
	if len(got) != 1 || got[0] != reused {
		t.Fatalf("pull = %v, want the reused message", got)
	}
	if stale.Generation() == 0 {
		t.Error("stale handle should observe a bumped generation")
	}
}

func TestDoubleRecyclePanics(t *testing.T) {
	sim, b := newBus()
	b.Publish("t", 1)
	sim.Run()
	m := b.Topic("t").Pull(1)[0]
	b.Recycle(m)
	defer func() {
		if recover() == nil {
			t.Error("double recycle should panic")
		}
	}()
	b.Recycle(m)
}

func TestWrapTakesFromPoolWithoutPublishBookkeeping(t *testing.T) {
	_, b := newBus()
	m := b.Wrap("payload")
	if m.ID != 0 || m.Published != 0 || b.Published != 0 {
		t.Errorf("wrap must not stamp or count a publish: %+v published=%d", m, b.Published)
	}
	fl := b.Topic("fl")
	fl.Requeue([]*Message{m})
	if fl.Len() != 1 || m.TopicName != "fl" || m.topic != fl {
		t.Errorf("requeue of wrapped message: len=%d topic=%q", fl.Len(), m.TopicName)
	}
}

func TestPullAppendReusesDst(t *testing.T) {
	sim, b := newBus()
	for i := 0; i < 5; i++ {
		b.Publish("t", i)
	}
	sim.Run()
	buf := make([]*Message, 0, 8)
	buf = b.Topic("t").PullAppend(buf, 2)
	if len(buf) != 2 || buf[0].Payload != 0 || buf[1].Payload != 1 {
		t.Fatalf("first pull-append = %v", buf)
	}
	buf = b.Topic("t").PullAppend(buf, 10)
	if len(buf) != 5 || buf[4].Payload != 4 {
		t.Fatalf("second pull-append = %v", buf)
	}
	if b.Topic("t").PullAppend(buf, 3); b.Topic("t").Len() != 0 {
		t.Error("topic should be drained")
	}
	if got := b.Topic("t").Pulled; got != 5 {
		t.Errorf("pulled counter = %d, want 5", got)
	}
}

// TestSteadyStatePublishIsAllocationFree pins the pooling contract:
// once the pool is warm, a publish→deliver→pull→recycle cycle performs
// zero heap allocations.
func TestSteadyStatePublishIsAllocationFree(t *testing.T) {
	sim, b := newBus()
	buf := make([]*Message, 0, 4)
	cycle := func() {
		b.Publish("t", 7)
		sim.RunFor(time.Second)
		buf = b.Topic("t").PullAppend(buf[:0], 4)
		for _, m := range buf {
			b.Recycle(m)
		}
	}
	cycle() // warm the pool and the topic queue
	allocs := testing.AllocsPerRun(100, cycle)
	if allocs != 0 {
		t.Errorf("steady-state publish cycle allocates %.1f objects, want 0", allocs)
	}
}

func TestBusDeliveryLatencyStreamUnchanged(t *testing.T) {
	// The sampler refactor must keep the delivery-latency stream of a
	// seeded bus identical to the pre-refactor dist.Seconds draws.
	sim, b := newBus()
	ref := dist.NewRand(1) // newBus seed
	for i := 0; i < 100; i++ {
		before := sim.Now()
		b.Publish("t", i)
		want := dist.Seconds(dist.Constant{Value: 0.01}, ref)
		sim.Run()
		m := b.Topic("t").Pull(1)[0]
		if got := m.Delivered - before; got != want {
			t.Fatalf("publish %d: latency %v, want %v", i, got, want)
		}
		b.Recycle(m)
	}
}
