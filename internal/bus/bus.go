// Package bus provides the Kafka-like message substrate of the OpenWhisk
// emulation: named topics with at-most-once pull consumption, per-invoker
// queues, the global fast-lane topic of §III-C, and bulk move semantics
// used by the hand-off protocol (a terminating invoker's unexecuted
// requests move to the fast lane; the controller moves the unpulled ones).
//
// The bus sits on the per-invocation hot path (one publish + one
// delivery + one pull per request, 864k requests on a paper day), so it
// is allocation-free in steady state: messages live in a per-bus free
// list with generation-checked recycling (mirroring the des callback
// slot pool), deliveries are typed-arg des events carrying the message
// itself (no per-publish closure), and the target topic is captured
// once at publish time (no per-delivery map lookup).
package bus

import (
	"time"

	"repro/internal/des"
	"repro/internal/dist"
)

// Message is one queued unit (an OpenWhisk activation request).
//
// Messages are pooled: a consumer that pulled a message owns it and may
// hand it back with Bus.Recycle once the payload is extracted, after
// which the pointer must not be used again (Generation detects stale
// handles in tests). Consumers that never recycle — external pullers,
// rotting queues of killed invokers — simply leave the message to the
// garbage collector, exactly as before pooling.
type Message struct {
	ID        int64
	TopicName string
	Payload   any
	Published des.Time // when Publish was called
	Delivered des.Time // when it became pullable
	Moves     int      // how many times it was moved between topics

	topic  *Topic // delivery/requeue target, captured at publish time
	gen    uint32 // increments on every recycle
	pooled bool   // sitting in the bus free list (double-recycle guard)
}

// Generation reports how many times the message's slot has been
// recycled. A holder that kept a *Message across a Recycle can detect
// the reuse by comparing generations.
func (m *Message) Generation() uint32 { return m.gen }

// Bus manages topics on the simulation plane.
type Bus struct {
	sim     *des.Sim
	latency dist.Sampler // publish→deliver latency in seconds
	topics  map[string]*Topic
	nextID  int64

	free      []*Message
	deliverFn func(any) // cached method value: one closure per bus, not per publish

	// Counters across all topics.
	Published int
	Moved     int
}

// DefaultLatency models a small on-cluster Kafka hop.
func DefaultLatency() dist.Dist { return dist.Uniform{Lo: 0.004, Hi: 0.020} }

// New creates a bus whose deliveries take latency seconds (nil for
// DefaultLatency).
func New(sim *des.Sim, latency dist.Dist, seed int64) *Bus {
	if latency == nil {
		latency = DefaultLatency()
	}
	b := &Bus{
		sim:     sim,
		latency: dist.NewSampler(latency, dist.NewRand(seed)),
		topics:  map[string]*Topic{},
	}
	b.deliverFn = b.deliver
	return b
}

// Topic returns the named topic, creating it on first use.
func (b *Bus) Topic(name string) *Topic {
	t, ok := b.topics[name]
	if !ok {
		t = &Topic{name: name, bus: b}
		b.topics[name] = t
	}
	return t
}

// Publish enqueues payload on the named topic after the delivery latency.
func (b *Bus) Publish(name string, payload any) *Message {
	return b.PublishTo(b.Topic(name), payload)
}

// PublishTo is Publish for callers that already hold the topic: it
// skips the name lookup, which matters on the request path where the
// controller resolved the invoker's topic at routing time. The topic is
// captured in the message; if it is Deleted while the delivery is in
// flight, the delivery re-resolves deliberately — onto the topic
// currently registered under the name if one exists, else by
// re-registering this captured topic — see Bus.deliver.
func (b *Bus) PublishTo(t *Topic, payload any) *Message {
	m := b.get()
	m.ID = b.nextID
	m.TopicName = t.name
	m.Payload = payload
	m.Published = b.sim.Now()
	m.topic = t
	b.nextID++
	b.Published++
	b.sim.AfterCall(b.latency.Seconds(), b.deliverFn, m)
	return m
}

// Wrap takes a blank message from the pool around an out-of-band
// payload (an invoker flushing interrupted work to the fast lane via
// Requeue). Unlike Publish it assigns no ID, stamps no publish time,
// and counts nothing: the message never traveled through a delivery.
func (b *Bus) Wrap(payload any) *Message {
	m := b.get()
	m.Payload = payload
	return m
}

// Recycle returns a consumed message to the free list. Only the owner
// (the consumer that pulled it, or the publisher of a message that
// never reached a queue) may recycle; doing so twice panics. The
// message is zeroed except for its generation, which increments so
// stale handles are detectable.
func (b *Bus) Recycle(m *Message) {
	if m.pooled {
		panic("bus: message recycled twice")
	}
	*m = Message{gen: m.gen + 1, pooled: true}
	b.free = append(b.free, m)
}

// get pops the free list or allocates the pool's next message.
func (b *Bus) get() *Message {
	if k := len(b.free); k > 0 {
		m := b.free[k-1]
		b.free[k-1] = nil
		b.free = b.free[:k-1]
		m.pooled = false
		return m
	}
	return &Message{}
}

// deliver lands a published message on its captured topic (the typed-arg
// des callback of every publish). If the topic was Deleted while the
// message was in flight, the delivery re-resolves deliberately: into
// the topic currently registered under the name if one exists, else by
// re-registering the captured topic itself — preserving its counters
// and delivery callback rather than silently resurrecting a zeroed
// twin under the same name.
func (b *Bus) deliver(v any) {
	m := v.(*Message)
	t := m.topic
	if t.deleted {
		t = b.reattach(t)
		m.topic = t
		m.TopicName = t.name
	}
	m.Delivered = b.sim.Now()
	t.queue = append(t.queue, m)
	t.noteDepth(1)
	t.Delivered++
	if t.onDelivery != nil {
		t.onDelivery()
	}
}

// reattach resolves a delivery into a deleted topic (cold path).
func (b *Bus) reattach(t *Topic) *Topic {
	if cur, ok := b.topics[t.name]; ok {
		return cur
	}
	t.deleted = false
	b.topics[t.name] = t
	return t
}

// Topic is a FIFO queue with single-consumer pull semantics.
type Topic struct {
	name    string
	bus     *Bus
	queue   []*Message
	deleted bool

	// watch, when non-nil, is an external backlog counter this topic
	// keeps in sync: every queue mutation adds its length delta. The
	// whisk controller watches the topics of currently registered
	// invokers so its QueueDepth signal is a field read instead of a
	// per-call scan over every topic.
	watch *int

	onDelivery func()

	// Counters.
	Delivered int
	Pulled    int
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Len returns the number of pullable messages.
func (t *Topic) Len() int { return len(t.queue) }

// Watch registers counter as this topic's live backlog aggregate: the
// current queue length is added now, and every future queue mutation
// (delivery, pull, move, requeue) applies its delta, so *counter always
// equals the sum of the watched topics' lengths plus whatever else the
// owner adds to it. One watcher per topic; watching an already-watched
// topic panics (a programming error — the controller owns its topics).
func (t *Topic) Watch(counter *int) {
	if t.watch != nil {
		panic("bus: topic " + t.name + " already watched")
	}
	t.watch = counter
	*counter += len(t.queue)
}

// Unwatch detaches the backlog counter, subtracting the current queue
// length so the aggregate no longer accounts for this topic. A no-op on
// an unwatched topic.
func (t *Topic) Unwatch() {
	if t.watch == nil {
		return
	}
	*t.watch -= len(t.queue)
	t.watch = nil
}

// noteDepth applies a queue-length delta to the watcher, if any. Every
// mutation of t.queue must route its delta through here.
func (t *Topic) noteDepth(delta int) {
	if t.watch != nil {
		*t.watch += delta
	}
}

// OnDelivery registers a single callback invoked after each delivery
// (used by invokers to wake their dispatch loop promptly).
func (t *Topic) OnDelivery(fn func()) { t.onDelivery = fn }

// Pull removes and returns up to max messages from the head.
func (t *Topic) Pull(max int) []*Message {
	if max <= 0 || len(t.queue) == 0 {
		return nil
	}
	n := max
	if n > len(t.queue) {
		n = len(t.queue)
	}
	return t.PullAppend(make([]*Message, 0, n), max)
}

// PullAppend removes up to max messages from the head and appends them
// to dst, returning the extended slice. It is Pull without the per-call
// result allocation: invokers poll every 100 ms per worker, so they
// reuse their buffer as dst.
func (t *Topic) PullAppend(dst []*Message, max int) []*Message {
	n := max
	if n > len(t.queue) {
		n = len(t.queue)
	}
	if n <= 0 {
		return dst
	}
	dst = append(dst, t.queue[:n]...)
	copy(t.queue, t.queue[n:])
	for i := len(t.queue) - n; i < len(t.queue); i++ {
		t.queue[i] = nil
	}
	t.queue = t.queue[:len(t.queue)-n]
	t.noteDepth(-n)
	t.Pulled += n
	return dst
}

// MoveAll transfers every queued message to another topic immediately
// (the controller-side hand-off of §III-C). It returns the count moved.
func (t *Topic) MoveAll(to *Topic) int {
	n := len(t.queue)
	for _, m := range t.queue {
		m.Moves++
		m.TopicName = to.name
		m.topic = to
		to.queue = append(to.queue, m)
	}
	t.queue = t.queue[:0]
	t.noteDepth(-n)
	to.noteDepth(n)
	t.bus.Moved += n
	if n > 0 && to.onDelivery != nil {
		to.onDelivery()
	}
	return n
}

// Requeue places messages at the tail of the topic immediately (an
// invoker flushing its internal buffer to the fast lane).
func (t *Topic) Requeue(msgs []*Message) {
	for _, m := range msgs {
		m.Moves++
		m.TopicName = t.name
		m.topic = t
		t.queue = append(t.queue, m)
	}
	t.noteDepth(len(msgs))
	if len(msgs) > 0 && t.onDelivery != nil {
		t.onDelivery()
	}
}

// Delete removes the topic from the bus (its queue must be empty;
// callers move messages first). Publishing to the name afterwards
// recreates a fresh topic; a delivery already in flight at Delete time
// re-resolves deliberately — see Bus.deliver.
func (t *Topic) Delete() {
	if len(t.queue) > 0 {
		panic("bus: deleting non-empty topic " + t.name)
	}
	t.deleted = true
	delete(t.bus.topics, t.name)
}

// TimeInQueue reports how long a message has been waiting, given now.
func (m *Message) TimeInQueue(now des.Time) time.Duration { return now - m.Delivered }
