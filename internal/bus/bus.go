// Package bus provides the Kafka-like message substrate of the OpenWhisk
// emulation: named topics with at-most-once pull consumption, per-invoker
// queues, the global fast-lane topic of §III-C, and bulk move semantics
// used by the hand-off protocol (a terminating invoker's unexecuted
// requests move to the fast lane; the controller moves the unpulled ones).
package bus

import (
	"math/rand"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
)

// Message is one queued unit (an OpenWhisk activation request).
type Message struct {
	ID        int64
	TopicName string
	Payload   any
	Published des.Time // when Publish was called
	Delivered des.Time // when it became pullable
	Moves     int      // how many times it was moved between topics
}

// Bus manages topics on the simulation plane.
type Bus struct {
	sim     *des.Sim
	rng     *rand.Rand
	latency dist.Dist // publish→deliver latency in seconds
	topics  map[string]*Topic
	nextID  int64

	// Counters across all topics.
	Published int
	Moved     int
}

// DefaultLatency models a small on-cluster Kafka hop.
func DefaultLatency() dist.Dist { return dist.Uniform{Lo: 0.004, Hi: 0.020} }

// New creates a bus whose deliveries take latency seconds (nil for
// DefaultLatency).
func New(sim *des.Sim, latency dist.Dist, seed int64) *Bus {
	if latency == nil {
		latency = DefaultLatency()
	}
	return &Bus{
		sim:     sim,
		rng:     dist.NewRand(seed),
		latency: latency,
		topics:  map[string]*Topic{},
	}
}

// Topic returns the named topic, creating it on first use.
func (b *Bus) Topic(name string) *Topic {
	t, ok := b.topics[name]
	if !ok {
		t = &Topic{name: name, bus: b}
		b.topics[name] = t
	}
	return t
}

// Publish enqueues payload on the named topic after the delivery latency.
func (b *Bus) Publish(name string, payload any) *Message {
	m := &Message{
		ID:        b.nextID,
		TopicName: name,
		Payload:   payload,
		Published: b.sim.Now(),
	}
	b.nextID++
	b.Published++
	d := dist.Seconds(b.latency, b.rng)
	b.sim.After(d, func() {
		t := b.Topic(name)
		m.Delivered = b.sim.Now()
		t.queue = append(t.queue, m)
		t.Delivered++
		if t.onDelivery != nil {
			t.onDelivery()
		}
	})
	return m
}

// Topic is a FIFO queue with single-consumer pull semantics.
type Topic struct {
	name  string
	bus   *Bus
	queue []*Message

	onDelivery func()

	// Counters.
	Delivered int
	Pulled    int
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Len returns the number of pullable messages.
func (t *Topic) Len() int { return len(t.queue) }

// OnDelivery registers a single callback invoked after each delivery
// (used by invokers to wake their dispatch loop promptly).
func (t *Topic) OnDelivery(fn func()) { t.onDelivery = fn }

// Pull removes and returns up to max messages from the head.
func (t *Topic) Pull(max int) []*Message {
	if max <= 0 || len(t.queue) == 0 {
		return nil
	}
	n := max
	if n > len(t.queue) {
		n = len(t.queue)
	}
	out := make([]*Message, n)
	copy(out, t.queue[:n])
	copy(t.queue, t.queue[n:])
	for i := len(t.queue) - n; i < len(t.queue); i++ {
		t.queue[i] = nil
	}
	t.queue = t.queue[:len(t.queue)-n]
	t.Pulled += n
	return out
}

// MoveAll transfers every queued message to another topic immediately
// (the controller-side hand-off of §III-C). It returns the count moved.
func (t *Topic) MoveAll(to *Topic) int {
	n := len(t.queue)
	for _, m := range t.queue {
		m.Moves++
		m.TopicName = to.name
		to.queue = append(to.queue, m)
	}
	t.queue = t.queue[:0]
	t.bus.Moved += n
	if n > 0 && to.onDelivery != nil {
		to.onDelivery()
	}
	return n
}

// Requeue places messages at the tail of the topic immediately (an
// invoker flushing its internal buffer to the fast lane).
func (t *Topic) Requeue(msgs []*Message) {
	for _, m := range msgs {
		m.Moves++
		m.TopicName = t.name
		t.queue = append(t.queue, m)
	}
	if len(msgs) > 0 && t.onDelivery != nil {
		t.onDelivery()
	}
}

// Delete removes the topic from the bus (its queue must be empty;
// callers move messages first). Publishing to the name recreates it.
func (t *Topic) Delete() {
	if len(t.queue) > 0 {
		panic("bus: deleting non-empty topic " + t.name)
	}
	delete(t.bus.topics, t.name)
}

// TimeInQueue reports how long a message has been waiting, given now.
func (m *Message) TimeInQueue(now des.Time) time.Duration { return now - m.Delivered }
