package bus

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
)

func newBus() (*des.Sim, *Bus) {
	sim := des.New()
	return sim, New(sim, dist.Constant{Value: 0.01}, 1)
}

func TestPublishDeliversAfterLatency(t *testing.T) {
	sim, b := newBus()
	b.Publish("t", "hello")
	if b.Topic("t").Len() != 0 {
		t.Fatal("message visible before delivery latency")
	}
	sim.RunUntil(20 * time.Millisecond)
	if b.Topic("t").Len() != 1 {
		t.Fatal("message not delivered")
	}
	msgs := b.Topic("t").Pull(10)
	if len(msgs) != 1 || msgs[0].Payload != "hello" {
		t.Fatalf("pulled %v", msgs)
	}
	if msgs[0].Delivered != 10*time.Millisecond {
		t.Errorf("delivered at %v, want 10ms", msgs[0].Delivered)
	}
}

func TestPullFIFOAndPartial(t *testing.T) {
	sim, b := newBus()
	for i := 0; i < 5; i++ {
		b.Publish("t", i)
	}
	sim.Run()
	first := b.Topic("t").Pull(2)
	if len(first) != 2 || first[0].Payload != 0 || first[1].Payload != 1 {
		t.Fatalf("first pull = %v", first)
	}
	rest := b.Topic("t").Pull(10)
	if len(rest) != 3 || rest[0].Payload != 2 {
		t.Fatalf("rest pull = %v", rest)
	}
	if b.Topic("t").Pull(1) != nil {
		t.Error("pull from empty topic should be nil")
	}
}

func TestMoveAllToFastLane(t *testing.T) {
	sim, b := newBus()
	for i := 0; i < 3; i++ {
		b.Publish("invoker0", i)
	}
	sim.Run()
	moved := b.Topic("invoker0").MoveAll(b.Topic("fastlane"))
	if moved != 3 {
		t.Fatalf("moved = %d, want 3", moved)
	}
	if b.Topic("invoker0").Len() != 0 {
		t.Error("source topic not emptied")
	}
	msgs := b.Topic("fastlane").Pull(10)
	if len(msgs) != 3 {
		t.Fatalf("fast lane has %d messages", len(msgs))
	}
	for i, m := range msgs {
		if m.Payload != i {
			t.Errorf("order broken: %v at %d", m.Payload, i)
		}
		if m.Moves != 1 || m.TopicName != "fastlane" {
			t.Errorf("move bookkeeping: moves=%d topic=%s", m.Moves, m.TopicName)
		}
	}
}

func TestRequeuePreservesOrderAtTail(t *testing.T) {
	sim, b := newBus()
	b.Publish("fl", "a")
	sim.Run()
	held := b.Topic("fl").Pull(1)
	b.Publish("fl", "b")
	sim.Run()
	b.Topic("fl").Requeue(held)
	msgs := b.Topic("fl").Pull(10)
	if len(msgs) != 2 || msgs[0].Payload != "b" || msgs[1].Payload != "a" {
		t.Fatalf("requeue order = %v", msgs)
	}
}

func TestOnDeliveryCallback(t *testing.T) {
	sim, b := newBus()
	calls := 0
	b.Topic("t").OnDelivery(func() { calls++ })
	b.Publish("t", 1)
	b.Publish("t", 2)
	sim.Run()
	if calls != 2 {
		t.Errorf("delivery callbacks = %d, want 2", calls)
	}
	// MoveAll and Requeue also wake the target.
	b.Topic("src").Requeue([]*Message{{}})
	b.Topic("src").MoveAll(b.Topic("t"))
	if calls != 3 {
		t.Errorf("callbacks after move = %d, want 3", calls)
	}
}

func TestDeleteEmptyTopic(t *testing.T) {
	sim, b := newBus()
	b.Publish("t", 1)
	sim.Run()
	b.Topic("t").Pull(1)
	b.Topic("t").Delete()
	// Publishing again recreates the topic.
	b.Publish("t", 2)
	sim.Run()
	if b.Topic("t").Len() != 1 {
		t.Error("topic not recreated")
	}
}

func TestDeleteNonEmptyPanics(t *testing.T) {
	sim, b := newBus()
	b.Publish("t", 1)
	sim.Run()
	defer func() {
		if recover() == nil {
			t.Error("deleting non-empty topic should panic")
		}
	}()
	b.Topic("t").Delete()
}

func TestCounters(t *testing.T) {
	sim, b := newBus()
	for i := 0; i < 4; i++ {
		b.Publish("t", i)
	}
	sim.Run()
	b.Topic("t").Pull(2)
	b.Topic("t").MoveAll(b.Topic("u"))
	if b.Published != 4 {
		t.Errorf("published = %d", b.Published)
	}
	if b.Topic("t").Delivered != 4 || b.Topic("t").Pulled != 2 {
		t.Errorf("topic counters = %d/%d", b.Topic("t").Delivered, b.Topic("t").Pulled)
	}
	if b.Moved != 2 {
		t.Errorf("moved = %d", b.Moved)
	}
}

func TestTimeInQueue(t *testing.T) {
	sim, b := newBus()
	b.Publish("t", 1)
	sim.Run()
	m := b.Topic("t").Pull(1)[0]
	if got := m.TimeInQueue(110 * time.Millisecond); got != 100*time.Millisecond {
		t.Errorf("time in queue = %v, want 100ms", got)
	}
}

// Property: no message is ever lost or duplicated across random
// publish/pull/move sequences.
func TestPropertyConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		sim, b := newBus()
		topics := []string{"a", "b", "c"}
		published, consumed := 0, 0
		for _, op := range ops {
			from := topics[int(op)%3]
			to := topics[int(op/3)%3]
			switch op % 4 {
			case 0:
				b.Publish(from, int(op))
				published++
			case 1:
				sim.RunFor(time.Second)
				consumed += len(b.Topic(from).Pull(int(op%5) + 1))
			case 2:
				sim.RunFor(time.Second)
				if from != to {
					b.Topic(from).MoveAll(b.Topic(to))
				}
			case 3:
				sim.RunFor(50 * time.Millisecond)
			}
		}
		sim.Run()
		inQueues := 0
		for _, name := range topics {
			inQueues += b.Topic(name).Len()
		}
		return published == consumed+inQueues
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
