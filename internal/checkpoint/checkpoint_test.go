package checkpoint

import (
	"testing"
	"time"

	"repro/internal/dist"
)

func TestEnabledGate(t *testing.T) {
	var nilModel *Model
	if nilModel.Enabled() {
		t.Fatal("nil model must be disabled")
	}
	if (&Model{}).Enabled() {
		t.Fatal("zero model must be disabled")
	}
	if WithInterval(0).Enabled() {
		t.Fatal("WithInterval(0) must be disabled")
	}
	if WithInterval(-time.Second).Enabled() {
		t.Fatal("negative interval must be disabled")
	}
	if !Default().Enabled() {
		t.Fatal("Default must be enabled")
	}
	if !WithInterval(30 * time.Second).Enabled() {
		t.Fatal("WithInterval(30s) must be enabled")
	}
}

func TestWithIntervalPinsConstant(t *testing.T) {
	m := WithInterval(45 * time.Second)
	r := dist.NewRand(1)
	for i := 0; i < 5; i++ {
		if got := m.NextInterval(r); got != 45*time.Second {
			t.Fatalf("interval draw %d: got %v, want 45s", i, got)
		}
	}
	// The disabled variant still carries the other calibrations so it
	// can be attached unconditionally.
	d := WithInterval(0)
	if d.Cost == nil || d.StateMB == nil || d.BandwidthMBps == nil || d.RestoreOverhead == nil {
		t.Fatal("disabled model must keep non-interval dists populated")
	}
}

func TestDeterministicDraws(t *testing.T) {
	m := Default()
	a, b := dist.NewRand(7), dist.NewRand(7)
	for i := 0; i < 100; i++ {
		if m.NextInterval(a) != m.NextInterval(b) ||
			m.CostTime(a) != m.CostTime(b) ||
			m.StateSizeMB(a) != m.StateSizeMB(b) ||
			m.RestoreTime(256, a) != m.RestoreTime(256, b) {
			t.Fatalf("draw %d diverged between identically seeded streams", i)
		}
	}
}

func TestRestoreTimeScalesWithState(t *testing.T) {
	m := &Model{
		Interval:        dist.Constant{Value: 60},
		Cost:            dist.Constant{Value: 1},
		StateMB:         dist.Constant{Value: 100},
		BandwidthMBps:   dist.Constant{Value: 100},
		RestoreOverhead: dist.Constant{Value: 2},
	}
	r := dist.NewRand(1)
	if got := m.RestoreTime(100, r); got != 3*time.Second {
		t.Fatalf("restore(100MB @100MB/s +2s) = %v, want 3s", got)
	}
	if got := m.RestoreTime(0, r); got != 2*time.Second {
		t.Fatalf("restore(0MB) = %v, want overhead-only 2s", got)
	}
	small := m.RestoreTime(10, r)
	large := m.RestoreTime(1000, r)
	if small >= large {
		t.Fatalf("restore time must grow with state: %v vs %v", small, large)
	}
}

func TestCalibratedRangesSane(t *testing.T) {
	m := Default()
	r := dist.NewRand(3)
	for i := 0; i < 1000; i++ {
		if iv := m.NextInterval(r); iv < 30*time.Second || iv > 180*time.Second {
			t.Fatalf("interval %v outside clamp", iv)
		}
		if c := m.CostTime(r); c < 100*time.Millisecond || c > 5*time.Second {
			t.Fatalf("cost %v outside clamp", c)
		}
		if s := m.StateSizeMB(r); s < 16 || s > 4096 {
			t.Fatalf("state %f MB outside clamp", s)
		}
	}
}
