// Package checkpoint models periodic checkpoint/restore for FaaS
// executions that outlive their pilot job. The paper's fast lane
// (§III-C) rescues *queued* requests when a pilot receives SIGTERM;
// a *running* execution longer than the 3-minute grace window is
// simply lost — the cap on the §VII scientific workload. Limitless
// FaaS (see PAPERS.md) shows the extension this package models:
// executions take periodic memory checkpoints, and an interrupted
// execution is re-invoked elsewhere — another pilot via the fast
// lane, or the Alg. 1 cloud fallback — resuming from its last
// checkpoint after paying state-transfer plus restore time (rFaaS's
// lease framing motivates charging that restore as a first-class
// latency component rather than a free retry).
//
// A Model is pure data: distributions for the checkpoint interval,
// the per-checkpoint dump pause, the serialized state size, and the
// restore path (transfer bandwidth + fixed restore overhead). It
// attaches to interruptible whisk.Actions and is sampled by the
// invoker with an explicit RNG forked via dist.Split, so the
// no-checkpoint configuration draws exactly the sequence it always
// did and the committed goldens stay byte-identical.
package checkpoint

import (
	"math/rand"
	"time"

	"repro/internal/dist"
)

// Model parameterizes checkpointing for one action. The zero value
// (and a nil pointer) disable checkpointing entirely; Enabled is the
// single gate the invoker consults, so a Model with a nil Interval can
// be attached everywhere without perturbing the simulation.
type Model struct {
	// Interval is the gap between successive checkpoints, in seconds.
	// nil disables checkpointing for the action.
	Interval dist.Dist

	// Cost is the stop-the-world dump pause per checkpoint, in seconds.
	Cost dist.Dist

	// StateMB is the serialized checkpoint state size, in megabytes —
	// what a resume must transfer before work continues.
	StateMB dist.Dist

	// BandwidthMBps is the effective state-transfer bandwidth a
	// resuming worker sees, in MB/s.
	BandwidthMBps dist.Dist

	// RestoreOverhead is the fixed process-reconstruction cost once the
	// state is local, in seconds.
	RestoreOverhead dist.Dist
}

// Default returns the calibrated checkpoint model (see the
// checkpoint/restore constructors in internal/dist/calibrations.go).
func Default() *Model {
	return &Model{
		Interval:        dist.CheckpointIntervalSeconds(),
		Cost:            dist.CheckpointCostSeconds(),
		StateMB:         dist.CheckpointStateMB(),
		BandwidthMBps:   dist.RestoreBandwidthMBps(),
		RestoreOverhead: dist.RestoreOverheadSeconds(),
	}
}

// WithInterval returns the calibrated model with the interval pinned
// to a constant d. d <= 0 returns a disabled model (Interval nil, all
// other dists populated), which experiments attach unconditionally so
// the disabled path is exercised by every golden run.
func WithInterval(d time.Duration) *Model {
	m := Default()
	if d <= 0 {
		m.Interval = nil
		return m
	}
	m.Interval = dist.Constant{Value: d.Seconds()}
	return m
}

// Enabled reports whether the model actually checkpoints. It is the
// single gate on every checkpoint code path: nil models and models
// without an interval distribution take the exact pre-checkpoint
// execution path, with zero additional RNG draws or events.
func (m *Model) Enabled() bool { return m != nil && m.Interval != nil }

// NextInterval draws the gap to the next checkpoint.
func (m *Model) NextInterval(r *rand.Rand) time.Duration {
	return dist.Seconds(m.Interval, r)
}

// CostTime draws one checkpoint's dump pause.
func (m *Model) CostTime(r *rand.Rand) time.Duration {
	return dist.Seconds(m.Cost, r)
}

// StateSizeMB draws the serialized state size of one checkpoint.
func (m *Model) StateSizeMB(r *rand.Rand) float64 {
	return m.StateMB.Sample(r)
}

// RestoreTime draws the full cost of resuming from a checkpoint of
// stateMB megabytes: state transfer at a drawn bandwidth plus the
// fixed restore overhead.
func (m *Model) RestoreTime(stateMB float64, r *rand.Rand) time.Duration {
	bw := m.BandwidthMBps.Sample(r)
	var transfer time.Duration
	if bw > 0 && stateMB > 0 {
		transfer = time.Duration(stateMB / bw * float64(time.Second))
	}
	return transfer + dist.Seconds(m.RestoreOverhead, r)
}
