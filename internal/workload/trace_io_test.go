package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// TestTraceCSVRoundTripStrict pins the write→read contract joblen-opt
// and idle-analysis rely on, beyond the smoke round trip in
// workload_test.go: every period field must survive at the 1 ms
// resolution of the %.3f serialization over a full-day trace, and
// re-serializing the parsed trace must be byte-identical (so dump →
// share → re-dump workflows are stable).
func TestTraceCSVRoundTripStrict(t *testing.T) {
	tr := DefaultIdleProcess(64, 24*time.Hour, 7).Generate()
	if len(tr.Periods) == 0 {
		t.Fatal("generated trace has no periods")
	}

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if got.Nodes != tr.Nodes {
		t.Errorf("nodes %d, want %d", got.Nodes, tr.Nodes)
	}
	if d := got.Horizon - tr.Horizon; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("horizon %v, want %v", got.Horizon, tr.Horizon)
	}
	if len(got.Periods) != len(tr.Periods) {
		t.Fatalf("%d periods, want %d", len(got.Periods), len(tr.Periods))
	}
	// WriteCSV preserves order and ReadCSV re-sorts; the source trace
	// is already sorted, so periods align positionally. Compare by
	// rounding to the millisecond, matching %.3f's rounding.
	ms := func(d time.Duration) int64 { return int64(math.Round(float64(d) / float64(time.Millisecond))) }
	for i, p := range got.Periods {
		want := tr.Periods[i]
		if p.Node != want.Node || ms(p.Start) != ms(want.Start) ||
			ms(p.End) != ms(want.End) || ms(p.DeclaredEnd) != ms(want.DeclaredEnd) {
			t.Fatalf("period %d = %+v, want %+v (at ms resolution)", i, p, want)
		}
	}

	// A second write must be byte-identical: serialization is pure.
	var buf2 bytes.Buffer
	if err := got.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-serializing the parsed trace changed the bytes")
	}
}

// TestReadCSVRejectsMalformed pins the strict-parsing contract: every
// malformed shape fails with an error quoting the offending line, and
// nothing is silently ignored.
func TestReadCSVRejectsMalformed(t *testing.T) {
	const header = "#4,86400.000\n"
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty trace stream"},
		{"no-header", "0,1.0,2.0,2.0\n", "bad trace header"},
		{"header-fields", "#4\n", "want 2 fields"},
		{"header-nodes", "#four,86400\n", "node count"},
		{"header-zero-nodes", "#0,86400\n", "node count"},
		{"header-horizon", "#4,soon\n", "horizon"},
		{"row-fields", header + "0,1.0,2.0\n", "want node,start_s"},
		{"row-extra-field", header + "0,1.0,2.0,2.0,9\n", "want node,start_s"},
		{"row-node", header + "zero,1.0,2.0,2.0\n", "node \"zero\""},
		{"row-node-range", header + "7,1.0,2.0,2.0\n", "outside cluster"},
		{"row-negative-node", header + "-1,1.0,2.0,2.0\n", "outside cluster"},
		{"row-number", header + "0,1.0,soon,2.0\n", "field \"soon\""},
		{"row-trailing-garbage", header + "0,1.0,2.0,2.0junk\n", "field \"2.0junk\""},
		{"row-reversed-period", header + "0,50.0,10.0,10.0\n", "bad bounds"},
		{"row-empty-period", header + "0,10.0,10.0,10.0\n", "bad bounds"},
		{"row-past-horizon", header + "0,1.0,90000.0,90000.0\n", "bad bounds"},
		{"rows-overlap", header + "0,1.0,20.0,20.0\n0,10.0,30.0,30.0\n", "overlap"},
		{"row-declared-before-start", header + "0,10.0,20.0,-5.0\n", "declares end"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ReadCSV(%q) succeeded, want error containing %q", tc.in, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q lacks %q", err, tc.wantErr)
			}
		})
	}
}

// TestReadCSVSortsAndSkipsBlankLines documents the two permissive
// behaviors: blank lines are skipped, and out-of-order rows are
// re-sorted into the canonical start order.
func TestReadCSVSortsAndSkipsBlankLines(t *testing.T) {
	in := "#2,100.000\n\n1,50.000,60.000,60.000\n\n0,1.000,2.000,2.000\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Periods) != 2 {
		t.Fatalf("%d periods, want 2", len(tr.Periods))
	}
	if tr.Periods[0].Node != 0 || tr.Periods[1].Node != 1 {
		t.Errorf("periods not re-sorted by start: %+v", tr.Periods)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("parsed trace fails Validate: %v", err)
	}
}
