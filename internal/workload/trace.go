// Package workload generates and analyzes the workloads of the HPC-Whisk
// reproduction: the per-node idle-availability trace standing in for the
// Prometheus production logs of §I (Fig. 1), and the HPC job stream of
// Fig. 2. Both are calibrated against the statistics published in the
// paper and verified by tests.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/stats"
)

// IdlePeriod is one contiguous idle interval of one node. Start and End
// delimit the actual idleness; DeclaredEnd is the end the cluster
// scheduler believes in at Start (its view of when the next prime job
// will claim the node). DeclaredEnd < End models surprise extensions
// (a prime job finished early elsewhere, the planned start slipped);
// DeclaredEnd > End models surprise reclaims that preempt pilot jobs.
type IdlePeriod struct {
	Node        int
	Start       time.Duration
	End         time.Duration
	DeclaredEnd time.Duration
}

// Len returns the actual length of the period.
func (p IdlePeriod) Len() time.Duration { return p.End - p.Start }

// Trace is a whole-cluster idle-availability trace over a horizon.
type Trace struct {
	Nodes   int
	Horizon time.Duration
	Periods []IdlePeriod // sorted by Start
}

// Sort orders the periods by start time (ties by node id).
func (t *Trace) Sort() {
	sort.Slice(t.Periods, func(i, j int) bool {
		if t.Periods[i].Start != t.Periods[j].Start {
			return t.Periods[i].Start < t.Periods[j].Start
		}
		return t.Periods[i].Node < t.Periods[j].Node
	})
}

// Validate checks internal consistency: periods within the horizon, nodes
// in range, per-node periods non-overlapping.
func (t *Trace) Validate() error {
	lastEnd := make([]time.Duration, t.Nodes)
	byNode := t.PerNode()
	for node, idxs := range byNode {
		for _, i := range idxs {
			p := t.Periods[i]
			if p.Node != node {
				return fmt.Errorf("workload: period %d filed under node %d but belongs to %d", i, node, p.Node)
			}
			if p.Start < 0 || p.End > t.Horizon || p.End <= p.Start {
				return fmt.Errorf("workload: period %d has bad bounds [%v,%v)", i, p.Start, p.End)
			}
			// The generator clamps DeclaredEnd to at least Start (a
			// declared end may exceed End — a surprise reclaim — or
			// even the horizon, but never precede the period).
			if p.DeclaredEnd < p.Start {
				return fmt.Errorf("workload: period %d declares end %v before start %v", i, p.DeclaredEnd, p.Start)
			}
			if p.Start < lastEnd[node] {
				return fmt.Errorf("workload: node %d periods overlap at %v", node, p.Start)
			}
			lastEnd[node] = p.End
		}
	}
	return nil
}

// PerNode returns, for each node, the indices of its periods in start
// order.
func (t *Trace) PerNode() [][]int {
	out := make([][]int, t.Nodes)
	for i, p := range t.Periods {
		out[p.Node] = append(out[p.Node], i)
	}
	for _, idxs := range out {
		sort.Slice(idxs, func(a, b int) bool { return t.Periods[idxs[a]].Start < t.Periods[idxs[b]].Start })
	}
	return out
}

// IdleCount returns the piecewise-constant number of simultaneously idle
// nodes over the horizon, built by an event sweep. This regenerates
// Fig. 1a (its time-weighted distribution) and Fig. 1c (the series).
func (t *Trace) IdleCount() *stats.TimeWeighted {
	type ev struct {
		at    time.Duration
		delta int
	}
	evs := make([]ev, 0, 2*len(t.Periods))
	for _, p := range t.Periods {
		evs = append(evs, ev{p.Start, +1}, ev{p.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].delta < evs[j].delta // ends before starts at the same instant
	})
	var tw stats.TimeWeighted
	tw.Observe(0, 0)
	n := 0
	for _, e := range evs {
		n += e.delta
		tw.Observe(e.at, float64(n))
	}
	tw.Finish(t.Horizon)
	return &tw
}

// PeriodLengths returns the sample of idle-period lengths in seconds
// (Fig. 1b).
func (t *Trace) PeriodLengths() *stats.Sample {
	var s stats.Sample
	for _, p := range t.Periods {
		s.AddDuration(p.Len())
	}
	return &s
}

// TotalIdle returns the summed idle node-time of the trace (the paper's
// "idle surface"; §I reports 37,000 core-hours ≈ 1,541 node-hours/day on
// 24-core nodes over a week).
func (t *Trace) TotalIdle() time.Duration {
	var total time.Duration
	for _, p := range t.Periods {
		total += p.Len()
	}
	return total
}

// SaturationShare returns the fraction of the horizon with zero idle
// nodes and the longest such stretch (§I: 10.11% and 1.55 h).
func (t *Trace) SaturationShare() (share float64, longest time.Duration) {
	tw := t.IdleCount()
	zero := func(v float64) bool { return v == 0 }
	return tw.FractionEqual(0), tw.LongestRunWhere(zero)
}

// WriteCSV serializes the trace as "node,start_s,end_s,declared_end_s"
// rows preceded by a "#nodes,horizon_s" header comment.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#%d,%.3f\n", t.Nodes, t.Horizon.Seconds()); err != nil {
		return err
	}
	for _, p := range t.Periods {
		if _, err := fmt.Fprintf(bw, "%d,%.3f,%.3f,%.3f\n",
			p.Node, p.Start.Seconds(), p.End.Seconds(), p.DeclaredEnd.Seconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. Parsing is strict —
// wrong field counts, non-numeric fields, trailing garbage, rows
// naming nodes outside the header's cluster size, and semantically
// invalid traces (empty or reversed periods, periods past the
// horizon, per-node overlaps — the Validate invariants) are all
// rejected — because joblen-opt feeds user-supplied files through
// here and the packing simulators assume a well-formed trace.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	t := &Trace{}
	first := true
	lineNo := 0
	for sc.Scan() {
		line := sc.Text()
		lineNo++
		if line == "" {
			continue
		}
		if first {
			first = false
			rest, ok := strings.CutPrefix(line, "#")
			if !ok {
				return nil, fmt.Errorf("workload: bad trace header %q: want #nodes,horizon_s", line)
			}
			fields := strings.Split(rest, ",")
			if len(fields) != 2 {
				return nil, fmt.Errorf("workload: bad trace header %q: want 2 fields, got %d", line, len(fields))
			}
			nodes, err := strconv.Atoi(fields[0])
			if err != nil || nodes <= 0 {
				return nil, fmt.Errorf("workload: bad trace header %q: node count %q", line, fields[0])
			}
			horizon, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || horizon <= 0 {
				return nil, fmt.Errorf("workload: bad trace header %q: horizon %q", line, fields[1])
			}
			t.Nodes = nodes
			t.Horizon = time.Duration(horizon * float64(time.Second))
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("workload: bad trace row %d %q: want node,start_s,end_s,declared_end_s", lineNo, line)
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("workload: bad trace row %d %q: node %q: %v", lineNo, line, fields[0], err)
		}
		if node < 0 || node >= t.Nodes {
			return nil, fmt.Errorf("workload: bad trace row %d %q: node %d outside cluster of %d", lineNo, line, node, t.Nodes)
		}
		secs := make([]float64, 3)
		for i, f := range fields[1:] {
			secs[i], err = strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: bad trace row %d %q: field %q: %v", lineNo, line, f, err)
			}
		}
		t.Periods = append(t.Periods, IdlePeriod{
			Node:        node,
			Start:       time.Duration(secs[0] * float64(time.Second)),
			End:         time.Duration(secs[1] * float64(time.Second)),
			DeclaredEnd: time.Duration(secs[2] * float64(time.Second)),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, fmt.Errorf("workload: empty trace stream")
	}
	t.Sort()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Window clips the trace to [from, to), shifting times so the clip starts
// at 0. Periods straddling the boundaries are truncated; their declared
// ends are clipped likewise. Used to cut 24-hour experiment days out of a
// week-long trace, as the paper does.
func (t *Trace) Window(from, to time.Duration) *Trace {
	if from < 0 || to > t.Horizon || to <= from {
		panic(fmt.Sprintf("workload: bad window [%v,%v) of %v", from, to, t.Horizon))
	}
	out := &Trace{Nodes: t.Nodes, Horizon: to - from}
	for _, p := range t.Periods {
		if p.End <= from || p.Start >= to {
			continue
		}
		q := p
		if q.Start < from {
			q.Start = from
		}
		if q.End > to {
			q.End = to
		}
		if q.DeclaredEnd > to {
			q.DeclaredEnd = to
		}
		if q.DeclaredEnd < q.Start {
			q.DeclaredEnd = q.Start
		}
		q.Start -= from
		q.End -= from
		q.DeclaredEnd -= from
		out.Periods = append(out.Periods, q)
	}
	out.Sort()
	return out
}
