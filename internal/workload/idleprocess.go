package workload

import (
	"container/heap"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dist"
)

// IdleProcessConfig parameterizes the regime-modulated idle-period point
// process that stands in for the Prometheus node-status logs of §I.
//
// The cluster alternates between two demand regimes. During *contended*
// stretches, idle periods are short (no long gap survives the demand),
// and whole-cluster saturation windows occur (zero idle nodes anywhere —
// the paper's 10.11% share); occasional drain bursts spike the number of
// idle nodes to ~100-150 for a few minutes (Fig. 1c). During *calm*
// stretches, more nodes sit idle and the period-length distribution
// carries the fat Pareto tail, which is how the aggregate trace shows 5%
// of periods above 23 minutes despite the frequent truncation during
// contention. Each period lands on a distinct node.
type IdleProcessConfig struct {
	Nodes   int
	Horizon time.Duration

	// MeanIdleNodes is the calibration target for the time-average
	// number of idle nodes (9.23 in the paper). Regime concurrencies are
	// derived from it.
	MeanIdleNodes float64

	// SaturatedFraction is the target share of time with zero idle
	// nodes (0.1011 in the paper). Saturation windows are placed inside
	// contended stretches.
	SaturatedFraction float64

	// ContendedMean and CalmMean are the mean lengths of the two demand
	// regimes (exponentially distributed).
	ContendedMean time.Duration
	CalmMean      time.Duration

	ContendedPeriod   dist.Dist // idle-period lengths while contended (s)
	CalmPeriod        dist.Dist // idle-period lengths while calm (s)
	SaturationSeconds dist.Dist // saturation-window lengths (s)

	BurstsPerDay  float64   // mean number of drain bursts per day
	BurstFactor   dist.Dist // arrival-rate multiplier during a burst
	BurstSeconds  dist.Dist // burst-window lengths (s)
	DeclaredError DeclaredErrorModel

	Seed int64
}

// contendedDepression is the ratio of contended-regime concurrency to
// the overall target mean; calm-regime concurrency is derived from it
// so that the time average lands on MeanIdleNodes for any regime split.
const contendedDepression = 0.54

// DeclaredErrorModel controls how the scheduler-visible window length
// (DeclaredEnd - Start) deviates from the actual idle length.
type DeclaredErrorModel struct {
	PUnder      float64   // probability the window is underestimated
	UnderFactor dist.Dist // multiplier < 1
	POver       float64   // probability the window is overestimated
	OverFactor  dist.Dist // multiplier > 1
}

// DefaultIdleProcess returns the configuration calibrated to §I of the
// paper for a cluster of the given size and horizon.
func DefaultIdleProcess(nodes int, horizon time.Duration, seed int64) IdleProcessConfig {
	return IdleProcessConfig{
		Nodes:             nodes,
		Horizon:           horizon,
		MeanIdleNodes:     9.23,
		SaturatedFraction: 0.1011,
		ContendedMean:     3 * time.Hour,
		CalmMean:          150 * time.Minute,
		ContendedPeriod:   dist.ContendedIdlePeriodSeconds(),
		CalmPeriod:        dist.CalmIdlePeriodSeconds(),
		SaturationSeconds: dist.SaturationPeriodSeconds(),
		BurstsPerDay:      3,
		BurstFactor:       dist.Uniform{Lo: 10, Hi: 30},
		BurstSeconds:      dist.Uniform{Lo: 3 * 60, Hi: 15 * 60},
		DeclaredError: DeclaredErrorModel{
			PUnder:      0.15,
			UnderFactor: dist.Uniform{Lo: 0.40, Hi: 0.95},
			POver:       0.15,
			OverFactor:  dist.Uniform{Lo: 1.05, Hi: 1.80},
		},
		Seed: seed,
	}
}

// Generate builds the trace.
func (cfg IdleProcessConfig) Generate() *Trace {
	if cfg.Nodes <= 0 || cfg.Horizon <= 0 {
		panic("workload: idle process needs nodes and a horizon")
	}
	root := dist.NewRand(cfg.Seed)
	rArrival := dist.Split(root)
	rPeriod := dist.Split(root)
	rRegime := dist.Split(root)
	rSat := dist.Split(root)
	rBurst := dist.Split(root)
	rNode := dist.Split(root)
	rDecl := dist.Split(root)

	horizonSec := cfg.Horizon.Seconds()
	calms := cfg.calmWindows(rRegime, horizonSec)
	saturations := cfg.saturationWindows(rSat, calms, horizonSec)
	bursts := cfg.burstWindows(rBurst, horizonSec)

	// Per-regime arrival rates from the target concurrency:
	// lambda = concurrency / E[period length]. Contended stretches sit
	// below the overall mean; the calm concurrency is derived so the
	// overall time average hits MeanIdleNodes given the realized regime
	// split and the saturation share.
	meanContD := sampleMean(cfg.ContendedPeriod, rPeriod, 20000)
	meanCalmD := sampleMean(cfg.CalmPeriod, rPeriod, 20000)
	var calmTotal float64
	for _, w := range calms {
		calmTotal += w.end - w.start
	}
	shareCalm := calmTotal / horizonSec
	shareCont := 1 - shareCalm
	var satTotal float64
	for _, w := range saturations {
		satTotal += w.end - w.start
	}
	satInCont := 0.0
	if shareCont > 0 {
		satInCont = (satTotal / horizonSec) / shareCont
	}
	concCont := cfg.MeanIdleNodes * contendedDepression
	concCalm := cfg.MeanIdleNodes
	if shareCalm > 0.01 {
		concCalm = (cfg.MeanIdleNodes - shareCont*concCont*(1-satInCont)) / shareCalm
	} else if shareCont > 0 && satInCont < 1 {
		concCont = cfg.MeanIdleNodes / (shareCont * (1 - satInCont))
	}
	if concCalm < 0 {
		concCalm = 0
	}
	lambdaCont := concCont / meanContD
	lambdaCalm := concCalm / meanCalmD
	if lambdaCalm <= 0 {
		lambdaCalm = 1e-9
	}
	if lambdaCont <= 0 {
		lambdaCont = 1e-9
	}

	tr := &Trace{Nodes: cfg.Nodes, Horizon: cfg.Horizon}
	free := newFreeSet(cfg.Nodes)
	active := &endHeap{}

	release := func(until float64) {
		for active.Len() > 0 && (*active)[0].end <= until {
			e := heap.Pop(active).(activePeriod)
			free.add(e.node)
		}
	}

	segs := rateSegments(calms, saturations, bursts, horizonSec)
	for _, seg := range segs {
		if seg.saturated {
			// A demand surge claims every idle node: truncate active
			// periods at the segment start.
			for active.Len() > 0 {
				e := heap.Pop(active).(activePeriod)
				p := &tr.Periods[e.idx]
				cut := time.Duration(seg.start * float64(time.Second))
				if cut < p.End {
					// DeclaredEnd deliberately stays put: the reclaim is
					// a surprise to the scheduler, so pilots planned into
					// the window get preempted.
					p.End = cut
				}
				free.add(e.node)
			}
			continue
		}
		rate := lambdaCont
		periodDist := cfg.ContendedPeriod
		if seg.calm {
			rate = lambdaCalm
			periodDist = cfg.CalmPeriod
		} else {
			rate *= seg.burstFactor // drain bursts only hit contended time
		}
		t := seg.start
		for {
			t += rArrival.ExpFloat64() / rate
			if t >= seg.end {
				break
			}
			release(t)
			node, ok := free.pick(rNode)
			if !ok {
				continue // every node already idle; cannot start another period
			}
			d := periodDist.Sample(rPeriod)
			end := t + d
			if end > horizonSec {
				end = horizonSec
			}
			if end <= t {
				free.add(node)
				continue
			}
			declared := t + cfg.DeclaredError.apply(rDecl, end-t)
			if declared > horizonSec {
				declared = horizonSec
			}
			tr.Periods = append(tr.Periods, IdlePeriod{
				Node:        node,
				Start:       time.Duration(t * float64(time.Second)),
				End:         time.Duration(end * float64(time.Second)),
				DeclaredEnd: time.Duration(declared * float64(time.Second)),
			})
			heap.Push(active, activePeriod{end: end, node: node, idx: len(tr.Periods) - 1})
		}
		release(seg.end)
	}
	for i := range tr.Periods {
		if tr.Periods[i].DeclaredEnd < tr.Periods[i].Start {
			tr.Periods[i].DeclaredEnd = tr.Periods[i].Start
		}
	}
	tr.Sort()
	return tr
}

func (m DeclaredErrorModel) apply(r *rand.Rand, actual float64) float64 {
	u := r.Float64()
	switch {
	case u < m.PUnder && m.UnderFactor != nil:
		return actual * m.UnderFactor.Sample(r)
	case u < m.PUnder+m.POver && m.OverFactor != nil:
		return actual * m.OverFactor.Sample(r)
	default:
		return actual
	}
}

type window struct{ start, end float64 }

func inWindows(ws []window, t float64) bool {
	for _, w := range ws {
		if t >= w.start && t < w.end {
			return true
		}
	}
	return false
}

// calmWindows alternates contended/calm stretches over the horizon,
// starting contended.
func (cfg IdleProcessConfig) calmWindows(r *rand.Rand, horizon float64) []window {
	if cfg.CalmMean <= 0 {
		return nil
	}
	contMean := cfg.ContendedMean.Seconds()
	calmMean := cfg.CalmMean.Seconds()
	var out []window
	t := r.ExpFloat64() * contMean
	for t < horizon {
		end := t + r.ExpFloat64()*calmMean
		if end > horizon {
			end = horizon
		}
		out = append(out, window{start: t, end: end})
		t = end + r.ExpFloat64()*contMean
	}
	return out
}

// saturationWindows places zero-idle windows inside contended stretches,
// dense enough that their overall share matches SaturatedFraction.
func (cfg IdleProcessConfig) saturationWindows(r *rand.Rand, calms []window, horizon float64) []window {
	if cfg.SaturatedFraction <= 0 {
		return nil
	}
	var calmTotal float64
	for _, w := range calms {
		calmTotal += w.end - w.start
	}
	contShare := (horizon - calmTotal) / horizon
	if contShare <= 0 {
		return nil
	}
	// The post-saturation ramp (arrivals rebuilding from zero) keeps the
	// idle count at zero beyond the windows themselves, so placing
	// windows for ~78% of the target share realizes the full share.
	fracInCont := 0.78 * cfg.SaturatedFraction / contShare
	if fracInCont >= 0.9 {
		fracInCont = 0.9
	}
	meanSat := sampleMean(cfg.SaturationSeconds, r, 5000)
	meanGap := meanSat * (1 - fracInCont) / fracInCont
	var out []window
	t := r.ExpFloat64() * meanGap
	for t < horizon {
		if inWindows(calms, t) {
			t += r.ExpFloat64() * meanGap
			continue
		}
		d := cfg.SaturationSeconds.Sample(r)
		end := t + d
		if end > horizon {
			end = horizon
		}
		out = append(out, window{start: t, end: end})
		t = end + r.ExpFloat64()*meanGap
	}
	return out
}

func (cfg IdleProcessConfig) burstWindows(r *rand.Rand, horizon float64) []burst {
	if cfg.BurstsPerDay <= 0 {
		return nil
	}
	meanGap := 86400.0 / cfg.BurstsPerDay
	var out []burst
	t := r.ExpFloat64() * meanGap
	for t < horizon {
		d := cfg.BurstSeconds.Sample(r)
		f := cfg.BurstFactor.Sample(r)
		end := t + d
		if end > horizon {
			end = horizon
		}
		out = append(out, burst{window: window{start: t, end: end}, factor: f})
		t = end + r.ExpFloat64()*meanGap
	}
	return out
}

type burst struct {
	window
	factor float64
}

type rateSegment struct {
	start, end  float64
	saturated   bool
	calm        bool
	burstFactor float64
}

// rateSegments flattens regime, saturation, and burst windows into
// disjoint piecewise-constant segments covering [0, horizon).
func rateSegments(calms, sats []window, bursts []burst, horizon float64) []rateSegment {
	cuts := map[float64]bool{0: true, horizon: true}
	addWindow := func(w window) {
		cuts[w.start] = true
		cuts[w.end] = true
	}
	for _, w := range calms {
		addWindow(w)
	}
	for _, w := range sats {
		addWindow(w)
	}
	for _, b := range bursts {
		addWindow(b.window)
	}
	points := make([]float64, 0, len(cuts))
	for c := range cuts {
		if c >= 0 && c <= horizon {
			points = append(points, c)
		}
	}
	sort.Float64s(points)
	var segs []rateSegment
	for i := 0; i+1 < len(points); i++ {
		s, e := points[i], points[i+1]
		if e <= s {
			continue
		}
		mid := (s + e) / 2
		seg := rateSegment{start: s, end: e, burstFactor: 1}
		seg.saturated = inWindows(sats, mid)
		if !seg.saturated {
			seg.calm = inWindows(calms, mid)
			if !seg.calm {
				for _, b := range bursts {
					if mid >= b.start && mid < b.end {
						seg.burstFactor = b.factor
						break
					}
				}
			}
		}
		segs = append(segs, seg)
	}
	return segs
}

func sampleMean(d dist.Dist, r *rand.Rand, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

// freeSet tracks nodes not currently idle, with O(1) pick/add/remove.
type freeSet struct {
	ids []int
	pos []int
}

func newFreeSet(n int) *freeSet {
	f := &freeSet{ids: make([]int, n), pos: make([]int, n)}
	for i := 0; i < n; i++ {
		f.ids[i] = i
		f.pos[i] = i
	}
	return f
}

func (f *freeSet) add(id int) {
	if f.pos[id] >= 0 {
		return
	}
	f.pos[id] = len(f.ids)
	f.ids = append(f.ids, id)
}

// pick removes and returns a uniformly random free node.
func (f *freeSet) pick(r *rand.Rand) (int, bool) {
	if len(f.ids) == 0 {
		return 0, false
	}
	i := r.Intn(len(f.ids))
	id := f.ids[i]
	last := len(f.ids) - 1
	moved := f.ids[last]
	f.ids[i] = moved
	f.pos[moved] = i
	f.ids = f.ids[:last]
	f.pos[id] = -1
	return id, true
}

type activePeriod struct {
	end  float64
	node int
	idx  int
}

type endHeap []activePeriod

func (h endHeap) Len() int           { return len(h) }
func (h endHeap) Less(i, j int) bool { return h[i].end < h[j].end }
func (h endHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x any)        { *h = append(*h, x.(activePeriod)) }
func (h *endHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
