package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/stats"
)

// Job is one prime HPC job: the unit of Fig. 2's analysis and the input
// of the full-scheduler mode of the Slurm emulator.
type Job struct {
	ID       int
	Submit   time.Duration // submission instant
	Nodes    int           // requested node count
	Declared time.Duration // user-declared walltime limit
	Runtime  time.Duration // actual runtime (≤ Declared)
}

// Slack returns the difference between the declared limit and the actual
// runtime (the orange CDF of Fig. 2).
func (j Job) Slack() time.Duration { return j.Declared - j.Runtime }

// JobGenConfig parameterizes the HPC job-stream generator calibrated to
// Fig. 2 (74k non-commercial jobs/week; median declared walltime 60 min;
// only 5% declare under 15 min).
type JobGenConfig struct {
	N       int           // number of jobs
	Horizon time.Duration // submissions are uniform-Poisson over this span
	// NodesDist yields the requested node count (values are rounded).
	NodesDist dist.Dist
	// WalltimeSeconds yields the declared limit; RuntimeFraction yields
	// runtime/limit.
	WalltimeSeconds dist.Dist
	RuntimeFraction dist.Dist
	Seed            int64
}

// DefaultJobGen returns the Fig. 2 calibration for n jobs over horizon.
func DefaultJobGen(n int, horizon time.Duration, seed int64) JobGenConfig {
	return JobGenConfig{
		N:       n,
		Horizon: horizon,
		NodesDist: dist.NewDiscrete(
			[]float64{1, 2, 3, 4, 8, 12, 16, 24, 32, 64, 128},
			[]float64{52, 12, 5, 8, 7, 4, 4, 3, 2.5, 1.8, 0.7},
		),
		WalltimeSeconds: dist.DeclaredWalltimeSeconds(),
		RuntimeFraction: dist.RuntimeFraction(),
		Seed:            seed,
	}
}

// Generate builds the job stream, sorted by submission time.
func (cfg JobGenConfig) Generate() []Job {
	if cfg.N <= 0 {
		panic("workload: job generator needs N > 0")
	}
	root := dist.NewRand(cfg.Seed)
	rArr := dist.Split(root)
	rNodes := dist.Split(root)
	rWall := dist.Split(root)
	rFrac := dist.Split(root)

	// Poisson arrivals conditioned on N over the horizon == N sorted
	// uniform draws.
	arrivals := make([]float64, cfg.N)
	for i := range arrivals {
		arrivals[i] = rArr.Float64() * cfg.Horizon.Seconds()
	}
	sort.Float64s(arrivals)

	jobs := make([]Job, cfg.N)
	for i := range jobs {
		wall := cfg.WalltimeSeconds.Sample(rWall)
		frac := cfg.RuntimeFraction.Sample(rFrac)
		if frac <= 0 {
			frac = 0.001
		}
		if frac > 1 {
			frac = 1
		}
		nodes := int(cfg.NodesDist.Sample(rNodes) + 0.5)
		if nodes < 1 {
			nodes = 1
		}
		runtime := time.Duration(wall * frac * float64(time.Second))
		if runtime < time.Second {
			runtime = time.Second
		}
		jobs[i] = Job{
			ID:       i,
			Submit:   time.Duration(arrivals[i] * float64(time.Second)),
			Nodes:    nodes,
			Declared: time.Duration(wall * float64(time.Second)),
			Runtime:  runtime,
		}
	}
	return jobs
}

// JobCDFs returns the three samples of Fig. 2 in minutes: declared
// limits, runtimes, and slacks.
func JobCDFs(jobs []Job) (limits, runtimes, slacks *stats.Sample) {
	limits, runtimes, slacks = &stats.Sample{}, &stats.Sample{}, &stats.Sample{}
	for _, j := range jobs {
		limits.Add(j.Declared.Minutes())
		runtimes.Add(j.Runtime.Minutes())
		slacks.Add(j.Slack().Minutes())
	}
	return limits, runtimes, slacks
}

// WriteJobsCSV serializes jobs as "id,submit_s,nodes,declared_s,runtime_s".
func WriteJobsCSV(w io.Writer, jobs []Job) error {
	bw := bufio.NewWriter(w)
	for _, j := range jobs {
		if _, err := fmt.Fprintf(bw, "%d,%.3f,%d,%.3f,%.3f\n",
			j.ID, j.Submit.Seconds(), j.Nodes, j.Declared.Seconds(), j.Runtime.Seconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJobsCSV parses jobs written by WriteJobsCSV.
func ReadJobsCSV(r io.Reader) ([]Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var jobs []Job
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var j Job
		var submit, declared, runtime float64
		if _, err := fmt.Sscanf(line, "%d,%f,%d,%f,%f",
			&j.ID, &submit, &j.Nodes, &declared, &runtime); err != nil {
			return nil, fmt.Errorf("workload: bad job row %q: %w", line, err)
		}
		j.Submit = time.Duration(submit * float64(time.Second))
		j.Declared = time.Duration(declared * float64(time.Second))
		j.Runtime = time.Duration(runtime * float64(time.Second))
		jobs = append(jobs, j)
	}
	return jobs, sc.Err()
}
