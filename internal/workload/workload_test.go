package workload

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

const week = 7 * 24 * time.Hour

// weekTrace is generated once and shared by the calibration tests.
var weekTrace = func() *Trace {
	return DefaultIdleProcess(2239, week, 1).Generate()
}()

func TestTraceValidates(t *testing.T) {
	if err := weekTrace.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFig1aIdleNodeDistribution checks the time-weighted distribution of
// the number of idle nodes against §I: mean 9.23, median 5, p25 2.
func TestFig1aIdleNodeDistribution(t *testing.T) {
	tw := weekTrace.IdleCount()
	mean := tw.TimeMean()
	if mean < 7.0 || mean > 11.5 {
		t.Errorf("mean idle nodes = %.2f, want ≈9.23", mean)
	}
	med := tw.Quantile(0.5)
	if med < 3 || med > 8 {
		t.Errorf("median idle nodes = %.0f, want ≈5", med)
	}
	p25 := tw.Quantile(0.25)
	if p25 < 0 || p25 > 5 {
		t.Errorf("p25 idle nodes = %.0f, want ≈2", p25)
	}
}

// TestFig1bIdlePeriodLengths checks realized (post-truncation) period
// lengths: median ≈2 min, p75 ≈4 min, mean ≈5 min, ~5% above 23 min.
func TestFig1bIdlePeriodLengths(t *testing.T) {
	s := weekTrace.PeriodLengths()
	if s.Len() < 5000 {
		t.Fatalf("only %d periods in a week", s.Len())
	}
	med := s.Median() / 60
	if med < 1.4 || med > 2.8 {
		t.Errorf("median idle period = %.2f min, want ≈2", med)
	}
	p75 := s.Quantile(0.75) / 60
	if p75 < 2.8 || p75 > 5.5 {
		t.Errorf("p75 idle period = %.2f min, want ≈4", p75)
	}
	mean := s.Mean() / 60
	if mean < 3.5 || mean > 6.5 {
		t.Errorf("mean idle period = %.2f min, want ≈5", mean)
	}
	tail := 1 - s.CDFAt(23*60)
	if tail < 0.025 || tail > 0.075 {
		t.Errorf("P(period > 23 min) = %.3f, want ≈0.05", tail)
	}
}

// TestFig1cSaturation checks the zero-idle share (10.11% in the paper)
// and that saturation stretches are bounded like the observed 93 min max.
func TestFig1cSaturation(t *testing.T) {
	share, longest := weekTrace.SaturationShare()
	if share < 0.06 || share > 0.16 {
		t.Errorf("zero-idle share = %.4f, want ≈0.10", share)
	}
	if longest > 2*time.Hour {
		t.Errorf("longest saturation = %v, want ≤ ~1.55h-ish", longest)
	}
	if longest < 5*time.Minute {
		t.Errorf("longest saturation = %v, implausibly short", longest)
	}
}

// TestFig1cBursts checks that short spikes of many idle nodes occur
// (Fig. 1c shows bursts of up to ~150).
func TestFig1cBursts(t *testing.T) {
	tw := weekTrace.IdleCount()
	p999 := tw.Quantile(0.999)
	if p999 < 30 {
		t.Errorf("p99.9 idle nodes = %.0f, want bursts well above the ~9 mean", p999)
	}
	if p999 > 400 {
		t.Errorf("p99.9 idle nodes = %.0f, implausibly high", p999)
	}
}

// TestIdleSurface checks the total idle surface: the paper reports over
// 37,000 core-hours on 24-core nodes ≈ 1,550 node-hours per week.
func TestIdleSurface(t *testing.T) {
	nodeHours := weekTrace.TotalIdle().Hours()
	if nodeHours < 1100 || nodeHours > 2300 {
		t.Errorf("idle surface = %.0f node-hours, want ≈1550", nodeHours)
	}
}

func TestDeclaredErrorModelApplied(t *testing.T) {
	var under, over, exact int
	for _, p := range weekTrace.Periods {
		switch {
		case p.DeclaredEnd < p.End:
			under++
		case p.DeclaredEnd > p.End:
			over++
		default:
			exact++
		}
	}
	total := float64(len(weekTrace.Periods))
	// Saturation truncation converts some "exact" periods into "over".
	if f := float64(under) / total; f < 0.08 || f > 0.30 {
		t.Errorf("underestimated fraction = %.3f, want ≈0.15", f)
	}
	if f := float64(over) / total; f < 0.08 || f > 0.35 {
		t.Errorf("overestimated fraction = %.3f, want ≈0.15+truncations", f)
	}
	if f := float64(exact) / total; f < 0.4 {
		t.Errorf("exact fraction = %.3f, want majority", f)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := DefaultIdleProcess(64, 6*time.Hour, 7).Generate()
	b := DefaultIdleProcess(64, 6*time.Hour, 7).Generate()
	if len(a.Periods) != len(b.Periods) {
		t.Fatalf("period counts differ: %d vs %d", len(a.Periods), len(b.Periods))
	}
	for i := range a.Periods {
		if a.Periods[i] != b.Periods[i] {
			t.Fatalf("period %d differs", i)
		}
	}
}

func TestWindowClipping(t *testing.T) {
	day := weekTrace.Window(24*time.Hour, 48*time.Hour)
	if day.Horizon != 24*time.Hour {
		t.Errorf("window horizon = %v", day.Horizon)
	}
	if err := day.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(day.Periods) == 0 {
		t.Fatal("empty day window")
	}
	for _, p := range day.Periods {
		if p.Start < 0 || p.End > day.Horizon {
			t.Fatalf("period [%v,%v) outside window", p.Start, p.End)
		}
	}
}

func TestWindowBadArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad window should panic")
		}
	}()
	weekTrace.Window(5*time.Hour, 5*time.Hour)
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr := DefaultIdleProcess(32, 2*time.Hour, 3).Generate()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nodes != tr.Nodes || len(back.Periods) != len(tr.Periods) {
		t.Fatalf("round trip mismatch: %d/%d periods", len(back.Periods), len(tr.Periods))
	}
	for i := range tr.Periods {
		a, b := tr.Periods[i], back.Periods[i]
		if a.Node != b.Node || !near(a.Start, b.Start) || !near(a.End, b.End) || !near(a.DeclaredEnd, b.DeclaredEnd) {
			t.Fatalf("period %d: %+v vs %+v", i, a, b)
		}
	}
}

func near(a, b time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= time.Millisecond
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty stream should error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("#garbage\n")); err == nil {
		t.Error("bad header should error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("#4,100\nnot,a,row\n")); err == nil {
		t.Error("bad row should error")
	}
}

// TestFig2Calibration checks the HPC job stream: median declared 60 min,
// ≤7% under 15 min, runtimes below limits, slack nonnegative.
func TestFig2Calibration(t *testing.T) {
	jobs := DefaultJobGen(74000, week, 5).Generate()
	limits, runtimes, slacks := JobCDFs(jobs)
	if med := limits.Median(); med != 60 {
		t.Errorf("median declared = %v min, want 60", med)
	}
	if f := limits.CDFAt(14.99); f > 0.07 {
		t.Errorf("declared < 15 min fraction = %.3f, want ≈0.05", f)
	}
	if runtimes.Median() >= limits.Median() {
		t.Errorf("median runtime %.1f should be below median limit", runtimes.Median())
	}
	if slacks.Min() < 0 {
		t.Errorf("negative slack %.2f", slacks.Min())
	}
	for i, j := range jobs {
		if j.Runtime > j.Declared {
			t.Fatalf("job %d runtime exceeds limit", i)
		}
		if j.Nodes < 1 {
			t.Fatalf("job %d has %d nodes", i, j.Nodes)
		}
	}
	// Submissions sorted.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit < jobs[i-1].Submit {
			t.Fatal("jobs not sorted by submit time")
		}
	}
}

func TestJobsCSVRoundTrip(t *testing.T) {
	jobs := DefaultJobGen(200, 24*time.Hour, 9).Generate()
	var buf bytes.Buffer
	if err := WriteJobsCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJobsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip count %d vs %d", len(back), len(jobs))
	}
	for i := range jobs {
		if back[i].ID != jobs[i].ID || back[i].Nodes != jobs[i].Nodes ||
			!near(back[i].Submit, jobs[i].Submit) || !near(back[i].Runtime, jobs[i].Runtime) {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, jobs[i], back[i])
		}
	}
}

// Property: any generated trace validates and clips cleanly to any
// half-day window.
func TestPropertyTraceAlwaysValid(t *testing.T) {
	f := func(seed int64, nodes uint8) bool {
		n := int(nodes%60) + 4
		tr := DefaultIdleProcess(n, 3*time.Hour, seed).Generate()
		if tr.Validate() != nil {
			return false
		}
		w := tr.Window(time.Hour, 2*time.Hour)
		return w.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: declared error model never yields negative windows.
func TestPropertyDeclaredNonNegative(t *testing.T) {
	for _, p := range weekTrace.Periods {
		if p.DeclaredEnd < p.Start {
			t.Fatalf("declared end %v before start %v", p.DeclaredEnd, p.Start)
		}
	}
}

func TestSmallClusterMeanScales(t *testing.T) {
	cfg := DefaultIdleProcess(200, 48*time.Hour, 11)
	cfg.MeanIdleNodes = 4
	tr := cfg.Generate()
	mean := tr.IdleCount().TimeMean()
	if math.Abs(mean-4) > 1.6 {
		t.Errorf("mean idle = %.2f, want ≈4", mean)
	}
}
