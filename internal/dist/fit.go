package dist

import (
	"fmt"
	"math"
)

// LognormalFromQuantiles fits a log-normal distribution from its
// median and one other quantile: the returned distribution has
// median(X) = median and P(X ≤ q) = p. This is how the paper-cited
// characterizations are usually stated (e.g. the Azure workload of
// [2]: "50% of functions complete within 3 s, 90% within 60 s"), so
// the calibrations can be written exactly in the paper's terms.
//
// It panics unless median > 0, q > 0, 0 < p < 1, p ≠ 0.5, and q is on
// the correct side of the median for p (q > median iff p > 0.5).
func LognormalFromQuantiles(median, q, p float64) Lognormal {
	if median <= 0 || q <= 0 || p <= 0 || p >= 1 || p == 0.5 {
		panic(fmt.Sprintf("dist: bad lognormal quantile spec median=%v q=%v p=%v", median, q, p))
	}
	if (q > median) != (p > 0.5) {
		panic(fmt.Sprintf("dist: quantile q=%v on wrong side of median=%v for p=%v", q, median, p))
	}
	sigma := math.Log(q/median) / probit(p)
	return Lognormal{Mu: math.Log(median), Sigma: sigma}
}

// probit is the standard normal quantile function Φ⁻¹(p).
func probit(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}
