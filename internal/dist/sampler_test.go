package dist

import (
	"math"
	"testing"
)

// TestSamplerMatchesDistBitForBit is the load-bearing property of the
// Sampler fast paths: for every shape (devirtualized or generic), a
// Sampler over a seeded stream must reproduce the exact draw sequence
// of Dist.Sample over an identically seeded stream. The request-path
// refactor swapped its call sites onto Samplers relying on this.
func TestSamplerMatchesDistBitForBit(t *testing.T) {
	dists := map[string]Dist{
		"constant":  Constant{Value: 3.25},
		"uniform":   Uniform{Lo: 0.010, Hi: 0.040},
		"lognormal": Lognormal{Mu: math.Log(0.62), Sigma: 0.30},
		"pareto":    Pareto{Xm: 2, Alpha: 1.65}, // generic fallback path
		"clamped":   Clamped{D: Lognormal{Mu: 1, Sigma: 2}, Min: 0.5, Max: 9},
	}
	for name, d := range dists {
		t.Run(name, func(t *testing.T) {
			ref := NewRand(42)
			s := NewSampler(d, NewRand(42))
			for i := 0; i < 10_000; i++ {
				want := d.Sample(ref)
				if got := s.Sample(); got != want {
					t.Fatalf("draw %d: sampler %v != dist %v", i, got, want)
				}
			}
		})
	}
}

func TestSamplerSecondsMatchesSeconds(t *testing.T) {
	d := Lognormal{Mu: -3, Sigma: 2} // occasionally tiny, conversion-sensitive
	ref := NewRand(7)
	s := NewSampler(d, NewRand(7))
	for i := 0; i < 10_000; i++ {
		want := Seconds(d, ref)
		if got := s.Seconds(); got != want {
			t.Fatalf("draw %d: sampler %v != Seconds %v", i, got, want)
		}
	}
}

func TestSamplerSecondsClampsNegative(t *testing.T) {
	s := NewSampler(Constant{Value: -1}, NewRand(1))
	if got := s.Seconds(); got != 0 {
		t.Errorf("negative sample should clamp to 0, got %v", got)
	}
}

func TestSamplerDistAccessor(t *testing.T) {
	d := Uniform{Lo: 1, Hi: 2}
	s := NewSampler(d, NewRand(1))
	if s.Dist() != d {
		t.Errorf("Dist() = %v, want %v", s.Dist(), d)
	}
}

// BenchmarkSampler* document why the request path caches Samplers: the
// devirtualized draw avoids the interface call per sample.
func BenchmarkSamplerUniform(b *testing.B) {
	b.ReportAllocs()
	s := NewSampler(Uniform{Lo: 0.01, Hi: 0.04}, NewRand(1))
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += s.Sample()
	}
	_ = acc
}

func BenchmarkDistUniform(b *testing.B) {
	b.ReportAllocs()
	var d Dist = Uniform{Lo: 0.01, Hi: 0.04}
	r := NewRand(1)
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += d.Sample(r)
	}
	_ = acc
}
