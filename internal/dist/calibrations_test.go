package dist

import (
	"math"
	"testing"
)

// TestWarmupCalibration checks the §IV-B registration-time model:
// median 12.48 s, p95 26.50 s.
func TestWarmupCalibration(t *testing.T) {
	r := NewRand(21)
	xs := sample(WarmupSeconds(), r, 100000)
	if med := quantile(xs, 0.5); med < 11.8 || med > 13.2 {
		t.Errorf("warm-up median = %.2f s, want ≈12.48", med)
	}
	if p95 := quantile(xs, 0.95); p95 < 25.0 || p95 > 28.0 {
		t.Errorf("warm-up p95 = %.2f s, want ≈26.50", p95)
	}
	for _, x := range xs {
		if x < 4 || x > 120 {
			t.Fatalf("warm-up sample %v outside physical range", x)
		}
	}
}

// TestQueryLatencyCalibration checks the §IV-A polling-latency model:
// a fixed 10 s gap must realize the reported 10.3-10.7 s spacing, so
// the mean latency has to land in 0.3-0.7 s.
func TestQueryLatencyCalibration(t *testing.T) {
	r := NewRand(22)
	xs := sample(QueryLatencySeconds(), r, 100000)
	if m := mean(xs); m < 0.3 || m > 0.7 {
		t.Errorf("query latency mean = %.3f s, want 0.3-0.7 (10.3-10.7 s spacing)", m)
	}
	for _, x := range xs {
		if x <= 0 || x > 5 {
			t.Fatalf("query latency %v out of range", x)
		}
	}
}

// TestDeclaredWalltimeCalibration checks the Fig. 2 declared-limit
// markers: median exactly 60 min, ~3-5% under 15 min, p5 ≤ 15 min.
func TestDeclaredWalltimeCalibration(t *testing.T) {
	r := NewRand(23)
	xs := sample(DeclaredWalltimeSeconds(), r, 100000)
	if med := quantile(xs, 0.5); med != 3600 {
		t.Errorf("median declared = %v s, want exactly 3600", med)
	}
	under15 := 0
	for _, x := range xs {
		if x < 15*60 {
			under15++
		}
		if mins := x / 60; mins != math.Trunc(mins) {
			t.Fatalf("declared limit %v s is not a whole minute", x)
		}
	}
	if f := float64(under15) / float64(len(xs)); f < 0.01 || f > 0.07 {
		t.Errorf("P(declared < 15 min) = %.4f, want ≈0.03-0.05", f)
	}
	if p5 := quantile(xs, 0.05); p5 > 15*60 {
		t.Errorf("p5 declared = %v s, want ≤ 900", p5)
	}
}

// TestRuntimeFractionCalibration checks the Fig. 2 runtime/limit
// model: fractions in (0,1], a visible atom at exactly 1 (jobs cut off
// at their limit), and a median well below 1.
func TestRuntimeFractionCalibration(t *testing.T) {
	r := NewRand(24)
	xs := sample(RuntimeFraction(), r, 100000)
	atOne := 0
	for _, x := range xs {
		if x <= 0 || x > 1 {
			t.Fatalf("runtime fraction %v outside (0,1]", x)
		}
		if x == 1 {
			atOne++
		}
	}
	// 0.08 explicit atom plus the ≈0.07 of lognormal mass the clamp
	// censors onto 1 — both model jobs cut off at their limit.
	if f := float64(atOne) / float64(len(xs)); f < 0.10 || f > 0.20 {
		t.Errorf("P(fraction = 1) = %.4f, want ≈0.15", f)
	}
	if med := quantile(xs, 0.5); med < 0.2 || med > 0.45 {
		t.Errorf("median fraction = %.3f, want ≈0.30", med)
	}
}

// TestIdlePeriodRegimeContrast checks the §I regime design: contended
// periods are short with a thin tail, calm periods are longer with the
// heavy Pareto tail that carries the aggregate's 5% > 23 min.
func TestIdlePeriodRegimeContrast(t *testing.T) {
	r := NewRand(25)
	cont := sample(ContendedIdlePeriodSeconds(), r, 100000)
	calm := sample(CalmIdlePeriodSeconds(), r, 100000)

	tailShare := func(xs []float64, cut float64) float64 {
		n := 0
		for _, x := range xs {
			if x > cut {
				n++
			}
		}
		return float64(n) / float64(len(xs))
	}
	if ct := tailShare(cont, 23*60); ct > 0.02 {
		t.Errorf("contended P(>23min) = %.4f, want ≈0", ct)
	}
	if ct := tailShare(calm, 23*60); ct < 0.08 || ct > 0.25 {
		t.Errorf("calm P(>23min) = %.4f, want the fat tail (≈0.1-0.2)", ct)
	}
	if mean(calm) < 2*mean(cont) {
		t.Errorf("calm mean %.1f s should be well above contended mean %.1f s",
			mean(calm), mean(cont))
	}
	// Heavier tail weight ⇒ strictly heavier tail, same alpha.
	heavy := sample(CalmIdlePeriodTail(0.5, 1.55), NewRand(26), 100000)
	if tailShare(heavy, 23*60) <= tailShare(calm, 23*60) {
		t.Error("raising the tail weight did not raise the tail")
	}
}

// TestSaturationPeriodCalibration checks saturation-window lengths:
// minutes-scale, bounded near the observed 93-minute maximum.
func TestSaturationPeriodCalibration(t *testing.T) {
	r := NewRand(27)
	xs := sample(SaturationPeriodSeconds(), r, 100000)
	for _, x := range xs {
		if x < 60 || x > 3600 {
			t.Fatalf("saturation window %v s out of range", x)
		}
	}
	if med := quantile(xs, 0.5); med < 5*60 || med > 10*60 {
		t.Errorf("median saturation = %.0f s, want minutes-scale", med)
	}
}

// TestGoldenSamples pins the first draws of every calibration
// constructor under a fixed seed. A diff here means the calibration
// (or the RNG plumbing) changed and every downstream table and figure
// shifted with it — update the goldens only when that is intentional.
func TestGoldenSamples(t *testing.T) {
	cases := []struct {
		name string
		d    Dist
		want [4]float64
	}{
		{"warmup", WarmupSeconds(), [4]float64{11.548488521724336, 10.00035927166669, 4.6485928332613131, 16.953397621367813}},
		{"query-latency", QueryLatencySeconds(), [4]float64{0.38916520344940059, 0.33782343315685909, 0.15909831830957172, 0.56757609108443752}},
		{"declared-walltime", DeclaredWalltimeSeconds(), [4]float64{43200, 7200, 3600, 1800}},
		{"runtime-fraction", RuntimeFraction(), [4]float64{0.19884232359454562, 0.52983461210499994, 1, 0.16241349883997089}},
		{"contended-period", ContendedIdlePeriodSeconds(), [4]float64{82.294732861068113, 57.325505794018419, 15, 215.87496120251663}},
		{"calm-period", CalmIdlePeriodSeconds(), [4]float64{1518.8372686660205, 237.40669213259454, 1382.5298409213169, 2080.4498769332772}},
		{"saturation-period", SaturationPeriodSeconds(), [4]float64{376.19766489290629, 306.664368616628, 103.34632916738636, 648.85286566656453}},
	}
	for _, tc := range cases {
		r := NewRand(1)
		for i, want := range tc.want {
			got := tc.d.Sample(r)
			if got != want {
				t.Errorf("%s draw %d = %.17g, golden %.17g", tc.name, i, got, want)
			}
		}
	}
}
