package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// sample draws n values from d into a sorted-on-demand slice.
func sample(d Dist, r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}

func quantile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestConstant(t *testing.T) {
	r := NewRand(1)
	d := Constant{Value: 3.25}
	for i := 0; i < 10; i++ {
		if v := d.Sample(r); v != 3.25 {
			t.Fatalf("constant sampled %v", v)
		}
	}
}

func TestUniformBoundsAndMean(t *testing.T) {
	r := NewRand(2)
	d := Uniform{Lo: 2, Hi: 6}
	xs := sample(d, r, 20000)
	for _, x := range xs {
		if x < 2 || x >= 6 {
			t.Fatalf("uniform sample %v outside [2,6)", x)
		}
	}
	if m := mean(xs); m < 3.9 || m > 4.1 {
		t.Errorf("uniform mean = %.3f, want ≈4", m)
	}
}

// TestLognormalClosedFormQuantiles checks sampled quantiles against the
// closed form exp(Mu + Sigma·probit(p)).
func TestLognormalClosedFormQuantiles(t *testing.T) {
	r := NewRand(3)
	d := Lognormal{Mu: math.Log(10), Sigma: 0.5}
	xs := sample(d, r, 200000)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95} {
		want := math.Exp(d.Mu + d.Sigma*probit(p))
		got := quantile(xs, p)
		if rel := math.Abs(got-want) / want; rel > 0.03 {
			t.Errorf("lognormal q%.2f = %.3f, closed form %.3f (rel err %.3f)", p, got, want, rel)
		}
	}
}

// TestParetoClosedFormTail checks the survival function against
// (Xm/x)^Alpha.
func TestParetoClosedFormTail(t *testing.T) {
	r := NewRand(4)
	d := Pareto{Xm: 100, Alpha: 1.5}
	xs := sample(d, r, 200000)
	for _, x := range []float64{150, 300, 1000} {
		want := math.Pow(d.Xm/x, d.Alpha)
		over := 0
		for _, v := range xs {
			if v < d.Xm {
				t.Fatalf("pareto sample %v below Xm", v)
			}
			if v > x {
				over++
			}
		}
		got := float64(over) / float64(len(xs))
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(X>%v) = %.4f, closed form %.4f", x, got, want)
		}
	}
}

// TestClampedQuantiles is the table-driven check that clamping censors
// exactly the out-of-range quantiles of the base distribution and
// leaves interior quantiles untouched.
func TestClampedQuantiles(t *testing.T) {
	base := Lognormal{Mu: math.Log(10), Sigma: 1}
	cases := []struct {
		name     string
		d        Clamped
		p        float64
		want     float64 // closed-form quantile of the clamped dist
		interior bool
	}{
		{"floor-hit", Clamped{D: base, Min: 5, Max: 1e9}, 0.05, 5, false},
		{"ceiling-hit", Clamped{D: base, Min: 0, Max: 20}, 0.95, 20, false},
		{"median-untouched", Clamped{D: base, Min: 5, Max: 20}, 0.5, 10, true},
		{"p75-untouched", Clamped{D: base, Min: 5, Max: 40}, 0.75, math.Exp(math.Log(10) + probit(0.75)), true},
		{"tight-floor", Clamped{D: base, Min: 9, Max: 11}, 0.25, 9, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRand(5)
			xs := sample(tc.d, r, 100000)
			got := quantile(xs, tc.p)
			tol := 0.04 * tc.want
			if !tc.interior {
				tol = 1e-12 // censored mass sits exactly on the bound
			}
			if math.Abs(got-tc.want) > tol {
				t.Errorf("q%.2f = %v, want %v", tc.p, got, tc.want)
			}
			for _, x := range xs {
				if x < tc.d.Min || x > tc.d.Max {
					t.Fatalf("sample %v escaped [%v,%v]", x, tc.d.Min, tc.d.Max)
				}
			}
		})
	}
}

// TestLognormalFromQuantiles is the table-driven fit check: the fitted
// distribution must reproduce both input quantiles in closed form and
// empirically.
func TestLognormalFromQuantiles(t *testing.T) {
	cases := []struct {
		median, q, p float64
	}{
		{3.0, 60.0, 0.90},   // Azure exec times (§ faasload)
		{12.48, 26.5, 0.95}, // §IV-B warm-up
		{10, 2, 0.10},       // lower-tail spec
		{1, 8, 0.99},
	}
	for _, tc := range cases {
		d := LognormalFromQuantiles(tc.median, tc.q, tc.p)
		if got := math.Exp(d.Mu); math.Abs(got-tc.median)/tc.median > 1e-12 {
			t.Errorf("median(%v,%v,%v) = %v", tc.median, tc.q, tc.p, got)
		}
		if got := math.Exp(d.Mu + d.Sigma*probit(tc.p)); math.Abs(got-tc.q)/tc.q > 1e-9 {
			t.Errorf("q_p(%v,%v,%v) = %v, want %v", tc.median, tc.q, tc.p, got, tc.q)
		}
		if d.Sigma <= 0 {
			t.Errorf("fit(%v,%v,%v) sigma = %v, want > 0", tc.median, tc.q, tc.p, d.Sigma)
		}
		r := NewRand(6)
		xs := sample(d, r, 100000)
		if got := quantile(xs, 0.5); math.Abs(got-tc.median)/tc.median > 0.05 {
			t.Errorf("empirical median = %v, want %v", got, tc.median)
		}
		if got := quantile(xs, tc.p); math.Abs(got-tc.q)/tc.q > 0.08 {
			t.Errorf("empirical q%.2f = %v, want %v", tc.p, got, tc.q)
		}
	}
}

func TestLognormalFromQuantilesPanics(t *testing.T) {
	cases := []struct {
		name         string
		median, q, p float64
	}{
		{"zero-median", 0, 10, 0.9},
		{"zero-q", 5, 0, 0.9},
		{"p-zero", 5, 10, 0},
		{"p-one", 5, 10, 1},
		{"p-half", 5, 10, 0.5},
		{"wrong-side", 5, 10, 0.1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			LognormalFromQuantiles(tc.median, tc.q, tc.p)
		})
	}
}

// TestDiscreteWeightConvergence checks empirical frequencies against
// the normalized weights.
func TestDiscreteWeightConvergence(t *testing.T) {
	d := NewDiscrete([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	r := NewRand(7)
	counts := map[float64]int{}
	n := 200000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.3, 0.4} {
		got := float64(counts[float64(i+1)]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("value %d frequency = %.4f, want %.1f", i+1, got, want)
		}
	}
	if d.Len() != 4 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDiscretePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":      func() { NewDiscrete(nil, nil) },
		"mismatched": func() { NewDiscrete([]float64{1}, []float64{1, 2}) },
		"negative":   func() { NewDiscrete([]float64{1}, []float64{-1}) },
		"zero-sum":   func() { NewDiscrete([]float64{1, 2}, []float64{0, 0}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		})
	}
}

// TestMixtureWeightConvergence checks that component selection
// converges to the normalized weights (distinguishable supports).
func TestMixtureWeightConvergence(t *testing.T) {
	m := NewMixture(
		Weighted{W: 3, D: Constant{Value: 1}},
		Weighted{W: 1, D: Constant{Value: 2}},
	)
	r := NewRand(8)
	n := 100000
	ones := 0
	for i := 0; i < n; i++ {
		if m.Sample(r) == 1 {
			ones++
		}
	}
	if got := float64(ones) / float64(n); math.Abs(got-0.75) > 0.01 {
		t.Errorf("component-1 frequency = %.4f, want 0.75", got)
	}
}

func TestMixturePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { NewMixture() },
		"nil-dist": func() { NewMixture(Weighted{W: 1, D: nil}) },
		"negative": func() { NewMixture(Weighted{W: -1, D: Constant{Value: 1}}) },
		"zero-sum": func() { NewMixture(Weighted{W: 0, D: Constant{Value: 1}}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		})
	}
}

func TestSecondsClampsNegative(t *testing.T) {
	r := NewRand(9)
	if d := Seconds(Constant{Value: -3}, r); d != 0 {
		t.Errorf("negative draw gave %v", d)
	}
	if d := Seconds(Constant{Value: 1.5}, r); d != 1500*time.Millisecond {
		t.Errorf("1.5s draw gave %v", d)
	}
}

// TestNewRandDeterministic: identical seeds give identical streams,
// different seeds give different ones.
func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c, d := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Int63() == d.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different-seed streams collided %d/100 times", same)
	}
}

// TestSplitDeterministicAndStable: splitting is reproducible, consumes
// exactly one parent draw, and child streams do not depend on how many
// siblings are split afterwards.
func TestSplitDeterministicAndStable(t *testing.T) {
	r1 := NewRand(11)
	c1 := Split(r1)
	seq1 := make([]int64, 5)
	for i := range seq1 {
		seq1[i] = c1.Int63()
	}

	// Same seed, but split three children: the first child must be
	// identical — later splits cannot perturb it.
	r2 := NewRand(11)
	c2 := Split(r2)
	_, _ = Split(r2), Split(r2)
	for i := range seq1 {
		if got := c2.Int63(); got != seq1[i] {
			t.Fatalf("first child draw %d changed when siblings were added: %d vs %d", i, got, seq1[i])
		}
	}

	// Split consumes exactly one parent draw.
	a, b := NewRand(12), NewRand(12)
	_ = Split(a)
	_ = b.Int63()
	if a.Int63() != b.Int63() {
		t.Error("split consumed more than one parent draw")
	}
}

// TestSplitIndependence: sibling streams are decorrelated — the
// empirical correlation of paired uniform draws is near zero, and
// siblings never emit identical prefixes.
func TestSplitIndependence(t *testing.T) {
	root := NewRand(13)
	a, b := Split(root), Split(root)
	n := 50000
	var sx, sy, sxy, sxx, syy float64
	identical := true
	for i := 0; i < n; i++ {
		x, y := a.Float64(), b.Float64()
		if x != y {
			identical = false
		}
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
		syy += y * y
	}
	if identical {
		t.Fatal("sibling streams identical")
	}
	fn := float64(n)
	cov := sxy/fn - (sx/fn)*(sy/fn)
	vx := sxx/fn - (sx/fn)*(sx/fn)
	vy := syy/fn - (sy/fn)*(sy/fn)
	if corr := cov / math.Sqrt(vx*vy); math.Abs(corr) > 0.02 {
		t.Errorf("sibling correlation = %.4f, want ≈0", corr)
	}
}
