package dist

import "math/rand"

// NewRand returns a deterministic RNG for a seed. All simulation
// randomness flows through streams created here (or forked with
// Split), never through the global math/rand source, so a run is a
// pure function of its seeds.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(mix64(uint64(seed))))
}

// Split forks a statistically independent child stream off a parent.
//
// The child seed is drawn from the parent and passed through a
// splitmix64 finalizer, so (a) consecutive children of one root are
// decorrelated even though math/rand seeds with similar values produce
// correlated low bits, and (b) the fork consumes exactly one draw from
// the parent — components that split all their streams up front (as
// the workload generators do) therefore keep every stream's sequence
// stable when unrelated code adds or removes draws elsewhere.
func Split(root *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(mix64(uint64(root.Int63()))))
}

// mix64 is the splitmix64 finalizer (Steele et al., "Fast Splittable
// Pseudorandom Number Generators"), truncated to the non-negative
// int63 range math/rand sources expect.
func mix64(z uint64) int64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & 0x7fffffffffffffff)
}
