package dist

import "math"

// This file holds every calibration the reproduction takes from the
// paper, expressed as distribution constructors. Downstream packages
// (workload, core, whisk, faasload) never hard-code paper numbers —
// they call these. Each constructor's comment cites the section it
// reproduces; the realized aggregates are asserted by the workload and
// experiments test suites.

// WarmupSeconds models the invoker boot-to-healthy time of §IV-B:
// median 12.48 s, p95 26.50 s over 5,522 observed registrations. A
// log-normal through those two quantiles fits the reported shape; the
// clamp only removes physically impossible sub-second boots and the
// far tail beyond anything the paper observed.
func WarmupSeconds() Dist {
	return Clamped{D: LognormalFromQuantiles(12.48, 26.50, 0.95), Min: 4, Max: 120}
}

// QueryLatencySeconds models one Slurm status query of the §IV-A
// monitoring methodology. The logger sleeps a fixed 10 s between a
// response and the next request, and the paper reports 10.32-10.72 s
// average spacing — i.e. a query latency averaging ≈0.3-0.7 s with
// occasional slow responses under scheduler load.
func QueryLatencySeconds() Dist {
	return Clamped{D: Lognormal{Mu: math.Log(0.42), Sigma: 0.45}, Min: 0.05, Max: 5}
}

// DeclaredWalltimeSeconds models the user-declared walltime limits of
// Fig. 2: limits are round values users type into sbatch, so the
// distribution is discrete over common choices. The weights realize
// the paper's markers — median exactly 60 min, only ~3-5% under
// 15 min, and a long declared tail out to multi-day limits.
func DeclaredWalltimeSeconds() Dist {
	minutes := []float64{5, 10, 15, 20, 30, 45, 60, 120, 180, 360, 720, 1440, 2880}
	weights := []float64{1, 2, 5, 6, 10, 8, 25, 14, 9, 8, 6, 4, 2}
	values := make([]float64, len(minutes))
	for i, m := range minutes {
		values[i] = m * 60
	}
	return NewDiscrete(values, weights)
}

// RuntimeFraction models runtime/limit for the Fig. 2 job population:
// most jobs finish well under their declared limit (the wide gap
// between the blue and orange CDFs), while a minority run into the
// limit and are cut off exactly at it (fraction 1).
func RuntimeFraction() Dist {
	return NewMixture(
		Weighted{W: 0.08, D: Constant{Value: 1}},
		Weighted{W: 0.92, D: Clamped{D: Lognormal{Mu: math.Log(0.30), Sigma: 0.85}, Min: 0.02, Max: 1}},
	)
}

// ContendedIdlePeriodSeconds models idle-period lengths during
// contended stretches (§I, Fig. 1b): demand is high, so no long gap
// survives — a log-normal around ~1.7 min whose tail the regime's
// frequent reclaims would cut anyway (the clamp mirrors that).
func ContendedIdlePeriodSeconds() Dist {
	return Clamped{D: Lognormal{Mu: math.Log(100), Sigma: 1.15}, Min: 15, Max: 1500}
}

// CalmIdlePeriodSeconds models idle-period lengths during calm
// stretches with the default tail weight. The §I aggregate — median
// ≈2 min yet ~5% of periods above 23 min — needs a regime whose
// period distribution is genuinely fat-tailed; this is it.
func CalmIdlePeriodSeconds() Dist { return CalmIdlePeriodTail(0.32, 1.55) }

// CalmIdlePeriodTail is the calm-regime period distribution with an
// explicit tail: with probability p a period comes from a Pareto tail
// with shape alpha (heavier for smaller alpha), otherwise from the
// log-normal body. The per-day experiment configs (§V-B) tune p and
// alpha to the measured character of their day.
func CalmIdlePeriodTail(p, alpha float64) Dist {
	body := Clamped{D: Lognormal{Mu: math.Log(130), Sigma: 0.9}, Min: 20, Max: 2400}
	tail := Clamped{D: Pareto{Xm: 800, Alpha: alpha}, Min: 800, Max: 4800}
	return NewMixture(
		Weighted{W: 1 - p, D: body},
		Weighted{W: p, D: tail},
	)
}

// SaturationPeriodSeconds models the lengths of whole-cluster
// saturation windows (zero idle nodes anywhere, 10.11% of the time in
// §I; Fig. 1c shows stretches up to ~93 min). The clamp keeps the
// longest windows in the observed range.
func SaturationPeriodSeconds() Dist {
	return Clamped{D: Lognormal{Mu: math.Log(420), Sigma: 0.65}, Min: 60, Max: 3600}
}
