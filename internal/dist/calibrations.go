package dist

import "math"

// This file holds every calibration the reproduction takes from the
// paper, expressed as distribution constructors. Downstream packages
// (workload, core, whisk, faasload) never hard-code paper numbers —
// they call these. Each constructor's comment cites the section it
// reproduces; the realized aggregates are asserted by the workload and
// experiments test suites.

// WarmupSeconds models the invoker boot-to-healthy time of §IV-B:
// median 12.48 s, p95 26.50 s over 5,522 observed registrations. A
// log-normal through those two quantiles fits the reported shape; the
// clamp only removes physically impossible sub-second boots and the
// far tail beyond anything the paper observed.
func WarmupSeconds() Dist {
	return Clamped{D: LognormalFromQuantiles(12.48, 26.50, 0.95), Min: 4, Max: 120}
}

// QueryLatencySeconds models one Slurm status query of the §IV-A
// monitoring methodology. The logger sleeps a fixed 10 s between a
// response and the next request, and the paper reports 10.32-10.72 s
// average spacing — i.e. a query latency averaging ≈0.3-0.7 s with
// occasional slow responses under scheduler load.
func QueryLatencySeconds() Dist {
	return Clamped{D: Lognormal{Mu: math.Log(0.42), Sigma: 0.45}, Min: 0.05, Max: 5}
}

// DeclaredWalltimeSeconds models the user-declared walltime limits of
// Fig. 2: limits are round values users type into sbatch, so the
// distribution is discrete over common choices. The weights realize
// the paper's markers — median exactly 60 min, only ~3-5% under
// 15 min, and a long declared tail out to multi-day limits.
func DeclaredWalltimeSeconds() Dist {
	minutes := []float64{5, 10, 15, 20, 30, 45, 60, 120, 180, 360, 720, 1440, 2880}
	weights := []float64{1, 2, 5, 6, 10, 8, 25, 14, 9, 8, 6, 4, 2}
	values := make([]float64, len(minutes))
	for i, m := range minutes {
		values[i] = m * 60
	}
	return NewDiscrete(values, weights)
}

// RuntimeFraction models runtime/limit for the Fig. 2 job population:
// most jobs finish well under their declared limit (the wide gap
// between the blue and orange CDFs), while a minority run into the
// limit and are cut off exactly at it (fraction 1).
func RuntimeFraction() Dist {
	return NewMixture(
		Weighted{W: 0.08, D: Constant{Value: 1}},
		Weighted{W: 0.92, D: Clamped{D: Lognormal{Mu: math.Log(0.30), Sigma: 0.85}, Min: 0.02, Max: 1}},
	)
}

// ContendedIdlePeriodSeconds models idle-period lengths during
// contended stretches (§I, Fig. 1b): demand is high, so no long gap
// survives — a log-normal around ~1.7 min whose tail the regime's
// frequent reclaims would cut anyway (the clamp mirrors that).
func ContendedIdlePeriodSeconds() Dist {
	return Clamped{D: Lognormal{Mu: math.Log(100), Sigma: 1.15}, Min: 15, Max: 1500}
}

// CalmIdlePeriodSeconds models idle-period lengths during calm
// stretches with the default tail weight. The §I aggregate — median
// ≈2 min yet ~5% of periods above 23 min — needs a regime whose
// period distribution is genuinely fat-tailed; this is it.
func CalmIdlePeriodSeconds() Dist { return CalmIdlePeriodTail(0.32, 1.55) }

// CalmIdlePeriodTail is the calm-regime period distribution with an
// explicit tail: with probability p a period comes from a Pareto tail
// with shape alpha (heavier for smaller alpha), otherwise from the
// log-normal body. The per-day experiment configs (§V-B) tune p and
// alpha to the measured character of their day.
func CalmIdlePeriodTail(p, alpha float64) Dist {
	body := Clamped{D: Lognormal{Mu: math.Log(130), Sigma: 0.9}, Min: 20, Max: 2400}
	tail := Clamped{D: Pareto{Xm: 800, Alpha: alpha}, Min: 800, Max: 4800}
	return NewMixture(
		Weighted{W: 1 - p, D: body},
		Weighted{W: p, D: tail},
	)
}

// SaturationPeriodSeconds models the lengths of whole-cluster
// saturation windows (zero idle nodes anywhere, 10.11% of the time in
// §I; Fig. 1c shows stretches up to ~93 min). The clamp keeps the
// longest windows in the observed range.
func SaturationPeriodSeconds() Dist {
	return Clamped{D: Lognormal{Mu: math.Log(420), Sigma: 0.65}, Min: 60, Max: 3600}
}

// Checkpoint/restore calibrations: the fast lane of §III-C rescues
// queued requests on SIGTERM, but a running execution longer than the
// 3-minute grace window is lost. The checkpoint subsystem (Limitless
// FaaS-style periodic memory checkpoints with invoke-driven
// resumption; rFaaS's lease framing motivates charging restore as a
// first-class latency) draws its parameters here so downstream code
// stays free of magic numbers and goldens stay deterministic.

// CheckpointIntervalSeconds models the gap between successive memory
// checkpoints of one execution. CRIU-class incremental dumps amortize
// well around once a minute: frequent enough that at most ~1 min of
// work is ever lost to a reclaim (well under the 3-minute SIGTERM
// grace of §III-B), rare enough that the dump pause stays a <2%
// overhead for the §VII scientific functions. Jitter decorrelates the
// checkpoint clocks of co-resident executions.
func CheckpointIntervalSeconds() Dist {
	return Clamped{D: Lognormal{Mu: math.Log(60), Sigma: 0.25}, Min: 30, Max: 180}
}

// CheckpointCostSeconds models the stop-the-world pause of one
// checkpoint dump: page-table walk plus dirty-page writeout, sub-second
// for the common working sets with a tail for large-memory functions.
func CheckpointCostSeconds() Dist {
	return Clamped{D: Lognormal{Mu: math.Log(0.6), Sigma: 0.5}, Min: 0.1, Max: 5}
}

// CheckpointStateMB models the serialized state size of one checkpoint
// (the bytes a resume must transfer before work continues). Function
// working sets cluster well under their container memory limits:
// median ≈192 MB with a tail toward the multi-GB scientific kernels.
func CheckpointStateMB() Dist {
	return Clamped{D: Lognormal{Mu: math.Log(192), Sigma: 0.8}, Min: 16, Max: 4096}
}

// RestoreBandwidthMBps models the effective transfer bandwidth when a
// resuming pilot pulls checkpoint state from the shared parallel file
// system — nominal link speed eroded by contention with prime I/O.
func RestoreBandwidthMBps() Dist {
	return Clamped{D: Lognormal{Mu: math.Log(350), Sigma: 0.4}, Min: 80, Max: 1200}
}

// RestoreOverheadSeconds models the fixed cost of reconstructing a
// process from its checkpoint image once the state is local (CRIU
// restore: namespace and page-map reconstruction), independent of
// state size.
func RestoreOverheadSeconds() Dist {
	return Clamped{D: Lognormal{Mu: math.Log(1.2), Sigma: 0.4}, Min: 0.3, Max: 8}
}
