// Package dist is the stochastic substrate of the HPC-Whisk
// reproduction: a small algebra of one-dimensional distributions plus
// the seeded-RNG plumbing that keeps every simulation bit-for-bit
// reproducible.
//
// Every latency, duration, and size in the emulation is drawn through
// the Dist interface, so the paper's calibrations live in one place
// (calibrations.go) and the simulation code stays free of magic
// numbers. The calibration constructors map to the paper
// (Przybylski et al., "Using Unused: Non-Invasive Dynamic FaaS
// Infrastructure with HPC-Whisk", SC22) as follows:
//
//   - ContendedIdlePeriodSeconds, CalmIdlePeriodSeconds,
//     CalmIdlePeriodTail, SaturationPeriodSeconds — the §I / Fig. 1
//     idle-surface analysis of the Prometheus cluster (mean 9.23 idle
//     nodes, 2-minute median idle periods with ~5% above 23 minutes,
//     10.11% of time with zero idle nodes).
//   - DeclaredWalltimeSeconds, RuntimeFraction — the §I / Fig. 2 job
//     statistics (74k jobs/week, median declared walltime 60 min, only
//     ~5% declaring under 15 min, runtimes well below their limits).
//   - WarmupSeconds — the §IV-B invoker boot-to-healthy time (median
//     12.48 s, p95 26.50 s).
//   - QueryLatencySeconds — the §IV-A Slurm polling latency (a fixed
//     10 s think time realizes the reported 10.3-10.7 s spacing).
//
// Determinism: streams come from NewRand and are forked with Split,
// which derives statistically independent child streams from a parent.
// Components that need several independent streams (e.g. the idle
// process: arrivals, period lengths, regimes, ...) split them all off
// one root up front, so adding draws to one stream never perturbs the
// others and seeded runs stay reproducible bit-for-bit.
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Dist is a one-dimensional distribution sampled with an explicit RNG
// (no global state — determinism is the point).
type Dist interface {
	// Sample draws one value using r as the randomness source.
	Sample(r *rand.Rand) float64
}

// Seconds draws from d and converts the value to a time.Duration,
// treating the sample as seconds. Negative draws clamp to zero so the
// result is always safe to pass to des.Sim.After.
func Seconds(d Dist, r *rand.Rand) time.Duration {
	s := d.Sample(r)
	if s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// Constant is a degenerate distribution: every sample equals Value.
type Constant struct {
	Value float64
}

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) float64 { return c.Value }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) float64 {
	return u.Lo + r.Float64()*(u.Hi-u.Lo)
}

// Lognormal is the log-normal distribution: exp(N(Mu, Sigma²)).
// Its median is exp(Mu) and its p-quantile exp(Mu + Sigma·probit(p)).
type Lognormal struct {
	Mu, Sigma float64
}

// Sample implements Dist.
func (l Lognormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Pareto is the type-I Pareto distribution with scale Xm (the minimum)
// and shape Alpha: P(X > x) = (Xm/x)^Alpha for x ≥ Xm. It models the
// fat tails of the calm-regime idle periods (§I).
type Pareto struct {
	Xm, Alpha float64
}

// Sample implements Dist (inverse-CDF on a (0,1] uniform so the draw
// is always finite).
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := 1 - r.Float64() // (0, 1]
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Clamped restricts another distribution to [Min, Max] by projecting
// out-of-range samples onto the nearest bound (censoring, not
// rejection — one draw per sample keeps streams aligned).
type Clamped struct {
	D        Dist
	Min, Max float64
}

// Sample implements Dist.
func (c Clamped) Sample(r *rand.Rand) float64 {
	v := c.D.Sample(r)
	if v < c.Min {
		return c.Min
	}
	if v > c.Max {
		return c.Max
	}
	return v
}

// Discrete is a finite distribution over explicit values. Zero value
// is not usable; build one with NewDiscrete.
type Discrete struct {
	values []float64
	cum    []float64 // cumulative weights, cum[len-1] == total
}

// NewDiscrete builds a discrete distribution drawing values[i] with
// probability weights[i]/sum(weights). It panics on mismatched or
// empty inputs, negative weights, or an all-zero weight vector.
func NewDiscrete(values, weights []float64) *Discrete {
	if len(values) == 0 || len(values) != len(weights) {
		panic(fmt.Sprintf("dist: discrete needs matching non-empty values/weights, got %d/%d",
			len(values), len(weights)))
	}
	d := &Discrete{
		values: append([]float64(nil), values...),
		cum:    make([]float64, len(weights)),
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("dist: negative discrete weight %v at %d", w, i))
		}
		total += w
		d.cum[i] = total
	}
	if total <= 0 {
		panic("dist: discrete weights sum to zero")
	}
	return d
}

// Sample implements Dist.
func (d *Discrete) Sample(r *rand.Rand) float64 {
	u := r.Float64() * d.cum[len(d.cum)-1]
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.values) { // u == total, probability ~0 edge
		i = len(d.values) - 1
	}
	return d.values[i]
}

// Len returns the number of support points.
func (d *Discrete) Len() int { return len(d.values) }

// Weighted pairs a mixture component with its (unnormalized) weight.
type Weighted struct {
	W float64
	D Dist
}

// Mixture draws from one of several component distributions with
// probability proportional to its weight. Build with NewMixture.
type Mixture struct {
	parts []Weighted
	total float64
}

// NewMixture builds a mixture distribution. Weights need not sum to 1;
// they are normalized. It panics on empty input, a nil component, a
// negative weight, or an all-zero weight vector.
func NewMixture(parts ...Weighted) *Mixture {
	if len(parts) == 0 {
		panic("dist: empty mixture")
	}
	m := &Mixture{parts: append([]Weighted(nil), parts...)}
	for i, p := range m.parts {
		if p.D == nil {
			panic(fmt.Sprintf("dist: nil mixture component at %d", i))
		}
		if p.W < 0 || math.IsNaN(p.W) {
			panic(fmt.Sprintf("dist: negative mixture weight %v at %d", p.W, i))
		}
		m.total += p.W
	}
	if m.total <= 0 {
		panic("dist: mixture weights sum to zero")
	}
	return m
}

// Sample implements Dist. It always consumes exactly one uniform for
// the component choice plus the chosen component's draws, keeping
// streams aligned across runs.
func (m *Mixture) Sample(r *rand.Rand) float64 {
	u := r.Float64() * m.total
	acc := 0.0
	for i, p := range m.parts {
		acc += p.W
		if u < acc || i == len(m.parts)-1 {
			return p.D.Sample(r)
		}
	}
	panic("unreachable")
}
