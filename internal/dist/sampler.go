package dist

import (
	"math"
	"math/rand"
	"time"
)

// samplerKind selects the devirtualized fast path of a Sampler.
type samplerKind uint8

const (
	kindGeneric samplerKind = iota
	kindConstant
	kindUniform
	kindLognormal
)

// Sampler binds a distribution to a random stream once, so hot paths
// draw without passing (Dist, *rand.Rand) pairs around or re-reading
// interface-typed config fields per draw. For the shapes that dominate
// the request path (Uniform, Lognormal, Constant) the constructor
// unpacks the concrete parameters and Sample runs them inline, skipping
// the interface dispatch; every other shape falls back to the Dist
// method. The draws are bit-identical to d.Sample(r) in either case —
// the fast paths are verbatim copies of the Sample bodies — so swapping
// a call site onto a Sampler never perturbs a seeded stream.
//
// The zero Sampler is not usable; build one with NewSampler. A Sampler
// is a value: copy it freely, but all copies share the underlying
// stream.
type Sampler struct {
	r    *rand.Rand
	d    Dist
	u    Uniform
	l    Lognormal
	c    float64
	kind samplerKind
}

// NewSampler binds d to the stream r.
func NewSampler(d Dist, r *rand.Rand) Sampler {
	s := Sampler{r: r, d: d}
	switch v := d.(type) {
	case Constant:
		s.kind = kindConstant
		s.c = v.Value
	case Uniform:
		s.kind = kindUniform
		s.u = v
	case Lognormal:
		s.kind = kindLognormal
		s.l = v
	}
	return s
}

// Sample draws one value, exactly as Dist.Sample would on the bound
// stream.
func (s *Sampler) Sample() float64 {
	switch s.kind {
	case kindConstant:
		return s.c
	case kindUniform:
		return s.u.Lo + s.r.Float64()*(s.u.Hi-s.u.Lo)
	case kindLognormal:
		return math.Exp(s.l.Mu + s.l.Sigma*s.r.NormFloat64())
	default:
		return s.d.Sample(s.r)
	}
}

// Seconds draws one value and converts it like the package-level
// Seconds helper: the sample is seconds, negatives clamp to zero.
func (s *Sampler) Seconds() time.Duration {
	v := s.Sample()
	if v <= 0 {
		return 0
	}
	return time.Duration(v * float64(time.Second))
}

// Dist returns the bound distribution.
func (s *Sampler) Dist() Dist { return s.d }
