// Package slurm emulates the Slurm Workload Manager semantics that
// HPC-Whisk depends on (§III-D of the paper): partitions with priority
// tiers, PreemptMode=CANCEL with a SIGTERM grace period, EASY backfill
// on 2-minute allocation slots within a 120-minute window, variable-
// length jobs (--time-min/--time), and periodic scheduling passes whose
// cost grows with the queue — the effect behind the var model's
// underperformance in §V-B2.
//
// The emulator runs on the discrete-event kernel of internal/des and
// supports two prime-workload modes: an exogenous per-node availability
// trace (internal/workload.Trace), standing in for the production
// cluster of the paper's experiments, and a full job-stream mode where
// prime jobs are scheduled by the emulator's own backfill.
package slurm

import (
	"fmt"
	"time"

	"repro/internal/des"
)

// JobState is the lifecycle state of a job.
type JobState uint8

// Job lifecycle: Pending in the queue, Running on nodes, Completing
// after SIGTERM (grace period), Done after the job ended or was removed
// from the queue.
const (
	Pending JobState = iota
	Running
	Completing
	Done
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Completing:
		return "completing"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("jobstate(%d)", uint8(s))
	}
}

// EndReason explains why a job left the system.
type EndReason uint8

// End reasons: ReasonTimeout when the granted time elapsed,
// ReasonPreempted when a higher-tier job reclaimed the nodes,
// ReasonCancelled when the job was removed from the queue before start,
// ReasonCompleted when a prime job finished its actual runtime.
const (
	ReasonNone EndReason = iota
	ReasonTimeout
	ReasonPreempted
	ReasonCancelled
	ReasonCompleted
)

// String implements fmt.Stringer.
func (r EndReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonTimeout:
		return "timeout"
	case ReasonPreempted:
		return "preempted"
	case ReasonCancelled:
		return "cancelled"
	case ReasonCompleted:
		return "completed"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// JobSpec describes a job at submission.
type JobSpec struct {
	Name      string
	Partition string // must name a configured partition

	Nodes int // requested node count (pilot jobs use 1)

	// TimeLimit is --time, the maximum walltime. For variable-length
	// jobs TimeMin is --time-min (> 0): Slurm grants a duration between
	// TimeMin and TimeLimit depending on the window it finds.
	TimeLimit time.Duration
	TimeMin   time.Duration

	// Runtime is the job's actual work duration; it applies to prime
	// jobs in full-scheduler mode (the job completes after Runtime even
	// if TimeLimit is larger). Zero means the job runs until its limit.
	Runtime time.Duration

	// Priority orders jobs within their partition's tier (higher first;
	// the fib manager sets Priority proportional to TimeLimit, §III-D).
	Priority int64

	// Lifecycle hooks, all optional, called on the simulation plane.
	OnStart   func(j *Job)              // job began running
	OnSigterm func(j *Job, at des.Time) // grace warning before kill
	OnEnd     func(j *Job, reason EndReason)
}

// Job is a submitted job tracked by the emulator.
type Job struct {
	ID   int
	Spec JobSpec

	State     JobState
	Reason    EndReason
	Submitted des.Time
	Started   des.Time
	SigtermAt des.Time
	Ended     des.Time

	// Granted is the walltime the scheduler allotted (equals
	// Spec.TimeLimit for fixed-length jobs; within [TimeMin, TimeLimit]
	// for variable-length ones).
	Granted time.Duration

	// NodeIDs are the allocated nodes while Running/Completing.
	NodeIDs []int

	// GracefulExit records that the job exited voluntarily after
	// SIGTERM rather than being SIGKILLed.
	GracefulExit bool

	emu      *Emulator
	endEvent des.Event // natural SIGTERM-at-limit or completion event
	killEv   des.Event // SIGKILL at the end of the grace period
	heapIdx  int       // position in the pending queue heap
}

// Variable reports whether the job has a flexible duration.
func (j *Job) Variable() bool { return j.Spec.TimeMin > 0 && j.Spec.TimeMin < j.Spec.TimeLimit }

// Exit ends a Running or Completing job voluntarily (the HPC-Whisk
// invoker calls this once its hand-off finished). It is a no-op in any
// other state.
func (j *Job) Exit() {
	if j.State != Running && j.State != Completing {
		return
	}
	if j.State == Completing {
		j.GracefulExit = true
	}
	reason := j.Reason
	if reason == ReasonNone {
		reason = ReasonCompleted
	}
	j.emu.finish(j, reason)
}

// Partition configures one Slurm partition.
type Partition struct {
	Name string
	// PriorityTier orders partitions: the scheduler never starts a job
	// from a lower tier if it would delay a higher tier, and higher
	// tiers preempt lower ones (PreemptMode=CANCEL). HPC-Whisk pilots
	// live in a tier-0 partition (§III-D).
	PriorityTier int
}
