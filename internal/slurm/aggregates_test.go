package slurm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/workload"
)

// checkQueueAggregates cross-checks the maintained pilot-queue
// aggregates (and the pass-cost formula built on them) against the
// full-walk oracle.
func checkQueueAggregates(t *testing.T, e *Emulator, op int) {
	t.Helper()
	fixed, variable, byLimit := e.recomputeQueueAggregates()
	if e.nFixed != fixed || e.nVariable != variable {
		t.Fatalf("op %d: counts diverged: live fixed=%d var=%d, scan fixed=%d var=%d",
			op, e.nFixed, e.nVariable, fixed, variable)
	}
	if len(e.byLimit) != len(byLimit) {
		t.Fatalf("op %d: histogram key sets diverged: live %v, scan %v", op, e.byLimit, byLimit)
	}
	for l, n := range byLimit {
		if e.byLimit[l] != n {
			t.Fatalf("op %d: histogram[%v] = %d, scan wants %d", op, l, e.byLimit[l], n)
		}
	}
	wantCost := e.cfg.PassBase +
		time.Duration(fixed)*e.cfg.PassPerFixedJob +
		time.Duration(variable)*e.cfg.PassPerVarJob +
		time.Duration(len(e.primeQueue))*e.cfg.PassPerFixedJob
	if got := e.passCost(); got != wantCost {
		t.Fatalf("op %d: passCost = %v, scan wants %v", op, got, wantCost)
	}
}

// TestQueueAggregateStormMatchesRecompute pins the O(1) pilot-queue
// aggregates to the queue walks they replaced: after every operation
// of a randomized submit/cancel/launch storm (launches happen inside
// the time advances, via scheduling passes), the maintained counts,
// the by-limit histogram — including absence of zero-count keys — and
// the pass-cost formula must match a from-scratch recomputation.
func TestQueueAggregateStormMatchesRecompute(t *testing.T) {
	lengths := []time.Duration{2, 4, 6, 8, 14, 22, 34, 56, 90}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sim, e := newEmu(t, 4)
			rng := dist.NewRand(seed)
			// Four nodes flapping between idle and prime-occupied, so
			// passes keep launching (removing) queued pilots all storm.
			tr := &workload.Trace{Nodes: 4, Horizon: 12 * time.Hour}
			for n := 0; n < 4; n++ {
				at := time.Duration(rng.Intn(600)) * time.Second
				for at < tr.Horizon {
					idle := time.Duration(5+rng.Intn(90)) * time.Minute
					end := at + idle
					if end > tr.Horizon {
						end = tr.Horizon
					}
					tr.Periods = append(tr.Periods, workload.IdlePeriod{
						Node: n, Start: at, End: end, DeclaredEnd: end,
					})
					at = end + time.Duration(5+rng.Intn(60))*time.Minute
				}
			}
			tr.Sort()
			e.DriveTrace(tr)
			e.Start()

			var pending []*Job
			for op := 0; op < 2000; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2: // submit a fixed pilot
					l := lengths[rng.Intn(len(lengths))] * time.Minute
					pending = append(pending, e.Submit(fixedPilot(l)))
				case 3: // submit a flexible (--time-min) pilot
					pending = append(pending, e.Submit(JobSpec{
						Name: "flex", Partition: pilotPart, Nodes: 1,
						TimeMin: 2 * time.Minute, TimeLimit: 2 * time.Hour,
					}))
				case 4: // cancel a random job (no-op if it already started)
					if len(pending) > 0 {
						i := rng.Intn(len(pending))
						e.Cancel(pending[i])
						pending = append(pending[:i], pending[i+1:]...)
					}
				default: // let passes run: launches drain the queue
					sim.RunFor(time.Duration(rng.Intn(120)) * time.Second)
				}
				checkQueueAggregates(t, e, op)
			}
			if e.Started == 0 || e.Cancelled == 0 {
				t.Fatalf("storm too quiet (started=%d cancelled=%d) — launch/cancel removal paths not exercised", e.Started, e.Cancelled)
			}
			checkQueueAggregates(t, e, -1)
		})
	}
}

// BenchmarkQueuedPilotsByLimit pins the copy-free read path of the
// supply-policy histogram: reading it (and iterating it, as a
// replenish loop does) is allocation-free — it used to build a fresh
// map per call.
func BenchmarkQueuedPilotsByLimit(b *testing.B) {
	e := New(des.New(), 1, DefaultConfig())
	e.AddPartition(Partition{Name: pilotPart, PriorityTier: 0})
	for i, l := range []time.Duration{2, 4, 6, 8, 14, 22, 34, 56, 90} {
		for k := 0; k <= i%3; k++ {
			e.Submit(fixedPilot(l * time.Minute))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		for _, n := range e.QueuedPilotsByLimit() {
			total += n
		}
	}
	if total < 0 {
		b.Fatal("impossible")
	}
}
