package slurm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/workload"
)

// Config holds the scheduler parameters of the emulator. The defaults
// (see DefaultConfig) mirror the Prometheus configuration described in
// the paper.
type Config struct {
	// Grace is the SIGTERM→SIGKILL notice (3 minutes on Prometheus).
	Grace time.Duration

	// SchedInterval is the nominal period of scheduling passes. A pass
	// whose own duration exceeds the interval delays the next pass —
	// the mechanism behind the var model's coverage loss (§V-B2).
	SchedInterval time.Duration

	// Slot is the backfill allocation granularity (2 minutes on
	// Prometheus: job lengths must be even, §IV-B).
	Slot time.Duration

	// BackfillWindow is how far into the future backfill plans
	// (120 minutes on Prometheus).
	BackfillWindow time.Duration

	// Scheduling-pass cost model: a pass lasts
	// PassBase + PassPerFixedJob·(queued fixed) + PassPerVarJob·(queued
	// variable). Variable-length jobs are far more expensive to place
	// because Slurm schedules them at TimeMin and then tries to extend.
	PassBase        time.Duration
	PassPerFixedJob time.Duration
	PassPerVarJob   time.Duration

	// MaxStartsPerPass caps how many pilot jobs one pass can launch
	// (0 = unlimited). Variable-length passes on Prometheus could not
	// always work through a drained queue before the cluster changed.
	MaxStartsPerPass int
}

// DefaultConfig returns the Prometheus-like configuration.
func DefaultConfig() Config {
	return Config{
		Grace:            3 * time.Minute,
		SchedInterval:    15 * time.Second,
		Slot:             2 * time.Minute,
		BackfillWindow:   120 * time.Minute,
		PassBase:         500 * time.Millisecond,
		PassPerFixedJob:  10 * time.Millisecond,
		PassPerVarJob:    600 * time.Millisecond,
		MaxStartsPerPass: 0,
	}
}

// Emulator is the Slurm controller (slurmctld) emulation.
type Emulator struct {
	sim *des.Sim
	cfg Config
	cl  *cluster.Cluster

	partitions map[string]*Partition

	nextID     int
	pilotQueue jobHeap // tier-0 queue ordered by (priority desc, submit)
	primeQueue []*Job  // tier ≥1 FIFO queue (full-scheduler mode)

	// O(1) pilot-queue aggregates, maintained at the queue's only two
	// mutation points (pilotPush, pilotRemove) with values identical to
	// walking pilotQueue — recomputeQueueAggregates is the test oracle.
	// They make passCost and the QueuedPilots* supply-policy signals
	// constant-cost and allocation-free: passCost used to walk the whole
	// queue every scheduling pass, and the by-limit histogram used to be
	// rebuilt into a fresh map every policy tick.
	nFixed    int                   // pending fixed-length tier-0 jobs
	nVariable int                   // pending flexible (--time-min) tier-0 jobs
	byLimit   map[time.Duration]int // fixed jobs per TimeLimit; no zero-count keys

	runningByNode []*Job // pilot or prime job occupying each node

	// Trace mode: the scheduler's declared view of each node's current
	// idle window, and whether trace-driven prime load occupies it.
	declaredEnd []des.Time

	passTicker       des.Event
	inTraceMode      bool
	headReservation  reservation
	primePassPending bool

	// Counters for tests and experiment reports.
	Started    int
	Preempted  int
	TimedOut   int
	Cancelled  int
	GracefulEx int
}

// New builds an emulator over a fresh cluster of n nodes.
func New(sim *des.Sim, n int, cfg Config) *Emulator {
	e := &Emulator{
		sim:           sim,
		cfg:           cfg,
		cl:            cluster.New(n),
		partitions:    map[string]*Partition{},
		runningByNode: make([]*Job, n),
		declaredEnd:   make([]des.Time, n),
		byLimit:       map[time.Duration]int{},
	}
	return e
}

// Cluster exposes the node-state store (for monitoring perspectives).
func (e *Emulator) Cluster() *cluster.Cluster { return e.cl }

// Sim exposes the simulation handle.
func (e *Emulator) Sim() *des.Sim { return e.sim }

// Config returns the active configuration.
func (e *Emulator) Config() Config { return e.cfg }

// AddPartition registers a partition.
func (e *Emulator) AddPartition(p Partition) {
	cp := p
	e.partitions[p.Name] = &cp
}

// DriveTrace loads an exogenous availability trace: outside its idle
// periods every node is occupied by untracked prime load. Idle-period
// boundaries become node events; the declared ends feed the scheduler's
// window estimates. Call before Start.
func (e *Emulator) DriveTrace(tr *workload.Trace) {
	if tr.Nodes != e.cl.Len() {
		panic(fmt.Sprintf("slurm: trace has %d nodes, cluster %d", tr.Nodes, e.cl.Len()))
	}
	e.inTraceMode = true
	// All nodes start busy; idle periods open windows.
	for i := 0; i < e.cl.Len(); i++ {
		e.cl.Set(i, cluster.Busy, e.sim.Now())
	}
	for _, p := range tr.Periods {
		p := p
		e.sim.Schedule(p.Start, func() { e.traceIdleStart(p) })
		e.sim.Schedule(p.End, func() { e.traceIdleEnd(p) })
	}
}

func (e *Emulator) traceIdleStart(p workload.IdlePeriod) {
	node := p.Node
	if e.runningByNode[node] != nil {
		// A pilot survived into this instant (grace overlap); leave it.
		e.declaredEnd[node] = p.DeclaredEnd
		return
	}
	e.declaredEnd[node] = p.DeclaredEnd
	e.cl.Set(node, cluster.Idle, e.sim.Now())
}

func (e *Emulator) traceIdleEnd(p workload.IdlePeriod) {
	node := p.Node
	now := e.sim.Now()
	if j := e.runningByNode[node]; j != nil {
		// Prime load reclaims the node: preempt the pilot
		// (PreemptMode=CANCEL with grace).
		e.sigterm(j, ReasonPreempted)
		// The node is handed to the prime workload immediately; the
		// paper argues the ≤3-minute grace delay is insignificant.
		e.detach(j)
	}
	e.declaredEnd[node] = 0
	e.cl.Set(node, cluster.Busy, now)
}

// Start begins periodic scheduling passes.
func (e *Emulator) Start() {
	if e.passTicker.Scheduled() {
		return
	}
	e.schedulePass(e.cfg.SchedInterval)
}

func (e *Emulator) schedulePass(after time.Duration) {
	e.passTicker = e.sim.After(after, e.runPass)
}

// runPass models one scheduling pass: it costs time proportional to the
// queue, works from a snapshot of the node states taken at pass start
// (as Slurm's backfill plans from a point-in-time view), and its
// placements take effect at the end of the pass. Nodes that turn idle
// while a pass is in flight wait for the next pass — the staleness that
// makes expensive (variable-length) passes lose coverage (§V-B2).
func (e *Emulator) runPass() {
	cost := e.passCost()
	idleSnap := append([]int(nil), e.cl.Nodes(cluster.Idle)...)
	sort.Ints(idleSnap)
	e.sim.After(cost, func() {
		e.schedulePrime()
		e.schedulePilotsOn(idleSnap)
	})
	next := e.cfg.SchedInterval
	if cost > next {
		next = cost
	}
	e.schedulePass(next)
}

// passCost prices one scheduling pass from the maintained queue
// aggregates — O(1) where it used to walk the entire pilot queue every
// pass.
func (e *Emulator) passCost() time.Duration {
	return e.cfg.PassBase +
		time.Duration(e.nFixed)*e.cfg.PassPerFixedJob +
		time.Duration(e.nVariable)*e.cfg.PassPerVarJob +
		time.Duration(len(e.primeQueue))*e.cfg.PassPerFixedJob
}

// pilotPush enqueues a tier-0 job, maintaining the queue aggregates.
// Every pilotQueue insertion goes through here.
func (e *Emulator) pilotPush(j *Job) {
	e.pilotQueue.push(j)
	if j.Variable() {
		e.nVariable++
	} else {
		e.nFixed++
		e.byLimit[j.Spec.TimeLimit]++
	}
}

// pilotRemove dequeues a tier-0 job, maintaining the queue aggregates.
// Every pilotQueue removal goes through here. Zero-count histogram keys
// are deleted so the live map's length and iteration match the
// fresh-map scan it replaced.
func (e *Emulator) pilotRemove(j *Job) {
	before := len(e.pilotQueue)
	e.pilotQueue.remove(j)
	if len(e.pilotQueue) == before {
		return // not queued; remove was a no-op
	}
	if j.Variable() {
		e.nVariable--
	} else {
		e.nFixed--
		if n := e.byLimit[j.Spec.TimeLimit] - 1; n == 0 {
			delete(e.byLimit, j.Spec.TimeLimit)
		} else {
			e.byLimit[j.Spec.TimeLimit] = n
		}
	}
}

// recomputeQueueAggregates rebuilds the pilot-queue aggregates by full
// walk — the pre-O(1) implementation, kept as the equivalence oracle
// for the aggregate storm test. Not called on any hot path.
func (e *Emulator) recomputeQueueAggregates() (fixed, variable int, byLimit map[time.Duration]int) {
	byLimit = map[time.Duration]int{}
	for _, j := range e.pilotQueue {
		if j.Variable() {
			variable++
			continue
		}
		fixed++
		byLimit[j.Spec.TimeLimit]++
	}
	return fixed, variable, byLimit
}

// Submit enqueues a job. Tier-0 partitions feed the pilot queue;
// higher tiers feed the prime queue (full-scheduler mode).
func (e *Emulator) Submit(spec JobSpec) *Job {
	p, ok := e.partitions[spec.Partition]
	if !ok {
		panic(fmt.Sprintf("slurm: unknown partition %q", spec.Partition))
	}
	if spec.Nodes <= 0 {
		spec.Nodes = 1
	}
	if spec.TimeLimit <= 0 {
		panic("slurm: job needs a time limit")
	}
	j := &Job{
		ID:        e.nextID,
		Spec:      spec,
		State:     Pending,
		Submitted: e.sim.Now(),
		emu:       e,
		heapIdx:   -1,
	}
	e.nextID++
	if p.PriorityTier == 0 {
		e.pilotPush(j)
	} else {
		e.primeQueue = append(e.primeQueue, j)
	}
	return j
}

// Cancel removes a pending job from its queue. Running jobs are not
// cancelled this way (the HPC-Whisk manager only replaces queued jobs).
func (e *Emulator) Cancel(j *Job) bool {
	if j.State != Pending {
		return false
	}
	if j.heapIdx >= 0 {
		e.pilotRemove(j)
	} else {
		for i, q := range e.primeQueue {
			if q == j {
				e.primeQueue = append(e.primeQueue[:i], e.primeQueue[i+1:]...)
				break
			}
		}
	}
	j.State = Done
	j.Reason = ReasonCancelled
	j.Ended = e.sim.Now()
	e.Cancelled++
	if j.Spec.OnEnd != nil {
		j.Spec.OnEnd(j, ReasonCancelled)
	}
	return true
}

// QueuedPilots returns the number of pending tier-0 jobs.
func (e *Emulator) QueuedPilots() int { return len(e.pilotQueue) }

// QueuedPilotsByLimit counts pending fixed-length tier-0 jobs per time
// limit. Flexible (--time-min) jobs are excluded: their TimeLimit is
// only an upper bound, so bucketing them with the fixed bags would let
// a hybrid supply policy double-count its two halves.
//
// The returned map is the emulator's live maintained histogram, not a
// copy — the read is O(1) and allocation-free. Contract: callers must
// NOT mutate it, and must expect it to change under them as jobs
// submit, start, or cancel (in particular, a Submit issued while
// iterating updates the map the caller is holding). Keys with a zero
// count are absent, exactly as in the per-call rebuild it replaced.
func (e *Emulator) QueuedPilotsByLimit() map[time.Duration]int {
	return e.byLimit
}

// QueuedFlexiblePilots counts pending flexible (--time-min) tier-0
// jobs. O(1): a maintained aggregate, not a queue walk.
func (e *Emulator) QueuedFlexiblePilots() int { return e.nVariable }

// schedulePilotsOn places tier-0 jobs on the snapshot's idle nodes
// (re-validated against the current state) using the scheduler's
// declared window estimates.
func (e *Emulator) schedulePilotsOn(idle []int) {
	if len(e.pilotQueue) == 0 {
		return
	}
	now := e.sim.Now()
	starts := 0
	for _, node := range idle {
		if e.cfg.MaxStartsPerPass > 0 && starts >= e.cfg.MaxStartsPerPass {
			break
		}
		if e.cl.State(node) != cluster.Idle {
			continue // reclaimed while the pass was in flight
		}
		window := e.visibleWindow(node, now)
		if window < e.cfg.Slot {
			continue
		}
		j := e.pilotQueue.bestFit(window)
		if j == nil {
			continue
		}
		granted := j.Spec.TimeLimit
		if j.Variable() {
			granted = window
			if granted > j.Spec.TimeLimit {
				granted = j.Spec.TimeLimit
			}
			granted = granted - granted%e.cfg.Slot
			if granted < j.Spec.TimeMin {
				continue
			}
		}
		e.pilotRemove(j)
		e.startJob(j, []int{node}, granted, cluster.Pilot)
		starts++
	}
}

// visibleWindow is the scheduler's belief about how long a node stays
// idle: the declared window end while it lasts, then a rolling single
// slot (the scheduler keeps seeing "idle right now" and plans one slot
// ahead), capped by the backfill window. In full-scheduler mode the
// window is bounded by the head-job reservation (see backfill.go).
func (e *Emulator) visibleWindow(node int, now des.Time) time.Duration {
	var w time.Duration
	if e.inTraceMode {
		decl := e.declaredEnd[node]
		if decl > now {
			w = decl - now
		} else {
			w = e.cfg.Slot
		}
	} else {
		w = e.reservationWindow(node, now)
	}
	if w > e.cfg.BackfillWindow {
		w = e.cfg.BackfillWindow
	}
	return w - w%e.cfg.Slot
}

// startJob launches a job on the given nodes.
func (e *Emulator) startJob(j *Job, nodes []int, granted time.Duration, st cluster.State) {
	now := e.sim.Now()
	j.State = Running
	j.Started = now
	j.Granted = granted
	j.NodeIDs = nodes
	for _, n := range nodes {
		e.runningByNode[n] = j
		e.cl.Set(n, st, now)
	}
	e.Started++
	// Natural end: prime jobs complete after their actual runtime;
	// pilots (Runtime == 0) receive SIGTERM at their granted limit.
	if j.Spec.Runtime > 0 && j.Spec.Runtime <= granted {
		j.endEvent = e.sim.After(j.Spec.Runtime, func() { e.finish(j, ReasonCompleted) })
	} else {
		j.endEvent = e.sim.After(granted, func() { e.sigterm(j, ReasonTimeout) })
	}
	if j.Spec.OnStart != nil {
		j.Spec.OnStart(j)
	}
}

// sigterm delivers the grace-period warning and arms the SIGKILL. A job
// with no SIGTERM handler dies immediately (like a plain batch script);
// a job with a handler (the HPC-Whisk invoker) lingers until it calls
// Exit or the grace period expires.
func (e *Emulator) sigterm(j *Job, reason EndReason) {
	if j.State != Running {
		return
	}
	now := e.sim.Now()
	j.State = Completing
	j.Reason = reason
	j.SigtermAt = now
	j.endEvent.Stop()
	if j.Spec.OnSigterm == nil {
		e.finish(j, reason)
		return
	}
	j.killEv = e.sim.After(e.cfg.Grace, func() { e.finish(j, reason) })
	j.Spec.OnSigterm(j, now)
}

// detach releases a job's nodes without ending the job (used when prime
// load reclaims nodes while the job drains through its grace period).
func (e *Emulator) detach(j *Job) {
	j.NodeIDs = j.NodeIDs[:0]
	// Node states are updated by the caller.
	for n, q := range e.runningByNode {
		if q == j {
			e.runningByNode[n] = nil
		}
	}
}

// finish ends a job and frees any nodes it still holds.
func (e *Emulator) finish(j *Job, reason EndReason) {
	if j.State == Done {
		return
	}
	now := e.sim.Now()
	wasCompleting := j.State == Completing
	j.State = Done
	j.Reason = reason
	j.Ended = now
	j.endEvent.Stop()
	j.killEv.Stop()
	for _, n := range j.NodeIDs {
		if e.runningByNode[n] != j {
			continue
		}
		e.runningByNode[n] = nil
		if e.inTraceMode {
			// The node returns to idle if its window is still open
			// (the trace's idle-end event will mark it busy otherwise).
			e.cl.Set(n, cluster.Idle, now)
		} else {
			e.cl.Set(n, cluster.Idle, now)
			e.onPrimeNodeFree()
		}
	}
	switch reason {
	case ReasonPreempted:
		e.Preempted++
	case ReasonTimeout:
		e.TimedOut++
	}
	if wasCompleting && j.GracefulExit {
		e.GracefulEx++
	}
	if j.Spec.OnEnd != nil {
		j.Spec.OnEnd(j, reason)
	}
}

// RunningJob returns the job occupying a node, if any.
func (e *Emulator) RunningJob(node int) *Job { return e.runningByNode[node] }

// Snapshot returns the current idle and pilot node id lists (sorted
// copies), as the paper's 10-second pollers logged them.
func (e *Emulator) Snapshot() (idle, pilot []int) {
	idle = append([]int(nil), e.cl.Nodes(cluster.Idle)...)
	pilot = append([]int(nil), e.cl.Nodes(cluster.Pilot)...)
	sort.Ints(idle)
	sort.Ints(pilot)
	return idle, pilot
}

// jobHeap is a priority queue: higher Priority first, then FIFO.
type jobHeap []*Job

func (h jobHeap) less(i, j int) bool {
	if h[i].Spec.Priority != h[j].Spec.Priority {
		return h[i].Spec.Priority > h[j].Spec.Priority
	}
	return h[i].Submitted < h[j].Submitted || (h[i].Submitted == h[j].Submitted && h[i].ID < h[j].ID)
}

func (h jobHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *jobHeap) push(j *Job) {
	*h = append(*h, j)
	j.heapIdx = len(*h) - 1
	h.up(j.heapIdx)
}

func (h jobHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h jobHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *jobHeap) remove(j *Job) {
	i := j.heapIdx
	if i < 0 || i >= len(*h) || (*h)[i] != j {
		return
	}
	last := len(*h) - 1
	h.swap(i, last)
	(*h)[last] = nil
	*h = (*h)[:last]
	j.heapIdx = -1
	if i < last {
		h.down(i)
		h.up(i)
	}
}

// bestFit returns the highest-priority pending job whose limit fits the
// window (for the fib manager, priority ∝ length, so this is the
// greedy longest-fits choice of §III-D). Variable-length jobs fit if
// their TimeMin does.
func (h jobHeap) bestFit(window time.Duration) *Job {
	var best *Job
	bestIdx := -1
	for i, j := range h {
		need := j.Spec.TimeLimit
		if j.Variable() {
			need = j.Spec.TimeMin
		}
		if need > window {
			continue
		}
		if best == nil || h.less(i, bestIdx) {
			best = j
			bestIdx = i
		}
	}
	return best
}
