package slurm

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/workload"
)

// TestSnapshotStaleness: a node turning idle right after a pass starts
// waits for the following pass (the §V-B2 staleness effect).
func TestSnapshotStaleness(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.SchedInterval = 30 * time.Second
	cfg.PassBase = 10 * time.Second // long pass: snapshot clearly stale
	cfg.PassPerFixedJob = 0
	e := New(sim, 1, cfg)
	e.AddPartition(Partition{Name: pilotPart, PriorityTier: 0})
	// Node turns idle at 31s: just after the pass that started at 30s
	// took its snapshot.
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 31 * time.Second, End: 30 * time.Minute, DeclaredEnd: 30 * time.Minute,
	}))
	var started des.Time
	spec := fixedPilot(8 * time.Minute)
	spec.OnStart = func(j *Job) { started = sim.Now() }
	e.Submit(spec)
	e.Start()
	sim.RunUntil(3 * time.Minute)
	if started == 0 {
		t.Fatal("pilot never started")
	}
	// The pass at 30 s misses it (snapshot); the pass at 60 s applies
	// at 70 s.
	if started < 65*time.Second {
		t.Errorf("pilot started at %v, expected to wait for the next pass (≈70s)", started)
	}
}

// TestVarGrantCappedByBackfillWindow: a variable job in a huge window is
// granted at most the backfill window.
func TestVarGrantCappedByBackfillWindow(t *testing.T) {
	sim, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: 4 * time.Hour, DeclaredEnd: 4 * time.Hour,
	}))
	var got *Job
	e.Submit(JobSpec{
		Name: "var", Partition: pilotPart, Nodes: 1,
		TimeMin: 2 * time.Minute, TimeLimit: 6 * time.Hour,
		OnStart: func(j *Job) { got = j },
	})
	e.Start()
	sim.RunUntil(2 * time.Minute)
	if got == nil {
		t.Fatal("variable job not started")
	}
	if got.Granted > 2*time.Hour {
		t.Errorf("granted %v exceeds the 120m backfill window", got.Granted)
	}
}

// TestPrimeClaimPrefersIdle: a prime job claims idle nodes before
// preempting pilots.
func TestPrimeClaimPrefersIdle(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.SchedInterval = time.Second
	cfg.PassBase = 10 * time.Millisecond
	e := New(sim, 3, cfg)
	e.AddPartition(Partition{Name: pilotPart, PriorityTier: 0})
	e.AddPartition(Partition{Name: primePart, PriorityTier: 1})
	// One pilot on one node; two idle nodes.
	preempted := false
	e.Submit(JobSpec{
		Name: "pilot", Partition: pilotPart, Nodes: 1, TimeLimit: time.Hour,
		OnSigterm: func(j *Job, at des.Time) { sim.After(time.Second, j.Exit) },
		OnEnd:     func(j *Job, r EndReason) { preempted = preempted || r == ReasonPreempted },
	})
	e.Start()
	sim.RunUntil(30 * time.Second)
	if e.Cluster().Count(cluster.Pilot) != 1 {
		t.Fatalf("pilot count = %d", e.Cluster().Count(cluster.Pilot))
	}
	// A 2-node prime job fits on the two idle nodes.
	e.Submit(JobSpec{
		Name: "prime", Partition: primePart, Nodes: 2,
		TimeLimit: 10 * time.Minute, Runtime: 10 * time.Minute,
	})
	sim.RunUntil(time.Minute)
	if preempted {
		t.Error("prime job preempted a pilot despite idle nodes being available")
	}
	if e.Cluster().Count(cluster.Busy) != 2 {
		t.Errorf("busy = %d, want 2", e.Cluster().Count(cluster.Busy))
	}
}

// TestExitBeforeSigterm: a running pilot may exit voluntarily.
func TestExitBeforeSigterm(t *testing.T) {
	sim, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: time.Hour, DeclaredEnd: time.Hour,
	}))
	var job *Job
	var reason EndReason
	spec := fixedPilot(30 * time.Minute)
	spec.OnStart = func(j *Job) { job = j }
	spec.OnEnd = func(j *Job, r EndReason) { reason = r }
	e.Submit(spec)
	e.Start()
	sim.RunUntil(time.Minute)
	if job == nil {
		t.Fatal("not started")
	}
	job.Exit()
	if reason != ReasonCompleted {
		t.Errorf("reason = %v, want completed", reason)
	}
	if e.Cluster().State(0) != cluster.Idle {
		t.Errorf("node = %v, want idle after voluntary exit", e.Cluster().State(0))
	}
	sim.RunUntil(2 * time.Minute)
}

// TestExitOnPendingIsNoop: Exit on a queued job does nothing.
func TestExitOnPendingIsNoop(t *testing.T) {
	_, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace())
	j := e.Submit(fixedPilot(10 * time.Minute))
	j.Exit()
	if j.State != Pending {
		t.Errorf("state = %v, want still pending", j.State)
	}
}

// TestQueueByLimitAfterStart: started jobs leave the by-limit counts.
func TestQueueByLimitAfterStart(t *testing.T) {
	sim, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: time.Hour, DeclaredEnd: time.Hour,
	}))
	e.Submit(fixedPilot(14 * time.Minute))
	e.Submit(fixedPilot(14 * time.Minute))
	e.Start()
	sim.RunUntil(time.Minute)
	if got := e.QueuedPilotsByLimit()[14*time.Minute]; got != 1 {
		t.Errorf("queued 14m jobs = %d, want 1 (one started)", got)
	}
}

// TestJobHeapProperty: random push/remove sequences keep the heap's
// extraction order consistent with (priority desc, FIFO).
func TestJobHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		var h jobHeap
		var alive []*Job
		n := 3 + rng.Intn(40)
		for i := 0; i < n; i++ {
			j := &Job{
				ID:        i,
				Submitted: des.Time(rng.Intn(1000)) * des.Time(time.Second),
				Spec:      JobSpec{Priority: int64(rng.Intn(5))},
				heapIdx:   -1,
			}
			h.push(j)
			alive = append(alive, j)
		}
		// Remove a random subset.
		for i := 0; i < n/3; i++ {
			k := rng.Intn(len(alive))
			h.remove(alive[k])
			alive = append(alive[:k], alive[k+1:]...)
		}
		// bestFit with an infinite window must return the overall best.
		for len(alive) > 0 {
			best := h.bestFit(1000 * time.Hour)
			want := alive[0]
			for _, j := range alive[1:] {
				if j.Spec.Priority > want.Spec.Priority ||
					(j.Spec.Priority == want.Spec.Priority &&
						(j.Submitted < want.Submitted ||
							(j.Submitted == want.Submitted && j.ID < want.ID))) {
					want = j
				}
			}
			if best != want {
				t.Fatalf("trial %d: bestFit = job %d, want job %d", trial, best.ID, want.ID)
			}
			h.remove(best)
			for k, j := range alive {
				if j == best {
					alive = append(alive[:k], alive[k+1:]...)
					break
				}
			}
		}
	}
}

// TestZeroLengthTraceNoIdle: an empty trace keeps every node busy and
// no pilot ever starts.
func TestZeroLengthTraceNoIdle(t *testing.T) {
	sim, e := newEmu(t, 4)
	e.DriveTrace(&workload.Trace{Nodes: 4, Horizon: time.Hour})
	started := false
	spec := fixedPilot(2 * time.Minute)
	spec.OnStart = func(j *Job) { started = true }
	e.Submit(spec)
	e.Start()
	sim.RunUntil(time.Hour)
	if started {
		t.Error("pilot started with no idle windows")
	}
	if e.Cluster().Count(cluster.Busy) != 4 {
		t.Errorf("busy = %d, want 4", e.Cluster().Count(cluster.Busy))
	}
}

// TestBackfillWindowRoundsToSlot: visible windows are slot-aligned.
func TestBackfillWindowRoundsToSlot(t *testing.T) {
	sim, e := newEmu(t, 1)
	// 5-minute declared window → 4-minute usable (2-min slots).
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: time.Hour, DeclaredEnd: 5 * time.Minute,
	}))
	var startedLimit time.Duration
	for _, l := range []time.Duration{2, 4} {
		spec := fixedPilot(l * time.Minute)
		spec.OnStart = func(j *Job) {
			if startedLimit == 0 {
				startedLimit = j.Spec.TimeLimit
			}
		}
		e.Submit(spec)
	}
	e.Start()
	sim.RunUntil(time.Minute)
	// Window at pass time ≈ 5m - 16s → rounds to 4m → 4-minute job.
	if startedLimit != 4*time.Minute {
		t.Errorf("started %v, want the 4m job", startedLimit)
	}
}
