package slurm

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/workload"
)

const (
	pilotPart = "whisk"
	primePart = "hpc"
)

func newEmu(t *testing.T, nodes int) (*des.Sim, *Emulator) {
	t.Helper()
	sim := des.New()
	cfg := DefaultConfig()
	e := New(sim, nodes, cfg)
	e.AddPartition(Partition{Name: pilotPart, PriorityTier: 0})
	e.AddPartition(Partition{Name: primePart, PriorityTier: 1})
	return sim, e
}

func oneNodeTrace(periods ...workload.IdlePeriod) *workload.Trace {
	tr := &workload.Trace{Nodes: 1, Horizon: 4 * time.Hour, Periods: periods}
	tr.Sort()
	return tr
}

func fixedPilot(limit time.Duration) JobSpec {
	return JobSpec{
		Name:      "pilot",
		Partition: pilotPart,
		Nodes:     1,
		TimeLimit: limit,
		Priority:  int64(limit),
	}
}

func TestPilotPlacedInWindow(t *testing.T) {
	sim, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 1 * time.Minute, End: 21 * time.Minute, DeclaredEnd: 21 * time.Minute,
	}))
	var started *Job
	spec := fixedPilot(14 * time.Minute)
	spec.OnStart = func(j *Job) { started = j }
	e.Submit(spec)
	e.Submit(fixedPilot(2 * time.Minute))
	e.Start()
	sim.RunUntil(2 * time.Minute)
	if started == nil {
		t.Fatal("14-minute pilot not started in a 20-minute window")
	}
	if started.Granted != 14*time.Minute {
		t.Errorf("granted = %v, want 14m", started.Granted)
	}
	if got := started.Started; got < time.Minute || got > 90*time.Second {
		t.Errorf("start at %v, want shortly after 1m", got)
	}
	if e.Cluster().State(0) != cluster.Pilot {
		t.Errorf("node state = %v, want pilot", e.Cluster().State(0))
	}
}

func TestLongestFitChosen(t *testing.T) {
	sim, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: 9 * time.Minute, DeclaredEnd: 9 * time.Minute,
	}))
	var startedLimit time.Duration
	for _, l := range []time.Duration{2, 4, 6, 8, 14} {
		spec := fixedPilot(l * time.Minute)
		spec.OnStart = func(j *Job) {
			if startedLimit == 0 {
				startedLimit = j.Spec.TimeLimit
			}
		}
		e.Submit(spec)
	}
	e.Start()
	sim.RunUntil(time.Minute)
	// Window is 9 min → rounded to 8 min → the 8-minute job wins.
	if startedLimit != 8*time.Minute {
		t.Errorf("started job limit = %v, want 8m", startedLimit)
	}
}

func TestVariableJobGrantedWindow(t *testing.T) {
	sim, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: 47 * time.Minute, DeclaredEnd: 47 * time.Minute,
	}))
	var got *Job
	spec := JobSpec{
		Name: "var", Partition: pilotPart, Nodes: 1,
		TimeMin: 2 * time.Minute, TimeLimit: 2 * time.Hour,
		OnStart: func(j *Job) { got = j },
	}
	e.Submit(spec)
	e.Start()
	sim.RunUntil(time.Minute)
	if got == nil {
		t.Fatal("variable job not started")
	}
	// Window ≈ 47m - (pass time) → slot-rounded to 46m.
	if got.Granted < 44*time.Minute || got.Granted > 46*time.Minute {
		t.Errorf("granted = %v, want ≈46m", got.Granted)
	}
	if got.Granted%(2*time.Minute) != 0 {
		t.Errorf("granted %v not slot-aligned", got.Granted)
	}
}

func TestTooSmallWindowSkipped(t *testing.T) {
	sim, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: 90 * time.Second, DeclaredEnd: 90 * time.Second,
	}))
	started := false
	spec := fixedPilot(2 * time.Minute)
	spec.OnStart = func(j *Job) { started = true }
	e.Submit(spec)
	e.Start()
	sim.RunUntil(5 * time.Minute)
	if started {
		t.Error("2-minute job started in a 90-second window")
	}
}

func TestPreemptionOnReclaim(t *testing.T) {
	sim, e := newEmu(t, 1)
	// Declared window far longer than actual: pilot gets preempted.
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: 10 * time.Minute, DeclaredEnd: 40 * time.Minute,
	}))
	var sigtermAt des.Time
	var endReason EndReason
	exited := make(chan struct{}) // closed semantics via flag; DES is single-threaded
	_ = exited
	spec := fixedPilot(34 * time.Minute)
	spec.OnSigterm = func(j *Job, at des.Time) {
		sigtermAt = at
		// Drain and exit 2 seconds later, like the HPC-Whisk invoker.
		sim.After(2*time.Second, j.Exit)
	}
	spec.OnEnd = func(j *Job, reason EndReason) { endReason = reason }
	e.Submit(spec)
	e.Start()
	sim.RunUntil(15 * time.Minute)
	if sigtermAt != 10*time.Minute {
		t.Errorf("sigterm at %v, want 10m", sigtermAt)
	}
	if endReason != ReasonPreempted {
		t.Errorf("end reason = %v, want preempted", endReason)
	}
	if e.Preempted != 1 {
		t.Errorf("preempted counter = %d, want 1", e.Preempted)
	}
	if e.GracefulEx != 1 {
		t.Errorf("graceful counter = %d, want 1", e.GracefulEx)
	}
	if e.Cluster().State(0) != cluster.Busy {
		t.Errorf("node state after reclaim = %v, want busy", e.Cluster().State(0))
	}
}

func TestSigkillAfterGraceWithoutExit(t *testing.T) {
	sim, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: 10 * time.Minute, DeclaredEnd: 40 * time.Minute,
	}))
	var ended des.Time
	var graceful bool
	spec := fixedPilot(34 * time.Minute)
	spec.OnSigterm = func(j *Job, at des.Time) { /* never exits voluntarily */ }
	spec.OnEnd = func(j *Job, reason EndReason) { ended = sim.Now(); graceful = j.GracefulExit }
	e.Submit(spec)
	e.Start()
	sim.RunUntil(20 * time.Minute)
	if ended != 13*time.Minute {
		t.Errorf("SIGKILL at %v, want 13m (10m + 3m grace)", ended)
	}
	if graceful {
		t.Error("job without voluntary exit marked graceful")
	}
}

func TestTimeoutSigtermAtGrantedLimit(t *testing.T) {
	sim, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: 60 * time.Minute, DeclaredEnd: 60 * time.Minute,
	}))
	var started, sigterm des.Time
	var reason EndReason
	spec := fixedPilot(4 * time.Minute)
	spec.OnStart = func(j *Job) { started = sim.Now() }
	spec.OnSigterm = func(j *Job, at des.Time) {
		sigterm = at
		sim.After(time.Second, j.Exit)
	}
	spec.OnEnd = func(j *Job, r EndReason) { reason = r }
	e.Submit(spec)
	e.Start()
	sim.RunUntil(10 * time.Minute)
	if sigterm-started != 4*time.Minute {
		t.Errorf("sigterm after %v of runtime, want 4m", sigterm-started)
	}
	if reason != ReasonTimeout {
		t.Errorf("reason = %v, want timeout", reason)
	}
	// Node returns to idle once the job exits (window still open).
	if e.Cluster().State(0) != cluster.Idle && e.Cluster().State(0) != cluster.Pilot {
		t.Errorf("node state = %v, want idle (or pilot if re-placed)", e.Cluster().State(0))
	}
}

func TestNoHandlerDiesAtSigterm(t *testing.T) {
	sim, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: 30 * time.Minute, DeclaredEnd: 30 * time.Minute,
	}))
	var ended des.Time
	spec := fixedPilot(4 * time.Minute)
	spec.OnEnd = func(j *Job, r EndReason) { ended = sim.Now() }
	e.Submit(spec)
	e.Start()
	sim.RunUntil(10 * time.Minute)
	if ended == 0 {
		t.Fatal("job never ended")
	}
	// Ends exactly at its granted limit (start ≈ 15.x s + 4m).
	if d := ended - 4*time.Minute; d < 15*time.Second || d > 90*time.Second {
		t.Errorf("ended at %v, want ≈ start + 4m", ended)
	}
}

func TestRollingSlotAfterDeclaredEndPasses(t *testing.T) {
	sim, e := newEmu(t, 1)
	// Declared end underestimates: window "expires" at 4m but the node
	// stays idle until 30m. The scheduler keeps placing 2-minute jobs.
	e.DriveTrace(oneNodeTrace(workload.IdlePeriod{
		Node: 0, Start: 0, End: 30 * time.Minute, DeclaredEnd: 4 * time.Minute,
	}))
	starts := 0
	for i := 0; i < 20; i++ {
		spec := fixedPilot(2 * time.Minute)
		spec.OnStart = func(j *Job) { starts++ }
		spec.OnSigterm = func(j *Job, at des.Time) { sim.After(time.Second, j.Exit) }
		e.Submit(spec)
	}
	e.Start()
	sim.RunUntil(30 * time.Minute)
	if starts < 8 {
		t.Errorf("only %d rolling-slot starts in 30 minutes, want ≥8", starts)
	}
}

func TestCancelPendingJob(t *testing.T) {
	sim, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace())
	j := e.Submit(fixedPilot(2 * time.Minute))
	if e.QueuedPilots() != 1 {
		t.Fatalf("queued = %d", e.QueuedPilots())
	}
	if !e.Cancel(j) {
		t.Fatal("cancel failed")
	}
	if e.QueuedPilots() != 0 {
		t.Errorf("queued after cancel = %d", e.QueuedPilots())
	}
	if j.State != Done || j.Reason != ReasonCancelled {
		t.Errorf("state/reason = %v/%v", j.State, j.Reason)
	}
	if e.Cancel(j) {
		t.Error("double cancel should fail")
	}
	sim.Run()
}

func TestQueuedPilotsByLimit(t *testing.T) {
	_, e := newEmu(t, 1)
	e.DriveTrace(oneNodeTrace())
	e.Submit(fixedPilot(2 * time.Minute))
	e.Submit(fixedPilot(2 * time.Minute))
	e.Submit(fixedPilot(6 * time.Minute))
	got := e.QueuedPilotsByLimit()
	if got[2*time.Minute] != 2 || got[6*time.Minute] != 1 {
		t.Errorf("by-limit = %v", got)
	}
}

func TestUnknownPartitionPanics(t *testing.T) {
	_, e := newEmu(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("unknown partition should panic")
		}
	}()
	e.Submit(JobSpec{Partition: "nope", TimeLimit: time.Minute})
}

func TestPassCostDelaysCadence(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.PassPerVarJob = time.Second // 100 var jobs → 100 s passes
	e := New(sim, 4, cfg)
	e.AddPartition(Partition{Name: pilotPart, PriorityTier: 0})
	tr := &workload.Trace{Nodes: 4, Horizon: time.Hour}
	e.DriveTrace(tr)
	for i := 0; i < 100; i++ {
		e.Submit(JobSpec{
			Name: "var", Partition: pilotPart, Nodes: 1,
			TimeMin: 2 * time.Minute, TimeLimit: 2 * time.Hour,
		})
	}
	e.Start()
	// Count passes via pass cost: run 10 minutes; with ~100.5 s per
	// pass the scheduler manages only ~6 passes instead of 40.
	sim.RunUntil(10 * time.Minute)
	// All jobs still queued (no idle nodes), so cost stayed high. The
	// observable effect: the emulator is still alive and did not run 40
	// passes' worth of event load. Validate indirectly via QueuedPilots.
	if e.QueuedPilots() != 100 {
		t.Errorf("queue changed without idle nodes: %d", e.QueuedPilots())
	}
}

// TestFigure3Schedule reproduces the motivating example of Fig. 3: four
// prime jobs on five nodes yield the published schedule shape (makespan
// 20 min) with substantial idle time for pilots to fill.
func TestFigure3Schedule(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.SchedInterval = time.Second
	cfg.PassBase = 10 * time.Millisecond
	e := New(sim, 5, cfg)
	e.AddPartition(Partition{Name: primePart, PriorityTier: 1})

	mins := func(m int) time.Duration { return time.Duration(m) * time.Minute }
	starts := map[string]des.Time{}
	submit := func(name string, nodes, runMin int) {
		e.Submit(JobSpec{
			Name: name, Partition: primePart, Nodes: nodes,
			TimeLimit: mins(runMin), Runtime: mins(runMin),
			OnStart: func(j *Job) { starts[name] = sim.Now() },
		})
	}
	// Paper's example: job1 3 nodes × 5 min, job2 1 node × 13 min,
	// job3 2 nodes × 7 min, job4 4 nodes × 8 min.
	submit("j1", 3, 5)
	submit("j2", 1, 13)
	submit("j3", 2, 7)
	submit("j4", 4, 8)
	e.Start()
	sim.RunUntil(40 * time.Minute)

	within := func(name string, want time.Duration) {
		t.Helper()
		got, ok := starts[name]
		if !ok {
			t.Fatalf("%s never started", name)
		}
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > 15*time.Second {
			t.Errorf("%s started at %v, want ≈%v", name, got, want)
		}
	}
	within("j1", 0)
	within("j2", 0)
	within("j3", 5*time.Minute)  // after j1 frees 3 nodes
	within("j4", 12*time.Minute) // after j3 frees its 2 nodes
	// Makespan ≈ 20 min.
	end := starts["j4"] + mins(8)
	if end < 19*time.Minute || end > 21*time.Minute {
		t.Errorf("makespan = %v, want ≈20m", end)
	}
}

// TestPrimePreemptsPilot verifies tier-1 jobs reclaim pilot nodes.
func TestPrimePreemptsPilot(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.SchedInterval = time.Second
	cfg.PassBase = 10 * time.Millisecond
	e := New(sim, 2, cfg)
	e.AddPartition(Partition{Name: pilotPart, PriorityTier: 0})
	e.AddPartition(Partition{Name: primePart, PriorityTier: 1})

	var preempted bool
	pilotSpec := JobSpec{
		Name: "pilot", Partition: pilotPart, Nodes: 1,
		TimeLimit: 90 * time.Minute,
		OnSigterm: func(j *Job, at des.Time) { sim.After(time.Second, j.Exit) },
		OnEnd:     func(j *Job, r EndReason) { preempted = r == ReasonPreempted },
	}
	e.Submit(pilotSpec)
	e.Submit(pilotSpec)
	e.Start()
	sim.RunUntil(time.Minute)
	if e.Cluster().Count(cluster.Pilot) != 2 {
		t.Fatalf("pilots running = %d, want 2", e.Cluster().Count(cluster.Pilot))
	}
	// A prime job needing both nodes preempts both pilots.
	e.Submit(JobSpec{
		Name: "prime", Partition: primePart, Nodes: 2,
		TimeLimit: 10 * time.Minute, Runtime: 10 * time.Minute,
	})
	sim.RunUntil(3 * time.Minute)
	if e.Cluster().Count(cluster.Busy) != 2 {
		t.Errorf("busy = %d, want 2", e.Cluster().Count(cluster.Busy))
	}
	if !preempted {
		t.Error("pilot not preempted by prime job")
	}
	if e.Preempted < 2 {
		t.Errorf("preempted counter = %d, want 2", e.Preempted)
	}
}

// TestBackfillDoesNotDelayHead: a wide head job reserves; a long narrow
// job must not start if it would push the head's start back.
func TestBackfillDoesNotDelayHead(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.SchedInterval = time.Second
	cfg.PassBase = 10 * time.Millisecond
	e := New(sim, 4, cfg)
	e.AddPartition(Partition{Name: primePart, PriorityTier: 1})

	starts := map[string]des.Time{}
	submit := func(name string, nodes, limitMin, runMin int) {
		e.Submit(JobSpec{
			Name: name, Partition: primePart, Nodes: nodes,
			TimeLimit: time.Duration(limitMin) * time.Minute,
			Runtime:   time.Duration(runMin) * time.Minute,
			OnStart:   func(j *Job) { starts[name] = sim.Now() },
		})
	}
	submit("running", 3, 10, 10) // occupies 3 of 4 nodes until t=10m
	e.Start()
	sim.RunUntil(2 * time.Second)
	submit("head", 4, 10, 10) // needs all nodes → shadow = 10m
	submit("short", 1, 8, 8)  // fits before the shadow → backfill OK
	submit("long", 1, 30, 30) // would overrun the shadow on the last free node
	sim.RunUntil(30 * time.Minute)

	if _, ok := starts["short"]; !ok {
		t.Fatal("short job was not backfilled")
	}
	if starts["short"] > 5*time.Second+2*time.Second {
		t.Errorf("short started at %v, want immediately", starts["short"])
	}
	if got := starts["head"]; got < 9*time.Minute || got > 11*time.Minute {
		t.Errorf("head started at %v, want ≈10m", got)
	}
	if starts["long"] < starts["head"] {
		t.Errorf("long (%v) started before head (%v): backfill delayed the head",
			starts["long"], starts["head"])
	}
}

// TestTraceModeCoverageSanity runs a realistic small trace end to end and
// checks the pilots cover a meaningful share of idle time.
func TestTraceModeCoverageSanity(t *testing.T) {
	sim := des.New()
	e := New(sim, 64, DefaultConfig())
	e.AddPartition(Partition{Name: pilotPart, PriorityTier: 0})
	cfg := workload.DefaultIdleProcess(64, 4*time.Hour, 21)
	cfg.MeanIdleNodes = 6
	tr := cfg.Generate()
	e.DriveTrace(tr)

	// Keep a supply of fib-like pilots.
	lengths := []time.Duration{2, 4, 6, 8, 14, 22, 34, 56, 90}
	var pilotTime time.Duration
	var replenish func()
	submitOne := func(l time.Duration) {
		e.Submit(JobSpec{
			Name: "pilot", Partition: pilotPart, Nodes: 1,
			TimeLimit: l * time.Minute, Priority: int64(l),
			OnSigterm: func(j *Job, at des.Time) { sim.After(2*time.Second, j.Exit) },
			OnEnd: func(j *Job, r EndReason) {
				if j.Started > 0 {
					pilotTime += j.Ended - j.Started
				}
			},
		})
	}
	replenish = func() {
		// Live histogram (see QueuedPilotsByLimit): each submitOne
		// raises the count being topped up.
		byLimit := e.QueuedPilotsByLimit()
		for _, l := range lengths {
			for byLimit[l*time.Minute] < 10 {
				submitOne(l)
			}
		}
	}
	sim.EveryFrom(0, 15*time.Second, replenish)
	e.Start()
	sim.RunUntil(4 * time.Hour)

	idleSurface := tr.TotalIdle()
	cov := float64(pilotTime) / float64(idleSurface)
	if cov < 0.5 || cov > 1.05 {
		t.Errorf("pilot coverage = %.2f of idle surface, want 0.5–1.0", cov)
	}
	if e.Started < 20 {
		t.Errorf("only %d pilots started", e.Started)
	}
}
