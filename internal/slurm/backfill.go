package slurm

import (
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
)

// Full-scheduler mode: prime jobs submitted to tier ≥1 partitions are
// scheduled by an EASY backfill pass. Pilot jobs remain strictly
// subordinate: a prime job preempts pilots on the nodes it claims, and
// pilot placement respects the head-of-queue reservation so pilots never
// delay a prime job (§III-D: "Slurm never allots a job with a lower
// priority tier if it would delay any job with a higher priority tier").

// reservation records the head job's planned start: the shadow time and
// the specific currently-available nodes the plan relies on.
type reservation struct {
	shadow des.Time
	nodes  map[int]bool
}

// schedulePrime runs one EASY backfill pass over the prime queue.
func (e *Emulator) schedulePrime() {
	e.headReservation = reservation{}
	if len(e.primeQueue) == 0 {
		return
	}
	now := e.sim.Now()
	sort.SliceStable(e.primeQueue, func(i, j int) bool {
		a, b := e.primeQueue[i], e.primeQueue[j]
		if a.Spec.Priority != b.Spec.Priority {
			return a.Spec.Priority > b.Spec.Priority
		}
		return a.Submitted < b.Submitted
	})

	// Start jobs from the head while they fit.
	for len(e.primeQueue) > 0 {
		head := e.primeQueue[0]
		nodes := e.claimableNodes(head.Spec.Nodes)
		if nodes == nil {
			break
		}
		e.primeQueue = e.primeQueue[1:]
		e.startPrime(head, nodes)
	}
	if len(e.primeQueue) == 0 {
		return
	}

	// Head does not fit: compute its reservation against running prime
	// jobs' declared ends, then backfill later jobs around it.
	head := e.primeQueue[0]
	shadow, needFromNow := e.computeShadow(head.Spec.Nodes, now)
	avail := e.availableNow()
	reserved := map[int]bool{}
	for i := 0; i < needFromNow && i < len(avail); i++ {
		reserved[avail[i]] = true
	}
	e.headReservation = reservation{shadow: shadow, nodes: reserved}

	for i := 1; i < len(e.primeQueue); i++ {
		j := e.primeQueue[i]
		if j.Spec.Nodes > len(avail) {
			continue
		}
		fitsBeforeShadow := now+j.Spec.TimeLimit <= shadow
		sparesReserved := j.Spec.Nodes <= len(avail)-needFromNow
		if !fitsBeforeShadow && !sparesReserved {
			continue
		}
		var pick []int
		if fitsBeforeShadow {
			pick = e.claimableNodes(j.Spec.Nodes)
		} else {
			pick = e.claimableNodesAvoiding(j.Spec.Nodes, reserved)
		}
		if pick == nil {
			continue
		}
		e.primeQueue = append(e.primeQueue[:i], e.primeQueue[i+1:]...)
		i--
		e.startPrime(j, pick)
		avail = e.availableNow()
		for n := range reserved {
			if !e.isAvailable(n) {
				delete(reserved, n)
			}
		}
	}
}

func (e *Emulator) startPrime(j *Job, nodes []int) {
	// Preempt any pilots on the claimed nodes.
	for _, n := range nodes {
		if p := e.runningByNode[n]; p != nil {
			e.sigterm(p, ReasonPreempted)
			e.detach(p)
		}
	}
	e.startJob(j, nodes, j.Spec.TimeLimit, cluster.Busy)
}

// availableNow lists nodes usable by a prime job right now: idle nodes
// plus nodes running preemptible pilots, sorted ascending.
func (e *Emulator) availableNow() []int {
	out := append([]int(nil), e.cl.Nodes(cluster.Idle)...)
	out = append(out, e.cl.Nodes(cluster.Pilot)...)
	sort.Ints(out)
	return out
}

func (e *Emulator) isAvailable(n int) bool {
	s := e.cl.State(n)
	return s == cluster.Idle || s == cluster.Pilot
}

// claimableNodes picks n nodes for a prime job, preferring idle nodes
// over pilot-occupied ones (fewer preemptions), lowest ids first.
// Returns nil if not enough nodes are available.
func (e *Emulator) claimableNodes(n int) []int {
	idle := append([]int(nil), e.cl.Nodes(cluster.Idle)...)
	pilot := append([]int(nil), e.cl.Nodes(cluster.Pilot)...)
	sort.Ints(idle)
	sort.Ints(pilot)
	if len(idle)+len(pilot) < n {
		return nil
	}
	out := make([]int, 0, n)
	for _, id := range idle {
		if len(out) == n {
			return out
		}
		out = append(out, id)
	}
	for _, id := range pilot {
		if len(out) == n {
			return out
		}
		out = append(out, id)
	}
	return out
}

// claimableNodesAvoiding picks n nodes excluding the reserved set.
func (e *Emulator) claimableNodesAvoiding(n int, avoid map[int]bool) []int {
	idle := append([]int(nil), e.cl.Nodes(cluster.Idle)...)
	pilot := append([]int(nil), e.cl.Nodes(cluster.Pilot)...)
	sort.Ints(idle)
	sort.Ints(pilot)
	out := make([]int, 0, n)
	for _, set := range [][]int{idle, pilot} {
		for _, id := range set {
			if avoid[id] {
				continue
			}
			if len(out) == n {
				return out
			}
			out = append(out, id)
		}
	}
	if len(out) == n {
		return out
	}
	return nil
}

// computeShadow walks the running prime jobs' declared ends to find the
// earliest instant when `need` nodes are available, and how many of the
// currently-available nodes the plan relies on.
func (e *Emulator) computeShadow(need int, now des.Time) (shadow des.Time, needFromNow int) {
	avail := len(e.availableNow())
	if avail >= need {
		return now, need
	}
	type end struct {
		at    des.Time
		nodes int
	}
	var ends []end
	seen := map[*Job]bool{}
	for _, j := range e.runningByNode {
		if j == nil || seen[j] || e.cl.State(j.NodeIDs[0]) != cluster.Busy {
			continue
		}
		seen[j] = true
		ends = append(ends, end{at: j.Started + j.Granted, nodes: len(j.NodeIDs)})
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i].at < ends[j].at })
	have := avail
	for _, en := range ends {
		have += en.nodes
		if have >= need {
			return en.at, avail
		}
	}
	// Not satisfiable from declared info: plan at the backfill horizon.
	return now + e.cfg.BackfillWindow, avail
}

// reservationWindow bounds a pilot's window on a node in full-scheduler
// mode: nodes claimed by the head reservation are free only until the
// shadow time; others are free through the backfill window.
func (e *Emulator) reservationWindow(node int, now des.Time) time.Duration {
	if e.headReservation.nodes[node] && e.headReservation.shadow > now {
		return e.headReservation.shadow - now
	}
	return e.cfg.BackfillWindow
}

// onPrimeNodeFree schedules a prompt prime pass after a prime job frees
// nodes (debounced to one pending pass).
func (e *Emulator) onPrimeNodeFree() {
	if e.primePassPending || len(e.primeQueue) == 0 {
		return
	}
	e.primePassPending = true
	e.sim.After(time.Second, func() {
		e.primePassPending = false
		e.schedulePrime()
	})
}
