package loadgen

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/whisk"
)

// scriptedBackend returns statuses from a fixed cycle.
type scriptedBackend struct {
	sim    *des.Sim
	cycle  []whisk.Status
	delay  time.Duration
	served int
}

func (s *scriptedBackend) Invoke(action string, done func(*whisk.Invocation)) {
	status := s.cycle[s.served%len(s.cycle)]
	s.served++
	inv := &whisk.Invocation{Submitted: s.sim.Now(), InvokerID: -1}
	s.sim.After(s.delay, func() {
		inv.Completed = s.sim.Now()
		inv.Status = status
		done(inv)
	})
}

func TestConstantRateIssuesExactCount(t *testing.T) {
	sim := des.New()
	be := &scriptedBackend{sim: sim, cycle: []whisk.Status{whisk.StatusSuccess}, delay: 10 * time.Millisecond}
	g := New(sim, be, Config{QPS: 10, Actions: []string{"f"}, Duration: time.Minute})
	g.Start()
	sim.RunUntil(2 * time.Minute)
	if g.Issued != 600 {
		t.Errorf("issued = %d, want 600 (10 QPS × 60 s)", g.Issued)
	}
	if g.Completed != g.Issued {
		t.Errorf("completed = %d of %d", g.Completed, g.Issued)
	}
}

func TestClassificationAndReport(t *testing.T) {
	sim := des.New()
	cycle := []whisk.Status{
		whisk.StatusSuccess, whisk.StatusSuccess, whisk.StatusSuccess,
		whisk.StatusFailed, whisk.StatusTimeout, whisk.Status503,
	}
	be := &scriptedBackend{sim: sim, cycle: cycle, delay: 5 * time.Millisecond}
	g := New(sim, be, Config{QPS: 60, Actions: ActionNames("fn", 10), Duration: time.Minute})
	g.Start()
	sim.RunUntil(2 * time.Minute)
	rep := g.Report()
	if rep.Issued != 3600 {
		t.Fatalf("issued = %d", rep.Issued)
	}
	// Cycle of 6: 5/6 invoked, of which 3/5 success, 1/5 failed, 1/5 lost.
	if d := rep.InvokedShare - 5.0/6.0; d < -0.01 || d > 0.01 {
		t.Errorf("invoked share = %.4f, want 0.8333", rep.InvokedShare)
	}
	if d := rep.SuccessShare - 0.6; d < -0.01 || d > 0.01 {
		t.Errorf("success share = %.4f, want 0.6", rep.SuccessShare)
	}
	if d := rep.LostShare - 0.2; d < -0.01 || d > 0.01 {
		t.Errorf("lost share = %.4f, want 0.2", rep.LostShare)
	}
	if rep.MedianLatency < 4*time.Millisecond || rep.MedianLatency > 6*time.Millisecond {
		t.Errorf("median latency = %v, want ≈5ms", rep.MedianLatency)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestPerMinuteSeries(t *testing.T) {
	sim := des.New()
	be := &scriptedBackend{sim: sim, cycle: []whisk.Status{whisk.StatusSuccess}, delay: time.Millisecond}
	g := New(sim, be, Config{QPS: 2, Actions: []string{"f"}, Duration: 3 * time.Minute})
	g.Start()
	sim.RunUntil(5 * time.Minute)
	rows := g.Series.Rows()
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Full middle minute carries 2 QPS × 60 s = 120 successes.
	if got := rows[1].Counts[LabelSuccess]; got != 120 {
		t.Errorf("minute-1 successes = %d, want 120", got)
	}
}

func TestRoundRobinActions(t *testing.T) {
	sim := des.New()
	seen := map[string]int{}
	be := &recordingBackend{sim: sim, seen: seen}
	g := New(sim, be, Config{QPS: 100, Actions: ActionNames("a", 4), Duration: time.Second})
	g.Start()
	sim.RunUntil(2 * time.Second)
	if len(seen) != 4 {
		t.Fatalf("actions seen = %d, want 4", len(seen))
	}
	for name, n := range seen {
		if n != 25 {
			t.Errorf("action %s called %d times, want 25", name, n)
		}
	}
}

type recordingBackend struct {
	sim  *des.Sim
	seen map[string]int
}

func (r *recordingBackend) Invoke(action string, done func(*whisk.Invocation)) {
	r.seen[action]++
	inv := &whisk.Invocation{Submitted: r.sim.Now()}
	r.sim.After(time.Millisecond, func() {
		inv.Completed = r.sim.Now()
		inv.Status = whisk.StatusSuccess
		done(inv)
	})
}

func TestActionNames(t *testing.T) {
	names := ActionNames("sleep", 100)
	if len(names) != 100 {
		t.Fatalf("len = %d", len(names))
	}
	if names[0] != "sleep-000" || names[99] != "sleep-099" {
		t.Errorf("names = %s..%s", names[0], names[99])
	}
	uniq := map[string]bool{}
	for _, n := range names {
		uniq[n] = true
	}
	if len(uniq) != 100 {
		t.Error("names not unique")
	}
}

func TestBadConfigPanics(t *testing.T) {
	sim := des.New()
	defer func() {
		if recover() == nil {
			t.Error("zero QPS should panic")
		}
	}()
	New(sim, &scriptedBackend{sim: sim}, Config{QPS: 0, Actions: []string{"f"}})
}
