// Package loadgen reproduces the Gatling-based measurement client of
// §V-C: an open-loop constant-rate generator that calls a set of
// deployed functions round-robin, classifies every response, and
// aggregates per-minute series (Figs. 5b and 6b) plus summary rates.
package loadgen

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/whisk"
)

// Backend matches core.Backend (duplicated locally to avoid an import
// cycle); both whisk.Controller and core.Wrapper satisfy it.
type Backend interface {
	Invoke(action string, done func(*whisk.Invocation))
}

// controllerBackend adapts whisk.Controller's two-return signature.
type controllerBackend struct{ c *whisk.Controller }

func (cb controllerBackend) Invoke(action string, done func(*whisk.Invocation)) {
	cb.c.Invoke(action, done)
}

// ForController wraps a controller as a Backend.
func ForController(c *whisk.Controller) Backend { return controllerBackend{c} }

// Config parameterizes the generator. The paper used 10 QPS against
// 100 identically-sleeping functions for 24 hours (864,000 requests).
type Config struct {
	QPS       float64
	Actions   []string
	Duration  time.Duration
	BucketLen time.Duration // aggregation bucket (1 minute in Figs. 5b/6b)

	// Weights optionally skews action selection (e.g. the Zipf-like
	// popularity of production FaaS workloads); nil means round-robin.
	// Must match Actions in length when set.
	Weights []float64

	// Seed drives the weighted selection (unused for round-robin).
	Seed int64

	// Streaming switches the collectors from exact buffered series
	// (MinuteSeries + Sample, O(requests) memory) to O(1)-memory
	// streaming sketches (WindowedCounts + TDigest). Totals and shares
	// stay exact; latency quantiles come within stats.Epsilon rank
	// error; per-minute rows are limited to the retained tail. Off by
	// default so every golden-pinned artifact keeps exact collection.
	Streaming bool
}

// DefaultConfig returns the §V-C setup over the given action names.
func DefaultConfig(actions []string, duration time.Duration) Config {
	return Config{QPS: 10, Actions: actions, Duration: duration, BucketLen: time.Minute}
}

// Labels used in the per-minute series.
const (
	LabelSuccess = "success"
	LabelFailed  = "failed"
	LabelLost    = "lost" // timeouts: requests that never came back
	Label503     = "503"
)

// Generator drives the load and accumulates results.
type Generator struct {
	sim     *des.Sim
	backend Backend
	cfg     Config

	// Series counts response classes per bucket; Latencies collects
	// successful-response latencies in seconds. Both are buffered-exact
	// by default and streaming sketches under Config.Streaming.
	Series    stats.SeriesCollector
	Latencies stats.Collector

	// Counters.
	Issued    int
	Completed int

	ticker *des.Ticker
	picker *dist.Discrete
	rng    *rand.Rand

	// doneFn is the completion callback handed to every Invoke: one
	// method value for the whole run, not one closure per request
	// (864,000 on a paper day). The per-request timestamps it needs
	// (issue and completion instants) live on the invocation itself.
	doneFn func(*whisk.Invocation)
}

// New builds a generator.
func New(sim *des.Sim, backend Backend, cfg Config) *Generator {
	if cfg.QPS <= 0 || len(cfg.Actions) == 0 {
		panic("loadgen: need a positive rate and at least one action")
	}
	if cfg.BucketLen <= 0 {
		cfg.BucketLen = time.Minute
	}
	g := &Generator{
		sim:       sim,
		backend:   backend,
		cfg:       cfg,
		Series:    stats.NewMinuteSeries(cfg.BucketLen),
		Latencies: &stats.Sample{},
	}
	if cfg.Streaming {
		g.Series = stats.NewWindowedCounts(cfg.BucketLen, stats.DefaultWindowKeep)
		g.Latencies = stats.NewTDigest(stats.DefaultCompression)
	}
	g.doneFn = g.onDone
	if cfg.Weights != nil {
		if len(cfg.Weights) != len(cfg.Actions) {
			panic("loadgen: weights must match actions")
		}
		g.picker = dist.NewDiscrete(indexValues(len(cfg.Actions)), cfg.Weights)
		g.rng = dist.NewRand(cfg.Seed)
	}
	return g
}

func indexValues(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// Start begins issuing requests at the configured rate, stopping after
// exactly round(QPS × Duration) requests (864,000 in the paper's runs).
func (g *Generator) Start() {
	interval := time.Duration(float64(time.Second) / g.cfg.QPS)
	target := int(g.cfg.QPS*g.cfg.Duration.Seconds() + 0.5)
	g.ticker = g.sim.EveryFrom(g.sim.Now(), interval, func() {
		if g.Issued >= target {
			g.ticker.Stop()
			return
		}
		g.issue()
	})
}

func (g *Generator) issue() {
	var action string
	if g.picker != nil {
		action = g.cfg.Actions[int(g.picker.Sample(g.rng))]
	} else {
		action = g.cfg.Actions[g.Issued%len(g.cfg.Actions)]
	}
	g.Issued++
	g.backend.Invoke(action, g.doneFn)
}

// onDone classifies one response. Completion fires synchronously with
// the invocation's egress event, so inv.Completed is the current
// instant and inv.Submitted the issue instant — the same values the
// pre-refactor per-request closure captured.
func (g *Generator) onDone(inv *whisk.Invocation) {
	g.Completed++
	at := inv.Completed
	switch inv.Status {
	case whisk.StatusSuccess:
		g.Series.Add(at, LabelSuccess)
		g.Latencies.AddDuration(inv.Completed - inv.Submitted)
	case whisk.StatusFailed:
		g.Series.Add(at, LabelFailed)
	case whisk.StatusTimeout:
		g.Series.Add(at, LabelLost)
	case whisk.Status503:
		g.Series.Add(at, Label503)
	}
}

// Report is the summary of one responsiveness run, in the shape the
// paper reports in §V-C.
type Report struct {
	Issued int

	// InvokedShare is the fraction of requests the controller accepted
	// (95.29% on the fib day; 78.28% on the var day); the rest 503'd.
	InvokedShare float64

	// Of the invoked requests: SuccessShare ended with success (95.19%
	// fib / 96.99% var), LostShare never finished, FailedShare errored.
	SuccessShare float64
	LostShare    float64
	FailedShare  float64

	// MedianLatency of successful calls (865 ms fib / 1,227 ms var).
	MedianLatency time.Duration

	Totals map[string]int
}

// Report reduces the counters. Call after the run has drained.
func (g *Generator) Report() Report {
	totals := g.Series.Totals()
	rep := Report{Issued: g.Issued, Totals: totals}
	invoked := totals[LabelSuccess] + totals[LabelFailed] + totals[LabelLost]
	total := invoked + totals[Label503]
	if total > 0 {
		rep.InvokedShare = float64(invoked) / float64(total)
	}
	if invoked > 0 {
		rep.SuccessShare = float64(totals[LabelSuccess]) / float64(invoked)
		rep.LostShare = float64(totals[LabelLost]) / float64(invoked)
		rep.FailedShare = float64(totals[LabelFailed]) / float64(invoked)
	}
	if g.Latencies.Len() > 0 {
		rep.MedianLatency = time.Duration(g.Latencies.Median() * float64(time.Second))
	}
	return rep
}

// String renders the report like the paper's prose.
func (r Report) String() string {
	return fmt.Sprintf(
		"issued=%d invoked=%.2f%% success=%.2f%% lost=%.2f%% failed=%.2f%% median=%v",
		r.Issued, 100*r.InvokedShare, 100*r.SuccessShare,
		100*r.LostShare, 100*r.FailedShare, r.MedianLatency)
}

// ActionNames builds the paper's "100 identical functions with
// different names" list.
func ActionNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%03d", prefix, i)
	}
	return out
}
