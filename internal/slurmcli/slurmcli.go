// Package slurmcli provides a textual porcelain over the Slurm emulator
// mirroring the commands the paper's job manager uses (§III-D: "the job
// manager is implemented as a shell script application, utilizing the
// available job management commands, mimicking the standard user
// interaction with the cluster"): sbatch, squeue, scancel, and sinfo.
//
// The porcelain parses a Slurm-compatible flag subset and renders
// Slurm-like tables, so scripts written against the real commands port
// to the emulator unchanged.
package slurmcli

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/slurm"
)

// Shell executes Slurm-style command lines against an emulator.
type Shell struct {
	emu  *slurm.Emulator
	jobs map[int]*slurm.Job
}

// New wraps an emulator.
func New(emu *slurm.Emulator) *Shell {
	return &Shell{emu: emu, jobs: map[int]*slurm.Job{}}
}

// Exec parses and runs one command line, returning its output.
func (s *Shell) Exec(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", fmt.Errorf("slurmcli: empty command")
	}
	switch fields[0] {
	case "sbatch":
		return s.sbatch(fields[1:])
	case "squeue":
		return s.squeue(fields[1:])
	case "scancel":
		return s.scancel(fields[1:])
	case "sinfo":
		return s.sinfo()
	default:
		return "", fmt.Errorf("slurmcli: unknown command %q", fields[0])
	}
}

// Job returns a submitted job by its sbatch id.
func (s *Shell) Job(id int) *slurm.Job { return s.jobs[id] }

// sbatch parses the §III-D submission flags:
//
//	sbatch --partition=NAME --nodes=N --time=MIN [--time-min=MIN]
//	       [--priority=P] [--job-name=NAME]
//
// Times accept Slurm's "minutes" and "HH:MM:SS" forms.
func (s *Shell) sbatch(args []string) (string, error) {
	spec := slurm.JobSpec{Nodes: 1}
	for _, a := range args {
		key, val, ok := splitFlag(a)
		if !ok {
			return "", fmt.Errorf("sbatch: bad argument %q", a)
		}
		switch key {
		case "--partition", "-p":
			spec.Partition = val
		case "--job-name", "-J":
			spec.Name = val
		case "--nodes", "-N":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return "", fmt.Errorf("sbatch: bad node count %q", val)
			}
			spec.Nodes = n
		case "--time", "-t":
			d, err := parseSlurmTime(val)
			if err != nil {
				return "", fmt.Errorf("sbatch: %v", err)
			}
			spec.TimeLimit = d
		case "--time-min":
			d, err := parseSlurmTime(val)
			if err != nil {
				return "", fmt.Errorf("sbatch: %v", err)
			}
			spec.TimeMin = d
		case "--priority":
			p, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return "", fmt.Errorf("sbatch: bad priority %q", val)
			}
			spec.Priority = p
		default:
			return "", fmt.Errorf("sbatch: unsupported flag %q", key)
		}
	}
	if spec.Partition == "" {
		return "", fmt.Errorf("sbatch: --partition is required")
	}
	if spec.TimeLimit <= 0 {
		return "", fmt.Errorf("sbatch: --time is required")
	}
	j := s.emu.Submit(spec)
	s.jobs[j.ID] = j
	return fmt.Sprintf("Submitted batch job %d", j.ID), nil
}

// squeue renders pending/running jobs submitted through this shell:
//
//	squeue [--state=pending|running|completing]
func (s *Shell) squeue(args []string) (string, error) {
	var filter slurm.JobState
	filtered := false
	for _, a := range args {
		key, val, ok := splitFlag(a)
		if !ok || (key != "--state" && key != "-t") {
			return "", fmt.Errorf("squeue: unsupported argument %q", a)
		}
		switch strings.ToLower(val) {
		case "pending", "pd":
			filter, filtered = slurm.Pending, true
		case "running", "r":
			filter, filtered = slurm.Running, true
		case "completing", "cg":
			filter, filtered = slurm.Completing, true
		default:
			return "", fmt.Errorf("squeue: unknown state %q", val)
		}
	}
	ids := make([]int, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %-10s %-12s %-4s %-6s %-10s\n",
		"JOBID", "PARTITION", "NAME", "ST", "NODES", "TIME")
	for _, id := range ids {
		j := s.jobs[id]
		if j.State == slurm.Done {
			continue
		}
		if filtered && j.State != filter {
			continue
		}
		elapsed := time.Duration(0)
		if j.State != slurm.Pending {
			elapsed = s.emu.Sim().Now() - j.Started
		}
		fmt.Fprintf(&b, "%10d %-10s %-12s %-4s %-6d %-10s\n",
			j.ID, j.Spec.Partition, orDefault(j.Spec.Name, "(none)"),
			stateCode(j.State), j.Spec.Nodes, formatElapsed(elapsed))
	}
	return b.String(), nil
}

// scancel cancels a pending job: scancel JOBID
func (s *Shell) scancel(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("scancel: want exactly one job id")
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		return "", fmt.Errorf("scancel: bad job id %q", args[0])
	}
	j, ok := s.jobs[id]
	if !ok {
		return "", fmt.Errorf("scancel: unknown job %d", id)
	}
	if !s.emu.Cancel(j) {
		return "", fmt.Errorf("scancel: job %d is not pending", id)
	}
	return "", nil
}

// sinfo summarizes node states like `sinfo -o "%t %D"`.
func (s *Shell) sinfo() (string, error) {
	cl := s.emu.Cluster()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s\n", "STATE", "NODES")
	for _, st := range []cluster.State{cluster.Idle, cluster.Busy, cluster.Pilot, cluster.Reserved, cluster.Down} {
		if n := cl.Count(st); n > 0 {
			fmt.Fprintf(&b, "%-10s %6d\n", st.String(), n)
		}
	}
	return b.String(), nil
}

func splitFlag(a string) (key, val string, ok bool) {
	if i := strings.IndexByte(a, '='); i > 0 {
		return a[:i], a[i+1:], true
	}
	return "", "", false
}

// parseSlurmTime accepts plain minutes ("90"), MM:SS ("90:00") and
// HH:MM:SS ("1:30:00"), like Slurm's --time.
func parseSlurmTime(v string) (time.Duration, error) {
	parts := strings.Split(v, ":")
	switch len(parts) {
	case 1:
		m, err := strconv.Atoi(parts[0])
		if err != nil || m <= 0 {
			return 0, fmt.Errorf("bad time %q", v)
		}
		return time.Duration(m) * time.Minute, nil
	case 2:
		m, err1 := strconv.Atoi(parts[0])
		sec, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || m < 0 || sec < 0 || sec > 59 {
			return 0, fmt.Errorf("bad time %q", v)
		}
		return time.Duration(m)*time.Minute + time.Duration(sec)*time.Second, nil
	case 3:
		h, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		sec, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || h < 0 || m > 59 || sec > 59 {
			return 0, fmt.Errorf("bad time %q", v)
		}
		return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute +
			time.Duration(sec)*time.Second, nil
	default:
		return 0, fmt.Errorf("bad time %q", v)
	}
}

func stateCode(st slurm.JobState) string {
	switch st {
	case slurm.Pending:
		return "PD"
	case slurm.Running:
		return "R"
	case slurm.Completing:
		return "CG"
	default:
		return "??"
	}
}

func formatElapsed(d time.Duration) string {
	d = d.Round(time.Second)
	h := d / time.Hour
	m := (d % time.Hour) / time.Minute
	sec := (d % time.Minute) / time.Second
	if h > 0 {
		return fmt.Sprintf("%d:%02d:%02d", h, m, sec)
	}
	return fmt.Sprintf("%d:%02d", m, sec)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
