package slurmcli

import (
	"strings"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/slurm"
	"repro/internal/workload"
)

func newShell(t *testing.T) (*des.Sim, *Shell) {
	t.Helper()
	sim := des.New()
	emu := slurm.New(sim, 4, slurm.DefaultConfig())
	emu.AddPartition(slurm.Partition{Name: "whisk", PriorityTier: 0})
	emu.AddPartition(slurm.Partition{Name: "hpc", PriorityTier: 1})
	emu.DriveTrace(&workload.Trace{Nodes: 4, Horizon: 2 * time.Hour, Periods: []workload.IdlePeriod{
		{Node: 0, Start: 0, End: time.Hour, DeclaredEnd: time.Hour},
	}})
	emu.Start()
	return sim, New(emu)
}

func TestSbatchAndSqueue(t *testing.T) {
	sim, sh := newShell(t)
	out, err := sh.Exec("sbatch --partition=whisk --time=14 --priority=14 --job-name=pilot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Submitted batch job 0") {
		t.Fatalf("sbatch output %q", out)
	}
	out, err = sh.Exec("squeue")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PD") || !strings.Contains(out, "pilot") {
		t.Fatalf("squeue output:\n%s", out)
	}
	sim.RunUntil(time.Minute)
	out, _ = sh.Exec("squeue --state=running")
	if !strings.Contains(out, " R ") {
		t.Fatalf("job not running:\n%s", out)
	}
	out, _ = sh.Exec("squeue --state=pending")
	if strings.Contains(out, "pilot") {
		t.Fatalf("pending filter leaked running job:\n%s", out)
	}
}

func TestSbatchTimeFormats(t *testing.T) {
	_, sh := newShell(t)
	cases := map[string]time.Duration{
		"90":      90 * time.Minute,
		"90:00":   90 * time.Minute,
		"1:30:00": 90 * time.Minute,
		"0:02:30": 2*time.Minute + 30*time.Second,
	}
	id := 0
	for in, want := range cases {
		if _, err := sh.Exec("sbatch --partition=whisk --time=" + in); err != nil {
			t.Fatalf("time %q: %v", in, err)
		}
		if got := sh.Job(id).Spec.TimeLimit; got != want {
			t.Errorf("time %q parsed as %v, want %v", in, got, want)
		}
		id++
	}
}

func TestSbatchVariableLength(t *testing.T) {
	_, sh := newShell(t)
	if _, err := sh.Exec("sbatch --partition=whisk --time-min=2 --time=120"); err != nil {
		t.Fatal(err)
	}
	j := sh.Job(0)
	if !j.Variable() {
		t.Error("job should be variable-length")
	}
	if j.Spec.TimeMin != 2*time.Minute || j.Spec.TimeLimit != 120*time.Minute {
		t.Errorf("parsed %v/%v", j.Spec.TimeMin, j.Spec.TimeLimit)
	}
}

func TestSbatchErrors(t *testing.T) {
	_, sh := newShell(t)
	bad := []string{
		"sbatch --time=10",                          // no partition
		"sbatch --partition=whisk",                  // no time
		"sbatch --partition=whisk --time=0",         // bad time
		"sbatch --partition=whisk --time=1:99:00",   // bad minutes
		"sbatch --partition=whisk --time=10 --x=1",  // unknown flag
		"sbatch --partition=whisk --time=10 nodes4", // not a flag
	}
	for _, cmd := range bad {
		if _, err := sh.Exec(cmd); err == nil {
			t.Errorf("%q should fail", cmd)
		}
	}
}

func TestScancel(t *testing.T) {
	_, sh := newShell(t)
	sh.Exec("sbatch --partition=whisk --time=10")
	if _, err := sh.Exec("scancel 0"); err != nil {
		t.Fatal(err)
	}
	if sh.Job(0).State != slurm.Done {
		t.Error("job not cancelled")
	}
	if _, err := sh.Exec("scancel 0"); err == nil {
		t.Error("double cancel should fail")
	}
	if _, err := sh.Exec("scancel 99"); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestSinfo(t *testing.T) {
	sim, sh := newShell(t)
	sim.RunUntil(time.Second) // let the trace's idle-start events fire
	out, err := sh.Exec("sinfo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "idle") || !strings.Contains(out, "busy") {
		t.Fatalf("sinfo output:\n%s", out)
	}
	// Start a pilot and observe the pilot state appear.
	sh.Exec("sbatch --partition=whisk --time=30")
	sim.RunUntil(time.Minute)
	out, _ = sh.Exec("sinfo")
	if !strings.Contains(out, "pilot") {
		t.Fatalf("sinfo missing pilot state:\n%s", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	_, sh := newShell(t)
	if _, err := sh.Exec("scontrol show"); err == nil {
		t.Error("unknown command should fail")
	}
	if _, err := sh.Exec(""); err == nil {
		t.Error("empty command should fail")
	}
}

// TestScriptedManagerLoop drives the §III-D replenishment loop purely
// through the porcelain, like the paper's shell script: keep 10 jobs of
// each fib length queued, re-submitting every 15 s.
func TestScriptedManagerLoop(t *testing.T) {
	sim, sh := newShell(t)
	lengths := []string{"2", "4", "6"}
	queued := func() map[string]int {
		out := map[string]int{}
		for id := 0; ; id++ {
			j := sh.Job(id)
			if j == nil {
				return out
			}
			if j.State == slurm.Pending {
				out[j.Spec.TimeLimit.String()]++
			}
		}
	}
	replenish := func() {
		q := queued()
		for _, l := range lengths {
			want := 3
			d, _ := parseSlurmTime(l)
			for q[d.String()] < want {
				if _, err := sh.Exec("sbatch --partition=whisk --time=" + l + " --priority=" + l); err != nil {
					t.Fatal(err)
				}
				q[d.String()]++
			}
		}
	}
	sim.EveryFrom(0, 15*time.Second, replenish)
	sim.RunUntil(10 * time.Minute)
	// The single idle node keeps consuming jobs; the queue stays full.
	q := queued()
	for _, l := range []string{"2m0s", "4m0s", "6m0s"} {
		if q[l] != 3 {
			t.Errorf("queued[%s] = %d, want 3", l, q[l])
		}
	}
}
