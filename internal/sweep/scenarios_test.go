package sweep

import (
	"math"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// TestSweepScenariosValidatesUpfront: a bad cell fails the whole call
// before any replica runs.
func TestSweepScenariosValidatesUpfront(t *testing.T) {
	cfg := Config{Replicas: 2, BaseSeed: 1}
	cases := []struct {
		name    string
		cells   []ScenarioPoint
		wantErr string
	}{
		{"unknown scenario", []ScenarioPoint{{Scenario: "bogus"}}, "unknown scenario"},
		{"unknown option", []ScenarioPoint{{Scenario: "fig2", Options: []scenario.Option{scenario.WithOption("jobz", "1")}}}, "no option"},
		{"bad value", []ScenarioPoint{{Scenario: "fig2", Options: []scenario.Option{scenario.WithOption("jobs", "many")}}}, "does not parse"},
	}
	for _, tc := range cases {
		if res, err := SweepScenarios(cfg, tc.cells); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		} else if res != nil {
			t.Errorf("%s: validation failure still returned results", tc.name)
		}
	}
}

// TestSweepScenariosSurfacesRuntimeErrors: a cell that passes upfront
// validation but fails in every replica (federated-day's "routing"
// option parses as a plain string; the names are only resolved against
// the router registry inside Run) must come back as a joined error
// naming the cell and seeds — not as a silently empty result.
func TestSweepScenariosSurfacesRuntimeErrors(t *testing.T) {
	cfg := Config{Replicas: 2, BaseSeed: 1}
	res, err := SweepScenarios(cfg, []ScenarioPoint{
		{Scenario: "federated-day", Options: []scenario.Option{
			scenario.WithOption("routing", "no-such-routing"),
		}},
	})
	if err == nil {
		t.Fatal("all replicas failed yet SweepScenarios returned no error")
	}
	if !strings.Contains(err.Error(), "federated-day") || !strings.Contains(err.Error(), "unknown routing policy") {
		t.Errorf("error %q does not name the cell and cause", err)
	}
	if len(res) != 1 {
		t.Fatalf("partial results missing: %+v", res)
	}
	if len(res[0].Metrics) != 0 {
		t.Errorf("failed cell reports metrics: %v", res[0].Metrics)
	}
}

// TestSweepSurvivesNilFirstReplica: a cell whose *first* replica
// failed (nil metrics) must still aggregate the successful replicas —
// metric names may not hinge on replica 0.
func TestSweepSurvivesNilFirstReplica(t *testing.T) {
	calls := 0
	res := Sweep(Config{Replicas: 3, Workers: 1, BaseSeed: 1}, []Point{{
		Name: "flaky-first",
		Run: func(seed int64) Metrics {
			calls++
			if calls == 1 {
				return nil // replica 0 fails
			}
			return Metrics{"x": float64(calls)}
		},
	}})
	s := res[0].Metrics["x"]
	if s.N != 2 {
		t.Fatalf("metric x aggregated over %d replicas, want the 2 successes (values %v)",
			s.N, res[0].Values["x"])
	}
}

// TestSweepMergesSketches: a point run via RunSketched gets its
// per-replica t-digests merged in replica order into Result.Digests —
// identically across worker counts — while plain Run points stay
// digest-free.
func TestSweepMergesSketches(t *testing.T) {
	run := func(workers int) []Result {
		return Sweep(Config{Replicas: 4, Workers: workers, BaseSeed: 3}, []Point{
			{
				Name: "sketched",
				RunSketched: func(seed int64) (Metrics, map[string]*stats.TDigest) {
					d := stats.NewTDigest(0)
					// A deterministic per-seed stream: 1000 observations
					// spread by the seed so replicas differ.
					for i := 0; i < 1000; i++ {
						d.Add(float64(i%97) + float64(seed%13))
					}
					return Metrics{"n": float64(d.Len())}, map[string]*stats.TDigest{"v": d}
				},
			},
			{Name: "plain", Run: func(seed int64) Metrics { return Metrics{"n": 1} }},
		})
	}
	res := run(1)
	merged := res[0].Digests["v"]
	if merged == nil {
		t.Fatal("sketched point has no merged digest")
	}
	if merged.Len() != 4000 {
		t.Errorf("merged digest holds %d observations, want 4×1000", merged.Len())
	}
	if res[1].Digests != nil {
		t.Errorf("plain point grew digests: %v", res[1].Digests)
	}
	res4 := run(4)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		a, b := merged.Quantile(p), res4[0].Digests["v"].Quantile(p)
		if a != b {
			t.Errorf("q(%.1f): 1-worker %v vs 4-worker %v — merge order not deterministic", p, a, b)
		}
	}
}

// TestSweepScenariosMergesStreamingDigests: a streaming-mode catalog
// scenario exposes its latency digest through the DigestProvider
// contract, so the sweep returns one cross-replica merged sketch whose
// count is the sum of the replicas' successful requests.
func TestSweepScenariosMergesStreamingDigests(t *testing.T) {
	cfg := Config{Replicas: 2, BaseSeed: 7}
	opts := []scenario.Option{
		scenario.WithNodes(64), scenario.WithHorizon(30 * 60 * 1e9),
		scenario.WithQPS(2), scenario.WithOption("actions", "10"),
	}
	res, err := SweepScenarios(cfg, []ScenarioPoint{
		{Name: "buffered", Scenario: "fib-day", Options: opts},
		{Name: "streaming", Scenario: "fib-day",
			Options: append(append([]scenario.Option(nil), opts...), scenario.WithOption("streaming", "true"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Digests != nil {
		t.Errorf("buffered cell grew digests: %v", res[0].Digests)
	}
	d := res[1].Digests["latency-s"]
	if d == nil {
		t.Fatal("streaming cell has no merged latency digest")
	}
	if d.Len() == 0 || math.IsNaN(d.Quantile(0.5)) {
		t.Errorf("merged digest unusable: n=%d", d.Len())
	}
	// Identical scalar metrics either way: streaming only changes what
	// the collectors retain, never the simulation.
	for _, name := range []string{"pilots-started", "invoked-share", "success-share"} {
		if a, b := res[0].Metrics[name].Mean, res[1].Metrics[name].Mean; a != b {
			t.Errorf("%s: buffered %v vs streaming %v", name, a, b)
		}
	}
}

// TestSweepScenariosAggregates runs a real (fast) catalog scenario
// across replicas and checks naming, per-replica seeding and the
// worker-count invariance the engine guarantees.
func TestSweepScenariosAggregates(t *testing.T) {
	run := func(workers int) []Result {
		cfg := Config{Replicas: 3, Workers: workers, BaseSeed: 9}
		res, err := SweepScenarios(cfg, []ScenarioPoint{
			{Scenario: "fig2", Options: []scenario.Option{scenario.WithOption("jobs", "2000")}},
			{Name: "tiny", Scenario: "fig2", Options: []scenario.Option{scenario.WithOption("jobs", "500")}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(1)
	if len(res) != 2 || res[0].Name != "fig2" || res[1].Name != "tiny" {
		t.Fatalf("cells misnamed: %+v", res)
	}
	for _, r := range res {
		if r.Replicas != 3 {
			t.Errorf("%s: %d replicas, want 3", r.Name, r.Replicas)
		}
		if s := r.Metrics["median-limit-min"]; s.N != 3 {
			t.Errorf("%s: metric aggregated over %d replicas, want 3", r.Name, s.N)
		}
	}
	// The jobs option reached the runs: the jobs metric echoes it.
	if got := res[0].Metrics["jobs"].Mean; got != 2000 {
		t.Errorf("first cell ran %v jobs, want 2000", got)
	}
	if got := res[1].Metrics["jobs"].Mean; got != 500 {
		t.Errorf("second cell ran %v jobs, want 500", got)
	}
	// Replicas actually decorrelate: three seeds, three runs (medians
	// of 2000-job samples differ across seeds with probability ~1).
	if vals := res[0].Values["median-runtime-min"]; len(vals) == 3 &&
		vals[0] == vals[1] && vals[1] == vals[2] {
		t.Errorf("replica values identical — per-replica seeds not applied: %v", vals)
	}

	// Worker count never changes the numbers.
	res4 := run(4)
	for i := range res {
		for name, vals := range res[i].Values {
			got := res4[i].Values[name]
			for j := range vals {
				if vals[j] != got[j] {
					t.Fatalf("%s/%s replica %d: 1-worker %v vs 4-worker %v",
						res[i].Name, name, j, vals[j], got[j])
				}
			}
		}
	}
}

// TestCapWorkers pins the workers × shards budget arithmetic: the
// effective worker count is lowered until it fits MaxParallelism, but
// never below one, and unsharded sweeps are untouched.
func TestCapWorkers(t *testing.T) {
	cases := []struct{ workers, budget, shards, want int }{
		{8, 8, 4, 2}, // 8×4 over an 8-budget → 2 workers
		{8, 8, 1, 8}, // unsharded: budget not consulted
		{1, 8, 4, 1}, // already within budget
		{2, 8, 4, 2}, // exactly at budget
		{3, 4, 8, 1}, // shards alone exceed the budget → one-worker floor
	}
	for _, c := range cases {
		cfg := Config{Workers: c.workers, MaxParallelism: c.budget}
		if got := cfg.capWorkers(c.shards).workers(); got != c.want {
			t.Errorf("capWorkers(workers=%d budget=%d shards=%d) = %d, want %d",
				c.workers, c.budget, c.shards, got, c.want)
		}
	}
}

// TestSweepScenariosShardedWorkerInvariance: a sharded federated cell
// is still bit-identical across worker counts — the sweep's
// determinism guarantee composes with the pdes runtime's — and the
// engine resolves the cell's shards option through
// scenario.Parallelism to cap combined concurrency.
func TestSweepScenariosShardedWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full federated replicas (skipped under -short for the CI race gate)")
	}
	cells := []ScenarioPoint{{
		Name:     "sharded",
		Scenario: "federated-day",
		Options: []scenario.Option{
			scenario.WithNodes(24), scenario.WithHorizon(20 * 60 * 1e9),
			scenario.WithOption("sites", "2"), scenario.WithOption("actions", "12"),
			scenario.WithOption("routing", "capacity-weighted"),
			scenario.WithOption("shards", "2"),
		},
	}}
	run := func(workers int) []Result {
		res, err := SweepScenarios(Config{Replicas: 2, Workers: workers, BaseSeed: 11}, cells)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1)[0], run(8)[0]
	if len(a.Values) == 0 {
		t.Fatal("sharded cell produced no metrics")
	}
	for name, vals := range a.Values {
		got, ok := b.Values[name]
		if !ok || len(got) != len(vals) {
			t.Fatalf("%s: metric shape differs across worker counts", name)
		}
		for j := range vals {
			if vals[j] != got[j] {
				t.Fatalf("%s replica %d: 1-worker %v vs 8-worker %v", name, j, vals[j], got[j])
			}
		}
	}
}
