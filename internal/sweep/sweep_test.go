package sweep

import (
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
)

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	cfg := Config{Replicas: 64, BaseSeed: 7}
	a, b := cfg.Seeds(), cfg.Seeds()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Seeds is not a pure function of BaseSeed")
	}
	seen := map[int64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate replica seed %d", s)
		}
		seen[s] = true
	}
	c := Config{Replicas: 64, BaseSeed: 8}
	if reflect.DeepEqual(a, c.Seeds()) {
		t.Fatal("different base seeds produced identical replica seeds")
	}
}

// TestSweepWorkerCountInvariant: a sweep's output must be bit-identical
// for 1 worker and GOMAXPROCS workers, even when replicas finish out of
// order (the synthetic experiment spins longer for some seeds).
func TestSweepWorkerCountInvariant(t *testing.T) {
	points := []Point{
		{Name: "a", Run: func(seed int64) Metrics {
			spin(int(seed % 5000))
			return Metrics{"x": float64(seed % 1000), "y": float64(seed % 7)}
		}},
		{Name: "b", Run: func(seed int64) Metrics {
			spin(int(seed % 9000))
			return Metrics{"x": float64(seed % 13)}
		}},
	}
	serial := Sweep(Config{Replicas: 50, Workers: 1, BaseSeed: 3}, points)
	parallel := Sweep(Config{Replicas: 50, Workers: runtime.GOMAXPROCS(0), BaseSeed: 3}, points)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("sweep output depends on worker count")
	}
}

// spin burns a little CPU so replica completion order is scrambled.
func spin(n int) {
	x := 1.0
	for i := 0; i < n; i++ {
		x *= 1.0000001
	}
	if x < 0 {
		panic("unreachable")
	}
}

// TestConcurrentRealReplicas runs real experiment replicas in parallel
// without a -short gate, so the CI race job always exercises actual
// experiment code on concurrent workers (catching package-level shared
// state anywhere under internal/experiments).
func TestConcurrentRealReplicas(t *testing.T) {
	run := func(seed int64) Metrics {
		cfg := experiments.FibDay(seed)
		cfg.Nodes = 128
		cfg.Horizon = time.Hour
		cfg.QPS = 0
		return experiments.RunDay(cfg).Metrics()
	}
	res := Replicate(Config{Replicas: 4, Workers: 4, BaseSeed: 5}, run)
	if res.Metrics["live-coverage"].N != 4 {
		t.Fatalf("aggregated %d replicas, want 4", res.Metrics["live-coverage"].N)
	}
}

// TestReplicateFibDayWorkerCountInvariant is the acceptance scenario:
// 32 replicas of the FibDay experiment (scaled to a 256-node, 2-hour
// slice so the suite stays fast) must aggregate to byte-identical JSON
// for worker counts 1 and GOMAXPROCS.
func TestReplicateFibDayWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica experiment sweep")
	}
	run := func(seed int64) Metrics {
		cfg := experiments.FibDay(seed)
		cfg.Nodes = 256
		cfg.Horizon = 2 * time.Hour
		cfg.QPS = 2
		cfg.NumActions = 10
		return experiments.RunDay(cfg).Metrics()
	}
	serial := Replicate(Config{Replicas: 32, Workers: 1, BaseSeed: 1}, run)
	parallel := Replicate(Config{Replicas: 32, Workers: runtime.GOMAXPROCS(0), BaseSeed: 1}, run)

	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("FibDay aggregate differs across worker counts:\n1 worker: %s\nN workers: %s", a, b)
	}

	// The aggregate must actually carry distributional content.
	cov := serial.Metrics["live-coverage"]
	if cov.N != 32 {
		t.Fatalf("live-coverage aggregated %d replicas, want 32", cov.N)
	}
	if cov.Std == 0 {
		t.Error("32 decorrelated seeds produced zero variance — seeds are not independent")
	}
	if cov.CI95 <= 0 || cov.Min > cov.Median || cov.Median > cov.Max {
		t.Errorf("implausible summary: %+v", cov)
	}
}

func TestSweepAggregatesPerPoint(t *testing.T) {
	points := []Point{
		{Name: "p0", Run: func(seed int64) Metrics { return Metrics{"m": 1} }},
		{Name: "p1", Run: func(seed int64) Metrics { return Metrics{"m": 2} }},
	}
	res := Sweep(Config{Replicas: 5, Workers: 2, BaseSeed: 1}, points)
	if len(res) != 2 || res[0].Name != "p0" || res[1].Name != "p1" {
		t.Fatalf("results out of point order: %+v", res)
	}
	for i, want := range []float64{1, 2} {
		s := res[i].Metrics["m"]
		if s.N != 5 || s.Mean != want || s.Std != 0 || s.CI95 != 0 {
			t.Errorf("point %d summary = %+v, want mean %v over 5 replicas", i, s, want)
		}
		if len(res[i].Values["m"]) != 5 {
			t.Errorf("point %d kept %d raw values, want 5", i, len(res[i].Values["m"]))
		}
		if len(res[i].Seeds) != 5 {
			t.Errorf("point %d recorded %d seeds, want 5", i, len(res[i].Seeds))
		}
	}
}

func TestSweepPanicsOnZeroReplicas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero replicas should panic")
		}
	}()
	Sweep(Config{}, []Point{{Name: "x", Run: func(int64) Metrics { return nil }}})
}

func ExampleReplicate() {
	res := Replicate(Config{Replicas: 4, Workers: 2, BaseSeed: 1}, func(seed int64) Metrics {
		return Metrics{"parity": float64(seed % 2)}
	})
	fmt.Println(res.Metrics["parity"].N)
	// Output: 4
}

// TestPooledRequestPathRaceUnderSweep drives the pooled allocation-free
// request path (invocation + message free lists, typed-arg DES
// callbacks) concurrently across sweep workers. Each replica owns its
// own Sim/Bus/Controller, so pooling must introduce no shared state;
// this test exists to fail under `go test -race` if it ever does. It
// is deliberately small and not Short-guarded: the CI race gate runs
// -short, and this is the pooled path's coverage there.
func TestPooledRequestPathRaceUnderSweep(t *testing.T) {
	run := func(seed int64) Metrics {
		cfg := experiments.FibDay(seed)
		cfg.Nodes = 64
		cfg.Horizon = 20 * time.Minute
		cfg.QPS = 2
		cfg.NumActions = 5
		return experiments.RunDay(cfg).Metrics()
	}
	res := Replicate(Config{Replicas: 4, Workers: runtime.GOMAXPROCS(0), BaseSeed: 9}, run)
	if res.Replicas != 4 {
		t.Fatalf("replicas = %d, want 4", res.Replicas)
	}
	inv := res.Metrics["invoked-share"]
	if inv.N != 4 {
		t.Fatalf("invoked-share aggregated %d replicas, want 4", inv.N)
	}
}
