// Package sweep is the parallel replication-and-parameter-sweep engine
// of the reproduction. The paper's evaluation (Tables II-III, Figs. 5-6)
// reports single-seed point estimates; sweep turns any experiment entry
// point into a multi-replica study with mean/CI/quantile aggregates, and
// fans a whole parameter grid out across worker goroutines.
//
// Determinism: every experiment in this repo runs on its own des.Sim and
// derives all randomness from an int64 seed, so replicas are embarrassingly
// parallel. Each replica's seed comes from a dist.Split fork of a root
// stream seeded with BaseSeed — replica i's seed is a pure function of
// (BaseSeed, i), independent of worker count and completion order — and
// results are aggregated positionally after a barrier. A sweep therefore
// produces bit-identical output whether it runs on 1 worker or GOMAXPROCS.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dist"
	"repro/internal/stats"
)

// Metrics is the flat named-scalar view of one replica's result: each
// experiment exposes its headline numbers under stable metric names
// (see the Metrics methods in internal/experiments).
type Metrics = map[string]float64

// Config controls the fan-out of a sweep.
type Config struct {
	// Replicas is the number of independent seeds per grid point.
	Replicas int

	// Workers bounds the concurrently running replicas; ≤0 means
	// GOMAXPROCS. The worker count never affects results, only wall time.
	Workers int

	// BaseSeed roots the decorrelated per-replica seed sequence.
	BaseSeed int64

	// MaxParallelism is the sweep's total goroutine budget when replicas
	// are themselves parallel: a scenario cell running sharded (its
	// "shards" option > 1) occupies shards goroutines per replica, and
	// SweepScenarios lowers the effective worker count so that
	// workers × max(shards across cells) never exceeds this budget.
	// ≤0 means GOMAXPROCS. Like Workers, the budget only changes wall
	// time and machine load, never results — both worker count and shard
	// count are result-invariant by construction.
	MaxParallelism int
}

// budget resolves the effective concurrency budget.
func (c Config) budget() int {
	if c.MaxParallelism > 0 {
		return c.MaxParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// capWorkers returns a copy of c whose effective worker count is
// clamped so that workers × shards stays within the budget (always
// leaving at least one worker).
func (c Config) capWorkers(shards int) Config {
	if shards <= 1 {
		return c
	}
	if w := c.budget() / shards; c.workers() > w {
		if w < 1 {
			w = 1
		}
		c.Workers = w
	}
	return c
}

// workers resolves the effective worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Seeds returns the per-replica seed sequence: a root stream seeded with
// BaseSeed is forked once per replica via dist.Split, so the seeds are
// pairwise decorrelated and each is a pure function of (BaseSeed, index).
func (c Config) Seeds() []int64 {
	root := dist.NewRand(c.BaseSeed)
	out := make([]int64, c.Replicas)
	for i := range out {
		out[i] = dist.Split(root).Int63()
	}
	return out
}

// Point is one cell of a parameter grid: a label plus the experiment
// closure. Run must be a pure function of its seed (every entry point in
// internal/experiments is), because it will be called concurrently with
// other replicas.
type Point struct {
	Name string
	Run  func(seed int64) Metrics

	// RunSketched, when non-nil, is used instead of Run: it returns the
	// replica's scalar metrics plus its mergeable quantile sketches
	// (keyed by stable names, e.g. "latency-s"). The sweep merges the
	// per-replica digests into Result.Digests in replica order —
	// O(compression) retained bytes per key regardless of replica count,
	// instead of concatenating raw samples across replicas.
	RunSketched func(seed int64) (Metrics, map[string]*stats.TDigest)
}

// Result aggregates the replicas of one grid point.
type Result struct {
	// Name echoes the point label.
	Name string `json:"name"`

	// Replicas is the replica count; Seeds the seed actually given to
	// each replica (in replica order).
	Replicas int     `json:"replicas"`
	Seeds    []int64 `json:"seeds"`

	// Metrics holds one aggregate per metric name.
	Metrics map[string]stats.Summary `json:"metrics"`

	// Values holds the raw per-replica series (replica order) behind
	// each aggregate, for CDFs or external re-analysis.
	Values map[string][]float64 `json:"values"`

	// Digests holds the cross-replica merged quantile sketches of a
	// point run via Point.RunSketched (nil otherwise, and omitted from
	// serialization — read quantiles off and report those). Merging is
	// in replica order, so the sketch is identical across worker counts.
	Digests map[string]*stats.TDigest `json:"-"`
}

// Replicate runs one experiment across cfg.Replicas decorrelated seeds
// and aggregates its metrics. It is Sweep for a single anonymous point.
func Replicate(cfg Config, run func(seed int64) Metrics) Result {
	return Sweep(cfg, []Point{{Name: "replicate", Run: run}})[0]
}

// Sweep runs every (point, replica) pair across the worker pool and
// aggregates per point. Results are in point order regardless of
// completion order.
func Sweep(cfg Config, points []Point) []Result {
	if cfg.Replicas <= 0 {
		panic(fmt.Sprintf("sweep: non-positive replica count %d", cfg.Replicas))
	}
	seeds := cfg.Seeds()

	// One job per (point, replica); results land positionally so worker
	// scheduling cannot reorder anything.
	type job struct{ point, rep int }
	jobs := make(chan job)
	raw := make([][]Metrics, len(points))
	sketches := make([][]map[string]*stats.TDigest, len(points))
	for i := range raw {
		raw[i] = make([]Metrics, cfg.Replicas)
		sketches[i] = make([]map[string]*stats.TDigest, cfg.Replicas)
	}

	var wg sync.WaitGroup
	for w := cfg.workers(); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if p := points[j.point]; p.RunSketched != nil {
					raw[j.point][j.rep], sketches[j.point][j.rep] = p.RunSketched(seeds[j.rep])
				} else {
					raw[j.point][j.rep] = p.Run(seeds[j.rep])
				}
			}
		}()
	}
	for p := range points {
		for r := 0; r < cfg.Replicas; r++ {
			jobs <- job{point: p, rep: r}
		}
	}
	close(jobs)
	wg.Wait()

	out := make([]Result, len(points))
	for p := range points {
		out[p] = aggregate(points[p].Name, seeds, raw[p])
		out[p].Digests = mergeSketches(sketches[p])
	}
	return out
}

// mergeSketches folds the per-replica digest maps of one point, in
// replica order, into one merged sketch per key. Replicas missing a key
// (or whole replicas that failed) contribute nothing to it. The first
// contributing replica's digest is cloned, so replica results stay
// untouched.
func mergeSketches(reps []map[string]*stats.TDigest) map[string]*stats.TDigest {
	var out map[string]*stats.TDigest
	for _, rep := range reps {
		for key, d := range rep {
			if d == nil {
				continue
			}
			if out == nil {
				out = map[string]*stats.TDigest{}
			}
			if have := out[key]; have != nil {
				have.Merge(d)
			} else {
				out[key] = d.Clone()
			}
		}
	}
	return out
}

// aggregate folds the replica metric maps of one point into summaries.
// Metric names are taken from the first replica that produced any (a
// replica may be nil when its scenario failed — see SweepScenarios —
// and must not erase the successful replicas' data); a replica missing
// a name contributes nothing to that metric (its summary reports the
// smaller N).
func aggregate(name string, seeds []int64, reps []Metrics) Result {
	res := Result{
		Name:     name,
		Replicas: len(reps),
		Seeds:    append([]int64(nil), seeds...),
		Metrics:  map[string]stats.Summary{},
		Values:   map[string][]float64{},
	}
	var base Metrics
	for _, m := range reps {
		if m != nil {
			base = m
			break
		}
	}
	if base == nil {
		return res
	}
	for metric := range base {
		vals := make([]float64, 0, len(reps))
		for _, m := range reps {
			if v, ok := m[metric]; ok {
				vals = append(vals, v)
			}
		}
		res.Values[metric] = vals
		res.Metrics[metric] = stats.Summarize(vals)
	}
	return res
}
