package sweep

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// DigestProvider is the structural contract a typed experiment result
// implements to expose mergeable quantile sketches: a streaming-mode
// run (experiments.DayResult, experiments.FederatedResult with
// Streaming set) returns its t-digests keyed by stable metric-like
// names. SweepScenarios probes every replica's Unwrap() against it, so
// any scenario gains cross-replica quantile merging just by returning
// a result with a Digests method — no sweep-side glue.
type DigestProvider interface {
	Digests() map[string]*stats.TDigest
}

// ScenarioPoint is one grid cell over the scenario registry: a
// scenario name plus the options fixing this cell's parameters. The
// sweep appends scenario.WithSeed per replica (after Options, so a
// seed in Options would be overridden — seeds belong to the engine).
type ScenarioPoint struct {
	// Name labels the cell in the results; empty defaults to Scenario.
	Name string

	// Scenario is the registry name (scenario.Names()).
	Scenario string

	// Options fix the cell's parameters (nodes, QPS, policy, raw
	// scenario options, ...).
	Options []scenario.Option
}

// SweepScenarios fans every registered-scenario grid cell across the
// worker pool with decorrelated per-replica seeds — any scenario in
// the registry becomes a multi-replica study by name, with no
// experiment-specific glue. All cells are validated (scenario name,
// option names, option values) before anything runs, so a typo fails
// fast instead of after hours of replicas. Aggregation and
// determinism guarantees match Sweep exactly.
//
// Runtime failures are not swallowed: a replica whose scenario
// returns an error (a failing custom scenario, a scenario-specific
// constraint like the fib/var-only experiments) contributes no
// metrics, and SweepScenarios returns the joined per-replica errors
// alongside the (partial) results.
//
// Cells running sharded (a "shards" option > 1) occupy shards
// goroutines per replica; the effective worker count is lowered so
// that workers × max shards stays within cfg.MaxParallelism (default
// GOMAXPROCS). The cap changes wall time only, never results.
func SweepScenarios(cfg Config, cells []ScenarioPoint) ([]Result, error) {
	points := make([]Point, len(cells))
	var mu sync.Mutex
	var runErrs []error
	maxShards := 1
	for i, cell := range cells {
		cell := cell
		shards, err := scenario.Parallelism(cell.Scenario, cell.Options...)
		if err != nil {
			return nil, err
		}
		if shards > maxShards {
			maxShards = shards
		}
		name := cell.Name
		if name == "" {
			name = cell.Scenario
		}
		points[i] = Point{
			Name: name,
			RunSketched: func(seed int64) (Metrics, map[string]*stats.TDigest) {
				opts := append(append([]scenario.Option(nil), cell.Options...), scenario.WithSeed(seed))
				res, err := scenario.Run(context.Background(), cell.Scenario, opts...)
				if err != nil {
					mu.Lock()
					runErrs = append(runErrs, fmt.Errorf("%s (seed %d): %w", name, seed, err))
					mu.Unlock()
					return nil, nil
				}
				var digs map[string]*stats.TDigest
				if dp, ok := res.Unwrap().(DigestProvider); ok {
					digs = dp.Digests()
				}
				return res.Metrics(), digs
			},
		}
	}
	results := Sweep(cfg.capWorkers(maxShards), points)
	// Replica completion order depends on worker scheduling; sort so
	// the joined error is as deterministic as the results.
	sort.Slice(runErrs, func(i, j int) bool { return runErrs[i].Error() < runErrs[j].Error() })
	return results, errors.Join(runErrs...)
}
