package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/pdes"
	"repro/internal/policy"
	"repro/internal/router"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// DefaultRouting is the routing policy a federation uses when its
// config names none: route by free capacity.
const DefaultRouting = "capacity-weighted"

// FederationConfig wires N independent Slurm+whisk sites behind one
// routing front door on a shared simulation plane.
type FederationConfig struct {
	// Sites holds one deployment config per site. Each site's seeds
	// derive from its own SiteConfig.Seed, so a site's behaviour depends
	// only on its own config. Policy instances are stateful: every
	// SiteConfig must carry its own instance, never a shared one.
	Sites []SiteConfig

	// Routing names the front-door policy in the router registry
	// (router.Names). Empty means DefaultRouting.
	Routing string

	// Fallback, when non-nil, wraps the front door in the Alg. 1
	// client-side wrapper (§III-E): a federation-wide 503 — every site
	// unhealthy or the picked site refusing — off-loads to this backend
	// (e.g. the commercial-cloud model of internal/lambda) for the
	// cooldown window. Incompatible with Shards > 1: the wrapper's
	// cooldown state couples completions to subsequent arrivals, which
	// breaks the sharded run's lookahead contract (see internal/pdes).
	Fallback Backend

	// Shards > 1 builds each site on its own event plane and runs the
	// federation under the conservative pdes coordinator with
	// min(Shards, len(Sites)) worker goroutines; ≤ 1 keeps the
	// sequential shared-plane execution. Both modes produce
	// byte-identical output (the pdes determinism contract); sharding
	// only changes wall-clock time.
	Shards int

	// SnapshotInterval overrides the routing health-snapshot refresh
	// period of multi-site federations (≤ 0 means
	// router.DefaultSnapshotInterval). It is also the sharded run's
	// lookahead window. Ignored for 1-site federations, which keep
	// live health reads (every pick lands on the only site either
	// way, and the fib/var day goldens pin that path).
	SnapshotInterval time.Duration
}

// UniformFederationConfig builds an n-site federation of identical
// deployments from one base config. Per-site seeds are drawn
// sequentially from a root generator seeded with base.Seed (the
// dist.Split discipline), so growing a federation from n to n+1 sites
// never perturbs sites 0..n-1. A registry-built supply policy
// (DefaultSystemConfig's) is re-instantiated per site by its registered
// name; an unregistered custom policy instance panics — build
// cfg.Sites explicitly to federate those.
func UniformFederationConfig(n int, base SiteConfig) FederationConfig {
	root := dist.NewRand(base.Seed)
	sites := make([]SiteConfig, n)
	for i := range sites {
		cfg := base
		cfg.Seed = root.Int63()
		if base.Manager.Policy != nil {
			cfg.Manager.Policy = policy.MustNew(base.Manager.Policy.Name())
		}
		sites[i] = cfg
	}
	return FederationConfig{Sites: sites, Routing: DefaultRouting}
}

// Federation hosts N sites behind a routing front door. Sequential
// (Shards ≤ 1): all sites share one DES plane. Sharded: each site has
// its own plane, Sim is the front plane (load generator, door
// bookkeeping), and the pdes coordinator advances them in lockstep
// lookahead windows — byte-identically to the sequential run. Clients
// invoke through the federation (or its Door/Wrap directly); each
// site's pilot manager, Slurm emulator, and logger run independently.
type Federation struct {
	Sim   *des.Sim
	Sites []*Site

	// Door is the routing front door: home-site hashing plus the
	// configured routing policy over the per-site health view —
	// grid-snapshot-consistent for multi-site federations, live for
	// 1-site ones.
	Door *router.FrontDoor

	// Wrap is the Alg. 1 wrapper over the front door; nil unless the
	// config set a Fallback backend.
	Wrap *Wrapper

	// coord is the conservative parallel coordinator; nil in the
	// sequential mode.
	coord *pdes.Coordinator
}

// doorBackend adapts the front door to core.Backend (the wrapper's
// primary). The front door completes through callbacks only, so the
// synchronous return is always nil.
type doorBackend struct{ d *router.FrontDoor }

// Invoke implements Backend.
func (b doorBackend) Invoke(action string, done func(*whisk.Invocation)) *whisk.Invocation {
	b.d.Invoke(action, done)
	return nil
}

// shardSite adapts one sharded site for the front door: Invoke queues
// a timestamped inter-shard message on the site's pdes inbox, and the
// health getters read the site directly — the coordinator only calls
// them at grid barriers (the door's Refresh), when every shard rests
// at exactly the barrier instant.
type shardSite struct {
	sh   *pdes.Shard
	site *Site
}

func (p *shardSite) Invoke(action string, done func(*whisk.Invocation)) {
	p.sh.Invoke(action, done)
}
func (p *shardSite) HealthyInvokers() int  { return p.site.HealthyInvokers() }
func (p *shardSite) Utilization() float64  { return p.site.Utilization() }
func (p *shardSite) QueueDepth() int       { return p.site.QueueDepth() }
func (p *shardSite) FastLaneDepth() int    { return p.site.FastLaneDepth() }
func (p *shardSite) DrainingInvokers() int { return p.site.DrainingInvokers() }

// NewFederation builds the sites and wires the front door — on one
// shared simulation plane (Shards ≤ 1), or on per-site planes under
// the conservative pdes coordinator (Shards > 1). An empty Sites
// list, an unknown routing policy, or a Fallback on a sharded
// federation is a configuration bug and panics.
func NewFederation(cfg FederationConfig) *Federation {
	if len(cfg.Sites) == 0 {
		panic("core: a federation needs at least one site")
	}
	if cfg.Fallback != nil && cfg.Shards > 1 {
		panic("core: a sharded federation cannot host the Alg. 1 fallback wrapper (completion-coupled cooldown state breaks the lookahead contract)")
	}
	routing := cfg.Routing
	if routing == "" {
		routing = DefaultRouting
	}
	pol, err := router.New(routing)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	snap := cfg.SnapshotInterval
	if snap <= 0 {
		snap = router.DefaultSnapshotInterval
	}
	front := des.New()
	f := &Federation{Sim: front, Sites: make([]*Site, len(cfg.Sites))}
	rsites := make([]router.Site, len(cfg.Sites))
	if cfg.Shards > 1 {
		f.coord = pdes.New(front, snap, cfg.Shards)
		for i, sc := range cfg.Sites {
			ssim := des.New()
			f.Sites[i] = NewSite(ssim, sc)
			rsites[i] = &shardSite{sh: f.coord.AddShard(ssim, f.Sites[i]), site: f.Sites[i]}
		}
	} else {
		for i, sc := range cfg.Sites {
			f.Sites[i] = NewSite(front, sc)
			rsites[i] = f.Sites[i]
		}
	}
	f.Door = router.NewFrontDoor(rsites, pol)
	// Multi-site federations route from grid-snapshot health views in
	// both modes — the snapshot grid is the sharded run's lookahead
	// window, and the sequential run adopts the same grid so the two
	// stay byte-identical. 1-site federations keep live reads.
	if len(cfg.Sites) > 1 {
		if f.coord != nil {
			f.Door.EnableSnapshots()
			f.coord.OnBarrier = f.Door.Refresh
		} else {
			f.Door.SnapshotEvery(front, snap)
		}
	}
	if cfg.Fallback != nil {
		f.Wrap = NewWrapper(front, doorBackend{f.Door}, cfg.Fallback)
	}
	return f
}

// SetFallback wires the Alg. 1 wrapper over the front door after
// construction — for fallback backends that need the federation's
// clock (e.g. the commercial-cloud model of internal/lambda, which is
// built against an existing simulation plane). Panics on a sharded
// federation; see FederationConfig.Fallback.
func (f *Federation) SetFallback(b Backend) {
	if f.coord != nil {
		panic("core: a sharded federation cannot host the Alg. 1 fallback wrapper (completion-coupled cooldown state breaks the lookahead contract)")
	}
	f.Wrap = NewWrapper(f.Sim, doorBackend{f.Door}, b)
}

// Invoke submits a request through the federation's client entry
// point: the Alg. 1 wrapper when a fallback is configured, the bare
// front door otherwise. Federation therefore satisfies the load
// generator's Backend interface directly.
func (f *Federation) Invoke(action string, done func(*whisk.Invocation)) {
	if f.Wrap != nil {
		f.Wrap.Invoke(action, done)
		return
	}
	f.Door.Invoke(action, done)
}

// LoadTrace drives site i with an exogenous availability trace.
func (f *Federation) LoadTrace(i int, tr *workload.Trace) { f.Sites[i].LoadTrace(tr) }

// RegisterAction registers an action on every site's controller, so a
// request can land anywhere the router sends it.
func (f *Federation) RegisterAction(a *whisk.Action) {
	for _, s := range f.Sites {
		s.Ctrl.RegisterAction(a)
	}
}

// Start launches every site (managers, schedulers, loggers).
func (f *Federation) Start() {
	for _, s := range f.Sites {
		s.Start()
	}
}

// Run advances the federation by d. Sequential mode advances the
// shared plane; sharded mode drives the pdes coordinator, which
// advances the front plane and every site shard through the same
// window in lockstep lookahead intervals. Either way, every event in
// [now, now+d] fires in the canonical (when, seq) order, so the two
// modes produce byte-identical state.
func (f *Federation) Run(d time.Duration) {
	if f.coord != nil {
		f.coord.RunFor(d)
		return
	}
	f.Sim.RunFor(d)
}

// RunCtx advances the federation by d in epoch-sized chunks, checking
// ctx between chunks; see runCtx. Sharded federations chunk the
// coordinator the same way — cancellation lands on an epoch boundary
// with every shard synchronized there.
func (f *Federation) RunCtx(ctx context.Context, d, epoch time.Duration, progress func(done, total time.Duration)) error {
	if f.coord != nil {
		return runCtx(f.coord, ctx, d, epoch, progress)
	}
	return runCtx(f.Sim, ctx, d, epoch, progress)
}
