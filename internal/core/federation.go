package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/policy"
	"repro/internal/router"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// DefaultRouting is the routing policy a federation uses when its
// config names none: route by free capacity.
const DefaultRouting = "capacity-weighted"

// FederationConfig wires N independent Slurm+whisk sites behind one
// routing front door on a shared simulation plane.
type FederationConfig struct {
	// Sites holds one deployment config per site. Each site's seeds
	// derive from its own SiteConfig.Seed, so a site's behaviour depends
	// only on its own config. Policy instances are stateful: every
	// SiteConfig must carry its own instance, never a shared one.
	Sites []SiteConfig

	// Routing names the front-door policy in the router registry
	// (router.Names). Empty means DefaultRouting.
	Routing string

	// Fallback, when non-nil, wraps the front door in the Alg. 1
	// client-side wrapper (§III-E): a federation-wide 503 — every site
	// unhealthy or the picked site refusing — off-loads to this backend
	// (e.g. the commercial-cloud model of internal/lambda) for the
	// cooldown window.
	Fallback Backend
}

// UniformFederationConfig builds an n-site federation of identical
// deployments from one base config. Per-site seeds are drawn
// sequentially from a root generator seeded with base.Seed (the
// dist.Split discipline), so growing a federation from n to n+1 sites
// never perturbs sites 0..n-1. A registry-built supply policy
// (DefaultSystemConfig's) is re-instantiated per site by its registered
// name; an unregistered custom policy instance panics — build
// cfg.Sites explicitly to federate those.
func UniformFederationConfig(n int, base SiteConfig) FederationConfig {
	root := dist.NewRand(base.Seed)
	sites := make([]SiteConfig, n)
	for i := range sites {
		cfg := base
		cfg.Seed = root.Int63()
		if base.Manager.Policy != nil {
			cfg.Manager.Policy = policy.MustNew(base.Manager.Policy.Name())
		}
		sites[i] = cfg
	}
	return FederationConfig{Sites: sites, Routing: DefaultRouting}
}

// Federation hosts N sites on one DES plane behind a routing front
// door. Clients invoke through the federation (or its Door/Wrap
// directly); each site's pilot manager, Slurm emulator, and logger run
// independently on the shared clock.
type Federation struct {
	Sim   *des.Sim
	Sites []*Site

	// Door is the routing front door: home-site hashing plus the
	// configured routing policy over the live per-site health view.
	Door *router.FrontDoor

	// Wrap is the Alg. 1 wrapper over the front door; nil unless the
	// config set a Fallback backend.
	Wrap *Wrapper
}

// doorBackend adapts the front door to core.Backend (the wrapper's
// primary). The front door completes through callbacks only, so the
// synchronous return is always nil.
type doorBackend struct{ d *router.FrontDoor }

// Invoke implements Backend.
func (b doorBackend) Invoke(action string, done func(*whisk.Invocation)) *whisk.Invocation {
	b.d.Invoke(action, done)
	return nil
}

// NewFederation builds the sites on one fresh simulation plane and
// wires the front door. An empty Sites list or an unknown routing
// policy is a configuration bug and panics.
func NewFederation(cfg FederationConfig) *Federation {
	if len(cfg.Sites) == 0 {
		panic("core: a federation needs at least one site")
	}
	routing := cfg.Routing
	if routing == "" {
		routing = DefaultRouting
	}
	pol, err := router.New(routing)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	sim := des.New()
	f := &Federation{Sim: sim, Sites: make([]*Site, len(cfg.Sites))}
	rsites := make([]router.Site, len(cfg.Sites))
	for i, sc := range cfg.Sites {
		f.Sites[i] = NewSite(sim, sc)
		rsites[i] = f.Sites[i]
	}
	f.Door = router.NewFrontDoor(rsites, pol)
	if cfg.Fallback != nil {
		f.Wrap = NewWrapper(sim, doorBackend{f.Door}, cfg.Fallback)
	}
	return f
}

// SetFallback wires the Alg. 1 wrapper over the front door after
// construction — for fallback backends that need the federation's
// clock (e.g. the commercial-cloud model of internal/lambda, which is
// built against an existing simulation plane).
func (f *Federation) SetFallback(b Backend) {
	f.Wrap = NewWrapper(f.Sim, doorBackend{f.Door}, b)
}

// Invoke submits a request through the federation's client entry
// point: the Alg. 1 wrapper when a fallback is configured, the bare
// front door otherwise. Federation therefore satisfies the load
// generator's Backend interface directly.
func (f *Federation) Invoke(action string, done func(*whisk.Invocation)) {
	if f.Wrap != nil {
		f.Wrap.Invoke(action, done)
		return
	}
	f.Door.Invoke(action, done)
}

// LoadTrace drives site i with an exogenous availability trace.
func (f *Federation) LoadTrace(i int, tr *workload.Trace) { f.Sites[i].LoadTrace(tr) }

// RegisterAction registers an action on every site's controller, so a
// request can land anywhere the router sends it.
func (f *Federation) RegisterAction(a *whisk.Action) {
	for _, s := range f.Sites {
		s.Ctrl.RegisterAction(a)
	}
}

// Start launches every site (managers, schedulers, loggers).
func (f *Federation) Start() {
	for _, s := range f.Sites {
		s.Start()
	}
}

// Run advances the shared plane by d — every site moves together.
func (f *Federation) Run(d time.Duration) { f.Sim.RunFor(d) }

// RunCtx advances the shared plane by d in epoch-sized chunks,
// checking ctx between chunks; see runCtx.
func (f *Federation) RunCtx(ctx context.Context, d, epoch time.Duration, progress func(done, total time.Duration)) error {
	return runCtx(f.Sim, ctx, d, epoch, progress)
}
