package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// TestSystemInvariants runs randomized deployments under churn and load
// and checks system-wide invariants at every simulated minute:
//
//  1. cluster state counts always partition the node set;
//  2. every healthy invoker lives inside a pilot-occupied node
//     (healthy ≤ pilot nodes);
//  3. the controller's healthy count equals the manager's;
//  4. the pilot queue never exceeds the configured supply depth;
//  5. every issued invocation completes exactly once (conservation),
//     checked after the drain.
func TestSystemInvariants(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			policyName := "fib"
			if seed%2 == 1 {
				policyName = "var"
			}
			cfg := DefaultSystemConfig(32, policyName)
			cfg.Seed = seed
			s := NewSystem(cfg)
			trCfg := workload.DefaultIdleProcess(32, 3*time.Hour, seed+1)
			trCfg.MeanIdleNodes = 5
			trCfg.SaturatedFraction = 0.05
			s.LoadTrace(trCfg.Generate())

			s.Ctrl.RegisterAction(&whisk.Action{
				Name: "inv-a", Exec: whisk.FixedExec(400 * time.Millisecond), Interruptible: true,
			})
			s.Ctrl.RegisterAction(&whisk.Action{
				Name: "inv-b", Exec: whisk.FixedExec(8 * time.Second), Interruptible: false,
			})

			issued, completed := 0, 0
			tick := s.Sim.Every(700*time.Millisecond, func() {
				name := "inv-a"
				if issued%3 == 0 {
					name = "inv-b"
				}
				issued++
				s.Ctrl.Invoke(name, func(*whisk.Invocation) { completed++ })
			})

			cl := s.Slurm.Cluster()
			maxQueue := len(SetA1) * 10
			if policyName == "var" {
				maxQueue = 100
			}
			check := s.Sim.Every(time.Minute, func() {
				now := s.Sim.Now()
				sum := cl.Count(cluster.Idle) + cl.Count(cluster.Busy) +
					cl.Count(cluster.Pilot) + cl.Count(cluster.Reserved) +
					cl.Count(cluster.Down)
				if sum != cl.Len() {
					t.Fatalf("t=%v: state counts sum to %d of %d", now, sum, cl.Len())
				}
				healthy := s.Ctrl.HealthyCount()
				if healthy > cl.Count(cluster.Pilot) {
					t.Fatalf("t=%v: %d healthy invokers on %d pilot nodes",
						now, healthy, cl.Count(cluster.Pilot))
				}
				if healthy != s.Manager.States.HealthyNow() {
					t.Fatalf("t=%v: controller healthy %d != manager healthy %d",
						now, healthy, s.Manager.States.HealthyNow())
				}
				if q := s.Slurm.QueuedPilots(); q > maxQueue {
					t.Fatalf("t=%v: pilot queue %d exceeds depth %d", now, q, maxQueue)
				}
			})

			s.Start()
			s.Run(3 * time.Hour)
			tick.Stop()
			check.Stop()
			s.Run(5 * time.Minute) // drain

			if completed != issued {
				t.Fatalf("conservation broken: %d issued, %d completed", issued, completed)
			}
			total := s.Ctrl.NSuccess + s.Ctrl.NFailed + s.Ctrl.NTimeout + s.Ctrl.N503
			if total != issued {
				t.Fatalf("controller counters %d != issued %d", total, issued)
			}
		})
	}
}
