package core

import (
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// TestFederationOneSiteMatchesSystem is the byte-identity anchor of the
// federated refactor: a 1-site federation driven by the same trace and
// load must reproduce the bare single-cluster System's outcome counters
// exactly — the front door adds no events, no RNG draws, and no
// allocation to the request path.
func TestFederationOneSiteMatchesSystem(t *testing.T) {
	type outcome struct {
		success, n503, lost, failed int
		pilots, handoffs            int
		healthyDur                  time.Duration
	}

	run := func(viaFederation bool) outcome {
		cfg := DefaultSystemConfig(16, "fib")
		cfg.Seed = 42

		var site *Site
		var backend loadgen.Backend
		if viaFederation {
			fed := NewFederation(FederationConfig{Sites: []SiteConfig{cfg}})
			site = fed.Sites[0]
			backend = fed
		} else {
			sys := NewSystem(cfg)
			site = sys.Site
			backend = loadgen.ForController(sys.Ctrl)
		}

		site.LoadTrace(smallTrace(16, 2*time.Hour, 7, 6))
		site.Ctrl.RegisterAction(&whisk.Action{
			Name: "mini", MemoryMB: 256,
			Exec: whisk.FixedExec(10 * time.Millisecond), Interruptible: true,
		})
		gen := loadgen.New(site.Sim, backend, loadgen.Config{
			QPS: 2, Actions: []string{"mini"}, Duration: 2 * time.Hour,
		})
		gen.Start()
		site.Start()
		site.Run(2*time.Hour + 5*time.Minute)

		site.Manager.States.Finish(site.Sim.Now())
		totals := gen.Series.Totals()
		return outcome{
			success:    totals[loadgen.LabelSuccess],
			n503:       totals[loadgen.Label503],
			lost:       totals[loadgen.LabelLost],
			failed:     totals[loadgen.LabelFailed],
			pilots:     site.Manager.PilotsStarted,
			handoffs:   site.Manager.Handoffs,
			healthyDur: site.Manager.States.Healthy.Duration(),
		}
	}

	direct := run(false)
	fed := run(true)
	if direct != fed {
		t.Fatalf("1-site federation diverged from the bare system:\n direct: %+v\n fed:    %+v", direct, fed)
	}
	if direct.success == 0 {
		t.Fatal("comparison run served no traffic — not a meaningful identity check")
	}
}

// TestUniformFederationSeedStability: growing a uniform federation must
// not change the seeds (and hence the behaviour) of existing sites, and
// every site must get its own supply-policy instance.
func TestUniformFederationSeedStability(t *testing.T) {
	base := DefaultSystemConfig(8, "fib")
	base.Seed = 99
	small := UniformFederationConfig(2, base)
	big := UniformFederationConfig(5, base)
	for i := range small.Sites {
		if small.Sites[i].Seed != big.Sites[i].Seed {
			t.Fatalf("site %d seed changed when the federation grew: %d vs %d",
				i, small.Sites[i].Seed, big.Sites[i].Seed)
		}
	}
	seen := map[int64]bool{}
	for i, sc := range big.Sites {
		if seen[sc.Seed] {
			t.Fatalf("duplicate per-site seed at site %d", i)
		}
		seen[sc.Seed] = true
		if sc.Manager.Policy == base.Manager.Policy {
			t.Fatalf("site %d shares the base config's policy instance", i)
		}
	}
}

// TestFederationRouting: with one site dead (an empty availability
// trace → no idle windows → no invokers), a 2-site federation keeps
// serving through the live one.
func TestFederationRouting(t *testing.T) {
	base := DefaultSystemConfig(16, "fib")
	base.Seed = 5
	fcfg := UniformFederationConfig(2, base)
	fed := NewFederation(fcfg)

	// Site 0 gets a real availability trace; site 1 gets an empty one
	// (fully saturated by prime jobs, so no pilot ever starts).
	fed.LoadTrace(0, smallTrace(16, time.Hour, 11, 8))
	fed.LoadTrace(1, &workload.Trace{Nodes: 16, Horizon: time.Hour})
	fed.RegisterAction(&whisk.Action{
		Name: "routed", MemoryMB: 256,
		Exec: whisk.FixedExec(10 * time.Millisecond), Interruptible: true,
	})
	gen := loadgen.New(fed.Sim, fed, loadgen.Config{
		QPS: 2, Actions: []string{"routed"}, Duration: time.Hour,
	})
	gen.Start()
	fed.Start()
	fed.Run(time.Hour + 5*time.Minute)

	if gen.Series.Totals()[loadgen.LabelSuccess] == 0 {
		t.Fatal("federation with one live site served nothing")
	}
	if got := fed.Door.IssuedBySite[1]; got > fed.Door.NoSitePicks {
		t.Fatalf("dead site 1 received %d routed requests (NoSitePicks=%d)",
			got, fed.Door.NoSitePicks)
	}
	if fed.Door.Issued != gen.Issued {
		t.Fatalf("front door issued %d, generator issued %d", fed.Door.Issued, gen.Issued)
	}
}
