package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// stormTrace generates a high-churn availability trace: short
// contended/calm alternation so pilots register and get killed every
// few simulated minutes — a register/kill storm at the §III-B layer.
func stormTrace(nodes int, horizon time.Duration, seed int64) *workload.Trace {
	cfg := workload.DefaultIdleProcess(nodes, horizon, seed)
	cfg.MeanIdleNodes = 4
	cfg.ContendedMean = 7 * time.Minute
	cfg.CalmMean = 5 * time.Minute
	return cfg.Generate()
}

// stormArrivals pre-generates a bursty invoke storm as a pure function
// of the seed: exponential inter-arrivals whose rate switches between
// a base trickle and 15× bursts, with continuous instants so no
// arrival collides with any grid the simulation populates.
type stormArrival struct {
	at     time.Duration
	action int
}

func stormArrivals(horizon time.Duration, seed int64, actions int) []stormArrival {
	r := rand.New(rand.NewSource(seed))
	var out []stormArrival
	at := time.Duration(0)
	for at < horizon {
		rate := 3.0 // per second
		if int(at/(2*time.Minute))%3 == 2 {
			rate *= 15 // storm phase every third 2-minute block
		}
		at += time.Duration(r.ExpFloat64() / rate * float64(time.Second))
		out = append(out, stormArrival{at: at, action: r.Intn(actions)})
	}
	return out
}

// TestFederationStormShardedEventLog is the randomized-storm property
// test of the sharded runtime: a 5-site federation under register/kill
// storms (high-churn traces) and invoke storms (bursty arrivals) must
// produce a byte-identical per-completion event log — outcome, all
// timestamps, cold-start and requeue history, in completion order —
// whether it runs sequentially or sharded, across several seeds and
// shard counts.
func TestFederationStormShardedEventLog(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping federation storm replay")
	}
	const (
		sites   = 5
		horizon = 12 * time.Minute
		nAct    = 12
	)
	actions := make([]string, nAct)
	for i := range actions {
		actions[i] = fmt.Sprintf("storm-%02d", i)
	}

	replay := func(seed int64, shards int) []string {
		base := DefaultSystemConfig(24, "fib")
		base.Seed = seed
		cfg := UniformFederationConfig(sites, base)
		cfg.Shards = shards
		fed := NewFederation(cfg)
		troot := dist.NewRand(seed + 101)
		for i := range fed.Sites {
			fed.LoadTrace(i, stormTrace(24, horizon, troot.Int63()))
		}
		for _, n := range actions {
			fed.RegisterAction(&whisk.Action{Name: n, MemoryMB: 256,
				Exec: whisk.FixedExec(15 * time.Millisecond), Interruptible: true})
		}

		var log []string
		for _, a := range stormArrivals(horizon, seed+202, nAct) {
			action := actions[a.action]
			fed.Sim.Schedule(a.at, func() {
				fed.Invoke(action, func(inv *whisk.Invocation) {
					log = append(log, fmt.Sprintf("%s %v sub=%d done=%d cold=%v req=%d inv=%d",
						inv.Action.Name, inv.Status, int64(inv.Submitted), int64(inv.Completed),
						inv.ColdStart, inv.Requeues, inv.InvokerID))
				})
			})
		}
		fed.Start()
		fed.Run(horizon + 5*time.Minute)
		return log
	}

	for _, seed := range []int64{3, 17, 29} {
		seq := replay(seed, 1)
		if len(seq) == 0 {
			t.Fatalf("seed %d: storm produced no completions", seed)
		}
		for _, shards := range []int{2, sites} {
			shd := replay(seed, shards)
			if len(seq) != len(shd) {
				t.Fatalf("seed %d shards %d: %d completions vs %d sequential",
					seed, shards, len(shd), len(seq))
			}
			for i := range seq {
				if seq[i] != shd[i] {
					t.Fatalf("seed %d shards %d: event %d diverged\n  sequential: %s\n  sharded:    %s",
						seed, shards, i, seq[i], shd[i])
				}
			}
		}
	}
}
