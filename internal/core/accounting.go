package core

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/slurm"
	"repro/internal/stats"
)

// WorkerStates tracks the OpenWhisk-level perspective of §IV-A: the
// number of warming, healthy, and irresponsive (draining) workers as
// piecewise-constant series over virtual time. It feeds the "OW-level"
// rows of Tables II and III.
type WorkerStates struct {
	warming, healthy, irresp int

	// The series are buffered stats.TimeWeighted by default (exact,
	// one segment per transition) and stats.TimeWeightedStream under
	// streaming accounting (O(1) memory for week-scale horizons).
	Warming stats.TimeSeries
	Healthy stats.TimeSeries
	Irresp  stats.TimeSeries
}

// NewWorkerStates starts all counts at zero with exact buffered series.
func NewWorkerStates() *WorkerStates { return NewWorkerStatesStreaming(false) }

// NewWorkerStatesStreaming starts all counts at zero; streaming selects
// O(1)-memory sketch-backed series instead of buffered ones. Every
// value Tables II/III read from the series (time means, zero-invoker
// totals and longest runs) is exact either way; only the time-weighted
// quantiles become ε-approximate under streaming.
func NewWorkerStatesStreaming(streaming bool) *WorkerStates {
	ws := &WorkerStates{}
	if streaming {
		ws.Warming = stats.NewTimeWeightedStream(0)
		ws.Healthy = stats.NewTimeWeightedStream(0)
		ws.Irresp = stats.NewTimeWeightedStream(0)
	} else {
		ws.Warming = &stats.TimeWeighted{}
		ws.Healthy = &stats.TimeWeighted{}
		ws.Irresp = &stats.TimeWeighted{}
	}
	ws.observe(0)
	return ws
}

func (ws *WorkerStates) observe(t time.Duration) {
	ws.Warming.Observe(t, float64(ws.warming))
	ws.Healthy.Observe(t, float64(ws.healthy))
	ws.Irresp.Observe(t, float64(ws.irresp))
}

func (ws *WorkerStates) counter(p pilotPhase) *int {
	switch p {
	case phaseWarming:
		return &ws.warming
	case phaseHealthy:
		return &ws.healthy
	case phaseDraining:
		return &ws.irresp
	default:
		return nil
	}
}

// Add enters a worker into a phase.
func (ws *WorkerStates) Add(t time.Duration, p pilotPhase) {
	if c := ws.counter(p); c != nil {
		*c++
		ws.observe(t)
	}
}

// Move transitions a worker between phases.
func (ws *WorkerStates) Move(t time.Duration, from, to pilotPhase) {
	if c := ws.counter(from); c != nil {
		*c--
	}
	if c := ws.counter(to); c != nil {
		*c++
	}
	ws.observe(t)
}

// Remove drops a worker from a phase.
func (ws *WorkerStates) Remove(t time.Duration, p pilotPhase) {
	if c := ws.counter(p); c != nil {
		*c--
		ws.observe(t)
	}
}

// Finish closes the series at the experiment end.
func (ws *WorkerStates) Finish(end time.Duration) {
	ws.Warming.Finish(end)
	ws.Healthy.Finish(end)
	ws.Irresp.Finish(end)
}

// HealthyNow returns the current healthy-worker count.
func (ws *WorkerStates) HealthyNow() int { return ws.healthy }

// SlurmLogEntry is one poll of the Slurm-level perspective: the counts
// of idle and HPC-Whisk (pilot) nodes at the response instant.
type SlurmLogEntry struct {
	At    des.Time
	Idle  int
	Pilot int
}

// SlurmLogger reproduces the measurement methodology of §IV-A: it polls
// the node states, waits for the (variable-latency) response, records
// it, and only then waits a fixed 10 seconds before the next request —
// yielding the paper's 10.3-10.7 s average spacing.
type SlurmLogger struct {
	sim     *des.Sim
	emu     *slurm.Emulator
	gap     time.Duration
	latency dist.Sampler

	// Cached typed-arg callbacks: the poll loop runs 8,640 times per
	// simulated day and schedules without allocating a closure per hop.
	requestFn, recordFn func(any)

	Entries []SlurmLogEntry
	stopped bool

	// Streaming accounting (SetStreaming): instead of appending to
	// Entries (8,640/day — 60,480 for a week), polls fold into online
	// aggregates so logger memory is O(1) in horizon. Stats and
	// AverageSpacing work in both modes; the per-entry Entries slice
	// stays empty when streaming.
	streaming          bool
	n                  int
	firstAt, lastAt    des.Time
	workers, avail     *stats.TDigest
	idleSum, pilotSum  float64
	zeroAvail, zeroWkr int
}

// NewSlurmLogger builds a logger with the paper's latency model.
func NewSlurmLogger(emu *slurm.Emulator, seed int64) *SlurmLogger {
	l := &SlurmLogger{
		sim:     emu.Sim(),
		emu:     emu,
		gap:     10 * time.Second,
		latency: dist.NewSampler(dist.QueryLatencySeconds(), dist.NewRand(seed)),
	}
	l.requestFn = func(any) { l.request() }
	l.recordFn = l.recordCb
	return l
}

// SetStreaming switches the logger to O(1)-memory online aggregation
// (worker/available-count digests plus running sums) instead of the
// per-poll Entries buffer. Call before Start; the polling cadence and
// RNG draws are identical either way, so enabling it never perturbs
// the simulation — only what the logger retains.
func (l *SlurmLogger) SetStreaming(on bool) {
	l.streaming = on
	if on && l.workers == nil {
		l.workers = stats.NewTDigest(stats.DefaultCompression)
		l.avail = stats.NewTDigest(stats.DefaultCompression)
	}
}

// Start issues the first request immediately.
func (l *SlurmLogger) Start() { l.request() }

// Stop ends the polling loop after the in-flight request.
func (l *SlurmLogger) Stop() { l.stopped = true }

func (l *SlurmLogger) request() {
	if l.stopped {
		return
	}
	l.sim.AfterCall(l.latency.Seconds(), l.recordFn, nil)
}

// recordCb logs the response and waits the fixed gap before polling
// again.
func (l *SlurmLogger) recordCb(any) {
	cl := l.emu.Cluster()
	e := SlurmLogEntry{
		At:    l.sim.Now(),
		Idle:  cl.Count(cluster.Idle),
		Pilot: cl.Count(cluster.Pilot),
	}
	if l.streaming {
		if l.n == 0 {
			l.firstAt = e.At
		}
		l.n++
		l.lastAt = e.At
		l.workers.Add(float64(e.Pilot))
		l.avail.Add(float64(e.Idle + e.Pilot))
		l.idleSum += float64(e.Idle)
		l.pilotSum += float64(e.Pilot)
		if e.Idle+e.Pilot == 0 {
			l.zeroAvail++
		}
		if e.Pilot == 0 {
			l.zeroWkr++
		}
	} else {
		l.Entries = append(l.Entries, e)
	}
	l.sim.AfterCall(l.gap, l.requestFn, nil)
}

// AverageSpacing returns the mean distance between measurements
// (§IV-A reports 10.32 s for the initial week and 10.68-10.72 s during
// the experiments).
func (l *SlurmLogger) AverageSpacing() time.Duration {
	if l.streaming {
		if l.n < 2 {
			return 0
		}
		return (l.lastAt - l.firstAt) / time.Duration(l.n-1)
	}
	if len(l.Entries) < 2 {
		return 0
	}
	span := l.Entries[len(l.Entries)-1].At - l.Entries[0].At
	return span / time.Duration(len(l.Entries)-1)
}

// Measurements returns the number of polls recorded so far in either
// mode.
func (l *SlurmLogger) Measurements() int {
	if l.streaming {
		return l.n
	}
	return len(l.Entries)
}

// Footprint returns the retained metric bytes of the logger: the
// entries buffer when buffered, the two digests when streaming.
func (l *SlurmLogger) Footprint() int {
	if l.streaming {
		return l.workers.Footprint() + l.avail.Footprint()
	}
	return cap(l.Entries) * 32
}

// SlurmLevelStats aggregates the logger's entries into the Slurm-level
// row of Tables II/III.
type SlurmLevelStats struct {
	Measurements int
	AvgSpacing   time.Duration

	// Worker-count distribution over logged states.
	WorkerP25, WorkerP50, WorkerP75 float64
	WorkerAvg                       float64

	// ShareUsed is pilot-node time over the joined idle+pilot baseline
	// (the paper's "coverage": 90% fib, 68% var); ShareNotUsed is the
	// complement.
	ShareUsed    float64
	ShareNotUsed float64

	// AvailableAvg / AvailableMedian summarize idle+pilot counts (the
	// "HPC-idle surface": 11.85 avg / 11 median on the fib day).
	AvailableAvg    float64
	AvailableMedian float64

	// ZeroAvailableStates counts logged states with no idle or pilot
	// node; ZeroWorkerStates counts states with no pilot node.
	ZeroAvailableStates int
	ZeroWorkerStates    int
}

// Stats reduces the log. Under streaming accounting the same stats
// come from the online aggregates: every field is exact except the
// worker/available quantiles, which are within stats.Epsilon rank
// error.
func (l *SlurmLogger) Stats() SlurmLevelStats {
	var s SlurmLevelStats
	s.Measurements = l.Measurements()
	s.AvgSpacing = l.AverageSpacing()
	if s.Measurements == 0 {
		return s
	}
	if l.streaming {
		s.WorkerP25 = l.workers.Quantile(0.25)
		s.WorkerP50 = l.workers.Quantile(0.50)
		s.WorkerP75 = l.workers.Quantile(0.75)
		s.WorkerAvg = l.workers.Mean()
		if l.idleSum+l.pilotSum > 0 {
			s.ShareUsed = l.pilotSum / (l.idleSum + l.pilotSum)
			s.ShareNotUsed = 1 - s.ShareUsed
		}
		s.AvailableAvg = l.avail.Mean()
		s.AvailableMedian = l.avail.Median()
		s.ZeroAvailableStates = l.zeroAvail
		s.ZeroWorkerStates = l.zeroWkr
		return s
	}
	var workers, avail stats.Sample
	var idleSum, pilotSum float64
	for _, e := range l.Entries {
		workers.Add(float64(e.Pilot))
		avail.Add(float64(e.Idle + e.Pilot))
		idleSum += float64(e.Idle)
		pilotSum += float64(e.Pilot)
		if e.Idle+e.Pilot == 0 {
			s.ZeroAvailableStates++
		}
		if e.Pilot == 0 {
			s.ZeroWorkerStates++
		}
	}
	s.WorkerP25 = workers.Quantile(0.25)
	s.WorkerP50 = workers.Quantile(0.50)
	s.WorkerP75 = workers.Quantile(0.75)
	s.WorkerAvg = workers.Mean()
	if idleSum+pilotSum > 0 {
		s.ShareUsed = pilotSum / (idleSum + pilotSum)
		s.ShareNotUsed = 1 - s.ShareUsed
	}
	s.AvailableAvg = avail.Mean()
	s.AvailableMedian = avail.Median()
	return s
}

// OWLevelStats is the OpenWhisk-level row group of Tables II/III.
type OWLevelStats struct {
	WarmupAvg float64

	HealthyP25, HealthyP50, HealthyP75 float64
	HealthyAvg                         float64

	IrrespAvg float64

	// NoInvokerTotal and NoInvokerLongest describe periods with zero
	// reachable invokers (24 min total / 7 min longest on the fib day;
	// 218 min / 85 min on the var day).
	NoInvokerTotal   time.Duration
	NoInvokerLongest time.Duration

	// ReadySpanAvg and ReadySpanMedian summarize how long invokers
	// stayed ready (§V-B: fib avg >23 min, median ≈11 min).
	ReadySpanAvg    time.Duration
	ReadySpanMedian time.Duration
}

// OWStats reduces the manager's worker-state series at end.
func (m *PilotManager) OWStats(end time.Duration) OWLevelStats {
	m.States.Finish(end)
	var o OWLevelStats
	o.WarmupAvg = m.States.Warming.TimeMean()
	o.HealthyP25 = m.States.Healthy.Quantile(0.25)
	o.HealthyP50 = m.States.Healthy.Quantile(0.50)
	o.HealthyP75 = m.States.Healthy.Quantile(0.75)
	o.HealthyAvg = m.States.Healthy.TimeMean()
	o.IrrespAvg = m.States.Irresp.TimeMean()
	o.NoInvokerTotal = m.States.Healthy.ZeroTotal()
	o.NoInvokerLongest = m.States.Healthy.ZeroLongest()
	if m.ReadySpans.Len() > 0 {
		o.ReadySpanAvg = time.Duration(m.ReadySpans.Mean() * float64(time.Second))
		o.ReadySpanMedian = time.Duration(m.ReadySpans.Median() * float64(time.Second))
	}
	return o
}
