package core

import (
	"context"
	"time"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/slurm"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// SystemConfig wires a complete HPC-Whisk deployment: cluster size,
// Slurm parameters, OpenWhisk controller model, and the pilot manager.
type SystemConfig struct {
	Nodes      int
	Slurm      slurm.Config
	Controller whisk.ControllerConfig
	Manager    ManagerConfig
	BusLatency dist.Dist
	Seed       int64
}

// DefaultSystemConfig returns a deployment matching the paper's setup
// for the given cluster size and supply mode.
func DefaultSystemConfig(nodes int, mode Mode) SystemConfig {
	ctrl := whisk.DefaultControllerConfig()
	// The wired deployment's clients (load generators, the Alg. 1
	// wrapper, experiment accounting) never retain an invocation past
	// its completion callback, so the full deployment runs the
	// allocation-free pooled request path. Standalone controllers keep
	// pooling off by default.
	ctrl.PoolInvocations = true
	return SystemConfig{
		Nodes:      nodes,
		Slurm:      slurm.DefaultConfig(),
		Controller: ctrl,
		Manager:    DefaultManagerConfig(mode),
		Seed:       1,
	}
}

// System is a fully wired HPC-Whisk deployment on the simulation plane.
type System struct {
	Sim     *des.Sim
	Bus     *bus.Bus
	Ctrl    *whisk.Controller
	Slurm   *slurm.Emulator
	Manager *PilotManager
	Logger  *SlurmLogger
}

// NewSystem builds the deployment: a tier-0 "whisk" partition for the
// pilots, a tier-1 "hpc" partition for prime jobs, the off-cluster
// controller, and the job manager.
func NewSystem(cfg SystemConfig) *System {
	sim := des.New()
	b := bus.New(sim, cfg.BusLatency, cfg.Seed+1)
	ctrl := whisk.NewController(sim, b, cfg.Controller, cfg.Seed+2)
	emu := slurm.New(sim, cfg.Nodes, cfg.Slurm)
	emu.AddPartition(slurm.Partition{Name: cfg.Manager.Partition, PriorityTier: 0})
	emu.AddPartition(slurm.Partition{Name: "hpc", PriorityTier: 1})
	mcfg := cfg.Manager
	mcfg.Seed = cfg.Seed + 3
	mgr := NewPilotManager(emu, ctrl, mcfg)
	return &System{
		Sim:     sim,
		Bus:     b,
		Ctrl:    ctrl,
		Slurm:   emu,
		Manager: mgr,
		Logger:  NewSlurmLogger(emu, cfg.Seed+4),
	}
}

// LoadTrace drives the cluster with an exogenous availability trace.
func (s *System) LoadTrace(tr *workload.Trace) { s.Slurm.DriveTrace(tr) }

// Start launches the manager, the scheduler, and the Slurm-level
// logger.
func (s *System) Start() {
	s.Manager.Start()
	s.Slurm.Start()
	s.Logger.Start()
}

// Run advances the simulation by d.
func (s *System) Run(d time.Duration) { s.Sim.RunFor(d) }

// DefaultEpoch is the cancellation/progress granularity of RunCtx: one
// virtual minute. A 24-hour production day simulates in about a second
// of wall time, so the check costs nothing while keeping cancellation
// latency well under a millisecond of wall clock.
const DefaultEpoch = time.Minute

// RunCtx advances the simulation by d in epoch-sized chunks of virtual
// time, checking ctx between chunks and reporting progress after each.
// Chunked advancement fires exactly the events a single Run(d) would,
// in the same order — the DES orders events by (instant, sequence)
// alone — so a completed RunCtx is bit-identical to Run. On
// cancellation it stops at the current epoch boundary and returns the
// context's error; the simulation state stays valid (partial) and the
// clock sits at the boundary reached. A run whose final epoch has
// already fired is complete, so a cancellation racing with completion
// reports success, never a spurious partial-result error.
func (s *System) RunCtx(ctx context.Context, d, epoch time.Duration, progress func(done, total time.Duration)) error {
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	start := s.Sim.Now()
	end := start + d
	for s.Sim.Now() < end {
		if err := ctx.Err(); err != nil {
			return err
		}
		step := epoch
		if rest := end - s.Sim.Now(); rest < step {
			step = rest
		}
		s.Sim.RunFor(step)
		if progress != nil {
			progress(s.Sim.Now()-start, d)
		}
	}
	return nil
}
