package core

import (
	"context"
	"time"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/slurm"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// SystemConfig wires a complete HPC-Whisk deployment: cluster size,
// Slurm parameters, OpenWhisk controller model, and the pilot manager.
type SystemConfig struct {
	Nodes      int
	Slurm      slurm.Config
	Controller whisk.ControllerConfig
	Manager    ManagerConfig
	BusLatency dist.Dist
	Seed       int64

	// StreamingStats switches the site's accounting (worker-state
	// series, Slurm-level logger) to O(1)-memory streaming collectors
	// for week-scale horizons. Simulation behavior is identical — the
	// flag only changes what the metrics retain. Off by default so
	// golden-pinned runs keep exact buffered accounting.
	StreamingStats bool
}

// SiteConfig is the per-site deployment configuration of a federation:
// one federated Site is exactly one single-cluster deployment, so the
// two names share one type.
type SiteConfig = SystemConfig

// DefaultSystemConfig returns a deployment matching the paper's setup
// for the given cluster size and pilot-supply policy (a policy-registry
// name: "fib", "var", "adaptive", "lease", "hybrid", or anything the
// embedding program registered). An unknown name panics, as the
// registry's MustNew does; validate with policy.New first when the
// name comes from user input.
func DefaultSystemConfig(nodes int, policyName string) SystemConfig {
	ctrl := whisk.DefaultControllerConfig()
	// The wired deployment's clients (load generators, the Alg. 1
	// wrapper, experiment accounting) never retain an invocation past
	// its completion callback, so the full deployment runs the
	// allocation-free pooled request path. Standalone controllers keep
	// pooling off by default.
	ctrl.PoolInvocations = true
	return SystemConfig{
		Nodes:      nodes,
		Slurm:      slurm.DefaultConfig(),
		Controller: ctrl,
		Manager:    DefaultManagerConfig(policyName),
		Seed:       1,
	}
}

// Site is one fully wired HPC-Whisk deployment — Slurm emulator,
// OpenWhisk controller and bus, pilot manager, Slurm-level logger — on
// a simulation plane it may share with other sites. A single-cluster
// System is a 1-site special case; a Federation hosts N sites on one
// clock behind a routing front door.
type Site struct {
	Sim     *des.Sim
	Bus     *bus.Bus
	Ctrl    *whisk.Controller
	Slurm   *slurm.Emulator
	Manager *PilotManager
	Logger  *SlurmLogger
}

// NewSite builds one deployment on an existing simulation plane: a
// tier-0 "whisk" partition for the pilots, a tier-1 "hpc" partition
// for prime jobs, the off-cluster controller, and the job manager.
// All of the site's seeds derive from cfg.Seed at fixed offsets, so a
// site is a pure function of its own config regardless of how many
// other sites share the clock.
func NewSite(sim *des.Sim, cfg SiteConfig) *Site {
	b := bus.New(sim, cfg.BusLatency, cfg.Seed+1)
	ctrl := whisk.NewController(sim, b, cfg.Controller, cfg.Seed+2)
	emu := slurm.New(sim, cfg.Nodes, cfg.Slurm)
	emu.AddPartition(slurm.Partition{Name: cfg.Manager.Partition, PriorityTier: 0})
	emu.AddPartition(slurm.Partition{Name: "hpc", PriorityTier: 1})
	mcfg := cfg.Manager
	mcfg.Seed = cfg.Seed + 3
	mcfg.StreamingStats = mcfg.StreamingStats || cfg.StreamingStats
	mgr := NewPilotManager(emu, ctrl, mcfg)
	logger := NewSlurmLogger(emu, cfg.Seed+4)
	logger.SetStreaming(cfg.StreamingStats)
	return &Site{
		Sim:     sim,
		Bus:     b,
		Ctrl:    ctrl,
		Slurm:   emu,
		Manager: mgr,
		Logger:  logger,
	}
}

// LoadTrace drives the cluster with an exogenous availability trace.
func (s *Site) LoadTrace(tr *workload.Trace) { s.Slurm.DriveTrace(tr) }

// Start launches the manager, the scheduler, and the Slurm-level
// logger.
func (s *Site) Start() {
	s.Manager.Start()
	s.Slurm.Start()
	s.Logger.Start()
}

// Run advances the simulation by d. On a sequential federated plane
// this advances every site sharing it; a sharded federation must be
// advanced through Federation.Run instead (its sites rest on separate
// planes the pdes coordinator owns).
func (s *Site) Run(d time.Duration) { s.Sim.RunFor(d) }

// RunCtx advances the simulation by d in epoch-sized chunks, checking
// ctx between chunks; see the package-level runCtx.
func (s *Site) RunCtx(ctx context.Context, d, epoch time.Duration, progress func(done, total time.Duration)) error {
	return runCtx(s.Sim, ctx, d, epoch, progress)
}

// Invoke submits a call to the site's controller. Together with the
// health accessors below it makes *Site satisfy router.Site, the
// per-cluster view the federation's front door routes over.
func (s *Site) Invoke(action string, done func(*whisk.Invocation)) {
	s.Ctrl.Invoke(action, done)
}

// HealthyInvokers returns the number of invokers accepting work.
func (s *Site) HealthyInvokers() int { return s.Ctrl.HealthyCount() }

// Utilization returns the busy share of healthy invoker capacity.
func (s *Site) Utilization() float64 { return s.Ctrl.Utilization() }

// QueueDepth returns the accepted-but-unstarted request backlog.
func (s *Site) QueueDepth() int { return s.Ctrl.QueueDepth() }

// FastLaneDepth returns the §III-C priority-topic backlog.
func (s *Site) FastLaneDepth() int { return s.Ctrl.FastLaneDepth() }

// DrainingInvokers returns the number of invokers mid-hand-off.
func (s *Site) DrainingInvokers() int { return s.Ctrl.DrainingCount() }

// System is a fully wired single-cluster HPC-Whisk deployment owning
// its own simulation plane — a thin wrapper over a 1-site federation's
// Site with the clock built in. All Site fields and methods are
// promoted.
type System struct {
	*Site
}

// NewSystem builds the single-cluster deployment on a fresh clock.
func NewSystem(cfg SystemConfig) *System {
	return &System{Site: NewSite(des.New(), cfg)}
}

// DefaultEpoch is the cancellation/progress granularity of RunCtx: one
// virtual minute. A 24-hour production day simulates in about a second
// of wall time, so the check costs nothing while keeping cancellation
// latency well under a millisecond of wall clock.
const DefaultEpoch = time.Minute

// runner is the clock a chunked run advances: a des.Sim, or the pdes
// coordinator of a sharded federation (whose RunFor fires exactly the
// events the shared plane would, so the bit-identity argument below
// carries over unchanged).
type runner interface {
	Now() des.Time
	RunFor(d time.Duration)
}

// runCtx advances the simulation by d in epoch-sized chunks of virtual
// time, checking ctx between chunks and reporting progress after each.
// Chunked advancement fires exactly the events a single Run(d) would,
// in the same order — the DES orders events by (instant, sequence)
// alone — so a completed runCtx is bit-identical to Run. On
// cancellation it stops at the current epoch boundary and returns the
// context's error; the simulation state stays valid (partial) and the
// clock sits at the boundary reached. A run whose final epoch has
// already fired is complete, so a cancellation racing with completion
// reports success, never a spurious partial-result error.
func runCtx(sim runner, ctx context.Context, d, epoch time.Duration, progress func(done, total time.Duration)) error {
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	start := sim.Now()
	end := start + d
	for sim.Now() < end {
		if err := ctx.Err(); err != nil {
			return err
		}
		step := epoch
		if rest := end - sim.Now(); rest < step {
			step = rest
		}
		sim.RunFor(step)
		if progress != nil {
			progress(sim.Now()-start, d)
		}
	}
	return nil
}
