package core

import (
	"time"

	"repro/internal/des"
	"repro/internal/whisk"
)

// Backend issues function invocations; whisk.Controller and the
// commercial-cloud model of internal/lambda both implement it.
type Backend interface {
	Invoke(action string, done func(*whisk.Invocation)) *whisk.Invocation
}

// Wrapper is the client-side fallback of Alg. 1 (§III-E): calls go to
// the HPC-Whisk deployment unless it returned 503 within the cooldown
// window, in which case they go to a commercial FaaS service. A 503
// from the primary marks the window and retries through the wrapper
// (landing on the fallback), so callers never see the 503.
type Wrapper struct {
	sim      *des.Sim
	primary  Backend
	fallback Backend

	// Cooldown is how long after a 503 calls keep off-loading (60 s in
	// Alg. 1).
	Cooldown time.Duration

	has503  bool
	last503 des.Time

	// callPool recycles the per-call retry context (action + done +
	// cached completion callback), so a primary invocation costs no
	// closure allocation in steady state.
	callPool []*wrapCall

	// Counters.
	PrimaryCalls  int
	FallbackCalls int
	Retries       int
}

// wrapCall is one in-flight primary invocation's retry context. fn is
// the method value handed to the backend, created once per pooled
// object rather than once per call.
type wrapCall struct {
	w      *Wrapper
	action string
	done   func(*whisk.Invocation)
	fn     func(*whisk.Invocation)
}

// onDone implements the 503-retry branch of Alg. 1 for one call. The
// call object returns to the pool before any retry re-enters Invoke,
// so the recursion can reuse it.
func (c *wrapCall) onDone(inv *whisk.Invocation) {
	w := c.w
	action, done := c.action, c.done
	c.action, c.done = "", nil
	w.callPool = append(w.callPool, c)
	if inv.Status == whisk.Status503 && w.fallback != nil {
		w.has503 = true
		w.last503 = w.sim.Now()
		w.Retries++
		// Back-date the retried invocation to the original submission:
		// clients measure latency as Completed−Submitted, and the
		// client-observed span of a retried call includes the primary's
		// 503 round trip (the retry is invisible per Alg. 1). The
		// closure is fine here — retries are the rare 503 window, never
		// the steady-state request path.
		sub := inv.Submitted
		w.Invoke(action, func(retry *whisk.Invocation) {
			if retry.Submitted > sub {
				retry.Submitted = sub
			}
			if done != nil {
				done(retry)
			}
		})
		return
	}
	if done != nil {
		done(inv)
	}
}

// getCall pops the pool or builds a new call context.
func (w *Wrapper) getCall() *wrapCall {
	if k := len(w.callPool); k > 0 {
		c := w.callPool[k-1]
		w.callPool[k-1] = nil
		w.callPool = w.callPool[:k-1]
		return c
	}
	c := &wrapCall{w: w}
	c.fn = c.onDone
	return c
}

// NewWrapper builds the Alg. 1 wrapper. fallback may be nil, in which
// case 503s surface to the caller unchanged (retries disabled).
func NewWrapper(sim *des.Sim, primary, fallback Backend) *Wrapper {
	return &Wrapper{sim: sim, primary: primary, fallback: fallback, Cooldown: time.Minute}
}

// Invoke implements Alg. 1.
func (w *Wrapper) Invoke(action string, done func(*whisk.Invocation)) {
	now := w.sim.Now()
	if w.fallback != nil && w.has503 && now-w.last503 <= w.Cooldown {
		w.FallbackCalls++
		w.fallback.Invoke(action, done)
		return
	}
	w.PrimaryCalls++
	c := w.getCall()
	c.action, c.done = action, done
	w.primary.Invoke(action, c.fn)
}
