package core

import (
	"time"

	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/whisk"
)

// Backend issues function invocations; whisk.Controller and the
// commercial-cloud model of internal/lambda both implement it.
type Backend interface {
	Invoke(action string, done func(*whisk.Invocation)) *whisk.Invocation
}

// ResumeBackend is a Backend that can continue a checkpointed
// execution from its last durable checkpoint instead of restarting it;
// the commercial-cloud model implements it by uploading the state and
// running only the remaining body.
type ResumeBackend interface {
	Backend
	InvokeResume(action string, remaining time.Duration, stateMB float64, done func(*whisk.Invocation)) *whisk.Invocation
}

// Wrapper is the client-side fallback of Alg. 1 (§III-E): calls go to
// the HPC-Whisk deployment unless it returned 503 within the cooldown
// window, in which case they go to a commercial FaaS service. A 503
// from the primary marks the window and retries through the wrapper
// (landing on the fallback), so callers never see the 503.
type Wrapper struct {
	sim      *des.Sim
	primary  Backend
	fallback Backend

	// Cooldown is how long after a 503 calls keep off-loading (60 s in
	// Alg. 1).
	Cooldown time.Duration

	// ResumeTimeouts extends Alg. 1 to the checkpoint subsystem: a
	// primary invocation that timed out with checkpointed progress
	// re-invokes on the fallback from its last checkpoint (paying
	// upload + restore, running only the remaining body) instead of
	// surfacing the timeout. Requires a fallback implementing
	// ResumeBackend; off by default so the plain Alg. 1 semantics — and
	// every golden-pinned run — are untouched.
	ResumeTimeouts bool

	has503  bool
	last503 des.Time

	// work, when the primary is a whisk.Controller, mirrors cloud
	// resumes into the site's compute ledger.
	work *stats.WorkCounters

	// callPool recycles the per-call retry context (action + done +
	// cached completion callback), so a primary invocation costs no
	// closure allocation in steady state.
	callPool []*wrapCall

	// Counters.
	PrimaryCalls  int
	FallbackCalls int
	Retries       int
	CloudResumes  int
}

// wrapCall is one in-flight primary invocation's retry context. fn is
// the method value handed to the backend, created once per pooled
// object rather than once per call.
type wrapCall struct {
	w      *Wrapper
	action string
	done   func(*whisk.Invocation)
	fn     func(*whisk.Invocation)
}

// onDone implements the 503-retry branch of Alg. 1 for one call. The
// call object returns to the pool before any retry re-enters Invoke,
// so the recursion can reuse it.
func (c *wrapCall) onDone(inv *whisk.Invocation) {
	w := c.w
	action, done := c.action, c.done
	c.action, c.done = "", nil
	w.callPool = append(w.callPool, c)
	if w.ResumeTimeouts && inv.Status == whisk.StatusTimeout && inv.Progress > 0 && inv.Remaining() > 0 {
		if rb, ok := w.fallback.(ResumeBackend); ok {
			// The cluster lost the pilot mid-execution and the client
			// timed out waiting: continue from the last checkpoint on
			// the commercial cloud. Copy the resume token's fields
			// before re-entering any backend — under pooling the object
			// may recycle once this callback returns. Latency back-dates
			// to the original submission, like the 503 retry.
			w.CloudResumes++
			if w.work != nil {
				w.work.CloudResumes++
			}
			sub := inv.Submitted
			remaining, state := inv.Remaining(), inv.StateMB
			rb.InvokeResume(action, remaining, state, func(retry *whisk.Invocation) {
				if retry.Submitted > sub {
					retry.Submitted = sub
				}
				if done != nil {
					done(retry)
				}
			})
			return
		}
	}
	if inv.Status == whisk.Status503 && w.fallback != nil {
		w.has503 = true
		w.last503 = w.sim.Now()
		w.Retries++
		// Back-date the retried invocation to the original submission:
		// clients measure latency as Completed−Submitted, and the
		// client-observed span of a retried call includes the primary's
		// 503 round trip (the retry is invisible per Alg. 1). The
		// closure is fine here — retries are the rare 503 window, never
		// the steady-state request path.
		sub := inv.Submitted
		w.Invoke(action, func(retry *whisk.Invocation) {
			if retry.Submitted > sub {
				retry.Submitted = sub
			}
			if done != nil {
				done(retry)
			}
		})
		return
	}
	if done != nil {
		done(inv)
	}
}

// getCall pops the pool or builds a new call context.
func (w *Wrapper) getCall() *wrapCall {
	if k := len(w.callPool); k > 0 {
		c := w.callPool[k-1]
		w.callPool[k-1] = nil
		w.callPool = w.callPool[:k-1]
		return c
	}
	c := &wrapCall{w: w}
	c.fn = c.onDone
	return c
}

// NewWrapper builds the Alg. 1 wrapper. fallback may be nil, in which
// case 503s surface to the caller unchanged (retries disabled).
func NewWrapper(sim *des.Sim, primary, fallback Backend) *Wrapper {
	w := &Wrapper{sim: sim, primary: primary, fallback: fallback, Cooldown: time.Minute}
	if ctrl, ok := primary.(*whisk.Controller); ok {
		w.work = &ctrl.Work
	}
	return w
}

// Invoke implements Alg. 1.
func (w *Wrapper) Invoke(action string, done func(*whisk.Invocation)) {
	now := w.sim.Now()
	if w.fallback != nil && w.has503 && now-w.last503 <= w.Cooldown {
		w.FallbackCalls++
		w.fallback.Invoke(action, done)
		return
	}
	w.PrimaryCalls++
	c := w.getCall()
	c.action, c.done = action, done
	w.primary.Invoke(action, c.fn)
}
