package core

import (
	"time"

	"repro/internal/des"
	"repro/internal/whisk"
)

// Backend issues function invocations; whisk.Controller and the
// commercial-cloud model of internal/lambda both implement it.
type Backend interface {
	Invoke(action string, done func(*whisk.Invocation)) *whisk.Invocation
}

// Wrapper is the client-side fallback of Alg. 1 (§III-E): calls go to
// the HPC-Whisk deployment unless it returned 503 within the cooldown
// window, in which case they go to a commercial FaaS service. A 503
// from the primary marks the window and retries through the wrapper
// (landing on the fallback), so callers never see the 503.
type Wrapper struct {
	sim      *des.Sim
	primary  Backend
	fallback Backend

	// Cooldown is how long after a 503 calls keep off-loading (60 s in
	// Alg. 1).
	Cooldown time.Duration

	has503  bool
	last503 des.Time

	// Counters.
	PrimaryCalls  int
	FallbackCalls int
	Retries       int
}

// NewWrapper builds the Alg. 1 wrapper. fallback may be nil, in which
// case 503s surface to the caller unchanged (retries disabled).
func NewWrapper(sim *des.Sim, primary, fallback Backend) *Wrapper {
	return &Wrapper{sim: sim, primary: primary, fallback: fallback, Cooldown: time.Minute}
}

// Invoke implements Alg. 1.
func (w *Wrapper) Invoke(action string, done func(*whisk.Invocation)) {
	now := w.sim.Now()
	if w.fallback != nil && w.has503 && now-w.last503 <= w.Cooldown {
		w.FallbackCalls++
		w.fallback.Invoke(action, done)
		return
	}
	w.PrimaryCalls++
	w.primary.Invoke(action, func(inv *whisk.Invocation) {
		if inv.Status == whisk.Status503 && w.fallback != nil {
			w.has503 = true
			w.last503 = w.sim.Now()
			w.Retries++
			w.Invoke(action, done)
			return
		}
		if done != nil {
			done(inv)
		}
	})
}
