// Package core implements the primary contribution of the paper: the
// HPC-Whisk layer that turns transient idle HPC nodes into OpenWhisk
// workers. It contains the pilot-job manager with the fib and var
// supply models (§III-D), the invoker lifecycle (warm-up → register →
// healthy → SIGTERM hand-off → deregister, §III-C), the client-side
// fallback wrapper of Alg. 1 (§III-E), and the monitoring perspectives
// used by the paper's evaluation (§IV-A).
package core

import (
	"math/rand"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/whisk"
)

// Mode selects the pilot-job supply model of §III-D.
type Mode uint8

// Supply models: ModeFib submits bags of fixed-length jobs with greedy
// length-proportional priorities; ModeVar submits flexible jobs whose
// length Slurm decides between --time-min and --time.
const (
	ModeFib Mode = iota
	ModeVar
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeVar {
		return "var"
	}
	return "fib"
}

// SetA1 is the job-length set the paper selected for the fib model
// (Table I, set A1).
var SetA1 = Minutes(2, 4, 6, 8, 14, 22, 34, 56, 90)

// Minutes builds a duration slice from minute values.
func Minutes(ms ...int) []time.Duration {
	out := make([]time.Duration, len(ms))
	for i, m := range ms {
		out[i] = time.Duration(m) * time.Minute
	}
	return out
}

// ManagerConfig parameterizes the HPC-Whisk job manager.
type ManagerConfig struct {
	Mode Mode

	// Partition is the tier-0 Slurm partition pilots are submitted to.
	Partition string

	// FibLengths and FibDepth: keep FibDepth queued jobs of each length
	// (the paper keeps 10 of each of the 9 A1 lengths).
	FibLengths []time.Duration
	FibDepth   int

	// VarDepth, VarMin, VarMax: keep VarDepth queued flexible jobs with
	// --time-min=VarMin and --time=VarMax (the paper keeps 100 jobs of
	// 2 min–2 h).
	VarDepth int
	VarMin   time.Duration
	VarMax   time.Duration

	// Replenish is the queue top-up period (15 s in the paper).
	Replenish time.Duration

	// WarmupSeconds is the invoker boot-to-healthy time distribution
	// (§IV-B: median 12.48 s, p95 26.5 s).
	WarmupSeconds dist.Dist

	// GracefulHandoff enables the §III-C hand-off; disabling it is the
	// unmodified-OpenWhisk ablation where SIGTERM just kills the worker.
	GracefulHandoff bool

	// InterruptRunning enables interrupting in-flight executions of
	// interrupt-safe actions during hand-off.
	InterruptRunning bool

	// DrainExitDelay is the local cleanup time between finishing the
	// hand-off and the pilot job exiting.
	DrainExitDelay time.Duration

	Invoker whisk.InvokerConfig
	Seed    int64
}

// DefaultManagerConfig returns the paper's configuration for a mode.
func DefaultManagerConfig(mode Mode) ManagerConfig {
	return ManagerConfig{
		Mode:             mode,
		Partition:        "whisk",
		FibLengths:       append([]time.Duration(nil), SetA1...),
		FibDepth:         10,
		VarDepth:         100,
		VarMin:           2 * time.Minute,
		VarMax:           120 * time.Minute,
		Replenish:        15 * time.Second,
		WarmupSeconds:    dist.WarmupSeconds(),
		GracefulHandoff:  true,
		InterruptRunning: true,
		DrainExitDelay:   2 * time.Second,
		Invoker:          whisk.DefaultInvokerConfig(),
		Seed:             1,
	}
}

// pilotPhase tracks where a pilot job is in the invoker lifecycle.
type pilotPhase uint8

const (
	phaseWarming pilotPhase = iota
	phaseHealthy
	phaseDraining
	phaseDone
)

type pilot struct {
	job       *slurm.Job
	phase     pilotPhase
	invoker   *whisk.Invoker
	warmupEv  des.Event
	healthyAt des.Time
}

// PilotManager is the external job manager of §III-D: it keeps the
// Slurm queue stocked with preemptible tier-0 pilot jobs and runs each
// started pilot through the invoker lifecycle against the controller.
type PilotManager struct {
	sim  *des.Sim
	emu  *slurm.Emulator
	ctrl *whisk.Controller
	cfg  ManagerConfig
	rng  *rand.Rand

	pilots map[*slurm.Job]*pilot
	ticker *des.Ticker

	// States tracks the OpenWhisk-level worker-state shares of
	// Tables II/III (warming / healthy / irresponsive counts over time).
	States *WorkerStates

	// ReadySpans samples, in seconds, how long each invoker stayed
	// healthy (the paper: fib mean >23 min, var mean >14 min).
	ReadySpans stats.Sample

	// Counters.
	Submitted        int
	PilotsStarted    int
	Registered       int
	Handoffs         int
	KilledInWarmup   int
	KilledUngraceful int
}

// NewPilotManager wires a manager to a Slurm emulator and controller.
func NewPilotManager(emu *slurm.Emulator, ctrl *whisk.Controller, cfg ManagerConfig) *PilotManager {
	if len(cfg.FibLengths) == 0 && cfg.Mode == ModeFib {
		panic("core: fib manager needs job lengths")
	}
	return &PilotManager{
		sim:    emu.Sim(),
		emu:    emu,
		ctrl:   ctrl,
		cfg:    cfg,
		rng:    dist.NewRand(cfg.Seed),
		pilots: map[*slurm.Job]*pilot{},
		States: NewWorkerStates(),
	}
}

// Start begins the replenishment loop (first top-up immediately).
func (m *PilotManager) Start() {
	if m.ticker != nil {
		return
	}
	m.replenish()
	m.ticker = m.sim.Every(m.cfg.Replenish, m.replenish)
}

// Stop halts replenishment (queued jobs stay queued).
func (m *PilotManager) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
		m.ticker = nil
	}
}

// replenish tops the Slurm queue up to the configured depth, creating
// new jobs only to replace ones that started (§III-D).
func (m *PilotManager) replenish() {
	switch m.cfg.Mode {
	case ModeFib:
		byLimit := m.emu.QueuedPilotsByLimit()
		for _, l := range m.cfg.FibLengths {
			for byLimit[l] < m.cfg.FibDepth {
				m.submitFib(l)
				byLimit[l]++
			}
		}
	case ModeVar:
		for m.emu.QueuedPilots() < m.cfg.VarDepth {
			m.submitVar()
		}
	}
}

func (m *PilotManager) submitFib(l time.Duration) {
	m.Submitted++
	m.emu.Submit(slurm.JobSpec{
		Name:      "hpcwhisk-fib",
		Partition: m.cfg.Partition,
		Nodes:     1,
		TimeLimit: l,
		Priority:  int64(l / time.Minute),
		OnStart:   m.onPilotStart,
		OnSigterm: m.onSigterm,
		OnEnd:     m.onEnd,
	})
}

func (m *PilotManager) submitVar() {
	m.Submitted++
	m.emu.Submit(slurm.JobSpec{
		Name:      "hpcwhisk-var",
		Partition: m.cfg.Partition,
		Nodes:     1,
		TimeMin:   m.cfg.VarMin,
		TimeLimit: m.cfg.VarMax,
		OnStart:   m.onPilotStart,
		OnSigterm: m.onSigterm,
		OnEnd:     m.onEnd,
	})
}

// onPilotStart boots the OpenWhisk invoker inside the pilot job: after
// the warm-up time it registers with the controller and turns healthy.
func (m *PilotManager) onPilotStart(j *slurm.Job) {
	m.PilotsStarted++
	p := &pilot{job: j, phase: phaseWarming}
	m.pilots[j] = p
	m.States.Add(m.sim.Now(), phaseWarming)
	warmup := dist.Seconds(m.cfg.WarmupSeconds, m.rng)
	p.warmupEv = m.sim.After(warmup, func() {
		if j.State != slurm.Running {
			return
		}
		inv := whisk.NewInvoker(m.cfg.Invoker, m.rng.Int63())
		m.ctrl.Register(inv)
		p.invoker = inv
		p.healthyAt = m.sim.Now()
		m.Registered++
		m.States.Move(m.sim.Now(), phaseWarming, phaseHealthy)
		p.phase = phaseHealthy
	})
}

// onSigterm runs the §III-C hand-off (or the ablation's hard kill).
func (m *PilotManager) onSigterm(j *slurm.Job, at des.Time) {
	p := m.pilots[j]
	if p == nil {
		return
	}
	switch p.phase {
	case phaseWarming:
		// Never registered: nothing to hand off; exit immediately.
		p.warmupEv.Stop()
		m.KilledInWarmup++
		m.finishPilot(p, at)
		m.sim.After(time.Second, j.Exit)
	case phaseHealthy:
		if !m.cfg.GracefulHandoff {
			m.KilledUngraceful++
			p.invoker.Kill()
			m.finishPilot(p, at)
			m.sim.After(time.Second, j.Exit)
			return
		}
		p.phase = phaseDraining
		m.States.Move(at, phaseHealthy, phaseDraining)
		m.ReadySpans.AddDuration(at - p.healthyAt)
		m.Handoffs++
		p.invoker.Sigterm(m.cfg.InterruptRunning, func() {
			m.sim.After(m.cfg.DrainExitDelay, func() {
				if p.phase == phaseDraining {
					m.finishPilot(p, m.sim.Now())
				}
				j.Exit()
			})
		})
	}
}

// onEnd covers every exit path, including SIGKILL before the drain
// completed (the invoker is lost with whatever it still held).
func (m *PilotManager) onEnd(j *slurm.Job, reason slurm.EndReason) {
	p := m.pilots[j]
	if p == nil {
		return
	}
	delete(m.pilots, j)
	if p.phase == phaseDone || reason == slurm.ReasonCancelled {
		return
	}
	p.warmupEv.Stop()
	if p.invoker != nil && p.invoker.State() != whisk.InvokerGone {
		if p.phase == phaseHealthy {
			m.ReadySpans.AddDuration(m.sim.Now() - p.healthyAt)
		}
		p.invoker.Kill()
	}
	m.finishPilot(p, m.sim.Now())
}

func (m *PilotManager) finishPilot(p *pilot, at des.Time) {
	if p.phase == phaseDone {
		return
	}
	m.States.Remove(at, p.phase)
	p.phase = phaseDone
}

// ActivePilots returns how many pilots are currently tracked.
func (m *PilotManager) ActivePilots() int { return len(m.pilots) }
