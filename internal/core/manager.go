// Package core implements the primary contribution of the paper: the
// HPC-Whisk layer that turns transient idle HPC nodes into OpenWhisk
// workers. It contains the policy-agnostic pilot-job engine (the
// supply decision itself lives behind policy.SupplyPolicy — the
// paper's fib and var models of §III-D are two registered policies),
// the invoker lifecycle (warm-up → register → healthy → SIGTERM
// hand-off → deregister, §III-C), the client-side fallback wrapper of
// Alg. 1 (§III-E), and the monitoring perspectives used by the paper's
// evaluation (§IV-A).
package core

import (
	"math/rand"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/policy"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/whisk"
)

// SetA1 is the job-length set the paper selected for the fib model
// (Table I, set A1).
var SetA1 = policy.SetA1

// Minutes builds a duration slice from minute values.
func Minutes(ms ...int) []time.Duration { return policy.Minutes(ms...) }

// ManagerConfig parameterizes the HPC-Whisk job manager.
type ManagerConfig struct {
	// Policy is the pilot-supply policy. When nil, the manager builds
	// the paper's fib policy from the Fib* fields below.
	Policy policy.SupplyPolicy

	// Partition is the tier-0 Slurm partition pilots are submitted to.
	Partition string

	// FibLengths and FibDepth: keep FibDepth queued jobs of each length
	// (the paper keeps 10 of each of the 9 A1 lengths). Used only when
	// Policy is nil. Var-model knobs live in policy.VarConfig.
	FibLengths []time.Duration
	FibDepth   int

	// Replenish is the queue top-up period (15 s in the paper).
	Replenish time.Duration

	// WarmupSeconds is the invoker boot-to-healthy time distribution
	// (§IV-B: median 12.48 s, p95 26.5 s).
	WarmupSeconds dist.Dist

	// GracefulHandoff enables the §III-C hand-off; disabling it is the
	// unmodified-OpenWhisk ablation where SIGTERM just kills the worker.
	GracefulHandoff bool

	// InterruptRunning enables interrupting in-flight executions of
	// interrupt-safe actions during hand-off.
	InterruptRunning bool

	// DrainExitDelay is the local cleanup time between finishing the
	// hand-off and the pilot job exiting.
	DrainExitDelay time.Duration

	// StreamingStats switches the worker-state series to O(1)-memory
	// streaming accounting (see NewWorkerStatesStreaming). Pilot
	// behavior, RNG draws, and event order are unaffected — only what
	// the accounting retains.
	StreamingStats bool

	Invoker whisk.InvokerConfig
	Seed    int64
}

// DefaultManagerConfig returns the paper's manager configuration with
// the named pilot-supply policy from the policy registry ("fib",
// "var", "adaptive", ...). Unknown names panic; validate with
// policy.New first when the name comes from user input. The Fib*
// fields stay populated with the paper values so callers that clear
// Policy keep the paper's fib supply.
func DefaultManagerConfig(policyName string) ManagerConfig {
	return ManagerConfig{
		Policy:           policy.MustNew(policyName),
		Partition:        "whisk",
		FibLengths:       append([]time.Duration(nil), SetA1...),
		FibDepth:         10,
		Replenish:        15 * time.Second,
		WarmupSeconds:    dist.WarmupSeconds(),
		GracefulHandoff:  true,
		InterruptRunning: true,
		DrainExitDelay:   2 * time.Second,
		Invoker:          whisk.DefaultInvokerConfig(),
		Seed:             1,
	}
}

// policySeedOffset decorrelates the policy's private random stream
// from the manager's warm-up/invoker stream (both pass through the
// splitmix64 finalizer, so any fixed offset yields independent
// streams).
const policySeedOffset = 7919

// pilotPhase tracks where a pilot job is in the invoker lifecycle.
type pilotPhase uint8

const (
	phaseWarming pilotPhase = iota
	phaseHealthy
	phaseDraining
	phaseDone
)

type pilot struct {
	job       *slurm.Job
	phase     pilotPhase
	invoker   *whisk.Invoker
	warmupEv  des.Event
	healthyAt des.Time
}

// PilotManager is the external job manager of §III-D: the
// policy-agnostic engine that keeps the Slurm queue stocked with
// preemptible tier-0 pilot jobs (what to stock is the supply policy's
// decision) and runs each started pilot through the invoker lifecycle
// against the controller.
type PilotManager struct {
	sim    *des.Sim
	emu    *slurm.Emulator
	ctrl   *whisk.Controller
	cfg    ManagerConfig
	rng    *rand.Rand
	policy policy.SupplyPolicy

	pilots  map[*slurm.Job]*pilot
	pending []*slurm.Job // this manager's queued, not-yet-started jobs
	ticker  *des.Ticker

	warmupFn func(any) // cached typed-arg callback: one per manager, not per pilot

	// States tracks the OpenWhisk-level worker-state shares of
	// Tables II/III (warming / healthy / irresponsive counts over time).
	States *WorkerStates

	// ReadySpans samples, in seconds, how long each invoker stayed
	// healthy (the paper: fib mean >23 min, var mean >14 min).
	ReadySpans stats.Sample

	// Counters.
	Submitted        int
	PilotsStarted    int
	Registered       int
	Handoffs         int
	KilledInWarmup   int
	KilledUngraceful int
}

// NewPilotManager wires a manager to a Slurm emulator and controller.
// A nil cfg.Policy builds the paper's fib policy from the config's
// Fib* fields.
func NewPilotManager(emu *slurm.Emulator, ctrl *whisk.Controller, cfg ManagerConfig) *PilotManager {
	pol := cfg.Policy
	if pol == nil {
		pol = policy.NewFib(policy.FibConfig{Lengths: cfg.FibLengths, Depth: cfg.FibDepth})
	}
	pol.Init(dist.NewRand(cfg.Seed + policySeedOffset))
	m := &PilotManager{
		sim:    emu.Sim(),
		emu:    emu,
		ctrl:   ctrl,
		cfg:    cfg,
		rng:    dist.NewRand(cfg.Seed),
		policy: pol,
		pilots: map[*slurm.Job]*pilot{},
		States: NewWorkerStatesStreaming(cfg.StreamingStats),
	}
	m.warmupFn = m.warmupCb
	return m
}

// Policy exposes the active supply policy (e.g. to read
// policy-specific observability like the adaptive depth).
func (m *PilotManager) Policy() policy.SupplyPolicy { return m.policy }

// Start begins the replenishment loop (first top-up immediately).
func (m *PilotManager) Start() {
	if m.ticker != nil {
		return
	}
	m.replenish()
	m.ticker = m.sim.Every(m.cfg.Replenish, m.replenish)
}

// Stop halts replenishment (queued jobs stay queued).
func (m *PilotManager) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
		m.ticker = nil
	}
}

// replenish delegates the queue top-up decision to the policy (§III-D:
// every 15 s the manager restocks what started).
func (m *PilotManager) replenish() { m.policy.Replenish(managerEnv{m}) }

// managerEnv implements policy.Env over the manager's emulator and
// controller.
type managerEnv struct{ m *PilotManager }

// Now implements policy.Env.
func (e managerEnv) Now() des.Time { return e.m.sim.Now() }

// QueuedPilots implements policy.Env.
func (e managerEnv) QueuedPilots() int { return e.m.emu.QueuedPilots() }

// QueuedFixedByLimit implements policy.Env.
func (e managerEnv) QueuedFixedByLimit() map[time.Duration]int {
	return e.m.emu.QueuedPilotsByLimit()
}

// QueuedFlexible implements policy.Env.
func (e managerEnv) QueuedFlexible() int { return e.m.emu.QueuedFlexiblePilots() }

// RunningPilots implements policy.Env.
func (e managerEnv) RunningPilots() int { return len(e.m.pilots) }

// HealthyInvokers implements policy.Env.
func (e managerEnv) HealthyInvokers() int { return e.m.ctrl.HealthyCount() }

// InvokerUtilization implements policy.Env.
func (e managerEnv) InvokerUtilization() float64 { return e.m.ctrl.Utilization() }

// Invocations implements policy.Env.
func (e managerEnv) Invocations() (completed, rejected503 int) {
	c := e.m.ctrl
	return c.NSuccess + c.NFailed + c.NTimeout + c.N503, c.N503
}

// SubmitFixed implements policy.Env.
func (e managerEnv) SubmitFixed(limit time.Duration, priority int64) {
	m := e.m
	m.Submitted++
	j := m.emu.Submit(slurm.JobSpec{
		Name:      "hpcwhisk-" + m.policy.Name(),
		Partition: m.cfg.Partition,
		Nodes:     1,
		TimeLimit: limit,
		Priority:  priority,
		OnStart:   m.onPilotStart,
		OnSigterm: m.onSigterm,
		OnEnd:     m.onEnd,
	})
	m.pending = append(m.pending, j)
}

// SubmitFlexible implements policy.Env.
func (e managerEnv) SubmitFlexible(min, max time.Duration) {
	m := e.m
	m.Submitted++
	j := m.emu.Submit(slurm.JobSpec{
		Name:      "hpcwhisk-" + m.policy.Name(),
		Partition: m.cfg.Partition,
		Nodes:     1,
		TimeMin:   min,
		TimeLimit: max,
		OnStart:   m.onPilotStart,
		OnSigterm: m.onSigterm,
		OnEnd:     m.onEnd,
	})
	m.pending = append(m.pending, j)
}

// CancelQueued implements policy.Env: it cancels up to n of this
// manager's pending pilots, newest first (the oldest keep their queue
// age).
func (e managerEnv) CancelQueued(n int) int {
	m := e.m
	cancelled := 0
	for cancelled < n && len(m.pending) > 0 {
		last := len(m.pending) - 1
		j := m.pending[last]
		m.pending[last] = nil
		m.pending = m.pending[:last]
		if m.emu.Cancel(j) {
			cancelled++
		}
	}
	return cancelled
}

// removePending drops a job that left the queue (it started).
func (m *PilotManager) removePending(j *slurm.Job) {
	for i, q := range m.pending {
		if q == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			return
		}
	}
}

// onPilotStart boots the OpenWhisk invoker inside the pilot job: after
// the warm-up time it registers with the controller and turns healthy.
func (m *PilotManager) onPilotStart(j *slurm.Job) {
	m.removePending(j)
	m.PilotsStarted++
	p := &pilot{job: j, phase: phaseWarming}
	m.pilots[j] = p
	m.States.Add(m.sim.Now(), phaseWarming)
	warmup := dist.Seconds(m.cfg.WarmupSeconds, m.rng)
	p.warmupEv = m.sim.AfterCall(warmup, m.warmupFn, p)
	m.policy.PilotStarted(managerEnv{m})
}

// warmupCb completes a pilot's boot: the invoker registers with the
// controller and the worker turns healthy.
func (m *PilotManager) warmupCb(v any) {
	p := v.(*pilot)
	if p.job.State != slurm.Running {
		return
	}
	inv := whisk.NewInvoker(m.cfg.Invoker, m.rng.Int63())
	m.ctrl.Register(inv)
	p.invoker = inv
	p.healthyAt = m.sim.Now()
	m.Registered++
	m.States.Move(m.sim.Now(), phaseWarming, phaseHealthy)
	p.phase = phaseHealthy
}

// onSigterm runs the §III-C hand-off (or the ablation's hard kill).
func (m *PilotManager) onSigterm(j *slurm.Job, at des.Time) {
	p := m.pilots[j]
	if p == nil {
		return
	}
	switch p.phase {
	case phaseWarming:
		// Never registered: nothing to hand off; exit immediately.
		p.warmupEv.Stop()
		m.KilledInWarmup++
		m.finishPilot(p, at)
		m.sim.AfterCall(time.Second, exitJob, j)
	case phaseHealthy:
		if !m.cfg.GracefulHandoff {
			m.KilledUngraceful++
			p.invoker.Kill()
			m.finishPilot(p, at)
			m.sim.AfterCall(time.Second, exitJob, j)
			return
		}
		p.phase = phaseDraining
		m.States.Move(at, phaseHealthy, phaseDraining)
		m.ReadySpans.AddDuration(at - p.healthyAt)
		m.Handoffs++
		p.invoker.Sigterm(m.cfg.InterruptRunning, func() {
			m.sim.After(m.cfg.DrainExitDelay, func() {
				if p.phase == phaseDraining {
					m.finishPilot(p, m.sim.Now())
				}
				j.Exit()
			})
		})
	}
}

// onEnd covers every exit path, including SIGKILL before the drain
// completed (the invoker is lost with whatever it still held). The
// policy observes the end of every started pilot.
func (m *PilotManager) onEnd(j *slurm.Job, reason slurm.EndReason) {
	p := m.pilots[j]
	if p == nil {
		// A queued job that never started (cancelled externally, e.g.
		// scancel): forget it, or CancelQueued would later pop the
		// stale entry and trim fewer live pilots than asked.
		m.removePending(j)
		return
	}
	delete(m.pilots, j)
	if p.phase != phaseDone && reason != slurm.ReasonCancelled {
		p.warmupEv.Stop()
		if p.invoker != nil && p.invoker.State() != whisk.InvokerGone {
			if p.phase == phaseHealthy {
				m.ReadySpans.AddDuration(m.sim.Now() - p.healthyAt)
			}
			p.invoker.Kill()
		}
		m.finishPilot(p, m.sim.Now())
	}
	m.policy.PilotEnded(managerEnv{m}, policy.PilotEnd{
		Reason:     endReason(reason),
		Limit:      j.Granted,
		Registered: p.invoker != nil,
	})
}

// exitJob is the shared typed-arg callback for delayed pilot exits.
func exitJob(v any) { v.(*slurm.Job).Exit() }

// endReason maps the emulator's exit reasons onto the policy view.
func endReason(r slurm.EndReason) policy.EndReason {
	switch r {
	case slurm.ReasonPreempted:
		return policy.EndPreempted
	case slurm.ReasonTimeout:
		return policy.EndExpired
	default:
		return policy.EndOther
	}
}

func (m *PilotManager) finishPilot(p *pilot, at des.Time) {
	if p.phase == phaseDone {
		return
	}
	m.States.Remove(at, p.phase)
	p.phase = phaseDone
}

// ActivePilots returns how many pilots are currently tracked.
func (m *PilotManager) ActivePilots() int { return len(m.pilots) }
