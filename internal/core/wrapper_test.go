package core

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/checkpoint"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/lambda"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// TestWrapperNoHealthyInvokerNoFallback drives Alg. 1 through a real
// deployment that never gets an invoker (empty availability trace) and
// no fallback configured: the controller's 503 must surface to the
// caller unchanged — once per call, with no retry loop and no
// fallback accounting.
func TestWrapperNoHealthyInvokerNoFallback(t *testing.T) {
	sys := NewSystem(DefaultSystemConfig(4, "fib"))
	sys.LoadTrace(&workload.Trace{Nodes: 4, Horizon: time.Hour}) // no idle periods: no pilots, no invokers
	sys.Ctrl.RegisterAction(&whisk.Action{Name: "f", MemoryMB: 256, Exec: whisk.FixedExec(time.Millisecond)})
	w := NewWrapper(sys.Sim, sys.Ctrl, nil)
	sys.Start()

	// The wired deployment pools invocations, so the callback copies the
	// status instead of retaining the (recyclable) invocation pointer.
	var got []whisk.Status
	for i := 0; i < 3; i++ {
		at := time.Duration(i) * time.Minute
		sys.Sim.Schedule(at, func() {
			w.Invoke("f", func(inv *whisk.Invocation) { got = append(got, inv.Status) })
		})
	}
	sys.Run(time.Hour)

	if len(got) != 3 {
		t.Fatalf("%d completions, want 3", len(got))
	}
	for i, st := range got {
		if st != whisk.Status503 {
			t.Errorf("call %d status %v, want 503 surfaced", i, st)
		}
	}
	if w.PrimaryCalls != 3 || w.FallbackCalls != 0 || w.Retries != 0 {
		t.Errorf("counters primary=%d fallback=%d retries=%d, want 3/0/0",
			w.PrimaryCalls, w.FallbackCalls, w.Retries)
	}
}

// statusBackend completes every invocation with a fixed status after a
// delay.
type statusBackend struct {
	sim    *des.Sim
	status whisk.Status
	delay  time.Duration
	calls  int
}

func (b *statusBackend) Invoke(action string, done func(*whisk.Invocation)) *whisk.Invocation {
	b.calls++
	inv := &whisk.Invocation{Submitted: b.sim.Now(), InvokerID: -1}
	b.sim.After(b.delay, func() {
		inv.Completed = b.sim.Now()
		inv.Status = b.status
		if done != nil {
			done(inv)
		}
	})
	return inv
}

// TestWrapperFallbackFailurePropagates pins the failure path of the
// off-loading branch: when the primary 503s and the *fallback* then
// fails, the failure reaches the caller as-is — Alg. 1 retries 503s,
// not fallback errors — and the wrapper neither loops nor re-probes
// the primary for it.
func TestWrapperFallbackFailurePropagates(t *testing.T) {
	for _, status := range []whisk.Status{whisk.StatusFailed, whisk.StatusTimeout} {
		sim := des.New()
		primary := &statusBackend{sim: sim, status: whisk.Status503, delay: 10 * time.Millisecond}
		fb := &statusBackend{sim: sim, status: status, delay: 5 * time.Millisecond}
		w := NewWrapper(sim, primary, fb)

		var got *whisk.Invocation
		w.Invoke("f", func(inv *whisk.Invocation) { got = inv })
		sim.Run()

		if got == nil || got.Status != status {
			t.Fatalf("status %s: got %+v, want the fallback failure propagated", status, got)
		}
		if primary.calls != 1 || fb.calls != 1 {
			t.Errorf("status %s: primary=%d fallback=%d calls, want 1/1 (no retry of a fallback failure)",
				status, primary.calls, fb.calls)
		}
		if w.Retries != 1 {
			t.Errorf("status %s: retries=%d, want 1 (the 503 retry only)", status, w.Retries)
		}

		// Within the cooldown a second call must go straight to the
		// (still failing) fallback and surface that failure too.
		w.Invoke("f", func(inv *whisk.Invocation) { got = inv })
		sim.Run()
		if got == nil || got.Status != status {
			t.Fatalf("status %s: cooldown call got %+v, want fallback failure", status, got)
		}
		if primary.calls != 1 || fb.calls != 2 {
			t.Errorf("status %s: after cooldown call primary=%d fallback=%d, want 1/2",
				status, primary.calls, fb.calls)
		}
	}
}

// TestWrapperRetryLatencySpansFullChain pins the client-observed
// latency semantics of a retried call: Alg. 1 hides the retry, so
// Completed−Submitted on the invocation handed to done must cover the
// whole chain from the original submission — including the primary's
// 503 round trip — not just the fallback leg. (Clients compute latency
// from those fields since the request path stopped allocating a
// per-request closure; the wrapper back-dates retried invocations to
// keep the measurement unchanged.)
func TestWrapperRetryLatencySpansFullChain(t *testing.T) {
	sim := des.New()
	primary := &statusBackend{sim: sim, status: whisk.Status503, delay: 20 * time.Millisecond}
	fb := &statusBackend{sim: sim, status: whisk.StatusSuccess, delay: 30 * time.Millisecond}
	w := NewWrapper(sim, primary, fb)

	issue := 5 * time.Millisecond
	var sub, comp time.Duration
	sim.Schedule(issue, func() {
		w.Invoke("f", func(inv *whisk.Invocation) {
			sub, comp = inv.Submitted, inv.Completed
		})
	})
	sim.Run()

	if sub != issue {
		t.Errorf("Submitted = %v, want the original issue instant %v", sub, issue)
	}
	if want := issue + 20*time.Millisecond + 30*time.Millisecond; comp != want {
		t.Errorf("Completed = %v, want %v (503 round trip + fallback leg)", comp, want)
	}
}

// TestWrapperResumesTimeoutOnCloud pins the checkpoint extension of
// Alg. 1: a checkpointed execution whose client-visible timeout expires
// with durable progress continues on the commercial cloud from its last
// checkpoint — the caller sees one successful invocation back-dated to
// the original submission, never the timeout. With the gate off (the
// default) the same run surfaces the timeout unchanged.
func TestWrapperResumesTimeoutOnCloud(t *testing.T) {
	run := func(resumeTimeouts bool) (whisk.Status, int, *Wrapper, *lambda.Client, *whisk.Controller) {
		sim := des.New()
		b := bus.New(sim, nil, 1)
		cfg := whisk.DefaultControllerConfig()
		cfg.ActionTimeout = 2 * time.Second
		ctrl := whisk.NewController(sim, b, cfg, 2)
		ctrl.RegisterAction(&whisk.Action{
			Name: "f", MemoryMB: 256,
			Exec:          whisk.FixedExec(30 * time.Second),
			Interruptible: true,
			Checkpoint: &checkpoint.Model{
				Interval:        dist.Constant{Value: 1},
				Cost:            dist.Constant{Value: 0.1},
				StateMB:         dist.Constant{Value: 64},
				BandwidthMBps:   dist.Constant{Value: 1000},
				RestoreOverhead: dist.Constant{Value: 0.5},
			},
		})
		ctrl.Register(whisk.NewInvoker(whisk.DefaultInvokerConfig(), 3))
		fb := lambda.NewClient(sim, lambda.DefaultClientConfig(), 4)
		w := NewWrapper(sim, ctrl, fb)
		w.ResumeTimeouts = resumeTimeouts

		status, resumes := whisk.StatusPending, 0
		w.Invoke("f", func(inv *whisk.Invocation) { status, resumes = inv.Status, inv.Resumes })
		sim.RunFor(5 * time.Minute)
		return status, resumes, w, fb, ctrl
	}

	status, resumes, w, fb, ctrl := run(true)
	if status != whisk.StatusSuccess {
		t.Fatalf("status = %v, want the cloud resume to succeed", status)
	}
	if resumes != 1 {
		t.Errorf("resumes = %d, want 1", resumes)
	}
	if w.CloudResumes != 1 || fb.Resumes != 1 || ctrl.Work.CloudResumes != 1 {
		t.Errorf("cloud resumes wrapper=%d client=%d ledger=%d, want 1/1/1",
			w.CloudResumes, fb.Resumes, ctrl.Work.CloudResumes)
	}

	status, _, w, fb, _ = run(false)
	if status != whisk.StatusTimeout {
		t.Fatalf("gated off: status = %v, want the timeout surfaced", status)
	}
	if w.CloudResumes != 0 || fb.Resumes != 0 {
		t.Errorf("gated off: cloud resumes wrapper=%d client=%d, want 0/0", w.CloudResumes, fb.Resumes)
	}
}

// TestWrapperResumeBackDatesSubmission pins the latency semantics of a
// cloud resume: like the 503 retry, the resumed invocation's Submitted
// is back-dated to the original submission so Completed−Submitted spans
// the stranded cluster attempt plus the cloud leg.
func TestWrapperResumeBackDatesSubmission(t *testing.T) {
	sim := des.New()
	b := bus.New(sim, nil, 1)
	cfg := whisk.DefaultControllerConfig()
	cfg.ActionTimeout = 2 * time.Second
	ctrl := whisk.NewController(sim, b, cfg, 2)
	ctrl.RegisterAction(&whisk.Action{
		Name: "f", MemoryMB: 256,
		Exec:          whisk.FixedExec(30 * time.Second),
		Interruptible: true,
		Checkpoint: &checkpoint.Model{
			Interval:        dist.Constant{Value: 1},
			Cost:            dist.Constant{Value: 0.1},
			StateMB:         dist.Constant{Value: 64},
			BandwidthMBps:   dist.Constant{Value: 1000},
			RestoreOverhead: dist.Constant{Value: 0.5},
		},
	})
	ctrl.Register(whisk.NewInvoker(whisk.DefaultInvokerConfig(), 3))
	w := NewWrapper(sim, ctrl, lambda.NewClient(sim, lambda.DefaultClientConfig(), 4))
	w.ResumeTimeouts = true

	issue := 7 * time.Second
	var sub, comp time.Duration
	sim.Schedule(issue, func() {
		w.Invoke("f", func(inv *whisk.Invocation) { sub, comp = inv.Submitted, inv.Completed })
	})
	sim.RunFor(10 * time.Minute)

	if sub != issue {
		t.Errorf("Submitted = %v, want the original issue instant %v", sub, issue)
	}
	// The chain is at least the 2 s cluster timeout plus the remaining
	// body on the cloud (< full 30 s — the resume skipped completed work).
	if comp-sub <= 2*time.Second || comp-sub >= 40*time.Second {
		t.Errorf("client-observed latency = %v, want timeout + cloud leg", comp-sub)
	}
}
