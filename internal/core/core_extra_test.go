package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/des"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// TestWrapperNeverSurfaces503: with a fallback configured, no caller
// ever sees a 503, whatever the primary's availability pattern.
func TestWrapperNeverSurfaces503(t *testing.T) {
	f := func(flaps []uint8) bool {
		sim := des.New()
		fb := &fakeBackend{sim: sim, delay: 5 * time.Millisecond}
		primary := &patternBackend{sim: sim, pattern: flaps}
		w := NewWrapper(sim, primary, fb)
		saw503 := false
		for i := 0; i < 30; i++ {
			sim.Schedule(des.Time(i)*des.Time(7*time.Second), func() {
				w.Invoke("f", func(inv *whisk.Invocation) {
					if inv.Status == whisk.Status503 {
						saw503 = true
					}
				})
			})
		}
		sim.Run()
		return !saw503
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// patternBackend 503s whenever the pattern byte is odd.
type patternBackend struct {
	sim     *des.Sim
	pattern []uint8
	calls   int
}

func (p *patternBackend) Invoke(action string, done func(*whisk.Invocation)) *whisk.Invocation {
	i := p.calls
	p.calls++
	status := whisk.StatusSuccess
	if len(p.pattern) > 0 && p.pattern[i%len(p.pattern)]%2 == 1 {
		status = whisk.Status503
	}
	inv := &whisk.Invocation{Submitted: p.sim.Now(), InvokerID: -1}
	p.sim.After(10*time.Millisecond, func() {
		inv.Completed = p.sim.Now()
		inv.Status = status
		if done != nil {
			done(inv)
		}
	})
	return inv
}

// TestWrapperWithoutFallbackSurfaces503: no fallback → the caller sees
// the 503 (and no infinite retry loop).
func TestWrapperWithoutFallbackSurfaces503(t *testing.T) {
	sim := des.New()
	primary := &patternBackend{sim: sim, pattern: []uint8{1}}
	w := NewWrapper(sim, primary, nil)
	var got *whisk.Invocation
	w.Invoke("f", func(inv *whisk.Invocation) { got = inv })
	sim.Run()
	if got == nil || got.Status != whisk.Status503 {
		t.Fatalf("got %+v, want surfaced 503", got)
	}
	if w.Retries != 0 {
		t.Errorf("retries = %d without a fallback", w.Retries)
	}
}

// TestWrapperCooldownBoundary: a call exactly at the cooldown edge goes
// back to the primary.
func TestWrapperCooldownBoundary(t *testing.T) {
	sim := des.New()
	fb := &fakeBackend{sim: sim, delay: time.Millisecond}
	primary := &flakyBackend{sim: sim, failUntil: time.Second}
	w := NewWrapper(sim, primary, fb)
	w.Invoke("f", nil) // at t=0: 503 → fallback; cooldown starts ≈t=20ms
	sim.RunUntil(62 * time.Second)
	w.Invoke("f", nil) // > 60s after the 503: probe primary again
	sim.Run()
	if primary.calls != 2 {
		t.Errorf("primary calls = %d, want 2 (probe after cooldown)", primary.calls)
	}
}

// TestVarManagerSubmitsFlexibleSpecs.
func TestVarManagerSubmitsFlexibleSpecs(t *testing.T) {
	s := newFibSystem(4, "var", 21)
	s.LoadTrace(&workload.Trace{Nodes: 4, Horizon: time.Hour})
	s.Start()
	s.Run(time.Minute)
	if got := s.Slurm.QueuedFlexiblePilots(); got != 100 {
		t.Fatalf("queued flexible pilots = %d, want 100", got)
	}
	if byLimit := s.Slurm.QueuedPilotsByLimit(); len(byLimit) != 0 {
		t.Fatalf("flexible jobs leaked into the fixed-length buckets: %v", byLimit)
	}
}

// TestManagerStopHaltsReplenishment.
func TestManagerStopHaltsReplenishment(t *testing.T) {
	s := newFibSystem(4, "fib", 22)
	tr := smallTrace(4, time.Hour, 23, 2)
	s.LoadTrace(tr)
	s.Start()
	s.Run(10 * time.Minute)
	s.Manager.Stop()
	queuedBefore := s.Slurm.QueuedPilots()
	s.Run(20 * time.Minute)
	if got := s.Slurm.QueuedPilots(); got > queuedBefore {
		t.Errorf("queue grew after Stop: %d → %d", queuedBefore, got)
	}
}

// TestSlurmLevelStatsMath: shares derived from entries are consistent.
func TestSlurmLevelStatsMath(t *testing.T) {
	l := &SlurmLogger{}
	l.Entries = []SlurmLogEntry{
		{At: 0, Idle: 2, Pilot: 8},
		{At: 10 * time.Second, Idle: 0, Pilot: 0},
		{At: 20 * time.Second, Idle: 5, Pilot: 5},
	}
	s := l.Stats()
	if s.Measurements != 3 {
		t.Errorf("measurements = %d", s.Measurements)
	}
	wantUsed := 13.0 / 20.0
	if d := s.ShareUsed - wantUsed; d < -1e-9 || d > 1e-9 {
		t.Errorf("share used = %v, want %v", s.ShareUsed, wantUsed)
	}
	if s.ZeroAvailableStates != 1 || s.ZeroWorkerStates != 1 {
		t.Errorf("zero counts = %d/%d", s.ZeroAvailableStates, s.ZeroWorkerStates)
	}
	if s.AvailableAvg != 20.0/3.0 {
		t.Errorf("available avg = %v", s.AvailableAvg)
	}
}

// TestHandoffWithinGrace: the §III-C drain always finishes well inside
// the 3-minute grace for sleep-style functions, so SIGKILL never fires.
func TestHandoffWithinGrace(t *testing.T) {
	s := newFibSystem(8, "fib", 24)
	tr := smallTrace(8, 2*time.Hour, 25, 4)
	s.LoadTrace(tr)
	s.Ctrl.RegisterAction(&whisk.Action{
		Name: "q", Exec: whisk.FixedExec(200 * time.Millisecond), Interruptible: true,
	})
	tick := s.Sim.Every(time.Second, func() { s.Ctrl.Invoke("q", nil) })
	s.Start()
	s.Run(2 * time.Hour)
	tick.Stop()
	s.Run(5 * time.Minute)
	if s.Manager.Handoffs == 0 {
		t.Skip("no hand-offs this seed")
	}
	if s.Slurm.GracefulEx < s.Manager.Handoffs*9/10 {
		t.Errorf("graceful exits %d vs hand-offs %d: drains exceeding grace",
			s.Slurm.GracefulEx, s.Manager.Handoffs)
	}
}
