package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/whisk"
	"repro/internal/workload"
)

func smallTrace(nodes int, horizon time.Duration, seed int64, meanIdle float64) *workload.Trace {
	cfg := workload.DefaultIdleProcess(nodes, horizon, seed)
	cfg.MeanIdleNodes = meanIdle
	return cfg.Generate()
}

func newFibSystem(nodes int, policyName string, seed int64) *System {
	cfg := DefaultSystemConfig(nodes, policyName)
	cfg.Seed = seed
	return NewSystem(cfg)
}

func TestFibReplenishmentKeepsDepth(t *testing.T) {
	s := newFibSystem(8, "fib", 1)
	s.LoadTrace(&workload.Trace{Nodes: 8, Horizon: time.Hour}) // no idle windows
	s.Start()
	s.Run(5 * time.Minute)
	want := len(SetA1) * 10
	if got := s.Slurm.QueuedPilots(); got != want {
		t.Errorf("queued = %d, want %d (9 lengths × 10)", got, want)
	}
	byLimit := s.Slurm.QueuedPilotsByLimit()
	for _, l := range SetA1 {
		if byLimit[l] != 10 {
			t.Errorf("length %v: %d queued, want 10", l, byLimit[l])
		}
	}
}

func TestVarReplenishmentKeepsDepth(t *testing.T) {
	s := newFibSystem(8, "var", 1)
	s.LoadTrace(&workload.Trace{Nodes: 8, Horizon: time.Hour})
	s.Start()
	s.Run(5 * time.Minute)
	if got := s.Slurm.QueuedPilots(); got != 100 {
		t.Errorf("queued = %d, want 100", got)
	}
}

func TestPilotLifecycleEndToEnd(t *testing.T) {
	s := newFibSystem(16, "fib", 2)
	tr := smallTrace(16, 2*time.Hour, 3, 5)
	s.LoadTrace(tr)
	s.Ctrl.RegisterAction(&whisk.Action{
		Name: "hello", Exec: whisk.FixedExec(10 * time.Millisecond), Interruptible: true,
	})
	s.Start()

	successes := 0
	tick := s.Sim.Every(2*time.Second, func() {
		s.Ctrl.Invoke("hello", func(inv *whisk.Invocation) {
			if inv.Status == whisk.StatusSuccess {
				successes++
			}
		})
	})
	s.Run(2 * time.Hour)
	tick.Stop()
	s.Run(2 * time.Minute)

	if s.Manager.PilotsStarted == 0 {
		t.Fatal("no pilots ever started")
	}
	if s.Manager.Registered == 0 {
		t.Fatal("no invokers registered")
	}
	if successes == 0 {
		t.Fatal("no invocation succeeded")
	}
	total := s.Ctrl.NSuccess + s.Ctrl.NFailed + s.Ctrl.NTimeout + s.Ctrl.N503
	if frac := float64(s.Ctrl.NSuccess) / float64(total); frac < 0.5 {
		t.Errorf("success fraction = %.2f, want majority", frac)
	}
}

func TestSigtermDuringWarmupExitsCleanly(t *testing.T) {
	// A 30-second window with a long declared end: the pilot starts,
	// gets preempted while still warming up (warm-up median 12.5 s but
	// scheduling takes ~15 s, so the reclaim hits during warm-up).
	s := newFibSystem(1, "fib", 3)
	mcfg := s.Manager.cfg
	_ = mcfg
	tr := &workload.Trace{Nodes: 1, Horizon: time.Hour, Periods: []workload.IdlePeriod{
		{Node: 0, Start: 0, End: 40 * time.Second, DeclaredEnd: 30 * time.Minute},
	}}
	s.LoadTrace(tr)
	s.Start()
	s.Run(10 * time.Minute)
	if s.Manager.PilotsStarted == 0 {
		t.Skip("pilot did not start within the tiny window under this seed")
	}
	if s.Manager.Registered > 0 && s.Manager.KilledInWarmup > 0 {
		t.Errorf("pilot counted both registered and killed-in-warmup")
	}
	if s.Manager.ActivePilots() != 0 {
		t.Errorf("pilots still tracked after window closed: %d", s.Manager.ActivePilots())
	}
}

func TestGracefulHandoffPreservesWork(t *testing.T) {
	s := newFibSystem(4, "fib", 4)
	// Two long windows; one closes mid-run and preempts its pilot.
	tr := &workload.Trace{Nodes: 4, Horizon: 3 * time.Hour, Periods: []workload.IdlePeriod{
		{Node: 0, Start: 0, End: 30 * time.Minute, DeclaredEnd: 2 * time.Hour},
		{Node: 1, Start: 0, End: 3 * time.Hour, DeclaredEnd: 3 * time.Hour},
	}}
	s.LoadTrace(tr)
	s.Ctrl.RegisterAction(&whisk.Action{
		Name: "work", Exec: whisk.FixedExec(3 * time.Second), Interruptible: true,
	})
	s.Start()
	statuses := map[whisk.Status]int{}
	tick := s.Sim.Every(time.Second, func() {
		s.Ctrl.Invoke("work", func(inv *whisk.Invocation) { statuses[inv.Status]++ })
	})
	s.Run(40 * time.Minute)
	tick.Stop()
	s.Run(5 * time.Minute)

	if s.Manager.Handoffs == 0 {
		t.Fatal("no hand-off happened despite preemption")
	}
	total := 0
	for _, n := range statuses {
		total += n
	}
	lossRate := float64(statuses[whisk.StatusTimeout]) / float64(total)
	if lossRate > 0.03 {
		t.Errorf("timeout rate %.3f with graceful hand-off, want ≈0 (%v)", lossRate, statuses)
	}
}

func TestUngracefulAblationLosesWork(t *testing.T) {
	cfg := DefaultSystemConfig(4, "fib")
	cfg.Seed = 5
	cfg.Manager.GracefulHandoff = false
	s := NewSystem(cfg)
	tr := &workload.Trace{Nodes: 4, Horizon: 3 * time.Hour, Periods: []workload.IdlePeriod{
		{Node: 0, Start: 0, End: 30 * time.Minute, DeclaredEnd: 2 * time.Hour},
	}}
	s.LoadTrace(tr)
	s.Ctrl.RegisterAction(&whisk.Action{
		Name: "work", Exec: whisk.FixedExec(5 * time.Second), Interruptible: true,
	})
	s.Start()
	statuses := map[whisk.Status]int{}
	tick := s.Sim.Every(time.Second, func() {
		s.Ctrl.Invoke("work", func(inv *whisk.Invocation) { statuses[inv.Status]++ })
	})
	s.Run(40 * time.Minute)
	tick.Stop()
	s.Run(5 * time.Minute)
	if s.Manager.KilledUngraceful == 0 {
		t.Fatal("ablation never exercised the hard-kill path")
	}
	if statuses[whisk.StatusTimeout] == 0 {
		t.Errorf("hard kill lost no work: %v", statuses)
	}
}

// fakeBackend completes every call successfully after a fixed delay.
type fakeBackend struct {
	sim   *des.Sim
	delay time.Duration
	calls int
}

func (f *fakeBackend) Invoke(action string, done func(*whisk.Invocation)) *whisk.Invocation {
	f.calls++
	inv := &whisk.Invocation{Submitted: f.sim.Now(), InvokerID: -1}
	f.sim.After(f.delay, func() {
		inv.Completed = f.sim.Now()
		inv.Status = whisk.StatusSuccess
		if done != nil {
			done(inv)
		}
	})
	return inv
}

func TestWrapperFallsBackOn503(t *testing.T) {
	s := newFibSystem(2, "fib", 6)
	s.LoadTrace(&workload.Trace{Nodes: 2, Horizon: time.Hour}) // never any invoker
	s.Ctrl.RegisterAction(&whisk.Action{Name: "f", Exec: whisk.FixedExec(time.Millisecond)})
	s.Start()
	fb := &fakeBackend{sim: s.Sim, delay: 150 * time.Millisecond}
	w := NewWrapper(s.Sim, s.Ctrl, fb)

	results := 0
	for i := 0; i < 5; i++ {
		s.Sim.Schedule(des.Time(i)*des.Time(10*time.Second), func() {
			w.Invoke("f", func(inv *whisk.Invocation) {
				if inv.Status == whisk.StatusSuccess {
					results++
				}
			})
		})
	}
	s.Run(2 * time.Minute)
	if results != 5 {
		t.Fatalf("wrapper delivered %d of 5", results)
	}
	// First call hits the primary, 503s, retries to the fallback; the
	// rest (within 60 s cooldown) go straight to the fallback.
	if w.Retries != 1 {
		t.Errorf("retries = %d, want 1", w.Retries)
	}
	if w.PrimaryCalls != 1 {
		t.Errorf("primary calls = %d, want 1", w.PrimaryCalls)
	}
	if fb.calls != 5 {
		t.Errorf("fallback calls = %d, want 5", fb.calls)
	}
}

func TestWrapperRecoversAfterCooldown(t *testing.T) {
	sim := des.New()
	flaky := &flakyBackend{sim: sim, failUntil: 30 * time.Second}
	fb := &fakeBackend{sim: sim, delay: 10 * time.Millisecond}
	w := NewWrapper(sim, flaky, fb)
	var statuses []whisk.Status
	for i := 0; i < 12; i++ {
		at := des.Time(i) * des.Time(15*time.Second)
		sim.Schedule(at, func() {
			w.Invoke("f", func(inv *whisk.Invocation) { statuses = append(statuses, inv.Status) })
		})
	}
	sim.Run()
	for i, st := range statuses {
		if st != whisk.StatusSuccess {
			t.Errorf("call %d status %v", i, st)
		}
	}
	// After the cooldown expires (60 s past the last 503 at ~15 s), the
	// wrapper probes the primary again.
	if flaky.calls < 2 {
		t.Errorf("primary probed %d times, want ≥2 (recovery)", flaky.calls)
	}
}

type flakyBackend struct {
	sim       *des.Sim
	failUntil des.Time
	calls     int
}

func (f *flakyBackend) Invoke(action string, done func(*whisk.Invocation)) *whisk.Invocation {
	f.calls++
	inv := &whisk.Invocation{Submitted: f.sim.Now(), InvokerID: -1}
	status := whisk.StatusSuccess
	if f.sim.Now() < f.failUntil {
		status = whisk.Status503
	}
	f.sim.After(20*time.Millisecond, func() {
		inv.Completed = f.sim.Now()
		inv.Status = status
		if done != nil {
			done(inv)
		}
	})
	return inv
}

func TestSlurmLoggerSpacing(t *testing.T) {
	s := newFibSystem(8, "fib", 7)
	s.LoadTrace(smallTrace(8, time.Hour, 8, 3))
	s.Start()
	s.Run(time.Hour)
	st := s.Logger.Stats()
	if st.Measurements < 300 {
		t.Fatalf("only %d measurements in an hour", st.Measurements)
	}
	if st.AvgSpacing < 10*time.Second || st.AvgSpacing > 11*time.Second {
		t.Errorf("average spacing = %v, want 10.3-10.7s", st.AvgSpacing)
	}
}

func TestOWStatsShape(t *testing.T) {
	s := newFibSystem(16, "fib", 9)
	s.LoadTrace(smallTrace(16, 2*time.Hour, 10, 5))
	s.Start()
	s.Run(2 * time.Hour)
	o := s.Manager.OWStats(2 * time.Hour)
	if o.HealthyAvg <= 0 {
		t.Errorf("healthy avg = %v, want > 0", o.HealthyAvg)
	}
	if o.WarmupAvg <= 0 || o.WarmupAvg > 1.5 {
		t.Errorf("warming avg = %v, want small but positive", o.WarmupAvg)
	}
	if o.IrrespAvg < 0 || o.IrrespAvg > 1.0 {
		t.Errorf("irresponsive avg = %v, want tiny", o.IrrespAvg)
	}
	if o.ReadySpanAvg <= 0 {
		t.Errorf("ready span avg = %v", o.ReadySpanAvg)
	}
}

func TestWorkerStatesConservation(t *testing.T) {
	ws := NewWorkerStates()
	ws.Add(0, phaseWarming)
	ws.Move(10*time.Second, phaseWarming, phaseHealthy)
	ws.Move(30*time.Second, phaseHealthy, phaseDraining)
	ws.Remove(40*time.Second, phaseDraining)
	ws.Finish(60 * time.Second)
	if m := ws.Warming.TimeMean(); m < 0.16 || m > 0.17 {
		t.Errorf("warming mean = %v, want 10/60", m)
	}
	if m := ws.Healthy.TimeMean(); m < 0.33 || m > 0.34 {
		t.Errorf("healthy mean = %v, want 20/60", m)
	}
	if got := ws.HealthyNow(); got != 0 {
		t.Errorf("healthy now = %d", got)
	}
}

func TestMinutesHelper(t *testing.T) {
	ds := Minutes(2, 90)
	if ds[0] != 2*time.Minute || ds[1] != 90*time.Minute {
		t.Errorf("Minutes = %v", ds)
	}
}

func TestReadySpansRecorded(t *testing.T) {
	s := newFibSystem(8, "fib", 11)
	s.LoadTrace(smallTrace(8, 90*time.Minute, 12, 4))
	s.Start()
	s.Run(90 * time.Minute)
	if s.Manager.Handoffs+s.Manager.KilledInWarmup == 0 {
		t.Skip("no terminations in this window")
	}
	if s.Manager.Handoffs > 0 && s.Manager.ReadySpans.Len() == 0 {
		t.Error("hand-offs happened but no ready spans recorded")
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() string {
		s := newFibSystem(8, "fib", 42)
		s.LoadTrace(smallTrace(8, time.Hour, 43, 4))
		s.Start()
		s.Run(time.Hour)
		return fmt.Sprintf("%d/%d/%d/%d",
			s.Manager.PilotsStarted, s.Manager.Registered,
			s.Slurm.Preempted, len(s.Logger.Entries))
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %s vs %s", a, b)
	}
}
