package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestRunCtxChunksMatchRun: epoch-chunked advancement must fire the
// same events as one monolithic Run — the property every scenario
// golden relies on — checked via the emulator counters of two
// identically seeded systems.
func TestRunCtxChunksMatchRun(t *testing.T) {
	build := func() *System {
		s := NewSystem(DefaultSystemConfig(16, "fib"))
		cfg := workload.DefaultIdleProcess(16, 2*time.Hour, 11)
		cfg.MeanIdleNodes = 4
		s.LoadTrace(cfg.Generate())
		s.Start()
		return s
	}
	a := build()
	a.Run(2 * time.Hour)
	b := build()
	if err := b.RunCtx(context.Background(), 2*time.Hour, 7*time.Minute, nil); err != nil {
		t.Fatal(err)
	}
	if a.Manager.PilotsStarted != b.Manager.PilotsStarted ||
		a.Manager.Submitted != b.Manager.Submitted ||
		a.Slurm.Preempted != b.Slurm.Preempted {
		t.Errorf("chunked run diverged: pilots %d/%d submitted %d/%d preempted %d/%d",
			a.Manager.PilotsStarted, b.Manager.PilotsStarted,
			a.Manager.Submitted, b.Manager.Submitted,
			a.Slurm.Preempted, b.Slurm.Preempted)
	}
}

// TestRunCtxCompletionBeatsCancellation: a cancellation that lands
// after the final epoch has fired must not turn a fully simulated run
// into a partial-result error.
func TestRunCtxCompletionBeatsCancellation(t *testing.T) {
	sys := NewSystem(DefaultSystemConfig(8, "fib"))
	sys.LoadTrace(&workload.Trace{Nodes: 8, Horizon: time.Hour})
	sys.Start()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := sys.RunCtx(ctx, time.Hour, 0, func(done, total time.Duration) {
		if done >= total {
			cancel() // races completion: the run is already whole
		}
	})
	if err != nil {
		t.Fatalf("completed run reported %v", err)
	}
	if sys.Sim.Now() != time.Hour {
		t.Errorf("clock at %v, want the full hour", sys.Sim.Now())
	}
}
