package stats

import (
	"math"
	"time"
)

// DefaultCompression is the t-digest compression the streaming metric
// paths use. At δ=200 the sketch holds at most ~2δ centroids (≈26 KB
// including buffers) and the observed rank error on the day-golden
// latency streams is well under the documented ε (see Epsilon).
const DefaultCompression = 200

// Epsilon returns the documented rank-error bound of a digest with the
// given compression: a Quantile(p) estimate corresponds to an exact
// quantile at some p' with |p'-p| ≤ Epsilon(compression). The k1 scale
// function concentrates centroids at the tails, so the practical error
// at p≤0.01 or p≥0.99 is far smaller; this bound is the one the
// property tests pin against exact Summarize quantiles on the
// fib-day/var-day goldens.
func Epsilon(compression float64) float64 {
	if compression <= 0 {
		compression = DefaultCompression
	}
	return 6 / compression
}

// centroid is one weighted cluster of a t-digest.
type centroid struct{ mean, weight float64 }

// TDigest is a mergeable quantile sketch (Dunning's t-digest, merging
// variant with the k1 scale function): observations stream in through
// Add/AddWeighted, memory stays O(compression) regardless of how many
// arrive, and Quantile answers within the Epsilon rank-error bound.
// Two digests built on disjoint streams Merge into the digest of the
// union, which is what lets sweep replicas and federation shards
// aggregate latency distributions without concatenating samples.
//
// The digest is allocation-free in steady state: all buffers are sized
// at construction (NewTDigest) and the periodic compaction merges in
// place through a preallocated scratch array, so week-scale runs add
// millions of observations with zero per-observation allocations. Like
// every collector in this package it is deterministic — the centroids
// are a pure function of the observation sequence — but it is not
// safe for concurrent use.
type TDigest struct {
	comp float64

	// proc holds the compacted centroids in ascending mean order; buf
	// accumulates raw observations until the next compaction; scratch
	// is the merge target the proc/buf slices ping-pong through.
	proc, buf, scratch []centroid

	procW float64 // total weight in proc
	bufW  float64 // total weight in buf

	n        int     // Add/AddWeighted call count
	min, max float64 // exact extremes

	// Weighted streaming moments (West's algorithm), so Summarize
	// reports the exact mean and standard deviation alongside the
	// ε-approximate quantiles.
	wsum, wmean, wm2 float64
}

// NewTDigest builds a digest with the given compression δ (≤0 selects
// DefaultCompression). Larger δ means more centroids, more memory, and
// tighter quantiles; see Epsilon for the documented bound.
func NewTDigest(compression float64) *TDigest {
	if compression <= 0 {
		compression = DefaultCompression
	}
	if compression < 20 {
		compression = 20
	}
	maxCentroids := 2*int(math.Ceil(compression)) + 8
	return &TDigest{
		comp:    compression,
		proc:    make([]centroid, 0, maxCentroids),
		scratch: make([]centroid, 0, maxCentroids),
		buf:     make([]centroid, 0, 5*int(math.Ceil(compression))),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Compression returns the δ the digest was built with.
func (t *TDigest) Compression() float64 { return t.comp }

// Add records one observation. Non-finite values are dropped, matching
// the Summarize contract.
func (t *TDigest) Add(x float64) { t.AddWeighted(x, 1) }

// AddDuration records a duration observation in seconds.
func (t *TDigest) AddDuration(d time.Duration) { t.Add(d.Seconds()) }

// AddWeighted records an observation with weight w (e.g. the duration
// a piecewise-constant series spent at a value). Non-positive weights
// and non-finite values are dropped.
func (t *TDigest) AddWeighted(x, w float64) {
	if w <= 0 || math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(w) || math.IsInf(w, 0) {
		return
	}
	if len(t.buf) == cap(t.buf) {
		t.compact()
	}
	t.buf = append(t.buf, centroid{mean: x, weight: w})
	t.bufW += w
	t.n++
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	t.wsum += w
	d := x - t.wmean
	t.wmean += (w / t.wsum) * d
	t.wm2 += w * d * (x - t.wmean)
}

// Len returns the number of recorded observations (Add calls, not
// centroids), matching Sample.Len so the two satisfy one Collector
// contract.
func (t *TDigest) Len() int { return t.n }

// Weight returns the total recorded weight (== Len for unweighted use).
func (t *TDigest) Weight() float64 { return t.procW + t.bufW }

// Mean returns the exact weighted mean of the observations (streaming
// moments, not centroid approximation); 0 when empty.
func (t *TDigest) Mean() float64 { return t.wmean }

// Std returns the exact weighted standard deviation (frequency-weight
// convention, unbiased; 0 with fewer than 2 observations).
func (t *TDigest) Std() float64 {
	if t.n < 2 || t.wsum <= 1 {
		return 0
	}
	return math.Sqrt(t.wm2 / (t.wsum - 1))
}

// Min returns the exact smallest observation. It panics if empty.
func (t *TDigest) Min() float64 {
	if t.n == 0 {
		panic("stats: min of empty digest")
	}
	return t.min
}

// Max returns the exact largest observation. It panics if empty.
func (t *TDigest) Max() float64 {
	if t.n == 0 {
		panic("stats: max of empty digest")
	}
	return t.max
}

// k1 scale function: k(q) = δ/(2π)·asin(2q−1). Centroid size limits
// derived from it shrink toward the tails, which is why extreme
// quantiles stay sharp.
func (t *TDigest) k(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	return t.comp / (2 * math.Pi) * math.Asin(2*q-1)
}

// kInv inverts the scale function: q(k) = (sin(2πk/δ)+1)/2.
func (t *TDigest) kInv(k float64) float64 {
	lim := t.comp / 4
	if k >= lim {
		return 1
	}
	if k <= -lim {
		return 0
	}
	return (math.Sin(2*math.Pi*k/t.comp) + 1) / 2
}

// compact merges the buffered observations into the centroid set: sort
// the buffer, two-pointer merge with the existing centroids, and greedy
// recluster under the k1 size limits. Runs in place through scratch;
// no allocation.
func (t *TDigest) compact() {
	if len(t.buf) == 0 {
		return
	}
	sortCentroids(t.buf)
	total := t.procW + t.bufW
	out := t.scratch[:0]

	// Two-pointer merge over (proc, buf), reclustering on the fly.
	pi, bi := 0, 0
	next := func() centroid {
		if pi < len(t.proc) && (bi >= len(t.buf) || t.proc[pi].mean <= t.buf[bi].mean) {
			c := t.proc[pi]
			pi++
			return c
		}
		c := t.buf[bi]
		bi++
		return c
	}
	remaining := len(t.proc) + len(t.buf)

	cur := next()
	remaining--
	wSoFar := 0.0
	qLimit := total * t.kInv(t.k(0)+1)
	for ; remaining > 0; remaining-- {
		c := next()
		if wSoFar+cur.weight+c.weight <= qLimit {
			// Grow the current centroid (weighted mean keeps order).
			cur.mean += (c.weight / (cur.weight + c.weight)) * (c.mean - cur.mean)
			cur.weight += c.weight
		} else {
			wSoFar += cur.weight
			out = append(out, cur)
			qLimit = total * t.kInv(t.k(wSoFar/total)+1)
			cur = c
		}
	}
	out = append(out, cur)

	// Ping-pong: scratch becomes proc, the old proc array becomes the
	// next scratch.
	t.proc, t.scratch = out, t.proc[:0]
	t.procW = total
	t.buf = t.buf[:0]
	t.bufW = 0
}

// Quantile returns the ε-approximate p-quantile (0 ≤ p ≤ 1) with
// linear interpolation between centroid midpoints; the extremes are
// exact. It panics if the digest is empty, matching Sample.Quantile.
func (t *TDigest) Quantile(p float64) float64 {
	if t.n == 0 {
		panic("stats: quantile of empty digest")
	}
	t.compact()
	if p <= 0 {
		return t.min
	}
	if p >= 1 {
		return t.max
	}
	cs := t.proc
	if len(cs) == 1 {
		return cs[0].mean
	}
	target := p * t.procW

	// Walk cumulative midpoints: centroid i's mass is centered at
	// cum_i + w_i/2. Below the first midpoint lerp from the exact min,
	// above the last lerp to the exact max.
	cum := 0.0
	firstMid := cs[0].weight / 2
	if target <= firstMid {
		if firstMid == 0 {
			return cs[0].mean
		}
		return t.min + (target/firstMid)*(cs[0].mean-t.min)
	}
	for i := 0; i < len(cs)-1; i++ {
		mid := cum + cs[i].weight/2
		nextMid := cum + cs[i].weight + cs[i+1].weight/2
		if target <= nextMid {
			if nextMid == mid {
				return cs[i].mean
			}
			frac := (target - mid) / (nextMid - mid)
			return cs[i].mean + frac*(cs[i+1].mean-cs[i].mean)
		}
		cum += cs[i].weight
	}
	lastMid := cum + cs[len(cs)-1].weight/2
	if t.procW == lastMid {
		return cs[len(cs)-1].mean
	}
	frac := (target - lastMid) / (t.procW - lastMid)
	if frac > 1 {
		frac = 1
	}
	return cs[len(cs)-1].mean + frac*(t.max-cs[len(cs)-1].mean)
}

// Median returns the approximate 0.5-quantile.
func (t *TDigest) Median() float64 { return t.Quantile(0.5) }

// CDFAt returns the approximate fraction of the recorded weight at or
// below x (0 for an empty digest), the streaming counterpart of
// Sample.CDFAt.
func (t *TDigest) CDFAt(x float64) float64 {
	if t.n == 0 {
		return 0
	}
	t.compact()
	if x < t.min {
		return 0
	}
	if x >= t.max {
		return 1
	}
	cs := t.proc
	if len(cs) == 1 {
		// Single centroid: lerp across [min, max].
		if t.max == t.min {
			return 1
		}
		return (x - t.min) / (t.max - t.min)
	}
	cum := 0.0
	prevMid := 0.0
	prevMean := t.min
	for i := range cs {
		mid := cum + cs[i].weight/2
		if x < cs[i].mean {
			if cs[i].mean == prevMean {
				return mid / t.procW
			}
			frac := (x - prevMean) / (cs[i].mean - prevMean)
			return (prevMid + frac*(mid-prevMid)) / t.procW
		}
		cum += cs[i].weight
		prevMid, prevMean = mid, cs[i].mean
	}
	if t.max == prevMean {
		return 1
	}
	frac := (x - prevMean) / (t.max - prevMean)
	return (prevMid + frac*(t.procW-prevMid)) / t.procW
}

// Merge folds other into t: the result summarizes the union of both
// observation streams (exact moments and extremes, ε-approximate
// quantiles). other is left untouched apart from being compacted.
// Merging a nil or empty digest is a no-op.
func (t *TDigest) Merge(other *TDigest) {
	if other == nil || other.n == 0 {
		return
	}
	other.compact()
	for _, c := range other.proc {
		if len(t.buf) == cap(t.buf) {
			t.compact()
		}
		t.buf = append(t.buf, c)
		t.bufW += c.weight
	}
	t.n += other.n
	if other.min < t.min {
		t.min = other.min
	}
	if other.max > t.max {
		t.max = other.max
	}
	// Chan et al. pairwise moment combination.
	if t.wsum == 0 {
		t.wsum, t.wmean, t.wm2 = other.wsum, other.wmean, other.wm2
		return
	}
	d := other.wmean - t.wmean
	w := t.wsum + other.wsum
	t.wm2 += other.wm2 + d*d*t.wsum*other.wsum/w
	t.wmean += d * other.wsum / w
	t.wsum = w
}

// Clone returns an independent copy of the digest.
func (t *TDigest) Clone() *TDigest {
	out := NewTDigest(t.comp)
	out.Merge(t)
	return out
}

// Summarize condenses the digest into the Summary contract: exact
// N/mean/std/min/max from the streaming moments, ε-approximate
// quartiles from the centroids. The NaN-free edge-case contract of
// Summarize holds (empty digest → zero Summary).
func (t *TDigest) Summarize() Summary {
	if t.n == 0 {
		return Summary{}
	}
	out := Summary{
		N:      t.n,
		Mean:   t.Mean(),
		Std:    t.Std(),
		Min:    t.min,
		P25:    t.Quantile(0.25),
		Median: t.Quantile(0.5),
		P75:    t.Quantile(0.75),
		Max:    t.max,
	}
	if out.N >= 2 {
		out.CI95 = TCrit95(out.N) * out.Std / math.Sqrt(float64(out.N))
	}
	return out
}

// Centroids returns the current centroid count (after compaction) —
// the O(compression) bound that makes the digest O(1) in stream length.
func (t *TDigest) Centroids() int {
	t.compact()
	return len(t.proc)
}

// Footprint returns the retained heap bytes of the digest — constant
// in the number of observations, the point of the whole exercise.
func (t *TDigest) Footprint() int {
	const centroidBytes = 16
	return (cap(t.proc) + cap(t.buf) + cap(t.scratch)) * centroidBytes
}

// sortCentroids sorts by ascending mean (insertion sort under 16
// elements, median-of-three quicksort above). A dedicated sort keeps
// the compaction allocation-free: sort.Slice's closure and
// reflect-based swapper would allocate on every flush, and
// sort.Interface would collide with the Collector method set.
// Equal-mean runs keep their relative order irrelevant — centroids
// with equal means are interchangeable downstream.
func sortCentroids(cs []centroid) {
	for len(cs) > 16 {
		// Median-of-three pivot, middle element to cs[0].
		m := len(cs) / 2
		lo, hi := 0, len(cs)-1
		if cs[m].mean < cs[lo].mean {
			cs[m], cs[lo] = cs[lo], cs[m]
		}
		if cs[hi].mean < cs[lo].mean {
			cs[hi], cs[lo] = cs[lo], cs[hi]
		}
		if cs[hi].mean < cs[m].mean {
			cs[hi], cs[m] = cs[m], cs[hi]
		}
		pivot := cs[m].mean
		i, j := 0, len(cs)-1
		for i <= j {
			for cs[i].mean < pivot {
				i++
			}
			for cs[j].mean > pivot {
				j--
			}
			if i <= j {
				cs[i], cs[j] = cs[j], cs[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j < len(cs)-i {
			sortCentroids(cs[:j+1])
			cs = cs[i:]
		} else {
			sortCentroids(cs[i:])
			cs = cs[:j+1]
		}
	}
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && cs[j].mean > c.mean {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}
