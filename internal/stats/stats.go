// Package stats provides the measurement substrate used by every
// experiment in the HPC-Whisk reproduction: sample quantiles and CDFs,
// time-weighted state accounting over the virtual clock, per-minute
// time series, and streaming moments.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates scalar observations and answers distributional
// queries. The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration records a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) with linear interpolation.
// It panics if the sample is empty.
func (s *Sample) Quantile(p float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := p * float64(len(s.xs)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	return s.xs[i]*(1-frac) + s.xs[i+1]*frac
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the arithmetic mean; 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation. It panics if empty.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		panic("stats: min of empty sample")
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation. It panics if empty.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		panic("stats: max of empty sample")
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// CDFAt returns the fraction of observations ≤ x.
func (s *Sample) CDFAt(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	n := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(s.xs))
}

// Values returns a copy of the observations in sorted order.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// CDF renders the sample as (x, F(x)) points at the given probe points,
// e.g. to regenerate the paper's CDF figures.
func (s *Sample) CDF(probes []float64) []CDFPoint {
	out := make([]CDFPoint, len(probes))
	for i, x := range probes {
		out[i] = CDFPoint{X: x, F: s.CDFAt(x)}
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	F float64
}

// Welford tracks streaming mean and variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 points).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Histogram counts observations into fixed-width bins over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Bins     []int
	Under    int
	Over     int
	binWidth float64
}

// NewHistogram builds a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram [%v,%v)/%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n), binWidth: (hi - lo) / float64(n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Bins) {
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, b := range h.Bins {
		n += b
	}
	return n
}
