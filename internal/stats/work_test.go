package stats

import (
	"testing"
	"time"
)

func TestWorkCountersZero(t *testing.T) {
	var w WorkCounters
	if !w.Zero() {
		t.Fatal("fresh counters must be Zero")
	}
	w.Checkpoints++
	if w.Zero() {
		t.Fatal("non-empty counters must not be Zero")
	}
}

func TestWorkCountersMerge(t *testing.T) {
	a := WorkCounters{
		Checkpoints: 3, Resumed: 1, CloudResumes: 1,
		Goodput: 10 * time.Second, Wasted: 2 * time.Second, Lost: time.Second,
		CheckpointTime: 300 * time.Millisecond, RestoreTime: 700 * time.Millisecond,
	}
	b := WorkCounters{
		Checkpoints: 2, Resumed: 2,
		Goodput: 5 * time.Second, Lost: 3 * time.Second,
		RestoreTime: 100 * time.Millisecond,
	}
	a.Merge(b)
	want := WorkCounters{
		Checkpoints: 5, Resumed: 3, CloudResumes: 1,
		Goodput: 15 * time.Second, Wasted: 2 * time.Second, Lost: 4 * time.Second,
		CheckpointTime: 300 * time.Millisecond, RestoreTime: 800 * time.Millisecond,
	}
	if a != want {
		t.Fatalf("merge mismatch:\n got %+v\nwant %+v", a, want)
	}
}

func TestGoodputShare(t *testing.T) {
	var w WorkCounters
	if got := w.GoodputShare(); got != 0 {
		t.Fatalf("empty share = %f, want 0", got)
	}
	w = WorkCounters{Goodput: 3 * time.Second, Wasted: time.Second, Lost: 0,
		CheckpointTime: time.Hour, RestoreTime: time.Hour} // overheads excluded
	if got := w.GoodputShare(); got != 0.75 {
		t.Fatalf("share = %f, want 0.75", got)
	}
}
