package stats

import "time"

// TimeSeries is the seam for piecewise-constant state accounting over
// virtual time: the buffered TimeWeighted (exact, one segment per
// transition) and the streaming TimeWeightedStream (duration-weighted
// t-digest, O(1) memory) both satisfy it. The query set is the one the
// experiment tables actually read — time mean, time-weighted
// quantiles, fraction at-or-below, and the zero-level run statistics
// behind "sim time with 0 ready workers" in Tables II/III.
type TimeSeries interface {
	// Observe records that the value became v at instant t
	// (nondecreasing t).
	Observe(t time.Duration, v float64)
	// Finish closes the final segment at instant end.
	Finish(end time.Duration)
	// Duration returns the total observed span.
	Duration() time.Duration
	// TimeMean returns the time-weighted average value.
	TimeMean() float64
	// Quantile returns the time-weighted p-quantile (exact for
	// TimeWeighted, within Epsilon rank error for the stream). Panics
	// when empty.
	Quantile(p float64) float64
	// FractionAtOrBelow returns the fraction of time the value was ≤ x.
	FractionAtOrBelow(x float64) float64
	// ZeroTotal returns the total time spent exactly at zero.
	ZeroTotal() time.Duration
	// ZeroLongest returns the longest contiguous span spent at zero.
	ZeroLongest() time.Duration
	// Integral returns ∫v dt in value·seconds over the observed span.
	Integral() float64
	// Span returns the first and last observed instants.
	Span() (first, last time.Duration)
	// Footprint returns the retained heap bytes.
	Footprint() int
}

var (
	_ TimeSeries = (*TimeWeighted)(nil)
	_ TimeSeries = (*TimeWeightedStream)(nil)
)

// ZeroTotal returns the total time the value was exactly 0 —
// TotalWhere(v == 0) spelled as a TimeSeries method.
func (tw *TimeWeighted) ZeroTotal() time.Duration {
	return tw.TotalWhere(func(v float64) bool { return v == 0 })
}

// ZeroLongest returns the longest contiguous span at exactly 0 —
// LongestRunWhere(v == 0) spelled as a TimeSeries method.
func (tw *TimeWeighted) ZeroLongest() time.Duration {
	return tw.LongestRunWhere(func(v float64) bool { return v == 0 })
}

// Integral returns ∫v dt in value·seconds over the observed span.
func (tw *TimeWeighted) Integral() float64 {
	sum := 0.0
	for _, s := range tw.segments {
		sum += s.v * s.dur.Seconds()
	}
	return sum
}

// Span returns the first and last observed instants (0,0 when empty).
func (tw *TimeWeighted) Span() (first, last time.Duration) {
	if !tw.started {
		return 0, 0
	}
	return tw.firstT, tw.lastT
}

// TimeWeightedStream is the O(1)-memory TimeSeries: closed segments
// feed a duration-weighted t-digest plus streaming integrals and
// zero-run counters instead of being buffered. Exact where the tables
// need exactness (TimeMean, ZeroTotal, ZeroLongest, Duration are
// computed from running sums), ε-approximate where a sketch suffices
// (Quantile, FractionAtOrBelow). Memory is O(compression) regardless
// of how many transitions the run produces.
type TimeWeightedStream struct {
	started bool
	firstT  time.Duration
	lastT   time.Duration
	lastV   float64

	dig      *TDigest
	integral float64 // ∫v dt, value·seconds

	zeroTotal   time.Duration
	zeroRun     time.Duration
	zeroLongest time.Duration
}

// NewTimeWeightedStream builds a streaming series with the given
// digest compression (≤0 selects DefaultCompression).
func NewTimeWeightedStream(compression float64) *TimeWeightedStream {
	return &TimeWeightedStream{dig: NewTDigest(compression)}
}

// close folds the segment [lastT, t) at lastV into the running
// aggregates.
func (s *TimeWeightedStream) close(t time.Duration) {
	dur := t - s.lastT
	if dur <= 0 {
		return
	}
	s.dig.AddWeighted(s.lastV, dur.Seconds())
	s.integral += s.lastV * dur.Seconds()
	if s.lastV == 0 {
		s.zeroTotal += dur
		s.zeroRun += dur
		if s.zeroRun > s.zeroLongest {
			s.zeroLongest = s.zeroRun
		}
	} else {
		s.zeroRun = 0
	}
}

// Observe records that the value became v at instant t. Observations
// must arrive in nondecreasing time order, matching TimeWeighted.
func (s *TimeWeightedStream) Observe(t time.Duration, v float64) {
	if s.started {
		if t < s.lastT {
			panic("stats: time-weighted observation out of order")
		}
		s.close(t)
	} else {
		s.firstT = t
	}
	s.started = true
	s.lastT = t
	s.lastV = v
}

// Finish closes the final segment at instant end.
func (s *TimeWeightedStream) Finish(end time.Duration) {
	if !s.started {
		return
	}
	if end < s.lastT {
		panic("stats: finish before last observation")
	}
	s.close(end)
	s.lastT = end
}

// Duration returns the total observed span.
func (s *TimeWeightedStream) Duration() time.Duration {
	if !s.started {
		return 0
	}
	return s.lastT - s.firstT
}

// TimeMean returns the exact time-weighted average value.
func (s *TimeWeightedStream) TimeMean() float64 {
	d := s.Duration()
	if d == 0 {
		return 0
	}
	return s.integral / d.Seconds()
}

// Quantile returns the ε-approximate time-weighted p-quantile. It
// panics if nothing has been observed, matching TimeWeighted.Quantile.
func (s *TimeWeightedStream) Quantile(p float64) float64 {
	if s.dig.Len() == 0 {
		panic("stats: quantile of empty time-weighted series")
	}
	return s.dig.Quantile(p)
}

// FractionAtOrBelow returns the ε-approximate fraction of time the
// value was ≤ x (0 when empty).
func (s *TimeWeightedStream) FractionAtOrBelow(x float64) float64 {
	return s.dig.CDFAt(x)
}

// ZeroTotal returns the exact total time spent at 0.
func (s *TimeWeightedStream) ZeroTotal() time.Duration { return s.zeroTotal }

// ZeroLongest returns the exact longest contiguous span at 0.
func (s *TimeWeightedStream) ZeroLongest() time.Duration { return s.zeroLongest }

// Integral returns the exact ∫v dt in value·seconds.
func (s *TimeWeightedStream) Integral() float64 { return s.integral }

// Span returns the first and last observed instants (0,0 when empty).
func (s *TimeWeightedStream) Span() (first, last time.Duration) {
	if !s.started {
		return 0, 0
	}
	return s.firstT, s.lastT
}

// Footprint returns the retained heap bytes — the digest's constant.
func (s *TimeWeightedStream) Footprint() int { return s.dig.Footprint() }

// Digest exposes the underlying duration-weighted digest, e.g. for
// merging across federation sites.
func (s *TimeWeightedStream) Digest() *TDigest { return s.dig }

// SumTimeMeanOf returns the time mean of the pointwise sum of the
// series over their union span — the streaming counterpart of
// SumTimeWeighted(series...).TimeMean(). Outside its observed span a
// series contributes 0, so the pointwise-sum integral is just the sum
// of per-series integrals divided by the union span: exact for both
// buffered and streaming series, no event sweep and no buffering
// needed. Nil and never-observed series are skipped; 0 when nothing
// was observed.
func SumTimeMeanOf(series ...TimeSeries) float64 {
	var (
		any        bool
		start, end time.Duration
		integral   float64
	)
	for _, s := range series {
		if s == nil {
			continue
		}
		f, l := s.Span()
		if f == 0 && l == 0 && s.Duration() == 0 {
			// Never observed (or a degenerate single instant at 0,0 —
			// zero-duration either way).
			continue
		}
		if !any || f < start {
			start = f
		}
		if !any || l > end {
			end = l
		}
		any = true
		integral += s.Integral()
	}
	if !any || end <= start {
		return 0
	}
	return integral / (end - start).Seconds()
}
