package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBucketsConstantValue(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 5)
	tw.Finish(3 * time.Minute)
	got := tw.Buckets(time.Minute)
	if len(got) != 3 {
		t.Fatalf("buckets = %d, want 3", len(got))
	}
	for i, v := range got {
		if v != 5 {
			t.Errorf("bucket %d = %v, want 5", i, v)
		}
	}
}

func TestBucketsStepChange(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 0)
	tw.Observe(90*time.Second, 10)
	tw.Finish(2 * time.Minute)
	got := tw.Buckets(time.Minute)
	if len(got) != 2 {
		t.Fatalf("buckets = %d", len(got))
	}
	if got[0] != 0 {
		t.Errorf("bucket 0 = %v, want 0", got[0])
	}
	// Minute 1: 30 s at 0, 30 s at 10 → 5.
	if math.Abs(got[1]-5) > 1e-9 {
		t.Errorf("bucket 1 = %v, want 5", got[1])
	}
}

func TestBucketsPartialTail(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 4)
	tw.Finish(90 * time.Second)
	got := tw.Buckets(time.Minute)
	if len(got) != 2 {
		t.Fatalf("buckets = %d", len(got))
	}
	// The partial trailing bucket averages over its covered 30 s only.
	if got[1] != 4 {
		t.Errorf("partial bucket = %v, want 4", got[1])
	}
}

func TestBucketsNonzeroStart(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(10*time.Minute, 7)
	tw.Finish(12 * time.Minute)
	got := tw.Buckets(time.Minute)
	if len(got) != 2 || got[0] != 7 || got[1] != 7 {
		t.Errorf("buckets = %v, want [7 7] anchored at first observation", got)
	}
}

func TestBucketsEmpty(t *testing.T) {
	var tw TimeWeighted
	if got := tw.Buckets(time.Minute); got != nil {
		t.Errorf("empty series buckets = %v", got)
	}
}

func TestBucketsBadWidthPanics(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 1)
	tw.Finish(time.Minute)
	defer func() {
		if recover() == nil {
			t.Error("zero width should panic")
		}
	}()
	tw.Buckets(0)
}

// Property: the duration-weighted mean of bucket values (weighted by
// covered time) equals the overall time mean.
func TestPropertyBucketsPreserveMean(t *testing.T) {
	f := func(vals []uint8, durs []uint8) bool {
		n := len(vals)
		if len(durs) < n {
			n = len(durs)
		}
		if n == 0 {
			return true
		}
		var tw TimeWeighted
		var at time.Duration
		for i := 0; i < n; i++ {
			tw.Observe(at, float64(vals[i]))
			at += time.Duration(durs[i]+1) * time.Second
		}
		tw.Finish(at)
		buckets := tw.Buckets(7 * time.Second)
		// Reconstruct the mean from buckets: full buckets weigh 7 s,
		// the last one the remainder.
		total := tw.Duration()
		var sum float64
		var covered time.Duration
		for i, v := range buckets {
			w := 7 * time.Second
			if rem := total - time.Duration(i)*7*time.Second; rem < w {
				w = rem
			}
			sum += v * w.Seconds()
			covered += w
		}
		if covered == 0 {
			return true
		}
		mean := tw.TimeMean()
		return math.Abs(sum/total.Seconds()-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
