package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// rankError measures how far off a quantile estimate is in rank space:
// the exact CDF position of the estimate vs the requested p. This is
// the quantity the t-digest bounds (value-space error depends on the
// distribution's local density and can be arbitrarily large at flat
// CDF regions, which is why the tests do not assert on values).
func rankError(s *Sample, estimate, p float64) float64 {
	// The estimate may fall between or tie with observations; bracket
	// its rank by the CDF strictly below it and at it.
	hi := s.CDFAt(estimate)
	lo := s.CDFAt(math.Nextafter(estimate, math.Inf(-1)))
	if p < lo {
		return lo - p
	}
	if p > hi {
		return p - hi
	}
	return 0
}

var quantileProbes = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}

func checkRankErrors(t *testing.T, name string, s *Sample, d *TDigest, eps float64) {
	t.Helper()
	for _, p := range quantileProbes {
		got := d.Quantile(p)
		if err := rankError(s, got, p); err > eps {
			t.Errorf("%s: q%.3f = %v, rank error %.5f > ε=%.5f (exact %v)",
				name, p, got, err, eps, s.Quantile(p))
		}
	}
}

func TestTDigestRankErrorWithinEpsilon(t *testing.T) {
	eps := Epsilon(DefaultCompression)
	dists := map[string]func(r *rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return r.Float64() },
		"normal":    func(r *rand.Rand) float64 { return r.NormFloat64() },
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) },
		"exp":       func(r *rand.Rand) float64 { return r.ExpFloat64() },
		"bimodal": func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return r.NormFloat64()
			}
			return 100 + r.NormFloat64()
		},
		"constant": func(r *rand.Rand) float64 { return 42 },
	}
	for name, gen := range dists {
		r := rand.New(rand.NewSource(7))
		var s Sample
		d := NewTDigest(DefaultCompression)
		for i := 0; i < 200_000; i++ {
			x := gen(r)
			s.Add(x)
			d.Add(x)
		}
		checkRankErrors(t, name, &s, d, eps)
		if d.Min() != s.Min() || d.Max() != s.Max() {
			t.Errorf("%s: extremes %v/%v, want exact %v/%v", name, d.Min(), d.Max(), s.Min(), s.Max())
		}
	}
}

func TestTDigestMergeMatchesWhole(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var s Sample
	whole := NewTDigest(DefaultCompression)
	parts := make([]*TDigest, 8)
	for i := range parts {
		parts[i] = NewTDigest(DefaultCompression)
	}
	for i := 0; i < 100_000; i++ {
		x := r.ExpFloat64() * 10
		s.Add(x)
		whole.Add(x)
		parts[i%len(parts)].Add(x)
	}
	merged := NewTDigest(DefaultCompression)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Len() != whole.Len() {
		t.Fatalf("merged Len = %d, want %d", merged.Len(), whole.Len())
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("merged mean %v, want %v", merged.Mean(), whole.Mean())
	}
	if math.Abs(merged.Std()-whole.Std()) > 1e-9 {
		t.Errorf("merged std %v, want %v", merged.Std(), whole.Std())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Errorf("merged extremes %v/%v, want %v/%v", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	// The merged digest must still answer within ε of the exact union
	// (slightly relaxed: merging compacted centroids loses a bit of
	// resolution vs one pass over the raw stream).
	checkRankErrors(t, "merged", &s, merged, 2*Epsilon(DefaultCompression))
}

func TestTDigestWeightedMatchesRepeated(t *testing.T) {
	// AddWeighted(x, w) with integer w must agree with adding x w times.
	r := rand.New(rand.NewSource(3))
	weighted := NewTDigest(100)
	repeated := NewTDigest(100)
	var s Sample
	for i := 0; i < 5000; i++ {
		x := r.NormFloat64()
		w := 1 + r.Intn(5)
		weighted.AddWeighted(x, float64(w))
		for j := 0; j < w; j++ {
			repeated.Add(x)
			s.Add(x)
		}
	}
	for _, p := range quantileProbes {
		a, b := weighted.Quantile(p), repeated.Quantile(p)
		// Both are ε-approximations of the same distribution; compare
		// in rank space against the exact sample.
		if errA := rankError(&s, a, p); errA > Epsilon(100) {
			t.Errorf("weighted q%.3f rank error %.5f > ε", p, errA)
		}
		if errB := rankError(&s, b, p); errB > Epsilon(100) {
			t.Errorf("repeated q%.3f rank error %.5f > ε", p, errB)
		}
	}
	if math.Abs(weighted.Mean()-repeated.Mean()) > 1e-9 {
		t.Errorf("weighted mean %v, repeated %v", weighted.Mean(), repeated.Mean())
	}
	if math.Abs(weighted.Weight()-repeated.Weight()) > 1e-9 {
		t.Errorf("weighted weight %v, repeated %v", weighted.Weight(), repeated.Weight())
	}
}

func TestTDigestDeterministic(t *testing.T) {
	build := func() *TDigest {
		r := rand.New(rand.NewSource(99))
		d := NewTDigest(DefaultCompression)
		for i := 0; i < 50_000; i++ {
			d.Add(r.NormFloat64())
		}
		return d
	}
	a, b := build(), build()
	for _, p := range quantileProbes {
		if a.Quantile(p) != b.Quantile(p) {
			t.Fatalf("q%.3f differs across identical builds: %v vs %v", p, a.Quantile(p), b.Quantile(p))
		}
	}
	if a.Centroids() != b.Centroids() {
		t.Fatalf("centroid counts differ: %d vs %d", a.Centroids(), b.Centroids())
	}
}

func TestTDigestSteadyStateZeroAlloc(t *testing.T) {
	d := NewTDigest(DefaultCompression)
	r := rand.New(rand.NewSource(5))
	// Warm past the first few compactions.
	for i := 0; i < 50_000; i++ {
		d.Add(r.NormFloat64())
	}
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	i := 0
	allocs := testing.AllocsPerRun(len(xs), func() {
		d.Add(xs[i%len(xs)])
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state Add allocates %v per op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		_ = d.Quantile(0.95)
		_ = d.CDFAt(0)
	})
	if allocs != 0 {
		t.Errorf("steady-state Quantile/CDFAt allocates %v per op, want 0", allocs)
	}
}

func TestTDigestMemoryConstantInStreamLength(t *testing.T) {
	small := NewTDigest(DefaultCompression)
	big := NewTDigest(DefaultCompression)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1_000; i++ {
		small.Add(r.Float64())
	}
	for i := 0; i < 1_000_000; i++ {
		big.Add(r.Float64())
	}
	if small.Footprint() != big.Footprint() {
		t.Errorf("footprint grew with stream length: %d vs %d bytes", small.Footprint(), big.Footprint())
	}
	maxCentroids := 2*int(DefaultCompression) + 8
	if c := big.Centroids(); c > maxCentroids {
		t.Errorf("centroids = %d, want ≤ %d", c, maxCentroids)
	}
}

func TestTDigestSummarize(t *testing.T) {
	if got := NewTDigest(0).Summarize(); got != (Summary{}) {
		t.Errorf("empty digest Summarize = %+v, want zero", got)
	}
	r := rand.New(rand.NewSource(17))
	d := NewTDigest(DefaultCompression)
	var xs []float64
	for i := 0; i < 20_000; i++ {
		x := r.NormFloat64()*3 + 10
		d.Add(x)
		xs = append(xs, x)
	}
	exact := Summarize(xs)
	got := d.Summarize()
	if got.N != exact.N || got.Min != exact.Min || got.Max != exact.Max {
		t.Errorf("N/min/max = %d/%v/%v, want exact %d/%v/%v", got.N, got.Min, got.Max, exact.N, exact.Min, exact.Max)
	}
	if math.Abs(got.Mean-exact.Mean) > 1e-9 || math.Abs(got.Std-exact.Std) > 1e-6 {
		t.Errorf("mean/std = %v/%v, want %v/%v", got.Mean, got.Std, exact.Mean, exact.Std)
	}
	if math.Abs(got.CI95-exact.CI95) > 1e-6 {
		t.Errorf("CI95 = %v, want %v", got.CI95, exact.CI95)
	}
	// Quartiles are ε-approximate; at 20k normal samples value error at
	// the quartiles is tiny.
	for _, pair := range [][2]float64{{got.P25, exact.P25}, {got.Median, exact.Median}, {got.P75, exact.P75}} {
		if math.Abs(pair[0]-pair[1]) > 0.05 {
			t.Errorf("quartile %v, want ≈%v", pair[0], pair[1])
		}
	}
}

func TestTDigestEdgeCases(t *testing.T) {
	d := NewTDigest(50)
	if d.Len() != 0 || d.Weight() != 0 {
		t.Fatal("fresh digest not empty")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile on empty digest did not panic")
			}
		}()
		d.Quantile(0.5)
	}()
	if got := d.CDFAt(1); got != 0 {
		t.Errorf("empty CDFAt = %v, want 0", got)
	}
	// Non-finite values and non-positive weights are dropped.
	d.Add(math.NaN())
	d.Add(math.Inf(1))
	d.AddWeighted(1, 0)
	d.AddWeighted(1, -2)
	d.AddWeighted(1, math.NaN())
	if d.Len() != 0 {
		t.Errorf("degenerate adds recorded: Len=%d", d.Len())
	}
	// Single observation: everything collapses to it.
	d.Add(7)
	for _, p := range []float64{0, 0.5, 1} {
		if got := d.Quantile(p); got != 7 {
			t.Errorf("single-obs q%v = %v, want 7", p, got)
		}
	}
	if d.Mean() != 7 || d.Std() != 0 {
		t.Errorf("single-obs mean/std = %v/%v", d.Mean(), d.Std())
	}
	// AddDuration records seconds like Sample.AddDuration.
	d2 := NewTDigest(50)
	d2.AddDuration(1500 * time.Millisecond)
	if got := d2.Quantile(0.5); got != 1.5 {
		t.Errorf("AddDuration median = %v, want 1.5", got)
	}
	// Merging nil/empty is a no-op; merging into empty copies moments.
	d.Merge(nil)
	d.Merge(NewTDigest(50))
	if d.Len() != 1 {
		t.Errorf("no-op merges changed Len to %d", d.Len())
	}
	e := NewTDigest(50)
	e.Merge(d)
	if e.Len() != 1 || e.Mean() != 7 || e.Quantile(0.5) != 7 {
		t.Errorf("merge into empty: Len=%d Mean=%v", e.Len(), e.Mean())
	}
	// Clone is independent.
	c := e.Clone()
	c.Add(100)
	if e.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: %d/%d", e.Len(), c.Len())
	}
}

func TestTDigestQuantileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	d := NewTDigest(100)
	for i := 0; i < 30_000; i++ {
		d.Add(r.ExpFloat64())
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.001 {
		q := d.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%v: %v < %v", p, q, prev)
		}
		prev = q
	}
	// CDF and quantile are approximate inverses in rank space.
	for _, p := range quantileProbes {
		back := d.CDFAt(d.Quantile(p))
		if math.Abs(back-p) > 2*Epsilon(100) {
			t.Errorf("CDF(Q(%v)) = %v, want within 2ε", p, back)
		}
	}
}

func TestSortCentroids(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(2000)
		cs := make([]centroid, n)
		for i := range cs {
			cs[i] = centroid{mean: float64(r.Intn(50)), weight: r.Float64()}
		}
		sum := 0.0
		for _, c := range cs {
			sum += c.weight
		}
		sortCentroids(cs)
		for i := 1; i < len(cs); i++ {
			if cs[i].mean < cs[i-1].mean {
				t.Fatalf("trial %d: not sorted at %d", trial, i)
			}
		}
		got := 0.0
		for _, c := range cs {
			got += c.weight
		}
		if math.Abs(got-sum) > 1e-9 {
			t.Fatalf("trial %d: weights not preserved", trial)
		}
	}
}
