package stats

import (
	"math"
	"testing"
	"time"
)

// TestSumTimeWeightedAlignedSeries: two series over the same span sum
// pointwise, and the time mean of the sum is the sum of the means.
func TestSumTimeWeightedAlignedSeries(t *testing.T) {
	a := &TimeWeighted{}
	a.Observe(0, 2)
	a.Observe(10*time.Minute, 4)
	a.Finish(20 * time.Minute)

	b := &TimeWeighted{}
	b.Observe(0, 1)
	b.Observe(5*time.Minute, 3)
	b.Finish(20 * time.Minute)

	sum := SumTimeWeighted(a, b)
	if got, want := sum.Duration(), 20*time.Minute; got != want {
		t.Fatalf("Duration = %v, want %v", got, want)
	}
	// Piecewise: [0,5)=3, [5,10)=5, [10,20)=7 → mean = (3*5+5*5+7*10)/20.
	if got, want := sum.TimeMean(), (3.0*5+5.0*5+7.0*10)/20.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("TimeMean = %v, want %v", got, want)
	}
	if got := a.TimeMean() + b.TimeMean(); math.Abs(sum.TimeMean()-got) > 1e-12 {
		t.Fatalf("mean of sum %v != sum of means %v", sum.TimeMean(), got)
	}
	if got := sum.FractionEqual(5); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("FractionEqual(5) = %v, want 0.25", got)
	}
}

// TestSumTimeWeightedOffsetSpans: series covering different spans
// contribute 0 outside their own observation window — exactly what a
// federation needs when sites come up at different instants.
func TestSumTimeWeightedOffsetSpans(t *testing.T) {
	a := &TimeWeighted{} // site 0: healthy 2 workers over [0, 10m)
	a.Observe(0, 2)
	a.Finish(10 * time.Minute)

	b := &TimeWeighted{} // site 1: healthy 3 workers over [5m, 15m)
	b.Observe(5*time.Minute, 3)
	b.Finish(15 * time.Minute)

	sum := SumTimeWeighted(a, b)
	// [0,5)=2, [5,10)=5, [10,15)=3.
	if got, want := sum.Duration(), 15*time.Minute; got != want {
		t.Fatalf("Duration = %v, want %v", got, want)
	}
	for _, c := range []struct {
		v    float64
		frac float64
	}{{2, 1.0 / 3}, {5, 1.0 / 3}, {3, 1.0 / 3}} {
		if got := sum.FractionEqual(c.v); math.Abs(got-c.frac) > 1e-12 {
			t.Fatalf("FractionEqual(%v) = %v, want %v", c.v, got, c.frac)
		}
	}
	// Node-weighted check used by the federated experiments: the merged
	// mean equals the duration-weighted sum of per-series means.
	want := (2.0*10 + 3.0*10) / 15.0
	if got := sum.TimeMean(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TimeMean = %v, want %v", got, want)
	}
}

// TestSumTimeWeightedManySites: the merge of N single-site series
// matches a hand-maintained global counter observing the same events.
func TestSumTimeWeightedManySites(t *testing.T) {
	// Three sites with worker-count step functions.
	events := []struct {
		site int
		t    time.Duration
		v    float64
	}{
		{0, 0, 0}, {1, 0, 0}, {2, 0, 0},
		{0, 2 * time.Minute, 3},
		{1, 3 * time.Minute, 1},
		{2, 3 * time.Minute, 4},
		{0, 7 * time.Minute, 0},
		{1, 8 * time.Minute, 5},
		{2, 11 * time.Minute, 2},
		{1, 13 * time.Minute, 0},
	}
	end := 15 * time.Minute

	sites := []*TimeWeighted{{}, {}, {}}
	global := &TimeWeighted{}
	cur := []float64{0, 0, 0}
	for _, e := range events {
		sites[e.site].Observe(e.t, e.v)
		cur[e.site] = e.v
		global.Observe(e.t, cur[0]+cur[1]+cur[2])
	}
	for _, s := range sites {
		s.Finish(end)
	}
	global.Finish(end)

	sum := SumTimeWeighted(sites...)
	if got, want := sum.TimeMean(), global.TimeMean(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("merged mean %v != hand-tracked global mean %v", got, want)
	}
	if got, want := sum.Duration(), global.Duration(); got != want {
		t.Fatalf("merged duration %v != global duration %v", got, want)
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
		if got, want := sum.Quantile(q), global.Quantile(q); got != want {
			t.Fatalf("quantile %v: merged %v != global %v", q, got, want)
		}
	}
	if got, want := sum.FractionEqual(0), global.FractionEqual(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zero-worker share: merged %v != global %v", got, want)
	}
}

// TestSumTimeWeightedDegenerate: nil and empty inputs yield an empty,
// safely queryable series.
func TestSumTimeWeightedDegenerate(t *testing.T) {
	if got := SumTimeWeighted().TimeMean(); got != 0 {
		t.Fatalf("empty merge TimeMean = %v", got)
	}
	if got := SumTimeWeighted(nil, &TimeWeighted{}).Duration(); got != 0 {
		t.Fatalf("degenerate merge Duration = %v", got)
	}
	one := &TimeWeighted{}
	one.Observe(time.Minute, 7)
	one.Finish(2 * time.Minute)
	sum := SumTimeWeighted(one, nil, &TimeWeighted{})
	if got := sum.TimeMean(); got != 7 {
		t.Fatalf("single-series merge TimeMean = %v, want 7", got)
	}
	if got := sum.Duration(); got != time.Minute {
		t.Fatalf("single-series merge Duration = %v, want 1m", got)
	}
}
