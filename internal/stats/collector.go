package stats

import "time"

// Collector is the seam between the request path and its latency
// accounting: the buffered Sample (exact, O(n) memory) and the
// streaming TDigest (ε-approximate, O(1) memory) both satisfy it, so
// loadgen, the federation front door, and the whisk controller can be
// pointed at either without changing the hot path. Buffered collection
// stays the default — every golden-pinned artifact keeps its exact
// quantiles — and experiments opt into digests for week-scale horizons
// where buffering per-request series is the memory wall (ROADMAP
// item 1).
type Collector interface {
	// Add records one observation; AddDuration records it in seconds.
	Add(x float64)
	AddDuration(d time.Duration)
	// Len returns the number of recorded observations.
	Len() int
	// Mean returns the arithmetic mean (0 when empty).
	Mean() float64
	// Quantile returns the p-quantile; exact for Sample, within the
	// Epsilon rank-error bound for TDigest. Panics when empty.
	Quantile(p float64) float64
	// Median returns the 0.5-quantile.
	Median() float64
	// Summarize condenses the observations into the Summary contract.
	Summarize() Summary
	// Footprint returns the retained heap bytes of the collector —
	// O(n) for Sample, O(compression) for TDigest.
	Footprint() int
}

var (
	_ Collector = (*Sample)(nil)
	_ Collector = (*TDigest)(nil)
)

// SeriesCollector is the same seam for labeled event counting over
// time: MinuteSeries buffers every bucket for the paper's per-minute
// panels; WindowedCounts keeps exact running totals but only a bounded
// ring of recent windows, making week-scale load accounting O(1) in
// horizon.
type SeriesCollector interface {
	// Add counts one event with the given label at instant t.
	Add(t time.Duration, label string)
	// Count returns the events with the label in bucket i (0 when the
	// bucket is unknown or, for WindowedCounts, already evicted).
	Count(i int, label string) int
	// Buckets returns the bucket count up to the last non-empty one.
	Buckets() int
	// Totals sums each label across the whole run (exact for both
	// implementations).
	Totals() map[string]int
	// Rows renders buckets in time order — all of them for
	// MinuteSeries, only the retained tail for WindowedCounts.
	Rows() []Row
	// Footprint returns the retained heap bytes (estimate).
	Footprint() int
}

var (
	_ SeriesCollector = (*MinuteSeries)(nil)
	_ SeriesCollector = (*WindowedCounts)(nil)
)

// Footprint returns the retained heap bytes of the sample buffer.
func (s *Sample) Footprint() int { return cap(s.xs) * 8 }

// Footprint estimates the retained heap bytes of the series: Go map
// buckets cost ~(2 words + key + value + overhead) per entry; 48 bytes
// per label entry plus 64 per bucket map is a deliberately conservative
// flat estimate. The point is the growth law (linear in buckets), not
// allocator-exact byte counts.
func (ms *MinuteSeries) Footprint() int {
	n := 0
	for _, b := range ms.buckets {
		n += 64 + 48*len(b)
	}
	return n
}

// Footprint returns the retained heap bytes of the segment buffer.
func (tw *TimeWeighted) Footprint() int { return cap(tw.segments) * 16 }
