package stats

import (
	"sort"
	"time"
)

// DefaultWindowKeep is how many recent buckets WindowedCounts retains
// by default: one hour of per-minute windows — enough for recent-rate
// queries and the tail panels, constant in horizon length.
const DefaultWindowKeep = 60

// WindowedCounts is the O(1)-memory streaming counterpart of
// MinuteSeries: it keeps exact per-label running totals for the whole
// run plus a bounded ring of the most recent buckets, instead of one
// map per bucket forever. Report-level shares (invoked/success/lost)
// come out identical to the buffered series because they only read
// Totals; per-bucket rendering (Rows, Count) is limited to the
// retained tail. Like MinuteSeries it is deterministic and not safe
// for concurrent use.
type WindowedCounts struct {
	Bucket time.Duration

	keep    int
	ring    []map[string]int // slot = idx % keep; maps are recycled in place
	slotIdx []int            // which bucket index each slot currently holds (-1 = empty)
	totals  map[string]int
	maxIdx  int
	any     bool
}

// NewWindowedCounts builds a windowed counter with the given bucket
// width, retaining the keep most recent buckets (≤0 selects
// DefaultWindowKeep).
func NewWindowedCounts(bucket time.Duration, keep int) *WindowedCounts {
	if bucket <= 0 {
		panic("stats: non-positive bucket")
	}
	if keep <= 0 {
		keep = DefaultWindowKeep
	}
	w := &WindowedCounts{
		Bucket:  bucket,
		keep:    keep,
		ring:    make([]map[string]int, keep),
		slotIdx: make([]int, keep),
		totals:  map[string]int{},
	}
	for i := range w.ring {
		w.ring[i] = map[string]int{}
		w.slotIdx[i] = -1
	}
	return w
}

// Keep returns the number of retained buckets.
func (w *WindowedCounts) Keep() int { return w.keep }

// Add counts one event with the given label at instant t. Events
// older than the retained window still count toward Totals but are not
// re-materialized in the ring.
func (w *WindowedCounts) Add(t time.Duration, label string) {
	i := int(t / w.Bucket)
	w.totals[label]++
	if !w.any || i > w.maxIdx {
		w.maxIdx = i
	}
	w.any = true
	if i <= w.maxIdx-w.keep {
		return // before the retained window
	}
	slot := i % w.keep
	if w.slotIdx[slot] != i {
		m := w.ring[slot]
		for k := range m {
			delete(m, k) // compiles to a map clear; no allocation
		}
		w.slotIdx[slot] = i
	}
	w.ring[slot][label]++
}

// Count returns the events with the label in bucket i, or 0 if the
// bucket has been evicted from the retained window.
func (w *WindowedCounts) Count(i int, label string) int {
	if i < 0 || i%w.keep >= len(w.ring) {
		return 0
	}
	slot := i % w.keep
	if w.slotIdx[slot] != i {
		return 0
	}
	return w.ring[slot][label]
}

// Buckets returns the bucket count up to the last non-empty one,
// matching MinuteSeries.Buckets (the full-run count, not the retained
// count).
func (w *WindowedCounts) Buckets() int {
	if !w.any {
		return 0
	}
	return w.maxIdx + 1
}

// Totals sums each label across the whole run — exact, not windowed.
func (w *WindowedCounts) Totals() map[string]int {
	out := make(map[string]int, len(w.totals))
	for k, v := range w.totals {
		out[k] = v
	}
	return out
}

// Rows renders the retained buckets in time order. Unlike
// MinuteSeries.Rows this is only the tail of the run (at most Keep
// buckets); evicted history is gone by design.
func (w *WindowedCounts) Rows() []Row {
	if !w.any {
		return nil
	}
	idxs := make([]int, 0, w.keep)
	for _, i := range w.slotIdx {
		if i >= 0 {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	rows := make([]Row, 0, len(idxs))
	for _, i := range idxs {
		src := w.ring[i%w.keep]
		counts := make(map[string]int, len(src))
		for k, v := range src {
			counts[k] = v
		}
		rows = append(rows, Row{Start: time.Duration(i) * w.Bucket, Counts: counts})
	}
	return rows
}

// RecentRate returns the label's events per second averaged over the
// retained complete buckets (excluding the still-filling newest one
// when more than one is retained); 0 when nothing is retained.
func (w *WindowedCounts) RecentRate(label string) float64 {
	if !w.any {
		return 0
	}
	n, count := 0, 0
	for slot, i := range w.slotIdx {
		if i < 0 || (i == w.maxIdx && w.retained() > 1) {
			continue
		}
		n++
		count += w.ring[slot][label]
	}
	if n == 0 {
		return 0
	}
	return float64(count) / (float64(n) * w.Bucket.Seconds())
}

func (w *WindowedCounts) retained() int {
	n := 0
	for _, i := range w.slotIdx {
		if i >= 0 {
			n++
		}
	}
	return n
}

// Footprint estimates the retained heap bytes — bounded by
// Keep × labels regardless of horizon (same flat per-entry estimate as
// MinuteSeries.Footprint so the two are comparable).
func (w *WindowedCounts) Footprint() int {
	n := len(w.slotIdx) * 8
	for _, m := range w.ring {
		n += 64 + 48*len(m)
	}
	n += 64 + 48*len(w.totals)
	return n
}
