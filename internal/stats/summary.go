package stats

import "math"

// Summary condenses replicated scalar observations (one value per
// experiment replica) into the aggregate form the sweep engine reports:
// mean with a 95% confidence half-width plus the quantile skeleton.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`

	// CI95 is the half-width of the two-sided 95% confidence interval
	// for the mean (Student's t for small N, normal beyond the table);
	// 0 when N < 2.
	CI95 float64 `json:"ci95"`

	Min    float64 `json:"min"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	Max    float64 `json:"max"`
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..30
// degrees of freedom; larger samples use the normal 1.96.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% critical value for n-1 degrees of
// freedom (0 when n < 2).
func TCrit95(n int) float64 {
	df := n - 1
	switch {
	case df < 1:
		return 0
	case df <= len(tCrit95):
		return tCrit95[df-1]
	default:
		return 1.96
	}
}

// Summarize aggregates the observations of one metric across replicas.
//
// Edge-case contract (guarded by TestSummarizeContract): the result is
// always NaN-free. An empty input returns the zero Summary. A single
// observation returns N=1 with Mean/Min/quantiles/Max all equal to it
// and Std and CI95 zero (no spread is estimable from one replica).
// Non-finite observations (NaN, ±Inf — e.g. a ratio metric whose
// denominator was zero in one replica) are dropped before aggregation
// and do not count toward N, so one degenerate replica cannot poison a
// whole sweep cell.
func Summarize(xs []float64) Summary {
	var s Sample
	var w Welford
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		s.Add(x)
		w.Add(x)
	}
	if s.Len() == 0 {
		return Summary{}
	}
	out := Summary{
		N:      s.Len(),
		Mean:   w.Mean(),
		Std:    w.Std(),
		Min:    s.Min(),
		P25:    s.Quantile(0.25),
		Median: s.Median(),
		P75:    s.Quantile(0.75),
		Max:    s.Max(),
	}
	if out.N >= 2 {
		out.CI95 = TCrit95(out.N) * out.Std / math.Sqrt(float64(out.N))
	}
	return out
}

// Summarize condenses the sample itself (replica values already
// accumulated through Add).
func (s *Sample) Summarize() Summary { return Summarize(s.xs) }
