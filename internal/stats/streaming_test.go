package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestWindowedCountsTotalsMatchMinuteSeries(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ms := NewMinuteSeries(time.Minute)
	wc := NewWindowedCounts(time.Minute, 60)
	labels := []string{"success", "failed", "lost", "503"}
	for i := 0; i < 100_000; i++ {
		at := time.Duration(r.Int63n(int64(24 * time.Hour)))
		lb := labels[r.Intn(len(labels))]
		ms.Add(at, lb)
		wc.Add(at, lb)
	}
	if wc.Buckets() != ms.Buckets() {
		t.Errorf("Buckets = %d, want %d", wc.Buckets(), ms.Buckets())
	}
	wantTotals, gotTotals := ms.Totals(), wc.Totals()
	if len(gotTotals) != len(wantTotals) {
		t.Fatalf("totals label sets differ: %v vs %v", gotTotals, wantTotals)
	}
	for k, v := range wantTotals {
		if gotTotals[k] != v {
			t.Errorf("totals[%s] = %d, want %d", k, gotTotals[k], v)
		}
	}
}

func TestWindowedCountsRetainedTail(t *testing.T) {
	wc := NewWindowedCounts(time.Minute, 3)
	for m := 0; m < 10; m++ {
		for j := 0; j <= m; j++ {
			wc.Add(time.Duration(m)*time.Minute, "x")
		}
	}
	// Only minutes 7, 8, 9 are retained.
	if got := wc.Count(9, "x"); got != 10 {
		t.Errorf("Count(9) = %d, want 10", got)
	}
	if got := wc.Count(2, "x"); got != 0 {
		t.Errorf("evicted Count(2) = %d, want 0", got)
	}
	rows := wc.Rows()
	if len(rows) != 3 {
		t.Fatalf("retained %d rows, want 3", len(rows))
	}
	for i, wantMin := range []int{7, 8, 9} {
		if rows[i].Start != time.Duration(wantMin)*time.Minute {
			t.Errorf("row %d starts at %v, want minute %d", i, rows[i].Start, wantMin)
		}
		if rows[i].Counts["x"] != wantMin+1 {
			t.Errorf("row %d count %d, want %d", i, rows[i].Counts["x"], wantMin+1)
		}
	}
	// Totals are still exact over the whole run: 1+2+...+10.
	if got := wc.Totals()["x"]; got != 55 {
		t.Errorf("Totals = %d, want 55", got)
	}
	// A late event older than the window counts toward totals only.
	wc.Add(1*time.Minute, "x")
	if got := wc.Totals()["x"]; got != 56 {
		t.Errorf("Totals after stale add = %d, want 56", got)
	}
	if got := wc.Count(1, "x"); got != 0 {
		t.Errorf("stale bucket rematerialized: Count(1) = %d", got)
	}
}

func TestWindowedCountsRecentRate(t *testing.T) {
	wc := NewWindowedCounts(time.Minute, 5)
	// 120 events/min over minutes 0..4; minute 4 is the still-filling
	// newest bucket and is excluded.
	for m := 0; m < 5; m++ {
		for j := 0; j < 120; j++ {
			wc.Add(time.Duration(m)*time.Minute, "req")
		}
	}
	if got, want := wc.RecentRate("req"), 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("RecentRate = %v, want %v", got, want)
	}
	if got := wc.RecentRate("other"); got != 0 {
		t.Errorf("RecentRate(unknown) = %v, want 0", got)
	}
	if got := NewWindowedCounts(time.Minute, 5).RecentRate("req"); got != 0 {
		t.Errorf("empty RecentRate = %v, want 0", got)
	}
}

func TestWindowedCountsFootprintBounded(t *testing.T) {
	short := NewWindowedCounts(time.Minute, 60)
	long := NewWindowedCounts(time.Minute, 60)
	r := rand.New(rand.NewSource(2))
	labels := []string{"a", "b", "c"}
	for i := 0; i < 20_000; i++ {
		short.Add(time.Duration(r.Int63n(int64(24*time.Hour))), labels[r.Intn(3)])
	}
	for i := 0; i < 20_000; i++ {
		long.Add(time.Duration(r.Int63n(int64(7*24*time.Hour))), labels[r.Intn(3)])
	}
	ms := NewMinuteSeries(time.Minute)
	for i := 0; i < 20_000; i++ {
		ms.Add(time.Duration(r.Int63n(int64(7*24*time.Hour))), labels[r.Intn(3)])
	}
	if long.Footprint() > 2*short.Footprint() {
		t.Errorf("windowed footprint grew with horizon: 1d=%d 7d=%d", short.Footprint(), long.Footprint())
	}
	if ms.Footprint() < 10*long.Footprint() {
		t.Errorf("buffered series (%d B) not ≫ windowed (%d B)", ms.Footprint(), long.Footprint())
	}
}

func TestWindowedCountsBadBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-positive bucket")
		}
	}()
	NewWindowedCounts(0, 10)
}

// buildPair feeds the same random piecewise-constant series into a
// buffered TimeWeighted and a TimeWeightedStream.
func buildPair(seed int64, n int) (*TimeWeighted, *TimeWeightedStream) {
	r := rand.New(rand.NewSource(seed))
	tw := &TimeWeighted{}
	st := NewTimeWeightedStream(DefaultCompression)
	at := time.Duration(r.Int63n(int64(time.Hour)))
	for i := 0; i < n; i++ {
		v := float64(r.Intn(20)) // includes real zero dwell time
		tw.Observe(at, v)
		st.Observe(at, v)
		at += time.Duration(r.Int63n(int64(5 * time.Minute)))
	}
	tw.Finish(at)
	st.Finish(at)
	return tw, st
}

func TestTimeWeightedStreamMatchesBuffered(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tw, st := buildPair(seed, 5000)
		if tw.Duration() != st.Duration() {
			t.Errorf("seed %d: Duration %v vs %v", seed, st.Duration(), tw.Duration())
		}
		if math.Abs(tw.TimeMean()-st.TimeMean()) > 1e-9 {
			t.Errorf("seed %d: TimeMean %v vs %v", seed, st.TimeMean(), tw.TimeMean())
		}
		if math.Abs(tw.Integral()-st.Integral()) > 1e-6 {
			t.Errorf("seed %d: Integral %v vs %v", seed, st.Integral(), tw.Integral())
		}
		if tw.ZeroTotal() != st.ZeroTotal() {
			t.Errorf("seed %d: ZeroTotal %v vs %v", seed, st.ZeroTotal(), tw.ZeroTotal())
		}
		if tw.ZeroLongest() != st.ZeroLongest() {
			t.Errorf("seed %d: ZeroLongest %v vs %v", seed, st.ZeroLongest(), tw.ZeroLongest())
		}
		f1, l1 := tw.Span()
		f2, l2 := st.Span()
		if f1 != f2 || l1 != l2 {
			t.Errorf("seed %d: Span (%v,%v) vs (%v,%v)", seed, f2, l2, f1, l1)
		}
		// Quantiles and CDF within ε in rank space: time-weighted rank
		// of the stream's estimate vs requested p.
		eps := Epsilon(DefaultCompression)
		for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
			q := st.Quantile(p)
			hi := tw.FractionAtOrBelow(q)
			lo := tw.FractionAtOrBelow(math.Nextafter(q, math.Inf(-1)))
			if p < lo-eps || p > hi+eps {
				t.Errorf("seed %d: q%.2f=%v outside rank bracket [%v,%v]±ε", seed, p, q, lo, hi)
			}
			x := tw.Quantile(p)
			if math.Abs(st.FractionAtOrBelow(x)-tw.FractionAtOrBelow(x)) > 2*eps {
				t.Errorf("seed %d: FractionAtOrBelow(%v) = %v, want ≈%v", seed, x, st.FractionAtOrBelow(x), tw.FractionAtOrBelow(x))
			}
		}
	}
}

func TestTimeWeightedStreamFootprintConstant(t *testing.T) {
	_, small := buildPair(7, 100)
	twBig, big := buildPair(7, 200_000)
	if small.Footprint() != big.Footprint() {
		t.Errorf("stream footprint grew: %d vs %d", small.Footprint(), big.Footprint())
	}
	if twBig.Footprint() < 50*big.Footprint() {
		t.Errorf("buffered series (%d B) not ≫ stream (%d B)", twBig.Footprint(), big.Footprint())
	}
}

func TestTimeWeightedStreamEdgeCases(t *testing.T) {
	st := NewTimeWeightedStream(0)
	if st.Duration() != 0 || st.TimeMean() != 0 || st.Integral() != 0 {
		t.Error("empty stream not zero")
	}
	st.Finish(time.Hour) // Finish before any Observe is a no-op
	if st.Duration() != 0 {
		t.Error("Finish on empty stream observed something")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile on empty stream did not panic")
			}
		}()
		st.Quantile(0.5)
	}()
	// Out-of-order panics like the buffered series.
	st.Observe(time.Minute, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-order Observe did not panic")
			}
		}()
		st.Observe(30*time.Second, 2)
	}()
	// Same-instant overwrite: last value wins, like TimeWeighted.
	st2 := NewTimeWeightedStream(0)
	st2.Observe(0, 5)
	st2.Observe(0, 9)
	st2.Finish(time.Second)
	if got := st2.TimeMean(); got != 9 {
		t.Errorf("same-instant overwrite TimeMean = %v, want 9", got)
	}
}

func TestSumTimeMeanOfMatchesSumTimeWeighted(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	var bufs []*TimeWeighted
	var asSeries []TimeSeries
	var streams []TimeSeries
	for site := 0; site < 6; site++ {
		tw := &TimeWeighted{}
		st := NewTimeWeightedStream(DefaultCompression)
		at := time.Duration(r.Int63n(int64(2 * time.Hour)))
		for i := 0; i < 500; i++ {
			v := float64(r.Intn(30))
			tw.Observe(at, v)
			st.Observe(at, v)
			at += time.Duration(r.Int63n(int64(10 * time.Minute)))
		}
		tw.Finish(at)
		st.Finish(at)
		bufs = append(bufs, tw)
		asSeries = append(asSeries, tw)
		streams = append(streams, st)
	}
	want := SumTimeWeighted(bufs...).TimeMean()
	if got := SumTimeMeanOf(asSeries...); math.Abs(got-want) > 1e-9 {
		t.Errorf("buffered SumTimeMeanOf = %v, want %v", got, want)
	}
	if got := SumTimeMeanOf(streams...); math.Abs(got-want) > 1e-9 {
		t.Errorf("streaming SumTimeMeanOf = %v, want %v", got, want)
	}
	if got := SumTimeMeanOf(); got != 0 {
		t.Errorf("empty SumTimeMeanOf = %v, want 0", got)
	}
	if got := SumTimeMeanOf(nil, &TimeWeighted{}, NewTimeWeightedStream(0)); got != 0 {
		t.Errorf("degenerate SumTimeMeanOf = %v, want 0", got)
	}
}

func TestCollectorSeamSampleAndDigestAgree(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	collectors := []Collector{&Sample{}, NewTDigest(DefaultCompression)}
	for i := 0; i < 50_000; i++ {
		x := math.Exp(r.NormFloat64())
		for _, c := range collectors {
			c.Add(x)
		}
	}
	s := collectors[0].(*Sample)
	d := collectors[1].(*TDigest)
	if s.Len() != d.Len() {
		t.Fatalf("Len %d vs %d", s.Len(), d.Len())
	}
	if math.Abs(s.Mean()-d.Mean()) > 1e-9*s.Mean() {
		t.Errorf("Mean %v vs %v", d.Mean(), s.Mean())
	}
	for _, p := range []float64{0.5, 0.95, 0.99} {
		if err := rankError(s, d.Quantile(p), p); err > Epsilon(DefaultCompression) {
			t.Errorf("q%.2f rank error %.5f", p, err)
		}
	}
	if d.Footprint() >= s.Footprint() {
		t.Errorf("digest footprint %d not below sample %d at 50k obs", d.Footprint(), s.Footprint())
	}
}
