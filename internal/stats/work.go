package stats

import "time"

// WorkCounters is the compute-accounting ledger of the checkpoint
// subsystem: where execution time actually went once pilots can be
// reclaimed mid-execution. All fields are plain counters — O(1)
// memory, exact under both buffered and streaming collection, and
// mergeable across sites/replicas — so the type is safe for
// week-scale streaming runs and for sweep aggregation.
//
// The invariant the experiments assert: total busy container time
// = Goodput + Wasted + Lost + CheckpointTime + RestoreTime (start-up
// latencies excluded; they are accounted by the cold/warm-start
// model).
type WorkCounters struct {
	// Checkpoints counts completed checkpoint dumps.
	Checkpoints int

	// Resumed counts executions that restarted from a checkpoint
	// (each restore increments it once).
	Resumed int

	// CloudResumes counts resumes served by the Alg. 1 commercial
	// fallback rather than another pilot.
	CloudResumes int

	// Goodput is execution-body time that contributed to a completed
	// invocation, including checkpointed progress reused by a resume.
	Goodput time.Duration

	// Wasted is execution-body time lost to an interrupt but bounded
	// by the checkpoint interval: work since the last checkpoint when
	// the execution was interrupted and later resumed (or requeued).
	Wasted time.Duration

	// Lost is execution-body time destroyed outright: progress of
	// executions killed without hand-off, or interrupted with no
	// checkpoint to resume from.
	Lost time.Duration

	// CheckpointTime is the cumulative stop-the-world dump pause.
	CheckpointTime time.Duration

	// RestoreTime is the cumulative state-transfer + restore cost paid
	// by resumes.
	RestoreTime time.Duration
}

// Merge accumulates another ledger into w (for federations merging
// per-site accounting and sweeps merging replicas).
func (w *WorkCounters) Merge(o WorkCounters) {
	w.Checkpoints += o.Checkpoints
	w.Resumed += o.Resumed
	w.CloudResumes += o.CloudResumes
	w.Goodput += o.Goodput
	w.Wasted += o.Wasted
	w.Lost += o.Lost
	w.CheckpointTime += o.CheckpointTime
	w.RestoreTime += o.RestoreTime
}

// Zero reports whether nothing has been accounted. Goodput accrues on
// every completed execution, checkpointing or not, so render paths
// that must keep golden-pinned output byte-identical gate on their
// experiment's configuration rather than on Zero.
func (w WorkCounters) Zero() bool { return w == WorkCounters{} }

// GoodputShare returns Goodput over all accounted execution-body time
// (goodput + wasted + lost), in [0, 1]; 0 when nothing is accounted.
// Checkpoint and restore overheads are excluded from the denominator:
// the share answers "of the work bodies ran, how much counted?".
func (w WorkCounters) GoodputShare() float64 {
	total := w.Goodput + w.Wasted + w.Lost
	if total <= 0 {
		return 0
	}
	return float64(w.Goodput) / float64(total)
}
