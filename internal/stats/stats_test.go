package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want 100", got)
	}
	if got := s.Quantile(0.25); math.Abs(got-25.75) > 1e-9 {
		t.Errorf("q25 = %v, want 25.75", got)
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	_ = s.Median()
	s.Add(2)
	if got := s.Median(); got != 2 {
		t.Errorf("median after re-add = %v, want 2", got)
	}
}

func TestSampleCDFAt(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 2, 3} {
		s.Add(x)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := s.CDFAt(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSampleCDFPoints(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	pts := s.CDF([]float64{0, 1, 2, 3})
	wantF := []float64{0, 0.5, 0.5, 1}
	for i, p := range pts {
		if p.F != wantF[i] {
			t.Errorf("CDF point %d = %v, want %v", i, p.F, wantF[i])
		}
	}
}

func TestSampleMinMaxMeanDuration(t *testing.T) {
	var s Sample
	s.AddDuration(2 * time.Second)
	s.AddDuration(4 * time.Second)
	if s.Min() != 2 || s.Max() != 4 || s.Mean() != 3 {
		t.Errorf("min/max/mean = %v/%v/%v", s.Min(), s.Max(), s.Mean())
	}
}

func TestEmptySamplePanics(t *testing.T) {
	var s Sample
	defer func() {
		if recover() == nil {
			t.Error("quantile of empty sample should panic")
		}
	}()
	s.Quantile(0.5)
}

func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var w Welford
	xs := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 7
		xs = append(xs, x)
		w.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	variance := 0.0
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("welford mean %v vs %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-variance) > 1e-9 {
		t.Errorf("welford var %v vs %v", w.Var(), variance)
	}
	if w.N() != 1000 {
		t.Errorf("welford N = %d", w.N())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Bins[1])
	}
	if h.Bins[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Bins[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 10)
	tw.Observe(10*time.Second, 20)
	tw.Finish(20 * time.Second)
	if got := tw.TimeMean(); math.Abs(got-15) > 1e-9 {
		t.Errorf("time mean = %v, want 15", got)
	}
	if tw.Duration() != 20*time.Second {
		t.Errorf("duration = %v, want 20s", tw.Duration())
	}
}

func TestTimeWeightedQuantile(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 1)
	tw.Observe(50*time.Second, 2)
	tw.Observe(75*time.Second, 3)
	tw.Finish(100 * time.Second)
	// 50% of time at 1, 25% at 2, 25% at 3.
	if got := tw.Quantile(0.25); got != 1 {
		t.Errorf("q25 = %v, want 1", got)
	}
	if got := tw.Quantile(0.5); got != 1 {
		t.Errorf("q50 = %v, want 1", got)
	}
	if got := tw.Quantile(0.6); got != 2 {
		t.Errorf("q60 = %v, want 2", got)
	}
	if got := tw.Quantile(0.9); got != 3 {
		t.Errorf("q90 = %v, want 3", got)
	}
}

func TestTimeWeightedFractions(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 0)
	tw.Observe(30*time.Second, 5)
	tw.Finish(100 * time.Second)
	if got := tw.FractionEqual(0); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("fraction at 0 = %v, want 0.3", got)
	}
	if got := tw.FractionAtOrBelow(5); got != 1 {
		t.Errorf("fraction ≤5 = %v, want 1", got)
	}
}

func TestTimeWeightedRuns(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 0)
	tw.Observe(1*time.Minute, 3)
	tw.Observe(2*time.Minute, 0)
	tw.Observe(5*time.Minute, 1)
	tw.Finish(6 * time.Minute)
	zero := func(v float64) bool { return v == 0 }
	if got := tw.LongestRunWhere(zero); got != 3*time.Minute {
		t.Errorf("longest zero run = %v, want 3m", got)
	}
	if got := tw.TotalWhere(zero); got != 4*time.Minute {
		t.Errorf("total zero time = %v, want 4m", got)
	}
}

func TestTimeWeightedSameInstantOverwrite(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 1)
	tw.Observe(0, 2) // replaces value at instant 0, no zero-length segment
	tw.Finish(10 * time.Second)
	if got := tw.TimeMean(); got != 2 {
		t.Errorf("time mean = %v, want 2", got)
	}
}

func TestTimeWeightedOutOfOrderPanics(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(10*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order observation should panic")
		}
	}()
	tw.Observe(5*time.Second, 2)
}

func TestStateTracker(t *testing.T) {
	st := NewStateTracker(0, "idle")
	st.Set(10*time.Second, "busy")
	st.Set(30*time.Second, "idle")
	totals := st.Finish(40 * time.Second)
	if totals["idle"] != 20*time.Second {
		t.Errorf("idle = %v, want 20s", totals["idle"])
	}
	if totals["busy"] != 20*time.Second {
		t.Errorf("busy = %v, want 20s", totals["busy"])
	}
}

func TestStateTrackerCurrentState(t *testing.T) {
	st := NewStateTracker(0, "a")
	st.Set(time.Second, "b")
	if st.State() != "b" {
		t.Errorf("state = %q, want b", st.State())
	}
}

func TestMinuteSeries(t *testing.T) {
	ms := NewMinuteSeries(time.Minute)
	ms.Add(10*time.Second, "ok")
	ms.Add(30*time.Second, "ok")
	ms.Add(70*time.Second, "fail")
	ms.Add(200*time.Second, "ok")
	if ms.Buckets() != 4 {
		t.Errorf("buckets = %d, want 4", ms.Buckets())
	}
	if ms.Count(0, "ok") != 2 {
		t.Errorf("bucket0 ok = %d, want 2", ms.Count(0, "ok"))
	}
	if ms.Count(1, "fail") != 1 {
		t.Errorf("bucket1 fail = %d, want 1", ms.Count(1, "fail"))
	}
	totals := ms.Totals()
	if totals["ok"] != 3 || totals["fail"] != 1 {
		t.Errorf("totals = %v", totals)
	}
	rows := ms.Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if rows[3].Start != 3*time.Minute {
		t.Errorf("row3 start = %v, want 3m", rows[3].Start)
	}
	if rows[2].Counts["ok"] != 0 {
		t.Errorf("empty bucket should have zero counts")
	}
}

// Property: Sample.Quantile is monotone in p and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []float64, pa, pb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		a := float64(pa%101) / 100
		b := float64(pb%101) / 100
		if a > b {
			a, b = b, a
		}
		qa, qb := s.Quantile(a), s.Quantile(b)
		return qa <= qb && qa >= s.Min() && qb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: time-weighted mean is bounded by observed min/max values.
func TestPropertyTimeWeightedMeanBounded(t *testing.T) {
	f := func(vals []uint8, durs []uint8) bool {
		if len(vals) == 0 || len(durs) == 0 {
			return true
		}
		n := len(vals)
		if len(durs) < n {
			n = len(durs)
		}
		var tw TimeWeighted
		var t0 time.Duration
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := float64(vals[i])
			tw.Observe(t0, v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			// Convert before adding 1: durs[i]+1 overflows uint8 at 0xff,
			// which would make a zero-duration series (TimeMean 0).
			t0 += (time.Duration(durs[i]) + 1) * time.Second
		}
		tw.Finish(t0)
		m := tw.TimeMean()
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: StateTracker totals always sum to the tracked span.
func TestPropertyStateTrackerConserves(t *testing.T) {
	f := func(steps []uint8) bool {
		st := NewStateTracker(0, "s0")
		var now time.Duration
		states := []string{"s0", "s1", "s2"}
		for i, d := range steps {
			now += time.Duration(d) * time.Second
			st.Set(now, states[i%3])
		}
		end := now + time.Minute
		totals := st.Finish(end)
		var sum time.Duration
		for _, v := range totals {
			sum += v
		}
		return sum == end
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Sorted check: Values returns nondecreasing output and does not alias.
func TestValuesSortedCopy(t *testing.T) {
	var s Sample
	for _, x := range []float64{3, 1, 2} {
		s.Add(x)
	}
	vs := s.Values()
	if !sort.Float64sAreSorted(vs) {
		t.Error("Values not sorted")
	}
	vs[0] = 999
	if s.Min() == 999 {
		t.Error("Values aliases internal storage")
	}
}
