package stats

import (
	"sort"
	"time"
)

// TimeWeighted tracks a piecewise-constant value over virtual time and
// answers time-weighted queries (time average, fraction of time at or
// below a level, time-weighted quantiles). It backs the paper's
// "# of ready workers" statistics in Tables II and III.
type TimeWeighted struct {
	started  bool
	firstT   time.Duration
	lastT    time.Duration
	lastV    float64
	segments []segment
}

type segment struct {
	v   float64
	dur time.Duration
}

// Observe records that the value became v at instant t. Observations must
// arrive in nondecreasing time order.
func (tw *TimeWeighted) Observe(t time.Duration, v float64) {
	if tw.started {
		if t < tw.lastT {
			panic("stats: time-weighted observation out of order")
		}
		if t > tw.lastT {
			tw.segments = append(tw.segments, segment{v: tw.lastV, dur: t - tw.lastT})
		}
	} else {
		tw.firstT = t
	}
	tw.started = true
	tw.lastT = t
	tw.lastV = v
}

// Finish closes the final segment at instant end.
func (tw *TimeWeighted) Finish(end time.Duration) {
	if !tw.started {
		return
	}
	if end < tw.lastT {
		panic("stats: finish before last observation")
	}
	if end > tw.lastT {
		tw.segments = append(tw.segments, segment{v: tw.lastV, dur: end - tw.lastT})
	}
	tw.lastT = end
}

// Duration returns the total observed span.
func (tw *TimeWeighted) Duration() time.Duration {
	var total time.Duration
	for _, s := range tw.segments {
		total += s.dur
	}
	return total
}

// TimeMean returns the time-weighted average value.
func (tw *TimeWeighted) TimeMean() float64 {
	var total time.Duration
	sum := 0.0
	for _, s := range tw.segments {
		total += s.dur
		sum += s.v * s.dur.Seconds()
	}
	if total == 0 {
		return 0
	}
	return sum / total.Seconds()
}

// FractionAtOrBelow returns the fraction of time the value was ≤ x.
func (tw *TimeWeighted) FractionAtOrBelow(x float64) float64 {
	var total, at time.Duration
	for _, s := range tw.segments {
		total += s.dur
		if s.v <= x {
			at += s.dur
		}
	}
	if total == 0 {
		return 0
	}
	return at.Seconds() / total.Seconds()
}

// FractionEqual returns the fraction of time the value was exactly x.
func (tw *TimeWeighted) FractionEqual(x float64) float64 {
	var total, at time.Duration
	for _, s := range tw.segments {
		total += s.dur
		if s.v == x {
			at += s.dur
		}
	}
	if total == 0 {
		return 0
	}
	return at.Seconds() / total.Seconds()
}

// Quantile returns the time-weighted p-quantile of the value.
func (tw *TimeWeighted) Quantile(p float64) float64 {
	if len(tw.segments) == 0 {
		panic("stats: quantile of empty time-weighted series")
	}
	segs := make([]segment, len(tw.segments))
	copy(segs, tw.segments)
	sort.Slice(segs, func(i, j int) bool { return segs[i].v < segs[j].v })
	var total time.Duration
	for _, s := range segs {
		total += s.dur
	}
	target := time.Duration(p * float64(total))
	var cum time.Duration
	for _, s := range segs {
		cum += s.dur
		if cum >= target {
			return s.v
		}
	}
	return segs[len(segs)-1].v
}

// LongestRunWhere returns the longest contiguous span for which pred held.
func (tw *TimeWeighted) LongestRunWhere(pred func(v float64) bool) time.Duration {
	var longest, run time.Duration
	for _, s := range tw.segments {
		if pred(s.v) {
			run += s.dur
			if run > longest {
				longest = run
			}
		} else {
			run = 0
		}
	}
	return longest
}

// TotalWhere returns the total time for which pred held.
func (tw *TimeWeighted) TotalWhere(pred func(v float64) bool) time.Duration {
	var total time.Duration
	for _, s := range tw.segments {
		if pred(s.v) {
			total += s.dur
		}
	}
	return total
}

// Buckets renders the series as fixed-width bucket averages starting at
// the first observation — the per-minute worker-count panels of
// Figs. 5a and 6a. Partial trailing buckets are averaged over their
// observed portion.
func (tw *TimeWeighted) Buckets(width time.Duration) []float64 {
	if width <= 0 {
		panic("stats: non-positive bucket width")
	}
	if len(tw.segments) == 0 {
		return nil
	}
	total := tw.Duration()
	n := int((total + width - 1) / width)
	sums := make([]float64, n)
	covered := make([]time.Duration, n)
	at := tw.firstT
	for _, s := range tw.segments {
		segStart, segEnd := at, at+s.dur
		at = segEnd
		for cur := segStart; cur < segEnd; {
			i := int((cur - tw.firstT) / width)
			bEnd := tw.firstT + time.Duration(i+1)*width
			end := segEnd
			if bEnd < end {
				end = bEnd
			}
			if i >= 0 && i < n {
				sums[i] += s.v * (end - cur).Seconds()
				covered[i] += end - cur
			}
			cur = end
		}
	}
	out := make([]float64, n)
	for i := range out {
		if covered[i] > 0 {
			out[i] = sums[i] / covered[i].Seconds()
		}
	}
	return out
}

// SumTimeWeighted merges piecewise-constant series into their
// pointwise sum: the federation-global view of per-site worker counts
// or utilized capacity. The series may cover different spans; outside
// its observed span a series contributes 0. The result is already
// Finished at the latest observed instant (further Finish calls at
// that instant are no-ops). The merge is an event sweep over segment
// boundaries, O(E log E) in the total number of segments.
func SumTimeWeighted(series ...*TimeWeighted) *TimeWeighted {
	type event struct {
		t time.Duration
		d float64
	}
	var events []event
	var end time.Duration
	for _, tw := range series {
		if tw == nil || !tw.started {
			continue
		}
		at := tw.firstT
		for _, s := range tw.segments {
			if s.dur > 0 {
				events = append(events, event{at, s.v}, event{at + s.dur, -s.v})
			}
			at += s.dur
		}
		if at > end {
			end = at
		}
	}
	out := &TimeWeighted{}
	if len(events) == 0 {
		return out
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })
	sum := 0.0
	for i := 0; i < len(events); {
		t := events[i].t
		for i < len(events) && events[i].t == t {
			sum += events[i].d
			i++
		}
		out.Observe(t, sum)
	}
	out.Finish(end)
	return out
}

// StateTracker accounts the time an entity spends in named states.
type StateTracker struct {
	started bool
	lastT   time.Duration
	state   string
	total   map[string]time.Duration
}

// NewStateTracker starts tracking in the given initial state at instant t.
func NewStateTracker(t time.Duration, state string) *StateTracker {
	return &StateTracker{started: true, lastT: t, state: state, total: map[string]time.Duration{}}
}

// Set transitions to a new state at instant t.
func (st *StateTracker) Set(t time.Duration, state string) {
	if t < st.lastT {
		panic("stats: state transition out of order")
	}
	st.total[st.state] += t - st.lastT
	st.lastT = t
	st.state = state
}

// State returns the current state.
func (st *StateTracker) State() string { return st.state }

// Finish closes the current state at instant end and returns totals.
func (st *StateTracker) Finish(end time.Duration) map[string]time.Duration {
	st.Set(end, st.state)
	out := make(map[string]time.Duration, len(st.total))
	for k, v := range st.total {
		out[k] = v
	}
	return out
}

// MinuteSeries counts labeled events into fixed-width time buckets,
// regenerating the per-minute aggregation of Figs. 5b and 6b.
type MinuteSeries struct {
	Bucket  time.Duration
	buckets map[int]map[string]int
	maxIdx  int
}

// NewMinuteSeries builds a series with the given bucket width
// (time.Minute reproduces the paper's figures).
func NewMinuteSeries(bucket time.Duration) *MinuteSeries {
	if bucket <= 0 {
		panic("stats: non-positive bucket")
	}
	return &MinuteSeries{Bucket: bucket, buckets: map[int]map[string]int{}}
}

// Add counts one event with the given label at instant t.
func (ms *MinuteSeries) Add(t time.Duration, label string) {
	i := int(t / ms.Bucket)
	b := ms.buckets[i]
	if b == nil {
		b = map[string]int{}
		ms.buckets[i] = b
	}
	b[label]++
	if i > ms.maxIdx {
		ms.maxIdx = i
	}
}

// Count returns the number of events with the label in bucket i.
func (ms *MinuteSeries) Count(i int, label string) int { return ms.buckets[i][label] }

// Buckets returns the number of buckets up to the last non-empty one.
func (ms *MinuteSeries) Buckets() int {
	if len(ms.buckets) == 0 {
		return 0
	}
	return ms.maxIdx + 1
}

// Totals sums each label across all buckets.
func (ms *MinuteSeries) Totals() map[string]int {
	out := map[string]int{}
	for _, b := range ms.buckets {
		for k, v := range b {
			out[k] += v
		}
	}
	return out
}

// Row is one rendered bucket of a MinuteSeries.
type Row struct {
	Start  time.Duration
	Counts map[string]int
}

// Rows renders all buckets in time order (empty buckets included).
func (ms *MinuteSeries) Rows() []Row {
	n := ms.Buckets()
	rows := make([]Row, n)
	for i := 0; i < n; i++ {
		counts := map[string]int{}
		for k, v := range ms.buckets[i] {
			counts[k] = v
		}
		rows[i] = Row{Start: time.Duration(i) * ms.Bucket, Counts: counts}
	}
	return rows
}
