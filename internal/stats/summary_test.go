package stats

import (
	"math"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); got != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", got)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.CI95 != 0 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("Summarize([3]) = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	// 1..5: mean 3, sample std sqrt(2.5), t(4 df)=2.776.
	s := Summarize([]float64{5, 1, 4, 2, 3})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	wantStd := math.Sqrt(2.5)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, wantStd)
	}
	wantCI := 2.776 * wantStd / math.Sqrt(5)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", s.CI95, wantCI)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles = %v/%v, want 2/4", s.P25, s.P75)
	}
}

func TestTCrit95Monotonic(t *testing.T) {
	if TCrit95(1) != 0 || TCrit95(0) != 0 {
		t.Error("CI is undefined below 2 observations")
	}
	prev := math.Inf(1)
	for n := 2; n < 100; n++ {
		c := TCrit95(n)
		if c > prev {
			t.Fatalf("t critical value increased at n=%d: %v > %v", n, c, prev)
		}
		prev = c
	}
	if TCrit95(1000) != 1.96 {
		t.Errorf("large-sample critical value = %v, want 1.96", TCrit95(1000))
	}
}

func TestSampleSummarizeMatchesSummarize(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 9, 4, 7} {
		s.Add(x)
	}
	if s.Summarize() != Summarize([]float64{2, 9, 4, 7}) {
		t.Error("Sample.Summarize disagrees with Summarize")
	}
}
