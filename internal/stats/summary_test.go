package stats

import (
	"math"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); got != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", got)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.CI95 != 0 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("Summarize([3]) = %+v", s)
	}
}

// TestSummarizeContract pins the documented edge-case contract: empty
// and single-replica inputs yield NaN-free zero-spread summaries, and
// non-finite observations are dropped rather than poisoning the
// aggregate.
func TestSummarizeContract(t *testing.T) {
	nanFree := func(name string, s Summary) {
		t.Helper()
		for field, v := range map[string]float64{
			"Mean": s.Mean, "Std": s.Std, "CI95": s.CI95,
			"Min": s.Min, "P25": s.P25, "Median": s.Median, "P75": s.P75, "Max": s.Max,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v, want finite", name, field, v)
			}
		}
	}
	nanFree("empty", Summarize(nil))
	nanFree("empty-slice", Summarize([]float64{}))
	nanFree("single", Summarize([]float64{42}))

	single := Summarize([]float64{42})
	if single.N != 1 || single.Median != 42 || single.P25 != 42 || single.P75 != 42 {
		t.Errorf("single-replica quantiles = %+v, want all 42", single)
	}

	// Non-finite replicas are dropped, not aggregated.
	mixed := Summarize([]float64{1, math.NaN(), 3, math.Inf(1), math.Inf(-1)})
	if mixed.N != 2 || mixed.Mean != 2 || mixed.Min != 1 || mixed.Max != 3 {
		t.Errorf("Summarize with non-finite inputs = %+v, want N=2 over {1,3}", mixed)
	}
	nanFree("mixed", mixed)

	// All-non-finite degenerates to the empty contract.
	if got := Summarize([]float64{math.NaN(), math.Inf(1)}); got != (Summary{}) {
		t.Errorf("all-non-finite input = %+v, want zero Summary", got)
	}

	// The zero-value Sample summarizes under the same contract.
	var s Sample
	if got := s.Summarize(); got != (Summary{}) {
		t.Errorf("empty Sample.Summarize() = %+v, want zero Summary", got)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	// 1..5: mean 3, sample std sqrt(2.5), t(4 df)=2.776.
	s := Summarize([]float64{5, 1, 4, 2, 3})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	wantStd := math.Sqrt(2.5)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, wantStd)
	}
	wantCI := 2.776 * wantStd / math.Sqrt(5)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", s.CI95, wantCI)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles = %v/%v, want 2/4", s.P25, s.P75)
	}
}

func TestTCrit95Monotonic(t *testing.T) {
	if TCrit95(1) != 0 || TCrit95(0) != 0 {
		t.Error("CI is undefined below 2 observations")
	}
	prev := math.Inf(1)
	for n := 2; n < 100; n++ {
		c := TCrit95(n)
		if c > prev {
			t.Fatalf("t critical value increased at n=%d: %v > %v", n, c, prev)
		}
		prev = c
	}
	if TCrit95(1000) != 1.96 {
		t.Errorf("large-sample critical value = %v, want 1.96", TCrit95(1000))
	}
}

func TestSampleSummarizeMatchesSummarize(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 9, 4, 7} {
		s.Add(x)
	}
	if s.Summarize() != Summarize([]float64{2, 9, 4, 7}) {
		t.Error("Sample.Summarize disagrees with Summarize")
	}
}
