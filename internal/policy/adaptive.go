package policy

import (
	"math/rand"
	"time"
)

// AdaptiveConfig parameterizes the feedback-controlled harvesting
// policy: queue depth grows under overload (503 rejections, saturated
// invokers) and shrinks under sustained 503-free low load, within
// [MinDepth, MaxDepth].
type AdaptiveConfig struct {
	// Min and Max shape the flexible pilots the policy submits
	// (--time-min/--time, as the var model).
	Min, Max time.Duration

	// Depth bounds and the starting depth.
	MinDepth, MaxDepth, StartDepth int

	// Grow and Shrink are the per-decision depth steps. Growth is
	// deliberately larger than shrinkage (fast attack, slow decay): a
	// 503 burst means user-visible failures, an over-deep queue only
	// means cancelled pilots.
	Grow, Shrink int

	// UtilHigh and UtilLow are the invoker-utilization thresholds: busy
	// share above UtilHigh grows the queue, below UtilLow (with no 503s
	// in the window) shrinks it.
	UtilHigh, UtilLow float64

	// Rate503High is the 503 share over one replenishment window that
	// forces growth regardless of utilization.
	Rate503High float64
}

// DefaultAdaptiveConfig returns a tractable default controller.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Min:         2 * time.Minute,
		Max:         120 * time.Minute,
		MinDepth:    4,
		MaxDepth:    200,
		StartDepth:  25,
		Grow:        8,
		Shrink:      2,
		UtilHigh:    0.50,
		UtilLow:     0.10,
		Rate503High: 0.01,
	}
}

// Adaptive sizes the pilot queue from observed demand, the way
// harvesting systems size disaggregated pools: each replenishment tick
// it compares the 503 share and invoker utilization of the last window
// against its thresholds and steps the depth.
type Adaptive struct {
	cfg   AdaptiveConfig
	depth int

	lastDone, last503 int

	// Decision counters (observability for experiments and tests).
	Grown, Shrunk int
}

// NewAdaptive builds the adaptive-depth policy.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	if cfg.MinDepth < 0 || cfg.MaxDepth < cfg.MinDepth {
		panic("policy: adaptive needs 0 ≤ MinDepth ≤ MaxDepth")
	}
	p := &Adaptive{cfg: cfg, depth: cfg.StartDepth}
	if p.depth < cfg.MinDepth {
		p.depth = cfg.MinDepth
	}
	if p.depth > cfg.MaxDepth {
		p.depth = cfg.MaxDepth
	}
	return p
}

// Name implements SupplyPolicy.
func (p *Adaptive) Name() string { return "adaptive" }

// Init implements SupplyPolicy (the controller is deterministic).
func (p *Adaptive) Init(*rand.Rand) {}

// Depth is the current target queue depth.
func (p *Adaptive) Depth() int { return p.depth }

// Replenish runs one control step, then tops the queue up to (or
// cancels it down to) the new depth.
func (p *Adaptive) Replenish(env Env) {
	done, n503 := env.Invocations()
	dDone, d503 := done-p.lastDone, n503-p.last503
	p.lastDone, p.last503 = done, n503

	rate503 := 0.0
	if dDone > 0 {
		rate503 = float64(d503) / float64(dDone)
	}
	util := env.InvokerUtilization()

	switch {
	case rate503 >= p.cfg.Rate503High && d503 > 0:
		p.depth += p.cfg.Grow
		p.Grown++
	case util > p.cfg.UtilHigh:
		p.depth += p.cfg.Grow
		p.Grown++
	case d503 == 0 && util < p.cfg.UtilLow && env.HealthyInvokers() > 0:
		p.depth -= p.cfg.Shrink
		p.Shrunk++
	}
	if p.depth < p.cfg.MinDepth {
		p.depth = p.cfg.MinDepth
	}
	if p.depth > p.cfg.MaxDepth {
		p.depth = p.cfg.MaxDepth
	}

	queued := env.QueuedPilots()
	if queued > p.depth {
		queued -= env.CancelQueued(queued - p.depth)
	}
	for ; queued < p.depth; queued++ {
		env.SubmitFlexible(p.cfg.Min, p.cfg.Max)
	}
}

// PilotStarted implements SupplyPolicy.
func (p *Adaptive) PilotStarted(Env) {}

// PilotEnded implements SupplyPolicy.
func (p *Adaptive) PilotEnded(Env, PilotEnd) {}
