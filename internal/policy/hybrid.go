package policy

import (
	"math"
	"math/rand"
)

// HybridConfig parameterizes the fib+var mix: FibShare scales the fib
// depths, its complement scales the var depth. FibShare 1 degenerates
// to pure fib, 0 to pure var.
type HybridConfig struct {
	Fib FibConfig
	Var VarConfig

	// FibShare ∈ [0, 1] is the fib fraction of the mix.
	FibShare float64
}

// DefaultHybridConfig returns an even split of the paper's two models.
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{Fib: DefaultFibConfig(), Var: DefaultVarConfig(), FibShare: 0.5}
}

// Hybrid keeps a configurable mix of fixed-length bags and flexible
// jobs queued: the bags guarantee fine-grained backfill into short idle
// windows while the flexible jobs soak long windows whole.
type Hybrid struct {
	cfg      HybridConfig
	fib      *Fib // the fixed half, at the scaled depth
	varDepth int
}

// NewHybrid builds the hybrid policy.
func NewHybrid(cfg HybridConfig) *Hybrid {
	if cfg.FibShare < 0 || cfg.FibShare > 1 {
		panic("policy: hybrid fib share must be in [0, 1]")
	}
	if len(cfg.Fib.Lengths) == 0 {
		panic("policy: hybrid needs fib job lengths")
	}
	if cfg.Var.Min <= 0 || cfg.Var.Max < cfg.Var.Min {
		panic("policy: hybrid needs 0 < var min ≤ max")
	}
	return &Hybrid{
		cfg: cfg,
		fib: NewFib(FibConfig{
			Lengths: cfg.Fib.Lengths,
			Depth:   int(math.Round(cfg.FibShare * float64(cfg.Fib.Depth))),
		}),
		varDepth: int(math.Round((1 - cfg.FibShare) * float64(cfg.Var.Depth))),
	}
}

// Name implements SupplyPolicy.
func (p *Hybrid) Name() string { return "hybrid" }

// Init implements SupplyPolicy (hybrid draws no randomness).
func (p *Hybrid) Init(*rand.Rand) {}

// FibDepth and VarDepth expose the effective per-kind depths.
func (p *Hybrid) FibDepth() int { return p.fib.cfg.Depth }

// VarDepth is the effective flexible-job depth.
func (p *Hybrid) VarDepth() int { return p.varDepth }

// Replenish tops both sub-queues up: the fixed half delegates to the
// fib policy (which counts per limit), the flexible jobs count their
// own pending jobs, so the two halves never double-count each other.
func (p *Hybrid) Replenish(env Env) {
	p.fib.Replenish(env)
	for flex := env.QueuedFlexible(); flex < p.varDepth; flex++ {
		env.SubmitFlexible(p.cfg.Var.Min, p.cfg.Var.Max)
	}
}

// PilotStarted implements SupplyPolicy.
func (p *Hybrid) PilotStarted(Env) {}

// PilotEnded implements SupplyPolicy.
func (p *Hybrid) PilotEnded(Env, PilotEnd) {}
