package policy

import (
	"math/rand"
	"time"
)

// FibConfig parameterizes the fib supply model of §III-D: keep Depth
// queued fixed-length jobs of each length, with greedy
// length-proportional priorities.
type FibConfig struct {
	Lengths []time.Duration
	Depth   int
}

// DefaultFibConfig returns the paper's configuration (10 jobs of each
// of the 9 A1 lengths).
func DefaultFibConfig() FibConfig {
	return FibConfig{Lengths: append([]time.Duration(nil), SetA1...), Depth: 10}
}

// Fib is the paper's bag-of-tasks supply model.
type Fib struct {
	cfg FibConfig
}

// NewFib builds the fib policy.
func NewFib(cfg FibConfig) *Fib {
	if len(cfg.Lengths) == 0 {
		panic("policy: fib needs job lengths")
	}
	return &Fib{cfg: cfg}
}

// Name implements SupplyPolicy.
func (p *Fib) Name() string { return "fib" }

// Init implements SupplyPolicy (fib draws no randomness).
func (p *Fib) Init(*rand.Rand) {}

// Replenish tops the queue up to Depth jobs of each length, creating
// new jobs only to replace ones that started (§III-D). The by-limit
// histogram is a live view (see Env.QueuedFixedByLimit): each
// SubmitFixed raises the count it is topping up, so the loop reads it
// directly instead of tallying submissions on the side.
func (p *Fib) Replenish(env Env) {
	byLimit := env.QueuedFixedByLimit()
	for _, l := range p.cfg.Lengths {
		for byLimit[l] < p.cfg.Depth {
			env.SubmitFixed(l, int64(l/time.Minute))
		}
	}
}

// PilotStarted implements SupplyPolicy.
func (p *Fib) PilotStarted(Env) {}

// PilotEnded implements SupplyPolicy.
func (p *Fib) PilotEnded(Env, PilotEnd) {}
